// masq_scaletest — deterministic connection-storm driver for the sharded
// SDN control plane (DESIGN.md §12).
//
//   masq_scaletest [options]
//     --tenants <n>       tenants                       (default: 10)
//     --hosts <n>         hosts                         (default: 16)
//     --vms <n>           VMs per host                  (default: 625)
//     --conns <n>         connections per VM per wave   (default: 2)
//     --waves <n>         storm waves                   (default: 3)
//     --shards <n>        controller shards             (default: 8)
//     --rtt <us>          controller RTT                (default: 100)
//     --service <us>      per-key shard service budget  (default: 1)
//     --window <us>       host-agent batch window       (default: 5)
//     --ip-changes <n>    vBond IP churn events         (default: 200)
//     --rule-resets <n>   security-rule reset storms    (default: 3)
//     --down-shard <i>    mark shard i unreachable ...
//     --down-from <ms>      ... from this time ...      (default: 60)
//     --down-until <ms>     ... until this time         (default: 110)
//     --seed <n>          workload seed                 (default: 1)
//     --threads <n>       partition-parallel engine on n worker threads
//                         (default: single-loop engine; DESIGN.md §13)
//     --trace             mix every event into the FNV-1a trace hash
//     -o, --out <file>    report path (default: BENCH_scale.json)
//     --smoke             small CI preset (4 hosts x 25 VMs)
//     --churn             churn-storm preset: enables the warm path
//                         (DESIGN.md §14) and rescales churn to ~2 vBond
//                         IP changes per VM packed into sub-second VM
//                         lifetimes (6 waves, 10 ms apart). Applied after
//                         all other flags, so it composes with --smoke;
//                         the report gains a "warm" JSON block.
//
//   Fabric traffic phase (DESIGN.md §17) — replays a slice of the storm
//   schedule as data flows over a leaf-spine Clos fabric with ECMP +
//   multi-hop DCQCN; the report gains a "topology" JSON block:
//     --topology <mode>   direct | leafspine (enables the phase)
//     --leaves <n> --spines <n>          fabric shape  (default: 8 / 2)
//     --host-gbps <g> --spine-gbps <g>   link rates    (default: 25 / 40)
//     --pattern <p>       pairs | incast                (default: pairs)
//     --flows <n>         schedule conns replayed       (default: 256)
//     --fanin <n>         incast fan-in width           (default: 32)
//     --flow-kb <n>       flow size                     (default: 64)
//     --elephant-every <n>  every Nth flow is an elephant (0 = off)
//     --elephant-kb <n>   elephant size                 (default: 4096)
//     --tenant-gbps <g>   per-tenant rate limiter       (0 = off)
//     --placement         leaf-affine (tenant-packed) host placement
//     --no-dcqcn          ideal max-min only, no congestion control
//     --fail-spine <i> --fail-from <ms> --fail-until <ms>  spine outage
//     --incast            128-host incast fan-in preset
//     --mice              128-host elephant/mice preset
//     --overspine         128-host oversubscribed-spine preset
//                         (presets apply in place, like --smoke: flags
//                         given after a preset override its fields)
//     -h, --help
//
// The default configuration is the 10k-VM storm (16 hosts x 625 VMs):
// every (config, seed) pair produces one event stream and one report —
// two runs emit byte-identical BENCH_scale.json.
//
// The emitted JSON carries a trailing "perf" object (engine, sim_events,
// trace_hash, threads, wall_ms, events_per_sec, peak_rss_kb). Every field
// sits on its own line: the first three are deterministic, the rest are
// wall-clock/host facts — determinism diffs strip them with
//   grep -vE '"(threads|wall_ms|events_per_sec|peak_rss_kb)":'
// as the CI perf-smoke job does.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fabric/scale.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--tenants n] [--hosts n] [--vms n] [--conns n] [--waves n]\n"
      "          [--shards n] [--rtt us] [--service us] [--window us]\n"
      "          [--ip-changes n] [--rule-resets n]\n"
      "          [--down-shard i] [--down-from ms] [--down-until ms]\n"
      "          [--seed n] [--threads n] [--trace] [-o file] [--smoke]\n"
      "          [--churn]\n"
      "          [--topology direct|leafspine] [--leaves n] [--spines n]\n"
      "          [--host-gbps g] [--spine-gbps g] [--pattern pairs|incast]\n"
      "          [--flows n] [--fanin n] [--flow-kb n] [--elephant-every n]\n"
      "          [--elephant-kb n] [--tenant-gbps g] [--placement]\n"
      "          [--no-dcqcn] [--fail-spine i] [--fail-from ms]\n"
      "          [--fail-until ms] [--incast] [--mice] [--overspine]\n",
      argv0);
}

long peak_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  fabric::ScaleConfig cfg;
  cfg.ip_changes = 200;
  cfg.rule_resets = 3;
  std::string out_path = "BENCH_scale.json";
  std::size_t threads = 0;  // 0 = single-loop engine
  bool churn = false;
  // Shared base of the fabric presets (--incast/--mice/--overspine): 128
  // hosts on an 8-leaf/2-spine Clos with a cheap control-plane storm (the
  // phase under test is the data plane, not the 10k-VM resolve storm).
  // Presets apply inline like --smoke, so later flags still override.
  auto fabric_preset_base = [&cfg] {
    cfg.hosts = 128;
    cfg.vms_per_host = 4;
    cfg.tenants = 16;
    cfg.waves = 2;
    cfg.ip_changes = 32;
    cfg.rule_resets = 1;
    cfg.traffic.enabled = true;
    cfg.traffic.leaves = 8;
    cfg.traffic.spines = 2;
    cfg.traffic.host_gbps = 25.0;
    cfg.traffic.spine_gbps = 40.0;
    cfg.traffic.dcqcn = true;
    cfg.traffic.tenant_gbps = 5.0;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_zu = [&]() {
      return static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    };
    auto next_us = [&]() { return sim::microseconds(std::atof(next())); };
    if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (a == "--tenants") {
      cfg.tenants = next_zu();
    } else if (a == "--hosts") {
      cfg.hosts = next_zu();
    } else if (a == "--vms") {
      cfg.vms_per_host = next_zu();
    } else if (a == "--conns") {
      cfg.conns_per_vm = next_zu();
    } else if (a == "--waves") {
      cfg.waves = next_zu();
    } else if (a == "--shards") {
      cfg.shards = next_zu();
    } else if (a == "--rtt") {
      cfg.query_rtt = next_us();
    } else if (a == "--service") {
      cfg.query_service = next_us();
    } else if (a == "--window") {
      cfg.batch_window = next_us();
    } else if (a == "--ip-changes") {
      cfg.ip_changes = next_zu();
    } else if (a == "--rule-resets") {
      cfg.rule_resets = next_zu();
    } else if (a == "--down-shard") {
      cfg.down_shard = std::atoi(next());
    } else if (a == "--down-from") {
      cfg.down_from = sim::milliseconds(std::atof(next()));
    } else if (a == "--down-until") {
      cfg.down_until = sim::milliseconds(std::atof(next()));
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--threads") {
      threads = next_zu();
      if (threads == 0) threads = 1;
    } else if (a == "--trace") {
      cfg.trace = true;
    } else if (a == "-o" || a == "--out") {
      out_path = next();
    } else if (a == "--smoke") {
      cfg.hosts = 4;
      cfg.vms_per_host = 25;
      cfg.tenants = 5;
      cfg.waves = 2;
      cfg.shards = 4;
      cfg.ip_changes = 20;
      cfg.rule_resets = 1;
    } else if (a == "--churn") {
      churn = true;
    } else if (a == "--topology") {
      const std::string mode = next();
      cfg.traffic.enabled = true;
      if (mode == "direct") {
        cfg.traffic.leaves = 0;
      } else if (mode == "leafspine") {
        if (cfg.traffic.leaves == 0) cfg.traffic.leaves = 8;
        if (cfg.traffic.spines == 0) cfg.traffic.spines = 2;
      } else {
        std::fprintf(stderr, "unknown topology: %s\n", mode.c_str());
        usage(argv[0]);
        return 2;
      }
    } else if (a == "--leaves") {
      cfg.traffic.leaves = next_zu();
    } else if (a == "--spines") {
      cfg.traffic.spines = next_zu();
    } else if (a == "--host-gbps") {
      cfg.traffic.host_gbps = std::atof(next());
    } else if (a == "--spine-gbps") {
      cfg.traffic.spine_gbps = std::atof(next());
    } else if (a == "--pattern") {
      cfg.traffic.pattern = next();
    } else if (a == "--flows") {
      cfg.traffic.flows = next_zu();
    } else if (a == "--fanin") {
      cfg.traffic.incast_fanin = next_zu();
    } else if (a == "--flow-kb") {
      cfg.traffic.flow_kb = next_zu();
    } else if (a == "--elephant-every") {
      cfg.traffic.elephant_every = next_zu();
    } else if (a == "--elephant-kb") {
      cfg.traffic.elephant_kb = next_zu();
    } else if (a == "--tenant-gbps") {
      cfg.traffic.tenant_gbps = std::atof(next());
    } else if (a == "--placement") {
      cfg.traffic.placement = true;
    } else if (a == "--no-dcqcn") {
      cfg.traffic.dcqcn = false;
    } else if (a == "--fail-spine") {
      cfg.traffic.fail_spine = std::atoi(next());
    } else if (a == "--fail-from") {
      cfg.traffic.fail_from = sim::milliseconds(std::atof(next()));
    } else if (a == "--fail-until") {
      cfg.traffic.fail_until = sim::milliseconds(std::atof(next()));
    } else if (a == "--incast") {
      // Incast fan-in: 48 senders converge on host 0. The victim's
      // leaf->host link saturates, so DCQCN must cut the senders and walk
      // them back up through fast recovery; 256 KB flows keep the fan-in
      // congested for many RP ticks.
      fabric_preset_base();
      cfg.traffic.pattern = "incast";
      cfg.traffic.incast_fanin = 48;
      cfg.traffic.flows = 256;
      cfg.traffic.flow_kb = 256;
    } else if (a == "--mice") {
      // Elephant/mice mix: mostly 16 KB mice with a 2 MB elephant every
      // 8th flow — max-min sharing must keep mice FCTs flat under the
      // elephants.
      fabric_preset_base();
      cfg.traffic.pattern = "pairs";
      cfg.traffic.flows = 512;
      cfg.traffic.flow_kb = 16;
      cfg.traffic.elephant_every = 8;
      cfg.traffic.elephant_kb = 2048;
    } else if (a == "--overspine") {
      // Oversubscribed spine: one 10 G spine under 128 hosts of pair
      // traffic — every cross-leaf flow shares one bottleneck.
      fabric_preset_base();
      cfg.traffic.pattern = "pairs";
      cfg.traffic.spines = 1;
      cfg.traffic.spine_gbps = 10.0;
      cfg.traffic.flows = 384;
      cfg.traffic.flow_kb = 64;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.down_shard >= 0 && cfg.down_until <= cfg.down_from) {
    cfg.down_from = sim::milliseconds(60);
    cfg.down_until = sim::milliseconds(110);
  }
  if (churn) {
    // Churn-storm preset (applied post-parse so it rides on top of
    // whatever topology --smoke or explicit flags chose): warm path on,
    // waves packed 10 ms apart, and ~2 IP changes per VM — thousands of
    // sub-second VM lifetimes at the default 10k-VM scale.
    cfg.warm = true;
    cfg.waves = std::max<std::size_t>(cfg.waves, 6);
    cfg.wave_gap = sim::milliseconds(10);
    cfg.spread = sim::milliseconds(5);
    cfg.ip_changes = 2 * cfg.hosts * cfg.vms_per_host;
    cfg.rule_resets = std::max<std::size_t>(cfg.rule_resets, 2);
  }

  std::printf("# scale storm: %zu tenants x %zu hosts x %zu VMs/host "
              "(%zu VMs), %zu shards, seed %llu\n",
              cfg.tenants, cfg.hosts, cfg.vms_per_host,
              cfg.hosts * cfg.vms_per_host, cfg.shards,
              static_cast<unsigned long long>(cfg.seed));
  const auto wall0 = std::chrono::steady_clock::now();
  const fabric::ScaleReport r =
      threads > 0 ? fabric::run_scale_storm_parallel(cfg, threads)
                  : fabric::run_scale_storm(cfg);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall0)
          .count();
  std::printf(
      "conns: %llu attempted, %llu ok, %llu degraded, %llu unavailable, "
      "%llu not-found\n",
      static_cast<unsigned long long>(r.attempted),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.degraded),
      static_cast<unsigned long long>(r.unavailable),
      static_cast<unsigned long long>(r.not_found));
  std::printf("setup latency: p50 %.3f us, p99 %.3f us, max %.3f us\n",
              r.p50_us, r.p99_us, r.max_us);
  std::printf("throughput: %.3f kconn/s over %.3f ms\n", r.kconn_per_s,
              r.elapsed_ms);
  std::printf("cache: hit rate %.4f (%llu hits, %llu misses, %llu "
              "coalesced); %llu batches carrying %llu keys\n",
              r.hit_rate, static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses),
              static_cast<unsigned long long>(r.coalesced),
              static_cast<unsigned long long>(r.agent_batches),
              static_cast<unsigned long long>(r.agent_batched_keys));
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    const fabric::ShardReport& sr = r.per_shard[s];
    std::printf("shard %zu: %llu queries (%llu batched, %llu unreachable), "
                "max queue depth %zu, %llu degraded serves, %zu entries\n",
                s, static_cast<unsigned long long>(sr.queries),
                static_cast<unsigned long long>(sr.batched_queries),
                static_cast<unsigned long long>(sr.unreachable),
                sr.max_queue_depth,
                static_cast<unsigned long long>(sr.degraded_serves),
                sr.table_size);
  }
  if (r.traffic.enabled) {
    // Topology shape is printed here, NOT serialized into the JSON: the
    // degenerate-equivalence sweep byte-diffs a 1-leaf fabric report
    // against a direct-mode one (DESIGN.md §17).
    const fabric::TrafficReport& t = r.traffic;
    if (t.leaves > 0) {
      std::printf("topology: %zu hosts over %zu leaves x %zu spines "
                  "(%.0f/%.0f Gbps), pattern %s\n",
                  t.hosts, t.leaves, t.spines, cfg.traffic.host_gbps,
                  cfg.traffic.spine_gbps, cfg.traffic.pattern.c_str());
    } else {
      std::printf("topology: %zu hosts, direct links (%.0f Gbps), "
                  "pattern %s\n",
                  t.hosts, cfg.traffic.host_gbps,
                  cfg.traffic.pattern.c_str());
    }
    std::printf("traffic: %llu flows, %.1f MB in %.3f ms (%.3f Gbps agg); "
                "fct p50 %.1f us, p99 %.1f us, max %.1f us\n",
                static_cast<unsigned long long>(t.flows),
                static_cast<double>(t.total_bytes) / 1e6, t.elapsed_ms,
                t.agg_gbps, t.fct_p50_us, t.fct_p99_us, t.fct_max_us);
    std::printf("fabric: %zu spine crossings (ecmp fold 0x%016llx), "
                "%llu ECN marks on %llu flows, %llu recoveries, peak spine "
                "util %.3f, peak tenant %.3f Gbps\n",
                t.spine_crossings,
                static_cast<unsigned long long>(t.ecmp_fold),
                static_cast<unsigned long long>(t.ecn_marks),
                static_cast<unsigned long long>(t.throttled_flows),
                static_cast<unsigned long long>(t.dcqcn_recoveries),
                t.peak_spine_util, t.peak_tenant_gbps);
  }
  const long rss_kb = peak_rss_kb();
  const double events_per_sec =
      wall_ms > 0 ? static_cast<double>(r.sim_events) / (wall_ms / 1000.0)
                  : 0.0;
  std::printf("perf: %s engine, %llu events in %.1f ms (%.0f events/s), "
              "peak RSS %ld KiB\n",
              r.engine_threads > 0 ? "partitioned" : "single",
              static_cast<unsigned long long>(r.sim_events), wall_ms,
              events_per_sec, rss_kb);

  // Splice the perf object into the report JSON as its last key. The
  // report body stays byte-identical to ScaleReport::json(); volatile
  // fields (threads, wall_ms, events_per_sec, peak_rss_kb) each sit on
  // their own line so determinism diffs can strip them (see file comment).
  std::string json = r.json();
  char perf[512];
  std::snprintf(perf, sizeof(perf),
                "  ],\n"
                "  \"perf\": {\n"
                "    \"engine\": \"%s\",\n"
                "    \"sim_events\": %llu,\n"
                "    \"trace_hash\": \"0x%016llx\",\n"
                "    \"threads\": %zu,\n"
                "    \"wall_ms\": %.3f,\n"
                "    \"events_per_sec\": %.0f,\n"
                "    \"peak_rss_kb\": %ld\n"
                "  }\n"
                "}\n",
                r.engine_threads > 0 ? "partitioned" : "single",
                static_cast<unsigned long long>(r.sim_events),
                static_cast<unsigned long long>(r.trace_hash),
                r.engine_threads, wall_ms, events_per_sec, rss_kb);
  const std::string tail = "  ]\n}\n";
  if (json.size() >= tail.size() &&
      json.compare(json.size() - tail.size(), tail.size(), tail) == 0) {
    json.replace(json.size() - tail.size(), tail.size(), perf);
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
