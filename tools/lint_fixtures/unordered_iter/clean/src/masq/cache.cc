#include <vector>

namespace masq {

struct Cache {
  std::vector<int> values_;

  int sum() const {
    int total = 0;
    for (int v : values_) total += v;
    return total;
  }
};

}  // namespace masq
