#include <unordered_map>

namespace masq {

struct Cache {
  std::unordered_map<int, int> table_;

  int sum() const {
    int total = 0;
    for (const auto& kv : table_) total += kv.second;
    return total;
  }
};

}  // namespace masq
