#pragma once

#include <map>

namespace sim {

struct Table {
  std::map<int, int> entries_;
};

}  // namespace sim
