#pragma once

#include <map>

namespace sim {

struct Table {
  // masq-lint: allow(container) cold-path config table, built once at startup
  std::map<int, int> entries_;
};

}  // namespace sim
