#pragma once

#include "sim/flat_map.h"

namespace sim {

struct Table {
  sim::FlatMap<int, int> entries_;
};

}  // namespace sim
