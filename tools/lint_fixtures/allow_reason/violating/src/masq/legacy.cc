namespace masq {

// masq-lint: allow(naked-new)
int* make_widget() { return new int(7); }

}  // namespace masq
