namespace masq {

// masq-lint: allow(naked-new) raw handle handed to the C ABI which frees it
int* make_widget() { return new int(7); }

}  // namespace masq
