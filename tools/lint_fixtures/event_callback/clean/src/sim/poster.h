#pragma once

#include "sim/callback.h"

namespace sim {

class Poster {
 public:
  void schedule_at(long long t, Callback fn);
};

}  // namespace sim
