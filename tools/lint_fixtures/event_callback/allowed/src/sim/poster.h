#pragma once

#include <functional>

namespace sim {

class Poster {
 public:
  // masq-lint: allow(event-callback) test-only shim, never on the hot path
  void schedule_at(long long t, std::function<void()> fn);
};

}  // namespace sim
