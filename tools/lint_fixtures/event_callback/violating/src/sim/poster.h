#pragma once

#include <functional>

namespace sim {

class Poster {
 public:
  void schedule_at(long long t, std::function<void()> fn);
};

}  // namespace sim
