namespace masq {

// masq-lint: allow(naked-new) raw handle handed to the C ABI which frees it
int* make_counter() { return new int(0); }

}  // namespace masq
