#include <memory>

namespace masq {

std::unique_ptr<int> make_counter() { return std::make_unique<int>(0); }

}  // namespace masq
