namespace masq {

int* make_counter() { return new int(0); }

}  // namespace masq
