#include "sim/ownership.h"

namespace rnic {

MASQ_SHARED_STATE("guarded by the device registry mutex")
int g_device_epoch = 0;

}  // namespace rnic
