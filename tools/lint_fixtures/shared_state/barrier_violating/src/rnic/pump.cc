namespace rnic {

int pump() { return ++g_rounds_merged; }

}  // namespace rnic
