#include "sim/ownership.h"

namespace fabric {

MASQ_BARRIER_ONLY
int g_rounds_merged = 0;

}  // namespace fabric
