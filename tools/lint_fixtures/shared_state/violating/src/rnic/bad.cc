namespace rnic {

int g_doorbells_rung = 0;

void ring_doorbell() { ++g_doorbells_rung; }

}  // namespace rnic
