namespace rnic {

// masq-lint: allow(shared-state) fixture exercising the annotated escape hatch
int g_probe_count = 0;

}  // namespace rnic
