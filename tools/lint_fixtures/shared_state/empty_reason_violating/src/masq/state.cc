#include "sim/ownership.h"

namespace masq {

MASQ_SHARED_STATE("")
int g_flows_seen = 0;

}  // namespace masq
