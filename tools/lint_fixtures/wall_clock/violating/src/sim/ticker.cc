#include <chrono>

namespace sim {

long long wall_now_ms() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace sim
