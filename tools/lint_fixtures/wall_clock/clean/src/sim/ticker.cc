namespace sim {

long long sim_now_ms(long long now) { return now; }

}  // namespace sim
