#pragma once

#include "rnic/status.h"

[[nodiscard]] rnic::Status open_device(int id);
