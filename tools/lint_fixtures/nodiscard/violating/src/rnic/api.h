#pragma once

#include "rnic/status.h"

rnic::Status open_device(int id);
