#pragma once

#include "rnic/status.h"

// masq-lint: allow(nodiscard) probe result is advisory on this path
rnic::Status probe_device(int id);
