#!/usr/bin/env python3
"""Self-test for tools/masq_lint — golden-fixture harness.

Each directory under tools/lint_fixtures/<case>/<variant>/ is a complete
synthetic lint root; the test asserts the EXACT set of rules that fire
on it (see lint_fixtures/README.md). Also smoke-tests the CLI shim
(--json, --list-allows) and checks the real tree lints clean, so a rule
regression and a tree regression both fail the same ctest target.

Runs under plain python3 (no pytest): each check prints PASS/FAIL and
the process exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(TOOLS_DIR, os.pardir))
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

sys.path.insert(0, TOOLS_DIR)

from masq_lint.engine import RULES, lint, lint_report  # noqa: E402

# (case, variant) -> exact set of rules expected to fire on that root.
EXPECT = {
    ("nodiscard", "violating"): {"nodiscard"},
    ("nodiscard", "allowed"): set(),
    ("nodiscard", "clean"): set(),
    ("wall_clock", "violating"): {"wall-clock"},
    ("wall_clock", "allowed"): set(),
    ("wall_clock", "clean"): set(),
    ("unordered_iter", "violating"): {"unordered-iter"},
    ("unordered_iter", "allowed"): set(),
    ("unordered_iter", "clean"): set(),
    ("naked_new", "violating"): {"naked-new"},
    ("naked_new", "allowed"): set(),
    ("naked_new", "clean"): set(),
    ("container", "violating"): {"container"},
    ("container", "allowed"): set(),
    ("container", "clean"): set(),
    ("event_callback", "violating"): {"event-callback"},
    ("event_callback", "allowed"): set(),
    ("event_callback", "clean"): set(),
    # Acceptance fixture: mutable global written from window-side code.
    ("shared_state", "violating"): {"shared-state"},
    ("shared_state", "allowed"): set(),
    ("shared_state", "clean"): set(),
    ("shared_state", "barrier_violating"): {"shared-state"},
    ("shared_state", "empty_reason_violating"): {"shared-state"},
    # A reasonless allowance fails allow-reason AND does not shield.
    ("allow_reason", "violating"): {"allow-reason", "naked-new"},
    ("allow_reason", "clean"): set(),
}

failures = 0


def check(label: str, ok: bool, detail: str = "") -> None:
    global failures
    status = "PASS" if ok else "FAIL"
    line = f"[{status}] {label}"
    if detail and not ok:
        line += f"\n       {detail}"
    print(line)
    if not ok:
        failures += 1


def fixture_cases() -> None:
    seen = set()
    for case in sorted(os.listdir(FIXTURES)):
        case_dir = os.path.join(FIXTURES, case)
        if not os.path.isdir(case_dir):
            continue
        for variant in sorted(os.listdir(case_dir)):
            root = os.path.join(case_dir, variant)
            if not os.path.isdir(root):
                continue
            seen.add((case, variant))
            expected = EXPECT.get((case, variant))
            if expected is None:
                check(f"fixture {case}/{variant} has an expectation", False,
                      "add it to EXPECT in masq_lint_test.py")
                continue
            violations, _ = lint(root)
            fired = {v.rule for v in violations}
            check(
                f"fixture {case}/{variant}: rules {sorted(fired) or '[]'}",
                fired == expected,
                f"expected exactly {sorted(expected) or '[]'}; got "
                + "; ".join(f"{os.path.relpath(v.path, root)}:{v.lineno} "
                            f"[{v.rule}] {v.message}" for v in violations),
            )
    for key in EXPECT:
        if key not in seen:
            check(f"fixture directory exists for {key[0]}/{key[1]}", False)


def allowance_listing() -> None:
    # The allowed fixtures must surface in the allowance audit.
    root = os.path.join(FIXTURES, "naked_new", "allowed")
    _, allowances = lint(root)
    check(
        "allowed fixture appears in allowance list with its reason",
        len(allowances) == 1
        and allowances[0].rule == "naked-new"
        and "C ABI" in allowances[0].reason,
        f"got {allowances}",
    )


def report_shape() -> None:
    root = os.path.join(FIXTURES, "shared_state", "violating")
    report = lint_report(root)
    ok = (
        report["violation_count"] == 1
        and report["violations"][0]["rule"] == "shared-state"
        and report["violations"][0]["path"].endswith("bad.cc")
        and set(report["rules"]) == set(RULES)
        and "violations_by_rule" in report
    )
    check("lint_report structure for the acceptance fixture", ok,
          json.dumps(report, indent=2))


def cli_shim() -> None:
    shim = os.path.join(TOOLS_DIR, "masq_lint.py")
    bad_root = os.path.join(FIXTURES, "shared_state", "violating")

    r = subprocess.run(
        [sys.executable, shim, "--root", bad_root],
        capture_output=True, text=True)
    check("CLI exits 1 and names the rule on the violating fixture",
          r.returncode == 1 and "[shared-state]" in r.stdout,
          f"rc={r.returncode} stdout={r.stdout!r} stderr={r.stderr!r}")

    r = subprocess.run(
        [sys.executable, shim, "--root", bad_root, "--json"],
        capture_output=True, text=True)
    ok = r.returncode == 1
    if ok:
        payload = json.loads(r.stdout)
        ok = payload["violation_count"] == 1
    check("CLI --json emits parseable report and exit 1",
          ok, f"rc={r.returncode} stdout={r.stdout[:400]!r}")

    r = subprocess.run(
        [sys.executable, shim, "--root",
         os.path.join(FIXTURES, "naked_new", "allowed"), "--list-allows"],
        capture_output=True, text=True)
    check("CLI --list-allows prints file:line and reason, exit 0",
          r.returncode == 0 and "owner.cc:3: allow(naked-new)" in r.stdout,
          f"rc={r.returncode} stdout={r.stdout!r}")


def real_tree() -> None:
    violations, _ = lint(REPO_ROOT)
    check(
        "real src/ tree lints clean",
        not violations,
        "; ".join(f"{os.path.relpath(v.path, REPO_ROOT)}:{v.lineno} "
                  f"[{v.rule}]" for v in violations),
    )


def main() -> int:
    fixture_cases()
    allowance_listing()
    report_shape()
    cli_shim()
    real_tree()
    total = failures
    print(f"\nmasq_lint_test: {'FAIL' if total else 'OK'}"
          + (f" ({total} failure(s))" if total else ""))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
