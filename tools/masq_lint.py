#!/usr/bin/env python3
"""Executable entry point for the masq linter.

The implementation lives in the masq_lint/ package next to this file
(see tools/masq_lint/__init__.py for the layout and the rule table).
This shim exists so the CI invocation — ``python3 tools/masq_lint.py``
— and muscle memory keep working.

Usage: tools/masq_lint.py [--root DIR] [--json] [--list-allows]
(exits non-zero on violations)
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from masq_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
