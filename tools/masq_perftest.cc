// masq_perftest — a perftest-style command-line tool for the simulated
// testbed. The knobs mirror ib_send_lat / ib_write_bw:
//
//   masq_perftest [options]
//     -t, --test  lat|bw           (default: lat)
//     -o, --op    send|write       (default: send)
//     -c, --candidate host|sriov|freeflow|masq   (default: masq)
//     -s, --size  <bytes>          message size (default: 2)
//     -n, --iters <count>          iterations (default: 1000)
//     -q, --qps   <count>          concurrent QPs, bw only (default: 1)
//     -r, --rate  <gbps>           MasQ tenant rate limit (default: none)
//     --pf                         map MasQ tenants to the PF (Fig. 9)
//     --faults <file>              fault-injection knob file (MasQ only);
//                                  see tools/chaos.knobs for the format
//     --fault-seed <n>             fault plane RNG seed (default: 1)
//     --check                      run the invariant auditors (src/check)
//                                  during the measurement; reports audit
//                                  counts so the overhead is visible
//     --check-every <n>            audit every n events (default: 512)
//     -h, --help
//
// Examples:
//   masq_perftest -t lat -o send -c host -s 2 -n 1000
//   masq_perftest -t bw -o write -c masq -s 65536 -q 128
//   masq_perftest -t bw -c masq -r 10        # rate-limited tenant
//   masq_perftest -t lat -c masq --faults tools/chaos.knobs --fault-seed 42
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/perftest.h"
#include "fabric/testbed.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [-t lat|bw] [-o send|write] [-c host|sriov|freeflow|masq]\n"
      "          [-s bytes] [-n iters] [-q qps] [-r gbps] [--pf]\n"
      "          [--faults <knob-file>] [--fault-seed <n>]\n"
      "          [--check] [--check-every <n>]\n",
      argv0);
}

bool parse_candidate(const std::string& s, fabric::Candidate* out) {
  if (s == "host") *out = fabric::Candidate::kHostRdma;
  else if (s == "sriov") *out = fabric::Candidate::kSriov;
  else if (s == "freeflow") *out = fabric::Candidate::kFreeFlow;
  else if (s == "masq") *out = fabric::Candidate::kMasq;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string test = "lat";
  std::string op_s = "send";
  fabric::Candidate candidate = fabric::Candidate::kMasq;
  std::uint32_t size = 2;
  int iters = 1000;
  int qps = 1;
  double rate = -1.0;
  bool use_pf = false;
  std::string faults_file;
  std::uint64_t fault_seed = 1;
  bool check = false;
  std::uint64_t check_every = 512;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (a == "-t" || a == "--test") {
      test = next();
    } else if (a == "-o" || a == "--op") {
      op_s = next();
    } else if (a == "-c" || a == "--candidate") {
      if (!parse_candidate(next(), &candidate)) {
        usage(argv[0]);
        return 2;
      }
    } else if (a == "-s" || a == "--size") {
      size = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (a == "-n" || a == "--iters") {
      iters = std::atoi(next());
    } else if (a == "-q" || a == "--qps") {
      qps = std::atoi(next());
    } else if (a == "-r" || a == "--rate") {
      rate = std::atof(next());
    } else if (a == "--pf") {
      use_pf = true;
    } else if (a == "--faults") {
      faults_file = next();
    } else if (a == "--fault-seed") {
      fault_seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--check") {
      check = true;
    } else if (a == "--check-every") {
      check = true;
      check_every = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  const auto op = op_s == "write" ? apps::perftest::Op::kWrite
                                  : apps::perftest::Op::kSend;

  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = candidate;
  cfg.masq_use_pf = use_pf;
  cfg.cal.host_dram_bytes = 32ull << 30;
  if (!faults_file.empty()) {
    if (candidate != fabric::Candidate::kMasq) {
      std::fprintf(stderr, "--faults requires -c masq\n");
      return 2;
    }
    std::ifstream in(faults_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", faults_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    if (!sim::FaultConfig::parse(text.str(), &cfg.faults, &err)) {
      std::fprintf(stderr, "%s: %s\n", faults_file.c_str(), err.c_str());
      return 2;
    }
    cfg.fault_seed = fault_seed;
  }
  if (check) {
    cfg.check_invariants = true;  // also honors MASQ_CHECK=1 without --check
    cfg.check_audit_every = check_every == 0 ? 1 : check_every;
  }
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  if (rate > 0) {
    if (candidate != fabric::Candidate::kMasq || use_pf) {
      std::fprintf(stderr, "-r requires -c masq without --pf\n");
      return 2;
    }
    bed.masq_backend(0).set_tenant_rate_limit(cfg.default_vni, rate);
  }

  std::printf("# candidate=%s test=%s op=%s size=%uB iters=%d",
              fabric::to_string(candidate), test.c_str(), op_s.c_str(), size,
              iters);
  if (qps > 1) std::printf(" qps=%d", qps);
  if (rate > 0) std::printf(" rate=%.1fGbps", rate);
  if (use_pf) std::printf(" pf");
  if (bed.checks() != nullptr) {
    std::printf(" check=every-%llu-events",
                static_cast<unsigned long long>(cfg.check_audit_every));
  }
  if (bed.faults() != nullptr) {
    std::printf(" faults=%s seed=%llu", faults_file.c_str(),
                static_cast<unsigned long long>(fault_seed));
  }
  std::printf("\n");
  std::fflush(stdout);  // keep the header ahead of stderr diagnostics

  try {
  if (test == "lat") {
    apps::perftest::LatConfig lc;
    lc.op = op;
    lc.msg_size = size;
    lc.iterations = iters;
    const sim::Stats s = apps::perftest::run_lat(bed, lc);
    std::printf("%-10s %10s %10s %10s %10s %10s\n", "#bytes", "iters",
                "t_min[us]", "t_avg[us]", "t_p99[us]", "t_max[us]");
    std::printf("%-10u %10zu %10.2f %10.2f %10.2f %10.2f\n", size, s.count(),
                s.min(), s.mean(), s.percentile(99.0), s.max());
  } else if (test == "bw") {
    apps::perftest::BwConfig bc;
    bc.op = op;
    bc.msg_size = size == 2 ? 65536 : size;  // bw default like perftest
    bc.iterations = iters;
    bc.num_qps = qps;
    const double gbps = apps::perftest::run_bw(bed, bc);
    std::printf("%-10s %10s %14s %14s\n", "#bytes", "iters", "BW[Gbps]",
                "Mmsg/sec");
    std::printf("%-10u %10d %14.2f %14.3f\n", bc.msg_size,
                bc.iterations * qps, gbps,
                gbps / 8.0 * 1000.0 / bc.msg_size);
  } else {
    usage(argv[0]);
    return 2;
  }
  } catch (const std::exception& e) {
    // Under aggressive fault rates a setup verb can exhaust its retry
    // budget; the harness aborts the measurement rather than reporting
    // numbers from a half-built testbed. Print the replay recipe so the
    // run can be reproduced and diagnosed.
    std::fprintf(stderr, "error: %s\n", e.what());
    if (bed.faults() != nullptr) {
      std::fprintf(stderr,
                   "# faults fired: %llu (replay: --faults %s "
                   "--fault-seed %llu)\n%s",
                   static_cast<unsigned long long>(
                       bed.faults()->faults_fired()),
                   faults_file.c_str(),
                   static_cast<unsigned long long>(fault_seed),
                   bed.faults()->dump_log().c_str());
    }
    return 1;
  }
  if (bed.faults() != nullptr) {
    std::printf("# faults fired: %llu (replay: --faults %s --fault-seed %llu)\n",
                static_cast<unsigned long long>(bed.faults()->faults_fired()),
                faults_file.c_str(),
                static_cast<unsigned long long>(fault_seed));
  }
  if (bed.checks() != nullptr) {
    // Audit-overhead accounting: each audit ran every registered auditor
    // once; events is the denominator for the per-event audit rate.
    const check::InvariantRegistry& c = *bed.checks();
    std::printf(
        "# checks: audits=%llu auditor-calls=%llu violations=%zu "
        "events=%llu\n",
        static_cast<unsigned long long>(c.audits_run()),
        static_cast<unsigned long long>(c.checks_run()),
        c.violations().size(),
        static_cast<unsigned long long>(loop.events_executed()));
  }
  return 0;
}
