import sys

from masq_lint.cli import main

sys.exit(main())
