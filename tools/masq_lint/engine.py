"""Lint orchestration: file discovery, rule dispatch, reporting."""

from __future__ import annotations

import os

from masq_lint import rules, shared_state
from masq_lint.source import Allowance, SourceFile, Violation

RULES = (
    "nodiscard",
    "wall-clock",
    "unordered-iter",
    "naked-new",
    "container",
    "event-callback",
    "shared-state",
    "allow-reason",
)

SOURCE_EXTS = (".h", ".cc")

PER_FILE_CHECKS = (
    rules.check_nodiscard,
    rules.check_wall_clock,
    rules.check_naked_new,
    rules.check_container,
    rules.check_event_callback,
)


def collect_files(root: str) -> dict[str, list[SourceFile]]:
    """Source files under <root>/src, grouped by directory, sorted."""
    files_by_dir: dict[str, list[SourceFile]] = {}
    src_root = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        group = [
            SourceFile(os.path.join(dirpath, f))
            for f in sorted(filenames)
            if f.endswith(SOURCE_EXTS)
        ]
        if group:
            files_by_dir[dirpath] = group
    return files_by_dir


def lint(root: str) -> tuple[list[Violation], list[Allowance]]:
    """All violations and all well-formed allowances under <root>/src."""
    files_by_dir = collect_files(root)
    violations: list[Violation] = []
    allowances: list[Allowance] = []

    for _dir, files in sorted(files_by_dir.items()):
        for src in files:
            violations.extend(src.reasonless_allows)
            allowances.extend(src.allowances)
            for check in PER_FILE_CHECKS:
                check(src, violations)

    rules.check_unordered_iter(files_by_dir, violations)
    shared_state.check_shared_state(files_by_dir, violations, root)

    violations.sort(key=lambda v: (v.path, v.lineno, v.rule))
    allowances.sort(key=lambda a: (a.path, a.lineno, a.rule))
    return violations, allowances


def lint_report(root: str) -> dict:
    """Structured report for --json / the CI lint artifact."""
    violations, allowances = lint(root)
    by_rule: dict[str, int] = {r: 0 for r in RULES}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    return {
        "root": os.path.abspath(root),
        "rules": list(RULES),
        "violation_count": len(violations),
        "violations_by_rule": by_rule,
        "violations": [
            {
                "path": os.path.relpath(v.path, root),
                "line": v.lineno,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "allowance_count": len(allowances),
        "allowances": [
            {
                "path": os.path.relpath(a.path, root),
                "line": a.lineno,
                "rule": a.rule,
                "reason": a.reason,
            }
            for a in allowances
        ],
    }
