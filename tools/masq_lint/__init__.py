"""Structural linter for the MasQ simulator (no libclang required).

Package layout:

  source.py        source model: comment/string stripping, allowance
                   parsing (``masq-lint: allow(<rule>) <reason>`` — the
                   reason is mandatory), Violation/Allowance records.
  rules.py         the per-line determinism rules (nodiscard, wall-clock,
                   unordered-iter, naked-new, container, event-callback).
  shared_state.py  the ``shared-state`` ownership pass: builds a model of
                   mutable state reachable from partition-window code and
                   requires every shared mutable object to carry a
                   MASQ_PARTITION_LOCAL / MASQ_BARRIER_ONLY /
                   MASQ_SHARED_STATE(reason) annotation
                   (src/sim/ownership.h).
  cli.py           command line: --json, --list-allows, --root.

``tools/masq_lint.py`` remains the executable entry point (CI invokes
it); it forwards here. ``python3 tools/masq_lint`` works too.
"""

from masq_lint.cli import main
from masq_lint.engine import RULES, lint, lint_report

__all__ = ["RULES", "lint", "lint_report", "main"]
