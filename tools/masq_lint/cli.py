"""Command line for the masq linter.

  python3 tools/masq_lint.py                lint, human-readable, exit 1
                                            on any violation
  python3 tools/masq_lint.py --json         structured report on stdout
                                            (archived by the CI lint job)
  python3 tools/masq_lint.py --list-allows  audit every allowance with
                                            file:line and its reason
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from masq_lint.engine import RULES, lint, lint_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="masq_lint",
        description="Structural determinism/ownership linter for src/",
    )
    parser.add_argument(
        "--root",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, os.pardir),
        help="repo root (default: two levels above this package)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a structured JSON report instead of text",
    )
    parser.add_argument(
        "--list-allows", action="store_true",
        help="list every masq-lint allowance with file:line and reason",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.list_allows:
        _, allowances = lint(root)
        for a in allowances:
            rel = os.path.relpath(a.path, root)
            print(f"{rel}:{a.lineno}: allow({a.rule}) {a.reason}")
        print(f"{len(allowances)} allowance(s)")
        return 0

    if args.json:
        report = lint_report(root)
        print(json.dumps(report, indent=2))
        return 1 if report["violation_count"] else 0

    violations, allowances = lint(root)
    for v in violations:
        rel = os.path.relpath(v.path, root)
        print(f"{rel}:{v.lineno}: [{v.rule}] {v.message}")
    if violations:
        print(
            f"\nmasq_lint: {len(violations)} violation(s) across "
            f"{len(RULES)} rule(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"masq_lint: clean ({len(RULES)} rules, "
        f"{len(allowances)} allowance(s))"
    )
    return 0
