"""Source model shared by every lint pass.

A SourceFile holds, per line, the raw text plus a ``code`` variant with
comments and string/char literals blanked out (lengths preserved) so rule
regexes never match inside a comment or a log string.

Escape hatch: ``// masq-lint: allow(<rule>) <reason>`` on the violating
line or the line above. The reason is MANDATORY — an allowance without
one does not shield anything and is itself reported under the
``allow-reason`` rule, so every exception in the tree carries its
justification (``--list-allows`` audits them).
"""

from __future__ import annotations

import collections
import re

ALLOW_RE = re.compile(r"masq-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?")

Violation = collections.namedtuple("Violation", "path lineno rule message")
Allowance = collections.namedtuple("Allowance", "path lineno rule reason")


def strip_code(lines: list[str]) -> list[str]:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif raw.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif raw.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                buf.append(" ")
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        buf.append("  ")
                        i += 2
                    elif raw[i] == quote:
                        buf.append(" ")
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


class SourceFile:
    def __init__(self, path: str):
        self.path = path
        with open(path, encoding="utf-8") as f:
            self.raw = f.read().splitlines()
        self.code = strip_code(self.raw)
        # rule -> set of line numbers (1-based) the allowance covers.
        self.allowed: dict[str, set[int]] = collections.defaultdict(set)
        # Every well-formed allowance, for --list-allows.
        self.allowances: list[Allowance] = []
        # Allowances missing their mandatory reason (reported, no shield).
        self.reasonless_allows: list[Violation] = []
        for idx, line in enumerate(self.raw):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rule = m.group(1)
            reason = (m.group(2) or "").strip()
            if not reason:
                self.reasonless_allows.append(
                    Violation(
                        path, idx + 1, "allow-reason",
                        f"allow({rule}) carries no reason: every escape "
                        "hatch must say why the exception is safe",
                    )
                )
                continue  # a reasonless allowance shields nothing
            self.allowances.append(Allowance(path, idx + 1, rule, reason))
            # An allowance covers its own line and the next one (so a
            # comment-only line shields the statement below it).
            self.allowed[rule].add(idx + 1)
            self.allowed[rule].add(idx + 2)

    def is_allowed(self, rule: str, lineno: int) -> bool:
        return lineno in self.allowed.get(rule, set())
