"""The ``shared-state`` ownership pass (DESIGN.md §16).

The partition-parallel engine (DESIGN.md §13) claims that partitions
share no mutable state: a partition's objects are touched only by the
thread running its window, and cross-partition effects flow only through
the coordinator at the barrier. Object graphs rooted in a PartDriver or
an EventLoop satisfy that by construction — what can silently break it is
state that lives *outside* any per-partition graph: namespace-scope
globals, function-local statics, and mutable static data members. One
innocent-looking cache counter at file scope turns a proven-deterministic
engine into a data race.

This pass builds, per translation unit, the set of such escape points:

  * mutable namespace-scope globals (the repo indents namespace contents
    at column 0, so namespace-scope declarations are exactly the
    column-0 declarations that are not functions/types/usings);
  * ``static`` locals and static data members (one detector: any
    indented mutable non-function ``static`` declaration);
  * ``thread_local`` objects are exempt — they are per-thread by
    construction, which is the strongest ownership claim available.

Every surviving shared mutable object must carry one of the annotation
macros from src/sim/ownership.h on its declaration line or the line
above:

  MASQ_PARTITION_LOCAL    per-partition/per-thread by construction
  MASQ_BARRIER_ONLY       coordinator-only, touched between windows
  MASQ_SHARED_STATE(why)  genuinely shared; `why` names the lock/atomic/
                          immutability argument and must be non-empty

Cross-check: files are classified window-side (sim/event_loop machinery,
fabric/scale_partition, rnic/, the masq/ hot paths — code that runs
inside a partition's window) or coordinator-side. A MASQ_BARRIER_ONLY
symbol referenced from a window-side file is a violation: barrier-only
state is exactly the state a worker thread must never see.
"""

from __future__ import annotations

import os
import re

from masq_lint.source import SourceFile, Violation

RULE = "shared-state"

ANNOTATIONS = ("MASQ_PARTITION_LOCAL", "MASQ_BARRIER_ONLY",
               "MASQ_SHARED_STATE")
SHARED_STATE_RE = re.compile(r"MASQ_SHARED_STATE\s*\(\s*(.*?)\s*\)\s*$")
SHARED_STATE_ANY_RE = re.compile(r"MASQ_SHARED_STATE\s*\(")

# Files whose code executes inside a partition window: the event-loop
# machinery itself (an event runs on whichever worker owns its partition
# this round), the partition-parallel storm engine, the RNIC data path,
# and the masq hot paths that the per-VM workloads drive from window
# events. Everything else is coordinator/control-side.
WINDOW_SIDE_PATTERNS = (
    "src/sim/event_loop.",
    "src/sim/ready_queue.h",
    "src/sim/callback.h",
    "src/sim/arena.h",
    "src/sim/task.h",
    "src/fabric/scale_partition.",
    "src/rnic/",
    "src/masq/frontend.",
    "src/masq/backend.",
    "src/masq/rconntrack.",
    "src/masq/warm_pool.",
)

# Leading tokens that say nothing about mutability.
STORAGE_TOKENS = {"inline", "static", "constinit", "virtual", "friend"}
# Leading tokens that make the object immutable (runtime-const data needs
# no ownership annotation: concurrent reads of never-written state are
# race-free).
IMMUTABLE_TOKENS = {"const", "constexpr", "consteval"}
# Column-0 keywords that open constructs rather than declare objects.
NON_DECL_KEYWORDS = {
    "namespace", "using", "typedef", "template", "class", "struct", "enum",
    "union", "extern", "return", "if", "else", "for", "while", "do",
    "switch", "case", "default", "break", "continue", "goto", "public",
    "private", "protected", "try", "catch", "throw", "co_return",
    "co_await", "co_yield", "delete", "new", "operator", "sizeof",
    "alignas", "alignof", "static_assert", "asm", "explicit", "typename",
    "concept", "requires",
}

WORD_RE = re.compile(r"[A-Za-z_]\w*")
STATIC_LINE_RE = re.compile(r"^\s*(?:inline\s+)?static\b")


def is_window_side(relpath: str) -> bool:
    rel = relpath.replace(os.sep, "/")
    return any(p in rel for p in WINDOW_SIDE_PATTERNS)


def _blank_angles(decl: str) -> str:
    """Blanks template-argument lists so commas/keywords inside <> don't
    confuse the declarator scan. Comparison operators never appear in the
    declaration heads this pass accumulates (it stops at the first ';',
    '=' or '{'), so every '<' here opens a template-argument list."""
    out = []
    depth = 0
    for ch in decl:
        if ch == "<":
            depth += 1
            out.append(" ")
        elif ch == ">":
            depth = max(0, depth - 1)
            out.append(" ")
        else:
            out.append(ch if depth == 0 else " ")
    return "".join(out)


def _mutability(decl: str) -> str:
    """'mutable' | 'immutable' | 'thread_local' | 'extern-decl',
    judged from the declaration's leading tokens."""
    for w in WORD_RE.findall(decl):
        if w == "thread_local":
            return "thread_local"
        if w == "extern":
            return "extern-decl"  # a reference, not the definition
        if w in STORAGE_TOKENS:
            continue
        if w in IMMUTABLE_TOKENS:
            return "immutable"
        return "mutable"
    return "immutable"


def _declared_variable(decl: str) -> str | None:
    """The declared object's name, or None if `decl` is not an object
    declaration (function signature, macro invocation, expression...)."""
    flat = _blank_angles(decl)
    # NAME followed by an initializer or terminator — the declarator shape.
    for m in re.finditer(r"([A-Za-z_]\w*)((?:\s*\[[^\]]*\])*)\s*(=|;|\{)",
                         flat):
        name = m.group(1)
        if (name in NON_DECL_KEYWORDS or name in STORAGE_TOKENS
                or name in IMMUTABLE_TOKENS
                or name in ("noexcept", "override", "final", "mutable")):
            continue
        before = flat[: m.start(1)]
        # Inside a parameter list / function-style initializer.
        if before.count("(") > before.count(")"):
            continue
        # `Foo::bar = ...` is an assignment/out-of-line definition detail,
        # and `x.y = ...` / `x->y = ...` are member assignments. A ')'
        # right before the candidate means a function signature
        # (`f(args) {`, `f(args) const`), not an object.
        tail = before.rstrip()
        if tail.endswith(("::", ".", "->", "=", "!", "<", ">", "+", "-",
                          "*", "/", "%", "&", "|", "(", ",", ")",
                          "return")):
            continue
        # A bare `name;` with nothing before it is an expression statement
        # (or a macro), not a declaration: declarations carry a type.
        if m.group(3) != "{" and not WORD_RE.search(before):
            continue
        return name
    return None


class SharedObject:
    """One flagged shared mutable object."""

    def __init__(self, path: str, lineno: int, name: str, kind: str,
                 annotation: str | None):
        self.path = path
        self.lineno = lineno
        self.name = name
        self.kind = kind  # "global" | "static"
        self.annotation = annotation  # macro name or None


def _find_annotation(src: SourceFile, first_line_idx: int) -> str | None:
    """Annotation macro on the declaration's first line or the line above."""
    candidates = [src.raw[first_line_idx]]
    if first_line_idx > 0:
        candidates.append(src.raw[first_line_idx - 1])
    for text in candidates:
        for macro in ANNOTATIONS:
            if re.search(rf"\b{macro}\b", text):
                return macro
    return None


def _check_shared_state_reason(src: SourceFile,
                               violations: list[Violation]) -> None:
    """MASQ_SHARED_STATE must carry a non-empty reason."""
    for idx, text in enumerate(src.raw):
        for m in SHARED_STATE_ANY_RE.finditer(text):
            # Mentions inside comments/strings are doc text, not
            # annotations: the stripped variant blanks those.
            code_line = src.code[idx] if idx < len(src.code) else ""
            if m.start() >= len(code_line) or code_line[m.start()] != "M":
                continue
            open_i = text.index("(", m.start())
            depth = 0
            arg = text[open_i + 1:]  # unbalanced: whatever is there
            for j in range(open_i, len(text)):
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        arg = text[open_i + 1: j]
                        break
            if arg.strip().strip("\"'").strip() == "":
                violations.append(
                    Violation(
                        src.path, idx + 1, RULE,
                        "MASQ_SHARED_STATE with an empty reason: say what "
                        "lock, atomic, or immutability argument makes the "
                        "sharing safe",
                    )
                )


def collect_shared_objects(src: SourceFile) -> list[SharedObject]:
    """The file's model of mutable state reachable from window code."""
    objects: list[SharedObject] = []
    idx = 0
    nlines = len(src.code)
    while idx < nlines:
        line = src.code[idx]
        stripped = line.strip()
        kind = None
        if STATIC_LINE_RE.match(line):
            kind = "static" if line[0].isspace() else "global"
        elif stripped and not line[0].isspace() and line[0].isalpha():
            first = WORD_RE.match(stripped)
            if first and first.group(0) not in NON_DECL_KEYWORDS:
                kind = "global"
        if kind is None:
            idx += 1
            continue
        # Accumulate the declaration head: up to the first ';', '=' or '{'
        # at paren depth 0 (initializers and bodies carry no new facts).
        decl = ""
        start = idx
        while idx < nlines:
            decl += " " + src.code[idx].strip()
            if any(t in src.code[idx] for t in ";={") or len(decl) > 400:
                break
            idx += 1
        idx += 1
        decl = decl.strip()
        # Cut at the first terminator: initializer bodies and function
        # bodies after '{' carry no declaration facts, and leaving them in
        # lets body-local names masquerade as the declared object.
        for i, ch in enumerate(decl):
            if ch in ";={":
                decl = decl[: i + 1]
                break
        if _mutability(decl) != "mutable":
            continue
        name = _declared_variable(decl)
        if name is None:
            continue
        objects.append(
            SharedObject(src.path, start + 1, name, kind,
                         _find_annotation(src, start)))
    return objects


def check_shared_state(files_by_dir: dict[str, list[SourceFile]],
                       violations: list[Violation],
                       root: str) -> None:
    all_files: list[SourceFile] = []
    for files in files_by_dir.values():
        all_files.extend(files)

    barrier_only: list[SharedObject] = []
    for src in all_files:
        _check_shared_state_reason(src, violations)
        for obj in collect_shared_objects(src):
            lineno = obj.lineno
            if obj.annotation is None:
                if src.is_allowed(RULE, lineno):
                    continue
                what = ("mutable namespace-scope global"
                        if obj.kind == "global"
                        else "mutable static (function-local or member)")
                violations.append(
                    Violation(
                        src.path, lineno, RULE,
                        f"{what} '{obj.name}' without an ownership "
                        "annotation: mark it MASQ_PARTITION_LOCAL, "
                        "MASQ_BARRIER_ONLY, or MASQ_SHARED_STATE(reason) "
                        "(src/sim/ownership.h)",
                    )
                )
                continue
            if obj.annotation == "MASQ_BARRIER_ONLY":
                barrier_only.append(obj)
            if obj.annotation == "MASQ_PARTITION_LOCAL" and \
                    obj.kind == "global" and "thread_local" not in " ".join(
                        src.code[obj.lineno - 1: obj.lineno]):
                # A namespace-scope global cannot be partition-local unless
                # it is thread_local (then it would be exempt anyway).
                violations.append(
                    Violation(
                        src.path, obj.lineno, RULE,
                        f"global '{obj.name}' claims MASQ_PARTITION_LOCAL "
                        "but has namespace scope: one instance is visible "
                        "to every partition — use MASQ_SHARED_STATE with "
                        "a reason, or make it per-partition state",
                    )
                )

    # Cross-check: barrier-only symbols must never be referenced from
    # window-side code (the declaration site itself is exempt).
    if not barrier_only:
        return
    for src in all_files:
        rel = os.path.relpath(src.path, root)
        if not is_window_side(rel):
            continue
        for obj in barrier_only:
            name_re = re.compile(rf"\b{re.escape(obj.name)}\b")
            for idx, line in enumerate(src.code):
                if not name_re.search(line):
                    continue
                if src.path == obj.path and idx + 1 == obj.lineno:
                    continue
                lineno = idx + 1
                if src.is_allowed(RULE, lineno):
                    continue
                decl_rel = os.path.relpath(obj.path, root)
                violations.append(
                    Violation(
                        src.path, lineno, RULE,
                        f"window-side file references '{obj.name}' "
                        f"({decl_rel}:{obj.lineno}), which is "
                        "MASQ_BARRIER_ONLY: barrier-only state may only "
                        "be touched by the coordinator between windows",
                    )
                )
