"""Per-line determinism and error-handling rules.

  nodiscard       Every header declaration returning rnic::Status or
                  rnic::Expected<T> must be [[nodiscard]] — dropped control
                  -path errors are the root cause the chaos suite exists to
                  catch, so discarding must be a compile error, not a habit.
  wall-clock      src/ must not consult wall clocks, sleep, or use
                  non-seeded randomness. Simulated time comes from
                  sim::EventLoop::now() and randomness from seeded engines;
                  anything else breaks bit-identical replay.
  unordered-iter  No range-for over std::unordered_* containers in src/.
                  Unordered iteration order is implementation-defined, and
                  any event scheduled (or callback fired) from inside such a
                  loop makes the event trace depend on hash-table layout.
                  Sites that sort before acting may annotate an allowance.
  naked-new       No naked `new` in src/ — ownership goes through
                  std::make_unique/std::make_shared or containers.
  container       No std::map / std::unordered_map in src/sim, src/rnic,
                  or src/sdn. The DESIGN.md §13 refactor moved every hot
                  table to sim::FlatMap (open addressing, insertion-ordered
                  iteration); node-based maps cost a cache miss per hop and
                  unordered ones leak hash-table layout into event order.
                  Cold-path exceptions annotate an allowance.
  event-callback  No std::function in event-loop scheduling signatures in
                  src/sim. Scheduling goes through sim::Callback (64-byte
                  SBO, move-only); std::function re-introduces a heap
                  allocation and a copy per scheduled event — the exact
                  costs the arena/SBO refactor removed.

The ``shared-state`` ownership pass lives in shared_state.py.
"""

from __future__ import annotations

import os
import re

from masq_lint.source import SourceFile, Violation

# ---------------------------------------------------------------------------
# Rule: nodiscard
# ---------------------------------------------------------------------------

# A return type of Status or Expected<...> followed by a function name and
# an opening paren. Qualified out-of-line definitions (Foo::bar) live in
# .cc files and inherit the annotation from their declaration.
NODISCARD_DECL_RE = re.compile(
    r"(?:^|[\s;{])((?:rnic::)?(?:Status|Expected<[^;=]*?>))\s+"
    r"([A-Za-z_]\w*)\s*\("
)
DECL_PREFIX_OK_RE = re.compile(r"(?:virtual|static|inline|constexpr|friend|explicit)$")


def check_nodiscard(src: SourceFile, violations: list[Violation]) -> None:
    if not src.path.endswith(".h"):
        return
    for idx, line in enumerate(src.code):
        for m in NODISCARD_DECL_RE.finditer(line):
            start = m.start(1)
            before = line[:start]
            # Skip template arguments / casts: Task<Status>, pair<Status, T>.
            if before.rstrip().endswith(("<", ",", "(", "::")):
                continue
            # Skip qualified definitions (Device::foo) — none in headers
            # except inline methods, which regex position already excludes.
            context = before.rstrip()
            # [[nodiscard]] on the same line, before the type?
            if "[[nodiscard]]" in before:
                continue
            # ...or trailing on the previous line (multi-line declaration).
            prev = src.code[idx - 1].rstrip() if idx > 0 else ""
            if prev.endswith("[[nodiscard]]"):
                continue
            # Allow pure keyword prefixes between nodiscard and the type.
            last_tok = context.split()[-1] if context.split() else ""
            if last_tok and not DECL_PREFIX_OK_RE.fullmatch(last_tok):
                # Mid-expression use of the name (e.g. `return Status(...)`,
                # a variable declaration would lack the paren anyway).
                continue
            lineno = idx + 1
            if src.is_allowed("nodiscard", lineno):
                continue
            violations.append(
                Violation(
                    src.path, lineno, "nodiscard",
                    f"declaration of '{m.group(2)}' returns {m.group(1)} "
                    "without [[nodiscard]]",
                )
            )


# ---------------------------------------------------------------------------
# Rule: wall-clock
# ---------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bsleep_for\b"), "std::this_thread::sleep_for"),
    (re.compile(r"\bsleep_until\b"), "std::this_thread::sleep_until"),
    (re.compile(r"\b(?:u|nano)?sleep\s*\("), "sleep()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
]


def check_wall_clock(src: SourceFile, violations: list[Violation]) -> None:
    for idx, line in enumerate(src.code):
        for pat, label in WALL_CLOCK_PATTERNS:
            if pat.search(line):
                lineno = idx + 1
                if src.is_allowed("wall-clock", lineno):
                    continue
                violations.append(
                    Violation(
                        src.path, lineno, "wall-clock",
                        f"{label} breaks deterministic replay; use "
                        "sim::EventLoop time / seeded engines",
                    )
                )


# ---------------------------------------------------------------------------
# Rule: unordered-iter
# ---------------------------------------------------------------------------

UNORDERED_DECL_START_RE = re.compile(r"std::unordered_(?:multi)?(?:map|set)\b")
DECL_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&\s\[\]]+?:\s*([^)]+)\)"
)


def unordered_names(files: list[SourceFile]) -> set[str]:
    """Names of variables/members declared with an unordered container."""
    names: set[str] = set()
    for src in files:
        pending = ""
        for line in src.code:
            if pending:
                pending += " " + line.strip()
            elif UNORDERED_DECL_START_RE.search(line):
                pending = line.strip()
            else:
                continue
            if ";" not in pending:
                # Declarations can span lines (template args wrap); keep
                # accumulating, but bail out of obvious non-declarations.
                if len(pending) > 400:
                    pending = ""
                continue
            m = DECL_NAME_RE.search(pending)
            if m:
                names.add(m.group(1))
            pending = ""
    return names


def container_token(expr: str) -> str:
    """`backend.conntrack().table_` -> `table_`; `*map_` -> `map_`."""
    expr = expr.strip().rstrip(")")
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[-1]
    expr = expr.strip().lstrip("*&(")
    m = re.match(r"([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""


def check_unordered_iter(files_by_dir: dict[str, list[SourceFile]],
                         violations: list[Violation]) -> None:
    for _dir, files in sorted(files_by_dir.items()):
        # Directory-scoped resolution: a name declared unordered anywhere in
        # this directory taints range-fors over that name in the directory.
        # (Cross-directory member access goes through accessors, which are
        # not range-for'd directly.)
        names = unordered_names(files)
        if not names:
            continue
        for src in files:
            for idx, line in enumerate(src.code):
                m = RANGE_FOR_RE.search(line)
                if not m:
                    continue
                token = container_token(m.group(1))
                if token not in names:
                    continue
                lineno = idx + 1
                if src.is_allowed("unordered-iter", lineno):
                    continue
                violations.append(
                    Violation(
                        src.path, lineno, "unordered-iter",
                        f"range-for over unordered container '{token}': "
                        "iteration order is nondeterministic; sort first or "
                        "use an ordered container",
                    )
                )


# ---------------------------------------------------------------------------
# Rule: naked-new
# ---------------------------------------------------------------------------

# `new T(...)` but not placement new (`new (ptr) T(...)` / `::new (ptr)`)
# — placement new constructs into storage someone else already owns, which
# is exactly the SBO/arena pattern, not an ownership escape.
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_]")


def check_naked_new(src: SourceFile, violations: list[Violation]) -> None:
    for idx, line in enumerate(src.code):
        if not NAKED_NEW_RE.search(line):
            continue
        lineno = idx + 1
        if src.is_allowed("naked-new", lineno):
            continue
        violations.append(
            Violation(
                src.path, lineno, "naked-new",
                "naked new: route ownership through std::make_unique / "
                "std::make_shared or a container",
            )
        )


# ---------------------------------------------------------------------------
# Rule: container
# ---------------------------------------------------------------------------

# Directories the flat-map sweep converted; new node-based maps may not
# creep back in. (std::set stays legal — ordered sets are deterministic and
# have no flat replacement in-tree yet.)
CONTAINER_DIRS = (
    os.path.join("src", "sim"),
    os.path.join("src", "rnic"),
    os.path.join("src", "sdn"),
)
CONTAINER_RE = re.compile(r"\bstd::(unordered_map|map)\s*<")


def check_container(src: SourceFile, violations: list[Violation]) -> None:
    if not any(os.sep + d + os.sep in src.path for d in CONTAINER_DIRS):
        return
    for idx, line in enumerate(src.code):
        m = CONTAINER_RE.search(line)
        if not m:
            continue
        lineno = idx + 1
        if src.is_allowed("container", lineno):
            continue
        violations.append(
            Violation(
                src.path, lineno, "container",
                f"std::{m.group(1)} on a hot-path layer: use sim::FlatMap "
                "(open addressing, insertion-ordered iteration) instead",
            )
        )


# ---------------------------------------------------------------------------
# Rule: event-callback
# ---------------------------------------------------------------------------

# A scheduling signature is one that both names a scheduling verb and takes
# a std::function — the shape the sim::Callback refactor eliminated from
# the event loop. Hook registration (FaultPlane::arm etc.) is not
# scheduling and stays free to use std::function.
SCHEDULE_VERB_RE = re.compile(
    r"\b(?:schedule\w*|defer|post|run_at|call_at|call_in)\s*\("
)
EVENT_CB_DIR = os.path.join("src", "sim")


def check_event_callback(src: SourceFile,
                         violations: list[Violation]) -> None:
    if os.sep + EVENT_CB_DIR + os.sep not in src.path:
        return
    for idx, line in enumerate(src.code):
        if "std::function" not in line or not SCHEDULE_VERB_RE.search(line):
            continue
        lineno = idx + 1
        if src.is_allowed("event-callback", lineno):
            continue
        violations.append(
            Violation(
                src.path, lineno, "event-callback",
                "std::function in an event-loop scheduling signature: "
                "scheduling takes sim::Callback (SBO, move-only) — "
                "std::function heap-allocates per event",
            )
        )
