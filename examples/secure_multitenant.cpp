// Secure multi-tenant scenario (the Fig. 6 walkthrough, end to end).
//
// Two tenants share the physical fabric; tenant "red" even reuses tenant
// "blue"'s virtual IPs. The example shows:
//   1. tenants are segregated — identical vIPs never collide (RConnrename
//      keys its mapping by (VNI, vGID));
//   2. a security rule forbidding cross-subnet RDMA makes connection
//      establishment fail with permission-denied (RConntrack valid_conn);
//   3. relaxing the rule lets the connection form; tightening it again
//      tears the *established* connection down mid-traffic (reset_conn).
//
//   $ ./examples/secure_multitenant
#include <cstdio>

#include "apps/common.h"
#include "fabric/testbed.h"

namespace {

constexpr std::uint32_t kBlue = 100;
constexpr std::uint32_t kRed = 200;

void say(fabric::Testbed& bed, const char* msg) {
  std::printf("[%10s] %s\n", sim::format_time(bed.loop().now()).c_str(), msg);
}

sim::Task<void> passive_server(fabric::Testbed& bed, std::size_t idx,
                               std::size_t peer, std::uint16_t port) {
  auto ep = co_await apps::setup_endpoint(bed.ctx(idx));
  (void)co_await apps::connect_server(bed.ctx(idx), ep,
                                      bed.instance_vip(peer), port);
}

sim::Task<void> scenario(fabric::Testbed& bed) {
  // ---- 1. tenant segregation despite IP collision --------------------
  say(bed, "blue VM connects to blue 192.168.1.2 (red has the same vIP)");
  bed.loop().spawn(passive_server(bed, 1, 0, 5001));
  auto blue = co_await apps::setup_endpoint(bed.ctx(0));
  rnic::Status st =
      co_await apps::connect_client(bed.ctx(0), blue, bed.instance_vip(1),
                                    5001);
  std::printf("    -> %s; controller mapped (vni=%u, %s) to %s\n",
              rnic::to_string(st), kBlue,
              blue.peer.gid.str().c_str(),
              bed.device(0).qp_hw_attr(blue.qp).dest_gid.str().c_str());
  apps::put_string(bed.ctx(0), blue, 0, "blue secret");
  (void)co_await apps::write_and_wait(bed.ctx(0), blue, 0, 0, 11);
  say(bed, "blue traffic flows; red tenants saw nothing");

  // ---- 2. rules gate connection establishment ------------------------
  say(bed, "operator denies RDMA between red's VMs, then red tries to "
           "connect");
  auto& pol = bed.policy(kRed);
  const auto deny_id = pol.firewall(overlay::Chain::kForward)
                           .add_rule(overlay::Rule::deny(
                               net::Ipv4Cidr::any(), net::Ipv4Cidr::any(),
                               overlay::Proto::kRdma, 500));
  pol.notify_changed();
  auto red = co_await apps::setup_endpoint(bed.ctx(2));
  bed.loop().spawn(passive_server(bed, 3, 2, 5002));
  st = co_await apps::connect_client(bed.ctx(2), red, bed.instance_vip(3),
                                     5002);
  std::printf("    -> modify_qp(RTR) rejected: %s (RConntrack valid_conn)\n",
              rnic::to_string(st));

  // ---- 3. established connections die on rule updates ----------------
  say(bed, "operator lifts the rule; red reconnects and starts traffic");
  pol.firewall(overlay::Chain::kForward).remove_rule(deny_id);
  pol.notify_changed();
  auto red2 = co_await apps::setup_endpoint(bed.ctx(2));
  bed.loop().spawn(passive_server(bed, 3, 2, 5003));
  st = co_await apps::connect_client(bed.ctx(2), red2, bed.instance_vip(3),
                                     5003);
  std::printf("    -> %s; QP state = %s\n", rnic::to_string(st),
              rnic::to_string(bed.device(0).qp_state(red2.qp)));
  (void)co_await apps::write_and_wait(bed.ctx(2), red2, 0, 0, 1024);

  say(bed, "operator re-installs the deny rule while traffic is live");
  auto& conntrack = bed.masq_backend(0).conntrack();
  (void)co_await conntrack.install_rule(
      pol, pol.firewall(overlay::Chain::kForward),
      overlay::Rule::deny(net::Ipv4Cidr::any(), net::Ipv4Cidr::any(),
                          overlay::Proto::kRdma, 500));
  co_await sim::delay(bed.loop(), sim::milliseconds(2));
  std::printf("    -> RConntrack reset the connection: QP state = %s, "
              "resets performed = %llu\n",
              rnic::to_string(bed.device(0).qp_state(red2.qp)),
              static_cast<unsigned long long>(conntrack.resets_performed()));
  const auto wc = co_await apps::send_and_wait(bed.ctx(2), red2, 0, 8);
  std::printf("    -> further sends flush with: %s (Table 2 semantics)\n",
              rnic::to_string(wc));
}

}  // namespace

int main() {
  std::printf("MasQ secure multi-tenant walkthrough\n\n");
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  (void)bed.add_instance(kBlue);  // 0: blue 192.168.1.1
  (void)bed.add_instance(kBlue);  // 1: blue 192.168.1.2
  (void)bed.add_instance(kRed);   // 2: red  192.168.1.1 (collision!)
  (void)bed.add_instance(kRed);   // 3: red  192.168.1.2 (collision!)
  std::printf("blue(vni=%u): %s, %s   red(vni=%u): %s, %s\n\n", kBlue,
              bed.instance_vip(0).str().c_str(),
              bed.instance_vip(1).str().c_str(), kRed,
              bed.instance_vip(2).str().c_str(),
              bed.instance_vip(3).str().c_str());
  loop.spawn(scenario(bed));
  loop.run();
  std::printf("\ndone.\n");
  return 0;
}
