// QoS / performance isolation (§3.3.3, the Fig. 17 story as an API demo).
//
// Two tenants run bulk transfers over the shared 40 Gbps port. The
// operator programs per-tenant rate limits through MasQ's backend — which
// maps each tenant's QP group to an SR-IOV VF hardware rate limiter — and
// the example samples both tenants' goodput as limits change. No CPU is
// spent enforcing any of this.
//
//   $ ./examples/qos_tenants
#include <cstdio>

#include "apps/common.h"
#include "fabric/testbed.h"

namespace {

struct FlowStats {
  std::uint64_t bytes = 0;
};

sim::Task<void> bulk_writer(fabric::Testbed& bed, std::size_t src,
                            std::size_t dst, std::uint16_t port,
                            FlowStats* stats, sim::Time deadline) {
  constexpr std::uint32_t kMsg = 4 * 1024 * 1024;
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed, std::size_t dst,
                               std::size_t src, std::uint16_t port) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(dst),
                                              {.buf_len = kMsg});
      (void)co_await apps::connect_server(bed->ctx(dst), ep,
                                          bed->instance_vip(src), port);
    }
  };
  bed.loop().spawn(Srv::run(&bed, dst, src, port));
  auto ep = co_await apps::setup_endpoint(bed.ctx(src), {.buf_len = kMsg});
  (void)co_await apps::connect_client(bed.ctx(src), ep,
                                      bed.instance_vip(dst), port);
  while (bed.loop().now() < deadline) {
    if (co_await apps::write_and_wait(bed.ctx(src), ep, 0, 0, kMsg) !=
        rnic::WcStatus::kSuccess) {
      break;
    }
    stats->bytes += kMsg;
  }
}

sim::Task<void> operator_console(fabric::Testbed& bed, FlowStats* a,
                                 FlowStats* b) {
  auto sample = [&](const char* phase) {
    static std::uint64_t last_a = 0, last_b = 0;
    const double ga = static_cast<double>(a->bytes - last_a) * 8 / 1e9;
    const double gb = static_cast<double>(b->bytes - last_b) * 8 / 1e9;
    last_a = a->bytes;
    last_b = b->bytes;
    std::printf("  %-34s tenant-A %6.1f Gbps   tenant-B %6.1f Gbps\n",
                phase, ga, gb);
  };
  auto& backend = bed.masq_backend(0);
  co_await sim::delay(bed.loop(), sim::seconds(1));
  sample("no limits (fair share):");
  backend.set_tenant_rate_limit(100, 10.0);
  co_await sim::delay(bed.loop(), sim::seconds(1));
  sample("tenant-A capped at 10 Gbps:");
  backend.set_tenant_rate_limit(100, 5.0);
  backend.set_tenant_rate_limit(200, 20.0);
  co_await sim::delay(bed.loop(), sim::seconds(1));
  sample("A capped 5, B capped 20:");
  backend.set_tenant_rate_limit(100, 40.0);
  backend.set_tenant_rate_limit(200, 40.0);
  co_await sim::delay(bed.loop(), sim::seconds(1));
  sample("limits lifted:");
}

}  // namespace

int main() {
  std::printf("MasQ per-tenant QoS demo (QP groups -> VF rate limiters)\n\n");
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.cal.vm_mem_bytes = 1ull << 30;
  fabric::Testbed bed(loop, cfg);
  (void)bed.add_instance(100);
  (void)bed.add_instance(100);
  (void)bed.add_instance(200);
  (void)bed.add_instance(200);
  std::printf("tenant A (vni 100) -> VF %d, tenant B (vni 200) -> VF %d on "
              "%s\n\n",
              bed.masq_backend(0).tenant_fn(100),
              bed.masq_backend(0).tenant_fn(200),
              bed.device(0).config().name.c_str());
  FlowStats a, b;
  loop.spawn(bulk_writer(bed, 0, 1, 6001, &a, sim::seconds(4)));
  loop.spawn(bulk_writer(bed, 2, 3, 6002, &b, sim::seconds(4)));
  loop.spawn(operator_console(bed, &a, &b));
  loop.run();
  std::printf("\ntotal: tenant-A %.1f GB, tenant-B %.1f GB in 4 simulated "
              "seconds\n",
              static_cast<double>(a.bytes) / 1e9,
              static_cast<double>(b.bytes) / 1e9);
  return 0;
}
