// Quickstart: the smallest end-to-end MasQ program.
//
// Builds the two-server testbed, boots two VMs in one tenant, walks the
// full Fig. 1 flow (resources -> OOB exchange -> QP ladder) and moves real
// bytes both ways — a two-sided send and a one-sided RDMA write. Run it
// with no arguments; it narrates each step with simulated timestamps.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "apps/common.h"
#include "fabric/testbed.h"

namespace {

void log_step(fabric::Testbed& bed, const char* msg) {
  std::printf("[%10s] %s\n", sim::format_time(bed.loop().now()).c_str(), msg);
}

sim::Task<void> server(fabric::Testbed& bed) {
  verbs::Context& ctx = bed.ctx(1);
  log_step(bed, "server: allocating PD/MR/CQ/QP (control path via virtio)");
  apps::Endpoint ep = co_await apps::setup_endpoint(ctx);
  log_step(bed, "server: waiting for the client's connection info (TCP)");
  (void)co_await apps::connect_server(ctx, ep, bed.instance_vip(0), 4791);
  log_step(bed, "server: QP is RTS; posting a receive");
  rnic::Completion c = co_await apps::recv_and_wait(ctx, ep, 0, 4096);
  std::printf("[%10s] server: received %u bytes: \"%s\"\n",
              sim::format_time(bed.loop().now()).c_str(), c.byte_len,
              apps::get_string(ctx, ep, 0, c.byte_len).c_str());
  // Answer with a one-sided write into the client's buffer — the client's
  // CPU never sees this message arrive.
  apps::put_string(ctx, ep, 8192, "greetings from the masqueraded side");
  (void)co_await apps::write_and_wait(ctx, ep, 8192, 8192, 36);
  log_step(bed, "server: wrote the reply straight into the client's MR");
}

sim::Task<void> client(fabric::Testbed& bed) {
  verbs::Context& ctx = bed.ctx(0);
  log_step(bed, "client: allocating PD/MR/CQ/QP");
  apps::Endpoint ep = co_await apps::setup_endpoint(ctx);
  std::printf("[%10s] client: my virtual GID is %s (vBond keeps it in sync "
              "with the vEth IP)\n",
              sim::format_time(bed.loop().now()).c_str(),
              ep.local_gid.str().c_str());
  log_step(bed, "client: exchanging QPN/GID/rkey over the tenant network");
  const rnic::Status st =
      co_await apps::connect_client(ctx, ep, bed.instance_vip(1), 4791);
  if (st != rnic::Status::kOk) {
    std::printf("connect failed: %s\n", rnic::to_string(st));
    co_return;
  }
  std::printf("[%10s] client: connected. I exchanged virtual GID %s; the "
              "RNIC's QPC secretly holds the peer's *physical* GID %s "
              "(RConnrename)\n",
              sim::format_time(bed.loop().now()).c_str(),
              ep.peer.gid.str().c_str(),
              bed.device(0).qp_hw_attr(ep.qp).dest_gid.str().c_str());
  apps::put_string(ctx, ep, 0, "hello through the queue masquerade");
  (void)co_await apps::send_and_wait(ctx, ep, 0, 34);
  log_step(bed, "client: send completed (zero host software on the path)");
  // Wait for the server's one-sided reply to land in our buffer.
  co_await ctx.next_rx_event(ep.qp);
  std::printf("[%10s] client: reply appeared in my memory: \"%s\"\n",
              sim::format_time(bed.loop().now()).c_str(),
              apps::get_string(ctx, ep, 8192, 36).c_str());
}

}  // namespace

int main() {
  std::printf("MasQ quickstart: two VMs, one tenant, two servers, "
              "40 Gbps RoCEv2 underlay\n\n");
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  std::printf("tenant %u: VM %s on %s  <->  VM %s on %s\n\n",
              bed.instance_vni(0), bed.instance_vip(0).str().c_str(),
              bed.host(0).name().c_str(), bed.instance_vip(1).str().c_str(),
              bed.host(1).name().c_str());
  loop.spawn(server(bed));
  loop.spawn(client(bed));
  loop.run();
  std::printf("\ndone at simulated t=%s\n",
              sim::format_time(loop.now()).c_str());
  return 0;
}
