// A small key-value service on MasQ (the §4.4.2 workload as an
// application): one server VM with a worker pool, several client VMs
// issuing GETs and PUTs over RC connections, everything inside one tenant
// of the VPC. Prints the measured throughput and verifies a read-your-
// writes sequence at the end.
//
//   $ ./examples/kvs_cluster
#include <cstdio>

#include "apps/kvs.h"
#include "bench/bench_util.h"

int main() {
  std::printf("MasQ KVS cluster: 1 server VM (14 workers), 8 client "
              "threads, 95%% GET / 5%% PUT\n\n");
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.cal.vm_mem_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);

  apps::kvs::Config kc;
  kc.num_clients = 8;
  kc.num_keys = 50'000;
  kc.warmup = sim::milliseconds(1);
  kc.measure = sim::milliseconds(8);
  const auto result = apps::kvs::run(bed, kc);

  std::printf("throughput        : %.2f Mops\n", result.mops);
  std::printf("operations        : %llu (%llu GET / %llu PUT)\n",
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.gets),
              static_cast<unsigned long long>(result.puts));
  std::printf("GET hit rate      : %.1f%%\n",
              100.0 * static_cast<double>(result.get_hits) /
                  static_cast<double>(result.gets));
  std::printf("value mismatches  : %llu (bytes really crossed the DMA "
              "path)\n",
              static_cast<unsigned long long>(result.value_mismatches));
  std::printf("\nServer-side RNIC processed %llu rx + %llu tx messages; "
              "MasQ added zero software to any of them.\n",
              static_cast<unsigned long long>(
                  bed.device(0).counters().rx_msgs),
              static_cast<unsigned long long>(
                  bed.device(0).counters().tx_msgs));
  return result.value_mismatches == 0 ? 0 : 1;
}
