// Live migration of an RDMA-capable VM, both ways: the paper's
// app-assisted scheme (§5) and the transparent path (DESIGN.md §15).
//
// Act one — app-assisted (what §5 proposes, after AccelNet). RDMA
// bypasses the hypervisor, so dirty pages can't be tracked; the paper
// therefore asks the application to cooperate:
//
//   1. VM-A (server-0) <-> VM-B (server-1) exchange RDMA traffic;
//   2. the app drains and destroys its QP, keeps talking over the OOB
//      (TCP) channel;
//   3. VM-A migrates to server-1; vBond re-registers its unchanged vGID
//      to the *new* host's physical GID, and the controller pushes the
//      updated mapping to every host cache;
//   4. the app reconnects — same virtual addresses, new underlay route —
//      and RDMA traffic resumes.
//
// Act two — transparent (`Testbed::migrate_vm`, DESIGN.md §15). The
// hypervisor quiesces and drains the QPs, moves the VM to server-2 with
// every RNIC object intact, and resumes: the *same established
// connection* carries traffic after the move. No teardown, no TCP
// fallback, no reconnect — the app and its peer observe only the
// blackout latency, and a WQE digest proves nothing was lost in flight.
//
//   $ ./examples/live_migration
#include <cstdio>

#include "apps/common.h"
#include "fabric/testbed.h"

namespace {

void say(fabric::Testbed& bed, const char* msg) {
  std::printf("[%10s] %s\n", sim::format_time(bed.loop().now()).c_str(), msg);
}

sim::Task<void> peer(fabric::Testbed& bed, std::uint16_t port) {
  // VM-B: serve a connection, receive until the sender disconnects, then
  // serve the post-migration reconnect.
  auto ep = co_await apps::setup_endpoint(bed.ctx(1));
  (void)co_await apps::connect_server(bed.ctx(1), ep, bed.instance_vip(0),
                                      port);
  (void)co_await apps::recv_and_wait(bed.ctx(1), ep, 0, 4096);
  // TCP fallback during the blackout: acknowledge the app-level drain.
  overlay::Blob drain = co_await bed.ctx(1).oob().recv(port + 1);
  (void)drain;
  overlay::Blob ok{'o', 'k'};
  (void)co_await bed.ctx(1).oob().send(bed.instance_vip(0), port + 1, ok);
  // Post-migration reconnect on a fresh endpoint.
  auto ep2 = co_await apps::setup_endpoint(bed.ctx(1));
  (void)co_await apps::connect_server(bed.ctx(1), ep2, bed.instance_vip(0),
                                      port + 2);
  auto c = co_await apps::recv_and_wait(bed.ctx(1), ep2, 0, 4096);
  std::printf("[%10s] VM-B: post-migration message: \"%s\"\n",
              sim::format_time(bed.loop().now()).c_str(),
              apps::get_string(bed.ctx(1), ep2, 0, c.byte_len).c_str());
  // Act two: the next message arrives over this SAME connection after the
  // transparent move — the posted receive simply completes.
  auto c2 = co_await apps::recv_and_wait(bed.ctx(1), ep2, 0, 4096);
  std::printf("[%10s] VM-B: over the same QP after the transparent move: "
              "\"%s\"\n",
              sim::format_time(bed.loop().now()).c_str(),
              apps::get_string(bed.ctx(1), ep2, 0, c2.byte_len).c_str());
}

sim::Task<void> migrating_app(fabric::Testbed& bed, std::uint16_t port) {
  say(bed, "VM-A: establishing RDMA connection and sending");
  auto ep = co_await apps::setup_endpoint(bed.ctx(0));
  (void)co_await apps::connect_client(bed.ctx(0), ep, bed.instance_vip(1),
                                      port);
  apps::put_string(bed.ctx(0), ep, 0, "before migration");
  (void)co_await apps::send_and_wait(bed.ctx(0), ep, 0, 16);

  say(bed, "VM-A: app-assisted migration: destroying QP, falling back to "
           "TCP");
  co_await apps::destroy_endpoint(bed.ctx(0), ep);
  overlay::Blob drain{'d'};
  (void)co_await bed.ctx(0).oob().send(bed.instance_vip(1), port + 1, drain);
  (void)co_await bed.ctx(0).oob().recv(port + 1);

  const auto old_pgid = *bed.controller().lookup(
      100, net::Gid::from_ipv4(bed.instance_vip(0)));
  say(bed, "hypervisor: migrating VM-A to the other server");
  if (bed.migrate_instance(0, 1) != rnic::Status::kOk) {
    std::printf("migration failed!\n");
    co_return;
  }
  const auto new_pgid = *bed.controller().lookup(
      100, net::Gid::from_ipv4(bed.instance_vip(0)));
  std::printf("[%10s] controller: vGID %s remapped %s -> %s (pushed to all "
              "host caches)\n",
              sim::format_time(bed.loop().now()).c_str(),
              net::Gid::from_ipv4(bed.instance_vip(0)).str().c_str(),
              old_pgid.str().c_str(), new_pgid.str().c_str());

  say(bed, "VM-A: re-establishing the RDMA connection from the new host");
  auto ep2 = co_await apps::setup_endpoint(bed.ctx(0));
  const auto st = co_await apps::connect_client(bed.ctx(0), ep2,
                                                bed.instance_vip(1),
                                                port + 2);
  std::printf("[%10s] VM-A: reconnect: %s (same virtual addresses, new "
              "underlay path)\n",
              sim::format_time(bed.loop().now()).c_str(),
              rnic::to_string(st));
  apps::put_string(bed.ctx(0), ep2, 0, "after migration");
  (void)co_await apps::send_and_wait(bed.ctx(0), ep2, 0, 15);

  say(bed, "act two: transparent migration of VM-A to a third host — the "
           "connection stays established");
  if (co_await bed.migrate_vm(0, 2) != rnic::Status::kOk) {
    std::printf("transparent migration failed!\n");
    co_return;
  }
  const masq::MigrationReport& r = bed.last_migration_report();
  std::printf("[%10s] hypervisor: moved %zu QP(s), %zu MR(s), %llu KiB of "
              "guest RAM; blackout %.0f us, WQE digest verified\n",
              sim::format_time(bed.loop().now()).c_str(), r.qps_moved,
              r.mrs_moved,
              static_cast<unsigned long long>(r.guest_bytes_copied >> 10),
              sim::to_us(r.pause_time));
  say(bed, "VM-A: sending over the untouched connection (same QPN, no "
           "reconnect)");
  apps::put_string(bed.ctx(0), ep2, 0, "same QP, new host");
  (void)co_await apps::send_and_wait(bed.ctx(0), ep2, 0, 17);
}

}  // namespace

int main() {
  std::printf("MasQ live migration: app-assisted (§5, after AccelNet) and "
              "transparent (DESIGN.md §15)\n\n");
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.num_hosts = 3;  // server-2 is the transparent-migration target
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  std::printf("VM-A %s on %s, VM-B %s on %s\n\n",
              bed.instance_vip(0).str().c_str(), bed.host(0).name().c_str(),
              bed.instance_vip(1).str().c_str(), bed.host(1).name().c_str());
  loop.spawn(peer(bed, 4791));
  loop.spawn(migrating_app(bed, 4791));
  loop.run();
  std::printf("\nVM-A now runs on %s.\n",
              bed.host(bed.instance_host(0)).name().c_str());
  return 0;
}
