// RNIC device tests: QP state machine (Fig. 5), Table-2 ERROR-state
// behaviour, data integrity for send/write/read, protection-domain and
// function isolation, RC ordering, VF rate limiting, the VXLAN tunnel-table
// cache, and failure injection (RNR, remote access errors, unroutable
// virtual addresses).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mem/physical_memory.h"
#include "net/fluid.h"
#include "rnic/device.h"
#include "sim/event_loop.h"

using namespace sim::literals;

namespace {

using rnic::Completion;
using rnic::QpState;
using rnic::Qpn;
using rnic::RecvWr;
using rnic::SendWr;
using rnic::Status;
using rnic::WcStatus;
using rnic::WrOpcode;

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

class MapRouter : public rnic::FabricRouter {
 public:
  void add(rnic::RnicDevice* dev) { by_ip_[dev->config().ip] = dev; }
  rnic::RnicDevice* device_by_ip(net::Ipv4Addr a) override {
    auto it = by_ip_.find(a);
    return it == by_ip_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<net::Ipv4Addr, rnic::RnicDevice*> by_ip_;
};

struct Endpoint {
  rnic::PdId pd = 0;
  rnic::Cqn scq = 0;
  rnic::Cqn rcq = 0;
  Qpn qp = 0;
  rnic::Key key = 0;
  mem::Addr va = 0;
  mem::Addr hpa = 0;
  std::uint64_t buf_len = 0;
};

class RnicTest : public ::testing::Test {
 protected:
  RnicTest() {
    rnic::DeviceConfig ca;
    ca.name = "rnic-a";
    ca.ip = ip("10.0.0.1");
    ca.mac = net::MacAddr::from_u64(0xa);
    rnic::DeviceConfig cb = ca;
    cb.name = "rnic-b";
    cb.ip = ip("10.0.0.2");
    cb.mac = net::MacAddr::from_u64(0xb);
    a_ = std::make_unique<rnic::RnicDevice>(loop_, net_, phys_, ca);
    b_ = std::make_unique<rnic::RnicDevice>(loop_, net_, phys_, cb);
    router_.add(a_.get());
    router_.add(b_.get());
    a_->attach(&router_);
    b_->attach(&router_);
  }

  Endpoint make_ep(rnic::RnicDevice& dev, rnic::FnId fn = rnic::kPf,
                   std::uint64_t buf_len = 16384,
                   std::uint32_t access = rnic::kLocalWrite |
                                          rnic::kRemoteWrite |
                                          rnic::kRemoteRead,
                   rnic::QpType type = rnic::QpType::kRc,
                   std::uint32_t max_wr = 128) {
    Endpoint e;
    e.pd = dev.alloc_pd(fn).value;
    e.scq = dev.create_cq(fn, 1024).value;
    e.rcq = dev.create_cq(fn, 1024).value;
    rnic::QpInitAttr init;
    init.type = type;
    init.pd = e.pd;
    init.send_cq = e.scq;
    init.recv_cq = e.rcq;
    init.caps.max_send_wr = max_wr;
    init.caps.max_recv_wr = 1024;
    e.qp = dev.create_qp(fn, init).value;
    const auto pages = mem::page_ceil(buf_len) / mem::kPageSize;
    e.hpa = phys_.alloc_pages(pages);
    e.va = 0x7f0000000000ull + e.hpa;
    e.buf_len = buf_len;
    auto mr = dev.create_mr(fn, e.pd, e.va, buf_len, access,
                            {{e.hpa, buf_len}});
    EXPECT_TRUE(mr.ok());
    e.key = mr.value.lkey;
    return e;
  }

  // Brings both QPs to RTS, each pointing at the peer's *physical* GID.
  void connect(rnic::RnicDevice& da, Endpoint& ea, rnic::RnicDevice& db,
               Endpoint& eb) {
    rnic::QpAttr attr;
    attr.state = QpState::kInit;
    ASSERT_EQ(da.modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
    ASSERT_EQ(db.modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);
    attr.state = QpState::kRtr;
    attr.dest_gid = net::Gid::from_ipv4(db.config().ip);
    attr.dest_qpn = eb.qp;
    ASSERT_EQ(da.modify_qp(ea.qp, attr,
                           rnic::kAttrState | rnic::kAttrDestGid |
                               rnic::kAttrDestQpn),
              Status::kOk);
    attr.dest_gid = net::Gid::from_ipv4(da.config().ip);
    attr.dest_qpn = ea.qp;
    ASSERT_EQ(db.modify_qp(eb.qp, attr,
                           rnic::kAttrState | rnic::kAttrDestGid |
                               rnic::kAttrDestQpn),
              Status::kOk);
    attr.state = QpState::kRts;
    ASSERT_EQ(da.modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
    ASSERT_EQ(db.modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);
  }

  void fill(const Endpoint& e, std::uint64_t off, std::string_view data) {
    phys_.write(e.hpa + off, {reinterpret_cast<const std::uint8_t*>(
                                  data.data()),
                              data.size()});
  }
  std::string peek(const Endpoint& e, std::uint64_t off, std::size_t n) {
    std::vector<std::uint8_t> buf(n);
    phys_.read(e.hpa + off, buf);
    return std::string(buf.begin(), buf.end());
  }

  std::vector<Completion> drain(rnic::RnicDevice& dev, rnic::Cqn cq) {
    std::vector<Completion> out;
    Completion c;
    while (dev.poll_cq(cq, 1, &c) == 1) out.push_back(c);
    return out;
  }

  sim::EventLoop loop_;
  net::FluidNet net_{loop_};
  mem::HostPhysMap phys_{4096 * mem::kPageSize};
  MapRouter router_;
  std::unique_ptr<rnic::RnicDevice> a_, b_;
};

// ------------------------------------------------------------ state machine

TEST_F(RnicTest, FsmLadderResetToRts) {
  auto e = make_ep(*a_);
  EXPECT_EQ(a_->qp_state(e.qp), QpState::kReset);
  rnic::QpAttr attr;
  attr.state = QpState::kRtr;
  EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState),
            Status::kInvalidState);  // RESET -> RTR skips INIT
  attr.state = QpState::kInit;
  EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRts;
  EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState),
            Status::kInvalidState);  // INIT -> RTS skips RTR
  attr.state = QpState::kRtr;
  EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRts;
  EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk);
}

TEST_F(RnicTest, AnyStateReachesErrorAndOnlyResetLeavesIt) {
  for (QpState s : {QpState::kReset, QpState::kInit, QpState::kRtr,
                    QpState::kRts}) {
    auto e = make_ep(*a_);
    rnic::QpAttr attr;
    // Walk to the target state.
    for (QpState step : {QpState::kInit, QpState::kRtr, QpState::kRts}) {
      if (static_cast<int>(step) > static_cast<int>(s)) break;
      attr.state = step;
      ASSERT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk);
    }
    attr.state = QpState::kError;
    EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk)
        << "from state " << rnic::to_string(s);
    attr.state = QpState::kRts;
    EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState),
              Status::kInvalidState);
    attr.state = QpState::kReset;
    EXPECT_EQ(a_->modify_qp(e.qp, attr, rnic::kAttrState), Status::kOk);
  }
}

TEST_F(RnicTest, SqdPausesTransmitUntilResumed) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  rnic::QpAttr attr;
  attr.state = QpState::kSqd;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  fill(ea, 0, "drain-test");
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{2, WrOpcode::kSend, {ea.va, 10, ea.key}}),
      Status::kOk);
  loop_.run();
  EXPECT_TRUE(drain(*b_, eb.rcq).empty());  // nothing sent while drained
  attr.state = QpState::kRts;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*b_, eb.rcq).size(), 1u);
}

// ----------------------------------------------------------- data transfers

TEST_F(RnicTest, SendRecvMovesRealBytes) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  fill(ea, 0, "hello rdma world");
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{7, {eb.va, 64, eb.key}}), Status::kOk);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{9, WrOpcode::kSend, {ea.va, 16, ea.key}}),
      Status::kOk);
  loop_.run();
  auto send_cqes = drain(*a_, ea.scq);
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].wr_id, 9u);
  EXPECT_EQ(send_cqes[0].status, WcStatus::kSuccess);
  auto recv_cqes = drain(*b_, eb.rcq);
  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].wr_id, 7u);
  EXPECT_EQ(recv_cqes[0].byte_len, 16u);
  EXPECT_EQ(peek(eb, 0, 16), "hello rdma world");
}

TEST_F(RnicTest, RdmaWriteLandsAtRemoteOffsetWithoutRecvWqe) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  fill(ea, 0, "one-sided");
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 9, ea.key}};
  wr.remote_addr = eb.va + 100;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  EXPECT_EQ(peek(eb, 100, 9), "one-sided");
  ASSERT_EQ(drain(*a_, ea.scq).size(), 1u);
  EXPECT_TRUE(drain(*b_, eb.rcq).empty());  // no CQE at the target
}

TEST_F(RnicTest, RdmaReadFetchesRemoteBytes) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  fill(eb, 200, "read-me-remotely");
  SendWr wr{3, WrOpcode::kRdmaRead, {ea.va + 50, 16, ea.key}};
  wr.remote_addr = eb.va + 200;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kSuccess);
  EXPECT_EQ(cqes[0].opcode, rnic::WcOpcode::kRdmaRead);
  EXPECT_EQ(peek(ea, 50, 16), "read-me-remotely");
}

TEST_F(RnicTest, UnsignaledSendRaisesNoCqe) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  SendWr wr{2, WrOpcode::kSend, {ea.va, 8, ea.key}};
  wr.signaled = false;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  EXPECT_TRUE(drain(*a_, ea.scq).empty());
  EXPECT_EQ(drain(*b_, eb.rcq).size(), 1u);
}

TEST_F(RnicTest, CompletionsArriveInPostingOrderAcrossSizes) {
  auto ea = make_ep(*a_, rnic::kPf, 64 * 1024);
  auto eb = make_ep(*b_, rnic::kPf, 64 * 1024);
  connect(*a_, ea, *b_, eb);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(
        b_->post_recv(eb.qp, RecvWr{static_cast<std::uint64_t>(i), {eb.va + 8192u * i, 8192, eb.key}}),
        Status::kOk);
  }
  // Alternate large and tiny messages; RC must complete them in order.
  const std::uint32_t sizes[] = {8000, 2, 4000, 2, 8000, 2};
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(
        a_->post_send(ea.qp, SendWr{static_cast<std::uint64_t>(100 + i), WrOpcode::kSend, {ea.va, sizes[i], ea.key}}),
        Status::kOk);
  }
  loop_.run();
  auto send_cqes = drain(*a_, ea.scq);
  ASSERT_EQ(send_cqes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(send_cqes[i].wr_id, 100u + i);
  }
  auto recv_cqes = drain(*b_, eb.rcq);
  ASSERT_EQ(recv_cqes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(recv_cqes[i].wr_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(recv_cqes[i].byte_len, sizes[i]);
  }
}

TEST_F(RnicTest, MultiPageMrWithDiscontiguousMtt) {
  // MR covering two non-adjacent physical pages: DMA must follow the MTT.
  auto fn = rnic::kPf;
  auto pd = a_->alloc_pd(fn).value;
  auto scq = a_->create_cq(fn, 16).value;
  auto rcq = a_->create_cq(fn, 16).value;
  const mem::Addr p1 = phys_.alloc_pages(1);
  (void)phys_.alloc_pages(1);  // hole
  const mem::Addr p2 = phys_.alloc_pages(1);
  ASSERT_NE(p1 + mem::kPageSize, p2);
  const mem::Addr va = 0x7f5000000000ull;
  auto mr = a_->create_mr(fn, pd, va, 2 * mem::kPageSize,
                          rnic::kLocalWrite | rnic::kRemoteWrite,
                          {{p1, mem::kPageSize}, {p2, mem::kPageSize}});
  ASSERT_TRUE(mr.ok());
  rnic::QpInitAttr init;
  init.pd = pd;
  init.send_cq = scq;
  init.recv_cq = rcq;
  auto qp = a_->create_qp(fn, init).value;

  auto eb = make_ep(*b_);
  Endpoint ea;
  ea.pd = pd; ea.scq = scq; ea.rcq = rcq; ea.qp = qp;
  ea.key = mr.value.lkey; ea.va = va; ea.hpa = p1;
  connect(*a_, ea, *b_, eb);

  // Write a string straddling the page boundary.
  const std::string msg = "crosses-the-page-boundary";
  const std::uint64_t off = mem::kPageSize - 10;
  phys_.write(p1 + off, {reinterpret_cast<const std::uint8_t*>(msg.data()),
                         10});
  phys_.write(p2, {reinterpret_cast<const std::uint8_t*>(msg.data()) + 10,
                   msg.size() - 10});
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  ASSERT_EQ(
      a_->post_send(qp, SendWr{2, WrOpcode::kSend, {va + off, static_cast<std::uint32_t>(msg.size()), mr.value.lkey}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(peek(eb, 0, msg.size()), msg);
}

// ------------------------------------------------------- errors & isolation

TEST_F(RnicTest, RnrWhenNoRecvWqePosted) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend, {ea.va, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kRnrRetryExc);
  EXPECT_EQ(a_->qp_state(ea.qp), QpState::kSqe);
  EXPECT_EQ(b_->counters().rnr_drops, 1u);
}

TEST_F(RnicTest, BadRkeyTriggersRemoteAccessNak) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 8, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = 0xdead;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kRemAccessErr);
  EXPECT_EQ(b_->qp_state(eb.qp), QpState::kError);  // responder fails too
  EXPECT_EQ(b_->counters().remote_access_naks, 1u);
}

TEST_F(RnicTest, WriteBeyondMrBoundsRejected) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 64, ea.key}};
  wr.remote_addr = eb.va + eb.buf_len - 8;  // 64 bytes won't fit
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kRemAccessErr);
}

TEST_F(RnicTest, WriteWithoutRemoteWriteAccessRejected) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_, rnic::kPf, 16384, rnic::kLocalWrite);  // no RW
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 8, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  ASSERT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kRemAccessErr);
}

TEST_F(RnicTest, LocalSgeOutsideMrFailsLocally) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend, {ea.va + ea.buf_len, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kLocProtErr);
  EXPECT_EQ(a_->qp_state(ea.qp), QpState::kSqe);
}

TEST_F(RnicTest, MrFromAnotherPdRejected) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  // Second PD on the same function; MR belongs to it, QP does not.
  auto pd2 = a_->alloc_pd(rnic::kPf).value;
  const mem::Addr hpa = phys_.alloc_pages(1);
  auto mr2 = a_->create_mr(rnic::kPf, pd2, 0x7f9000000000ull, 4096,
                           rnic::kLocalWrite, {{hpa, 4096}});
  ASSERT_TRUE(mr2.ok());
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend, {0x7f9000000000ull, 8, mr2.value.lkey}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kLocProtErr);
}

TEST_F(RnicTest, VfCannotUseAnotherFunctionsMr) {
  // QP on VF1, MR registered on PF: the NIC must reject it (one VM cannot
  // touch resources of another — §3.3.2 user memory security).
  auto ea_pf = make_ep(*a_);                 // PF MR
  auto ea_vf = make_ep(*a_, 1);              // VF1 QP
  auto eb = make_ep(*b_);
  connect(*a_, ea_vf, *b_, eb);
  ASSERT_EQ(
      a_->post_send(ea_vf.qp, SendWr{1, WrOpcode::kSend, {ea_pf.va, 8, ea_pf.key}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea_vf.scq)[0].status, WcStatus::kLocProtErr);
}

TEST_F(RnicTest, UnroutableVirtualGidTimesOut) {
  // What happens *without* RConnrename: the QPC holds a tenant-virtual GID
  // that no underlay device owns; retries exhaust.
  auto ea = make_ep(*a_);
  rnic::QpAttr attr;
  attr.state = QpState::kInit;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRtr;
  attr.dest_gid = net::Gid::from_ipv4(ip("192.168.1.2"));  // virtual!
  attr.dest_qpn = 42;
  ASSERT_EQ(
      a_->modify_qp(ea.qp, attr, rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn),
      Status::kOk);
  attr.state = QpState::kRts;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend, {ea.va, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kTransportRetryExc);
  EXPECT_EQ(a_->counters().dropped_no_route, 1u);
}

// --------------------------------------------------- Table 2: ERROR state

TEST_F(RnicTest, ModifyToErrorFlushesQueuedWqes) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  rnic::QpAttr attr;
  attr.state = QpState::kSqd;  // park the engine so WQEs stay queued
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        a_->post_send(ea.qp, SendWr{static_cast<std::uint64_t>(i), WrOpcode::kSend, {ea.va, 8, ea.key}}),
        Status::kOk);
  }
  ASSERT_EQ(a_->post_recv(ea.qp, RecvWr{77, {ea.va, 64, ea.key}}), Status::kOk);
  attr.state = QpState::kError;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  loop_.run();
  auto send_cqes = drain(*a_, ea.scq);
  ASSERT_EQ(send_cqes.size(), 3u);
  for (auto& c : send_cqes) EXPECT_EQ(c.status, WcStatus::kWrFlushErr);
  auto recv_cqes = drain(*a_, ea.rcq);
  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].status, WcStatus::kWrFlushErr);
  EXPECT_EQ(recv_cqes[0].wr_id, 77u);
}

TEST_F(RnicTest, PostingInErrorStateAllowedButFlushes) {
  // Table 2, application rows: post_send / post_recv are allowed in ERROR
  // and complete with flush errors; poll still works.
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  rnic::QpAttr attr;
  attr.state = QpState::kError;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  EXPECT_EQ(a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend,
                                        {ea.va, 8, ea.key}}),
            Status::kOk);
  EXPECT_EQ(a_->post_recv(ea.qp, RecvWr{2, {ea.va, 8, ea.key}}), Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kWrFlushErr);
  EXPECT_EQ(drain(*a_, ea.rcq)[0].status, WcStatus::kWrFlushErr);
}

TEST_F(RnicTest, ErrorQpDropsIncomingPackets) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  rnic::QpAttr attr;
  attr.state = QpState::kError;
  ASSERT_EQ(b_->modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);
  // The post flushes immediately (Table 2) but is itself accepted.
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}),
            Status::kOk);
  ASSERT_EQ(a_->post_send(ea.qp, SendWr{2, WrOpcode::kSend,
                                        {ea.va, 8, ea.key}}),
            Status::kOk);
  loop_.run();
  EXPECT_GE(b_->counters().dropped_bad_state, 1u);
  // Sender sees retry-exceeded since the responder never acks.
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kTransportRetryExc);
}

TEST_F(RnicTest, ErrorKillsInFlightTransfer) {
  auto ea = make_ep(*a_, rnic::kPf, 1 << 20);
  auto eb = make_ep(*b_, rnic::kPf, 1 << 20);
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 1 << 20, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  // 1 MiB at 40 Gbps needs ~210 us; kill the QP at 50 us.
  loop_.run_until(50_us);
  EXPECT_GT(net_.active_flows(), 0u);
  rnic::QpAttr attr;
  attr.state = QpState::kError;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  loop_.run();
  EXPECT_EQ(net_.active_flows(), 0u);  // flow cancelled, no data flows
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kWrFlushErr);
}

// ------------------------------------------------------------ housekeeping

TEST_F(RnicTest, CqOverflowLatchesFlag) {
  auto fn = rnic::kPf;
  auto pd = a_->alloc_pd(fn).value;
  auto tiny = a_->create_cq(fn, 1).value;
  auto rcq = a_->create_cq(fn, 16).value;
  rnic::QpInitAttr init;
  init.pd = pd;
  init.send_cq = tiny;
  init.recv_cq = rcq;
  auto qp = a_->create_qp(fn, init).value;
  rnic::QpAttr attr;
  attr.state = QpState::kInit;
  ASSERT_EQ(a_->modify_qp(qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kError;  // INIT -> ERROR ok; flush 2 sends into cq(1)
  // Park two sends first: posting in INIT is rejected, so go through RTR.
  attr.state = QpState::kRtr;
  attr.dest_gid = net::Gid::from_ipv4(b_->config().ip);
  attr.dest_qpn = 1;
  ASSERT_EQ(
      a_->modify_qp(qp, attr, rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn),
      Status::kOk);
  const mem::Addr hpa = phys_.alloc_pages(1);
  auto mr = a_->create_mr(fn, pd, 0x7fa000000000ull, 4096, rnic::kLocalWrite,
                          {{hpa, 4096}});
  // In RTR the send engine is paused, so these stay queued.
  ASSERT_EQ(
      a_->post_send(qp, SendWr{1, WrOpcode::kSend, {0x7fa000000000ull, 8, mr.value.lkey}}),
      Status::kOk);
  ASSERT_EQ(
      a_->post_send(qp, SendWr{2, WrOpcode::kSend, {0x7fa000000000ull, 8, mr.value.lkey}}),
      Status::kOk);
  attr.state = QpState::kError;
  ASSERT_EQ(a_->modify_qp(qp, attr, rnic::kAttrState), Status::kOk);
  loop_.run();
  EXPECT_TRUE(a_->cq_overflowed(tiny));
  Completion c;
  EXPECT_EQ(a_->poll_cq(tiny, 1, &c), 1);  // first CQE survived
}

TEST_F(RnicTest, DoorbellMmioKicksQp) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  fill(ea, 0, "via doorbell");
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{2, WrOpcode::kSend, {ea.va, 12, ea.key}}),
      Status::kOk);
  // Redundant doorbell through the BAR must be harmless and kick the QP.
  phys_.write_u64(a_->doorbell_bar() + ea.qp * 8, 1);
  loop_.run();
  EXPECT_EQ(peek(eb, 0, 12), "via doorbell");
}

TEST_F(RnicTest, SendQueueCapacityEnforced) {
  auto ea = make_ep(*a_, rnic::kPf, 16384,
                    rnic::kLocalWrite | rnic::kRemoteWrite | rnic::kRemoteRead,
                    rnic::QpType::kRc, /*max_wr=*/4);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  rnic::QpAttr attr;
  attr.state = QpState::kSqd;  // hold the engine so the queue fills
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a_->post_send(ea.qp, SendWr{static_cast<std::uint64_t>(i),
                                          WrOpcode::kSend,
                                          {ea.va, 8, ea.key}}),
              Status::kOk);
  }
  EXPECT_EQ(a_->post_send(ea.qp, SendWr{9, WrOpcode::kSend,
                                        {ea.va, 8, ea.key}}),
            Status::kQueueFull);
  loop_.run();
}

TEST_F(RnicTest, DestroyQpWithInflightTrafficIsSafe) {
  auto ea = make_ep(*a_, rnic::kPf, 1 << 20);
  auto eb = make_ep(*b_, rnic::kPf, 1 << 20);
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 1 << 20, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run_until(50_us);
  EXPECT_EQ(a_->destroy_qp(ea.qp), Status::kOk);
  loop_.run();  // must not crash or leak flows
  EXPECT_EQ(net_.active_flows(), 0u);
}

// ------------------------------------------------------------- QoS limiter

TEST_F(RnicTest, VfRateLimiterCapsThroughput) {
  auto ea = make_ep(*a_, /*fn=*/1, 1 << 20);
  auto eb = make_ep(*b_, rnic::kPf, 1 << 20);
  connect(*a_, ea, *b_, eb);
  a_->set_vf_rate_limit(1, 10.0);
  EXPECT_NEAR(a_->vf_rate_limit_gbps(1), 10.0, 1e-9);
  SendWr wr{1, WrOpcode::kRdmaWrite, {ea.va, 1 << 20, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  // 1 MiB (+ header overhead) at 10 Gbps = ~876 us; at 40 Gbps it would be
  // ~219 us. Assert we're in the limited regime.
  loop_.run_until(800_us);
  EXPECT_TRUE(drain(*a_, ea.scq).empty());
  loop_.run_until(1000_us);
  auto cqes = drain(*a_, ea.scq);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, WcStatus::kSuccess);
  loop_.run();
}

TEST_F(RnicTest, PfHasNoRateLimiter) {
  EXPECT_THROW(a_->set_vf_rate_limit(rnic::kPf, 10.0), std::invalid_argument);
}

// --------------------------------------------------------- UD (§3.3.4)

TEST_F(RnicTest, UdSendDeliversWithMatchingQkey) {
  auto ea = make_ep(*a_, rnic::kPf, 16384,
                    rnic::kLocalWrite | rnic::kRemoteWrite | rnic::kRemoteRead,
                    rnic::QpType::kUd);
  auto eb = make_ep(*b_, rnic::kPf, 16384,
                    rnic::kLocalWrite | rnic::kRemoteWrite | rnic::kRemoteRead,
                    rnic::QpType::kUd);
  rnic::QpAttr attr;
  attr.state = QpState::kInit;
  attr.qkey = 0x1111;
  ASSERT_EQ(
      a_->modify_qp(ea.qp, attr, rnic::kAttrState | rnic::kAttrQkey),
      Status::kOk);
  ASSERT_EQ(
      b_->modify_qp(eb.qp, attr, rnic::kAttrState | rnic::kAttrQkey),
      Status::kOk);
  attr.state = QpState::kRtr;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(b_->modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRts;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(b_->modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);

  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  fill(ea, 0, "datagram");
  SendWr wr{2, WrOpcode::kSend, {ea.va, 8, ea.key}};
  wr.ud = {net::Gid::from_ipv4(b_->config().ip), eb.qp, 0x1111};
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  EXPECT_EQ(peek(eb, 0, 8), "datagram");
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kSuccess);

  // Wrong Q-Key: silently dropped, but the (unreliable) sender still
  // completes successfully.
  ASSERT_EQ(
      b_->post_recv(eb.qp, RecvWr{3, {eb.va + 100, 64, eb.key}}),
      Status::kOk);
  wr.wr_id = 4;
  wr.ud.qkey = 0x2222;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kSuccess);
  EXPECT_TRUE(drain(*b_, eb.rcq).size() == 1u);  // only the first landed
}

TEST_F(RnicTest, WriteWithImmediateDeliversDataAndImm) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  fill(ea, 0, "imm payload");
  ASSERT_EQ(
      b_->post_recv(eb.qp, RecvWr{42, {eb.va + 8192, 64, eb.key}}),
      Status::kOk);
  SendWr wr{7, WrOpcode::kRdmaWriteImm, {ea.va, 11, ea.key}};
  wr.remote_addr = eb.va + 256;
  wr.rkey = eb.key;
  wr.imm = 0xCAFEBABE;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  // Data landed at the rkey-addressed location...
  EXPECT_EQ(peek(eb, 256, 11), "imm payload");
  // ...and the immediate arrived via a consumed recv WQE.
  auto rx = drain(*b_, eb.rcq);
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].wr_id, 42u);
  EXPECT_EQ(rx[0].opcode, rnic::WcOpcode::kRecvRdmaWithImm);
  EXPECT_EQ(rx[0].imm, 0xCAFEBABEu);
  EXPECT_EQ(rx[0].byte_len, 11u);
  auto tx = drain(*a_, ea.scq);
  ASSERT_EQ(tx.size(), 1u);
  EXPECT_EQ(tx[0].status, WcStatus::kSuccess);
  EXPECT_EQ(tx[0].opcode, rnic::WcOpcode::kRdmaWrite);
}

TEST_F(RnicTest, WriteWithImmediateNeedsRecvWqe) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  SendWr wr{1, WrOpcode::kRdmaWriteImm, {ea.va, 8, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = eb.key;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  // No recv WQE posted: RNR, like a send.
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kRnrRetryExc);
  EXPECT_EQ(b_->counters().rnr_drops, 1u);
}

TEST_F(RnicTest, WriteWithImmediateChecksRkeyLikePlainWrite) {
  auto ea = make_ep(*a_);
  auto eb = make_ep(*b_);
  connect(*a_, ea, *b_, eb);
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  SendWr wr{2, WrOpcode::kRdmaWriteImm, {ea.va, 8, ea.key}};
  wr.remote_addr = eb.va;
  wr.rkey = 0xbad;
  ASSERT_EQ(a_->post_send(ea.qp, wr), Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kRemAccessErr);
}

// ----------------------------------------------- VXLAN offload (SR-IOV)

TEST_F(RnicTest, VxlanOffloadDeliversBetweenTenantVfs) {
  // VF1 on each device carries tenant addresses; tunnel tables map the
  // peer's virtual GID to the physical one.
  a_->set_fn_address(1, ip("192.168.1.1"), net::MacAddr::from_u64(0x1a), 100,
                     /*vxlan_offload=*/true);
  b_->set_fn_address(1, ip("192.168.1.2"), net::MacAddr::from_u64(0x1b), 100,
                     true);
  a_->program_tunnel(net::Gid::from_ipv4(ip("192.168.1.2")),
                     {net::Gid::from_ipv4(b_->config().ip), 100});
  b_->program_tunnel(net::Gid::from_ipv4(ip("192.168.1.1")),
                     {net::Gid::from_ipv4(a_->config().ip), 100});

  auto ea = make_ep(*a_, 1);
  auto eb = make_ep(*b_, 1);
  rnic::QpAttr attr;
  attr.state = QpState::kInit;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(b_->modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRtr;
  attr.dest_gid = net::Gid::from_ipv4(ip("192.168.1.2"));  // virtual peer
  attr.dest_qpn = eb.qp;
  ASSERT_EQ(
      a_->modify_qp(ea.qp, attr, rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn),
      Status::kOk);
  attr.dest_gid = net::Gid::from_ipv4(ip("192.168.1.1"));
  attr.dest_qpn = ea.qp;
  ASSERT_EQ(
      b_->modify_qp(eb.qp, attr, rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn),
      Status::kOk);
  attr.state = QpState::kRts;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(b_->modify_qp(eb.qp, attr, rnic::kAttrState), Status::kOk);

  fill(ea, 0, "tunneled");
  ASSERT_EQ(b_->post_recv(eb.qp, RecvWr{1, {eb.va, 64, eb.key}}), Status::kOk);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{2, WrOpcode::kSend, {ea.va, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(peek(eb, 0, 8), "tunneled");
  EXPECT_EQ(a_->tunnel_cache_misses(), 1u);  // cold cache
  // Second message hits the cache.
  ASSERT_EQ(
      b_->post_recv(eb.qp, RecvWr{3, {eb.va + 64, 64, eb.key}}),
      Status::kOk);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{4, WrOpcode::kSend, {ea.va, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(a_->tunnel_cache_misses(), 1u);
  EXPECT_EQ(a_->tunnel_cache_hits(), 1u);
}

TEST_F(RnicTest, MissingTunnelEntryFailsTheSend) {
  a_->set_fn_address(1, ip("192.168.1.1"), net::MacAddr::from_u64(0x1a), 100,
                     true);
  auto ea = make_ep(*a_, 1);
  rnic::QpAttr attr;
  attr.state = QpState::kInit;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  attr.state = QpState::kRtr;
  attr.dest_gid = net::Gid::from_ipv4(ip("192.168.1.9"));  // unknown peer
  attr.dest_qpn = 5;
  ASSERT_EQ(
      a_->modify_qp(ea.qp, attr, rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn),
      Status::kOk);
  attr.state = QpState::kRts;
  ASSERT_EQ(a_->modify_qp(ea.qp, attr, rnic::kAttrState), Status::kOk);
  ASSERT_EQ(
      a_->post_send(ea.qp, SendWr{1, WrOpcode::kSend, {ea.va, 8, ea.key}}),
      Status::kOk);
  loop_.run();
  EXPECT_EQ(drain(*a_, ea.scq)[0].status, WcStatus::kTransportRetryExc);
}

}  // namespace
