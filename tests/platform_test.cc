// Tests for the platform substrates: virtio command channel, SDN
// controller + host-local mapping cache, security rule chains, the overlay
// OOB network, and the hypervisor (hosts, VMs, containers).
#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "hyp/host.h"
#include "hyp/instance.h"
#include "net/fluid.h"
#include "overlay/oob.h"
#include "overlay/security.h"
#include "sdn/controller.h"
#include "sim/event_loop.h"
#include "virtio/virtqueue.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }
net::Ipv4Cidr cidr(const std::string& s) { return *net::Ipv4Cidr::parse(s); }

// -------------------------------------------------------------------- virtio

struct Cmd {
  int x;
};
struct Reply {
  int y;
};

TEST(VirtioTest, RoundTripChargesTwentyMicroseconds) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {});
  vq.set_backend([&loop](Cmd c) -> sim::Task<Reply> {
    co_await sim::delay(loop, 0);
    co_return Reply{c.x * 2};
  });
  int result = 0;
  sim::Time done_at = -1;
  auto driver = [](sim::EventLoop& l, virtio::Virtqueue<Cmd, Reply>& q,
                   int* out, sim::Time* when) -> sim::Task<void> {
    Reply r = co_await q.call(Cmd{21});
    *out = r.y;
    *when = l.now();
  };
  loop.spawn(driver(loop, vq, &result, &done_at));
  loop.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(done_at, 20_us);  // Table 1: ~20 us virtio round trip
  EXPECT_EQ(vq.kicks(), 1u);
  EXPECT_EQ(vq.interrupts(), 1u);
}

TEST(VirtioTest, BackendWorkAddsToLatency) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {});
  vq.set_backend([&loop](Cmd c) -> sim::Task<Reply> {
    co_await sim::delay(loop, 50_us);  // host-side driver work
    co_return Reply{c.x};
  });
  sim::Time done_at = -1;
  auto driver = [](sim::EventLoop& l, virtio::Virtqueue<Cmd, Reply>& q,
                   sim::Time* when) -> sim::Task<void> {
    (void)co_await q.call(Cmd{1});
    *when = l.now();
  };
  loop.spawn(driver(loop, vq, &done_at));
  loop.run();
  EXPECT_EQ(done_at, 70_us);
}

TEST(VirtioTest, RingBackpressureQueuesExcessCalls) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {}, /*ring_size=*/2);
  int completed = 0;
  vq.set_backend([&loop](Cmd c) -> sim::Task<Reply> {
    co_await sim::delay(loop, 100_us);
    co_return Reply{c.x};
  });
  auto caller = [](virtio::Virtqueue<Cmd, Reply>& q,
                   int* done) -> sim::Task<void> {
    (void)co_await q.call(Cmd{1});
    ++*done;
  };
  for (int i = 0; i < 5; ++i) loop.spawn(caller(vq, &completed));
  loop.run_until(30_us);
  EXPECT_EQ(vq.in_flight(), 2);  // only ring_size commands admitted
  loop.run();
  EXPECT_EQ(completed, 5);
}

TEST(VirtioTest, ConcurrentCallsCoalesceKicksAndInterrupts) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {});
  vq.set_backend([&loop](Cmd c) -> sim::Task<Reply> {
    co_await sim::delay(loop, 0);
    co_return Reply{c.x};
  });
  int done = 0;
  sim::Time last = -1;
  auto caller = [](sim::EventLoop& l, virtio::Virtqueue<Cmd, Reply>& q,
                   int* n, sim::Time* when) -> sim::Task<void> {
    (void)co_await q.call(Cmd{1});
    ++*n;
    *when = l.now();
  };
  for (int i = 0; i < 4; ++i) loop.spawn(caller(loop, vq, &done, &last));
  loop.run();
  EXPECT_EQ(done, 4);
  // All four were on the ring before the doorbell's VM exit landed: one
  // kick carries the whole descriptor batch, one interrupt reaps all four
  // completions from the used ring.
  EXPECT_EQ(vq.kicks(), 1u);
  EXPECT_EQ(vq.interrupts(), 1u);
  EXPECT_EQ(vq.coalesced_kicks(), 3u);
  EXPECT_EQ(vq.coalesced_interrupts(), 3u);
  // Riders pay no extra transit: everyone finishes at one round trip.
  EXPECT_EQ(last, 20_us);
}

TEST(VirtioTest, BatchedWeightRespectsRingBackpressure) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {}, /*ring_size=*/4);
  vq.set_backend([&loop](Cmd c) -> sim::Task<Reply> {
    co_await sim::delay(loop, 100_us);
    co_return Reply{c.x};
  });
  int completed = 0;
  auto caller = [](virtio::Virtqueue<Cmd, Reply>& q, int weight,
                   int* done) -> sim::Task<void> {
    (void)co_await q.call(Cmd{weight}, weight);
    ++*done;
  };
  // A batch occupies one descriptor per carried command, so two weight-3
  // batches cannot share a 4-slot ring: the second queues.
  loop.spawn(caller(vq, 3, &completed));
  loop.spawn(caller(vq, 3, &completed));
  loop.run_until(30_us);
  EXPECT_EQ(vq.in_flight(), 3);
  EXPECT_EQ(completed, 0);
  loop.run();
  EXPECT_EQ(completed, 2);
}

TEST(VirtioTest, OverweightRequestIsRejected) {
  sim::EventLoop loop;
  virtio::Virtqueue<Cmd, Reply> vq(loop, {}, /*ring_size=*/4);
  vq.set_backend([](Cmd c) -> sim::Task<Reply> { co_return Reply{c.x}; });
  bool threw = false;
  auto caller = [](virtio::Virtqueue<Cmd, Reply>& q,
                   bool* out) -> sim::Task<void> {
    try {
      (void)co_await q.call(Cmd{1}, 5);  // wider than the ring: can't fit
    } catch (const std::invalid_argument&) {
      *out = true;
    }
  };
  loop.spawn(caller(vq, &threw));
  loop.run();
  EXPECT_TRUE(threw);
}

// ----------------------------------------------------------------------- sdn

TEST(SdnTest, ControllerMapsTenantScopedVgids) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop);
  const auto vgid = net::Gid::from_ipv4(ip("192.168.1.1"));
  const auto pgid_t1 = net::Gid::from_ipv4(ip("10.0.0.1"));
  const auto pgid_t2 = net::Gid::from_ipv4(ip("10.0.0.2"));
  // Two tenants with the *same* virtual IP map to different hosts.
  ctl.register_vgid(100, vgid, pgid_t1);
  ctl.register_vgid(200, vgid, pgid_t2);
  EXPECT_EQ(ctl.lookup(100, vgid), pgid_t1);
  EXPECT_EQ(ctl.lookup(200, vgid), pgid_t2);
  EXPECT_FALSE(ctl.lookup(300, vgid).has_value());
  ctl.unregister_vgid(100, vgid);
  EXPECT_FALSE(ctl.lookup(100, vgid).has_value());
  EXPECT_EQ(ctl.table_bytes(), sdn::kRecordBytes);
}

TEST(SdnTest, QueryChargesControllerRtt) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop, 100_us);
  const auto vgid = net::Gid::from_ipv4(ip("192.168.1.1"));
  ctl.register_vgid(1, vgid, net::Gid::from_ipv4(ip("10.0.0.1")));
  sim::Time when = -1;
  bool found = false;
  auto q = [](sim::EventLoop& l, sdn::Controller& c, net::Gid g, bool* ok,
              sim::Time* t) -> sim::Task<void> {
    auto r = co_await c.query(1, g);
    *ok = r.has_value();
    *t = l.now();
  };
  loop.spawn(q(loop, ctl, vgid, &found, &when));
  loop.run();
  EXPECT_TRUE(found);
  EXPECT_EQ(when, 100_us);
}

TEST(SdnTest, CacheHitIsCheapAfterFirstMiss) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop, 100_us);
  sdn::MappingCache cache(loop, ctl, 2_us);
  const auto vgid = net::Gid::from_ipv4(ip("192.168.1.7"));
  ctl.register_vgid(5, vgid, net::Gid::from_ipv4(ip("10.0.0.9")));
  sim::Time t1 = -1, t2 = -1;
  auto q = [](sim::EventLoop& l, sdn::MappingCache& c, net::Gid g,
              sim::Time* out) -> sim::Task<void> {
    sim::Time start = l.now();
    (void)co_await c.resolve(5, g);
    *out = l.now() - start;
  };
  auto seq = [&](sim::EventLoop& l) -> sim::Task<void> {
    co_await q(l, cache, vgid, &t1);
    co_await q(l, cache, vgid, &t2);
  };
  loop.spawn(seq(loop));
  loop.run();
  EXPECT_EQ(t1, 100_us);  // miss -> controller RTT
  EXPECT_EQ(t2, 2_us);    // hit -> local cache
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(SdnTest, PushDownPrewarmsCache) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop, 100_us);
  sdn::MappingCache cache(loop, ctl, 2_us);
  ctl.subscribe([&cache](std::uint32_t vni, net::Gid v, net::Gid p) {
    cache.insert(vni, v, p);
  });
  const auto vgid = net::Gid::from_ipv4(ip("192.168.1.8"));
  ctl.register_vgid(7, vgid, net::Gid::from_ipv4(ip("10.0.0.3")));
  sim::Time t = -1;
  auto q = [&](sim::EventLoop& l) -> sim::Task<void> {
    sim::Time start = l.now();
    auto r = co_await cache.resolve(7, vgid);
    EXPECT_TRUE(r.has_value());
    t = l.now() - start;
  };
  loop.spawn(q(loop));
  loop.run();
  EXPECT_EQ(t, 2_us);  // pre-warmed: no miss
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SdnTest, ConcurrentMissesCoalesceToOneQuery) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop, 100_us);
  sdn::MappingCache cache(loop, ctl, 2_us);
  const auto vgid = net::Gid::from_ipv4(ip("192.168.2.1"));
  ctl.register_vgid(9, vgid, net::Gid::from_ipv4(ip("10.0.0.4")));
  int resolved = 0;
  auto q = [](sdn::MappingCache& c, net::Gid g, int* n) -> sim::Task<void> {
    auto r = co_await c.resolve(9, g);
    EXPECT_TRUE(r.has_value());
    ++*n;
  };
  // A 100-QP fan-in to a brand-new peer: 100 concurrent cache misses.
  for (int i = 0; i < 100; ++i) loop.spawn(q(cache, vgid, &resolved));
  loop.run();
  EXPECT_EQ(resolved, 100);
  // Single-flight: one leader query, 99 riders on its future.
  EXPECT_EQ(ctl.queries_served(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.single_flight_coalesced(), 99u);
}

TEST(SdnTest, NegativeCacheBoundsUnresolvableLookups) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop, 100_us);
  sdn::MappingCache cache(loop, ctl, 2_us, /*negative_ttl=*/1_ms);
  const auto vgid = net::Gid::from_ipv4(ip("192.168.2.2"));  // never registered
  auto seq = [&](sim::EventLoop& l) -> sim::Task<void> {
    auto r1 = co_await cache.resolve(9, vgid);
    EXPECT_FALSE(r1.has_value());
    EXPECT_EQ(ctl.queries_served(), 1u);
    // Within the TTL the "known absent" verdict is served locally: a
    // misconfigured peer cannot turn every retry into a controller RTT.
    auto r2 = co_await cache.resolve(9, vgid);
    EXPECT_FALSE(r2.has_value());
    EXPECT_EQ(ctl.queries_served(), 1u);
    EXPECT_EQ(cache.negative_hits(), 1u);
    // The verdict is bounded: after the TTL the controller is re-asked.
    co_await sim::delay(l, 2_ms);
    auto r3 = co_await cache.resolve(9, vgid);
    EXPECT_FALSE(r3.has_value());
    EXPECT_EQ(ctl.queries_served(), 2u);
  };
  loop.spawn(seq(loop));
  loop.run();
}

TEST(SdnTest, VirtKeyHashSpreadsPatternedKeys) {
  // Sequential tenant VNIs x sequential guest IPs: keys differing only in
  // low bytes. The old XOR combine collapsed exactly this pattern (it is
  // symmetric and cancels shared low-byte entropy); hash_combine must keep
  // the keys distinct and evenly bucketed.
  sdn::VirtKeyHash h;
  std::unordered_set<std::size_t> distinct;
  std::vector<int> bucket(128, 0);
  for (std::uint32_t vni = 0; vni < 32; ++vni) {
    for (std::uint32_t i = 0; i < 32; ++i) {
      const net::Ipv4Addr a{0x0a000000u + (vni << 8) + i};
      const sdn::VirtKey key{vni, net::Gid::from_ipv4(a)};
      const std::size_t hv = h(key);
      distinct.insert(hv);
      ++bucket[hv % bucket.size()];
    }
  }
  EXPECT_EQ(distinct.size(), 1024u);  // no full-hash collisions
  // 1024 keys into 128 buckets: average load 8; a healthy hash keeps the
  // worst bucket within a small multiple of that.
  int max_load = 0;
  for (int b : bucket) max_load = std::max(max_load, b);
  EXPECT_LE(max_load, 24);
}

// ------------------------------------------------------------------ security

TEST(SecurityTest, DefaultDeny) {
  overlay::RuleChain chain;
  EXPECT_EQ(chain.evaluate({ip("1.1.1.1"), ip("2.2.2.2")}),
            overlay::RuleAction::kDeny);
}

TEST(SecurityTest, PriorityOrderFirstMatchWins) {
  overlay::RuleChain chain;
  chain.add_rule(overlay::Rule::allow(cidr("192.168.0.0/16"),
                                      net::Ipv4Cidr::any(),
                                      overlay::Proto::kAny, 10));
  chain.add_rule(overlay::Rule::deny(cidr("192.168.9.0/24"),
                                     net::Ipv4Cidr::any(),
                                     overlay::Proto::kAny, 20));
  EXPECT_EQ(chain.evaluate({ip("192.168.1.5"), ip("10.0.0.1")}),
            overlay::RuleAction::kAllow);
  EXPECT_EQ(chain.evaluate({ip("192.168.9.5"), ip("10.0.0.1")}),
            overlay::RuleAction::kDeny);  // higher-priority deny
}

TEST(SecurityTest, ProtocolFilter) {
  overlay::RuleChain chain;
  chain.add_rule(overlay::Rule::allow(net::Ipv4Cidr::any(),
                                      net::Ipv4Cidr::any(),
                                      overlay::Proto::kRdma));
  EXPECT_EQ(chain.evaluate({ip("1.1.1.1"), ip("2.2.2.2"),
                            overlay::Proto::kRdma}),
            overlay::RuleAction::kAllow);
  EXPECT_EQ(chain.evaluate({ip("1.1.1.1"), ip("2.2.2.2"),
                            overlay::Proto::kTcp}),
            overlay::RuleAction::kDeny);
}

TEST(SecurityTest, RemoveRuleRestoresDefaultDeny) {
  overlay::RuleChain chain;
  auto id = chain.add_rule(overlay::Rule::allow_all());
  EXPECT_EQ(chain.evaluate({ip("1.1.1.1"), ip("2.2.2.2")}),
            overlay::RuleAction::kAllow);
  const auto v1 = chain.version();
  EXPECT_TRUE(chain.remove_rule(id));
  EXPECT_GT(chain.version(), v1);
  EXPECT_EQ(chain.evaluate({ip("1.1.1.1"), ip("2.2.2.2")}),
            overlay::RuleAction::kDeny);
  EXPECT_FALSE(chain.remove_rule(id));
}

TEST(SecurityTest, ConnectionNeedsAllThreeChains) {
  overlay::SecurityPolicy pol(100);
  const auto a = ip("192.168.1.1");
  const auto b = ip("192.168.2.1");
  overlay::FlowTuple t{a, b, overlay::Proto::kRdma};
  // Materialize both VMs' security groups.
  pol.security_group(a, overlay::Chain::kOutput);
  pol.security_group(b, overlay::Chain::kInput);
  EXPECT_FALSE(pol.connection_allowed(t));  // everything default-deny
  pol.firewall(overlay::Chain::kForward).add_rule(overlay::Rule::allow_all());
  EXPECT_FALSE(pol.connection_allowed(t));
  pol.security_group(a, overlay::Chain::kOutput)
      .add_rule(overlay::Rule::allow_all());
  EXPECT_FALSE(pol.connection_allowed(t));
  pol.security_group(b, overlay::Chain::kInput)
      .add_rule(overlay::Rule::allow_all());
  EXPECT_TRUE(pol.connection_allowed(t));
}

TEST(SecurityTest, ObserversFireOnNotify) {
  overlay::SecurityPolicy pol(1);
  int fired = 0;
  pol.subscribe([&fired] { ++fired; });
  pol.notify_changed();
  pol.notify_changed();
  EXPECT_EQ(fired, 2);
}

// ----------------------------------------------------------------- oob / vpc

class OobTest : public ::testing::Test {
 protected:
  OobTest() : vnet_(loop_, 25_us) {
    a_ = vnet_.create_endpoint(100, ip("192.168.1.1"));
    b_ = vnet_.create_endpoint(100, ip("192.168.1.2"));
    // Same virtual IP as a_, different tenant.
    c_ = vnet_.create_endpoint(200, ip("192.168.1.1"));
    d_ = vnet_.create_endpoint(200, ip("192.168.1.2"));
    vnet_.policy(100).allow_all();
    vnet_.policy(200).allow_all();
  }

  sim::EventLoop loop_;
  overlay::VirtualNetwork vnet_;
  overlay::OobEndpoint *a_, *b_, *c_, *d_;
};

TEST_F(OobTest, SendRecvWithinTenant) {
  std::string got;
  sim::Time when = -1;
  auto server = [](overlay::OobEndpoint* ep, std::string* out,
                   sim::EventLoop& l, sim::Time* t) -> sim::Task<void> {
    auto blob = co_await ep->recv(7000);
    *out = std::string(blob.begin(), blob.end());
    *t = l.now();
  };
  auto client = [](overlay::OobEndpoint* ep,
                   net::Ipv4Addr dst) -> sim::Task<void> {
    overlay::Blob b{'h', 'i'};
    auto st = co_await ep->send(dst, 7000, b);
    EXPECT_EQ(st, rnic::Status::kOk);
  };
  loop_.spawn(server(b_, &got, loop_, &when));
  loop_.spawn(client(a_, ip("192.168.1.2")));
  loop_.run();
  EXPECT_EQ(got, "hi");
  EXPECT_EQ(when, 25_us);
}

TEST_F(OobTest, TenantsAreIsolatedDespiteIpCollision) {
  // Tenant 200's "192.168.1.2" must not receive tenant 100's message.
  bool tenant200_got = false;
  auto server = [](overlay::OobEndpoint* ep, bool* got) -> sim::Task<void> {
    (void)co_await ep->recv(7000);
    *got = true;
  };
  loop_.spawn(server(d_, &tenant200_got));
  auto client = [](overlay::OobEndpoint* ep) -> sim::Task<void> {
    overlay::Blob payload{'x'};
    auto st = co_await ep->send(ip("192.168.1.2"), 7000, payload);
    EXPECT_EQ(st, rnic::Status::kOk);  // lands in tenant 100's endpoint
  };
  loop_.spawn(client(a_));
  loop_.run();
  EXPECT_FALSE(tenant200_got);
}

TEST_F(OobTest, SecurityGroupBlocksExchange) {
  // Deny b's INPUT from a's subnet; the connect attempt must fail.
  vnet_.policy(100)
      .security_group(ip("192.168.1.2"), overlay::Chain::kInput)
      .add_rule(overlay::Rule::deny(cidr("192.168.1.0/24"),
                                    net::Ipv4Cidr::any(),
                                    overlay::Proto::kAny, 100));
  auto client = [](overlay::OobEndpoint* ep) -> sim::Task<void> {
    overlay::Blob payload{'x'};
    auto st = co_await ep->send(ip("192.168.1.2"), 7000, payload);
    EXPECT_EQ(st, rnic::Status::kPermissionDenied);
  };
  loop_.spawn(client(a_));
  loop_.run();
  EXPECT_EQ(vnet_.messages_blocked(), 1u);
}

TEST_F(OobTest, UnknownDestinationReturnsNotFound) {
  auto client = [](overlay::OobEndpoint* ep) -> sim::Task<void> {
    overlay::Blob payload{'x'};
    auto st = co_await ep->send(ip("192.168.1.99"), 7000, payload);
    EXPECT_EQ(st, rnic::Status::kNotFound);
  };
  loop_.spawn(client(a_));
  loop_.run();
}

TEST_F(OobTest, PackUnpackRoundTrip) {
  struct ConnInfo {
    std::uint32_t qpn;
    std::uint64_t addr;
    std::uint32_t rkey;
  };
  ConnInfo in{42, 0xdeadbeef, 7};
  auto blob = overlay::pack(in);
  auto out = overlay::unpack<ConnInfo>(blob);
  EXPECT_EQ(out.qpn, 42u);
  EXPECT_EQ(out.addr, 0xdeadbeefull);
  EXPECT_EQ(out.rkey, 7u);
  EXPECT_THROW(overlay::unpack<std::uint64_t>(overlay::Blob{1, 2}),
               std::invalid_argument);
}

// -------------------------------------------------------------------- hyp

class HypTest : public ::testing::Test {
 protected:
  sim::EventLoop loop_;
  net::FluidNet net_{loop_};
};

TEST_F(HypTest, HostBuffersComeFromDram) {
  hyp::Host host(loop_, net_, "h0", 64ull << 20);
  const auto before = host.dram_used_bytes();
  const mem::Addr hva = host.alloc_host_buffer(1 << 20);
  EXPECT_EQ(host.dram_used_bytes(), before + (1 << 20));
  host.hva().write_u64(hva, 0x1234);
  EXPECT_EQ(host.hva().read_u64(hva), 0x1234u);
  host.free_host_buffer(hva, 1 << 20);
  EXPECT_EQ(host.dram_used_bytes(), before);
}

TEST_F(HypTest, VmBootReservesRamPlusOverhead) {
  hyp::Host host(loop_, net_, "h0", 4ull << 30);
  hyp::Vm::Config cfg;
  cfg.mem_bytes = 512ull << 20;
  cfg.qemu_overhead_bytes = 100ull << 20;
  {
    hyp::Vm vm(host, cfg);
    EXPECT_EQ(host.dram_used_bytes(), (512ull + 100ull) << 20);
  }
  EXPECT_EQ(host.dram_used_bytes(), 0u);  // destructor returns it
}

TEST_F(HypTest, HostMemoryLimitsVmCount) {
  // Miniature Table 5: 2 GiB host, 512+100 MiB VMs -> exactly 3 fit.
  hyp::Host host(loop_, net_, "h0", 2ull << 30);
  hyp::Vm::Config cfg;
  std::vector<std::unique_ptr<hyp::Vm>> vms;
  for (int i = 0; i < 3; ++i) {
    vms.push_back(std::make_unique<hyp::Vm>(host, cfg));
  }
  EXPECT_THROW(std::make_unique<hyp::Vm>(host, cfg), std::bad_alloc);
}

TEST_F(HypTest, GuestBufferResolvesThroughFullChain) {
  hyp::Host host(loop_, net_, "h0", 2ull << 30);
  hyp::Vm::Config cfg;
  cfg.name = "vm0";
  hyp::Vm vm(host, cfg);
  const mem::Addr gva = vm.alloc_guest_buffer(3 * mem::kPageSize);
  // Bytes written by the guest are visible at the resolved HPA.
  const std::string msg = "guest payload";
  vm.write_guest(gva + 5000, {reinterpret_cast<const std::uint8_t*>(
                                  msg.data()),
                              msg.size()});
  const mem::Addr hpa = vm.gva().resolve_hpa(gva + 5000);
  std::vector<std::uint8_t> out(msg.size());
  host.phys().read(hpa, out);
  EXPECT_EQ(std::string(out.begin(), out.end()), msg);
  // MTT construction across the chain merges contiguous pages.
  auto segs = vm.gva().resolve_hpa_range(gva, 3 * mem::kPageSize);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].len, 3 * mem::kPageSize);
  vm.free_guest_buffer(gva, 3 * mem::kPageSize);
}

TEST_F(HypTest, MmioMapsIntoGuest) {
  hyp::Host host(loop_, net_, "h0", 2ull << 30);
  rnic::DeviceConfig dc;
  dc.ip = ip("10.0.0.1");
  auto& dev = host.add_rnic(dc);
  hyp::Vm vm(host, {});
  const mem::Addr db_gva = vm.map_mmio_into_guest(dev.doorbell_bar(), 4096);
  // A doorbell write from guest code reaches the device (kicks QP 3; no
  // such QP exists, which is a harmless no-op — the routing is the test).
  vm.gva().write_u64(db_gva + 3 * 8, 1);
  SUCCEED();
}

TEST_F(HypTest, VmComputeOverheadScalesTime) {
  hyp::Host host(loop_, net_, "h0", 2ull << 30);
  hyp::Vm::Config cfg;
  cfg.compute_overhead = 1.5;
  hyp::Vm vm(host, cfg);
  EXPECT_EQ(vm.compute(1000_ns), 1500_ns);
  hyp::Container ctr(host, {});
  EXPECT_EQ(ctr.compute(1000_ns), 1000_ns);
}

TEST_F(HypTest, ContainerMemoryLimitEnforced) {
  hyp::Host host(loop_, net_, "h0", 2ull << 30);
  hyp::Container::Config cfg;
  cfg.mem_limit_bytes = 2 * mem::kPageSize;
  hyp::Container ctr(host, cfg);
  (void)ctr.alloc_buffer(2 * mem::kPageSize);
  EXPECT_THROW(ctr.alloc_buffer(mem::kPageSize), std::bad_alloc);
}

}  // namespace
