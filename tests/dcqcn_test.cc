// Tests for the DCQCN-lite congestion controller: convergence to fairness,
// near-full utilization, ramp-up of late joiners, and recovery after a
// competitor leaves.
#include <gtest/gtest.h>

#include "net/dcqcn.h"
#include "sim/event_loop.h"

using namespace sim::literals;

namespace {

class DcqcnTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  net::FluidNet fnet{loop};
};

TEST_F(DcqcnTest, TwoFlowsConvergeToFairShare) {
  auto link = fnet.add_link(40.0, 0_ns);
  auto f1 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  auto f2 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  net::DcqcnController cc(loop, fnet);
  cc.manage(f1, 40.0);
  cc.manage(f2, 40.0);
  loop.run_until(50_ms);
  const double r1 = fnet.current_rate_gbps(f1);
  const double r2 = fnet.current_rate_gbps(f2);
  EXPECT_NEAR(r1, r2, 6.0);                  // roughly fair
  EXPECT_GT(r1 + r2, 40.0 * 0.75);           // high utilization
  EXPECT_LE(r1 + r2, 40.0 + 1e-6);           // never oversubscribed
  EXPECT_GT(cc.marks_delivered(), 0u);       // congestion was signalled
  fnet.cancel_flow(f1);
  fnet.cancel_flow(f2);
  loop.run();
}

TEST_F(DcqcnTest, LateJoinerRampsUpAndIncumbentYields) {
  auto link = fnet.add_link(40.0, 0_ns);
  net::DcqcnController cc(loop, fnet);
  auto f1 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  cc.manage(f1, 40.0);
  loop.run_until(20_ms);
  EXPECT_GT(fnet.current_rate_gbps(f1), 30.0);  // alone: near line rate
  auto f2 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  cc.manage(f2, 40.0);
  loop.run_until(80_ms);
  EXPECT_GT(fnet.current_rate_gbps(f2), 10.0);  // newcomer got a share
  EXPECT_LT(fnet.current_rate_gbps(f1), 32.0);  // incumbent yielded
  fnet.cancel_flow(f1);
  fnet.cancel_flow(f2);
  loop.run();
}

TEST_F(DcqcnTest, SurvivorRecoversAfterCompetitorLeaves) {
  auto link = fnet.add_link(40.0, 0_ns);
  net::DcqcnController cc(loop, fnet);
  auto f1 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  auto f2 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  cc.manage(f1, 40.0);
  cc.manage(f2, 40.0);
  loop.run_until(40_ms);
  fnet.cancel_flow(f2);
  cc.unmanage(f2);
  loop.run_until(140_ms);  // additive increase needs time
  EXPECT_GT(fnet.current_rate_gbps(f1), 32.0);
  fnet.cancel_flow(f1);
  loop.run();
}

TEST_F(DcqcnTest, FinishedFlowStopsTicking) {
  auto link = fnet.add_link(40.0, 0_ns);
  net::DcqcnController cc(loop, fnet);
  bool done = false;
  auto f = fnet.start_flow({link}, 1'000'000, net::kUncapped,
                           [&done] { done = true; });
  cc.manage(f, 40.0);
  loop.run();  // must terminate: the tick chain ends with the flow
  EXPECT_TRUE(done);
  EXPECT_FALSE(cc.managing(f));
}

TEST_F(DcqcnTest, ManyFlowsShareStably) {
  auto link = fnet.add_link(40.0, 0_ns);
  net::DcqcnController cc(loop, fnet);
  std::vector<net::FlowId> flows;
  for (int i = 0; i < 8; ++i) {
    auto f = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
    cc.manage(f, 40.0);
    flows.push_back(f);
  }
  loop.run_until(100_ms);
  double sum = 0, mn = 1e9, mx = 0;
  for (auto f : flows) {
    const double r = fnet.current_rate_gbps(f);
    sum += r;
    mn = std::min(mn, r);
    mx = std::max(mx, r);
  }
  EXPECT_GT(sum, 40.0 * 0.7);
  EXPECT_LE(sum, 40.0 + 1e-6);
  EXPECT_LT(mx / std::max(mn, 0.1), 6.0);  // no starvation
  for (auto f : flows) fnet.cancel_flow(f);
  loop.run();
}

}  // namespace
