// Scale tests for the sharded SDN control plane (DESIGN.md §12), built on
// the connection-storm harness in src/fabric/scale.*:
//   * the 10k-VM storm is deterministic — two runs of the same (config,
//     seed) serialize to byte-identical reports — and every shard's
//     service-queue depth stays bounded by the host count (the one
//     in-flight batch per (host, shard) invariant),
//   * a single-shard outage degrades only its partition: other shards see
//     zero degraded serves and zero unreachable queries, and every
//     connection attempt still reaches a terminal outcome.
#include <gtest/gtest.h>

#include "fabric/scale.h"

namespace {

// The tool's default 10k-VM storm (16 hosts x 625 VMs, 8 shards) with the
// default churn. Kept identical to `masq_scaletest` with no arguments so
// this test pins the exact configuration CI archives as BENCH_scale.json.
fabric::ScaleConfig storm_10k() {
  fabric::ScaleConfig cfg;
  cfg.ip_changes = 200;
  cfg.rule_resets = 3;
  return cfg;
}

TEST(ScaleStormTest, TenKiloVmStormIsDeterministic) {
  const fabric::ScaleReport a = fabric::run_scale_storm(storm_10k());
  const fabric::ScaleReport b = fabric::run_scale_storm(storm_10k());
  EXPECT_EQ(a.json(), b.json());  // byte-identical, not merely equivalent

  // 16 hosts x 625 VMs x 2 conns x 3 waves, plus the rule-reset re-dials.
  EXPECT_EQ(a.vms, 10'000u);
  EXPECT_GE(a.attempted, 60'000u);
  // Every attempt reached a terminal outcome — nothing hung in a lane or
  // a shard queue when the loop drained.
  EXPECT_EQ(a.attempted, a.ok + a.degraded + a.unavailable + a.not_found);
  // No outage is configured, so nothing may degrade or bounce.
  EXPECT_EQ(a.degraded, 0u);
  EXPECT_EQ(a.unavailable, 0u);
}

TEST(ScaleStormTest, PerShardQueueDepthBoundedByHostCount) {
  const fabric::ScaleConfig cfg = storm_10k();
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);
  ASSERT_EQ(r.per_shard.size(), cfg.shards);
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    // At most one query_batch in flight per (host, shard): the depth a
    // shard's FIFO can reach is the number of hosts, independent of the
    // 10k VMs behind them.
    EXPECT_LE(r.per_shard[s].max_queue_depth, cfg.hosts)
        << "shard " << s << " queue exceeded the per-host-batch bound";
    // The storm actually exercised every shard.
    EXPECT_GT(r.per_shard[s].queries, 0u) << "shard " << s << " idle";
  }
  // The agent tier amortized: batches carried more keys than round trips.
  EXPECT_GT(r.agent_batches, 0u);
  EXPECT_GT(r.agent_batched_keys, r.agent_batches);
}

TEST(ScaleStormTest, ShardOutageDegradesOnlyItsPartition) {
  fabric::ScaleConfig cfg;
  cfg.tenants = 5;
  cfg.hosts = 8;
  cfg.vms_per_host = 50;
  cfg.conns_per_vm = 2;
  cfg.waves = 3;  // waves start at 0 / 50 / 100 ms
  cfg.shards = 4;
  cfg.ip_changes = 20;
  cfg.rule_resets = 1;
  // Shard 1 is dark for waves 2 and 3; wave 1 warmed the caches, so keys
  // on the downed shard are served stale-but-bounded (or bounce when the
  // VM never cached its peer).
  cfg.down_shard = 1;
  cfg.down_from = sim::milliseconds(45);
  cfg.down_until = sim::milliseconds(150);
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);

  // All attempts terminal, and the outage visibly bit.
  EXPECT_EQ(r.attempted, r.ok + r.degraded + r.unavailable + r.not_found);
  EXPECT_GT(r.degraded + r.unavailable, 0u) << "outage window never hit";

  ASSERT_EQ(r.per_shard.size(), 4u);
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    if (s == 1) {
      EXPECT_GT(r.per_shard[s].degraded_serves + r.per_shard[s].unreachable,
                0u)
          << "downed shard shows no outage effects";
    } else {
      // The blast radius stops at the partition boundary.
      EXPECT_EQ(r.per_shard[s].degraded_serves, 0u) << "shard " << s;
      EXPECT_EQ(r.per_shard[s].unreachable, 0u) << "shard " << s;
      EXPECT_GT(r.per_shard[s].queries, 0u) << "shard " << s;
    }
  }
}

TEST(ScaleStormTest, ReportEchoesTopologyAndSeed) {
  fabric::ScaleConfig cfg;
  cfg.tenants = 3;
  cfg.hosts = 2;
  cfg.vms_per_host = 10;
  cfg.waves = 1;
  cfg.shards = 2;
  cfg.seed = 42;
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);
  EXPECT_EQ(r.tenants, 3u);
  EXPECT_EQ(r.hosts, 2u);
  EXPECT_EQ(r.vms, 20u);
  EXPECT_EQ(r.shards, 2u);
  EXPECT_EQ(r.seed, 42u);
  // The JSON report carries the per-shard array at the configured width.
  const std::string j = r.json();
  EXPECT_NE(j.find("\"per_shard\""), std::string::npos);
  EXPECT_NE(j.find("\"seed\": 42"), std::string::npos);
}

}  // namespace
