// Scale tests for the sharded SDN control plane (DESIGN.md §12), built on
// the connection-storm harness in src/fabric/scale.*:
//   * the 10k-VM storm is deterministic — two runs of the same (config,
//     seed) serialize to byte-identical reports — and every shard's
//     service-queue depth stays bounded by the host count (the one
//     in-flight batch per (host, shard) invariant),
//   * a single-shard outage degrades only its partition: other shards see
//     zero degraded serves and zero unreachable queries, and every
//     connection attempt still reaches a terminal outcome,
//   * the partition-parallel engine (DESIGN.md §13) is byte-identical to
//     itself at every worker-thread count (1/2/4 — same report, same event
//     trace hash, same event count), and equivalent to the single-loop
//     engine on every counter, with setup-latency percentiles matching to
//     within the documented same-nanosecond tie-sequencing slack.
#include <gtest/gtest.h>

#include "fabric/scale.h"

namespace {

// The tool's default 10k-VM storm (16 hosts x 625 VMs, 8 shards) with the
// default churn. Kept identical to `masq_scaletest` with no arguments so
// this test pins the exact configuration CI archives as BENCH_scale.json.
fabric::ScaleConfig storm_10k() {
  fabric::ScaleConfig cfg;
  cfg.ip_changes = 200;
  cfg.rule_resets = 3;
  return cfg;
}

TEST(ScaleStormTest, TenKiloVmStormIsDeterministic) {
  const fabric::ScaleReport a = fabric::run_scale_storm(storm_10k());
  const fabric::ScaleReport b = fabric::run_scale_storm(storm_10k());
  EXPECT_EQ(a.json(), b.json());  // byte-identical, not merely equivalent

  // 16 hosts x 625 VMs x 2 conns x 3 waves, plus the rule-reset re-dials.
  EXPECT_EQ(a.vms, 10'000u);
  EXPECT_GE(a.attempted, 60'000u);
  // Every attempt reached a terminal outcome — nothing hung in a lane or
  // a shard queue when the loop drained.
  EXPECT_EQ(a.attempted, a.ok + a.degraded + a.unavailable + a.not_found);
  // No outage is configured, so nothing may degrade or bounce.
  EXPECT_EQ(a.degraded, 0u);
  EXPECT_EQ(a.unavailable, 0u);
}

TEST(ScaleStormTest, PerShardQueueDepthBoundedByHostCount) {
  const fabric::ScaleConfig cfg = storm_10k();
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);
  ASSERT_EQ(r.per_shard.size(), cfg.shards);
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    // At most one query_batch in flight per (host, shard): the depth a
    // shard's FIFO can reach is the number of hosts, independent of the
    // 10k VMs behind them.
    EXPECT_LE(r.per_shard[s].max_queue_depth, cfg.hosts)
        << "shard " << s << " queue exceeded the per-host-batch bound";
    // The storm actually exercised every shard.
    EXPECT_GT(r.per_shard[s].queries, 0u) << "shard " << s << " idle";
  }
  // The agent tier amortized: batches carried more keys than round trips.
  EXPECT_GT(r.agent_batches, 0u);
  EXPECT_GT(r.agent_batched_keys, r.agent_batches);
}

TEST(ScaleStormTest, ShardOutageDegradesOnlyItsPartition) {
  fabric::ScaleConfig cfg;
  cfg.tenants = 5;
  cfg.hosts = 8;
  cfg.vms_per_host = 50;
  cfg.conns_per_vm = 2;
  cfg.waves = 3;  // waves start at 0 / 50 / 100 ms
  cfg.shards = 4;
  cfg.ip_changes = 20;
  cfg.rule_resets = 1;
  // Shard 1 is dark for waves 2 and 3; wave 1 warmed the caches, so keys
  // on the downed shard are served stale-but-bounded (or bounce when the
  // VM never cached its peer).
  cfg.down_shard = 1;
  cfg.down_from = sim::milliseconds(45);
  cfg.down_until = sim::milliseconds(150);
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);

  // All attempts terminal, and the outage visibly bit.
  EXPECT_EQ(r.attempted, r.ok + r.degraded + r.unavailable + r.not_found);
  EXPECT_GT(r.degraded + r.unavailable, 0u) << "outage window never hit";

  ASSERT_EQ(r.per_shard.size(), 4u);
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    if (s == 1) {
      EXPECT_GT(r.per_shard[s].degraded_serves + r.per_shard[s].unreachable,
                0u)
          << "downed shard shows no outage effects";
    } else {
      // The blast radius stops at the partition boundary.
      EXPECT_EQ(r.per_shard[s].degraded_serves, 0u) << "shard " << s;
      EXPECT_EQ(r.per_shard[s].unreachable, 0u) << "shard " << s;
      EXPECT_GT(r.per_shard[s].queries, 0u) << "shard " << s;
    }
  }
}

// The smoke preset from `masq_scaletest --smoke`: 4 hosts x 25 VMs with the
// default timing knobs — big enough to exercise batching, churn, and every
// shard; small enough to run many times in one test.
fabric::ScaleConfig storm_smoke() {
  fabric::ScaleConfig cfg;
  cfg.tenants = 5;
  cfg.hosts = 4;
  cfg.vms_per_host = 25;
  cfg.waves = 2;
  cfg.shards = 4;
  cfg.ip_changes = 20;
  cfg.rule_resets = 1;
  return cfg;
}

// Every counter and every derived rate must agree between the single-loop
// and the partition-parallel engine. The ONLY tolerated difference is the
// setup-latency p50/p99: when several batch submissions to one shard land
// on the same simulated nanosecond, the legacy engine FIFO-orders them by
// global event sequence while the coordinator merge orders them by
// (time, partition) — a documented tie-sequencing difference (DESIGN.md
// §13) that shifts a handful of per-connection latencies by sub-ns queue
// slots without touching any count.
void expect_equivalent(const fabric::ScaleReport& legacy,
                       const fabric::ScaleReport& par) {
  EXPECT_EQ(legacy.tenants, par.tenants);
  EXPECT_EQ(legacy.hosts, par.hosts);
  EXPECT_EQ(legacy.vms, par.vms);
  EXPECT_EQ(legacy.shards, par.shards);
  EXPECT_EQ(legacy.seed, par.seed);
  EXPECT_EQ(legacy.attempted, par.attempted);
  EXPECT_EQ(legacy.ok, par.ok);
  EXPECT_EQ(legacy.degraded, par.degraded);
  EXPECT_EQ(legacy.unavailable, par.unavailable);
  EXPECT_EQ(legacy.not_found, par.not_found);
  EXPECT_EQ(legacy.cache_hits, par.cache_hits);
  EXPECT_EQ(legacy.cache_misses, par.cache_misses);
  EXPECT_EQ(legacy.coalesced, par.coalesced);
  EXPECT_EQ(legacy.agent_batches, par.agent_batches);
  EXPECT_EQ(legacy.agent_batched_keys, par.agent_batched_keys);
  EXPECT_DOUBLE_EQ(legacy.hit_rate, par.hit_rate);
  EXPECT_DOUBLE_EQ(legacy.elapsed_ms, par.elapsed_ms);
  EXPECT_DOUBLE_EQ(legacy.kconn_per_s, par.kconn_per_s);
  EXPECT_DOUBLE_EQ(legacy.max_us, par.max_us);
  EXPECT_NEAR(legacy.p50_us, par.p50_us, 0.5);
  EXPECT_NEAR(legacy.p99_us, par.p99_us, 0.5);
  ASSERT_EQ(legacy.per_shard.size(), par.per_shard.size());
  for (std::size_t s = 0; s < legacy.per_shard.size(); ++s) {
    EXPECT_EQ(legacy.per_shard[s].queries, par.per_shard[s].queries)
        << "shard " << s;
    EXPECT_EQ(legacy.per_shard[s].batched_queries,
              par.per_shard[s].batched_queries)
        << "shard " << s;
    EXPECT_EQ(legacy.per_shard[s].unreachable, par.per_shard[s].unreachable)
        << "shard " << s;
    EXPECT_EQ(legacy.per_shard[s].max_queue_depth,
              par.per_shard[s].max_queue_depth)
        << "shard " << s;
    EXPECT_EQ(legacy.per_shard[s].degraded_serves,
              par.per_shard[s].degraded_serves)
        << "shard " << s;
    EXPECT_EQ(legacy.per_shard[s].table_size, par.per_shard[s].table_size)
        << "shard " << s;
  }
}

TEST(ScalePartitionTest, ReportInvariantAcrossThreadCounts) {
  fabric::ScaleConfig cfg = storm_smoke();
  cfg.trace = true;  // mix every executed event into the FNV-1a hash
  const fabric::ScaleReport t1 = fabric::run_scale_storm_parallel(cfg, 1);
  const fabric::ScaleReport t2 = fabric::run_scale_storm_parallel(cfg, 2);
  const fabric::ScaleReport t4 = fabric::run_scale_storm_parallel(cfg, 4);
  // Byte-identical reports: not merely the same aggregates, the same JSON.
  EXPECT_EQ(t1.json(), t2.json());
  EXPECT_EQ(t1.json(), t4.json());
  // Same events, in the same per-partition order, at every thread count.
  EXPECT_EQ(t1.sim_events, t2.sim_events);
  EXPECT_EQ(t1.sim_events, t4.sim_events);
  EXPECT_NE(t1.trace_hash, 0u);
  EXPECT_EQ(t1.trace_hash, t2.trace_hash);
  EXPECT_EQ(t1.trace_hash, t4.trace_hash);
  EXPECT_EQ(t1.engine_threads, 1u);
  EXPECT_EQ(t2.engine_threads, 2u);
  EXPECT_EQ(t4.engine_threads, 4u);
}

TEST(ScalePartitionTest, MatchesLegacyEngineOnSmokeStorm) {
  const fabric::ScaleConfig cfg = storm_smoke();
  const fabric::ScaleReport legacy = fabric::run_scale_storm(cfg);
  const fabric::ScaleReport par = fabric::run_scale_storm_parallel(cfg, 2);
  expect_equivalent(legacy, par);
}

TEST(ScalePartitionTest, OutageBlastRadiusMatchesLegacy) {
  fabric::ScaleConfig cfg = storm_smoke();
  cfg.down_shard = 1;
  cfg.down_from = sim::milliseconds(45);
  cfg.down_until = sim::milliseconds(150);
  const fabric::ScaleReport legacy = fabric::run_scale_storm(cfg);
  const fabric::ScaleReport par = fabric::run_scale_storm_parallel(cfg, 3);
  expect_equivalent(legacy, par);
  // The outage still bit, and still stopped at the partition boundary.
  EXPECT_GT(par.degraded + par.unavailable, 0u);
  for (std::size_t s = 0; s < par.per_shard.size(); ++s) {
    if (s != 1) {
      EXPECT_EQ(par.per_shard[s].degraded_serves, 0u) << "shard " << s;
      EXPECT_EQ(par.per_shard[s].unreachable, 0u) << "shard " << s;
    }
  }
}

// 100-seed equivalence sweep on a tiny storm: the merge algorithm must
// reproduce the legacy engine's counters for every workload draw, not just
// the one the other tests pin.
TEST(ScalePartitionTest, HundredSeedLegacyEquivalenceSweep) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    fabric::ScaleConfig cfg;
    cfg.tenants = 3;
    cfg.hosts = 4;
    cfg.vms_per_host = 5;
    cfg.conns_per_vm = 2;
    cfg.waves = 2;
    cfg.shards = 3;
    cfg.ip_changes = 5;
    cfg.rule_resets = 1;
    cfg.seed = seed;
    const fabric::ScaleReport legacy = fabric::run_scale_storm(cfg);
    const fabric::ScaleReport par = fabric::run_scale_storm_parallel(cfg, 2);
    ASSERT_EQ(legacy.attempted, par.attempted) << "seed " << seed;
    ASSERT_EQ(legacy.ok, par.ok) << "seed " << seed;
    ASSERT_EQ(legacy.not_found, par.not_found) << "seed " << seed;
    ASSERT_EQ(legacy.cache_hits, par.cache_hits) << "seed " << seed;
    ASSERT_EQ(legacy.cache_misses, par.cache_misses) << "seed " << seed;
    ASSERT_EQ(legacy.agent_batches, par.agent_batches) << "seed " << seed;
    ASSERT_EQ(legacy.agent_batched_keys, par.agent_batched_keys)
        << "seed " << seed;
    ASSERT_DOUBLE_EQ(legacy.elapsed_ms, par.elapsed_ms) << "seed " << seed;
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      ASSERT_EQ(legacy.per_shard[s].queries, par.per_shard[s].queries)
          << "seed " << seed << " shard " << s;
      ASSERT_EQ(legacy.per_shard[s].max_queue_depth,
                par.per_shard[s].max_queue_depth)
          << "seed " << seed << " shard " << s;
    }
  }
}

// When the config cannot honor the conservative-lookahead contract (no
// batch window means agents query inline, so there is no barrier the
// coordinator can defer replies to), the parallel entry point falls back
// to the single-loop engine rather than producing divergent results.
TEST(ScalePartitionTest, FallsBackWithoutBatchWindow) {
  fabric::ScaleConfig cfg = storm_smoke();
  cfg.batch_window = 0;
  const fabric::ScaleReport legacy = fabric::run_scale_storm(cfg);
  const fabric::ScaleReport par = fabric::run_scale_storm_parallel(cfg, 4);
  EXPECT_EQ(legacy.json(), par.json());
  EXPECT_EQ(par.engine_threads, 0u);  // reports itself as single-loop
}

// The partition-ownership auditor (DESIGN.md §16) observes only: arming
// it on the smoke storm must leave the report JSON, the event count, and
// the FNV-1a trace hash byte-identical at every thread count. A single
// extra event or reordered callback would show up here.
TEST(ScalePartitionTest, AuditorPreservesReport) {
  fabric::ScaleConfig cfg = storm_smoke();
  cfg.trace = true;
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    fabric::ScaleConfig armed = cfg;
    armed.check = true;
    const fabric::ScaleReport off = fabric::run_scale_storm_parallel(
        cfg, threads);
    const fabric::ScaleReport on = fabric::run_scale_storm_parallel(
        armed, threads);
    EXPECT_EQ(off.json(), on.json()) << "threads=" << threads;
    EXPECT_EQ(off.sim_events, on.sim_events) << "threads=" << threads;
    EXPECT_NE(off.trace_hash, 0u);
    EXPECT_EQ(off.trace_hash, on.trace_hash) << "threads=" << threads;
  }
}

TEST(ScaleStormTest, ReportEchoesTopologyAndSeed) {
  fabric::ScaleConfig cfg;
  cfg.tenants = 3;
  cfg.hosts = 2;
  cfg.vms_per_host = 10;
  cfg.waves = 1;
  cfg.shards = 2;
  cfg.seed = 42;
  const fabric::ScaleReport r = fabric::run_scale_storm(cfg);
  EXPECT_EQ(r.tenants, 3u);
  EXPECT_EQ(r.hosts, 2u);
  EXPECT_EQ(r.vms, 20u);
  EXPECT_EQ(r.shards, 2u);
  EXPECT_EQ(r.seed, 42u);
  // The JSON report carries the per-shard array at the configured width.
  const std::string j = r.json();
  EXPECT_NE(j.find("\"per_shard\""), std::string::npos);
  EXPECT_NE(j.find("\"seed\": 42"), std::string::npos);
}

}  // namespace
