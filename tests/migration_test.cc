// Transparent live migration of established RDMA connections (DESIGN.md
// §15) — the chaos + invariant tier that makes masq::Migrator trustworthy.
//
// What the suite proves:
//   * mid-traffic migration is invisible to the application: an RC stream
//     crosses the move with zero connection resets, every payload arrives
//     exactly once and in order, and the QP keeps its number and its RTS
//     state on the destination device;
//   * the chaos schedule holds under the awkward windows — a control-verb
//     batch in flight when the gate closes, an SDN controller outage
//     covering the whole move, a warm-pool refill ladder racing the drain
//     — all with the QP-FSM / ring / cache / conntrack auditors live;
//   * a drain timeout rolls the pause back completely: the VM stays on the
//     source host, paused QPs return to RTS, and the stalled traffic then
//     completes untouched;
//   * the no-WQE-lost auditor is not decorative: corruption hooks that
//     drop or duplicate one WQE between extract and restore fire the
//     "migration-wqe" invariant with a diagnostic naming the QP, both
//     digests and the queue-depth change;
//   * the warm pool purges parked pairs whose peer migrated (the parked
//     underlay route is stale) — the next connect downgrades instead of
//     reusing a mis-wired pair;
//   * a seed sweep (MASQ_CHAOS_SEEDS-sized, 100 in CI) shows migrated and
//     never-migrated runs of the same seeded workload deliver bit-identical
//     application payloads;
//   * with migration unused the testbed's event stream is untouched — a
//     same-host migrate_vm is a no-op and two fresh runs stay bit-identical
//     (the ctest golden suite pins BENCH_scale / Fig. 15 / Table 1 on top).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/common.h"
#include "check/invariant.h"
#include "fabric/testbed.h"
#include "masq/frontend.h"
#include "masq/warm_pool.h"
#include "mem/physical_memory.h"
#include "rnic/device.h"

using namespace sim::literals;

namespace {

masq::MasqContext& masq_ctx(fabric::Testbed& bed, std::size_t i) {
  return static_cast<masq::MasqContext&>(bed.ctx(i));
}

struct BedOpts {
  int num_hosts = 3;
  bool warm = false;
  bool check = false;
  sim::FaultConfig faults;
  std::uint64_t seed = 1;
  std::size_t warm_target_ready = 4;
};

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop, BedOpts o) {
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.num_hosts = o.num_hosts;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.masq_warm.enabled = o.warm;
  cfg.masq_warm.target_ready = o.warm_target_ready;
  cfg.faults = std::move(o.faults);
  cfg.fault_seed = o.seed;
  cfg.check_invariants = o.check;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(2);  // instance 0 on host 0, instance 1 on host 1
  return bed;
}

// Deterministic splitmix-style generator (no std::rand: the sim forbids
// ambient nondeterminism and a fixed stream keeps every seed replayable).
struct Rng {
  std::uint64_t x;
  std::uint64_t next() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 33;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

// One seeded client->server stream with an optional transparent migration
// of the server VM landing mid-stream. The transcript records everything
// an application could observe; migrated and baseline runs must agree.
struct Transcript {
  std::vector<std::string> server_rx;          // payloads, arrival order
  std::vector<rnic::WcStatus> client_cqes;     // one per send
  std::vector<rnic::WcStatus> server_cqes;     // one per recv
  rnic::Status connect = rnic::Status::kOk;
  rnic::Status migrate = rnic::Status::kOk;
  masq::MigrationReport report;
  bool client_done = false;
  bool server_done = false;
};

constexpr std::uint64_t kSlot = 1024;  // per-message buffer slot

std::string payload_for(std::uint64_t seed, std::size_t i, std::size_t len) {
  std::string s = "seed" + std::to_string(seed) + "-msg" + std::to_string(i);
  while (s.size() < len) s.push_back('a' + static_cast<char>(s.size() % 26));
  s.resize(len);
  return s;
}

sim::Task<void> stream_server(fabric::Testbed* bed, std::size_t n,
                              std::uint16_t port, Transcript* out) {
  auto ep = co_await apps::setup_endpoint(bed->ctx(1));
  const auto st = co_await apps::connect_server(bed->ctx(1), ep,
                                               bed->instance_vip(0), port);
  EXPECT_EQ(st, rnic::Status::kOk);
  // Pre-post every recv in one synchronous burst the instant the ladder
  // lands (the client defers its first send past this moment): the stream
  // can never hit RNR, so any non-success CQE is a genuine transport event.
  for (std::size_t i = 0; i < n; ++i) {
    rnic::RecvWr wr;
    wr.wr_id = i;
    wr.sge = {ep.buf + i * kSlot, kSlot, ep.mr.lkey};
    EXPECT_EQ(bed->ctx(1).post_recv(ep.qp, wr), rnic::Status::kOk);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const rnic::Completion c = co_await bed->ctx(1).wait_completion(ep.rcq);
    out->server_cqes.push_back(c.status);
    out->server_rx.push_back(
        apps::get_string(bed->ctx(1), ep, c.wr_id * kSlot, c.byte_len));
  }
  out->server_done = true;
}

sim::Task<void> stream_client(fabric::Testbed* bed, std::uint64_t seed,
                              std::size_t n, std::uint16_t port,
                              sim::Time think, Transcript* out) {
  auto ep = co_await apps::setup_endpoint(bed->ctx(0));
  out->connect = co_await apps::connect_client(bed->ctx(0), ep,
                                               bed->instance_vip(1), port);
  if (out->connect != rnic::Status::kOk) co_return;
  // Grace period so the server's recv burst is posted before the first
  // send can arrive.
  co_await sim::delay(bed->loop(), 50_us);
  Rng rng{seed * 2 + 1};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 32 + rng.next(480);
    apps::put_string(bed->ctx(0), ep, i * kSlot, payload_for(seed, i, len));
    out->client_cqes.push_back(co_await apps::send_and_wait(
        bed->ctx(0), ep, i * kSlot, static_cast<std::uint32_t>(len)));
    if (think > 0) co_await sim::delay(bed->loop(), think);
  }
  out->client_done = true;
}

sim::Task<void> migrate_at(fabric::Testbed* bed, sim::Time when,
                           std::size_t inst, std::size_t target,
                           Transcript* out) {
  co_await sim::delay(bed->loop(), when);
  out->migrate = co_await bed->migrate_vm(inst, target);
  out->report = bed->last_migration_report();
}

// ------------------------------------------------- mid-traffic migration

TEST(MigrationTest, MidTrafficStreamSurvivesWithZeroResets) {
  // The flagship scenario: a 12-message RC stream, server VM migrated to
  // a third host mid-stream, every auditor armed. The application observes
  // added latency only: same QPN, no reset CQE, all payloads in order.
  sim::EventLoop loop;
  BedOpts o;
  o.check = true;
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->checks(), nullptr);

  constexpr std::size_t kMsgs = 12;
  Transcript t;
  loop.spawn(stream_server(bed.get(), kMsgs, 7400, &t));
  loop.spawn(stream_client(bed.get(), 1, kMsgs, 7400, 100_us, &t));
  // ~5 ms: the connect ladder is done and the stream is in full flight
  // (message cadence is one per ~100 us from ~4.8 ms).
  loop.spawn(migrate_at(bed.get(), 5_ms, 1, 2, &t));
  loop.run();  // an auditor violation throws out of run()

  EXPECT_TRUE(t.client_done);
  EXPECT_TRUE(t.server_done);
  EXPECT_EQ(t.migrate, rnic::Status::kOk);
  EXPECT_TRUE(t.report.ok);
  EXPECT_EQ(bed->instance_host(1), 2u);

  // Zero connection resets: every CQE on both sides is a success — in
  // particular no kTransportRetryExc (the Table 2 reset signature) and no
  // kWrFlushErr (a QP that fell to ERROR).
  ASSERT_EQ(t.client_cqes.size(), kMsgs);
  ASSERT_EQ(t.server_cqes.size(), kMsgs);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(t.client_cqes[i], rnic::WcStatus::kSuccess) << "send " << i;
    EXPECT_EQ(t.server_cqes[i], rnic::WcStatus::kSuccess) << "recv " << i;
  }
  // Exactly-once, in-order delivery across the move.
  ASSERT_EQ(t.server_rx.size(), kMsgs);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(t.server_rx[i], payload_for(1, i, t.server_rx[i].size()))
        << "message " << i;
  }

  // The moved objects live on the destination device under their original
  // IDs, and the connection's QP is back at RTS.
  EXPECT_GE(t.report.qps_moved, 1u);
  EXPECT_GE(t.report.cqs_moved, 2u);
  EXPECT_GE(t.report.mrs_moved, 1u);
  EXPECT_GE(t.report.conntrack_rows_moved, 1u);
  EXPECT_GE(t.report.peer_qps_paused, 1u);
  EXPECT_GT(t.report.guest_bytes_copied, 0u);
  masq::Backend::Session& s = masq_ctx(*bed, 1).session();
  EXPECT_EQ(&s.backend(), &bed->masq_backend(2));
  for (rnic::Qpn q : s.owned_qps()) {
    EXPECT_TRUE(bed->device(2).qp_exists(q));
    EXPECT_EQ(bed->device(2).qp_state(q), rnic::QpState::kRts);
  }
  // The tenant identity is unchanged: vBond re-registered the same vGID
  // against the new host's physical GID.
  EXPECT_EQ(s.vbond().vgid(), net::Gid::from_ipv4(bed->instance_vip(1)));
  EXPECT_EQ(*bed->controller().lookup(bed->instance_vni(1), s.vbond().vgid()),
            bed->device(2).gid(rnic::kPf));
}

TEST(MigrationTest, ReportIsDeterministicAndRoundTripWorks) {
  // An idle established connection: the report's pause time is a pure
  // function of the moved state (pause_base + per_qp + per_page), and a
  // second migration brings the VM straight back.
  sim::EventLoop loop;
  auto bed = make_bed(loop, {});
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      struct Srv {
        static sim::Task<void> run(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7410);
          // One recv for the post-roundtrip probe send.
          rnic::RecvWr wr;
          wr.sge = {ep.buf, 1024, ep.mr.lkey};
          EXPECT_EQ(bed->ctx(1).post_recv(ep.qp, wr), rnic::Status::kOk);
        }
      };
      bed->loop().spawn(Srv::run(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto cst = co_await apps::connect_client(bed->ctx(0), ep,
                                                     bed->instance_vip(1),
                                                     7410);
      EXPECT_EQ(cst, rnic::Status::kOk);
      if (cst != rnic::Status::kOk) co_return;

      masq::MigrationCosts costs;
      EXPECT_EQ(co_await bed->migrate_vm(1, 2, costs), rnic::Status::kOk);
      const masq::MigrationReport r1 = bed->last_migration_report();
      EXPECT_TRUE(r1.ok);
      const std::uint64_t pages =
          (r1.guest_bytes_copied + mem::kPageSize - 1) / mem::kPageSize;
      EXPECT_EQ(r1.pause_time,
                costs.pause_base +
                    costs.per_qp * static_cast<sim::Time>(r1.qps_moved) +
                    costs.per_page * static_cast<sim::Time>(pages));
      // An idle connection can drain instantly, so total == pause is legal.
      EXPECT_GE(r1.total_time, r1.pause_time);
      EXPECT_GE(r1.total_time, r1.drain_time + r1.pause_time);

      // Round trip: the same machinery moves it home again, and the
      // connection still carries traffic afterwards.
      EXPECT_EQ(co_await bed->migrate_vm(1, 1), rnic::Status::kOk);
      EXPECT_TRUE(bed->last_migration_report().ok);
      EXPECT_EQ(bed->instance_host(1), 1u);
      apps::put_string(bed->ctx(0), ep, 0, "post-roundtrip");
      EXPECT_EQ(co_await apps::send_and_wait(bed->ctx(0), ep, 0, 14),
                rnic::WcStatus::kSuccess);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// -------------------------------------------------- chaos: mid-batch move

TEST(MigrationTest, MidBatchControlVerbsParkAndComplete) {
  // Control-plane chaos: the migrating VM streams pipelined verb batches
  // while it moves. Batches in the virtqueue when the gate closes drain
  // first (the migration waits for them); batches issued during the move
  // park at the gate and execute against the destination session. Every
  // commit must succeed and the created CQs must land on the destination.
  sim::EventLoop loop;
  BedOpts o;
  o.check = true;
  auto bed = make_bed(loop, o);

  struct Churn {
    static sim::Task<void> go(fabric::Testbed* bed, int rounds,
                              std::vector<rnic::Status>* sts,
                              std::vector<rnic::Cqn>* cqs) {
      for (int r = 0; r < rounds; ++r) {
        auto batch = bed->ctx(0).make_batch();
        const int a = batch->create_cq(64);
        const int b = batch->create_cq(64);
        sts->push_back(co_await batch->commit());
        cqs->push_back(static_cast<rnic::Cqn>(batch->value(a)));
        cqs->push_back(static_cast<rnic::Cqn>(batch->value(b)));
        co_await sim::delay(bed->loop(), 50_us);
      }
    }
  };
  struct Move {
    static sim::Task<void> go(fabric::Testbed* bed, rnic::Status* st) {
      co_await sim::delay(bed->loop(), 120_us);
      *st = co_await bed->migrate_vm(0, 2);
    }
  };
  std::vector<rnic::Status> sts;
  std::vector<rnic::Cqn> cqs;
  rnic::Status mst = rnic::Status::kUnavailable;
  loop.spawn(Churn::go(bed.get(), 12, &sts, &cqs));
  loop.spawn(Move::go(bed.get(), &mst));
  loop.run();

  EXPECT_EQ(mst, rnic::Status::kOk);
  EXPECT_TRUE(bed->last_migration_report().ok);
  EXPECT_EQ(bed->instance_host(0), 2u);
  ASSERT_EQ(sts.size(), 12u);
  for (std::size_t i = 0; i < sts.size(); ++i) {
    EXPECT_EQ(sts[i], rnic::Status::kOk) << "batch " << i;
  }
  // Every CQ — created before, during or after the move — is owned by the
  // destination session and exists on the destination device.
  masq::Backend::Session& s = masq_ctx(*bed, 0).session();
  EXPECT_EQ(&s.backend(), &bed->masq_backend(2));
  for (rnic::Cqn c : cqs) {
    EXPECT_NE(c, 0u);
    EXPECT_TRUE(s.owned_cqs().contains(c)) << "cq " << c;
  }
}

// ------------------------------------------- chaos: mid-controller outage

TEST(MigrationTest, MidControllerOutageMigrationKeepsStreamAlive) {
  // The controller goes dark for 7 ms and the migration lands inside the
  // window. Established connections never consult the controller — the
  // Migrator rewrites peer QPCs directly — so the stream must cross the
  // move reset-free; the re-registration broadcast is buffered and
  // replayed when the outage lifts (the cache auditor checks convergence).
  sim::EventLoop loop;
  BedOpts o;
  o.check = true;
  o.seed = 7;
  o.faults.sdn_outages.push_back({5_ms, 12_ms});
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->faults(), nullptr);

  constexpr std::size_t kMsgs = 10;
  Transcript t;
  loop.spawn(stream_server(bed.get(), kMsgs, 7420, &t));
  loop.spawn(stream_client(bed.get(), 7, kMsgs, 7420, 600_us, &t));
  loop.spawn(migrate_at(bed.get(), 6_ms, 1, 2, &t));  // inside the outage
  loop.run();

  EXPECT_TRUE(t.client_done);
  EXPECT_TRUE(t.server_done);
  EXPECT_EQ(t.migrate, rnic::Status::kOk);
  EXPECT_TRUE(t.report.ok);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(t.client_cqes[i], rnic::WcStatus::kSuccess) << "send " << i;
    EXPECT_EQ(t.server_rx[i], payload_for(7, i, t.server_rx[i].size()))
        << "message " << i;
  }
  // After the outage lifted and broadcasts replayed, controller truth
  // names the destination host for the migrant's unchanged vGID.
  EXPECT_EQ(*bed->controller().lookup(
                bed->instance_vni(1),
                net::Gid::from_ipv4(bed->instance_vip(1))),
            bed->device(2).gid(rnic::kPf));
  bed->checks()->audit("quiesce");
}

// --------------------------------------------- chaos: mid-warm-refill move

TEST(MigrationTest, MidWarmRefillMigrationDegradesCleanly) {
  // The warm pool's background refill ladder is in flight on the migrating
  // VM when the gate closes: the batch drains, the pool's staged QPs move
  // with the session, and a post-move warm connect still succeeds.
  sim::EventLoop loop;
  BedOpts o;
  o.warm = true;
  o.check = true;
  auto bed = make_bed(loop, o);

  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      // Kick the pool, then migrate while staging/refill is still running
      // (staging + first refills take ~1 ms of Table 1 verb costs; the
      // migration gate closes at ~200 us, mid-ladder).
      co_await sim::delay(bed->loop(), 200_us);
      EXPECT_EQ(co_await bed->migrate_vm(0, 2), rnic::Status::kOk);
      EXPECT_TRUE(bed->last_migration_report().ok);

      // The pool survives the move and comes up for real on the new host.
      co_await sim::delay(bed->loop(), 10_ms);
      masq::WarmPool* pool = masq_ctx(*bed, 0).warm_pool();
      EXPECT_NE(pool, nullptr);
      if (pool == nullptr) co_return;
      EXPECT_TRUE(pool->staged());

      apps::WarmConn conn;
      const auto st = co_await apps::warm_connect_client(
          bed->ctx(0), conn, bed->instance_vip(1), 7430);
      EXPECT_EQ(st, rnic::Status::kOk);
      co_await apps::warm_disconnect(bed->ctx(0), conn);
      *finished = true;
    }
  };
  struct Srv {
    static sim::Task<void> go(fabric::Testbed* bed) {
      apps::WarmConn conn;
      const auto st = co_await apps::warm_connect_server(
          bed->ctx(1), conn, bed->instance_vip(0), 7430);
      EXPECT_EQ(st, rnic::Status::kOk);
      co_await apps::warm_disconnect(bed->ctx(1), conn);
    }
  };
  bool finished = false;
  loop.spawn(Srv::go(bed.get()));
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// --------------------------------- warm pool: stale parked pairs purged

TEST(MigrationTest, WarmPoolPurgesParkedPairWhenPeerMigrates) {
  // Regression for the satellite bugfix: a parked RTS pair is keyed by its
  // peer's vGID, and the peer's migration makes the parked underlay route
  // stale. The re-registration push (and any invalidation broadcast) must
  // purge the parked entry, so the next connect downgrades to a fresh rung
  // instead of reusing a pair wired to the old host.
  sim::EventLoop loop;
  BedOpts o;
  o.warm = true;
  auto bed = make_bed(loop, o);

  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      co_await sim::delay(bed->loop(), 10_ms);  // pool staging + refill
      masq::WarmPool* pool = masq_ctx(*bed, 0).warm_pool();
      EXPECT_NE(pool, nullptr);
      if (pool == nullptr) co_return;

      // Park a pair toward the peer.
      apps::WarmConn c1;
      EXPECT_EQ(co_await apps::warm_connect_client(bed->ctx(0), c1,
                                                   bed->instance_vip(1), 7440),
                rnic::Status::kOk);
      co_await apps::warm_disconnect(bed->ctx(0), c1);
      EXPECT_EQ(pool->parked_size(), 1u);
      const std::uint64_t purged0 = pool->purged();

      // Peer migrates: the vBond re-push for its unchanged vGID reaches
      // the survivor's frontend subscription, which purges the parked
      // entry synchronously inside the move.
      EXPECT_EQ(co_await bed->migrate_vm(1, 2), rnic::Status::kOk);
      EXPECT_EQ(pool->parked_size(), 0u);
      EXPECT_GT(pool->purged(), purged0);

      // No stale reuse: the next acquire toward the migrated peer cannot
      // answer kReused (the parked pair is gone) — it downgrades to a
      // staged or cold rung, and a full warm connect still succeeds
      // against the peer on its new host.
      const auto ep = co_await bed->ctx(0).acquire_warm(
          net::Gid::from_ipv4(bed->instance_vip(1)));
      EXPECT_NE(ep.kind, verbs::WarmKind::kReused);
      co_await bed->ctx(0).discard_warm(ep);

      apps::WarmConn c2;
      EXPECT_EQ(co_await apps::warm_connect_client(bed->ctx(0), c2,
                                                   bed->instance_vip(1), 7441),
                rnic::Status::kOk);
      EXPECT_NE(c2.kind, verbs::WarmKind::kReused);
      co_await apps::warm_disconnect(bed->ctx(0), c2);
      *finished = true;
    }
  };
  struct Srv {
    static sim::Task<void> go(fabric::Testbed* bed) {
      for (std::uint16_t port : {std::uint16_t{7440}, std::uint16_t{7441}}) {
        apps::WarmConn conn;
        const auto st = co_await apps::warm_connect_server(
            bed->ctx(1), conn, bed->instance_vip(0), port);
        EXPECT_EQ(st, rnic::Status::kOk) << "port " << port;
        co_await apps::warm_disconnect(bed->ctx(1), conn);
      }
    }
  };
  bool finished = false;
  loop.spawn(Srv::go(bed.get()));
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// ------------------------------------------------ drain-timeout rollback

TEST(MigrationTest, DrainTimeoutRollsBackAndTrafficCompletes) {
  // A saturated QP cannot drain inside an absurdly small timeout: the
  // Migrator must resume every paused QP, reopen the gate, and leave the
  // VM on the source host — and the stalled writes then finish normally.
  sim::EventLoop loop;
  auto bed = make_bed(loop, {});

  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      struct Srv {
        static sim::Task<void> run(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1),
                                                  {.buf_len = 4 << 20});
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7450);
        }
      };
      bed->loop().spawn(Srv::run(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0),
                                              {.buf_len = 4 << 20});
      const auto cst = co_await apps::connect_client(bed->ctx(0), ep,
                                                     bed->instance_vip(1),
                                                     7450);
      EXPECT_EQ(cst, rnic::Status::kOk);
      if (cst != rnic::Status::kOk) co_return;

      // Saturate: 48 writes of 32 KiB keep the send queue deep.
      constexpr int kWrites = 48;
      for (int i = 0; i < kWrites; ++i) {
        rnic::SendWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i);
        wr.opcode = rnic::WrOpcode::kRdmaWrite;
        wr.sge = {ep.buf, 32 * 1024, ep.mr.lkey};
        wr.remote_addr = ep.peer.raddr;
        wr.rkey = ep.peer.rkey;
        EXPECT_EQ(bed->ctx(0).post_send(ep.qp, wr), rnic::Status::kOk);
      }
      // Let the engine launch the burst: a quiesce check only waits for
      // in-flight WQEs (a paused queue may stay deep), so the timeout can
      // only trip while transfers are actually on the wire.
      co_await sim::delay(bed->loop(), 20_us);

      masq::MigrationCosts costs;
      costs.drain_timeout = 20_us;  // the in-flight burst outlives this
      EXPECT_EQ(co_await bed->migrate_vm(0, 2, costs),
                rnic::Status::kDeadlineExceeded);
      EXPECT_FALSE(bed->last_migration_report().ok);
      EXPECT_EQ(bed->instance_host(0), 0u);  // still home

      // Rollback: the QP is back at RTS on the source device and every
      // stalled write completes successfully.
      EXPECT_EQ(bed->device(0).qp_state(ep.qp), rnic::QpState::kRts);
      for (int i = 0; i < kWrites; ++i) {
        const rnic::Completion c =
            co_await bed->ctx(0).wait_completion(ep.scq);
        EXPECT_EQ(c.status, rnic::WcStatus::kSuccess) << "write " << i;
      }

      // And a migration with a sane timeout still works afterwards.
      EXPECT_EQ(co_await bed->migrate_vm(0, 2), rnic::Status::kOk);
      EXPECT_EQ(bed->instance_host(0), 2u);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// --------------------------------------- corruption hooks fire the auditor

// Shared harness: saturate the client QP so its send queue is deep when
// the pause sweep lands, migrate the client with a corruption hook armed,
// and return the recorded "migration-wqe" violations.
std::vector<check::Violation> run_corrupted_migration(
    fabric::Testbed::MigrationCorruption corrupt) {
  sim::EventLoop loop;
  BedOpts o;
  o.check = true;
  auto bed = make_bed(loop, o);
  bed->checks()->set_policy(check::ViolationPolicy::kRecord);

  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed,
                              fabric::Testbed::MigrationCorruption corrupt,
                              bool* finished) {
      struct Srv {
        static sim::Task<void> run(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1),
                                                  {.buf_len = 4 << 20});
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7460);
        }
      };
      bed->loop().spawn(Srv::run(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0),
                                              {.buf_len = 4 << 20});
      const auto cst = co_await apps::connect_client(bed->ctx(0), ep,
                                                     bed->instance_vip(1),
                                                     7460);
      EXPECT_EQ(cst, rnic::Status::kOk);
      if (cst != rnic::Status::kOk) co_return;
      // Deep send queue: the pause sweep freezes the engine mid-queue, so
      // the snapshot carries WQEs for the corruption hook to mutate.
      for (int i = 0; i < 48; ++i) {
        rnic::SendWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i);
        wr.opcode = rnic::WrOpcode::kRdmaWrite;
        wr.sge = {ep.buf, 32 * 1024, ep.mr.lkey};
        wr.remote_addr = ep.peer.raddr;
        wr.rkey = ep.peer.rkey;
        EXPECT_EQ(bed->ctx(0).post_send(ep.qp, wr), rnic::Status::kOk);
      }
      (void)co_await bed->migrate_vm(0, 2, {}, corrupt);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), corrupt, &finished));
  loop.run();
  EXPECT_TRUE(finished);

  std::vector<check::Violation> out;
  for (const check::Violation& v : bed->checks()->violations()) {
    if (v.invariant == "migration-wqe") out.push_back(v);
  }
  return out;
}

TEST(MigrationTest, DroppedWqeFiresNoWqeLostAuditor) {
  const auto violations =
      run_corrupted_migration(fabric::Testbed::MigrationCorruption::kDropWqe);
  ASSERT_GE(violations.size(), 1u);
  const check::Violation& v = violations.front();
  EXPECT_EQ(v.point, "restore");
  // The diagnostic is precise: it names the QP, both digests, the depth
  // change, and the verdict.
  EXPECT_NE(v.diagnostic.find("qp "), std::string::npos) << v.diagnostic;
  EXPECT_NE(v.diagnostic.find("wqe digest mismatch"), std::string::npos)
      << v.diagnostic;
  EXPECT_NE(v.diagnostic.find("before="), std::string::npos) << v.diagnostic;
  EXPECT_NE(v.diagnostic.find("send depth"), std::string::npos)
      << v.diagnostic;
  EXPECT_NE(v.diagnostic.find("lost or duplicated"), std::string::npos)
      << v.diagnostic;
}

TEST(MigrationTest, DuplicatedWqeFiresNoWqeLostAuditor) {
  const auto violations = run_corrupted_migration(
      fabric::Testbed::MigrationCorruption::kDuplicateWqe);
  ASSERT_GE(violations.size(), 1u);
  EXPECT_NE(violations.front().diagnostic.find("wqe digest mismatch"),
            std::string::npos)
      << violations.front().diagnostic;
}

TEST(MigrationTest, CleanMigrationKeepsAuditorSilent) {
  // Control for the corruption pair: the identical saturated workload with
  // no hook records no "migration-wqe" violation at all.
  const auto violations =
      run_corrupted_migration(fabric::Testbed::MigrationCorruption::kNone);
  EXPECT_TRUE(violations.empty())
      << violations.front().diagnostic;
}

// -------------------------------------------------- golden guard: unused

TEST(MigrationTest, SameHostMigrationIsANoOp) {
  // migrate_vm to the VM's current host returns immediately: no gate, no
  // pause, a zero report. (The ctest golden suite — BENCH_scale, Fig. 15,
  // Table 1 — pins that migration-unused event streams are bit-exact; this
  // guards the only new call site a non-migrating run could reach.)
  sim::EventLoop loop;
  auto bed = make_bed(loop, {});
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      const sim::Time t0 = bed->loop().now();
      EXPECT_EQ(co_await bed->migrate_vm(0, 0), rnic::Status::kOk);
      EXPECT_EQ(bed->loop().now(), t0);  // no simulated time consumed
      EXPECT_EQ(bed->last_migration_report().qps_moved, 0u);
      EXPECT_EQ(bed->last_migration_report().pause_time, 0);
      EXPECT_FALSE(masq_ctx(*bed, 0).migration_in_progress());
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

TEST(MigrationTest, UnusedMigrationKeepsEventStreamBitExact) {
  // The warm-pool absent-block pattern, applied to migration: a run that
  // reaches the machinery but moves nothing (same-host no-op) must leave
  // the event stream bit-identical to a run that never calls it. With the
  // stream pinned here, the ctest golden suite (BENCH_scale trace hash,
  // Fig. 15, Table 1) pins the absolute numbers.
  auto run_hash = [](bool call_noop) {
    sim::EventLoop loop;
    loop.enable_trace();
    auto bed = make_bed(loop, {});
    Transcript t;
    loop.spawn(stream_server(bed.get(), 6, 7470, &t));
    loop.spawn(stream_client(bed.get(), 3, 6, 7470, 60_us, &t));
    struct Probe {
      static sim::Task<void> go(fabric::Testbed* bed, bool call) {
        // Both runs schedule the identical timer; only the no-op
        // migrate_vm call itself distinguishes them.
        co_await sim::delay(bed->loop(), 250_us);
        if (call) {
          EXPECT_EQ(co_await bed->migrate_vm(1, 1), rnic::Status::kOk);
        }
      }
    };
    loop.spawn(Probe::go(bed.get(), call_noop));
    loop.run();
    EXPECT_TRUE(t.server_done);
    return loop.trace_hash();
  };
  EXPECT_EQ(run_hash(false), run_hash(true));
}

// ------------------------------------ concurrent both-ends migration

TEST(MigrationTest, ConcurrentBothEndsMigrationZeroResets) {
  // Both ends of one established connection migrate at the same instant:
  // the server VM to host 2 and the client VM to host 3, gates closing in
  // the same event-loop tick, every auditor armed. This is the interleaving
  // where migration A pauses the peer's QP, migration B then moves that QP
  // to a new device, and A's resume runs against a stale device pointer —
  // the Env::device_by_qpn re-resolution must find the QP wherever it lives
  // now, or one end is stranded in SQD and the stream never finishes.
  sim::EventLoop loop;
  BedOpts o;
  o.num_hosts = 4;
  o.check = true;
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->checks(), nullptr);

  constexpr std::size_t kMsgs = 12;
  Transcript t;
  Transcript server_move, client_move;
  loop.spawn(stream_server(bed.get(), kMsgs, 7480, &t));
  loop.spawn(stream_client(bed.get(), 9, kMsgs, 7480, 100_us, &t));
  loop.spawn(migrate_at(bed.get(), 5_ms, 1, 2, &server_move));
  loop.spawn(migrate_at(bed.get(), 5_ms, 0, 3, &client_move));
  loop.run();  // an auditor violation throws out of run()

  EXPECT_EQ(server_move.migrate, rnic::Status::kOk);
  EXPECT_EQ(client_move.migrate, rnic::Status::kOk);
  EXPECT_TRUE(server_move.report.ok);
  EXPECT_TRUE(client_move.report.ok);
  EXPECT_EQ(bed->instance_host(1), 2u);
  EXPECT_EQ(bed->instance_host(0), 3u);

  // The stream crossed BOTH moves with zero resets and exactly-once,
  // in-order delivery.
  EXPECT_TRUE(t.client_done);
  EXPECT_TRUE(t.server_done);
  ASSERT_EQ(t.client_cqes.size(), kMsgs);
  ASSERT_EQ(t.server_rx.size(), kMsgs);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(t.client_cqes[i], rnic::WcStatus::kSuccess) << "send " << i;
    EXPECT_EQ(t.server_cqes[i], rnic::WcStatus::kSuccess) << "recv " << i;
    EXPECT_EQ(t.server_rx[i], payload_for(9, i, t.server_rx[i].size()))
        << "message " << i;
  }

  // No QP on either destination device is stranded in SQD: every owned QP
  // of both sessions is back at RTS where its VM now lives.
  for (std::size_t inst : {std::size_t{0}, std::size_t{1}}) {
    masq::Backend::Session& s = masq_ctx(*bed, inst).session();
    const std::size_t host = bed->instance_host(inst);
    EXPECT_EQ(&s.backend(), &bed->masq_backend(host));
    for (rnic::Qpn q : s.owned_qps()) {
      EXPECT_TRUE(bed->device(host).qp_exists(q))
          << "instance " << inst << " qp " << q;
      EXPECT_EQ(bed->device(host).qp_state(q), rnic::QpState::kRts)
          << "instance " << inst << " qp " << q;
    }
  }
}

TEST(MigrationTest, ConcurrentBothEndsDigestMatchesBaseline) {
  // Digest equality under the race: for several seeds the both-ends-moved
  // run must deliver the byte-identical payload sequence of a run that
  // never migrates, with every CQE a success.
  for (std::uint64_t seed : {2ull, 5ull, 11ull}) {
    auto run = [&](bool migrate, Transcript* out) {
      sim::EventLoop loop;
      BedOpts o;
      o.num_hosts = 4;
      o.check = true;
      o.seed = seed;
      auto bed = make_bed(loop, o);
      Rng rng{seed};
      const std::size_t msgs = 6 + rng.next(6);
      const sim::Time think = sim::microseconds(60 + rng.next(120));
      const sim::Time when = sim::microseconds(200 + rng.next(400));
      const std::uint16_t port = static_cast<std::uint16_t>(7600 + seed);
      Transcript server_move, client_move;
      loop.spawn(stream_server(bed.get(), msgs, port, out));
      loop.spawn(stream_client(bed.get(), seed, msgs, port, think, out));
      if (migrate) {
        loop.spawn(migrate_at(bed.get(), when, 1, 2, &server_move));
        loop.spawn(migrate_at(bed.get(), when, 0, 3, &client_move));
      }
      loop.run();
      EXPECT_TRUE(out->client_done) << "seed " << seed;
      EXPECT_TRUE(out->server_done) << "seed " << seed;
      if (migrate) {
        EXPECT_EQ(server_move.migrate, rnic::Status::kOk) << "seed " << seed;
        EXPECT_EQ(client_move.migrate, rnic::Status::kOk) << "seed " << seed;
      }
    };
    Transcript base, moved;
    run(false, &base);
    run(true, &moved);
    ASSERT_EQ(moved.server_rx.size(), base.server_rx.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < base.server_rx.size(); ++i) {
      EXPECT_EQ(moved.server_rx[i], base.server_rx[i])
          << "seed " << seed << " message " << i;
    }
    for (const rnic::WcStatus st : moved.client_cqes) {
      EXPECT_EQ(st, rnic::WcStatus::kSuccess) << "seed " << seed;
    }
    for (const rnic::WcStatus st : moved.server_cqes) {
      EXPECT_EQ(st, rnic::WcStatus::kSuccess) << "seed " << seed;
    }
  }
}

// ------------------------------------------------ seed-sweep equivalence

void run_seeded_workload(std::uint64_t seed, bool migrate, Transcript* out) {
  sim::EventLoop loop;
  BedOpts o;
  o.seed = seed;
  auto bed = make_bed(loop, o);
  Rng rng{seed};
  const std::size_t msgs = 6 + rng.next(6);
  const sim::Time think = sim::microseconds(40 + rng.next(120));
  const sim::Time when = sim::microseconds(150 + rng.next(500));
  const std::uint16_t port = static_cast<std::uint16_t>(7500 + seed % 100);
  loop.spawn(stream_server(bed.get(), msgs, port, out));
  loop.spawn(stream_client(bed.get(), seed, msgs, port, think, out));
  if (migrate) loop.spawn(migrate_at(bed.get(), when, 1, 2, out));
  loop.run();
  EXPECT_TRUE(out->client_done) << "seed " << seed;
  EXPECT_TRUE(out->server_done) << "seed " << seed;
  if (migrate) {
    EXPECT_EQ(out->migrate, rnic::Status::kOk) << "seed " << seed;
    EXPECT_TRUE(out->report.ok) << "seed " << seed;
    EXPECT_EQ(bed->instance_host(1), 2u) << "seed " << seed;
  }
}

TEST(MigrationTest, SeedSweepMigratedMatchesBaseline) {
  // For every seed, the same seeded workload runs twice — once untouched,
  // once with the server VM transparently migrated at a seed-chosen moment
  // — and the application-visible transcripts must be identical: same
  // payloads, same order, all successes. MASQ_CHAOS_SEEDS sizes the sweep
  // (CI runs 100); locally it covers 12 seeds.
  std::size_t count = 12;
  if (const char* env = std::getenv("MASQ_CHAOS_SEEDS")) {
    // Accept either a count ("100") or a pinned list ("17,42,1337").
    const std::string s = env;
    if (s.find(',') == std::string::npos) {
      count = std::strtoull(s.c_str(), nullptr, 10);
    }
  }
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    Transcript base;
    run_seeded_workload(seed, /*migrate=*/false, &base);
    Transcript moved;
    run_seeded_workload(seed, /*migrate=*/true, &moved);

    ASSERT_EQ(moved.server_rx.size(), base.server_rx.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < base.server_rx.size(); ++i) {
      EXPECT_EQ(moved.server_rx[i], base.server_rx[i])
          << "seed " << seed << " message " << i;
    }
    for (std::size_t i = 0; i < moved.client_cqes.size(); ++i) {
      EXPECT_EQ(moved.client_cqes[i], rnic::WcStatus::kSuccess)
          << "seed " << seed << " send " << i;
    }
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;  // first divergent seed names itself; stop the sweep
    }
  }
}

}  // namespace
