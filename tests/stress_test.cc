// Stress / lifecycle tests: sustained connection churn across many
// tenants, full resource teardown accounting, conntrack table hygiene,
// and repeated migrations — the long-running-cloud behaviours that leak
// detectors in real deployments would catch.
#include <gtest/gtest.h>

#include <memory>

#include "apps/cm.h"
#include "apps/common.h"
#include "fabric/testbed.h"

namespace {

using fabric::Candidate;

TEST(StressTest, ConnectionChurnLeavesNoResidue) {
  // 24 connect/transfer/teardown cycles; every device object must be gone
  // at the end and the RCT table empty.
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      for (int round = 0; round < 24; ++round) {
        const auto port = static_cast<std::uint16_t>(9000 + round);
        struct Srv {
          static sim::Task<void> run(fabric::Testbed* bed,
                                     std::uint16_t port) {
            auto ep = co_await apps::setup_endpoint(bed->ctx(1));
            (void)co_await apps::connect_server(bed->ctx(1), ep,
                                                bed->instance_vip(0), port);
            auto c = co_await apps::recv_and_wait(bed->ctx(1), ep, 0, 256);
            EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
            co_await apps::destroy_endpoint(bed->ctx(1), ep);
          }
        };
        bed->loop().spawn(Srv::run(bed, port));
        auto ep = co_await apps::setup_endpoint(bed->ctx(0));
        const auto st = co_await apps::connect_client(
            bed->ctx(0), ep, bed->instance_vip(1), port);
        EXPECT_EQ(st, rnic::Status::kOk) << "round " << round;
        apps::put_string(bed->ctx(0), ep, 0, "churn");
        const auto wc = co_await apps::send_and_wait(bed->ctx(0), ep, 0, 5);
        EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
        co_await apps::destroy_endpoint(bed->ctx(0), ep);
      }
    }
  };
  loop.spawn(Run::go(&bed));
  loop.run();
  EXPECT_EQ(bed.device(0).num_qps(), 0u);
  EXPECT_EQ(bed.device(1).num_qps(), 0u);
  // destroy_qp untracks: the connection table must be empty again.
  EXPECT_EQ(bed.masq_backend(0).conntrack().table_size(), 0u);
  EXPECT_EQ(bed.masq_backend(1).conntrack().table_size(), 0u);
  EXPECT_EQ(bed.fluid().active_flows(), 0u);
}

TEST(StressTest, ManyTenantsManyConnectionsConcurrently) {
  // 6 tenants x 1 pair each, all connecting and transferring at once over
  // shared VFs; per-tenant data must arrive intact.
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  fabric::Testbed bed(loop, cfg);
  constexpr int kTenants = 6;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(bed.add_instance(100 + t).has_value());
    ASSERT_TRUE(bed.add_instance(100 + t).has_value());
  }
  int completed = 0;
  struct PairTask {
    static sim::Task<void> run(fabric::Testbed* bed, int tenant,
                               int* completed) {
      const std::size_t a = static_cast<std::size_t>(tenant) * 2;
      const std::size_t b = a + 1;
      const auto port = static_cast<std::uint16_t>(9500 + tenant);
      struct Srv {
        static sim::Task<void> run(fabric::Testbed* bed, std::size_t b,
                                   std::size_t a, std::uint16_t port,
                                   int tenant) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(b));
          (void)co_await apps::connect_server(bed->ctx(b), ep,
                                              bed->instance_vip(a), port);
          auto c = co_await apps::recv_and_wait(bed->ctx(b), ep, 0, 256);
          EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
          const std::string expect = "tenant-" + std::to_string(tenant);
          EXPECT_EQ(apps::get_string(bed->ctx(b), ep, 0, expect.size()),
                    expect);
        }
      };
      bed->loop().spawn(Srv::run(bed, b, a, port, tenant));
      auto ep = co_await apps::setup_endpoint(bed->ctx(a));
      const auto st = co_await apps::connect_client(
          bed->ctx(a), ep, bed->instance_vip(b), port);
      EXPECT_EQ(st, rnic::Status::kOk) << "tenant " << tenant;
      const std::string payload = "tenant-" + std::to_string(tenant);
      apps::put_string(bed->ctx(a), ep, 0, payload);
      const auto wc = co_await apps::send_and_wait(
          bed->ctx(a), ep, 0, static_cast<std::uint32_t>(payload.size()));
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
      ++*completed;
    }
  };
  for (int t = 0; t < kTenants; ++t) {
    loop.spawn(PairTask::run(&bed, t, &completed));
  }
  loop.run();
  EXPECT_EQ(completed, kTenants);
}

TEST(StressTest, RepeatedMigrationPingPong) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  const auto vgid = net::Gid::from_ipv4(bed.instance_vip(0));
  for (int round = 0; round < 4; ++round) {
    const std::size_t target = (bed.instance_host(0) + 1) % 2;
    ASSERT_EQ(bed.migrate_instance(0, target), rnic::Status::kOk)
        << "round " << round;
    // The controller always maps the vGID to the current host.
    EXPECT_EQ(bed.controller().lookup(100, vgid),
              net::Gid::from_ipv4(bed.device(target).config().ip));
  }
  // Still fully functional after four moves.
  struct After {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto conn = co_await apps::cm::connect(bed->ctx(0),
                                             bed->instance_vip(1), 9900);
      EXPECT_FALSE(conn.ok());  // nobody listening: clean NotFound
      EXPECT_EQ(conn.status, rnic::Status::kNotFound);
    }
  };
  loop.spawn(After::run(&bed));
  loop.run();
}

TEST(StressTest, CmChurnUnderOneListener) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  struct Server {
    static sim::Task<void> run(fabric::Testbed* bed, int rounds) {
      apps::cm::Listener listener(bed->ctx(1), 9700);
      for (int i = 0; i < rounds; ++i) {
        auto req = co_await listener.get_request();
        auto ep = co_await listener.accept(req);
        EXPECT_TRUE(ep.ok());
        if (!ep.ok()) co_return;
        auto c = co_await apps::recv_and_wait(bed->ctx(1), ep.value, 0, 64);
        EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        co_await apps::destroy_endpoint(bed->ctx(1), ep.value);
      }
    }
  };
  struct Client {
    static sim::Task<void> run(fabric::Testbed* bed, int rounds) {
      for (int i = 0; i < rounds; ++i) {
        auto conn = co_await apps::cm::connect(bed->ctx(0),
                                               bed->instance_vip(1), 9700);
        EXPECT_TRUE(conn.ok());
        if (!conn.ok()) co_return;
        const auto wc = co_await apps::send_and_wait(
            bed->ctx(0), conn.value.endpoint, 0, 16);
        EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
        co_await apps::destroy_endpoint(bed->ctx(0), conn.value.endpoint);
      }
    }
  };
  constexpr int kRounds = 12;
  loop.spawn(Server::run(&bed, kRounds));
  loop.spawn(Client::run(&bed, kRounds));
  loop.run();
  EXPECT_EQ(bed.device(0).num_qps(), 0u);
  EXPECT_EQ(bed.device(1).num_qps(), 0u);
}

}  // namespace
