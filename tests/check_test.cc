// masq-check corruption suite: proves each runtime auditor actually fires.
//
// Every test drives a real MasQ workload to a healthy state with auditing
// on (so the auditors see only truth and stay silent), then corrupts one
// component through its *_for_test hook — bypassing exactly the mechanism
// whose invariant the auditor guards — and asserts the next audit reports
// a precise diagnostic. A silent checker is worse than no checker: this
// suite is the evidence the chaos-green-under-MASQ_CHECK runs mean
// something.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/common.h"
#include "check/auditors.h"
#include "check/invariant.h"
#include "fabric/testbed.h"
#include "net/topology.h"
#include "rnic/device.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

std::unique_ptr<fabric::Testbed> checked_bed(sim::EventLoop& loop,
                                             int instances = 2) {
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.check_invariants = true;  // independent of the MASQ_CHECK env var
  // The connect+write workload executes a few hundred events (its time is
  // dominated by ms-scale controller RTTs); audit often enough that the
  // periodic hook provably fires during it.
  cfg.check_audit_every = 32;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(instances);
  return bed;
}

// Client/server connect + one RDMA write, with auditing on throughout.
void run_healthy_workload(sim::EventLoop& loop, fabric::Testbed& bed,
                          rnic::Qpn* client_qpn = nullptr) {
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, rnic::Qpn* out,
                              bool* finished) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          const auto st = co_await apps::connect_server(
              bed->ctx(1), ep, bed->instance_vip(0), 9000);
          EXPECT_EQ(st, rnic::Status::kOk);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(bed->ctx(0), ep,
                                                    bed->instance_vip(1),
                                                    9000);
      EXPECT_EQ(st, rnic::Status::kOk);
      const auto wc =
          co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0, 256);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
      if (out != nullptr) *out = ep.qp;
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(&bed, client_qpn, &finished));
  loop.run();
  ASSERT_TRUE(finished);
  // Auditing ran during the workload and saw a healthy system. (The
  // disabled-run determinism test drives this same workload with
  // check_invariants off, where there is nothing to assert.)
  if (bed.checks() != nullptr) {
    EXPECT_GT(bed.checks()->audits_run(), 0u);
    EXPECT_TRUE(bed.checks()->violations().empty())
        << bed.checks()->report();
  }
}

// ------------------------------------------------------- (1) qp-state

TEST(CheckTest, QpAuditorTripsOnStateChangeWithoutTransition) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  rnic::Qpn qpn = 0;
  run_healthy_workload(loop, *bed, &qpn);
  // Baseline audit pins the auditor's last observation of the QP.
  bed->checks()->audit("baseline");
  ASSERT_TRUE(bed->checks()->violations().empty());

  // Flip the QP's state underneath the device: no modify_qp, no hardware
  // edge — the transition counter stays put, which is the corruption
  // signature the auditor keys on.
  rnic::RnicDevice& dev = bed->device(bed->instance_host(0));
  rnic::QpAttr attr = dev.qp_hw_attr(qpn);
  attr.state = rnic::QpState::kError;
  dev.corrupt_qp_for_test(qpn, rnic::QpState::kError, attr);

  try {
    bed->checks()->audit("corruption");
    FAIL() << "qp-state auditor did not fire";
  } catch (const check::InvariantViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("qp-state"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("without performing any legal"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckTest, QpAuditorTripsOnVirtualGidPastRtr) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  rnic::Qpn qpn = 0;
  run_healthy_workload(loop, *bed, &qpn);

  // Undo RConnrename: plant the peer's *virtual* GID (its vIP-derived GID,
  // registered with the controller) back into the connected QPC.
  rnic::RnicDevice& dev = bed->device(bed->instance_host(0));
  rnic::QpAttr attr = dev.qp_hw_attr(qpn);
  attr.dest_gid = net::Gid::from_ipv4(bed->instance_vip(1));
  dev.corrupt_qp_for_test(qpn, dev.qp_state(qpn), attr);

  try {
    bed->checks()->audit("corruption");
    FAIL() << "qp-state auditor did not fire on a virtual GID in the QPC";
  } catch (const check::InvariantViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("tenant-virtual dest GID"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- (2) vq-ring

TEST(CheckTest, RingAuditorTripsOnAccountingDrift) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  run_healthy_workload(loop, *bed);

  // Fake one acquired-but-never-released descriptor: acquired/released
  // drift apart from in_flight, which is what a leaked descriptor across a
  // fault injection would look like.
  auto& ctx = static_cast<masq::MasqContext&>(bed->ctx(0));
  ctx.virtqueue().corrupt_ring_accounting_for_test();

  try {
    bed->checks()->audit("corruption");
    FAIL() << "vq-ring auditor did not fire";
  } catch (const check::InvariantViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("vq-ring[inst0]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("leaked or duplicated"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- (3) cache

TEST(CheckTest, CacheAuditorTripsOnDivergenceFromControllerTruth) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  run_healthy_workload(loop, *bed);

  // Rewrite a cached mapping to a bogus physical GID. The controller is
  // reachable and has no buffered broadcasts, so divergence is
  // illegitimate and the auditor must flag it.
  const net::Gid vgid = net::Gid::from_ipv4(bed->instance_vip(1));
  const net::Gid bogus = net::Gid::from_ipv4(ip("10.99.99.99"));
  bed->masq_backend(bed->instance_host(0))
      .mapping_cache()
      .corrupt_entry_for_test(bed->instance_vni(1), vgid, bogus);

  try {
    bed->checks()->audit("corruption");
    FAIL() << "cache auditor did not fire";
  } catch (const check::InvariantViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("controller truth"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- (4) conntrack

TEST(CheckTest, ConntrackAuditorTripsOnRowForDeadQp) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  run_healthy_workload(loop, *bed);

  // Plant a row referencing a QPN the device never created. No purge is
  // pending, so the auditor has no excuse to look away.
  masq::RConntrack::Entry orphan;
  orphan.vni = bed->instance_vni(0);
  orphan.src_vip = bed->instance_vip(0);
  orphan.dst_vip = bed->instance_vip(1);
  orphan.qpn = 0xdead;
  bed->masq_backend(bed->instance_host(0))
      .conntrack()
      .corrupt_insert_for_test(orphan);

  try {
    bed->checks()->audit("corruption");
    FAIL() << "conntrack auditor did not fire";
  } catch (const check::InvariantViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("no longer exists"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- (5) determinism

TEST(CheckTest, DeterminismAuditorPassesOnIdenticalRuns) {
  auto scenario = [](sim::EventLoop& loop) {
    auto bed = checked_bed(loop);
    run_healthy_workload(loop, *bed);
  };
  const check::DeterminismResult r = check::run_twice(scenario);
  EXPECT_TRUE(r.identical())
      << std::hex << r.first_hash << " vs " << r.second_hash;
  EXPECT_NE(r.first_hash, 0u);
}

TEST(CheckTest, DeterminismAuditorTripsOnDivergentRuns) {
  // A scenario that leaks cross-run state into the event stream: the
  // second run schedules one extra event, which is exactly the class of
  // bug (iteration-order / hidden-global dependence) the checker exists
  // to catch.
  int runs = 0;
  auto scenario = [&runs](sim::EventLoop& loop) {
    for (int i = 0; i < 2 + runs; ++i) {
      loop.schedule_after(sim::microseconds(i + 1), [] {});
    }
    ++runs;
    loop.run();
  };
  sim::EventLoop loop;
  check::InvariantRegistry registry(loop);
  registry.set_policy(check::ViolationPolicy::kRecord);
  check::audit_determinism(registry, scenario);
  ASSERT_EQ(registry.violations().size(), 1u);
  EXPECT_EQ(registry.violations()[0].invariant, "determinism");
  EXPECT_NE(registry.violations()[0].diagnostic.find("diverged"),
            std::string::npos);
}

// ------------------------------------------------------- framework

TEST(CheckTest, DisabledRunIsBitIdenticalToCheckedRun) {
  // The audit hook must be an observer: with auditors registered and
  // firing, the event trace hash equals the unchecked run's. (Trace
  // hashing is orthogonal to auditing, so it can watch both.)
  auto run_hash = [](bool check) {
    sim::EventLoop loop;
    loop.enable_trace();
    fabric::TestbedConfig cfg;
    cfg.candidate = fabric::Candidate::kMasq;
    cfg.cal.host_dram_bytes = 32ull << 30;
    cfg.cal.vm_mem_bytes = 512ull << 20;
    cfg.check_invariants = check;
    cfg.check_audit_every = 64;  // audit often to maximize perturbation
    fabric::Testbed bed(loop, cfg);
    bed.add_instances(2);
    run_healthy_workload(loop, bed);
    return loop.trace_hash();
  };
  EXPECT_EQ(run_hash(false), run_hash(true));
}

TEST(CheckTest, QuiesceAuditCleanAfterDrainedRun) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  run_healthy_workload(loop, *bed);
  ASSERT_TRUE(loop.empty());
  bed->checks()->audit("quiesce");
  EXPECT_TRUE(bed->checks()->violations().empty()) << bed->checks()->report();
  EXPECT_GT(bed->checks()->checks_run(), 0u);
}

// ------------------------------------------- (6) spine-outage schedule

// A testbed on a 2-leaf/1-spine fabric (DESIGN.md §17): hosts 0 and 1 land
// on different leaves, so cutting the only spine severs every data path
// between them.
std::unique_ptr<fabric::Testbed> spine_bed(sim::EventLoop& loop) {
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.num_hosts = 2;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.check_invariants = true;
  cfg.check_audit_every = 32;
  net::FabricConfig fc;
  fc.leaves = 2;
  fc.spines = 1;
  fc.host_gbps = 40.0;  // == cal.link_gbps
  fc.spine_gbps = 40.0;
  cfg.topology = fc;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(2);
  return bed;
}

// Drops the spine's links to zero capacity over [from, until) — a fabric
// outage the RC retransmission budget (7 x 4 ms) must outlast.
sim::Task<void> spine_outage(fabric::Testbed* bed, sim::Time from,
                             sim::Time until) {
  co_await sim::delay(bed->loop(), from);
  for (net::LinkId l : bed->topology()->spine_links(0)) {
    bed->fluid().set_link_capacity(l, 0);
  }
  co_await sim::delay(bed->loop(), until - from);
  for (net::LinkId l : bed->topology()->spine_links(0)) {
    bed->fluid().set_link_capacity(l, 40.0);
  }
}

// A paced cross-leaf stream whose middle messages land inside the outage
// window; each completion time is recorded so the test can prove traffic
// actually stalled and recovered rather than finishing early.
sim::Task<void> spine_stream(fabric::Testbed* bed, std::size_t msgs,
                             std::vector<sim::Time>* done, bool* finished) {
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed, std::size_t msgs) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), 9100);
      for (std::size_t i = 0; i < msgs; ++i) {
        rnic::RecvWr wr;
        wr.wr_id = i;
        wr.sge = {ep.buf + i * 1024, 1024, ep.mr.lkey};
        EXPECT_EQ(bed->ctx(1).post_recv(ep.qp, wr), rnic::Status::kOk);
      }
    }
  };
  bed->loop().spawn(Srv::run(bed, msgs));
  auto ep = co_await apps::setup_endpoint(bed->ctx(0));
  const auto st = co_await apps::connect_client(bed->ctx(0), ep,
                                                bed->instance_vip(1), 9100);
  EXPECT_EQ(st, rnic::Status::kOk);
  if (st != rnic::Status::kOk) co_return;
  co_await sim::delay(bed->loop(), 50_us);
  for (std::size_t i = 0; i < msgs; ++i) {
    apps::put_string(bed->ctx(0), ep, i * 1024, "spine-" + std::to_string(i));
    EXPECT_EQ(co_await apps::send_and_wait(bed->ctx(0), ep, i * 1024, 64),
              rnic::WcStatus::kSuccess)
        << "send " << i;
    done->push_back(bed->loop().now());
    co_await sim::delay(bed->loop(), 1_ms);
  }
  *finished = true;
}

TEST(CheckTest, SpineOutageKeepsAuditorsSilent) {
  // The incast/outage recovery path is legal behavior, not corruption: a
  // 10 ms spine outage (inside the 28 ms RC retry budget) stalls the
  // stream, retransmission carries it across, and the cache-coherence and
  // QP-FSM auditors must stay silent the whole way — the default policy
  // throws out of loop.run() if any fires.
  sim::EventLoop loop;
  auto bed = spine_bed(loop);
  std::vector<sim::Time> done;
  bool finished = false;
  loop.spawn(spine_stream(bed.get(), 8, &done, &finished));
  loop.spawn(spine_outage(bed.get(), 4_ms, 14_ms));
  loop.run();

  EXPECT_TRUE(finished);
  ASSERT_EQ(done.size(), 8u);
  // The outage really bit: at least one message could only complete after
  // the spine came back.
  EXPECT_GT(done.back(), 14_ms);
  bool stalled = false;
  for (const sim::Time t : done) stalled |= (t >= 14_ms);
  EXPECT_TRUE(stalled);
  // And auditing saw a healthy system throughout and at quiescence.
  EXPECT_GT(bed->checks()->audits_run(), 0u);
  bed->checks()->audit("after-outage");
  EXPECT_TRUE(bed->checks()->violations().empty()) << bed->checks()->report();
}

TEST(CheckTest, SpineOutageCorruptionStillTrips) {
  // The silence above means something only if the same schedule can fire:
  // corrupt one cached mapping mid-outage and the cache auditor must flag
  // it — an outage is no excuse for ignoring divergence from controller
  // truth (only an SDN outage buffers broadcasts; the spine is data plane).
  sim::EventLoop loop;
  auto bed = spine_bed(loop);
  bed->checks()->set_policy(check::ViolationPolicy::kRecord);
  std::vector<sim::Time> done;
  bool finished = false;
  loop.spawn(spine_stream(bed.get(), 8, &done, &finished));
  loop.spawn(spine_outage(bed.get(), 4_ms, 14_ms));
  struct Corrupt {
    static sim::Task<void> go(fabric::Testbed* bed) {
      co_await sim::delay(bed->loop(), 8_ms);  // inside the outage window
      const net::Gid vgid = net::Gid::from_ipv4(bed->instance_vip(1));
      const net::Gid bogus = net::Gid::from_ipv4(ip("10.99.99.99"));
      bed->masq_backend(bed->instance_host(0))
          .mapping_cache()
          .corrupt_entry_for_test(bed->instance_vni(1), vgid, bogus);
      bed->checks()->audit("mid-outage-corruption");
    }
  };
  loop.spawn(Corrupt::go(bed.get()));
  loop.run();

  EXPECT_TRUE(finished);
  bool cache_fired = false;
  for (const check::Violation& v : bed->checks()->violations()) {
    if (v.invariant == "cache" && v.point == "mid-outage-corruption") {
      cache_fired = true;
      EXPECT_NE(v.diagnostic.find("controller truth"), std::string::npos)
          << v.diagnostic;
    }
  }
  EXPECT_TRUE(cache_fired) << "cache auditor silent under the fault schedule";
}

TEST(CheckTest, RecordPolicyCollectsInsteadOfThrowing) {
  sim::EventLoop loop;
  auto bed = checked_bed(loop);
  run_healthy_workload(loop, *bed);
  bed->checks()->set_policy(check::ViolationPolicy::kRecord);
  auto& ctx = static_cast<masq::MasqContext&>(bed->ctx(0));
  ctx.virtqueue().corrupt_ring_accounting_for_test();
  bed->checks()->audit("corruption");
  ASSERT_FALSE(bed->checks()->violations().empty());
  EXPECT_EQ(bed->checks()->violations()[0].point, "corruption");
}

}  // namespace
