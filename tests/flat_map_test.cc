// sim::FlatMap / sim::FlatSet equivalence tests (DESIGN.md §13): the
// open-addressing containers that replaced std::map/std::unordered_map on
// the hot paths must behave exactly like a reference map under every
// operation mix, and must iterate in insertion order (that property is
// what keeps event traces deterministic where the std::unordered_map they
// replaced would have leaked hash-table order into the event stream).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/flat_map.h"
#include "sim/rng.h"

namespace {

TEST(FlatMapTest, BasicInsertFindErase) {
  sim::FlatMap<std::uint32_t, std::string> m;
  EXPECT_TRUE(m.empty());
  m.emplace(1u, "one");
  m.emplace(2u, "two");
  m[3u] = "three";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains(1u));
  EXPECT_EQ(m.at(2u), "two");
  EXPECT_EQ(m.find(4u), m.end());
  EXPECT_EQ(m.erase(2u), 1u);
  EXPECT_EQ(m.erase(2u), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(2u));
}

TEST(FlatMapTest, IterationIsInsertionOrdered) {
  sim::FlatMap<std::uint32_t, std::uint32_t> m;
  // Insert keys in an order no comparator or hash would produce.
  const std::uint32_t keys[] = {7, 3, 99, 1, 42, 5};
  for (std::uint32_t k : keys) m.emplace(k, k * 10);
  std::vector<std::uint32_t> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, std::vector<std::uint32_t>(std::begin(keys),
                                             std::end(keys)));
  // Erase in the middle; survivors keep their relative order.
  m.erase(99u);
  m.erase(7u);
  seen.clear();
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{3, 1, 42, 5}));
  // Re-insertion goes to the back, like a fresh key.
  m.emplace(7u, 70u);
  seen.clear();
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{3, 1, 42, 5, 7}));
}

TEST(FlatMapTest, EraseByIteratorDuringIteration) {
  sim::FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 100; ++k) m.emplace(k, k);
  // The `it = m.erase(it)` idiom every expiry sweep in the codebase uses.
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 3 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 66u);
  for (const auto& [k, v] : m) EXPECT_NE(k % 3, 0u);
}

// The 100-seed randomized sweep: every operation mix must agree with a
// std::unordered_map reference on lookups, sizes, and membership, and the
// flat map's iteration order must match the reference insertion log.
TEST(FlatMapTest, HundredSeedEquivalenceSweep) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sim::Rng rng(seed);
    sim::FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::vector<std::uint64_t> order;  // reference insertion order
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t key = rng.next_below(256);  // force collisions
      switch (rng.next_below(4)) {
        case 0: {  // insert/overwrite
          const std::uint64_t val = rng.next_u64();
          if (!ref.contains(key)) order.push_back(key);
          m.insert_or_assign(key, val);
          ref[key] = val;
          break;
        }
        case 1: {  // emplace (no overwrite)
          const std::uint64_t val = rng.next_u64();
          const bool inserted = m.emplace(key, val).second;
          const bool ref_inserted = ref.emplace(key, val).second;
          ASSERT_EQ(inserted, ref_inserted) << "seed " << seed;
          if (ref_inserted) order.push_back(key);
          break;
        }
        case 2: {  // erase
          const std::size_t a = m.erase(key);
          const std::size_t b = ref.erase(key);
          ASSERT_EQ(a, b) << "seed " << seed;
          if (b) std::erase(order, key);
          break;
        }
        case 3: {  // find
          const auto it = m.find(key);
          const auto rit = ref.find(key);
          ASSERT_EQ(it != m.end(), rit != ref.end()) << "seed " << seed;
          if (it != m.end()) ASSERT_EQ(it->second, rit->second);
          break;
        }
      }
      ASSERT_EQ(m.size(), ref.size()) << "seed " << seed;
    }
    // Final sweep: identical contents, insertion-ordered iteration.
    std::vector<std::uint64_t> seen;
    for (const auto& [k, v] : m) {
      seen.push_back(k);
      ASSERT_EQ(v, ref.at(k)) << "seed " << seed;
    }
    ASSERT_EQ(seen, order) << "seed " << seed;
  }
}

TEST(FlatSetTest, MirrorsReferenceSet) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng rng(seed);
    sim::FlatSet<std::uint64_t> s;
    std::unordered_set<std::uint64_t> ref;
    for (int op = 0; op < 1000; ++op) {
      const std::uint64_t key = rng.next_below(128);
      if (rng.next_below(3) == 0) {
        ASSERT_EQ(s.erase(key), ref.erase(key)) << "seed " << seed;
      } else {
        ASSERT_EQ(s.insert(key).second, ref.insert(key).second)
            << "seed " << seed;
      }
      ASSERT_EQ(s.contains(key), ref.contains(key)) << "seed " << seed;
      ASSERT_EQ(s.size(), ref.size()) << "seed " << seed;
    }
  }
}

TEST(FlatMapTest, GrowthPreservesContentsAndOrder) {
  sim::FlatMap<std::uint64_t, std::uint64_t> m;
  // Push through several rehash/growth cycles (load factor 7/8 from 16).
  for (std::uint64_t k = 0; k < 10000; ++k) m.emplace(k * 7919, k);
  EXPECT_EQ(m.size(), 10000u);
  std::uint64_t expect = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, expect * 7919);
    EXPECT_EQ(v, expect);
    ++expect;
  }
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(m.contains(k * 7919));
  }
}

}  // namespace
