// Whole-stack integration tests: the full Fig. 1 client/server flow (OOB
// exchange over the virtual TCP network + QP ladder + data transfer) on
// all four virtualization candidates, plus MasQ-specific behaviour —
// RConnrename's QPC rewrite, RConntrack admission/teardown, vBond GID
// maintenance, QoS rate limiting, tenant isolation, UD renaming.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "sim/event_loop.h"

using namespace sim::literals;
using fabric::Candidate;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

// Runs a coroutine to completion on a fresh loop.
#define RUN_SIM(loop, task_expr)        \
  do {                                  \
    (loop).spawn(task_expr);            \
    (loop).run();                       \
  } while (0)

struct Pair {
  apps::Endpoint client;
  apps::Endpoint server;
};

// Establishes a connected pair between instances 0 (client) and 1 (server).
sim::Task<void> establish(fabric::Testbed& bed, Pair* out,
                          rnic::Status* client_status = nullptr) {
  struct Server {
    static sim::Task<void> run(fabric::Testbed& bed, Pair* out) {
      out->server = co_await apps::setup_endpoint(bed.ctx(1));
      (void)co_await apps::connect_server(bed.ctx(1), out->server,
                                          bed.instance_vip(0), 7000);
    }
  };
  bed.loop().spawn(Server::run(bed, out));
  out->client = co_await apps::setup_endpoint(bed.ctx(0));
  rnic::Status st = co_await apps::connect_client(
      bed.ctx(0), out->client, bed.instance_vip(1), 7000);
  if (client_status != nullptr) *client_status = st;
}

class CandidateTest : public ::testing::TestWithParam<Candidate> {
 protected:
  CandidateTest() {
    fabric::TestbedConfig cfg;
    cfg.candidate = GetParam();
    // Keep per-test memory small; Table-5 scale is exercised separately.
    cfg.cal.host_dram_bytes = 8ull << 30;
    cfg.cal.vm_mem_bytes = 512ull << 20;
    bed_ = std::make_unique<fabric::Testbed>(loop_, cfg);
    bed_->add_instances(2);
  }

  sim::EventLoop loop_;
  std::unique_ptr<fabric::Testbed> bed_;
};

TEST_P(CandidateTest, SendRecvAcrossFullStack) {
  Pair p;
  auto scenario = [](fabric::Testbed& bed, Pair* p) -> sim::Task<void> {
    co_await establish(bed, p);
    apps::put_string(bed.ctx(0), p->client, 0, "virtualized rdma payload");
    struct Rx {
      static sim::Task<void> run(fabric::Testbed& bed, Pair* p) {
        auto c = co_await apps::recv_and_wait(bed.ctx(1), p->server, 0, 1024);
        EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        EXPECT_EQ(c.byte_len, 24u);
      }
    };
    bed.loop().spawn(Rx::run(bed, p));
    auto st = co_await apps::send_and_wait(bed.ctx(0), p->client, 0, 24);
    EXPECT_EQ(st, rnic::WcStatus::kSuccess);
  };
  RUN_SIM(loop_, scenario(*bed_, &p));
  EXPECT_EQ(apps::get_string(bed_->ctx(1), p.server, 0, 24),
            "virtualized rdma payload");
}

TEST_P(CandidateTest, RdmaWriteAndReadBack) {
  Pair p;
  auto scenario = [](fabric::Testbed& bed, Pair* p) -> sim::Task<void> {
    co_await establish(bed, p);
    apps::put_string(bed.ctx(0), p->client, 0, "one-sided-bytes");
    auto st = co_await apps::write_and_wait(bed.ctx(0), p->client, 0, 512,
                                            15);
    EXPECT_EQ(st, rnic::WcStatus::kSuccess);
    EXPECT_EQ(apps::get_string(bed.ctx(1), p->server, 512, 15),
              "one-sided-bytes");
    // Read it back into a different local offset.
    st = co_await apps::read_and_wait(bed.ctx(0), p->client, 4096, 512, 15);
    EXPECT_EQ(st, rnic::WcStatus::kSuccess);
    EXPECT_EQ(apps::get_string(bed.ctx(0), p->client, 4096, 15),
              "one-sided-bytes");
  };
  RUN_SIM(loop_, scenario(*bed_, &p));
}

TEST_P(CandidateTest, TeardownReleasesResources) {
  Pair p;
  auto scenario = [](fabric::Testbed& bed, Pair* p) -> sim::Task<void> {
    co_await establish(bed, p);
    co_await apps::destroy_endpoint(bed.ctx(0), p->client);
    co_await apps::destroy_endpoint(bed.ctx(1), p->server);
  };
  RUN_SIM(loop_, scenario(*bed_, &p));
  EXPECT_EQ(bed_->device(0).num_qps(), 0u);
  EXPECT_EQ(bed_->device(1).num_qps(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCandidates, CandidateTest,
    ::testing::Values(Candidate::kHostRdma, Candidate::kSriov,
                      Candidate::kFreeFlow, Candidate::kMasq),
    [](const ::testing::TestParamInfo<Candidate>& info) {
      std::string n = fabric::to_string(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

// ---------------------------------------------------------------- MasQ-only

class MasqTest : public ::testing::Test {
 protected:
  explicit MasqTest(bool use_pf = false) {
    fabric::TestbedConfig cfg;
    cfg.candidate = Candidate::kMasq;
    cfg.masq_use_pf = use_pf;
    cfg.cal.host_dram_bytes = 8ull << 30;
    bed_ = std::make_unique<fabric::Testbed>(loop_, cfg);
    bed_->add_instances(2);
  }

  sim::EventLoop loop_;
  std::unique_ptr<fabric::Testbed> bed_;
};

TEST_F(MasqTest, RconnrenameRewritesQpcToPhysical) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  // The application-level exchange carried *virtual* GIDs...
  EXPECT_EQ(p.client.peer.gid, net::Gid::from_ipv4(bed_->instance_vip(1)));
  EXPECT_EQ(p.client.local_gid, net::Gid::from_ipv4(bed_->instance_vip(0)));
  // ...but the hardware QPC holds the peer's *physical* GID.
  const auto& hw = bed_->device(0).qp_hw_attr(p.client.qp);
  EXPECT_EQ(hw.dest_gid, net::Gid::from_ipv4(bed_->device(1).config().ip));
  EXPECT_NE(hw.dest_gid, p.client.peer.gid);
}

TEST_F(MasqTest, QueryQpShowsTenantViewWhileHardwareHoldsPhysical) {
  // §3.3.1: "present two different views of the same QPC to the
  // application and RNIC."
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  struct Query {
    static sim::Task<void> run(fabric::Testbed* bed, Pair* p) {
      auto view = co_await bed->ctx(0).query_qp(p->client.qp);
      EXPECT_TRUE(view.ok());
      if (!view.ok()) co_return;
      // The application sees the peer's *virtual* GID and the live state.
      EXPECT_EQ(view.value.dest_gid,
                net::Gid::from_ipv4(bed->instance_vip(1)));
      EXPECT_EQ(view.value.state, rnic::QpState::kRts);
      EXPECT_EQ(view.value.dest_qpn, p->client.peer.qpn);
      // The hardware holds the renamed physical GID for the same QP.
      EXPECT_EQ(bed->device(0).qp_hw_attr(p->client.qp).dest_gid,
                net::Gid::from_ipv4(bed->device(1).config().ip));
      // Unknown QPs are reported cleanly.
      auto missing = co_await bed->ctx(0).query_qp(99999);
      EXPECT_EQ(missing.status, rnic::Status::kNotFound);
    }
  };
  RUN_SIM(loop_, Query::run(bed_.get(), &p));
}

TEST_P(CandidateTest, QueryQpReportsConfiguredAddressing) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  struct Query {
    static sim::Task<void> run(fabric::Testbed* bed, Pair* p) {
      auto view = co_await bed->ctx(0).query_qp(p->client.qp);
      EXPECT_TRUE(view.ok());
      if (!view.ok()) co_return;
      EXPECT_EQ(view.value.state, rnic::QpState::kRts);
      // Every candidate reports exactly what the application configured
      // at RTR: the peer GID from the OOB exchange.
      EXPECT_EQ(view.value.dest_gid, p->client.peer.gid);
    }
  };
  RUN_SIM(loop_, Query::run(bed_.get(), &p));
}

TEST_F(MasqTest, QpsLandOnTenantVf) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  EXPECT_TRUE(bed_->device(0).fn(bed_->device(0).qp_fn(p.client.qp)).is_vf);
}

TEST_F(MasqTest, VbondPublishesAndTracksVgid) {
  auto& ctl = bed_->controller();
  const auto vgid0 = net::Gid::from_ipv4(bed_->instance_vip(0));
  auto pgid = ctl.lookup(100, vgid0);
  ASSERT_TRUE(pgid.has_value());
  EXPECT_EQ(*pgid, net::Gid::from_ipv4(bed_->device(0).config().ip));
  // An inetaddr event (vEth IP change) refreshes GID + mapping.
  auto& session =
      static_cast<masq::MasqContext&>(bed_->ctx(0)).session();
  session.vbond().on_inetaddr_event(ip("192.168.1.77"));
  EXPECT_FALSE(ctl.lookup(100, vgid0).has_value());
  auto moved = ctl.lookup(100, net::Gid::from_ipv4(ip("192.168.1.77")));
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(session.vbond().vgid(),
            net::Gid::from_ipv4(ip("192.168.1.77")));
}

TEST_F(MasqTest, RconntrackDeniesForbiddenConnection) {
  // Deny RDMA from instance 0 to instance 1 before connecting.
  bed_->policy(100)
      .firewall(overlay::Chain::kForward)
      .add_rule(overlay::Rule::deny(
          net::Ipv4Cidr::host(bed_->instance_vip(0)),
          net::Ipv4Cidr::host(bed_->instance_vip(1)),
          overlay::Proto::kRdma, 100));
  Pair p;
  rnic::Status client_st = rnic::Status::kOk;
  RUN_SIM(loop_, establish(*bed_, &p, &client_st));
  EXPECT_EQ(client_st, rnic::Status::kPermissionDenied);
  // The client QP never reached RTS.
  EXPECT_NE(bed_->device(0).qp_state(p.client.qp), rnic::QpState::kRts);
}

TEST_F(MasqTest, RuleUpdateTearsDownEstablishedConnection) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  EXPECT_EQ(bed_->device(0).qp_state(p.client.qp), rnic::QpState::kRts);

  // Tighten the rules: deny RDMA between the two instances.
  bed_->policy(100)
      .firewall(overlay::Chain::kForward)
      .add_rule(overlay::Rule::deny(
          net::Ipv4Cidr::host(bed_->instance_vip(0)),
          net::Ipv4Cidr::host(bed_->instance_vip(1)),
          overlay::Proto::kRdma, 100));
  bed_->policy(100).notify_changed();
  loop_.run();

  // RConntrack reset the client QP to ERROR (Fig. 6 step (2)).
  EXPECT_EQ(bed_->device(0).qp_state(p.client.qp), rnic::QpState::kError);
  EXPECT_GE(bed_->masq_backend(0).conntrack().resets_performed(), 1u);

  // And no further data can flow.
  auto attempt = [](fabric::Testbed& bed, Pair* p) -> sim::Task<void> {
    auto st = co_await apps::send_and_wait(bed.ctx(0), p->client, 0, 8);
    EXPECT_EQ(st, rnic::WcStatus::kWrFlushErr);
  };
  RUN_SIM(loop_, attempt(*bed_, &p));
}

TEST_F(MasqTest, QosRateLimitCapsThroughput) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  bed_->masq_backend(0).set_tenant_rate_limit(100, 10.0);
  auto timed_write = [](fabric::Testbed& bed, Pair* p,
                        sim::Time* out) -> sim::Task<void> {
    const sim::Time start = bed.loop().now();
    auto st = co_await apps::write_and_wait(bed.ctx(0), p->client, 0, 0,
                                            32 * 1024);
    EXPECT_EQ(st, rnic::WcStatus::kSuccess);
    *out = bed.loop().now() - start;
  };
  sim::Time limited = 0;
  RUN_SIM(loop_, timed_write(*bed_, &p, &limited));
  // 32 KiB at 10 Gbps is ~27 us of serialization; at 40 Gbps it would be
  // ~7 us. Allow generous slack for pipeline latencies.
  EXPECT_GT(limited, 24_us);
  bed_->masq_backend(0).set_tenant_rate_limit(100, 40.0);
  sim::Time unlimited = 0;
  RUN_SIM(loop_, timed_write(*bed_, &p, &unlimited));
  EXPECT_LT(unlimited, limited / 2);
}

TEST_F(MasqTest, MappingCacheHitsAfterFirstConnection) {
  Pair p1;
  RUN_SIM(loop_, establish(*bed_, &p1));
  const auto misses_before = bed_->masq_backend(0).mapping_cache().misses();
  // A second connection to the same peer resolves from the local cache.
  struct Again {
    static sim::Task<void> run(fabric::Testbed& bed) {
      struct Server {
        static sim::Task<void> srv(fabric::Testbed& bed) {
          auto ep = co_await apps::setup_endpoint(bed.ctx(1));
          (void)co_await apps::connect_server(bed.ctx(1), ep,
                                              bed.instance_vip(0), 7001);
        }
      };
      bed.loop().spawn(Server::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed.ctx(0));
      auto st = co_await apps::connect_client(bed.ctx(0), ep,
                                              bed.instance_vip(1), 7001);
      EXPECT_EQ(st, rnic::Status::kOk);
    }
  };
  RUN_SIM(loop_, Again::run(*bed_));
  EXPECT_EQ(bed_->masq_backend(0).mapping_cache().misses(), misses_before);
  EXPECT_GT(bed_->masq_backend(0).mapping_cache().hits(), 0u);
}

TEST_F(MasqTest, UdSendRenamedThroughControlPath) {
  auto scenario = [](fabric::Testbed& bed) -> sim::Task<void> {
    apps::EndpointOptions opts;
    opts.type = rnic::QpType::kUd;
    auto a = co_await apps::setup_endpoint(bed.ctx(0), opts);
    auto b = co_await apps::setup_endpoint(bed.ctx(1), opts);
    // UD ladder: INIT(+qkey) -> RTR -> RTS on both sides.
    for (auto* pair : {&a, &b}) {
      auto& ctx = pair == &a ? bed.ctx(0) : bed.ctx(1);
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      attr.qkey = 0xABCD;
      EXPECT_EQ(co_await ctx.modify_qp(pair->qp, attr,
                                       rnic::kAttrState | rnic::kAttrQkey),
                rnic::Status::kOk);
      attr.state = rnic::QpState::kRtr;
      EXPECT_EQ(co_await ctx.modify_qp(pair->qp, attr, rnic::kAttrState),
                rnic::Status::kOk);
      attr.state = rnic::QpState::kRts;
      EXPECT_EQ(co_await ctx.modify_qp(pair->qp, attr, rnic::kAttrState),
                rnic::Status::kOk);
    }
    rnic::RecvWr rwr{1, {b.buf, 1024, b.mr.lkey}};
    EXPECT_EQ(bed.ctx(1).post_recv(b.qp, rwr), rnic::Status::kOk);
    apps::put_string(bed.ctx(0), a, 0, "ud datagram");
    rnic::SendWr wr;
    wr.wr_id = 5;
    wr.opcode = rnic::WrOpcode::kSend;
    wr.sge = {a.buf, 11, a.mr.lkey};
    // The application addresses the peer by its *virtual* GID.
    wr.ud = {net::Gid::from_ipv4(bed.instance_vip(1)), b.qp, 0xABCD};
    EXPECT_EQ(bed.ctx(0).post_send(a.qp, wr), rnic::Status::kOk);
    auto c = co_await bed.ctx(1).wait_completion(b.rcq);
    EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
    EXPECT_EQ(apps::get_string(bed.ctx(1), b, 0, 11), "ud datagram");
  };
  RUN_SIM(loop_, scenario(*bed_));
}

class MasqPfTest : public MasqTest {
 protected:
  MasqPfTest() : MasqTest(/*use_pf=*/true) {}
};

TEST_F(MasqPfTest, PfModePlacesQpsOnPf) {
  Pair p;
  RUN_SIM(loop_, establish(*bed_, &p));
  EXPECT_EQ(bed_->device(0).qp_fn(p.client.qp), rnic::kPf);
}

// ------------------------------------------------------- cross-candidate

TEST(TenantIsolationTest, SameVirtualIpDifferentTenantsNeverCross) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  // Tenant 100: instances 0,1. Tenant 200: instances 2,3 (same vIPs).
  ASSERT_TRUE(bed.add_instance(100).has_value());
  ASSERT_TRUE(bed.add_instance(100).has_value());
  ASSERT_TRUE(bed.add_instance(200).has_value());
  ASSERT_TRUE(bed.add_instance(200).has_value());
  ASSERT_EQ(bed.instance_vip(0), bed.instance_vip(2));  // IP collision

  // Tenant 100's pair connects and exchanges a secret.
  auto scenario = [](fabric::Testbed& bed) -> sim::Task<void> {
    struct Server {
      static sim::Task<void> run(fabric::Testbed& bed) {
        auto ep = co_await apps::setup_endpoint(bed.ctx(1));
        (void)co_await apps::connect_server(bed.ctx(1), ep,
                                            bed.instance_vip(0), 7000);
        auto c = co_await apps::recv_and_wait(bed.ctx(1), ep, 0, 1024);
        EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
      }
    };
    bed.loop().spawn(Server::run(bed));
    auto ep = co_await apps::setup_endpoint(bed.ctx(0));
    auto st = co_await apps::connect_client(bed.ctx(0), ep,
                                            bed.instance_vip(1), 7000);
    EXPECT_EQ(st, rnic::Status::kOk);
    apps::put_string(bed.ctx(0), ep, 0, "tenant-100-secret");
    auto wc = co_await apps::send_and_wait(bed.ctx(0), ep, 0, 17);
    EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    // The controller maps (vni, vgid) pairs independently.
    auto t100 = bed.controller().lookup(
        100, net::Gid::from_ipv4(bed.instance_vip(1)));
    auto t200 = bed.controller().lookup(
        200, net::Gid::from_ipv4(bed.instance_vip(3)));
    EXPECT_TRUE(t100.has_value());
    EXPECT_TRUE(t200.has_value());
  };
  loop.spawn(scenario(bed));
  loop.run();
  // Tenant 200's VMs saw no RDMA traffic at all.
  // (Both tenants share the physical devices; isolation shows up as
  // tenant 200's QPs never existing / never receiving.)
  SUCCEED();
}

TEST(SriovLimitsTest, NinthVmHasNoVf) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kSriov;
  cfg.num_hosts = 1;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.cal.num_vfs = 8;
  fabric::Testbed bed(loop, cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(bed.add_instance().has_value()) << "VM " << i;
  }
  EXPECT_FALSE(bed.add_instance().has_value());  // Table 5
}

TEST(MasqLimitsTest, VmCountLimitedByHostMemoryOnly) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.num_hosts = 1;
  cfg.cal.host_dram_bytes = 4ull << 30;  // fits 6 x (512+100) MiB
  fabric::Testbed bed(loop, cfg);
  int count = 0;
  while (bed.add_instance().has_value()) ++count;
  EXPECT_EQ(count, 6);  // far beyond the 8-VF ceiling per host memory unit
}

TEST(FreeflowTest, DataPathOpsAreForwardedThroughFfr) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kFreeFlow;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  Pair p;
  auto scenario = [](fabric::Testbed& bed, Pair* p) -> sim::Task<void> {
    co_await establish(bed, p);
    struct Rx {
      static sim::Task<void> run(fabric::Testbed& bed, Pair* p) {
        (void)co_await apps::recv_and_wait(bed.ctx(1), p->server, 0, 1024);
      }
    };
    bed.loop().spawn(Rx::run(bed, p));
    (void)co_await apps::send_and_wait(bed.ctx(0), p->client, 0, 64);
  };
  loop.spawn(scenario(bed, &p));
  loop.run();
  EXPECT_GT(bed.ffr(0).ops_forwarded(), 0u);
  EXPECT_GT(bed.ffr(1).ops_forwarded(), 0u);
}

}  // namespace
