// Leaf–spine fabric properties (DESIGN.md §17): max-min allocations
// conserve every link's capacity at every seed, ECMP placement is a pure
// function of the 5-tuple (identical across reruns, engines and thread
// counts), flow departure never leaves a stale share behind, and multi-hop
// DCQCN throttles exactly the flows crossing a congested link.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fabric/scale.h"
#include "fabric/storm_schedule.h"
#include "fabric/traffic.h"
#include "net/dcqcn.h"
#include "net/fluid.h"
#include "net/topology.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

namespace {

net::EcmpKey key_for(std::size_t src, std::size_t dst, std::uint16_t port) {
  net::EcmpKey k;
  k.src_ip = static_cast<std::uint32_t>(src);
  k.dst_ip = static_cast<std::uint32_t>(dst);
  k.src_port = port;
  return k;
}

// ---- topology shape ------------------------------------------------------

TEST(TopologyTest, PathShapesMatchTheClos) {
  sim::EventLoop loop;
  net::FluidNet net(loop);
  net::FabricConfig fc;
  fc.hosts = 8;
  fc.leaves = 2;
  fc.spines = 2;
  net::FabricTopology topo(net, fc);

  // Intra-host: never leaves the NIC.
  EXPECT_TRUE(topo.path(3, 3, key_for(3, 3, 0)).empty());

  // Intra-leaf (hosts 0..3 on leaf 0): up then down, no spine.
  const auto intra = topo.path(1, 2, key_for(1, 2, 0));
  ASSERT_EQ(intra.size(), 2u);
  EXPECT_EQ(intra[0], topo.host_up(1));
  EXPECT_EQ(intra[1], topo.host_down(2));

  // Inter-leaf: up, leaf->spine, spine->leaf, down, with the ECMP spine.
  const net::EcmpKey k = key_for(1, 6, 7);
  const auto inter = topo.path(1, 6, k);
  ASSERT_EQ(inter.size(), 4u);
  const std::size_t spine = topo.spine_for(k);
  EXPECT_EQ(inter[0], topo.host_up(1));
  EXPECT_EQ(inter[1], topo.leaf_to_spine(0, spine));
  EXPECT_EQ(inter[2], topo.spine_to_leaf(spine, 1));
  EXPECT_EQ(inter[3], topo.host_down(6));

  // Hosts attach to leaves in contiguous, monotone blocks.
  std::size_t prev = 0;
  for (std::size_t h = 0; h < fc.hosts; ++h) {
    const std::size_t leaf = topo.leaf_of(h);
    EXPECT_LT(leaf, fc.leaves);
    EXPECT_GE(leaf, prev);
    prev = leaf;
  }
}

TEST(TopologyTest, EcmpIsDeterministicAndCoversAllSpines) {
  // The hash is a pure function of the key bytes: equal keys agree across
  // independently constructed topologies (and therefore across reruns,
  // engines and machines); any byte flipped picks independently.
  sim::EventLoop loop;
  net::FluidNet net_a(loop), net_b(loop);
  net::FabricConfig fc;
  fc.hosts = 16;
  fc.leaves = 4;
  fc.spines = 4;
  net::FabricTopology a(net_a, fc), b(net_b, fc);

  std::vector<bool> hit(fc.spines, false);
  for (std::size_t i = 0; i < 256; ++i) {
    const net::EcmpKey k =
        key_for(i * 131, i * 257 + 1, static_cast<std::uint16_t>(i));
    EXPECT_EQ(net::ecmp_hash(k), net::ecmp_hash(k));
    EXPECT_EQ(a.spine_for(k), b.spine_for(k));
    hit[a.spine_for(k)] = true;
  }
  for (std::size_t s = 0; s < fc.spines; ++s) {
    EXPECT_TRUE(hit[s]) << "spine " << s << " never chosen over 256 keys";
  }
}

// ---- max-min conservation, every link, every seed ------------------------

TEST(TopologyPropertyTest, AllocationsConserveEveryLinkCapacity) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::EventLoop loop;
    net::FluidNet net(loop);
    net::FabricConfig fc;
    fc.hosts = 16;
    fc.leaves = 4;
    fc.spines = 2;
    fc.host_gbps = 10;
    fc.spine_gbps = 25;
    net::FabricTopology topo(net, fc);

    // Seeded random unbounded flows (src != dst so no path is empty).
    sim::Rng rng(seed);
    std::vector<net::FlowId> flows;
    std::vector<std::vector<net::LinkId>> paths;
    for (std::size_t i = 0; i < 40; ++i) {
      const std::size_t src = rng.next_below(fc.hosts);
      std::size_t dst = rng.next_below(fc.hosts - 1);
      if (dst >= src) ++dst;
      paths.push_back(topo.path(src, dst,
                                key_for(src, dst,
                                        static_cast<std::uint16_t>(i))));
      flows.push_back(net.start_flow(paths.back(), 0, net::kUncapped, {}));
    }

    auto assert_conserved = [&](const char* when) {
      for (net::LinkId l : topo.all_links()) {
        double load = 0;
        for (std::size_t i = 0; i < flows.size(); ++i) {
          if (!net.has_flow(flows[i])) continue;
          for (net::LinkId pl : paths[i]) {
            if (pl == l) load += net.current_rate_gbps(flows[i]);
          }
        }
        EXPECT_LE(load, net.link_capacity_gbps(l) + 1e-9)
            << when << ": link " << l << " oversubscribed at seed " << seed;
        EXPECT_DOUBLE_EQ(load, net.link_load_gbps(l))
            << when << ": stale share on link " << l << " at seed " << seed;
      }
    };

    assert_conserved("all flows up");
    for (std::size_t i = 0; i < flows.size(); i += 2) {
      net.cancel_flow(flows[i]);
    }
    assert_conserved("half departed");
    for (std::size_t i = 1; i < flows.size(); i += 2) {
      net.cancel_flow(flows[i]);
    }
    // Departure leaves no residue: every link drains to exactly zero.
    for (net::LinkId l : topo.all_links()) {
      EXPECT_EQ(net.link_load_gbps(l), 0.0) << "link " << l;
    }
  }
}

TEST(TopologyPropertyTest, SurvivorInheritsTheFreedShare) {
  // Two flows share one host-up link at 10 G; when one departs the other's
  // allocation immediately grows to the full link — no stale half-share.
  sim::EventLoop loop;
  net::FluidNet net(loop);
  net::FabricConfig fc;
  fc.hosts = 4;
  fc.leaves = 1;
  fc.host_gbps = 10;
  net::FabricTopology topo(net, fc);
  const auto path_a = topo.path(0, 1, key_for(0, 1, 0));
  const auto path_b = topo.path(0, 2, key_for(0, 2, 1));
  const net::FlowId a = net.start_flow(path_a, 0, net::kUncapped, {});
  const net::FlowId b = net.start_flow(path_b, 0, net::kUncapped, {});
  EXPECT_DOUBLE_EQ(net.current_rate_gbps(a), 5.0);
  EXPECT_DOUBLE_EQ(net.current_rate_gbps(b), 5.0);
  net.cancel_flow(a);
  EXPECT_DOUBLE_EQ(net.current_rate_gbps(b), 10.0);
}

// ---- multi-hop DCQCN selectivity -----------------------------------------

TEST(TopologyDcqcnTest, IncastThrottlesOnlyTheCongestedFlows) {
  // Four long senders in leaf 1 converge on host 0's 25 G down-link; one
  // short background pair runs inside leaf 0. The incast flows live at a
  // saturated link for hundreds of RP ticks and must take marks; the
  // background flow finishes before its first tick and must take none —
  // congestion on the shared links throttles exactly the flows crossing
  // them.
  sim::EventLoop loop;
  net::FluidNet net(loop);
  net::FabricConfig fc;
  fc.hosts = 8;
  fc.leaves = 2;
  fc.spines = 2;
  fc.host_gbps = 25;
  fc.spine_gbps = 40;
  net::FabricTopology topo(net, fc);
  std::vector<net::LinkId> tx, rx;
  for (std::size_t h = 0; h < fc.hosts; ++h) {
    tx.push_back(net.add_link(fc.host_gbps, 0));
    rx.push_back(net.add_link(fc.host_gbps, 0));
  }
  net::DcqcnParams dp;
  dp.seed = 42;
  net::DcqcnController dcqcn(loop, net, dp);

  auto start = [&](std::size_t src, std::size_t dst, std::uint64_t bytes,
                   std::uint16_t port) {
    std::vector<net::LinkId> path;
    path.push_back(tx[src]);
    for (net::LinkId l : topo.path(src, dst, key_for(src, dst, port))) {
      path.push_back(l);
    }
    path.push_back(rx[dst]);
    const net::FlowId f = net.start_flow(path, bytes, net::kUncapped, {});
    dcqcn.manage(f, fc.host_gbps);
    return f;
  };

  std::vector<net::FlowId> incast;
  for (std::size_t s = 4; s < 8; ++s) {
    incast.push_back(start(s, 0, 512 * 1024, static_cast<std::uint16_t>(s)));
  }
  const net::FlowId mouse = start(1, 2, 64 * 1024, 99);
  loop.run();

  for (net::FlowId f : incast) {
    EXPECT_GT(dcqcn.marks_for(f), 0u) << "incast flow " << f << " unmarked";
  }
  EXPECT_EQ(dcqcn.marks_for(mouse), 0u)
      << "background flow marked despite crossing no congested link";
  // The cut flows walked back up through fast recovery at least once.
  EXPECT_GT(dcqcn.recoveries(), 0u);
}

// ---- traffic phase: determinism and tenant isolation ---------------------

fabric::ScaleConfig traffic_cfg() {
  fabric::ScaleConfig cfg;
  cfg.hosts = 8;
  cfg.vms_per_host = 8;
  cfg.tenants = 4;
  cfg.waves = 2;
  cfg.shards = 4;
  cfg.ip_changes = 0;
  cfg.rule_resets = 0;
  cfg.seed = 7;
  cfg.traffic.enabled = true;
  cfg.traffic.leaves = 2;
  cfg.traffic.spines = 2;
  cfg.traffic.host_gbps = 25;
  cfg.traffic.spine_gbps = 40;
  cfg.traffic.flows = 64;
  cfg.traffic.flow_kb = 64;
  return cfg;
}

TEST(TrafficPhaseTest, EcmpPlacementStableAcrossRerunsAndThreadCounts) {
  const fabric::ScaleConfig cfg = traffic_cfg();
  const auto sched = fabric::storm::StormSchedule::draw(cfg);
  const fabric::TrafficReport a = fabric::run_traffic_phase(cfg, sched);
  const fabric::TrafficReport b = fabric::run_traffic_phase(cfg, sched);
  EXPECT_EQ(a.ecmp_fold, b.ecmp_fold);
  EXPECT_EQ(a.spine_crossings, b.spine_crossings);
  EXPECT_EQ(a.ecn_marks, b.ecn_marks);
  EXPECT_GT(a.spine_crossings, 0u);

  // Both storm engines append the identical block at any thread count: the
  // full report (storm + topology) serializes byte-identically.
  const std::string single = fabric::run_scale_storm(cfg).json();
  const std::string one = fabric::run_scale_storm_parallel(cfg, 1).json();
  const std::string four = fabric::run_scale_storm_parallel(cfg, 4).json();
  EXPECT_EQ(single, one);
  EXPECT_EQ(single, four);
  EXPECT_NE(single.find("\"topology\""), std::string::npos);
}

TEST(TrafficPhaseTest, TenantRateLimitHoldsUnderIncast) {
  // Fig. 12 semantics on the fabric: with per-tenant limiter links in every
  // path, no tenant's aggregate ever exceeds its cap — even while the
  // incast congests the victim's down-link and DCQCN churns flow rates.
  fabric::ScaleConfig cfg = traffic_cfg();
  cfg.traffic.pattern = "incast";
  cfg.traffic.incast_fanin = 16;
  cfg.traffic.flow_kb = 256;
  cfg.traffic.tenant_gbps = 5.0;
  const auto sched = fabric::storm::StormSchedule::draw(cfg);
  const fabric::TrafficReport r = fabric::run_traffic_phase(cfg, sched);
  EXPECT_EQ(r.flows, 64u);
  EXPECT_GT(r.peak_tenant_gbps, 0.0);
  EXPECT_LE(r.peak_tenant_gbps, cfg.traffic.tenant_gbps + 1e-9);
  EXPECT_GT(r.ecn_marks, 0u);
  // Every tenant's limiter link is saturated here, so every flow lives at
  // a congested link and legitimately takes marks; the selectivity claim
  // (uncongested flows stay unmarked) is IncastThrottlesOnlyTheCongested-
  // Flows' job.
  EXPECT_GT(r.throttled_flows, 0u);
  EXPECT_LE(r.throttled_flows, r.flows);
}

}  // namespace
