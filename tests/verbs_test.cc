// Unit tests for the verbs layer: kernel-driver cost charging and memory
// pinning, the VF slowdown factor, LayerProfile accounting, and the
// Context wait helpers.
#include <gtest/gtest.h>

#include <memory>

#include "hyp/host.h"
#include "hyp/instance.h"
#include "net/fluid.h"
#include "sim/event_loop.h"
#include "verbs/kernel_driver.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

class KernelDriverTest : public ::testing::Test {
 public:
  KernelDriverTest() : fnet_(loop_), host_(loop_, fnet_, "h0", 4ull << 30) {
    rnic::DeviceConfig dc;
    dc.ip = ip("10.0.0.1");
    dev_ = &host_.add_rnic(dc);
  }

  void run(sim::Task<void> t) {
    loop_.spawn(std::move(t));
    loop_.run();
  }

  sim::EventLoop loop_;
  net::FluidNet fnet_;
  hyp::Host host_;
  rnic::RnicDevice* dev_ = nullptr;
};

TEST_F(KernelDriverTest, ChargesCalibratedTimes) {
  verbs::KernelDriver drv(loop_, *dev_, rnic::kPf);
  auto scenario = [](KernelDriverTest* t,
                     verbs::KernelDriver* drv) -> sim::Task<void> {
    const sim::Time t0 = t->loop_.now();
    auto pd = co_await drv->alloc_pd();
    EXPECT_TRUE(pd.ok());
    EXPECT_EQ(t->loop_.now() - t0, drv->costs().alloc_pd);
    const sim::Time t1 = t->loop_.now();
    auto cq = co_await drv->create_cq(200);
    EXPECT_TRUE(cq.ok());
    EXPECT_EQ(t->loop_.now() - t1,
              drv->costs().create_cq_base + drv->costs().create_cq_per_cqe *
                                                static_cast<sim::Time>(200));
  };
  run(scenario(this, &drv));
}

TEST_F(KernelDriverTest, VfFactorScalesControlVerbs) {
  verbs::KernelDriver pf(loop_, *dev_, rnic::kPf);
  verbs::KernelDriver vf(loop_, *dev_, 1);
  auto scenario = [](KernelDriverTest* t, verbs::KernelDriver* pf,
                     verbs::KernelDriver* vf) -> sim::Task<void> {
    sim::Time t0 = t->loop_.now();
    (void)co_await pf->alloc_pd();
    const sim::Time pf_time = t->loop_.now() - t0;
    t0 = t->loop_.now();
    (void)co_await vf->alloc_pd();
    const sim::Time vf_time = t->loop_.now() - t0;
    EXPECT_NEAR(static_cast<double>(vf_time),
                static_cast<double>(pf_time) * pf->costs().vf_factor, 2.0);
  };
  run(scenario(this, &pf, &vf));
}

TEST_F(KernelDriverTest, RegMrPinsWholeChainAndDeregUnpins) {
  hyp::Vm vm(host_, {.mem_bytes = 256ull << 20});
  verbs::KernelDriver drv(loop_, *dev_, rnic::kPf);
  auto scenario = [](KernelDriverTest* t, hyp::Vm* vm,
                     verbs::KernelDriver* drv) -> sim::Task<void> {
    const mem::Addr gva = vm->alloc_guest_buffer(4 * mem::kPageSize);
    auto pd = co_await drv->alloc_pd();
    auto mr = co_await drv->reg_mr(pd.value, vm->gva(), gva,
                                   4 * mem::kPageSize, rnic::kLocalWrite);
    EXPECT_TRUE(mr.ok());
    if (!mr.ok()) co_return;
    // Pinned at guest level: the page table refuses unmap.
    EXPECT_TRUE(vm->gva().is_pinned(gva));
    EXPECT_THROW(vm->gva().unmap(gva, mem::kPageSize), std::logic_error);
    // Host level pinned too.
    const mem::Addr gpa = vm->gva().translate_or_throw(gva);
    EXPECT_TRUE(vm->gpa().is_pinned(gpa));
    // Deregistration unpins everything.
    EXPECT_EQ(co_await drv->dereg_mr(mr.value.lkey), rnic::Status::kOk);
    EXPECT_FALSE(vm->gva().is_pinned(gva));
    vm->free_guest_buffer(gva, 4 * mem::kPageSize);  // now legal
  };
  run(scenario(this, &vm, &drv));
}

TEST_F(KernelDriverTest, RegMrRejectsUnmappedRange) {
  verbs::KernelDriver drv(loop_, *dev_, rnic::kPf);
  auto scenario = [](KernelDriverTest* t,
                     verbs::KernelDriver* drv) -> sim::Task<void> {
    auto pd = co_await drv->alloc_pd();
    auto mr = co_await drv->reg_mr(pd.value, t->host_.hva(), 0xdead000, 4096,
                                   rnic::kLocalWrite);
    EXPECT_FALSE(mr.ok());
    EXPECT_EQ(mr.status, rnic::Status::kInvalidArgument);
  };
  run(scenario(this, &drv));
}

TEST_F(KernelDriverTest, ModifyToErrorChargesKernelPlusRnic) {
  verbs::KernelDriver drv(loop_, *dev_, rnic::kPf);
  auto scenario = [](KernelDriverTest* t,
                     verbs::KernelDriver* drv) -> sim::Task<void> {
    auto pd = co_await drv->alloc_pd();
    auto cq = co_await drv->create_cq(16);
    rnic::QpInitAttr init;
    init.pd = pd.value;
    init.send_cq = cq.value;
    init.recv_cq = cq.value;
    auto qp = co_await drv->create_qp(init);
    rnic::QpAttr attr;
    attr.state = rnic::QpState::kInit;
    (void)co_await drv->modify_qp(qp.value, attr, rnic::kAttrState);
    attr.state = rnic::QpState::kError;
    const sim::Time expect =
        drv->costs().modify_error_kernel +
        t->dev_->qp_error_processing_time(qp.value);
    const sim::Time t0 = t->loop_.now();
    (void)co_await drv->modify_qp(qp.value, attr, rnic::kAttrState);
    EXPECT_EQ(t->loop_.now() - t0, expect);
  };
  run(scenario(this, &drv));
}

TEST_F(KernelDriverTest, ProfileAttributesToRdmaDriverLayer) {
  verbs::KernelDriver drv(loop_, *dev_, rnic::kPf);
  verbs::LayerProfile profile;
  drv.set_profile(&profile);
  auto scenario = [](verbs::KernelDriver* drv) -> sim::Task<void> {
    (void)co_await drv->alloc_pd();
    (void)co_await drv->query_gid();
  };
  run(scenario(&drv));
  EXPECT_EQ(profile.by_layer("alloc_pd", verbs::Layer::kRdmaDriver),
            drv.costs().alloc_pd);
  EXPECT_EQ(profile.by_layer("query_gid", verbs::Layer::kRdmaDriver),
            drv.costs().query_gid);
  EXPECT_EQ(profile.by_layer("alloc_pd", verbs::Layer::kVirtio), 0);
  EXPECT_EQ(profile.total("alloc_pd"), drv.costs().alloc_pd);
  EXPECT_EQ(profile.grand_total(),
            drv.costs().alloc_pd + drv.costs().query_gid);
  EXPECT_EQ(profile.verbs().size(), 2u);
}

TEST(LayerProfileTest, AccumulatesAcrossCalls) {
  verbs::LayerProfile p;
  p.add("reg_mr", verbs::Layer::kVerbsLib, 100);
  p.add("reg_mr", verbs::Layer::kVerbsLib, 50);
  p.add("reg_mr", verbs::Layer::kVirtio, 20000);
  EXPECT_EQ(p.by_layer("reg_mr", verbs::Layer::kVerbsLib), 150);
  EXPECT_EQ(p.total("reg_mr"), 20150);
  EXPECT_EQ(p.total("unknown"), 0);
  p.clear();
  EXPECT_EQ(p.grand_total(), 0);
}

}  // namespace
