// Chaos tests: deterministic fault schedules driven through the seeded
// FaultPlane. Each test pins a (FaultConfig, seed) pair, so a failure is
// replayed bit-for-bit by re-running the same test; the pinned-seed
// harness additionally dumps the fault replay log (and writes it to
// $MASQ_CHAOS_LOG for the CI artifact) when an assertion fires.
//
// What the suite proves (the resilience contract):
//   * dropped / duplicated virtqueue descriptors are absorbed by the
//     frontend's bounded retry + the backend's cmd_id dedup — verbs and
//     batches still reach a correct terminal state;
//   * during an SDN controller outage, established connections keep
//     working, connects to cached peers succeed in degraded mode, and
//     connects to unknown peers fail with a deadline error, never a hang;
//   * a rule-update teardown racing an injected QP ERROR leaves no
//     RConntrack entry for the dead QP, whichever side wins the race;
//   * the whole fault schedule is reproducible: same seed, same config,
//     same event count, same replay log.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "rnic/device.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

masq::MasqContext& masq_ctx(fabric::Testbed& bed, std::size_t i) {
  return static_cast<masq::MasqContext&>(bed.ctx(i));
}

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop,
                                          sim::FaultConfig faults,
                                          std::uint64_t seed,
                                          int instances = 2) {
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.faults = std::move(faults);
  cfg.fault_seed = seed;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(instances);
  return bed;
}

// ------------------------------------------------ descriptor drop + dup

TEST(ChaosTest, BatchSubmissionUnderDropAndDuplication) {
  // Every guest->host transit has a 10% chance of vanishing and a 10%
  // chance of being delivered twice. The setup batch (MR + 2 CQs + QP in
  // one CmdBatch) and the full connect ladder must still land correctly:
  // drops are re-sent under a fresh attempt deadline, duplicates coalesce
  // on the backend's cmd_id window instead of executing twice.
  sim::EventLoop loop;
  sim::FaultConfig fc;
  fc.vq_drop_p = 0.10;
  fc.vq_dup_p = 0.10;
  auto bed = make_bed(loop, fc, /*seed=*/7);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          const auto st = co_await apps::connect_server(
              bed->ctx(1), ep, bed->instance_vip(0), 9000);
          EXPECT_EQ(st, rnic::Status::kOk);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(bed->ctx(0), ep,
                                                    bed->instance_vip(1),
                                                    9000);
      EXPECT_EQ(st, rnic::Status::kOk);
      const auto wc = co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0,
                                                    256);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
  ASSERT_NE(bed->faults(), nullptr);
  // The pinned seed fires faults; the control path absorbed all of them.
  EXPECT_GT(bed->faults()->faults_fired(), 0u) << bed->faults()->dump_log();
  const std::uint64_t retries = masq_ctx(*bed, 0).control_retries() +
                                masq_ctx(*bed, 1).control_retries();
  const std::uint64_t dedups = masq_ctx(*bed, 0).session().dedup_hits() +
                               masq_ctx(*bed, 1).session().dedup_hits();
  EXPECT_GT(retries + dedups, 0u) << bed->faults()->dump_log();
  EXPECT_EQ(masq_ctx(*bed, 0).deadline_failures(), 0u);
  EXPECT_EQ(masq_ctx(*bed, 1).deadline_failures(), 0u);
}

// ------------------------------------------------ SDN controller outage

TEST(ChaosTest, ConnectLadderUnderControllerOutage) {
  // Controller unreachable during [20ms, 100ms). Contract:
  //   1. an established connection keeps moving data (the data path never
  //      touches the controller),
  //   2. a new connect between peers whose mappings are cached succeeds in
  //      degraded mode (counted),
  //   3. a connect to a peer the cache has never seen fails with
  //      kDeadlineExceeded after bounded retries — not a hang,
  //   4. recovery: after the window the controller answers again.
  sim::EventLoop loop;
  sim::FaultConfig fc;
  fc.sdn_outages.push_back({sim::milliseconds(20), sim::milliseconds(100)});
  auto bed = make_bed(loop, fc, /*seed=*/1);
  // Allow the phantom peer in both chains so its failure is attributable
  // to mapping resolution, not to RConntrack.
  auto& pol = bed->policy(100);
  pol.security_group(ip("192.168.77.77"), overlay::Chain::kInput)
      .add_rule(overlay::Rule::allow_all());
  pol.security_group(ip("192.168.77.77"), overlay::Chain::kOutput)
      .add_rule(overlay::Rule::allow_all());
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      // Pre-outage: establish a connection (also confirms both hosts'
      // mapping-cache entries for the two vIPs).
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed, std::uint16_t port) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), port);
        }
      };
      bed->loop().spawn(Srv::srv(bed, 9100));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto pre = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 9100);
      EXPECT_EQ(pre, rnic::Status::kOk);
      if (pre != rnic::Status::kOk) co_return;

      // Step into the outage window.
      const sim::Time mid = sim::milliseconds(25);
      if (bed->loop().now() < mid) {
        co_await sim::delay(bed->loop(), mid - bed->loop().now());
      }
      EXPECT_FALSE(bed->controller().reachable());

      // 1. Established connection: data still flows.
      EXPECT_EQ(co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0, 256),
                rnic::WcStatus::kSuccess);

      // 2. New connection between cached peers succeeds (degraded mode).
      bed->loop().spawn(Srv::srv(bed, 9101));
      auto ep2 = co_await apps::setup_endpoint(bed->ctx(0));
      EXPECT_EQ(co_await apps::connect_client(bed->ctx(0), ep2,
                                              bed->instance_vip(1), 9101),
                rnic::Status::kOk);
      EXPECT_GE(bed->masq_backend(0).mapping_cache().degraded_serves(), 1u);
      EXPECT_GE(bed->masq_backend(1).mapping_cache().degraded_serves(), 1u);

      // 3. Unknown peer: bounded failure, not a hang.
      auto ep3 = co_await apps::setup_endpoint(bed->ctx(0));
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      (void)co_await bed->ctx(0).modify_qp(ep3.qp, attr, rnic::kAttrState);
      attr.state = rnic::QpState::kRtr;
      attr.dest_gid = net::Gid::from_ipv4(ip("192.168.77.77"));
      attr.dest_qpn = 42;
      const sim::Time before = bed->loop().now();
      const auto st = co_await bed->ctx(0).modify_qp(
          ep3.qp, attr,
          rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn);
      EXPECT_EQ(st, rnic::Status::kDeadlineExceeded);
      EXPECT_GE(masq_ctx(*bed, 0).deadline_failures(), 1u);
      EXPECT_GE(bed->masq_backend(0).mapping_cache().unavailable_results(),
                1u);
      // Bounded by the verb deadline the retry policy promises.
      EXPECT_LE(bed->loop().now() - before,
                bed->config().retry.verb_deadline);

      // 4. Recovery: past the window the controller is authoritative
      // again — the unknown peer now fails fast with kNotFound.
      const sim::Time after = sim::milliseconds(110);
      if (bed->loop().now() < after) {
        co_await sim::delay(bed->loop(), after - bed->loop().now());
      }
      EXPECT_TRUE(bed->controller().reachable());
      auto ep4 = co_await apps::setup_endpoint(bed->ctx(0));
      attr.state = rnic::QpState::kInit;
      (void)co_await bed->ctx(0).modify_qp(ep4.qp, attr, rnic::kAttrState);
      attr.state = rnic::QpState::kRtr;
      EXPECT_EQ(co_await bed->ctx(0).modify_qp(
                    ep4.qp, attr,
                    rnic::kAttrState | rnic::kAttrDestGid |
                        rnic::kAttrDestQpn),
                rnic::Status::kNotFound);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
  EXPECT_GE(bed->controller().unreachable_queries(), 1u);
  // Degraded serves never exceeded the staleness bound.
  const auto& cache = bed->masq_backend(0).mapping_cache();
  EXPECT_LE(cache.max_served_staleness(), cache.staleness_bound());
}

TEST(ChaosTest, RetryReexecutesAfterControllerRecovers) {
  // Regression: a retryable (kUnavailable) response must NOT enter the
  // backend's idempotency window. The frontend retries it under the same
  // cmd_id, so a memoized failure would replay as a dedup hit on every
  // backoff attempt and the command could never re-execute. Here the
  // outage ends in the middle of the retry schedule: the connect ladder
  // must recover to kOk, not run its budget down to kDeadlineExceeded.
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  // No cache, no degraded serving: every RTR queries the controller, so
  // recovery only helps if the retry actually re-executes the command.
  cfg.masq_disable_cache = true;
  // A retry schedule that comfortably straddles the outage window: worst
  // case (full jitter on every pause) the budget stretches ~38 ms, and
  // the earliest attempt past 5 ms is still several rounds before it.
  cfg.retry.max_attempts = 8;
  cfg.retry.base_backoff = sim::microseconds(200);
  cfg.faults.sdn_outages.push_back(
      {sim::milliseconds(1), sim::milliseconds(5)});
  cfg.fault_seed = 5;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(2);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      EXPECT_EQ(co_await bed->ctx(0).modify_qp(ep.qp, attr,
                                               rnic::kAttrState),
                rnic::Status::kOk);
      // Step inside the outage before issuing the RTR (the verb that
      // resolves the peer mapping through the controller).
      const sim::Time mid = sim::milliseconds(2);
      if (bed->loop().now() < mid) {
        co_await sim::delay(bed->loop(), mid - bed->loop().now());
      }
      EXPECT_FALSE(bed->controller().reachable());
      attr.state = rnic::QpState::kRtr;
      attr.dest_gid = net::Gid::from_ipv4(bed->instance_vip(1));
      attr.dest_qpn = 42;
      attr.path_mtu = 1024;
      const auto st = co_await bed->ctx(0).modify_qp(
          ep.qp, attr,
          rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn |
              rnic::kAttrPathMtu);
      EXPECT_EQ(st, rnic::Status::kOk);
      // Success implies a retry landed after the window closed.
      EXPECT_TRUE(bed->controller().reachable());
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
  // The outage was visible (the RTR drew kUnavailable and retried), and
  // recovery was reached by re-execution, not by exhausting the budget.
  EXPECT_GE(bed->controller().unreachable_queries(), 1u);
  EXPECT_GT(masq_ctx(*bed, 0).control_retries(), 0u);
  EXPECT_EQ(masq_ctx(*bed, 0).deadline_failures(), 0u);
  EXPECT_EQ(masq_ctx(*bed, 1).deadline_failures(), 0u);
}

// ------------------------------- rule teardown racing injected QP ERROR

TEST(ChaosTest, RuleUpdateTeardownRacingInjectedQpError) {
  // At the same instant, (a) the fault plane forces the client QP into
  // ERROR and (b) a tenant-wide RDMA deny rule triggers RConntrack's
  // revalidation teardown of the same connection. Whichever runs first,
  // the invariant holds: an ERROR QP has no RConntrack entry, on either
  // host, and the teardown of the server side still completes.
  sim::EventLoop loop;
  sim::FaultConfig fc;
  // Zero-length window far in the future: enables the fault plane without
  // perturbing the run.
  fc.sdn_outages.push_back({sim::seconds(1), sim::seconds(1)});
  auto bed = make_bed(loop, fc, /*seed=*/1);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      apps::Endpoint server;
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed,
                                   apps::Endpoint* out) {
          *out = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), *out,
                                              bed->instance_vip(0), 9200);
        }
      };
      bed->loop().spawn(Srv::srv(bed, &server));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto cst = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 9200);
      EXPECT_EQ(cst, rnic::Status::kOk);
      if (cst != rnic::Status::kOk) co_return;
      EXPECT_TRUE(bed->masq_backend(0).conntrack().has_qp(ep.qp));
      EXPECT_TRUE(bed->masq_backend(1).conntrack().has_qp(server.qp));

      // Arm both edges of the race at the same virtual instant.
      const sim::Time t = bed->loop().now() + sim::microseconds(5);
      const rnic::Qpn victim = ep.qp;
      bed->faults()->inject_qp_error_at(t, victim, [bed, victim] {
        rnic::QpAttr attr;
        attr.state = rnic::QpState::kError;
        (void)bed->device(0).modify_qp(victim, attr, rnic::kAttrState);
      });
      struct Deny {
        static sim::Task<void> run(fabric::Testbed* bed) {
          overlay::SecurityPolicy& pol = bed->policy(100);
          (void)co_await bed->masq_backend(0).conntrack().install_rule(
              pol, pol.firewall(overlay::Chain::kForward),
              overlay::Rule::deny(net::Ipv4Cidr::any(), net::Ipv4Cidr::any(),
                                  overlay::Proto::kRdma, 1000));
        }
      };
      bed->loop().schedule_at(t,
                              [bed] { bed->loop().spawn(Deny::run(bed)); });
      // Let the race and its deferred purges drain.
      co_await sim::delay(bed->loop(), sim::milliseconds(1));

      EXPECT_EQ(bed->device(0).qp_state(victim), rnic::QpState::kError);
      EXPECT_FALSE(bed->masq_backend(0).conntrack().has_qp(victim));
      // The rule update also tore down the server half.
      EXPECT_EQ(bed->device(1).qp_state(server.qp), rnic::QpState::kError);
      EXPECT_FALSE(bed->masq_backend(1).conntrack().has_qp(server.qp));
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
  ASSERT_NE(bed->faults(), nullptr);
  // The forced error is on the replay log.
  EXPECT_NE(bed->faults()->dump_log().find("qp_error"), std::string::npos)
      << bed->faults()->dump_log();
}

// ------------------------------------------------------- replay + seeds

// The full chaos cocktail: descriptor drop/dup/delay, transient command
// failures, cache expiry and a mid-run controller outage, over two
// connection pairs with an injected QP error. Used by the replay test,
// the pinned-seed harness, and (in spirit) the CI chaos job.
struct ChaosOutcome {
  bool finished = false;
  rnic::Status connect_a = rnic::Status::kOk;
  rnic::Status connect_b = rnic::Status::kOk;
  std::uint64_t events = 0;
  std::uint64_t faults_fired = 0;
  std::string fault_log;
};

sim::FaultConfig chaos_cocktail() {
  sim::FaultConfig fc;
  fc.vq_drop_p = 0.03;
  fc.vq_dup_p = 0.03;
  fc.vq_delay_p = 0.08;
  fc.cmd_fail_p = 0.03;
  fc.cache_expire_p = 0.02;
  fc.sdn_outages.push_back({sim::milliseconds(3), sim::milliseconds(6)});
  return fc;
}

void run_chaos_workload(std::uint64_t seed, ChaosOutcome* out) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, chaos_cocktail(), seed, /*instances=*/4);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, std::uint64_t seed,
                              ChaosOutcome* out) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed, std::size_t me,
                                   std::size_t peer, std::uint16_t port) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(me));
          (void)co_await apps::connect_server(bed->ctx(me), ep,
                                              bed->instance_vip(peer), port);
        }
      };
      // Pair A (instances 0 <-> 1).
      bed->loop().spawn(Srv::srv(bed, 1, 0, 9300));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      out->connect_a = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 9300);
      if (out->connect_a == rnic::Status::kOk) {
        (void)co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0, 256);
      }
      // Inject a QP error at a seed-derived offset — sometimes idle,
      // sometimes racing pair B's control traffic.
      const sim::Time t =
          bed->loop().now() + sim::microseconds(10 + seed % 400);
      const rnic::Qpn victim = ep.qp;
      bed->faults()->inject_qp_error_at(t, victim, [bed, victim] {
        rnic::QpAttr attr;
        attr.state = rnic::QpState::kError;
        (void)bed->device(0).modify_qp(victim, attr, rnic::kAttrState);
      });
      // Pair B (instances 2 <-> 3), racing the outage window and the
      // injected error.
      bed->loop().spawn(Srv::srv(bed, 3, 2, 9301));
      auto ep2 = co_await apps::setup_endpoint(bed->ctx(2));
      out->connect_b = co_await apps::connect_client(
          bed->ctx(2), ep2, bed->instance_vip(3), 9301);
      if (out->connect_b == rnic::Status::kOk) {
        (void)co_await apps::write_and_wait(bed->ctx(2), ep2, 0, 0, 256);
      }
      co_await sim::delay(bed->loop(), sim::milliseconds(2));
      // Invariant: a QP in ERROR has no RConntrack entry.
      EXPECT_FALSE(bed->masq_backend(0).conntrack().has_qp(victim))
          << "seed " << seed;
      EXPECT_EQ(bed->device(0).qp_state(victim), rnic::QpState::kError)
          << "seed " << seed;
      out->finished = true;
    }
  };
  loop.spawn(Run::go(bed.get(), seed, out));
  loop.run();
  // Invariant: degraded mode never served anything staler than the bound.
  for (std::size_t h = 0; h < bed->num_hosts(); ++h) {
    const auto& cache = bed->masq_backend(h).mapping_cache();
    EXPECT_LE(cache.max_served_staleness(), cache.staleness_bound())
        << "seed " << seed << " host " << h;
  }
  // Invariant: every verb reached a terminal status (the coroutine ran to
  // completion — a hang would leave finished=false with an idle loop).
  EXPECT_TRUE(out->finished) << "seed " << seed;
  out->events = loop.events_executed();
  out->faults_fired = bed->faults()->faults_fired();
  out->fault_log = bed->faults()->dump_log();
}

TEST(ChaosTest, ReplayFromFixedSeedIsBitIdentical) {
  // Same (config, seed) -> same event count, same fault count, same
  // replay log, same statuses. This is what makes a chaos failure
  // debuggable: the log names the seed, the seed reproduces the run.
  ChaosOutcome a, b;
  run_chaos_workload(42, &a);
  run_chaos_workload(42, &b);
  EXPECT_TRUE(a.finished);
  EXPECT_GT(a.faults_fired, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.connect_a, b.connect_a);
  EXPECT_EQ(a.connect_b, b.connect_b);
  // A different seed draws a different schedule (sanity check that the
  // seed actually feeds the plane).
  ChaosOutcome c;
  run_chaos_workload(43, &c);
  EXPECT_NE(a.fault_log, c.fault_log);
}

TEST(ChaosTest, PinnedSeeds) {
  // CI runs this with MASQ_CHAOS_SEEDS set; locally it covers the three
  // default seeds. On failure the fault replay log is printed and, when
  // MASQ_CHAOS_LOG is set, written there for artifact upload.
  std::string seeds = "17,42,1337";
  if (const char* env = std::getenv("MASQ_CHAOS_SEEDS")) seeds = env;
  const char* log_path = std::getenv("MASQ_CHAOS_LOG");
  std::size_t pos = 0;
  while (pos < seeds.size()) {
    std::size_t comma = seeds.find(',', pos);
    if (comma == std::string::npos) comma = seeds.size();
    const std::uint64_t seed =
        std::strtoull(seeds.substr(pos, comma - pos).c_str(), nullptr, 10);
    pos = comma + 1;
    ChaosOutcome out;
    run_chaos_workload(seed, &out);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "chaos seed %llu failed; fault replay log:\n%s\n",
                   static_cast<unsigned long long>(seed),
                   out.fault_log.c_str());
      if (log_path != nullptr) {
        if (std::FILE* f = std::fopen(log_path, "a")) {
          std::fprintf(f, "# seed %llu\n%s\n",
                       static_cast<unsigned long long>(seed),
                       out.fault_log.c_str());
          std::fclose(f);
        }
      }
      return;
    }
  }
}

}  // namespace
