// Property-based tests: exhaustive QP-FSM matrix, randomized
// reference-model checks for rule chains / allocators / sparse memory,
// fluid-model conservation under random event sequences, FIFO ordering
// properties, and whole-stack determinism.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "apps/common.h"
#include "apps/kvs.h"
#include "fabric/testbed.h"
#include "sdn/host_agent.h"
#include "mem/physical_memory.h"
#include "mem/region_allocator.h"
#include "net/fluid.h"
#include "overlay/security.h"
#include "rnic/qp_state.h"
#include "sim/rng.h"
#include "virtio/virtqueue.h"

using namespace sim::literals;

namespace {

// Sweep width for the seed-indexed suites below (ChaosSweep,
// ShardEquivalence). MASQ_CHAOS_SEEDS=<count> shrinks or grows the sweep
// (see tools/chaos.knobs); default 100 seeds. chaos_test's pinned-seed
// runner reads the same variable as a comma list — strtoul stops at the
// first comma, so a list like "17,42,1337" still yields a sane width here.
int chaos_sweep_seed_count() {
  if (const char* env = std::getenv("MASQ_CHAOS_SEEDS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0 && n <= 10'000) return static_cast<int>(n);
  }
  return 100;
}

// ------------------------------------------------- QP FSM, full 7x7 matrix

using rnic::QpState;

struct FsmCase {
  QpState from;
  QpState to;
};

class QpFsmMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(QpFsmMatrixTest, ModifyMatchesFig5) {
  const QpState states[] = {QpState::kReset, QpState::kInit, QpState::kRtr,
                            QpState::kRts,   QpState::kSqd,  QpState::kSqe,
                            QpState::kError};
  const int idx = GetParam();
  const QpState from = states[idx / 7];
  const QpState to = states[idx % 7];
  // Fig. 5's driver-initiated edges, spelled out.
  const std::set<std::pair<QpState, QpState>> allowed = {
      {QpState::kReset, QpState::kInit}, {QpState::kInit, QpState::kInit},
      {QpState::kInit, QpState::kRtr},   {QpState::kRtr, QpState::kRts},
      {QpState::kRts, QpState::kSqd},    {QpState::kSqd, QpState::kRts},
      {QpState::kSqe, QpState::kRts},
  };
  bool expect = allowed.count({from, to}) > 0;
  if (to == QpState::kError || to == QpState::kReset) expect = true;
  EXPECT_EQ(rnic::modify_allowed(from, to), expect)
      << rnic::to_string(from) << " -> " << rnic::to_string(to);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, QpFsmMatrixTest, ::testing::Range(0, 49));

TEST(QpFsmTest, TableTwoConsistency) {
  // In every state, Table 2's behaviour flags must be internally
  // consistent: a transmitting state accepts packets, ERROR does neither.
  for (QpState s : {QpState::kReset, QpState::kInit, QpState::kRtr,
                    QpState::kRts, QpState::kSqd, QpState::kSqe,
                    QpState::kError}) {
    if (rnic::can_transmit(s)) EXPECT_TRUE(rnic::can_accept_packets(s));
    if (s == QpState::kError) {
      EXPECT_FALSE(rnic::can_transmit(s));
      EXPECT_FALSE(rnic::can_accept_packets(s));
      EXPECT_TRUE(rnic::can_post_send(s));  // Table 2: posting allowed
      EXPECT_TRUE(rnic::can_post_recv(s));
    }
  }
}

// ------------------------------------ rule chain vs linear reference model

class RuleChainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleChainPropertyTest, FirstMatchEqualsReferenceScan) {
  sim::Rng rng(GetParam() * 77 + 5);
  overlay::RuleChain chain;
  struct Ref {
    int priority;
    std::uint64_t seq;
    overlay::Rule rule;
  };
  std::vector<Ref> reference;
  std::uint64_t seq = 0;
  const int n_rules = static_cast<int>(1 + rng.next_below(30));
  for (int i = 0; i < n_rules; ++i) {
    overlay::Rule r;
    r.priority = static_cast<int>(rng.next_below(6));
    r.action = rng.next_bool(0.5) ? overlay::RuleAction::kAllow
                                  : overlay::RuleAction::kDeny;
    r.proto = rng.next_bool(0.3) ? overlay::Proto::kRdma
                                 : overlay::Proto::kAny;
    r.src = net::Ipv4Cidr{net::Ipv4Addr{static_cast<std::uint32_t>(
                              0xC0A80000u + rng.next_below(4) * 256)},
                          static_cast<std::uint8_t>(22 + rng.next_below(10))};
    r.dst = net::Ipv4Cidr::any();
    chain.add_rule(r);
    reference.push_back({r.priority, seq++, r});
  }
  // Reference model: stable sort by priority desc, insertion order asc.
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ref& a, const Ref& b) {
                     return a.priority > b.priority;
                   });
  for (int t = 0; t < 200; ++t) {
    overlay::FlowTuple tuple{
        net::Ipv4Addr{static_cast<std::uint32_t>(0xC0A80000u +
                                                 rng.next_below(1024))},
        net::Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
        rng.next_bool(0.5) ? overlay::Proto::kRdma : overlay::Proto::kTcp};
    overlay::RuleAction expect = overlay::RuleAction::kDeny;
    for (const Ref& ref : reference) {
      if (ref.rule.matches(tuple)) {
        expect = ref.rule.action;
        break;
      }
    }
    EXPECT_EQ(chain.evaluate(tuple), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleChainPropertyTest,
                         ::testing::Range(1, 13));

// ------------------------------------------ region allocator vs reference

class AllocatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorPropertyTest, NoOverlapAndFullRecovery) {
  sim::Rng rng(GetParam() * 131 + 7);
  const mem::Addr base = 0x100000;
  const mem::Addr size = 256 * mem::kPageSize;
  mem::RegionAllocator ra(base, size);
  std::map<mem::Addr, mem::Addr> live;  // addr -> len
  for (int step = 0; step < 400; ++step) {
    if (rng.next_bool(0.6) || live.empty()) {
      const mem::Addr len =
          (1 + rng.next_below(8)) * mem::kPageSize;
      try {
        const mem::Addr a = ra.alloc(len);
        // In range and page aligned.
        ASSERT_GE(a, base);
        ASSERT_LE(a + len, base + size);
        ASSERT_EQ(a % mem::kPageSize, 0u);
        // No overlap with any live allocation.
        for (const auto& [la, ll] : live) {
          ASSERT_TRUE(a + len <= la || la + ll <= a)
              << "overlap at step " << step;
        }
        live[a] = len;
      } catch (const std::bad_alloc&) {
        // Exhaustion is legal; accounting must agree something is live.
        ASSERT_FALSE(live.empty());
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      ra.free(it->first, it->second);
      live.erase(it);
    }
  }
  for (const auto& [a, l] : live) ra.free(a, l);
  EXPECT_EQ(ra.bytes_allocated(), 0u);
  // Full region allocatable again -> coalescing worked.
  EXPECT_EQ(ra.alloc(size), base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------ sparse bytes vs reference

class SparseBytesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseBytesPropertyTest, MatchesDenseReference) {
  sim::Rng rng(GetParam() * 997);
  const std::size_t size = 1 << 20;
  mem::SparseBytes sparse(size);
  std::vector<std::uint8_t> dense(size, 0);
  for (int step = 0; step < 200; ++step) {
    const std::size_t off = rng.next_below(size - 1);
    const std::size_t len = 1 + rng.next_below(
        std::min<std::uint64_t>(size - off, 200 * 1024));
    if (rng.next_bool(0.5)) {
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
      sparse.write(off, data);
      std::copy(data.begin(), data.end(), dense.begin() + off);
    } else {
      std::vector<std::uint8_t> got(len);
      sparse.read(off, got);
      ASSERT_EQ(0, std::memcmp(got.data(), dense.data() + off, len))
          << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBytesPropertyTest,
                         ::testing::Range(1, 7));

// --------------------------------------------- fluid model conservation

class FluidConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidConservationTest, FiniteFlowsDeliverExactlyTheirBytes) {
  sim::Rng rng(GetParam() * 31 + 3);
  sim::EventLoop loop;
  net::FluidNet fnet(loop);
  std::vector<net::LinkId> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(
        fnet.add_link(5.0 + rng.next_below(36), 100_ns));
  }
  int completions = 0;
  int flows = 0;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 24; ++i) {
    std::vector<net::LinkId> path{links[rng.next_below(links.size())]};
    if (rng.next_bool(0.4)) {
      auto extra = links[rng.next_below(links.size())];
      if (extra != path[0]) path.push_back(extra);
    }
    const std::uint64_t bytes = 1000 + rng.next_below(2'000'000);
    const double cap = rng.next_bool(0.3)
                           ? 1.0 + static_cast<double>(rng.next_below(20))
                           : net::kUncapped;
    // Stagger arrivals.
    loop.schedule_after(static_cast<sim::Time>(rng.next_below(500'000)),
                        [&fnet, path, bytes, cap, &completions] {
                          fnet.start_flow(path, bytes, cap,
                                          [&completions] { ++completions; });
                        });
    ++flows;
    total_bytes += bytes;
  }
  loop.run();
  EXPECT_EQ(completions, flows);  // every finite flow completes exactly once
  EXPECT_EQ(fnet.active_flows(), 0u);
  (void)total_bytes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidConservationTest,
                         ::testing::Range(1, 9));

// -------------------------------------------------- virtqueue FIFO order

TEST(VirtioPropertyTest, ResponsesPreserveSubmissionOrderPerCaller) {
  sim::EventLoop loop;
  virtio::Virtqueue<int, int> vq(loop, {}, 4);
  std::vector<int> completion_order;
  vq.set_backend([&loop](int x) -> sim::Task<int> {
    co_await sim::delay(loop, 5_us);
    co_return x;
  });
  auto caller = [](virtio::Virtqueue<int, int>& q, int id,
                   std::vector<int>* order) -> sim::Task<void> {
    const int r = co_await q.call(id);
    order->push_back(r);
  };
  for (int i = 0; i < 12; ++i) loop.spawn(caller(vq, i, &completion_order));
  loop.run();
  ASSERT_EQ(completion_order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(completion_order[i], i);
}

// ------------------------------------------- chaos invariants, 100 seeds

// Randomized resilience sweep: every seed draws a different fault
// schedule (descriptor drop/dup/delay, transient command failures, cache
// expiry, a controller outage window, one injected QP error), and every
// run must uphold the same invariants:
//   * a QP in ERROR has no RConntrack entry (Table 2: it carries no
//     connection any more),
//   * degraded mode never serves a mapping staler than the bound,
//   * every verb reaches a terminal status — the workload coroutine runs
//     to completion instead of hanging on a lost descriptor.
class ChaosSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSweepTest, ErrorQpsUntrackedAndStalenessBounded) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.faults.vq_drop_p = 0.04;
  cfg.faults.vq_dup_p = 0.04;
  cfg.faults.vq_delay_p = 0.10;
  cfg.faults.cmd_fail_p = 0.04;
  cfg.faults.cache_expire_p = 0.02;
  cfg.faults.sdn_outages.push_back(
      {sim::milliseconds(1 + seed % 5), sim::milliseconds(4 + seed % 7)});
  cfg.fault_seed = seed;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, std::uint64_t seed,
                              std::vector<rnic::Qpn>* qps, bool* finished) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed,
                                   std::vector<rnic::Qpn>* qps) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          qps->push_back(ep.qp);
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 9400);
        }
      };
      bed->loop().spawn(Srv::srv(bed, qps));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      qps->push_back(ep.qp);
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 9400);
      if (st == rnic::Status::kOk) {
        (void)co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0, 128);
      }
      // Force the client QP into ERROR at a seed-derived instant —
      // sometimes mid-traffic, sometimes idle.
      const rnic::Qpn victim = ep.qp;
      bed->faults()->inject_qp_error_at(
          bed->loop().now() + sim::microseconds(seed % 300), victim,
          [bed, victim] {
            rnic::QpAttr attr;
            attr.state = rnic::QpState::kError;
            (void)bed->device(0).modify_qp(victim, attr, rnic::kAttrState);
          });
      co_await sim::delay(bed->loop(), sim::milliseconds(1));
      *finished = true;
    }
  };
  std::vector<rnic::Qpn> qps;
  bool finished = false;
  loop.spawn(Run::go(&bed, seed, &qps, &finished));
  loop.run();
  ASSERT_TRUE(finished) << "seed " << seed << " hung";
  for (std::size_t h = 0; h < bed.num_hosts(); ++h) {
    // No RConntrack entry references a dead QP.
    for (rnic::Qpn qp : qps) {
      if (bed.device(h).qp_exists(qp) &&
          bed.device(h).qp_state(qp) == rnic::QpState::kError) {
        EXPECT_FALSE(bed.masq_backend(h).conntrack().has_qp(qp))
            << "seed " << seed << " qp " << qp;
      }
    }
    // Degraded serves stayed within the staleness bound.
    const auto& cache = bed.masq_backend(h).mapping_cache();
    EXPECT_LE(cache.max_served_staleness(), cache.staleness_bound())
        << "seed " << seed << " host " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepTest,
                         ::testing::Range(1, chaos_sweep_seed_count() + 1));

// --------------------------- sharded controller vs single-shard reference

// Equivalence sweep: the same pre-generated schedule of directory
// mutations (register / re-register / unregister) and resolve bursts is
// driven against two worlds —
//   A: 4 shards, a 1 us per-key service budget, and HostAgents batching
//      leader misses in a 3 us window (the full DESIGN.md §12 tier), and
//   B: the flat single-shard controller with pass-through agents (the
//      pre-sharding reference).
// Sharding and batching may only change *when* things happen, never what
// they resolve to: both worlds must produce identical resolution logs
// (status + pGID per burst slot), identical push/invalidate broadcast
// sequences, and identical final cache contents.
class ShardEquivalenceTest : public ::testing::TestWithParam<int> {};

namespace shardeq {

constexpr std::size_t kKeys = 24;
constexpr std::size_t kAgents = 2;  // two hosts' worth of caches

net::Gid vgid_of(std::size_t key) {
  return net::Gid::from_ipv4(
      net::Ipv4Addr{static_cast<std::uint32_t>(0x0A640000u + key)});
}
std::uint32_t vni_of(std::size_t key) { return 100 + key % 3; }
net::Gid pgid_of(std::size_t key, std::uint32_t gen) {
  return net::Gid::from_ipv4(net::Ipv4Addr{
      static_cast<std::uint32_t>(0x0AC80000u + key + (gen << 12))});
}

struct Op {
  enum Kind : std::uint8_t { kRegister, kUnregister, kBurst } kind;
  std::size_t key = 0;        // kRegister / kUnregister
  std::uint32_t gen = 0;      // kRegister: pGID generation (IP churn)
  // kBurst: (agent, key) resolve slots, all spawned at once, drained
  // before the next op.
  std::vector<std::pair<std::size_t, std::size_t>> resolves;
};

// The schedule is pure data derived from the seed — both worlds consume
// the identical vector, so any divergence is the controller's fault.
std::vector<Op> make_schedule(std::uint64_t seed) {
  sim::Rng rng(seed * 9176 + 11);
  std::vector<Op> ops;
  std::vector<std::uint32_t> gen(kKeys, 0);
  std::vector<bool> live(kKeys, false);
  // Seed the directory so the first burst has something to find.
  for (std::size_t k = 0; k < kKeys; k += 2) {
    ops.push_back({Op::kRegister, k, 0, {}});
    live[k] = true;
  }
  const int steps = 10 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < steps; ++i) {
    const double roll = rng.next_double();
    if (roll < 0.25) {
      const std::size_t k = rng.next_below(kKeys);
      ops.push_back({Op::kRegister, k, live[k] ? ++gen[k] : gen[k], {}});
      live[k] = true;
    } else if (roll < 0.40) {
      const std::size_t k = rng.next_below(kKeys);
      if (live[k]) {
        ops.push_back({Op::kUnregister, k, 0, {}});
        live[k] = false;
      }
    } else {
      Op burst{Op::kBurst, 0, 0, {}};
      const std::size_t n = 4 + rng.next_below(10);
      for (std::size_t j = 0; j < n; ++j) {
        burst.resolves.emplace_back(rng.next_below(kAgents),
                                    rng.next_below(kKeys));
      }
      ops.push_back(std::move(burst));
    }
  }
  return ops;
}

struct World {
  World(std::size_t shards, sim::Time service, sim::Time window)
      : controller(loop, sdn::ControllerConfig{sim::microseconds(100),
                                               shards, service}) {
    sdn::HostAgentConfig ac;
    ac.batch_window = window;
    for (std::size_t a = 0; a < kAgents; ++a) {
      agents.push_back(
          std::make_unique<sdn::HostAgent>(loop, controller, ac));
    }
    push_sub = controller.subscribe(
        [this](std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
          broadcasts.push_back({0, vni, vgid, pgid});
        });
    inval_sub = controller.subscribe_invalidate(
        [this](std::uint32_t vni, net::Gid vgid) {
          broadcasts.push_back({1, vni, vgid, net::Gid{}});
        });
  }
  ~World() {
    controller.unsubscribe(push_sub);
    controller.unsubscribe_invalidate(inval_sub);
  }

  struct Broadcast {
    int kind;  // 0 = push, 1 = invalidate
    std::uint32_t vni;
    net::Gid vgid;
    net::Gid pgid;
    bool operator==(const Broadcast&) const = default;
  };
  struct Outcome {
    std::uint8_t status = 255;
    net::Gid pgid;
    bool operator==(const Outcome&) const = default;
  };

  static sim::Task<void> resolve_slot(sdn::HostAgent* agent,
                                      std::uint32_t vni, net::Gid vgid,
                                      Outcome* out) {
    const auto r = co_await agent->resolve_ex(vni, vgid);
    out->status = static_cast<std::uint8_t>(r.status);
    if (r.pgid) out->pgid = *r.pgid;
  }

  // Runs the whole schedule; bursts drain fully (loop.run()) before the
  // next mutation, so both worlds apply mutations to quiesced caches.
  void run(const std::vector<Op>& ops) {
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kRegister:
          controller.register_vgid(vni_of(op.key), vgid_of(op.key),
                                   pgid_of(op.key, op.gen));
          break;
        case Op::kUnregister:
          controller.unregister_vgid(vni_of(op.key), vgid_of(op.key));
          break;
        case Op::kBurst: {
          const std::size_t base = results.size();
          results.resize(base + op.resolves.size());
          for (std::size_t j = 0; j < op.resolves.size(); ++j) {
            const auto [agent, key] = op.resolves[j];
            loop.spawn(resolve_slot(agents[agent].get(), vni_of(key),
                                    vgid_of(key), &results[base + j]));
          }
          loop.run();
          break;
        }
      }
    }
  }

  sim::EventLoop loop;
  sdn::Controller controller;
  std::vector<std::unique_ptr<sdn::HostAgent>> agents;
  std::vector<Broadcast> broadcasts;
  std::vector<Outcome> results;
  sdn::Controller::SubId push_sub = 0;
  sdn::Controller::SubId inval_sub = 0;
};

}  // namespace shardeq

TEST_P(ShardEquivalenceTest, ShardedMatchesSingleShardReference) {
  const auto ops =
      shardeq::make_schedule(static_cast<std::uint64_t>(GetParam()));
  shardeq::World sharded(4, sim::microseconds(1), sim::microseconds(3));
  shardeq::World reference(1, sim::Time{0}, sim::Time{0});
  sharded.run(ops);
  reference.run(ops);

  // Same resolution, slot for slot: sharding/batching shifted timing only.
  ASSERT_EQ(sharded.results.size(), reference.results.size());
  for (std::size_t i = 0; i < sharded.results.size(); ++i) {
    EXPECT_EQ(sharded.results[i], reference.results[i]) << "slot " << i;
  }
  // Identical broadcast sequences on both channels, in order.
  EXPECT_EQ(sharded.broadcasts.size(), reference.broadcasts.size());
  EXPECT_TRUE(sharded.broadcasts == reference.broadcasts);
  // Final per-host cache contents agree (timestamps aside).
  for (std::size_t a = 0; a < shardeq::kAgents; ++a) {
    std::vector<std::pair<sdn::VirtKey, net::Gid>> sh, ref;
    sharded.agents[a]->cache().for_each_entry(
        [&sh](const sdn::VirtKey& k, net::Gid p, sim::Time) {
          sh.emplace_back(k, p);
        });
    reference.agents[a]->cache().for_each_entry(
        [&ref](const sdn::VirtKey& k, net::Gid p, sim::Time) {
          ref.emplace_back(k, p);
        });
    EXPECT_TRUE(sh == ref) << "agent " << a << " cache diverged";
  }
  // The sharded world actually exercised the tier under test.
  EXPECT_EQ(sharded.controller.num_shards(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalenceTest,
                         ::testing::Range(1, chaos_sweep_seed_count() + 1));

// ------------------------------------------------------- determinism

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  auto run_once = [](std::uint64_t* events) {
    sim::EventLoop loop;
    fabric::TestbedConfig cfg;
    cfg.candidate = fabric::Candidate::kMasq;
    cfg.cal.host_dram_bytes = 16ull << 30;
    cfg.cal.vm_mem_bytes = 4ull << 30;
    fabric::Testbed bed(loop, cfg);
    bed.add_instances(2);
    apps::kvs::Config kc;
    kc.num_clients = 4;
    kc.warmup = sim::milliseconds(1);
    kc.measure = sim::milliseconds(2);
    kc.num_keys = 5'000;
    const auto r = apps::kvs::run(bed, kc);
    *events = loop.events_executed();
    return r;
  };
  std::uint64_t e1 = 0, e2 = 0;
  const auto r1 = run_once(&e1);
  const auto r2 = run_once(&e2);
  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_EQ(r1.gets, r2.gets);
  EXPECT_EQ(r1.puts, r2.puts);
  EXPECT_EQ(e1, e2);  // bit-for-bit reproducible schedules
}

}  // namespace
