// Unit tests for the memory substrate: physical map, region allocator,
// stacked address spaces (the Appendix-B GVA->GPA->HVA->HPA chain), pinning
// and MMIO routing.
#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <stdexcept>

#include "mem/address_space.h"
#include "mem/physical_memory.h"
#include "mem/region_allocator.h"

namespace {

using mem::Addr;
using mem::kPageSize;

TEST(HostPhysMapTest, AllocFreeRoundTrip) {
  mem::HostPhysMap pm(64 * kPageSize);
  const Addr a = pm.alloc_pages(4);
  const Addr b = pm.alloc_pages(4);
  EXPECT_NE(a, b);
  EXPECT_EQ(pm.allocated_pages(), 8u);
  pm.free_pages(a, 4);
  pm.free_pages(b, 4);
  EXPECT_EQ(pm.allocated_pages(), 0u);
  // After coalescing the full region is allocatable again.
  const Addr c = pm.alloc_pages(64);
  EXPECT_EQ(c, 0u);
}

TEST(HostPhysMapTest, ExhaustionThrowsBadAlloc) {
  mem::HostPhysMap pm(8 * kPageSize);
  (void)pm.alloc_pages(8);
  EXPECT_THROW(pm.alloc_pages(1), std::bad_alloc);
}

TEST(HostPhysMapTest, DoubleFreeDetected) {
  mem::HostPhysMap pm(8 * kPageSize);
  const Addr a = pm.alloc_pages(2);
  pm.free_pages(a, 2);
  EXPECT_THROW(pm.free_pages(a, 2), std::logic_error);
}

TEST(HostPhysMapTest, DramReadWrite) {
  mem::HostPhysMap pm(16 * kPageSize);
  const Addr a = pm.alloc_pages(2);
  std::uint8_t in[6000];
  for (size_t i = 0; i < sizeof(in); ++i) in[i] = static_cast<std::uint8_t>(i);
  pm.write(a + 100, in);  // crosses a page boundary
  std::uint8_t out[6000] = {};
  pm.read(a + 100, out);
  EXPECT_EQ(0, std::memcmp(in, out, sizeof(in)));
}

TEST(HostPhysMapTest, OutOfRangeAccessThrows) {
  mem::HostPhysMap pm(4 * kPageSize);
  std::uint8_t buf[16];
  EXPECT_THROW(pm.read(4 * kPageSize - 8, buf), std::out_of_range);
}

class RecordingMmio : public mem::MmioDevice {
 public:
  void mmio_write(Addr offset, std::uint64_t value) override {
    last_offset = offset;
    last_value = value;
    ++writes;
  }
  std::uint64_t mmio_read(Addr offset) override {
    last_offset = offset;
    return 0xabcd;
  }
  Addr last_offset = 0;
  std::uint64_t last_value = 0;
  int writes = 0;
};

TEST(HostPhysMapTest, MmioRoutesToDevice) {
  mem::HostPhysMap pm(4 * kPageSize);
  RecordingMmio dev;
  const Addr bar = pm.register_mmio(kPageSize, &dev);
  EXPECT_TRUE(pm.is_mmio(bar));
  EXPECT_FALSE(pm.is_mmio(0));
  pm.write_u64(bar + 16, 0x1234);
  EXPECT_EQ(dev.writes, 1);
  EXPECT_EQ(dev.last_offset, 16u);
  EXPECT_EQ(dev.last_value, 0x1234u);
  EXPECT_EQ(pm.read_u64(bar + 8), 0xabcdu);
}

TEST(HostPhysMapTest, MisalignedMmioThrows) {
  mem::HostPhysMap pm(4 * kPageSize);
  RecordingMmio dev;
  const Addr bar = pm.register_mmio(kPageSize, &dev);
  std::uint8_t buf[4] = {};
  EXPECT_THROW(pm.write(bar + 4, buf), std::invalid_argument);
}

TEST(RegionAllocatorTest, FirstFitAndCoalesce) {
  mem::RegionAllocator ra(0x10000, 16 * kPageSize);
  const Addr a = ra.alloc(3 * kPageSize);
  const Addr b = ra.alloc(5 * kPageSize);
  EXPECT_EQ(a, 0x10000u);
  EXPECT_EQ(b, a + 3 * kPageSize);
  ra.free(a, 3 * kPageSize);
  ra.free(b, 5 * kPageSize);
  EXPECT_EQ(ra.bytes_allocated(), 0u);
  EXPECT_EQ(ra.alloc(16 * kPageSize), 0x10000u);
}

TEST(RegionAllocatorTest, RoundsUpToPages) {
  mem::RegionAllocator ra(0, 4 * kPageSize);
  const Addr a = ra.alloc(1);
  (void)a;
  EXPECT_EQ(ra.bytes_allocated(), kPageSize);
}

TEST(RegionAllocatorTest, ExhaustionThrows) {
  mem::RegionAllocator ra(0, 2 * kPageSize);
  (void)ra.alloc(2 * kPageSize);
  EXPECT_THROW(ra.alloc(kPageSize), std::bad_alloc);
}

TEST(RegionAllocatorTest, FreeOutsideRegionThrows) {
  mem::RegionAllocator ra(0x1000 * kPageSize, 2 * kPageSize);
  EXPECT_THROW(ra.free(0, kPageSize), std::out_of_range);
}

// Builds the full four-level chain of Appendix B and checks translation,
// data access and pinning across it.
class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : pm_(256 * kPageSize),
        hva_("qemu-hva", &pm_),
        gpa_("vm-ram", &hva_),
        gva_("guest-app", &gpa_) {
    // QEMU maps 16 pages of VM RAM: HVA 0xA0000.. -> freshly allocated HPA.
    const Addr hpa = pm_.alloc_pages(16);
    hva_.map(hva_base_, hpa, 16 * kPageSize);
    // The VM sees its RAM at GPA 0 (GPA -> HVA).
    gpa_.map(0, hva_base_, 16 * kPageSize);
    // Guest app maps 4 pages at GVA 0x7f0000000000 -> GPA page 3.
    gva_.map(gva_base_, 3 * kPageSize, 4 * kPageSize);
  }

  mem::HostPhysMap pm_;
  mem::AddressSpace hva_, gpa_, gva_;
  static constexpr Addr hva_base_ = 0xA0000000;
  static constexpr Addr gva_base_ = 0x7f0000000000;
};

TEST_F(ChainTest, ResolveHpaWalksAllLevels) {
  const Addr hpa = gva_.resolve_hpa(gva_base_ + 123);
  // GVA page 0 -> GPA page 3 -> HVA base + 3 pages -> HPA base + 3 pages.
  const Addr expect = hva_.translate_or_throw(hva_base_) + 3 * kPageSize + 123;
  EXPECT_EQ(hpa, expect);
}

TEST_F(ChainTest, ReadWriteThroughChain) {
  const char msg[] = "rdma payload crossing pages";
  std::uint8_t buf[sizeof(msg)];
  std::memcpy(buf, msg, sizeof(msg));
  gva_.write(gva_base_ + kPageSize - 7, buf);  // crosses page boundary
  std::uint8_t out[sizeof(msg)] = {};
  gva_.read(gva_base_ + kPageSize - 7, out);
  EXPECT_EQ(0, std::memcmp(buf, out, sizeof(msg)));
  // The same bytes are visible through the host view at the resolved HPA.
  const Addr hpa = gva_.resolve_hpa(gva_base_ + kPageSize - 7);
  std::uint8_t host_first = 0;
  pm_.read(hpa, {&host_first, 1});
  EXPECT_EQ(host_first, static_cast<std::uint8_t>('r'));
}

TEST_F(ChainTest, UnmappedAccessThrows) {
  EXPECT_THROW(gva_.resolve_hpa(0xdead0000), std::out_of_range);
  std::uint8_t b[1];
  EXPECT_THROW(gva_.read(gva_base_ + 4 * kPageSize, b), std::out_of_range);
}

TEST_F(ChainTest, PinBlocksUnmap) {
  gva_.pin(gva_base_, kPageSize);
  EXPECT_THROW(gva_.unmap(gva_base_, kPageSize), std::logic_error);
  gva_.unpin(gva_base_, kPageSize);
  // Unmapping one page of the 4-page mapping is now allowed.
  gva_.unmap(gva_base_, kPageSize);
  EXPECT_FALSE(gva_.is_mapped(gva_base_));
}

TEST_F(ChainTest, PinChainPinsEveryLevel) {
  gva_.pin_chain(gva_base_, 2 * kPageSize);
  EXPECT_TRUE(gva_.is_pinned(gva_base_));
  EXPECT_TRUE(gpa_.is_pinned(3 * kPageSize));
  EXPECT_TRUE(hva_.is_pinned(hva_base_ + 3 * kPageSize));
  EXPECT_THROW(hva_.unmap(hva_base_, 16 * kPageSize), std::logic_error);
  gva_.unpin_chain(gva_base_, 2 * kPageSize);
  EXPECT_FALSE(gpa_.is_pinned(3 * kPageSize));
}

TEST_F(ChainTest, TranslateRangeMergesContiguousPages) {
  auto segs = gva_.translate_range(gva_base_ + 100, 3 * kPageSize);
  // GVA pages 0..3 map to contiguous GPA pages 3..6, so one segment.
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].addr, 3 * kPageSize + 100);
  EXPECT_EQ(segs[0].len, 3 * kPageSize);
}

TEST_F(ChainTest, TranslateRangeSplitsNonContiguous) {
  // Map two non-adjacent GPA pages at consecutive GVAs.
  const Addr va = 0x500000000000;
  gva_.map(va, 9 * kPageSize, kPageSize);
  gva_.map(va + kPageSize, 12 * kPageSize, kPageSize);
  auto segs = gva_.translate_range(va, 2 * kPageSize);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].addr, 9 * kPageSize);
  EXPECT_EQ(segs[1].addr, 12 * kPageSize);
}

TEST_F(ChainTest, DoubleMapThrows) {
  EXPECT_THROW(gva_.map(gva_base_, 0, kPageSize), std::logic_error);
}

TEST_F(ChainTest, MmioVisibleThroughChain) {
  // Map an RNIC doorbell BAR into the guest (Appendix B.1 flow).
  RecordingMmio dev;
  const Addr bar = pm_.register_mmio(kPageSize, &dev);
  const Addr db_hva = 0xB0000000;
  hva_.map(db_hva, bar, kPageSize);
  gpa_.map(64 * kPageSize, db_hva, kPageSize);
  const Addr db_gva = 0x7f1000000000;
  gva_.map(db_gva, 64 * kPageSize, kPageSize);
  gva_.write_u64(db_gva + 8, 0x77);
  EXPECT_EQ(dev.writes, 1);
  EXPECT_EQ(dev.last_offset, 8u);
  EXPECT_EQ(dev.last_value, 0x77u);
}

}  // namespace
