// Unit tests for the MasQ core module: vBond lifecycle, RConntrack rule
// management and diagnostics, backend QoS grouping, mapping-cache
// push-down coherence, and live migration.
#include <gtest/gtest.h>

#include <memory>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "masq/frontend.h"
#include "masq/vbond.h"
#include "sdn/controller.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

// ----------------------------------------------------------------- vBond

class VbondTest : public ::testing::Test {
 protected:
  sim::EventLoop loop_;
  sdn::Controller ctl_{loop_};
  net::Gid pgid_ = net::Gid::from_ipv4(ip("10.0.0.1"));
};

TEST_F(VbondTest, BindDerivesGidFromVethIp) {
  masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
  EXPECT_FALSE(vb.bound());
  vb.bind(ip("192.168.5.5"));
  EXPECT_TRUE(vb.bound());
  EXPECT_EQ(vb.vgid(), net::Gid::from_ipv4(ip("192.168.5.5")));
  EXPECT_EQ(ctl_.lookup(7, vb.vgid()), pgid_);
}

TEST_F(VbondTest, InetaddrEventMovesRegistration) {
  masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
  vb.bind(ip("192.168.5.5"));
  vb.on_inetaddr_event(ip("192.168.5.99"));
  EXPECT_FALSE(
      ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.5"))).has_value());
  EXPECT_EQ(ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.99"))), pgid_);
}

TEST_F(VbondTest, DestructorUnregisters) {
  {
    masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
    vb.bind(ip("192.168.5.5"));
    EXPECT_EQ(ctl_.table_size(), 1u);
  }
  EXPECT_EQ(ctl_.table_size(), 0u);
}

TEST_F(VbondTest, ReleaseHandsOverOwnership) {
  masq::VBond successor(ctl_, 7, net::MacAddr::from_u64(0x1),
                        net::Gid::from_ipv4(ip("10.0.0.2")));
  {
    masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
    vb.bind(ip("192.168.5.5"));
    successor.bind(ip("192.168.5.5"));  // migration target re-registers
    vb.release();
  }  // destructor must NOT clobber the successor's mapping
  EXPECT_EQ(ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.5"))),
            net::Gid::from_ipv4(ip("10.0.0.2")));
}

// -------------------------------------------------------- backend / fabric

class MasqBackendTest : public ::testing::Test {
 protected:
  MasqBackendTest() {
    fabric::TestbedConfig cfg;
    cfg.candidate = fabric::Candidate::kMasq;
    cfg.cal.host_dram_bytes = 16ull << 30;
    cfg.cal.vm_mem_bytes = 512ull << 20;
    bed_ = std::make_unique<fabric::Testbed>(loop_, cfg);
  }

  sim::EventLoop loop_;
  std::unique_ptr<fabric::Testbed> bed_;
};

TEST_F(MasqBackendTest, TenantsGetDistinctVfsUntilWraparound) {
  auto& backend = bed_->masq_backend(0);
  std::set<rnic::FnId> fns;
  for (std::uint32_t vni = 1; vni <= 8; ++vni) {
    fns.insert(backend.tenant_fn(vni));
  }
  EXPECT_EQ(fns.size(), 8u);  // 8 VFs, 8 tenants, all distinct
  // The 9th tenant shares a limiter (round-robin wraparound).
  const rnic::FnId ninth = backend.tenant_fn(9);
  EXPECT_TRUE(fns.count(ninth) == 1);
  // Mapping is sticky.
  EXPECT_EQ(backend.tenant_fn(3), backend.tenant_fn(3));
}

TEST_F(MasqBackendTest, PfModeRejectsQos) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.masq_use_pf = true;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  EXPECT_EQ(bed.masq_backend(0).tenant_fn(100), rnic::kPf);
  EXPECT_THROW(bed.masq_backend(0).set_tenant_rate_limit(100, 10.0),
               std::logic_error);
}

TEST_F(MasqBackendTest, ControllerPushDownKeepsCachesCoherent) {
  bed_->add_instances(2);
  auto& cache = bed_->masq_backend(0).mapping_cache();
  // Instance 1's vGID was pushed at registration time: first resolve hits.
  struct Probe {
    static sim::Task<void> run(fabric::Testbed* bed, bool* hit) {
      auto& cache = bed->masq_backend(0).mapping_cache();
      const auto before = cache.misses();
      auto r = co_await cache.resolve(
          100, net::Gid::from_ipv4(bed->instance_vip(1)));
      *hit = r.has_value() && cache.misses() == before;
    }
  };
  bool hit = false;
  loop_.spawn(Probe::run(bed_.get(), &hit));
  loop_.run();
  EXPECT_TRUE(hit);
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(MasqBackendTest, DiagnosticsMapQpnToTenantFlow) {
  bed_->add_instances(2);
  apps::Endpoint client;
  struct Conn {
    static sim::Task<void> run(fabric::Testbed* bed, apps::Endpoint* out) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7700);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      *out = co_await apps::setup_endpoint(bed->ctx(0));
      (void)co_await apps::connect_client(bed->ctx(0), *out,
                                          bed->instance_vip(1), 7700);
    }
  };
  loop_.spawn(Conn::run(bed_.get(), &client));
  loop_.run();
  // §5: underlay telemetry sees only (physical IP, QPN); RConntrack's
  // table recovers the tenant flow.
  const auto* entry =
      bed_->masq_backend(0).conntrack().lookup(client.qp, 100);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->src_vip, bed_->instance_vip(0));
  EXPECT_EQ(entry->dst_vip, bed_->instance_vip(1));
  EXPECT_EQ(entry->vni, 100u);
}

TEST_F(MasqBackendTest, UnregisterVgidInvalidatesHostCaches) {
  bed_->add_instances(2);
  const auto vgid1 = net::Gid::from_ipv4(bed_->instance_vip(1));
  struct Probe {
    static sim::Task<void> run(fabric::Testbed* bed, net::Gid g,
                               std::optional<net::Gid>* out) {
      *out = co_await bed->masq_backend(0).mapping_cache().resolve(100, g);
    }
  };
  // Warm: registration push-down already populated host 0's cache.
  std::optional<net::Gid> before;
  loop_.spawn(Probe::run(bed_.get(), vgid1, &before));
  loop_.run();
  ASSERT_TRUE(before.has_value());
  const auto queries = bed_->controller().queries_served();

  // vBond tears the vGID down (VM shutdown). Regression: without the
  // invalidation broadcast the host cache kept serving the stale pGID
  // forever — hits always stayed hits, even for dead peers.
  bed_->controller().unregister_vgid(100, vgid1);
  std::optional<net::Gid> after;
  loop_.spawn(Probe::run(bed_.get(), vgid1, &after));
  loop_.run();
  EXPECT_FALSE(after.has_value());
  // The resolve was a genuine miss that re-asked the controller, not a
  // stale local answer.
  EXPECT_EQ(bed_->controller().queries_served(), queries + 1);
}

// ------------------------------------------------------- batched control path

TEST_F(MasqBackendTest, BatchFailureDoesNotPoisonBatchmates) {
  bed_->add_instances(1);
  struct Flow {
    static sim::Task<void> run(fabric::Testbed* bed) {
      verbs::Context& ctx = bed->ctx(0);
      auto batch = ctx.make_batch();
      const int good_cq = batch->create_cq(64);
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      // No such QP: this entry must fail alone.
      const int bad = batch->modify_qp(999999, attr, rnic::kAttrState);
      const int good_cq2 = batch->create_cq(64);
      // An entry whose dependency failed inherits the dependency's status
      // without executing, so callers can tell retryable failures apart
      // from permanent ones.
      rnic::QpInitAttr init;
      init.caps.max_send_wr = 16;
      init.caps.max_recv_wr = 16;
      const int orphan = batch->create_qp(init, /*send_cq_slot=*/bad,
                                          /*recv_cq_slot=*/bad);
      const rnic::Status st = co_await batch->commit();
      EXPECT_NE(st, rnic::Status::kOk);  // first per-entry error surfaces
      EXPECT_EQ(batch->status(good_cq), rnic::Status::kOk);
      EXPECT_NE(batch->status(bad), rnic::Status::kOk);
      EXPECT_EQ(batch->status(good_cq2), rnic::Status::kOk);
      EXPECT_EQ(batch->status(orphan), batch->status(bad));
    }
  };
  loop_.spawn(Flow::run(bed_.get()));
  loop_.run();
}

TEST_F(MasqBackendTest, BatchAmortizesKicksAndInterrupts) {
  bed_->add_instances(1);
  auto* mc = dynamic_cast<masq::MasqContext*>(&bed_->ctx(0));
  ASSERT_NE(mc, nullptr);
  // Sequential: the four setup verbs pay four virtqueue round trips.
  struct Seq {
    static sim::Task<void> run(verbs::Context* ctx) {
      auto pd = co_await ctx->alloc_pd();
      const mem::Addr buf = ctx->alloc_buffer(4096);
      (void)co_await ctx->reg_mr(pd.value, buf, 4096, apps::kFullAccess);
      auto scq = co_await ctx->create_cq(16);
      auto rcq = co_await ctx->create_cq(16);
      rnic::QpInitAttr init;
      init.pd = pd.value;
      init.send_cq = scq.value;
      init.recv_cq = rcq.value;
      init.caps.max_send_wr = 16;
      init.caps.max_recv_wr = 16;
      (void)co_await ctx->create_qp(init);
    }
  };
  loop_.spawn(Seq::run(&bed_->ctx(0)));
  loop_.run();
  const auto seq_cost = mc->virtqueue().kicks() + mc->virtqueue().interrupts();
  EXPECT_EQ(seq_cost, 8u);  // 4 verbs x (kick + interrupt)

  // Batched: the same four verbs in one CmdBatch = one kick, one interrupt.
  struct Batched {
    static sim::Task<void> run(verbs::Context* ctx) {
      auto pd = co_await ctx->alloc_pd();
      const mem::Addr buf = ctx->alloc_buffer(4096);
      auto b = ctx->make_batch();
      (void)b->reg_mr(pd.value, buf, 4096, apps::kFullAccess);
      const int s = b->create_cq(16);
      const int r = b->create_cq(16);
      rnic::QpInitAttr init;
      init.pd = pd.value;
      init.caps.max_send_wr = 16;
      init.caps.max_recv_wr = 16;
      (void)b->create_qp(init, s, r);
      EXPECT_EQ(co_await b->commit(), rnic::Status::kOk);
    }
  };
  loop_.spawn(Batched::run(&bed_->ctx(0)));
  loop_.run();
  const auto batch_cost =
      mc->virtqueue().kicks() + mc->virtqueue().interrupts() - seq_cost;
  EXPECT_EQ(batch_cost, 2u);  // one kick + one interrupt for the whole batch
  EXPECT_LT(batch_cost, seq_cost);
}

TEST_F(MasqBackendTest, SequentialAndBatchedSubmissionAgree) {
  // The same connection-establishment command stream submitted verb-by-verb
  // and as pipelined batches must leave identical tenant-visible state:
  // same QPNs, same tenant QPC view (virtual GID, not the renamed physical
  // one), same RConntrack entry.
  struct Result {
    rnic::Qpn qpn = 0;
    rnic::QpAttr view;
    bool tracked = false;
    net::Ipv4Addr src_vip, dst_vip;
  };
  struct Flow {
    static sim::Task<void> client(fabric::Testbed* bed, bool batched,
                                  Result* out) {
      verbs::Context& ctx = bed->ctx(0);
      apps::Endpoint ep;
      if (batched) {
        ep = co_await apps::setup_endpoint(ctx);
      } else {
        ep.buf_len = 64 * 1024;
        auto pd = co_await ctx.alloc_pd();
        ep.pd = pd.value;
        ep.buf = ctx.alloc_buffer(ep.buf_len);
        auto mr = co_await ctx.reg_mr(ep.pd, ep.buf, ep.buf_len,
                                      apps::kFullAccess);
        ep.mr = mr.value;
        auto scq = co_await ctx.create_cq(1024);
        auto rcq = co_await ctx.create_cq(1024);
        ep.scq = scq.value;
        ep.rcq = rcq.value;
        rnic::QpInitAttr init;
        init.pd = ep.pd;
        init.send_cq = ep.scq;
        init.recv_cq = ep.rcq;
        init.caps.max_send_wr = 512;
        init.caps.max_recv_wr = 512;
        auto qp = co_await ctx.create_qp(init);
        ep.qp = qp.value;
        auto gid = co_await ctx.query_gid();
        ep.local_gid = gid.value;
      }
      // OOB exchange with the server (identical in both modes).
      verbs::ConnInfo info{ep.qp, ep.local_gid, ep.mr.addr, ep.mr.rkey};
      (void)co_await ctx.oob().send(bed->instance_vip(1), 7600,
                                    overlay::pack(info));
      overlay::Blob reply = co_await ctx.oob().recv(7600);
      ep.peer = overlay::unpack<verbs::ConnInfo>(reply);
      rnic::Status st;
      if (batched) {
        st = co_await apps::raise_to_rts_batched(ctx, ep.qp, ep.peer);
      } else {
        rnic::QpAttr attr;
        attr.state = rnic::QpState::kInit;
        st = co_await ctx.modify_qp(ep.qp, attr, rnic::kAttrState);
        if (st == rnic::Status::kOk) {
          attr.state = rnic::QpState::kRtr;
          attr.dest_gid = ep.peer.gid;
          attr.dest_qpn = ep.peer.qpn;
          attr.path_mtu = 1024;
          st = co_await ctx.modify_qp(
              ep.qp, attr,
              rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn |
                  rnic::kAttrPathMtu);
        }
        if (st == rnic::Status::kOk) {
          attr.state = rnic::QpState::kRts;
          st = co_await ctx.modify_qp(ep.qp, attr, rnic::kAttrState);
        }
      }
      EXPECT_EQ(st, rnic::Status::kOk);
      auto q = co_await ctx.query_qp(ep.qp);
      EXPECT_TRUE(q.ok());
      out->qpn = ep.qp;
      out->view = q.value;
      const auto* entry =
          bed->masq_backend(0).conntrack().lookup(ep.qp, 100);
      out->tracked = entry != nullptr;
      if (entry != nullptr) {
        out->src_vip = entry->src_vip;
        out->dst_vip = entry->dst_vip;
      }
    }
    static sim::Task<void> server(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), 7600);
    }
  };
  auto run_one = [](bool batched, Result* out) {
    sim::EventLoop loop;
    fabric::TestbedConfig cfg;
    cfg.candidate = fabric::Candidate::kMasq;
    cfg.cal.host_dram_bytes = 16ull << 30;
    cfg.cal.vm_mem_bytes = 512ull << 20;
    fabric::Testbed bed(loop, cfg);
    bed.add_instances(2);
    loop.spawn(Flow::server(&bed));
    loop.spawn(Flow::client(&bed, batched, out));
    loop.run();
  };
  Result seq, bat;
  run_one(false, &seq);
  run_one(true, &bat);
  EXPECT_EQ(seq.qpn, bat.qpn);  // deterministic resource numbering
  EXPECT_EQ(seq.view.state, bat.view.state);
  EXPECT_EQ(seq.view.dest_gid, bat.view.dest_gid);  // still the vGID
  EXPECT_EQ(seq.view.dest_qpn, bat.view.dest_qpn);
  EXPECT_EQ(seq.view.path_mtu, bat.view.path_mtu);
  ASSERT_TRUE(seq.tracked);
  ASSERT_TRUE(bat.tracked);
  EXPECT_EQ(seq.src_vip, bat.src_vip);
  EXPECT_EQ(seq.dst_vip, bat.dst_vip);
}

// ---------------------------------------------------------- live migration

TEST_F(MasqBackendTest, MigrationMovesVmAndRemapsVgid) {
  bed_->add_instances(2);
  const auto vgid0 = net::Gid::from_ipv4(bed_->instance_vip(0));
  EXPECT_EQ(bed_->controller().lookup(100, vgid0),
            net::Gid::from_ipv4(bed_->device(0).config().ip));
  const auto host0_used = bed_->host(0).dram_used_bytes();
  const auto host1_used = bed_->host(1).dram_used_bytes();

  ASSERT_EQ(bed_->migrate_instance(0, 1), rnic::Status::kOk);

  EXPECT_EQ(bed_->instance_host(0), 1u);
  EXPECT_EQ(bed_->controller().lookup(100, vgid0),
            net::Gid::from_ipv4(bed_->device(1).config().ip));
  EXPECT_LT(bed_->host(0).dram_used_bytes(), host0_used);
  EXPECT_GT(bed_->host(1).dram_used_bytes(), host1_used);

  // The instance is fully usable after migration: connect + transfer.
  struct After {
    static sim::Task<void> run(fabric::Testbed* bed) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7800);
          auto c = co_await apps::recv_and_wait(bed->ctx(1), ep, 0, 256);
          EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 7800);
      EXPECT_EQ(st, rnic::Status::kOk);
      // Both VMs now sit on host 1: the frame still routes (loopback
      // through the shared port).
      auto wc = co_await apps::send_and_wait(bed->ctx(0), ep, 0, 32);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    }
  };
  loop_.spawn(After::run(bed_.get()));
  loop_.run();
}

TEST_F(MasqBackendTest, MigrationRejectedForNonMasq) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kSriov;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  EXPECT_EQ(bed.migrate_instance(0, 1), rnic::Status::kInvalidArgument);
}

TEST_F(MasqBackendTest, MigrationToSameHostIsNoop) {
  bed_->add_instances(2);
  EXPECT_EQ(bed_->migrate_instance(0, 0), rnic::Status::kOk);
  EXPECT_EQ(bed_->instance_host(0), 0u);
}

TEST_F(MasqBackendTest, SecurityRulesSurviveMigration) {
  bed_->add_instances(2);
  // Deny RDMA for this tenant before migrating.
  bed_->policy(100).firewall(overlay::Chain::kForward)
      .add_rule(overlay::Rule::deny(net::Ipv4Cidr::any(),
                                    net::Ipv4Cidr::any(),
                                    overlay::Proto::kRdma, 900));
  ASSERT_EQ(bed_->migrate_instance(0, 1), rnic::Status::kOk);
  struct Try {
    static sim::Task<void> run(fabric::Testbed* bed) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7900);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 7900);
      EXPECT_EQ(st, rnic::Status::kPermissionDenied);
    }
  };
  loop_.spawn(Try::run(bed_.get()));
  loop_.run();
}

}  // namespace
