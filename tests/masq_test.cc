// Unit tests for the MasQ core module: vBond lifecycle, RConntrack rule
// management and diagnostics, backend QoS grouping, mapping-cache
// push-down coherence, and live migration.
#include <gtest/gtest.h>

#include <memory>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "masq/frontend.h"
#include "masq/vbond.h"
#include "sdn/controller.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

// ----------------------------------------------------------------- vBond

class VbondTest : public ::testing::Test {
 protected:
  sim::EventLoop loop_;
  sdn::Controller ctl_{loop_};
  net::Gid pgid_ = net::Gid::from_ipv4(ip("10.0.0.1"));
};

TEST_F(VbondTest, BindDerivesGidFromVethIp) {
  masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
  EXPECT_FALSE(vb.bound());
  vb.bind(ip("192.168.5.5"));
  EXPECT_TRUE(vb.bound());
  EXPECT_EQ(vb.vgid(), net::Gid::from_ipv4(ip("192.168.5.5")));
  EXPECT_EQ(ctl_.lookup(7, vb.vgid()), pgid_);
}

TEST_F(VbondTest, InetaddrEventMovesRegistration) {
  masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
  vb.bind(ip("192.168.5.5"));
  vb.on_inetaddr_event(ip("192.168.5.99"));
  EXPECT_FALSE(
      ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.5"))).has_value());
  EXPECT_EQ(ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.99"))), pgid_);
}

TEST_F(VbondTest, DestructorUnregisters) {
  {
    masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
    vb.bind(ip("192.168.5.5"));
    EXPECT_EQ(ctl_.table_size(), 1u);
  }
  EXPECT_EQ(ctl_.table_size(), 0u);
}

TEST_F(VbondTest, ReleaseHandsOverOwnership) {
  masq::VBond successor(ctl_, 7, net::MacAddr::from_u64(0x1),
                        net::Gid::from_ipv4(ip("10.0.0.2")));
  {
    masq::VBond vb(ctl_, 7, net::MacAddr::from_u64(0x1), pgid_);
    vb.bind(ip("192.168.5.5"));
    successor.bind(ip("192.168.5.5"));  // migration target re-registers
    vb.release();
  }  // destructor must NOT clobber the successor's mapping
  EXPECT_EQ(ctl_.lookup(7, net::Gid::from_ipv4(ip("192.168.5.5"))),
            net::Gid::from_ipv4(ip("10.0.0.2")));
}

// -------------------------------------------------------- backend / fabric

class MasqBackendTest : public ::testing::Test {
 protected:
  MasqBackendTest() {
    fabric::TestbedConfig cfg;
    cfg.candidate = fabric::Candidate::kMasq;
    cfg.cal.host_dram_bytes = 16ull << 30;
    cfg.cal.vm_mem_bytes = 512ull << 20;
    bed_ = std::make_unique<fabric::Testbed>(loop_, cfg);
  }

  sim::EventLoop loop_;
  std::unique_ptr<fabric::Testbed> bed_;
};

TEST_F(MasqBackendTest, TenantsGetDistinctVfsUntilWraparound) {
  auto& backend = bed_->masq_backend(0);
  std::set<rnic::FnId> fns;
  for (std::uint32_t vni = 1; vni <= 8; ++vni) {
    fns.insert(backend.tenant_fn(vni));
  }
  EXPECT_EQ(fns.size(), 8u);  // 8 VFs, 8 tenants, all distinct
  // The 9th tenant shares a limiter (round-robin wraparound).
  const rnic::FnId ninth = backend.tenant_fn(9);
  EXPECT_TRUE(fns.count(ninth) == 1);
  // Mapping is sticky.
  EXPECT_EQ(backend.tenant_fn(3), backend.tenant_fn(3));
}

TEST_F(MasqBackendTest, PfModeRejectsQos) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.masq_use_pf = true;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  EXPECT_EQ(bed.masq_backend(0).tenant_fn(100), rnic::kPf);
  EXPECT_THROW(bed.masq_backend(0).set_tenant_rate_limit(100, 10.0),
               std::logic_error);
}

TEST_F(MasqBackendTest, ControllerPushDownKeepsCachesCoherent) {
  bed_->add_instances(2);
  auto& cache = bed_->masq_backend(0).mapping_cache();
  // Instance 1's vGID was pushed at registration time: first resolve hits.
  struct Probe {
    static sim::Task<void> run(fabric::Testbed* bed, bool* hit) {
      auto& cache = bed->masq_backend(0).mapping_cache();
      const auto before = cache.misses();
      auto r = co_await cache.resolve(
          100, net::Gid::from_ipv4(bed->instance_vip(1)));
      *hit = r.has_value() && cache.misses() == before;
    }
  };
  bool hit = false;
  loop_.spawn(Probe::run(bed_.get(), &hit));
  loop_.run();
  EXPECT_TRUE(hit);
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(MasqBackendTest, DiagnosticsMapQpnToTenantFlow) {
  bed_->add_instances(2);
  apps::Endpoint client;
  struct Conn {
    static sim::Task<void> run(fabric::Testbed* bed, apps::Endpoint* out) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7700);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      *out = co_await apps::setup_endpoint(bed->ctx(0));
      (void)co_await apps::connect_client(bed->ctx(0), *out,
                                          bed->instance_vip(1), 7700);
    }
  };
  loop_.spawn(Conn::run(bed_.get(), &client));
  loop_.run();
  // §5: underlay telemetry sees only (physical IP, QPN); RConntrack's
  // table recovers the tenant flow.
  const auto* entry =
      bed_->masq_backend(0).conntrack().lookup(client.qp, 100);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->src_vip, bed_->instance_vip(0));
  EXPECT_EQ(entry->dst_vip, bed_->instance_vip(1));
  EXPECT_EQ(entry->vni, 100u);
}

// ---------------------------------------------------------- live migration

TEST_F(MasqBackendTest, MigrationMovesVmAndRemapsVgid) {
  bed_->add_instances(2);
  const auto vgid0 = net::Gid::from_ipv4(bed_->instance_vip(0));
  EXPECT_EQ(bed_->controller().lookup(100, vgid0),
            net::Gid::from_ipv4(bed_->device(0).config().ip));
  const auto host0_used = bed_->host(0).dram_used_bytes();
  const auto host1_used = bed_->host(1).dram_used_bytes();

  ASSERT_EQ(bed_->migrate_instance(0, 1), rnic::Status::kOk);

  EXPECT_EQ(bed_->instance_host(0), 1u);
  EXPECT_EQ(bed_->controller().lookup(100, vgid0),
            net::Gid::from_ipv4(bed_->device(1).config().ip));
  EXPECT_LT(bed_->host(0).dram_used_bytes(), host0_used);
  EXPECT_GT(bed_->host(1).dram_used_bytes(), host1_used);

  // The instance is fully usable after migration: connect + transfer.
  struct After {
    static sim::Task<void> run(fabric::Testbed* bed) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7800);
          auto c = co_await apps::recv_and_wait(bed->ctx(1), ep, 0, 256);
          EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 7800);
      EXPECT_EQ(st, rnic::Status::kOk);
      // Both VMs now sit on host 1: the frame still routes (loopback
      // through the shared port).
      auto wc = co_await apps::send_and_wait(bed->ctx(0), ep, 0, 32);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    }
  };
  loop_.spawn(After::run(bed_.get()));
  loop_.run();
}

TEST_F(MasqBackendTest, MigrationRejectedForNonMasq) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kSriov;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  EXPECT_EQ(bed.migrate_instance(0, 1), rnic::Status::kInvalidArgument);
}

TEST_F(MasqBackendTest, MigrationToSameHostIsNoop) {
  bed_->add_instances(2);
  EXPECT_EQ(bed_->migrate_instance(0, 0), rnic::Status::kOk);
  EXPECT_EQ(bed_->instance_host(0), 0u);
}

TEST_F(MasqBackendTest, SecurityRulesSurviveMigration) {
  bed_->add_instances(2);
  // Deny RDMA for this tenant before migrating.
  bed_->policy(100).firewall(overlay::Chain::kForward)
      .add_rule(overlay::Rule::deny(net::Ipv4Cidr::any(),
                                    net::Ipv4Cidr::any(),
                                    overlay::Proto::kRdma, 900));
  ASSERT_EQ(bed_->migrate_instance(0, 1), rnic::Status::kOk);
  struct Try {
    static sim::Task<void> run(fabric::Testbed* bed) {
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7900);
        }
      };
      bed->loop().spawn(Srv::srv(bed));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 7900);
      EXPECT_EQ(st, rnic::Status::kPermissionDenied);
    }
  };
  loop_.spawn(Try::run(bed_.get()));
  loop_.run();
}

}  // namespace
