// sim::PartitionGroup tests (DESIGN.md §13): the partition-parallel window
// primitive must (a) run every partition's events strictly before the
// barrier, (b) keep each partition's event order — and therefore its trace
// hash — independent of the worker-thread count, and (c) surface a
// partition's root-task exception at the barrier.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant.h"
#include "check/ownership_audit.h"
#include "sim/partition.h"
#include "sim/ready_queue.h"
#include "sim/task.h"

namespace {

// Drives a little cross-partition ping-pong through the coordinator
// pattern the scale engine uses: run a window, then (single-threaded)
// schedule deliveries into other partitions at or after the barrier.
// With `audited`, a partition-ownership auditor watches the whole run —
// which must change nothing: same counters, same trace hash.
std::uint64_t run_ping_pong(std::size_t threads, bool audited = false,
                            std::uint64_t* accesses = nullptr) {
  constexpr std::size_t kParts = 4;
  constexpr sim::Time kLookahead = 100;
  sim::PartitionGroup group(kParts, threads);
  std::unique_ptr<check::PartitionOwnershipAuditor> audit;
  if (audited) {
    audit = std::make_unique<check::PartitionOwnershipAuditor>(group);
  }
  group.enable_trace();
  // Each partition gets local work at t = 10 and t = 25.
  std::vector<int> counters(kParts, 0);
  for (std::size_t p = 0; p < kParts; ++p) {
    group.loop(p).schedule_at(10, [&counters, p] { ++counters[p]; });
    group.loop(p).schedule_at(25, [&counters, p] { counters[p] += 10; });
  }
  int rounds = 0;
  while (true) {
    const sim::Time next = group.min_next_event_time();
    if (next == sim::ReadyQueue::kMaxTime) break;
    group.run_window_before(next + kLookahead);
    // Cross-partition delivery: each round, partition p sends one message
    // to partition (p+1) % kParts, landing one lookahead later — until
    // three rounds have run.
    if (++rounds <= 3) {
      for (std::size_t p = 0; p < kParts; ++p) {
        const std::size_t to = (p + 1) % kParts;
        group.loop(to).schedule_at(group.loop(to).now() + kLookahead,
                                   [&counters, to] { counters[to] += 100; });
      }
    }
  }
  for (std::size_t p = 0; p < kParts; ++p) {
    EXPECT_EQ(counters[p], 311) << "partition " << p;
  }
  if (audit) {
    EXPECT_TRUE(audit->violations().empty());
    if (accesses != nullptr) *accesses = audit->accesses_recorded();
  }
  return group.combined_trace_hash();
}

TEST(PartitionGroupTest, TraceHashInvariantAcrossThreadCounts) {
  const std::uint64_t h1 = run_ping_pong(1);
  const std::uint64_t h2 = run_ping_pong(2);
  const std::uint64_t h4 = run_ping_pong(4);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h4);
}

TEST(PartitionGroupTest, RunWindowStopsStrictlyBeforeBarrier) {
  sim::PartitionGroup group(2, 1);
  std::vector<sim::Time> fired;
  group.loop(0).schedule_at(10, [&] { fired.push_back(10); });
  group.loop(0).schedule_at(50, [&] { fired.push_back(50); });
  group.run_window_before(50);
  // The t=50 event belongs to the next window.
  EXPECT_EQ(fired, (std::vector<sim::Time>{10}));
  EXPECT_EQ(group.loop(0).now(), 50);
  group.run_window_before(51);
  EXPECT_EQ(fired, (std::vector<sim::Time>{10, 50}));
  EXPECT_EQ(group.last_event_time(), 50);
}

TEST(PartitionGroupTest, ThreadCountClampsToPartitions) {
  sim::PartitionGroup group(2, 16);
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group.threads(), 2u);
  group.loop(0).schedule_at(1, [] {});
  group.loop(1).schedule_at(2, [] {});
  group.run_window_before(10);
  EXPECT_TRUE(group.all_empty());
  EXPECT_EQ(group.total_events(), 2u);
}

TEST(PartitionGroupTest, RootTaskErrorSurfacesAtBarrier) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sim::PartitionGroup group(3, threads);
    auto boom = [](sim::EventLoop& loop) -> sim::Task<void> {
      co_await sim::delay(loop, 5);
      throw std::runtime_error("partition blew up");
    };
    group.loop(1).spawn(boom(group.loop(1)));
    EXPECT_THROW(group.run_window_before(100), std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(PartitionGroupTest, MinNextEventTimeSpansPartitions) {
  sim::PartitionGroup group(3, 1);
  EXPECT_EQ(group.min_next_event_time(), sim::ReadyQueue::kMaxTime);
  group.loop(2).schedule_at(70, [] {});
  group.loop(0).schedule_at(30, [] {});
  EXPECT_EQ(group.min_next_event_time(), 30);
  group.run_window_before(31);
  EXPECT_EQ(group.min_next_event_time(), 70);
}

// ---- Barrier edge cases ------------------------------------------------

// One partition throwing must not swallow the others' windows: every other
// partition's events still run to the barrier, and the group stays usable
// for the next window. (In the pooled path the thrower's worker catches
// and keeps draining its remaining slices; the single-threaded path keeps
// iterating partitions the same way.)
TEST(PartitionGroupTest, WindowErrorDoesNotStallOtherPartitions) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sim::PartitionGroup group(3, threads);
    std::vector<int> ran(3, 0);
    group.loop(0).schedule_at(5, [&] { ++ran[0]; });
    group.loop(0).schedule_at(8, [&] { ++ran[0]; });
    group.loop(1).schedule_at(5, [] {
      throw std::runtime_error("partition 1 blew up");
    });
    group.loop(2).schedule_at(5, [&] { ++ran[2]; });
    group.loop(2).schedule_at(8, [&] { ++ran[2]; });
    EXPECT_THROW(group.run_window_before(100), std::runtime_error)
        << "threads=" << threads;
    EXPECT_EQ(ran[0], 2) << "threads=" << threads;
    EXPECT_EQ(ran[2], 2) << "threads=" << threads;
    // The error is consumed at the barrier; the next window runs clean.
    group.loop(1).schedule_at(200, [&] { ++ran[1]; });
    group.run_window_before(300);
    EXPECT_EQ(ran[1], 1) << "threads=" << threads;
  }
}

// Two partitions throwing in the same window: the barrier rethrows the
// lowest-index partition's error, at every thread count — so a red run
// reports the same failure no matter how the partitions were sliced.
TEST(PartitionGroupTest, DeterministicLowestIndexRethrow) {
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    sim::PartitionGroup group(3, threads);
    group.loop(2).schedule_at(3, [] {
      throw std::runtime_error("boom-2");
    });
    group.loop(1).schedule_at(7, [] {
      throw std::runtime_error("boom-1");
    });
    std::string caught;
    try {
      group.run_window_before(100);
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "boom-1") << "threads=" << threads;
  }
}

TEST(PartitionGroupTest, ZeroPartitionsClampToOne) {
  sim::PartitionGroup group(0, 0);
  EXPECT_EQ(group.size(), 1u);
  EXPECT_EQ(group.threads(), 1u);
  int ran = 0;
  group.loop(0).schedule_at(1, [&] { ++ran; });
  group.run_window_before(10);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(group.all_empty());
}

TEST(PartitionGroupTest, SinglePartitionGroupDegeneratesCleanly) {
  sim::PartitionGroup group(1, 4);  // threads clamp to the one partition
  EXPECT_EQ(group.threads(), 1u);
  std::vector<sim::Time> fired;
  group.loop(0).schedule_at(10, [&] { fired.push_back(10); });
  group.loop(0).schedule_at(20, [&] { fired.push_back(20); });
  group.run_window_before(15);
  group.run_window_before(25);
  EXPECT_EQ(fired, (std::vector<sim::Time>{10, 20}));
  EXPECT_EQ(group.total_events(), 2u);
}

// ---- Partition-ownership auditor ---------------------------------------

// Arming the auditor on a legal run changes nothing: same trace hash as
// the unarmed run at every thread count, zero violations — and it really
// watched (every schedule and execute is an audited access).
TEST(PartitionOwnershipTest, ArmedRunIsCleanAndTraceIdentical) {
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::uint64_t plain = run_ping_pong(threads);
    std::uint64_t accesses = 0;
    const std::uint64_t armed = run_ping_pong(threads, true, &accesses);
    EXPECT_EQ(plain, armed) << "threads=" << threads;
    EXPECT_GT(accesses, 0u) << "threads=" << threads;
  }
}

// A root-task error crossing the barrier looks identical armed: the
// auditor's window bracketing must not eat or reorder partition errors.
TEST(PartitionOwnershipTest, ErrorPropagationUnaffectedByArmedAuditor) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sim::PartitionGroup group(3, threads);
    check::PartitionOwnershipAuditor audit(group);
    auto boom = [](sim::EventLoop& loop) -> sim::Task<void> {
      co_await sim::delay(loop, 5);
      throw std::runtime_error("partition blew up");
    };
    group.loop(1).spawn(boom(group.loop(1)));
    EXPECT_THROW(group.run_window_before(100), std::runtime_error)
        << "threads=" << threads;
    EXPECT_TRUE(audit.violations().empty()) << "threads=" << threads;
  }
}

// The real race shape: an event running inside partition 0's window
// schedules straight into partition 1's loop instead of going through the
// coordinator at the barrier. The auditor throws from the access site and
// the barrier surfaces it, naming both partitions.
TEST(PartitionOwnershipTest, CrossPartitionScheduleFromWindowFires) {
  sim::PartitionGroup group(2, 1);
  check::PartitionOwnershipAuditor audit(group);
  group.loop(0).schedule_at(10, [&group] {
    group.loop(1).schedule_at(50, [] {});  // illegal: not my partition
  });
  std::string msg;
  try {
    group.run_window_before(100);
  } catch (const check::InvariantViolationError& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("partition-ownership"), std::string::npos) << msg;
  EXPECT_NE(msg.find("EventLoop[1] is owned by partition 1"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("partition 0's window"), std::string::npos) << msg;
  ASSERT_EQ(audit.violations().size(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, "partition-ownership");
}

// Corruption hook: forge a thread context claiming partition 2's window,
// then touch partition 0's loop. The diagnostic must name the owning
// partition, the accessing thread's claimed partition, and the operation.
TEST(PartitionOwnershipTest, CorruptionHookFiresWithDiagnostics) {
  sim::PartitionGroup group(4, 1);
  check::PartitionOwnershipAuditor audit(group);
  audit.set_thread_context_for_test(2, true);
  std::string msg;
  try {
    group.loop(0).schedule_at(5, [] {});
  } catch (const check::InvariantViolationError& e) {
    msg = e.what();
  }
  audit.clear_thread_context_for_test();
  EXPECT_NE(msg.find("owned by partition 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition 2's window"), std::string::npos) << msg;
  EXPECT_NE(msg.find("op=schedule"), std::string::npos) << msg;
  // Context cleared: the same access is legal again (barrier phase).
  EXPECT_NO_THROW(group.loop(0).schedule_at(6, [] {}));
  group.run_window_before(10);
}

// ViolationPolicy::kRecord collects instead of throwing — the storm can
// finish and the harness can report every violation at once.
TEST(PartitionOwnershipTest, RecordPolicyCollectsWithoutThrowing) {
  sim::PartitionGroup group(2, 1);
  check::PartitionOwnershipAuditor audit(group,
                                         check::ViolationPolicy::kRecord);
  audit.set_thread_context_for_test(1, true);
  EXPECT_NO_THROW(group.loop(0).schedule_at(5, [] {}));
  audit.clear_thread_context_for_test();
  ASSERT_EQ(audit.violations().size(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, "partition-ownership");
  EXPECT_NE(audit.violations()[0].diagnostic.find("owned by partition 0"),
            std::string::npos);
  group.run_window_before(10);  // the recorded run still completes
  EXPECT_EQ(group.total_events(), 1u);
}

// tag_state()/note_state_access(): auxiliary per-partition state (the
// scale engine's PartDrivers and hot tables) is held to the same rule,
// with the registered name in the diagnostic.
TEST(PartitionOwnershipTest, TaggedStateHeldToOwnershipRule) {
  sim::PartitionGroup group(2, 1);
  check::PartitionOwnershipAuditor audit(group);
  int hot_table = 0;
  audit.tag_state(&hot_table, "conn-table[1]", 1);
  // Barrier phase: the coordinator may touch anything.
  EXPECT_NO_THROW(audit.note_state_access(&hot_table));
  // Untagged pointers are ignored entirely.
  int untagged = 0;
  audit.set_thread_context_for_test(0, true);
  EXPECT_NO_THROW(audit.note_state_access(&untagged));
  // Partition 0's window touching partition 1's table: violation.
  std::string msg;
  try {
    audit.note_state_access(&hot_table);
  } catch (const check::InvariantViolationError& e) {
    msg = e.what();
  }
  audit.clear_thread_context_for_test();
  EXPECT_NE(msg.find("conn-table[1] is owned by partition 1"),
            std::string::npos)
      << msg;
}

}  // namespace
