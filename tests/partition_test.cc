// sim::PartitionGroup tests (DESIGN.md §13): the partition-parallel window
// primitive must (a) run every partition's events strictly before the
// barrier, (b) keep each partition's event order — and therefore its trace
// hash — independent of the worker-thread count, and (c) surface a
// partition's root-task exception at the barrier.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/partition.h"
#include "sim/ready_queue.h"
#include "sim/task.h"

namespace {

// Drives a little cross-partition ping-pong through the coordinator
// pattern the scale engine uses: run a window, then (single-threaded)
// schedule deliveries into other partitions at or after the barrier.
std::uint64_t run_ping_pong(std::size_t threads) {
  constexpr std::size_t kParts = 4;
  constexpr sim::Time kLookahead = 100;
  sim::PartitionGroup group(kParts, threads);
  group.enable_trace();
  // Each partition gets local work at t = 10 and t = 25.
  std::vector<int> counters(kParts, 0);
  for (std::size_t p = 0; p < kParts; ++p) {
    group.loop(p).schedule_at(10, [&counters, p] { ++counters[p]; });
    group.loop(p).schedule_at(25, [&counters, p] { counters[p] += 10; });
  }
  int rounds = 0;
  while (true) {
    const sim::Time next = group.min_next_event_time();
    if (next == sim::ReadyQueue::kMaxTime) break;
    group.run_window_before(next + kLookahead);
    // Cross-partition delivery: each round, partition p sends one message
    // to partition (p+1) % kParts, landing one lookahead later — until
    // three rounds have run.
    if (++rounds <= 3) {
      for (std::size_t p = 0; p < kParts; ++p) {
        const std::size_t to = (p + 1) % kParts;
        group.loop(to).schedule_at(group.loop(to).now() + kLookahead,
                                   [&counters, to] { counters[to] += 100; });
      }
    }
  }
  for (std::size_t p = 0; p < kParts; ++p) {
    EXPECT_EQ(counters[p], 311) << "partition " << p;
  }
  return group.combined_trace_hash();
}

TEST(PartitionGroupTest, TraceHashInvariantAcrossThreadCounts) {
  const std::uint64_t h1 = run_ping_pong(1);
  const std::uint64_t h2 = run_ping_pong(2);
  const std::uint64_t h4 = run_ping_pong(4);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h4);
}

TEST(PartitionGroupTest, RunWindowStopsStrictlyBeforeBarrier) {
  sim::PartitionGroup group(2, 1);
  std::vector<sim::Time> fired;
  group.loop(0).schedule_at(10, [&] { fired.push_back(10); });
  group.loop(0).schedule_at(50, [&] { fired.push_back(50); });
  group.run_window_before(50);
  // The t=50 event belongs to the next window.
  EXPECT_EQ(fired, (std::vector<sim::Time>{10}));
  EXPECT_EQ(group.loop(0).now(), 50);
  group.run_window_before(51);
  EXPECT_EQ(fired, (std::vector<sim::Time>{10, 50}));
  EXPECT_EQ(group.last_event_time(), 50);
}

TEST(PartitionGroupTest, ThreadCountClampsToPartitions) {
  sim::PartitionGroup group(2, 16);
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group.threads(), 2u);
  group.loop(0).schedule_at(1, [] {});
  group.loop(1).schedule_at(2, [] {});
  group.run_window_before(10);
  EXPECT_TRUE(group.all_empty());
  EXPECT_EQ(group.total_events(), 2u);
}

TEST(PartitionGroupTest, RootTaskErrorSurfacesAtBarrier) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sim::PartitionGroup group(3, threads);
    auto boom = [](sim::EventLoop& loop) -> sim::Task<void> {
      co_await sim::delay(loop, 5);
      throw std::runtime_error("partition blew up");
    };
    group.loop(1).spawn(boom(group.loop(1)));
    EXPECT_THROW(group.run_window_before(100), std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(PartitionGroupTest, MinNextEventTimeSpansPartitions) {
  sim::PartitionGroup group(3, 1);
  EXPECT_EQ(group.min_next_event_time(), sim::ReadyQueue::kMaxTime);
  group.loop(2).schedule_at(70, [] {});
  group.loop(0).schedule_at(30, [] {});
  EXPECT_EQ(group.min_next_event_time(), 30);
  group.run_window_before(31);
  EXPECT_EQ(group.min_next_event_time(), 70);
}

}  // namespace
