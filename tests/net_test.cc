// Unit + property tests for network addresses, wire headers and the fluid
// max-min bandwidth model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "net/addr.h"
#include "net/fluid.h"
#include "net/headers.h"
#include "sim/event_loop.h"
#include "sim/rng.h"

using namespace sim::literals;

namespace {

// ---------------------------------------------------------------- addresses

TEST(AddrTest, Ipv4ParseFormatRoundTrip) {
  auto a = net::Ipv4Addr::parse("192.168.1.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->str(), "192.168.1.7");
  EXPECT_EQ(a->value, 0xC0A80107u);
  EXPECT_FALSE(net::Ipv4Addr::parse("300.1.1.1").has_value());
  EXPECT_FALSE(net::Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(net::Ipv4Addr::parse("1.2.3.4.5").has_value());
}

TEST(AddrTest, CidrContains) {
  auto c = net::Ipv4Cidr::parse("192.168.1.0/24");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->contains(*net::Ipv4Addr::parse("192.168.1.200")));
  EXPECT_FALSE(c->contains(*net::Ipv4Addr::parse("192.168.2.1")));
  EXPECT_TRUE(net::Ipv4Cidr::any().contains(*net::Ipv4Addr::parse("8.8.8.8")));
  auto host = net::Ipv4Cidr::parse("10.0.0.1");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->prefix_len, 32);
  EXPECT_TRUE(host->contains(*net::Ipv4Addr::parse("10.0.0.1")));
  EXPECT_FALSE(host->contains(*net::Ipv4Addr::parse("10.0.0.2")));
}

TEST(AddrTest, GidFromIpv4RoundTrip) {
  auto ip = *net::Ipv4Addr::parse("172.16.5.9");
  net::Gid g = net::Gid::from_ipv4(ip);
  EXPECT_FALSE(g.is_zero());
  EXPECT_EQ(g.bytes[10], 0xff);
  EXPECT_EQ(g.bytes[11], 0xff);
  auto back = g.to_ipv4();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ip);
  EXPECT_EQ(g.str(), "::ffff:172.16.5.9");
  EXPECT_TRUE(net::Gid{}.is_zero());
}

TEST(AddrTest, MacFormat) {
  auto m = net::MacAddr::from_u64(0x02000000002aULL);
  EXPECT_EQ(m.str(), "02:00:00:00:00:2a");
}

// ------------------------------------------------------------------ headers

TEST(HeadersTest, RoceFrameWireSize) {
  net::RoceFrame f;
  f.payload_bytes = 1024;
  // 14 + 20 + 8 + 12 + 4 = 58 bytes of native overhead.
  EXPECT_EQ(f.wire_bytes(), 1024u + 58u);
  f.vxlan = true;
  EXPECT_EQ(f.wire_bytes(), 1024u + 58u + 50u);
}

TEST(HeadersTest, NativeFrameHeaderRoundTrip) {
  net::RoceFrame f;
  f.eth.src = net::MacAddr::from_u64(0x020000000001);
  f.eth.dst = net::MacAddr::from_u64(0x020000000002);
  f.ip.src = *net::Ipv4Addr::parse("10.0.0.1");
  f.ip.dst = *net::Ipv4Addr::parse("10.0.0.2");
  f.udp.src_port = 0xC000;
  f.bth.opcode = net::BthOpcode::kRcWriteOnly;
  f.bth.dest_qpn = 0x1234;
  f.bth.psn = 77;
  f.bth.ack_req = true;
  auto bytes = f.serialize_headers();
  ASSERT_EQ(bytes.size(),
            net::kEthHeaderBytes + net::kIpv4HeaderBytes +
                net::kUdpHeaderBytes + net::kBthBytes);
  std::size_t pos = 0;
  auto eth = net::EthHeader::parse(bytes, pos);
  auto ip = net::Ipv4Header::parse(bytes, pos);
  auto udp = net::UdpHeader::parse(bytes, pos);
  auto bth = net::Bth::parse(bytes, pos);
  EXPECT_EQ(eth.src, f.eth.src);
  EXPECT_EQ(eth.dst, f.eth.dst);
  EXPECT_EQ(ip.src, f.ip.src);
  EXPECT_EQ(ip.dst, f.ip.dst);
  EXPECT_EQ(udp.dst_port, net::kRoceV2UdpPort);
  EXPECT_EQ(bth.opcode, net::BthOpcode::kRcWriteOnly);
  EXPECT_EQ(bth.dest_qpn, 0x1234u);
  EXPECT_EQ(bth.psn, 77u);
  EXPECT_TRUE(bth.ack_req);
}

TEST(HeadersTest, VxlanEncapRoundTrip) {
  net::RoceFrame f;
  f.vxlan = true;
  f.vxlan_hdr.vni = 0xBEEF;
  f.outer_ip.src = *net::Ipv4Addr::parse("100.0.0.1");
  f.outer_ip.dst = *net::Ipv4Addr::parse("100.0.0.2");
  f.ip.src = *net::Ipv4Addr::parse("192.168.1.1");  // inner: tenant addrs
  f.ip.dst = *net::Ipv4Addr::parse("192.168.1.2");
  auto bytes = f.serialize_headers();
  std::size_t pos = 0;
  (void)net::EthHeader::parse(bytes, pos);
  auto outer_ip = net::Ipv4Header::parse(bytes, pos);
  auto outer_udp = net::UdpHeader::parse(bytes, pos);
  auto vx = net::VxlanHeader::parse(bytes, pos);
  (void)net::EthHeader::parse(bytes, pos);
  auto inner_ip = net::Ipv4Header::parse(bytes, pos);
  EXPECT_EQ(outer_ip.dst.str(), "100.0.0.2");
  EXPECT_EQ(outer_udp.dst_port, net::kVxlanUdpPort);
  EXPECT_EQ(vx.vni, 0xBEEFu);
  EXPECT_EQ(inner_ip.dst.str(), "192.168.1.2");
}

TEST(HeadersTest, TruncatedParseThrows) {
  std::vector<std::uint8_t> tiny(5, 0);
  std::size_t pos = 0;
  EXPECT_THROW(net::EthHeader::parse(tiny, pos), std::out_of_range);
}

// -------------------------------------------------------------- fluid model

class FluidTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  net::FluidNet net{loop};
};

TEST_F(FluidTest, SingleFlowGetsFullCapacityAndCompletes) {
  auto link = net.add_link(40.0, 1_us);
  bool done = false;
  sim::Time done_at = 0;
  net.start_flow({link}, 5'000'000, net::kUncapped, [&] {
    done = true;
    done_at = loop.now();
  });
  loop.run();
  ASSERT_TRUE(done);
  // 5 MB at 5 B/ns = 1'000'000 ns serialization + 1 us propagation.
  EXPECT_NEAR(static_cast<double>(done_at), 1'001'000.0, 2.0);
}

TEST_F(FluidTest, TwoFlowsShareFairly) {
  auto link = net.add_link(40.0, 0_ns);
  int completed = 0;
  auto f1 = net.start_flow({link}, 1'000'000, net::kUncapped,
                           [&] { ++completed; });
  auto f2 = net.start_flow({link}, 1'000'000, net::kUncapped,
                           [&] { ++completed; });
  EXPECT_NEAR(net.current_rate_gbps(f1), 20.0, 1e-9);
  EXPECT_NEAR(net.current_rate_gbps(f2), 20.0, 1e-9);
  loop.run();
  EXPECT_EQ(completed, 2);
  // Both finish at 1 MB / 2.5 B/ns = 400 us.
  EXPECT_NEAR(sim::to_us(loop.now()), 400.0, 0.01);
}

TEST_F(FluidTest, CapIsRespectedAndSpareGoesToOthers) {
  auto link = net.add_link(40.0, 0_ns);
  auto f1 = net.start_flow({link}, 0, 10.0, nullptr);   // capped at 10G
  auto f2 = net.start_flow({link}, 0, net::kUncapped, nullptr);
  EXPECT_NEAR(net.current_rate_gbps(f1), 10.0, 1e-9);
  EXPECT_NEAR(net.current_rate_gbps(f2), 30.0, 1e-9);
}

TEST_F(FluidTest, CapChangeRedistributes) {
  auto link = net.add_link(40.0, 0_ns);
  auto f1 = net.start_flow({link}, 0, net::kUncapped, nullptr);
  auto f2 = net.start_flow({link}, 0, net::kUncapped, nullptr);
  EXPECT_NEAR(net.current_rate_gbps(f1), 20.0, 1e-9);
  net.set_flow_cap(f1, 5.0);
  EXPECT_NEAR(net.current_rate_gbps(f1), 5.0, 1e-9);
  EXPECT_NEAR(net.current_rate_gbps(f2), 35.0, 1e-9);
  net.set_flow_cap(f1, 0.0);  // blocked (security kill in Fig. 17)
  EXPECT_NEAR(net.current_rate_gbps(f1), 0.0, 1e-9);
  EXPECT_NEAR(net.current_rate_gbps(f2), 40.0, 1e-9);
}

TEST_F(FluidTest, CancelRedistributes) {
  auto link = net.add_link(40.0, 0_ns);
  auto f1 = net.start_flow({link}, 0, net::kUncapped, nullptr);
  auto f2 = net.start_flow({link}, 0, net::kUncapped, nullptr);
  net.cancel_flow(f1);
  EXPECT_FALSE(net.has_flow(f1));
  EXPECT_NEAR(net.current_rate_gbps(f2), 40.0, 1e-9);
}

TEST_F(FluidTest, MultiLinkPathUsesBottleneck) {
  auto fat = net.add_link(100.0, 500_ns);
  auto thin = net.add_link(10.0, 500_ns);
  bool done = false;
  net.start_flow({fat, thin}, 1'250'000, net::kUncapped, [&] { done = true; });
  loop.run();
  ASSERT_TRUE(done);
  // 1.25 MB at 1.25 B/ns = 1 ms, + 1 us total propagation.
  EXPECT_NEAR(sim::to_us(loop.now()), 1001.0, 0.01);
}

TEST_F(FluidTest, EarlierFinishFreesBandwidthForLaterFlow) {
  auto link = net.add_link(40.0, 0_ns);
  sim::Time t1 = 0, t2 = 0;
  net.start_flow({link}, 1'000'000, net::kUncapped, [&] { t1 = loop.now(); });
  net.start_flow({link}, 3'000'000, net::kUncapped, [&] { t2 = loop.now(); });
  loop.run();
  // Phase 1: both at 2.5 B/ns until flow1's 1 MB done at t=400us; flow2 has
  // 2 MB left, now at 5 B/ns -> +400us. Total 800us.
  EXPECT_NEAR(sim::to_us(t1), 400.0, 0.01);
  EXPECT_NEAR(sim::to_us(t2), 800.0, 0.01);
}

TEST_F(FluidTest, UnboundedFlowAccumulatesBytes) {
  auto link = net.add_link(8.0, 0_ns);  // 1 B/ns
  auto f = net.start_flow({link}, 0, net::kUncapped, nullptr);
  loop.run_until(10_us);
  EXPECT_NEAR(static_cast<double>(net.bytes_sent(f)), 10'000.0, 1.0);
  net.cancel_flow(f);
  loop.run();
}

TEST_F(FluidTest, ZeroRateFlowNeverCompletes) {
  auto link = net.add_link(40.0, 0_ns);
  bool done = false;
  auto f = net.start_flow({link}, 1000, 0.0, [&] { done = true; });
  loop.run_until(1_s);
  EXPECT_FALSE(done);
  net.set_flow_cap(f, net::kUncapped);
  loop.run();
  EXPECT_TRUE(done);
}

// Property test: on random topologies the allocation is feasible and
// max-min fair (every flow is either at its cap or bottlenecked on a link
// where it gets at least as much as any other flow).
class FluidPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidPropertyTest, MaxMinInvariantsHold) {
  sim::EventLoop loop;
  net::FluidNet fnet(loop);
  sim::Rng rng(GetParam());

  const int n_links = static_cast<int>(2 + rng.next_below(6));
  std::vector<net::LinkId> links;
  std::vector<double> caps;
  for (int i = 0; i < n_links; ++i) {
    const double cap = 1.0 + static_cast<double>(rng.next_below(40));
    links.push_back(fnet.add_link(cap, 0_ns));
    caps.push_back(cap);
  }
  const int n_flows = static_cast<int>(1 + rng.next_below(12));
  struct FlowInfo {
    net::FlowId id;
    std::vector<net::LinkId> path;
    double cap;
  };
  std::vector<FlowInfo> flows;
  for (int i = 0; i < n_flows; ++i) {
    std::vector<net::LinkId> path;
    const int plen = static_cast<int>(1 + rng.next_below(3));
    for (int j = 0; j < plen; ++j) {
      net::LinkId l = links[rng.next_below(links.size())];
      if (std::find(path.begin(), path.end(), l) == path.end()) {
        path.push_back(l);
      }
    }
    const double cap = rng.next_bool(0.3)
                           ? 1.0 + static_cast<double>(rng.next_below(20))
                           : net::kUncapped;
    auto id = fnet.start_flow(path, 0, cap, nullptr);
    flows.push_back({id, path, cap});
  }

  // Feasibility: per-link sum of rates <= capacity.
  std::vector<double> used(links.size(), 0.0);
  for (const auto& f : flows) {
    const double r = fnet.current_rate_gbps(f.id);
    EXPECT_GE(r, 0.0);
    if (f.cap != net::kUncapped) {
      EXPECT_LE(r, f.cap + 1e-6);
    }
    for (auto l : f.path) used[l] += r;
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_LE(used[i], caps[i] + 1e-6) << "link " << i << " oversubscribed";
  }
  // Max-min: each flow is at its cap or crosses a saturated link where no
  // other flow gets a higher rate.
  for (const auto& f : flows) {
    const double r = fnet.current_rate_gbps(f.id);
    if (f.cap != net::kUncapped && std::abs(r - f.cap) < 1e-6) continue;
    bool bottlenecked = false;
    for (auto l : f.path) {
      if (std::abs(used[l] - caps[l]) < 1e-6) {
        double max_other = 0.0;
        for (const auto& g : flows) {
          if (g.id == f.id) continue;
          if (std::find(g.path.begin(), g.path.end(), l) != g.path.end()) {
            max_other = std::max(max_other, fnet.current_rate_gbps(g.id));
          }
        }
        if (r >= max_other - 1e-6) {
          bottlenecked = true;
          break;
        }
      }
    }
    EXPECT_TRUE(bottlenecked)
        << "flow " << f.id << " rate " << r << " is neither capped nor fair";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FluidPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
