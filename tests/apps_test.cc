// Application-level tests: HERD-style KVS (throughput shape + data
// integrity), Graph500 (validated BFS/SSSP, TEPS ordering), and Spark-lite
// (stage decomposition across candidates).
#include <gtest/gtest.h>

#include <memory>

#include "apps/graph500.h"
#include "apps/kvs.h"
#include "apps/sparklite.h"
#include "fabric/testbed.h"

namespace {

using fabric::Candidate;

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop, Candidate c) {
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 48ull << 30;
  cfg.cal.vm_mem_bytes = 8ull << 30;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(2);
  return bed;
}

// ------------------------------------------------------------------- KVS

apps::kvs::Result kvs_run(Candidate c, int clients,
                          sim::Time measure = sim::milliseconds(4)) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, c);
  apps::kvs::Config cfg;
  cfg.num_clients = clients;
  cfg.warmup = sim::milliseconds(1);
  cfg.measure = measure;
  cfg.num_keys = 20'000;
  return apps::kvs::run(*bed, cfg);
}

TEST(KvsTest, ThroughputRisesWithClientsThenSaturates) {
  const auto r2 = kvs_run(Candidate::kMasq, 2);
  const auto r8 = kvs_run(Candidate::kMasq, 8);
  const auto r14 = kvs_run(Candidate::kMasq, 14);
  EXPECT_GT(r8.mops, r2.mops * 1.5);
  EXPECT_GT(r14.mops, r8.mops);          // still climbing or flat
  EXPECT_GT(r14.mops, 7.0);              // paper: peak 9.7 Mops
  EXPECT_LT(r14.mops, 11.0);
}

TEST(KvsTest, MasqMatchesHostAtPeak) {
  const auto masq = kvs_run(Candidate::kMasq, 14);
  const auto host = kvs_run(Candidate::kHostRdma, 14);
  EXPECT_NEAR(masq.mops, host.mops, host.mops * 0.12);  // Fig. 21
}

TEST(KvsTest, SriovPaysIommuTax) {
  const auto masq = kvs_run(Candidate::kMasq, 14);
  const auto sriov = kvs_run(Candidate::kSriov, 14);
  EXPECT_LT(sriov.mops, masq.mops);  // paper: ~1 Mops lower
  EXPECT_GT(sriov.mops, masq.mops * 0.6);
}

TEST(KvsTest, FreeflowFlatlinesAroundOneMops) {
  const auto ff = kvs_run(Candidate::kFreeFlow, 8);
  EXPECT_GT(ff.mops, 0.4);
  EXPECT_LT(ff.mops, 2.0);  // paper: ~1 Mops, FFR-bound
  const auto ff14 = kvs_run(Candidate::kFreeFlow, 14);
  EXPECT_LT(ff14.mops, 2.0);  // more clients don't help
}

TEST(KvsTest, WorkloadMixAndIntegrity) {
  const auto r = kvs_run(Candidate::kMasq, 8);
  EXPECT_GT(r.ops, 1000u);
  const double get_frac =
      static_cast<double>(r.gets) / static_cast<double>(r.ops);
  EXPECT_NEAR(get_frac, 0.95, 0.02);        // 95% GET / 5% PUT
  EXPECT_EQ(r.get_hits, r.gets);            // keys pre-populated
  EXPECT_EQ(r.value_mismatches, 0u);        // bytes survived the DMA path
}

// -------------------------------------------------------------- Graph500

apps::graph500::Result g500_run(Candidate c) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, c);
  apps::graph500::Config cfg;
  cfg.scale = 12;
  cfg.num_ranks = 8;
  cfg.num_roots = 2;
  return apps::graph500::run(*bed, cfg);
}

TEST(Graph500Test, BfsAndSsspValidate) {
  const auto r = g500_run(Candidate::kMasq);
  EXPECT_TRUE(r.bfs.validated);
  EXPECT_TRUE(r.sssp.validated);
  EXPECT_GT(r.bfs.teps, 0.0);
  EXPECT_GT(r.sssp.teps, 0.0);
  EXPECT_GT(r.construction_s, 0.0);
  // SSSP relaxes more edges over more rounds: lower TEPS than BFS.
  EXPECT_LT(r.sssp.teps, r.bfs.teps);
}

TEST(Graph500Test, CandidatesOrderAsInFig20) {
  const auto host = g500_run(Candidate::kHostRdma);
  const auto masq = g500_run(Candidate::kMasq);
  const auto sriov = g500_run(Candidate::kSriov);
  EXPECT_GE(host.bfs.teps, masq.bfs.teps * 0.99);  // host no worse
  EXPECT_NEAR(masq.bfs.teps, sriov.bfs.teps,
              sriov.bfs.teps * 0.1);  // MasQ == SR-IOV
  // "almost no performance degradation": within ~25% of bare metal.
  EXPECT_GT(masq.bfs.teps, host.bfs.teps * 0.75);
}

// ------------------------------------------------------------- Spark-lite

apps::spark::JobResult spark_run(Candidate c, apps::spark::Workload w) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, c);
  return apps::spark::run(*bed, w, {});
}

TEST(SparkTest, GroupByJobLandsInPaperRange) {
  const auto host = spark_run(Candidate::kHostRdma,
                              apps::spark::Workload::kGroupBy);
  EXPECT_GT(host.total_s, 3.0);
  EXPECT_LT(host.total_s, 6.5);  // Fig. 22: ~4-5 s
  EXPECT_GT(host.shuffled_bytes, 0u);
}

TEST(SparkTest, VmOverheadShowsInFlatMapStage) {
  const auto host = spark_run(Candidate::kHostRdma,
                              apps::spark::Workload::kGroupBy);
  const auto masq = spark_run(Candidate::kMasq,
                              apps::spark::Workload::kGroupBy);
  const auto ff = spark_run(Candidate::kFreeFlow,
                            apps::spark::Workload::kGroupBy);
  // Fig. 23: FlatMap slower on VMs (MasQ) than host/container.
  EXPECT_GT(masq.flatmap_s, host.flatmap_s * 1.08);
  EXPECT_NEAR(ff.flatmap_s, host.flatmap_s, host.flatmap_s * 0.03);
  // Fig. 23: GroupByKey — FreeFlow's network overhead closes the gap to
  // MasQ ("almost the same completion time in the second stage").
  EXPECT_GT(ff.shuffle_s, host.shuffle_s);
  EXPECT_LT(ff.shuffle_s, masq.shuffle_s * 1.1);
}

TEST(SparkTest, SortByCostsMoreThanGroupBy) {
  const auto grp = spark_run(Candidate::kMasq,
                             apps::spark::Workload::kGroupBy);
  const auto srt = spark_run(Candidate::kMasq,
                             apps::spark::Workload::kSortBy);
  EXPECT_GT(srt.total_s, grp.total_s);
  EXPECT_NEAR(srt.flatmap_s, grp.flatmap_s, 0.01);  // stage 1 identical
}

}  // namespace
