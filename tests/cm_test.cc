// Tests for the rdma_cm-style connection manager: multiplexed listener,
// private_data in both directions, reject paths, security interaction,
// and data flow over CM-established connections on every candidate.
#include <gtest/gtest.h>

#include <memory>

#include "apps/cm.h"
#include "fabric/testbed.h"

namespace {

using fabric::Candidate;

overlay::Blob blob(const std::string& s) {
  return overlay::Blob(s.begin(), s.end());
}
std::string str(const overlay::Blob& b) {
  return std::string(b.begin(), b.end());
}

class CmTest : public ::testing::TestWithParam<Candidate> {
 protected:
  CmTest() {
    fabric::TestbedConfig cfg;
    cfg.candidate = GetParam();
    cfg.cal.host_dram_bytes = 16ull << 30;
    bed_ = std::make_unique<fabric::Testbed>(loop_, cfg);
    bed_->add_instances(4);  // one server + up to three clients
  }

  sim::EventLoop loop_;
  std::unique_ptr<fabric::Testbed> bed_;
};

TEST_P(CmTest, AcceptExchangesPrivateDataAndMovesBytes) {
  struct Server {
    static sim::Task<void> run(fabric::Testbed* bed) {
      apps::cm::Listener listener(bed->ctx(1), 4791);
      auto req = co_await listener.get_request();
      EXPECT_EQ(req.peer_vip, bed->instance_vip(0));
      EXPECT_EQ(str(req.private_data), "hello from client");
      auto ep = co_await listener.accept(req, {}, blob("welcome"));
      EXPECT_TRUE(ep.ok());
      if (!ep.ok()) co_return;
      auto c = co_await apps::recv_and_wait(bed->ctx(1), ep.value, 0, 1024);
      EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
      EXPECT_EQ(apps::get_string(bed->ctx(1), ep.value, 0, c.byte_len),
                "payload over cm");
    }
  };
  struct Client {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto conn = co_await apps::cm::connect(bed->ctx(0),
                                             bed->instance_vip(1), 4791, {},
                                             blob("hello from client"));
      EXPECT_TRUE(conn.ok());
      if (!conn.ok()) co_return;
      EXPECT_EQ(str(conn.value.private_data), "welcome");
      apps::put_string(bed->ctx(0), conn.value.endpoint, 0,
                       "payload over cm");
      auto wc = co_await apps::send_and_wait(bed->ctx(0),
                                             conn.value.endpoint, 0, 15);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    }
  };
  loop_.spawn(Server::run(bed_.get()));
  loop_.spawn(Client::run(bed_.get()));
  loop_.run();
}

TEST_P(CmTest, OneListenerServesManyClients) {
  static constexpr int kClients = 3;
  struct Server {
    static sim::Task<void> run(fabric::Testbed* bed, int* served) {
      apps::cm::Listener listener(bed->ctx(1), 4791);
      for (int i = 0; i < kClients; ++i) {
        auto req = co_await listener.get_request();
        auto ep = co_await listener.accept(req);
        EXPECT_TRUE(ep.ok());
        if (!ep.ok()) co_return;
        auto c = co_await apps::recv_and_wait(bed->ctx(1), ep.value, 0, 64);
        EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        ++*served;
      }
    }
  };
  struct Client {
    static sim::Task<void> run(fabric::Testbed* bed, std::size_t idx) {
      auto conn = co_await apps::cm::connect(bed->ctx(idx),
                                             bed->instance_vip(1), 4791);
      EXPECT_TRUE(conn.ok());
      if (!conn.ok()) co_return;
      auto wc = co_await apps::send_and_wait(bed->ctx(idx),
                                             conn.value.endpoint, 0, 8);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    }
  };
  int served = 0;
  loop_.spawn(Server::run(bed_.get(), &served));
  // Clients 0, 2, 3 (instance 1 is the server).
  loop_.spawn(Client::run(bed_.get(), 0));
  loop_.spawn(Client::run(bed_.get(), 2));
  loop_.spawn(Client::run(bed_.get(), 3));
  loop_.run();
  EXPECT_EQ(served, kClients);
}

TEST_P(CmTest, RejectDeliversReasonAndCreatesNothing) {
  const auto qps_before = bed_->device(0).num_qps() +
                          bed_->device(1).num_qps();
  struct Server {
    static sim::Task<void> run(fabric::Testbed* bed) {
      apps::cm::Listener listener(bed->ctx(1), 4791);
      auto req = co_await listener.get_request();
      co_await listener.reject(req, blob("not today"));
    }
  };
  struct Client {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto conn = co_await apps::cm::connect(bed->ctx(0),
                                             bed->instance_vip(1), 4791);
      EXPECT_FALSE(conn.ok());
      EXPECT_EQ(conn.status, rnic::Status::kPermissionDenied);
    }
  };
  loop_.spawn(Server::run(bed_.get()));
  loop_.spawn(Client::run(bed_.get()));
  loop_.run();
  // The server side created no QP; the client cleaned its own up.
  EXPECT_EQ(bed_->device(0).num_qps() + bed_->device(1).num_qps(),
            qps_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllCandidates, CmTest,
    ::testing::Values(Candidate::kHostRdma, Candidate::kSriov,
                      Candidate::kFreeFlow, Candidate::kMasq),
    [](const ::testing::TestParamInfo<Candidate>& info) {
      std::string n = fabric::to_string(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(CmSecurityTest, BlockedHandshakeNeverReachesTheListener) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = Candidate::kMasq;
  cfg.cal.host_dram_bytes = 8ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  bed.policy(100)
      .security_group(bed.instance_vip(1), overlay::Chain::kInput)
      .add_rule(overlay::Rule::deny(net::Ipv4Cidr::any(),
                                    net::Ipv4Cidr::any(),
                                    overlay::Proto::kTcp, 800));
  struct Client {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto conn = co_await apps::cm::connect(bed->ctx(0),
                                             bed->instance_vip(1), 4791);
      EXPECT_FALSE(conn.ok());
      EXPECT_EQ(conn.status, rnic::Status::kPermissionDenied);
    }
  };
  loop.spawn(Client::run(&bed));
  loop.run();
  EXPECT_GE(bed.vnet().messages_blocked(), 1u);
}

}  // namespace
