// Validates the perftest clone against the paper's Fig. 8-11 shapes:
// latency ordering across candidates, bandwidth saturation, multi-QP
// aggregate stability, and rate-limiting accuracy.
#include <gtest/gtest.h>

#include <memory>

#include "apps/perftest.h"
#include "fabric/testbed.h"

namespace {

using apps::perftest::BwConfig;
using apps::perftest::LatConfig;
using apps::perftest::Op;
using fabric::Candidate;

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop, Candidate c,
                                          int instances = 2,
                                          bool masq_pf = false) {
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.masq_use_pf = masq_pf;
  cfg.cal.host_dram_bytes = 32ull << 30;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(instances);
  return bed;
}

double send_lat_us(Candidate c, Op op, std::uint32_t size = 2,
                   bool masq_pf = false) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, c, 2, masq_pf);
  LatConfig cfg;
  cfg.op = op;
  cfg.msg_size = size;
  cfg.iterations = 200;
  return apps::perftest::run_lat(*bed, cfg).mean();
}

TEST(PerftestLat, HostSendLatencyMatchesFig8a) {
  const double us = send_lat_us(Candidate::kHostRdma, Op::kSend);
  EXPECT_GT(us, 0.6);
  EXPECT_LT(us, 1.0);  // paper: 0.8 us
}

TEST(PerftestLat, HostWriteCheaperThanSend) {
  const double w = send_lat_us(Candidate::kHostRdma, Op::kWrite);
  const double s = send_lat_us(Candidate::kHostRdma, Op::kSend);
  EXPECT_LT(w, s);  // paper: 0.7 vs 0.8 us
  EXPECT_GT(w, 0.5);
}

TEST(PerftestLat, MasqAndSriovMatchEachOther) {
  const double m = send_lat_us(Candidate::kMasq, Op::kSend);
  const double s = send_lat_us(Candidate::kSriov, Op::kSend);
  EXPECT_NEAR(m, s, 0.15);  // Fig. 8a: identical bars
  EXPECT_GT(m, 0.9);
  EXPECT_LT(m, 1.35);  // paper: 1.1 us
}

TEST(PerftestLat, FreeflowSendRoughlyTwoPointSix) {
  const double f = send_lat_us(Candidate::kFreeFlow, Op::kSend);
  const double h = send_lat_us(Candidate::kHostRdma, Op::kSend);
  EXPECT_GT(f / h, 2.0);  // paper: ~2.6x Host-RDMA
  EXPECT_LT(f / h, 3.3);
}

TEST(PerftestLat, MasqOnPfMatchesHost) {
  const double pf = send_lat_us(Candidate::kMasq, Op::kSend, 2, true);
  const double host = send_lat_us(Candidate::kHostRdma, Op::kSend);
  EXPECT_NEAR(pf, host, 0.1);  // Fig. 9a
}

TEST(PerftestLat, SixteenKilobyteLatencyDominatedBySerialization) {
  const double us = send_lat_us(Candidate::kHostRdma, Op::kSend, 16384);
  EXPECT_GT(us, 3.0);
  EXPECT_LT(us, 7.0);  // paper: ~5.2 us
}

TEST(PerftestBw, LargeMessagesSaturateLine) {
  for (Candidate c : {Candidate::kHostRdma, Candidate::kSriov,
                      Candidate::kMasq}) {
    sim::EventLoop loop;
    auto bed = make_bed(loop, c);
    BwConfig cfg;
    cfg.msg_size = 65536;
    cfg.iterations = 256;
    const double gbps = apps::perftest::run_bw(*bed, cfg);
    EXPECT_GT(gbps, 35.0) << fabric::to_string(c);
    EXPECT_LE(gbps, 40.0) << fabric::to_string(c);
  }
}

TEST(PerftestBw, FreeflowSmallMessagesThrottledByFfr) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, Candidate::kFreeFlow);
  BwConfig cfg;
  cfg.op = Op::kWrite;
  cfg.msg_size = 2048;
  cfg.iterations = 512;
  const double ff = apps::perftest::run_bw(*bed, cfg);

  sim::EventLoop loop2;
  auto bed2 = make_bed(loop2, Candidate::kMasq);
  const double masq = apps::perftest::run_bw(*bed2, cfg);
  EXPECT_LT(ff, masq * 0.8);  // Fig. 10: FreeFlow below until ~8 KB
}

TEST(PerftestBw, MasqSmallMessagesMatchHost) {
  BwConfig cfg;
  cfg.op = Op::kWrite;
  cfg.msg_size = 2048;
  cfg.iterations = 512;
  sim::EventLoop l1, l2;
  auto b1 = make_bed(l1, Candidate::kMasq);
  auto b2 = make_bed(l2, Candidate::kHostRdma);
  const double masq = apps::perftest::run_bw(*b1, cfg);
  const double host = apps::perftest::run_bw(*b2, cfg);
  EXPECT_NEAR(masq, host, host * 0.1);
}

TEST(PerftestBw, MultiQpAggregateStaysAtLineRate) {
  // Fig. 11: 1 -> many QPs, aggregate unchanged.
  double one_qp = 0;
  for (int qps : {1, 16, 128}) {
    sim::EventLoop loop;
    auto bed = make_bed(loop, Candidate::kMasq);
    BwConfig cfg;
    cfg.msg_size = 65536;
    cfg.num_qps = qps;
    cfg.iterations = std::max(8, 256 / qps);
    const double gbps = apps::perftest::run_bw(*bed, cfg);
    if (qps == 1) {
      one_qp = gbps;
    } else {
      EXPECT_NEAR(gbps, one_qp, one_qp * 0.1) << qps << " QPs";
    }
  }
}

TEST(PerftestBw, PairsShareTheLineFairly) {
  // Fig. 19 building block: 4 VM pairs share 40 Gbps.
  sim::EventLoop loop;
  auto bed = make_bed(loop, Candidate::kMasq, 8);
  BwConfig cfg;
  cfg.msg_size = 65536;
  cfg.iterations = 64;
  const double aggregate = apps::perftest::run_bw_pairs(*bed, 4, cfg);
  EXPECT_GT(aggregate, 34.0);
  EXPECT_LE(aggregate, 40.0);
}

}  // namespace
