// Warm-path connection setup (DESIGN.md §14) and the control-path bugfix
// sweep that rode along with it.
//
// What the suite proves:
//   * a disabled pool is invisible: acquire_warm() answers kCold and the
//     classic flow runs unmodified;
//   * the pooled and reused rungs cut end-to-end connection setup by the
//     advertised factor (>= 5x for a reused pair vs the cold ladder);
//   * lazy teardown really is lazy: a disconnect parks the endpoint (no
//     destroy on the wire), and only the idle reclaim tears it down;
//   * under chaos — a forced command-failure window killing the staging
//     batch, a FaultPlane-scheduled QP ERROR on a parked endpoint, and an
//     SDN controller outage mid-refill — the pool degrades to the cold
//     path and recovers, with the QP-FSM / RConntrack auditors live the
//     whole run;
//   * three control-path regressions stay fixed: destroy_qp keeps its UD
//     routing entry when the command fails, a failed batch entry reports a
//     zeroed result value, and the batch round-trip share distribution
//     loses no nanoseconds to integer division.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "masq/frontend.h"
#include "masq/warm_pool.h"
#include "rnic/device.h"

using namespace sim::literals;

namespace {

masq::MasqContext& masq_ctx(fabric::Testbed& bed, std::size_t i) {
  return static_cast<masq::MasqContext&>(bed.ctx(i));
}

struct BedOpts {
  bool warm = false;
  sim::Time reclaim_after = 0;  // 0 = keep the pool default
  sim::FaultConfig faults;
  std::uint64_t seed = 1;
  bool check = false;
};

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop, BedOpts o) {
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  cfg.masq_warm.enabled = o.warm;
  if (o.reclaim_after > 0) cfg.masq_warm.reclaim_after = o.reclaim_after;
  cfg.faults = std::move(o.faults);
  cfg.fault_seed = o.seed;
  cfg.check_invariants = o.check;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(2);
  return bed;
}

// One client-side churn cycle: warm connect, record (kind, duration),
// disconnect. The server side is driven by serve_cycles() on the peer.
struct Cycle {
  verbs::WarmKind kind = verbs::WarmKind::kCold;
  sim::Time dur = 0;
  rnic::Status status = rnic::Status::kOk;
};

sim::Task<void> serve_cycles(fabric::Testbed* bed, std::size_t n,
                             std::uint16_t port) {
  for (std::size_t i = 0; i < n; ++i) {
    apps::WarmConn conn;
    const auto st = co_await apps::warm_connect_server(
        bed->ctx(1), conn, bed->instance_vip(0), port);
    EXPECT_EQ(st, rnic::Status::kOk) << "server cycle " << i;
    co_await apps::warm_disconnect(bed->ctx(1), conn);
  }
}

sim::Task<void> client_cycles(fabric::Testbed* bed, std::size_t n,
                              std::uint16_t port, sim::Time think,
                              std::vector<Cycle>* out) {
  for (std::size_t i = 0; i < n; ++i) {
    apps::WarmConn conn;
    const sim::Time t0 = bed->loop().now();
    const auto st = co_await apps::warm_connect_client(
        bed->ctx(0), conn, bed->instance_vip(1), port);
    out->push_back({conn.kind, bed->loop().now() - t0, st});
    co_await apps::warm_disconnect(bed->ctx(0), conn);
    if (think > 0) co_await sim::delay(bed->loop(), think);
  }
}

// ------------------------------------------------------- disabled pool

TEST(WarmTest, DisabledPoolActsCold) {
  // Default config: no pool object exists at all, acquire_warm() answers
  // kCold, and the warm_connect helpers collapse to the classic ladder.
  sim::EventLoop loop;
  auto bed = make_bed(loop, {});
  EXPECT_EQ(masq_ctx(*bed, 0).warm_pool(), nullptr);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      const auto ep = co_await bed->ctx(0).acquire_warm(
          net::Gid::from_ipv4(bed->instance_vip(1)));
      EXPECT_EQ(ep.kind, verbs::WarmKind::kCold);
      *finished = true;
    }
  };
  bool finished = false;
  std::vector<Cycle> cycles;
  loop.spawn(serve_cycles(bed.get(), 1, 7300));
  loop.spawn(client_cycles(bed.get(), 1, 7300, 0, &cycles));
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].status, rnic::Status::kOk);
  EXPECT_EQ(cycles[0].kind, verbs::WarmKind::kCold);
}

// ------------------------------------------- warm rungs vs cold ladder

TEST(WarmTest, PooledAndReusedCutSetupLatency) {
  // Cold baseline: the same churn-cycle protocol on a pool-less bed.
  sim::Time cold = 0;
  {
    sim::EventLoop loop;
    auto bed = make_bed(loop, {});
    std::vector<Cycle> cycles;
    loop.spawn(serve_cycles(bed.get(), 1, 7310));
    loop.spawn(client_cycles(bed.get(), 1, 7310, 0, &cycles));
    loop.run();
    ASSERT_EQ(cycles.size(), 1u);
    ASSERT_EQ(cycles[0].status, rnic::Status::kOk);
    cold = cycles[0].dur;
    ASSERT_GT(cold, 0);
  }

  // Warm bed: after the pool stages, a returning peer rides the reused
  // rung — one OOB hello round, no verbs — and later cycles must beat the
  // cold ladder by the acceptance factor.
  sim::EventLoop loop;
  BedOpts o;
  o.warm = true;
  auto bed = make_bed(loop, o);
  std::vector<Cycle> cycles;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, std::vector<Cycle>* out) {
      // Let the staging task (PD + slab MR) and first refills land — each
      // pre-built endpoint pays the real Table 1 verb costs (~1 ms).
      co_await sim::delay(bed->loop(), 10_ms);
      co_await client_cycles(bed, 4, 7311, 200_us, out);
    }
  };
  loop.spawn(serve_cycles(bed.get(), 4, 7311));
  loop.spawn(Run::go(bed.get(), &cycles));
  loop.run();

  ASSERT_EQ(cycles.size(), 4u);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    EXPECT_EQ(cycles[i].status, rnic::Status::kOk) << "cycle " << i;
  }
  // The first cycle may land on any rung (pool warm-up); every later one
  // reconnects to a peer both sides just parked, so it must be reused.
  for (std::size_t i = 1; i < cycles.size(); ++i) {
    EXPECT_EQ(cycles[i].kind, verbs::WarmKind::kReused) << "cycle " << i;
  }
  const sim::Time reused = cycles.back().dur;
  EXPECT_GE(cold, 5 * reused)
      << "cold " << cold << " ns vs reused " << reused << " ns";

  masq::WarmPool* pool = masq_ctx(*bed, 0).warm_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_TRUE(pool->staged());
  EXPECT_GE(pool->reuse_hits(), 2u);
  EXPECT_GE(pool->refills(), 1u);
}

// ------------------------------------------------ lazy teardown/reclaim

TEST(WarmTest, LazyTeardownParksThenReclaims) {
  sim::EventLoop loop;
  BedOpts o;
  o.warm = true;
  o.reclaim_after = 2_ms;
  auto bed = make_bed(loop, o);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      // Staging + the first refill ladders pay real Table 1 verb costs
      // (~1 ms per pre-built endpoint), so give the pool time to come up.
      co_await sim::delay(bed->loop(), 10_ms);
      masq::MasqContext& ctx = masq_ctx(*bed, 0);
      masq::WarmPool* pool = ctx.warm_pool();
      EXPECT_NE(pool, nullptr);
      if (pool == nullptr) co_return;
      EXPECT_TRUE(pool->staged());
      EXPECT_GE(pool->ready_size(), 1u);

      apps::WarmConn conn;
      const auto st = co_await apps::warm_connect_client(
          bed->ctx(0), conn, bed->instance_vip(1), 7320);
      EXPECT_EQ(st, rnic::Status::kOk);
      EXPECT_TRUE(conn.warm.warm());
      co_await apps::warm_disconnect(bed->ctx(0), conn);

      // Disconnect parked the endpoint instead of destroying it: the QP is
      // still live on the backend and queued for the idle reclaim.
      EXPECT_EQ(pool->parked_size(), 1u);
      EXPECT_EQ(pool->reclaimed(), 0u);
      const std::uint64_t destroyed0 = ctx.session().qps_destroyed();

      // Idle past reclaim_after: the reclaim fires and the background
      // teardown actually destroys the parked QP.
      co_await sim::delay(bed->loop(), 10_ms);
      EXPECT_GE(pool->reclaimed(), 1u);
      EXPECT_EQ(pool->parked_size(), 0u);
      EXPECT_GT(ctx.session().qps_destroyed(), destroyed0);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(serve_cycles(bed.get(), 1, 7320));
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// -------------------------------------------------- chaos: degrade/recover

TEST(WarmTest, PoolDegradesToColdUnderChaos) {
  // Three faults against a warm bed, auditors armed the whole run:
  //   1. a forced command-failure window at t=0 kills the staging batch —
  //      acquire answers kCold and the cold ladder still connects;
  //   2. a FaultPlane-scheduled QP ERROR on the parked pair purges it from
  //      the pool (and the next reconnect takes the downgrade path);
  //   3. an SDN controller outage lands mid-refill — pool verbs do not
  //      touch the controller, and a connect between cached peers still
  //      succeeds in degraded mode.
  sim::EventLoop loop;
  BedOpts o;
  o.warm = true;
  o.seed = 3;
  o.check = true;
  o.faults.sdn_outages.push_back({100_ms, 105_ms});
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->faults(), nullptr);
  ASSERT_NE(bed->checks(), nullptr);
  bed->faults()->set_force_cmd_failures(true);

  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      masq::MasqContext& ctx = masq_ctx(*bed, 0);
      masq::WarmPool* pool = ctx.warm_pool();
      EXPECT_NE(pool, nullptr);
      if (pool == nullptr) co_return;

      // 1. Staging's reg_mr exhausts its retry budget against the forced
      // failures; the pool stays cold rather than wedged.
      co_await sim::delay(bed->loop(), 2_ms);
      EXPECT_FALSE(pool->staged());
      bed->faults()->set_force_cmd_failures(false);

      const net::Gid peer_gid = net::Gid::from_ipv4(bed->instance_vip(1));
      const auto probe = co_await ctx.acquire_warm(peer_gid);
      EXPECT_EQ(probe.kind, verbs::WarmKind::kCold);  // degraded answer

      apps::WarmConn c1;
      auto st = co_await apps::warm_connect_client(bed->ctx(0), c1,
                                                   bed->instance_vip(1), 7330);
      EXPECT_EQ(st, rnic::Status::kOk);
      EXPECT_EQ(c1.kind, verbs::WarmKind::kCold);
      co_await apps::warm_disconnect(bed->ctx(0), c1);

      // Recovery: the acquire above re-kicked staging; with the fault
      // window over the pool comes up for real.
      co_await sim::delay(bed->loop(), 3_ms);
      EXPECT_TRUE(pool->staged());
      EXPECT_GE(pool->ready_size(), 1u);

      apps::WarmConn c2;
      st = co_await apps::warm_connect_client(bed->ctx(0), c2,
                                              bed->instance_vip(1), 7330);
      EXPECT_EQ(st, rnic::Status::kOk);
      EXPECT_EQ(c2.kind, verbs::WarmKind::kPooled);
      const rnic::Qpn victim = c2.qpn;
      co_await apps::warm_disconnect(bed->ctx(0), c2);
      EXPECT_EQ(pool->parked_size(), 1u);

      // 2. Kill the parked QP through the FaultPlane schedule; the device
      // hook must purge it from the pool.
      bed->faults()->inject_qp_error_at(bed->loop().now() + 500_us, victim,
                                        [bed, victim] {
                                          rnic::QpAttr attr;
                                          attr.state = rnic::QpState::kError;
                                          (void)bed->device(0).modify_qp(
                                              victim, attr, rnic::kAttrState);
                                        });
      co_await sim::delay(bed->loop(), 1_ms);
      EXPECT_GE(pool->purged(), 1u);
      EXPECT_EQ(pool->parked_size(), 0u);

      // 3. Reconnect during the controller outage: the client's parked
      // half is gone (purged), the server's is stale (wired to the dead
      // QP) — both sides downgrade cleanly, and the cached peer mapping
      // carries the connect through the outage.
      co_await sim::delay(bed->loop(), 101_ms - bed->loop().now());
      apps::WarmConn c3;
      st = co_await apps::warm_connect_client(bed->ctx(0), c3,
                                              bed->instance_vip(1), 7330);
      EXPECT_EQ(st, rnic::Status::kOk);
      EXPECT_EQ(c3.kind, verbs::WarmKind::kPooled);
      co_await apps::warm_disconnect(bed->ctx(0), c3);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(serve_cycles(bed.get(), 3, 7330));
  loop.spawn(Run::go(bed.get(), &finished));
  // Auditors run every check_audit_every events; a QP-FSM or RConntrack
  // violation throws out of run() and fails the test.
  loop.run();
  EXPECT_TRUE(finished);
  EXPECT_GT(bed->faults()->faults_fired(), 0u) << bed->faults()->dump_log();
}

// ----------------------------------------- bugfix: destroy_qp UD routing

TEST(WarmTest, DestroyQpFailureKeepsUdRouting) {
  // Regression: destroy_qp used to erase the QP's entry from the UD
  // routing table even when the command failed. A later retry would then
  // see the (still live) UD QP as RC and push its WQEs down the data path,
  // bypassing RConnrename (§3.3.4).
  sim::EventLoop loop;
  BedOpts o;
  o.seed = 11;
  // Far-future zero-length window: builds the fault plane without firing.
  o.faults.sdn_outages.push_back({sim::seconds(1), sim::seconds(1)});
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->faults(), nullptr);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      masq::MasqContext& ctx = masq_ctx(*bed, 0);
      apps::EndpointOptions opts;
      opts.type = rnic::QpType::kUd;
      auto ep = co_await apps::setup_endpoint(bed->ctx(0), opts);
      EXPECT_EQ(ctx.ud_control_sends(), 0u);

      bed->faults()->set_force_cmd_failures(true);
      const auto st = co_await ctx.destroy_qp(ep.qp);
      EXPECT_NE(st, rnic::Status::kOk);  // retries exhausted, QP survives
      bed->faults()->set_force_cmd_failures(false);

      // The failed destroy must NOT have dropped the routing entry: a UD
      // post_send still takes the control path.
      rnic::SendWr wr;
      wr.sge = {ep.buf, 64, ep.mr.lkey};
      wr.ud.gid = net::Gid::from_ipv4(bed->instance_vip(1));
      wr.ud.qpn = 1;
      EXPECT_EQ(ctx.post_send(ep.qp, wr), rnic::Status::kOk);
      EXPECT_EQ(ctx.ud_control_sends(), 1u);

      // A clean destroy still works and erases the entry for real.
      EXPECT_EQ(co_await ctx.destroy_qp(ep.qp), rnic::Status::kOk);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// ------------------------------------------ bugfix: batch result zeroing

TEST(WarmTest, BatchFailedEntryZeroesValue) {
  // Regression: MasqBatch::record copied the response's v0 into the
  // entry's result value even when the entry failed, so callers reading
  // value() on a failed slot saw stale/garbage handles instead of 0.
  sim::EventLoop loop;
  BedOpts o;
  o.seed = 13;
  o.faults.sdn_outages.push_back({sim::seconds(1), sim::seconds(1)});
  auto bed = make_bed(loop, o);
  ASSERT_NE(bed->faults(), nullptr);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      // A batch whose entries all fail transiently until the retry budget
      // is gone: every slot must report a failure AND a zeroed value.
      bed->faults()->set_force_cmd_failures(true);
      auto failing = bed->ctx(0).make_batch();
      const int cq_slot = failing->create_cq(256);
      const auto st = co_await failing->commit();
      EXPECT_NE(st, rnic::Status::kOk);
      EXPECT_NE(failing->status(cq_slot), rnic::Status::kOk);
      EXPECT_EQ(failing->value(cq_slot), 0u);
      bed->faults()->set_force_cmd_failures(false);

      // Mixed batch, permanent per-entry error: the good entry keeps its
      // handle, the bad one reports kNotFound with value 0.
      auto mixed = bed->ctx(0).make_batch();
      const int good = mixed->create_cq(256);
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      const int bad = mixed->modify_qp(999999, attr, rnic::kAttrState);
      (void)co_await mixed->commit();
      EXPECT_EQ(mixed->status(good), rnic::Status::kOk);
      EXPECT_NE(mixed->value(good), 0u);
      EXPECT_EQ(mixed->status(bad), rnic::Status::kNotFound);
      EXPECT_EQ(mixed->value(bad), 0u);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

// -------------------------------------- bugfix: batch round-trip shares

TEST(WarmTest, BatchRoundTripShareSumsExact) {
  // Regression: the per-entry virtqueue share was round_trip/n with plain
  // integer division, silently dropping up to n-1 ns per chunk from the
  // profile. The remainder is now distributed across the first entries,
  // so the per-layer total equals the charged round trip exactly.
  sim::EventLoop loop;
  auto bed = make_bed(loop, {});
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, bool* finished) {
      masq::MasqContext& ctx = masq_ctx(*bed, 0);
      const sim::Time rt = ctx.virtqueue().costs().round_trip();
      EXPECT_NE(rt % 3, 0) << "pick an entry count that exercises the "
                              "remainder distribution";
      ctx.profile().clear();
      auto batch = bed->ctx(0).make_batch();
      batch->create_cq(64);
      batch->create_cq(64);
      batch->create_cq(64);
      EXPECT_EQ(co_await batch->commit(), rnic::Status::kOk);
      // Three same-verb entries, one virtqueue transit: the three shares
      // accumulate in one bucket and must reconstruct the round trip to
      // the nanosecond.
      EXPECT_EQ(ctx.profile().by_layer("create_cq", verbs::Layer::kVirtio),
                rt);
      *finished = true;
    }
  };
  bool finished = false;
  loop.spawn(Run::go(bed.get(), &finished));
  loop.run();
  EXPECT_TRUE(finished);
}

}  // namespace
