// Mini-MPI tests: point-to-point ordering and integrity, chunked large
// messages, collectives (binomial bcast, recursive-doubling allreduce on
// power-of-two and odd rank counts), alltoallv, co-located ranks, and the
// OSU benchmark shapes across candidates (Fig. 13/14).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "apps/minimpi.h"
#include "fabric/testbed.h"

namespace {

using apps::mpi::Comm;
using fabric::Candidate;

struct Rig {
  sim::EventLoop loop;
  std::unique_ptr<fabric::Testbed> bed;
  std::unique_ptr<Comm> comm;

  // `ranks` maps each MPI rank to an instance; instances are created on
  // demand (round-robin across 2 hosts).
  Rig(Candidate c, std::vector<std::size_t> ranks, int instances) {
    fabric::TestbedConfig cfg;
    cfg.candidate = c;
    cfg.cal.host_dram_bytes = 48ull << 30;
    cfg.cal.vm_mem_bytes = 8ull << 30;  // MPI buffers need room
    bed = std::make_unique<fabric::Testbed>(loop, cfg);
    bed->add_instances(instances);
    struct Maker {
      static sim::Task<void> run(Rig* rig, std::vector<std::size_t> ranks) {
        rig->comm = co_await Comm::create(*rig->bed, std::move(ranks));
      }
    };
    loop.spawn(Maker::run(this, std::move(ranks)));
    loop.run();
    if (!comm) throw std::runtime_error("comm creation failed");
  }

  void run(sim::Task<void> t) {
    loop.spawn(std::move(t));
    loop.run();
  }
};

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(MpiTest, PointToPointDeliversInOrder) {
  Rig rig(Candidate::kMasq, {0, 1}, 2);
  auto scenario = [](Rig& r) -> sim::Task<void> {
    auto a = bytes({1, 2, 3});
    auto b = bytes({4, 5});
    co_await r.comm->send(0, 1, a);
    co_await r.comm->send(0, 1, b);
    auto m1 = co_await r.comm->recv(1, 0);
    auto m2 = co_await r.comm->recv(1, 0);
    EXPECT_EQ(m1, bytes({1, 2, 3}));
    EXPECT_EQ(m2, bytes({4, 5}));
  };
  rig.run(scenario(rig));
}

TEST(MpiTest, LargeMessageIsChunkedAndReassembled) {
  Rig rig(Candidate::kMasq, {0, 1}, 2);
  auto scenario = [](Rig& r) -> sim::Task<void> {
    std::vector<std::uint8_t> big(300 * 1024);  // > 64 KiB chunk capacity
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(i * 7);
    }
    std::vector<std::uint8_t> got;
    co_await r.comm->transfer(0, 1, big, &got);
    EXPECT_EQ(got, big);
  };
  rig.run(scenario(rig));
}

TEST(MpiTest, CoLocatedRanksUseLocalChannel) {
  // Ranks 0 and 1 on the same instance.
  Rig rig(Candidate::kMasq, {0, 0}, 1);
  auto scenario = [](Rig& r) -> sim::Task<void> {
    const sim::Time t0 = r.loop.now();
    std::vector<std::uint8_t> got;
    auto payload = bytes({9, 9});
    co_await r.comm->transfer(0, 1, payload, &got);
    EXPECT_EQ(got, payload);
    EXPECT_LT(r.loop.now() - t0, sim::microseconds(5));  // no NIC involved
  };
  rig.run(scenario(rig));
}

TEST(MpiTest, BroadcastReachesAllRanks) {
  Rig rig(Candidate::kMasq, {0, 1, 0, 1, 0, 1}, 2);  // 6 ranks on 2 VMs
  auto scenario = [](Rig& r) -> sim::Task<void> {
    std::vector<std::vector<std::uint8_t>> data;
    auto payload = bytes({42, 43, 44});
    co_await r.comm->bcast(2, payload, &data);
    for (int rank = 0; rank < r.comm->size(); ++rank) {
      EXPECT_EQ(data[static_cast<std::size_t>(rank)], bytes({42, 43, 44}))
          << "rank " << rank;
    }
  };
  rig.run(scenario(rig));
}

class MpiAllreduceTest : public ::testing::TestWithParam<int> {};

TEST_P(MpiAllreduceTest, SumsCorrectlyForAnyRankCount) {
  const int n = GetParam();
  std::vector<std::size_t> mapping;
  for (int i = 0; i < n; ++i) mapping.push_back(i % 2);
  Rig rig(Candidate::kHostRdma, mapping, 2);
  auto scenario = [n](Rig& r) -> sim::Task<void> {
    std::vector<std::vector<std::int64_t>> data;
    for (int rank = 0; rank < n; ++rank) {
      data.push_back({rank + 1, 10 * (rank + 1)});
    }
    co_await r.comm->allreduce_sum(&data);
    const std::int64_t expect1 = n * (n + 1) / 2;
    for (int rank = 0; rank < n; ++rank) {
      EXPECT_EQ(data[static_cast<std::size_t>(rank)][0], expect1);
      EXPECT_EQ(data[static_cast<std::size_t>(rank)][1], 10 * expect1);
    }
  };
  rig.run(scenario(rig));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiAllreduceTest,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(MpiTest, AlltoallvExchangesPersonalizedBuffers) {
  Rig rig(Candidate::kMasq, {0, 1, 0, 1}, 2);
  const int n = 4;
  auto scenario = [n](Rig& r) -> sim::Task<void> {
    std::vector<std::vector<std::vector<std::uint8_t>>> buffers(
        n, std::vector<std::vector<std::uint8_t>>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        buffers[i][j] = bytes({i * 10 + j});
      }
    }
    std::vector<std::vector<std::vector<std::uint8_t>>> received;
    co_await r.comm->alltoallv(buffers, &received);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(received[j][i], bytes({i * 10 + j}))
            << "i=" << i << " j=" << j;
      }
    }
  };
  rig.run(scenario(rig));
}

TEST(MpiTest, BarrierCompletes) {
  Rig rig(Candidate::kMasq, {0, 1, 0, 1}, 2);
  auto scenario = [](Rig& r) -> sim::Task<void> {
    co_await r.comm->barrier();
  };
  rig.run(scenario(rig));
}

// ---- OSU shapes (Fig. 13/14) ----------------------------------------------

double osu_lat(Candidate c, std::uint32_t size) {
  Rig rig(c, {0, 1}, 2);
  return apps::mpi::osu_latency(*rig.bed, *rig.comm, size, 100).mean();
}

TEST(OsuTest, MasqMatchesSriovPointToPoint) {
  const double m = osu_lat(Candidate::kMasq, 4);
  const double s = osu_lat(Candidate::kSriov, 4);
  EXPECT_NEAR(m, s, 0.2);  // Fig. 13a: identical bars
  const double h = osu_lat(Candidate::kHostRdma, 4);
  EXPECT_LT(h, m);  // host slightly better
  const double f = osu_lat(Candidate::kFreeFlow, 4);
  EXPECT_GT(f, m);  // FreeFlow worst
}

TEST(OsuTest, BandwidthSaturatesForLargeMessages) {
  Rig rig(Candidate::kMasq, {0, 1}, 2);
  const double gbps = apps::mpi::osu_bw(*rig.bed, *rig.comm, 131072, 128);
  EXPECT_GT(gbps, 30.0);
  EXPECT_LE(gbps, 40.0);
}

TEST(OsuTest, CollectiveLatencyGrowsWithMessageSize) {
  Rig rig(Candidate::kMasq, {0, 1}, 2);
  const double small = apps::mpi::osu_bcast(*rig.bed, *rig.comm, 4, 20);
  const double large = apps::mpi::osu_bcast(*rig.bed, *rig.comm, 16384, 20);
  EXPECT_GT(large, small);
  const double ar = apps::mpi::osu_allreduce(*rig.bed, *rig.comm, 1024, 20);
  EXPECT_GT(ar, 0.0);
}

}  // namespace
