// Cross-candidate sweep invariants: properties the paper's evaluation
// implies must hold at *every* operating point, checked over a grid of
// (candidate x message size x operation) rather than at single points —
// latency monotonicity in size, the candidate ordering, bandwidth
// monotonicity, and conservation of the candidate ranking under load.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>

#include "apps/common.h"
#include "apps/perftest.h"
#include "fabric/scale.h"
#include "fabric/testbed.h"
#include "net/topology.h"

namespace {

using fabric::Candidate;

// A 1-leaf fabric whose links match the wire's 40 G calibration: every
// added hop duplicates an existing constraint, so progressive filling must
// assign bit-identical rates (net/topology.h's degenerate-equivalence
// argument). The tests below hold the repo to "must".
net::FabricConfig degenerate_fabric() {
  net::FabricConfig fc;
  fc.leaves = 1;
  fc.spines = 1;
  fc.host_gbps = 40.0;  // == TestbedConfig::cal.link_gbps
  fc.spine_gbps = 40.0;
  return fc;
}

double lat_us(Candidate c, apps::perftest::Op op, std::uint32_t size,
              std::optional<net::FabricConfig> topo = std::nullopt) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.topology = topo;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  apps::perftest::LatConfig lc;
  lc.op = op;
  lc.msg_size = size;
  lc.iterations = 60;
  return apps::perftest::run_lat(bed, lc).mean();
}

double bw_gbps(Candidate c, std::uint32_t size,
               std::optional<net::FabricConfig> topo = std::nullopt) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.topology = topo;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  apps::perftest::BwConfig bc;
  bc.op = apps::perftest::Op::kWrite;
  bc.msg_size = size;
  bc.iterations = 192;
  return apps::perftest::run_bw(bed, bc);
}

// ---- latency grid --------------------------------------------------------

using LatPoint = std::tuple<Candidate, int /*op*/, std::uint32_t /*size*/>;

class LatencyGridTest : public ::testing::TestWithParam<LatPoint> {};

TEST_P(LatencyGridTest, HostIsTheFloorAndSizeCostsMore) {
  const auto [c, op_i, size] = GetParam();
  const auto op = static_cast<apps::perftest::Op>(op_i);
  const double mine = lat_us(c, op, size);
  // Host-RDMA is the performance floor at every point (Fig. 8/9).
  if (c != Candidate::kHostRdma) {
    const double host = lat_us(Candidate::kHostRdma, op, size);
    EXPECT_GE(mine, host - 0.02)
        << fabric::to_string(c) << " beat bare metal at size " << size;
  }
  // Latency grows with message size on the same candidate.
  if (size > 2) {
    const double smaller = lat_us(c, op, size / 8);
    EXPECT_GE(mine, smaller - 0.02)
        << fabric::to_string(c) << " latency not monotone at " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LatencyGridTest,
    ::testing::Combine(
        ::testing::Values(Candidate::kHostRdma, Candidate::kSriov,
                          Candidate::kFreeFlow, Candidate::kMasq),
        ::testing::Values(0, 1),  // send, write
        ::testing::Values(2u, 256u, 4096u)),
    [](const ::testing::TestParamInfo<LatPoint>& info) {
      std::string n = fabric::to_string(std::get<0>(info.param));
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n + (std::get<1>(info.param) == 0 ? "Send" : "Write") +
             std::to_string(std::get<2>(info.param)) + "B";
    });

// ---- bandwidth grid ------------------------------------------------------

class BandwidthGridTest : public ::testing::TestWithParam<Candidate> {};

TEST_P(BandwidthGridTest, ThroughputMonotoneAndBounded) {
  const Candidate c = GetParam();
  double prev = 0;
  for (std::uint32_t size : {512u, 4096u, 32768u}) {
    const double g = bw_gbps(c, size);
    EXPECT_GE(g, prev * 0.98)
        << fabric::to_string(c) << " throughput dipped at " << size;
    EXPECT_LE(g, 40.0 + 1e-6);  // never exceeds the physical line
    prev = g;
  }
  // Everyone saturates within 15% of line rate by 32 KB (Fig. 10).
  EXPECT_GT(prev, 34.0) << fabric::to_string(c);
}

INSTANTIATE_TEST_SUITE_P(AllCandidates, BandwidthGridTest,
                         ::testing::Values(Candidate::kHostRdma,
                                           Candidate::kSriov,
                                           Candidate::kFreeFlow,
                                           Candidate::kMasq),
                         [](const ::testing::TestParamInfo<Candidate>& i) {
                           std::string n = fabric::to_string(i.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

// ---- golden numbers: EXPERIMENTS.md Table 1 / Fig. 15, bit-exact ---------

// EXPERIMENTS.md records the measured per-verb call times (Table 1) and
// connection-setup totals (Fig. 15) of this simulated testbed. Those
// values are part of the repo's contract — the chapters reason from them —
// so this suite re-measures the same flow in-process and asserts equality
// at the documents' display precision. A failure here means calibration
// drifted: update the code or the document deliberately, not by accident.

struct SetupBreakdown {
  std::map<std::string, double> us;
  double total_ms = 0;
};

sim::Task<void> golden_client(fabric::Testbed* bed, SetupBreakdown* out) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto pd = co_await ctx.alloc_pd();
  const mem::Addr buf = ctx.alloc_buffer(65536);

  sim::Time t0 = loop.now();
  auto mr = co_await ctx.reg_mr(pd.value, buf, 1024, apps::kFullAccess);
  out->us["reg_mr"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto cq = co_await ctx.create_cq(200);
  out->us["create_cq"] = sim::to_us(loop.now() - t0);

  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.send_cq = cq.value;
  init.recv_cq = cq.value;
  init.caps.max_send_wr = 100;
  init.caps.max_recv_wr = 100;
  t0 = loop.now();
  auto qp = co_await ctx.create_qp(init);
  out->us["create_qp"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto gid = co_await ctx.query_gid();
  out->us["query_gid"] = sim::to_us(loop.now() - t0);

  verbs::ConnInfo info{qp.value, gid.value, buf, mr.value.rkey};
  overlay::Blob blob = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(1), 7101, blob);
  overlay::Blob reply = co_await ctx.oob().recv(7101);
  const auto peer = overlay::unpack<verbs::ConnInfo>(reply);

  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_INIT"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = peer.gid;
  attr.dest_qpn = peer.qpn;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr,
                               rnic::kAttrState | rnic::kAttrDestGid |
                                   rnic::kAttrDestQpn);
  out->us["qp_RTR"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRts;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_RTS"] = sim::to_us(loop.now() - t0);

  for (const auto& [verb, us] : out->us) out->total_ms += us / 1000.0;
}

sim::Task<void> golden_server(fabric::Testbed* bed) {
  verbs::Context& ctx = bed->ctx(1);
  auto ep = co_await apps::setup_endpoint(ctx);
  overlay::Blob blob = co_await ctx.oob().recv(7101);
  (void)blob;
  verbs::ConnInfo info{ep.qp, ep.local_gid, ep.buf, ep.mr.rkey};
  overlay::Blob reply = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(0), 7101, reply);
}

SetupBreakdown conn_setup(Candidate c,
                          std::optional<net::FabricConfig> topo = std::nullopt) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 48ull << 30;
  cfg.cal.vm_mem_bytes = 8ull << 30;
  cfg.topology = topo;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  SetupBreakdown out;
  loop.spawn(golden_server(&bed));
  loop.spawn(golden_client(&bed, &out));
  loop.run();
  return out;
}

// Rounding to the documents' display precision makes the comparison
// exact: round1(77.75) and the literal 77.8 are the same double.
double round1(double v) { return std::round(v * 10.0) / 10.0; }
double round2(double v) { return std::round(v * 100.0) / 100.0; }

TEST(GoldenNumbersTest, Fig15SetupTotalsMatchExperimentsMd) {
  EXPECT_EQ(round2(conn_setup(Candidate::kHostRdma).total_ms), 0.80);
  EXPECT_EQ(round2(conn_setup(Candidate::kFreeFlow).total_ms), 4.13);
  EXPECT_EQ(round2(conn_setup(Candidate::kSriov).total_ms), 1.89);
  EXPECT_EQ(round2(conn_setup(Candidate::kMasq).total_ms), 1.98);
}

TEST(GoldenNumbersTest, Table1HostVerbTimesMatchExperimentsMd) {
  const SetupBreakdown b = conn_setup(Candidate::kHostRdma);
  // Table 1, "measured host" column (µs).
  EXPECT_EQ(round1(b.us.at("reg_mr")), 77.8);
  EXPECT_EQ(round1(b.us.at("create_cq")), 255.6);
  EXPECT_EQ(round1(b.us.at("create_qp")), 76.0);
  EXPECT_EQ(round1(b.us.at("query_gid")), 22.0);
  EXPECT_EQ(round1(b.us.at("qp_INIT")), 231.0);
  EXPECT_EQ(round1(b.us.at("qp_RTR")), 62.0);
  EXPECT_EQ(round1(b.us.at("qp_RTS")), 73.0);
  // Table 1, "measured w/ virtio" column: each forwarded verb plus the
  // 20 µs virtqueue round trip (the paper's estimation methodology).
  const double virtio_rtt = 20.0;
  EXPECT_EQ(round1(b.us.at("reg_mr") + virtio_rtt), 97.8);
  EXPECT_EQ(round1(b.us.at("create_cq") + virtio_rtt), 275.6);
  EXPECT_EQ(round1(b.us.at("create_qp") + virtio_rtt), 96.0);
  EXPECT_EQ(round1(b.us.at("qp_INIT") + virtio_rtt), 251.0);
  EXPECT_EQ(round1(b.us.at("qp_RTR") + virtio_rtt), 82.0);
  EXPECT_EQ(round1(b.us.at("qp_RTS") + virtio_rtt), 93.0);
}

// ---- the headline ordering, asserted as one fact -------------------------

TEST(OrderingTest, TwoByteLatencyRankingMatchesFig8a) {
  std::map<Candidate, double> l;
  for (Candidate c : {Candidate::kHostRdma, Candidate::kSriov,
                      Candidate::kFreeFlow, Candidate::kMasq}) {
    l[c] = lat_us(c, apps::perftest::Op::kSend, 2);
  }
  EXPECT_LT(l[Candidate::kHostRdma], l[Candidate::kMasq]);
  EXPECT_LE(l[Candidate::kMasq], l[Candidate::kSriov] + 0.15);
  EXPECT_LT(l[Candidate::kSriov], l[Candidate::kFreeFlow]);
  // MasQ within 0.5 us of bare metal — "almost the same performance".
  EXPECT_LT(l[Candidate::kMasq] - l[Candidate::kHostRdma], 0.5);
}

// ---- degenerate fabric == direct wire, bit for bit -----------------------

// The leaf-spine generalization (DESIGN.md §17) must not move a single
// golden number when it degenerates to the legacy wire: a 1-leaf fabric at
// the wire's capacity adds only duplicated constraints.

TEST(GoldenNumbersTest, DegenerateFabricKeepsFig15Totals) {
  EXPECT_EQ(round2(conn_setup(Candidate::kHostRdma, degenerate_fabric())
                       .total_ms),
            0.80);
  EXPECT_EQ(round2(conn_setup(Candidate::kFreeFlow, degenerate_fabric())
                       .total_ms),
            4.13);
  EXPECT_EQ(round2(conn_setup(Candidate::kSriov, degenerate_fabric())
                       .total_ms),
            1.89);
  EXPECT_EQ(round2(conn_setup(Candidate::kMasq, degenerate_fabric())
                       .total_ms),
            1.98);
}

TEST(GoldenNumbersTest, DegenerateFabricKeepsTable1Exact) {
  const SetupBreakdown direct = conn_setup(Candidate::kHostRdma);
  const SetupBreakdown fab =
      conn_setup(Candidate::kHostRdma, degenerate_fabric());
  ASSERT_EQ(direct.us.size(), fab.us.size());
  for (const auto& [verb, us] : direct.us) {
    EXPECT_EQ(us, fab.us.at(verb)) << verb;  // exact doubles, not rounded
  }
}

TEST(GoldenNumbersTest, DegenerateFabricIsBitExactOnTheWire) {
  for (Candidate c : {Candidate::kHostRdma, Candidate::kMasq}) {
    for (std::uint32_t size : {2u, 4096u}) {
      EXPECT_EQ(lat_us(c, apps::perftest::Op::kSend, size),
                lat_us(c, apps::perftest::Op::kSend, size,
                       degenerate_fabric()))
          << fabric::to_string(c) << " latency moved at " << size;
    }
    EXPECT_EQ(bw_gbps(c, 32768), bw_gbps(c, 32768, degenerate_fabric()))
        << fabric::to_string(c) << " bandwidth moved";
  }
}

// ---- 100-seed scale-report equivalence sweep -----------------------------

fabric::ScaleConfig sweep_cfg(std::uint64_t seed, std::size_t leaves) {
  fabric::ScaleConfig cfg;
  cfg.hosts = 4;
  cfg.vms_per_host = 4;
  cfg.tenants = 2;
  cfg.waves = 1;
  cfg.shards = 2;
  cfg.ip_changes = 0;
  cfg.rule_resets = 0;
  cfg.seed = seed;
  cfg.traffic.enabled = true;
  cfg.traffic.leaves = leaves;  // 0 = direct, 1 = degenerate fabric
  cfg.traffic.spines = 1;
  cfg.traffic.host_gbps = 25;
  cfg.traffic.spine_gbps = 25;
  cfg.traffic.flows = 24;
  cfg.traffic.flow_kb = 64;
  return cfg;
}

TEST(DegenerateSweepTest, HundredSeedsByteIdenticalReports) {
  // BENCH_scale.json is the whole contract: the degenerate 1-leaf fabric
  // must serialize byte-identically to direct mode at every seed.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const std::string direct =
        fabric::run_scale_storm(sweep_cfg(seed, 0)).json();
    const std::string degen =
        fabric::run_scale_storm(sweep_cfg(seed, 1)).json();
    EXPECT_EQ(direct, degen) << "reports diverged at seed " << seed;
    if (direct != degen) break;  // one diff is enough diagnostics
  }
}

TEST(DegenerateSweepTest, ByteIdenticalAcrossThreadCounts) {
  // And the partitioned engine agrees at 1/2/4 workers: the traffic phase
  // is a pure function of (config, schedule), whichever engine ran first.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string direct =
        fabric::run_scale_storm(sweep_cfg(seed, 0)).json();
    for (std::size_t threads : {1u, 2u, 4u}) {
      const std::string degen =
          fabric::run_scale_storm_parallel(sweep_cfg(seed, 1), threads)
              .json();
      EXPECT_EQ(direct, degen)
          << "seed " << seed << " diverged at " << threads << " threads";
    }
  }
}

}  // namespace
