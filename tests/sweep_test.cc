// Cross-candidate sweep invariants: properties the paper's evaluation
// implies must hold at *every* operating point, checked over a grid of
// (candidate x message size x operation) rather than at single points —
// latency monotonicity in size, the candidate ordering, bandwidth
// monotonicity, and conservation of the candidate ranking under load.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "apps/perftest.h"
#include "fabric/testbed.h"

namespace {

using fabric::Candidate;

double lat_us(Candidate c, apps::perftest::Op op, std::uint32_t size) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 16ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  apps::perftest::LatConfig lc;
  lc.op = op;
  lc.msg_size = size;
  lc.iterations = 60;
  return apps::perftest::run_lat(bed, lc).mean();
}

double bw_gbps(Candidate c, std::uint32_t size) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 16ull << 30;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  apps::perftest::BwConfig bc;
  bc.op = apps::perftest::Op::kWrite;
  bc.msg_size = size;
  bc.iterations = 192;
  return apps::perftest::run_bw(bed, bc);
}

// ---- latency grid --------------------------------------------------------

using LatPoint = std::tuple<Candidate, int /*op*/, std::uint32_t /*size*/>;

class LatencyGridTest : public ::testing::TestWithParam<LatPoint> {};

TEST_P(LatencyGridTest, HostIsTheFloorAndSizeCostsMore) {
  const auto [c, op_i, size] = GetParam();
  const auto op = static_cast<apps::perftest::Op>(op_i);
  const double mine = lat_us(c, op, size);
  // Host-RDMA is the performance floor at every point (Fig. 8/9).
  if (c != Candidate::kHostRdma) {
    const double host = lat_us(Candidate::kHostRdma, op, size);
    EXPECT_GE(mine, host - 0.02)
        << fabric::to_string(c) << " beat bare metal at size " << size;
  }
  // Latency grows with message size on the same candidate.
  if (size > 2) {
    const double smaller = lat_us(c, op, size / 8);
    EXPECT_GE(mine, smaller - 0.02)
        << fabric::to_string(c) << " latency not monotone at " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LatencyGridTest,
    ::testing::Combine(
        ::testing::Values(Candidate::kHostRdma, Candidate::kSriov,
                          Candidate::kFreeFlow, Candidate::kMasq),
        ::testing::Values(0, 1),  // send, write
        ::testing::Values(2u, 256u, 4096u)),
    [](const ::testing::TestParamInfo<LatPoint>& info) {
      std::string n = fabric::to_string(std::get<0>(info.param));
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n + (std::get<1>(info.param) == 0 ? "Send" : "Write") +
             std::to_string(std::get<2>(info.param)) + "B";
    });

// ---- bandwidth grid ------------------------------------------------------

class BandwidthGridTest : public ::testing::TestWithParam<Candidate> {};

TEST_P(BandwidthGridTest, ThroughputMonotoneAndBounded) {
  const Candidate c = GetParam();
  double prev = 0;
  for (std::uint32_t size : {512u, 4096u, 32768u}) {
    const double g = bw_gbps(c, size);
    EXPECT_GE(g, prev * 0.98)
        << fabric::to_string(c) << " throughput dipped at " << size;
    EXPECT_LE(g, 40.0 + 1e-6);  // never exceeds the physical line
    prev = g;
  }
  // Everyone saturates within 15% of line rate by 32 KB (Fig. 10).
  EXPECT_GT(prev, 34.0) << fabric::to_string(c);
}

INSTANTIATE_TEST_SUITE_P(AllCandidates, BandwidthGridTest,
                         ::testing::Values(Candidate::kHostRdma,
                                           Candidate::kSriov,
                                           Candidate::kFreeFlow,
                                           Candidate::kMasq),
                         [](const ::testing::TestParamInfo<Candidate>& i) {
                           std::string n = fabric::to_string(i.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

// ---- the headline ordering, asserted as one fact -------------------------

TEST(OrderingTest, TwoByteLatencyRankingMatchesFig8a) {
  std::map<Candidate, double> l;
  for (Candidate c : {Candidate::kHostRdma, Candidate::kSriov,
                      Candidate::kFreeFlow, Candidate::kMasq}) {
    l[c] = lat_us(c, apps::perftest::Op::kSend, 2);
  }
  EXPECT_LT(l[Candidate::kHostRdma], l[Candidate::kMasq]);
  EXPECT_LE(l[Candidate::kMasq], l[Candidate::kSriov] + 0.15);
  EXPECT_LT(l[Candidate::kSriov], l[Candidate::kFreeFlow]);
  // MasQ within 0.5 us of bare metal — "almost the same performance".
  EXPECT_LT(l[Candidate::kMasq] - l[Candidate::kHostRdma], 0.5);
}

}  // namespace
