// Failure-injection tests: the unhappy paths a production deployment hits
// — missing controller mappings, security-blocked exchanges, peers dying
// mid-connection, CQ overflow under load, tunnel-cache thrashing (the §1
// hardware-solution scalability cliff), and recovery from SQE.
#include <gtest/gtest.h>

#include <memory>

#include "apps/common.h"
#include "rnic/device.h"
#include "fabric/testbed.h"

using namespace sim::literals;

namespace {

net::Ipv4Addr ip(const std::string& s) { return *net::Ipv4Addr::parse(s); }

std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop,
                                          fabric::Candidate c,
                                          int instances = 2) {
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 32ull << 30;
  cfg.cal.vm_mem_bytes = 512ull << 20;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(instances);
  return bed;
}

TEST(FailureTest, ConnectToUnknownVgidReturnsNotFound) {
  // The peer's vGID was never registered (e.g. its VM is gone): the
  // controller has no mapping and RConnrename must fail the RTR.
  sim::EventLoop loop;
  auto bed = make_bed(loop, fabric::Candidate::kMasq);
  // Security explicitly allows the phantom peer, so the failure is
  // attributable to the missing mapping, not to RConntrack.
  auto& pol = bed->policy(100);
  pol.security_group(ip("192.168.77.77"), overlay::Chain::kInput)
      .add_rule(overlay::Rule::allow_all());
  pol.security_group(ip("192.168.77.77"), overlay::Chain::kOutput)
      .add_rule(overlay::Rule::allow_all());
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kInit;
      (void)co_await bed->ctx(0).modify_qp(ep.qp, attr, rnic::kAttrState);
      attr.state = rnic::QpState::kRtr;
      attr.dest_gid = net::Gid::from_ipv4(ip("192.168.77.77"));  // nobody
      attr.dest_qpn = 42;
      const auto st = co_await bed->ctx(0).modify_qp(
          ep.qp, attr,
          rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn);
      EXPECT_EQ(st, rnic::Status::kNotFound);
    }
  };
  loop.spawn(Run::go(bed.get()));
  loop.run();
}

TEST(FailureTest, BlockedOobExchangeAbortsBeforeAnyRdmaState) {
  // Security groups block the TCP exchange itself (§3.3.2 subproblem 1):
  // no connection info crosses, so no QP ever leaves INIT.
  sim::EventLoop loop;
  auto bed = make_bed(loop, fabric::Candidate::kMasq);
  bed->policy(100)
      .security_group(bed->instance_vip(1), overlay::Chain::kInput)
      .add_rule(overlay::Rule::deny(net::Ipv4Cidr::any(),
                                    net::Ipv4Cidr::any(),
                                    overlay::Proto::kTcp, 500));
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      const auto st = co_await apps::connect_client(
          bed->ctx(0), ep, bed->instance_vip(1), 8100);
      EXPECT_EQ(st, rnic::Status::kPermissionDenied);
      EXPECT_EQ(bed->device(0).qp_state(ep.qp), rnic::QpState::kReset);
    }
  };
  loop.spawn(Run::go(bed.get()));
  loop.run();
  EXPECT_GE(bed->vnet().messages_blocked(), 1u);
}

TEST(FailureTest, PeerQpDestroyedMidTrafficYieldsRetryExceeded) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, fabric::Candidate::kMasq);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      apps::Endpoint server;
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed,
                                   apps::Endpoint* out) {
          *out = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), *out,
                                              bed->instance_vip(0), 8200);
        }
      };
      bed->loop().spawn(Srv::srv(bed, &server));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      (void)co_await apps::connect_client(bed->ctx(0), ep,
                                          bed->instance_vip(1), 8200);
      // Server vanishes (crash / destroy) ...
      (void)co_await bed->ctx(1).destroy_qp(server.qp);
      // ... client's next write gets no ack and retries out.
      const auto wc = co_await apps::write_and_wait(bed->ctx(0), ep, 0, 0,
                                                    64);
      EXPECT_EQ(wc, rnic::WcStatus::kTransportRetryExc);
      EXPECT_EQ(bed->device(0).qp_state(ep.qp), rnic::QpState::kSqe);
    }
  };
  loop.spawn(Run::go(bed.get()));
  loop.run();
}

TEST(FailureTest, SqeRecoversViaModifyToRts) {
  // Fig. 5: SQE -> RTS resumes the send queue after the app reaps the
  // error (receive side was never affected).
  sim::EventLoop loop;
  auto bed = make_bed(loop, fabric::Candidate::kMasq);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      apps::Endpoint server;
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed,
                                   apps::Endpoint* out) {
          *out = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), *out,
                                              bed->instance_vip(0), 8300);
        }
      };
      bed->loop().spawn(Srv::srv(bed, &server));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      (void)co_await apps::connect_client(bed->ctx(0), ep,
                                          bed->instance_vip(1), 8300);
      // Trigger a local protection error -> SQE.
      rnic::SendWr bad;
      bad.wr_id = 1;
      bad.opcode = rnic::WrOpcode::kSend;
      bad.sge = {ep.buf + ep.buf_len, 64, ep.mr.lkey};  // out of bounds
      (void)bed->ctx(0).post_send(ep.qp, bad);
      auto c = co_await bed->ctx(0).wait_completion(ep.scq);
      EXPECT_EQ(c.status, rnic::WcStatus::kLocProtErr);
      EXPECT_EQ(bed->device(0).qp_state(ep.qp), rnic::QpState::kSqe);
      // Recover and send for real.
      rnic::QpAttr attr;
      attr.state = rnic::QpState::kRts;
      EXPECT_EQ(co_await bed->ctx(0).modify_qp(ep.qp, attr,
                                               rnic::kAttrState),
                rnic::Status::kOk);
      struct Rx {
        static sim::Task<void> rx(fabric::Testbed* bed, apps::Endpoint* ep) {
          auto c = co_await apps::recv_and_wait(bed->ctx(1), *ep, 0, 256);
          EXPECT_EQ(c.status, rnic::WcStatus::kSuccess);
        }
      };
      bed->loop().spawn(Rx::rx(bed, &server));
      const auto wc = co_await apps::send_and_wait(bed->ctx(0), ep, 0, 16);
      EXPECT_EQ(wc, rnic::WcStatus::kSuccess);
    }
  };
  loop.spawn(Run::go(bed.get()));
  loop.run();
}

TEST(FailureTest, CqOverflowUnderUnpolledLoad) {
  sim::EventLoop loop;
  auto bed = make_bed(loop, fabric::Candidate::kMasq);
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed) {
      apps::EndpointOptions opts;
      opts.cq_entries = 4;  // tiny CQ
      opts.max_wr = 64;
      struct Srv {
        static sim::Task<void> srv(fabric::Testbed* bed,
                                   apps::EndpointOptions opts) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1), opts);
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 8400);
        }
      };
      bed->loop().spawn(Srv::srv(bed, opts));
      auto ep = co_await apps::setup_endpoint(bed->ctx(0), opts);
      (void)co_await apps::connect_client(bed->ctx(0), ep,
                                          bed->instance_vip(1), 8400);
      // 16 writes complete while the app never polls: 4 CQEs fit, the
      // rest drop and the overflow flag latches.
      for (int i = 0; i < 16; ++i) {
        rnic::SendWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i);
        wr.opcode = rnic::WrOpcode::kRdmaWrite;
        wr.sge = {ep.buf, 128, ep.mr.lkey};
        wr.remote_addr = ep.peer.raddr;
        wr.rkey = ep.peer.rkey;
        (void)bed->ctx(0).post_send(ep.qp, wr);
      }
      co_await sim::delay(bed->loop(), sim::milliseconds(10));
      EXPECT_TRUE(bed->device(0).cq_overflowed(ep.scq));
      rnic::Completion c;
      EXPECT_EQ(bed->ctx(0).poll_cq(ep.scq, 1, &c), 1);
    }
  };
  loop.spawn(Run::go(bed.get()));
  loop.run();
}

TEST(FailureTest, SriovTunnelCacheThrashesWithManyPeers) {
  // §1: hardware solutions cache virtual-network context on-chip; once
  // the peer set exceeds the cache, messages fetch tunnel entries from
  // DRAM ("throughput of stat operations decreases by almost 50% when the
  // number of clients increases from 40 to 120").
  sim::EventLoop loop;
  net::FluidNet fnet(loop);
  mem::HostPhysMap phys(1024 * mem::kPageSize);
  rnic::DeviceConfig dc;
  dc.ip = ip("10.0.0.1");
  dc.tunnel_cache_capacity = 32;  // small on-chip cache
  rnic::RnicDevice dev(loop, fnet, phys, dc);
  dev.set_fn_address(1, ip("192.168.1.1"), net::MacAddr::from_u64(1), 100,
                     /*vxlan_offload=*/true);
  // 128 peers, 4x the cache.
  for (int i = 0; i < 128; ++i) {
    dev.program_tunnel(
        net::Gid::from_ipv4(net::Ipv4Addr{0xC0A80200u +
                                          static_cast<std::uint32_t>(i)}),
        {net::Gid::from_ipv4(ip("10.0.0.2")), 100});
  }
  // One UD QP sends a datagram to each peer round-robin: the per-WQE
  // destination forces a tunnel lookup per message.
  auto pd = dev.alloc_pd(1).value;
  auto cq = dev.create_cq(1, 4096).value;
  rnic::QpInitAttr init;
  init.type = rnic::QpType::kUd;
  init.pd = pd;
  init.send_cq = cq;
  init.recv_cq = cq;
  init.caps.max_send_wr = 4096;
  auto qp = dev.create_qp(1, init).value;
  const mem::Addr hpa = phys.alloc_pages(1);
  auto mr = dev.create_mr(1, pd, 0x7f0000000000ull, 4096, rnic::kLocalWrite,
                          {{hpa, 4096}});
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  attr.qkey = 1;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState | rnic::kAttrQkey);
  attr.state = rnic::QpState::kRtr;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState);
  attr.state = rnic::QpState::kRts;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 128; ++i) {
      rnic::SendWr wr;
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.opcode = rnic::WrOpcode::kSend;
      wr.sge = {0x7f0000000000ull, 8, mr.value.lkey};
      wr.ud = {net::Gid::from_ipv4(net::Ipv4Addr{
                   0xC0A80200u + static_cast<std::uint32_t>(i)}),
               5, 1};
      (void)dev.post_send(qp, wr);
    }
    loop.run();
  }
  // Working set (128) >> cache (32) with LRU round-robin: every single
  // lookup misses — the scalability cliff.
  EXPECT_EQ(dev.tunnel_cache_hits(), 0u);
  EXPECT_EQ(dev.tunnel_cache_misses(), 256u);
}

TEST(FailureTest, InstanceExhaustionReportsCleanly) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.num_hosts = 1;
  cfg.cal.host_dram_bytes = 2ull << 30;  // fits 3 VMs
  fabric::Testbed bed(loop, cfg);
  int created = 0;
  while (bed.add_instance().has_value()) ++created;
  EXPECT_EQ(created, 3);
  EXPECT_THROW(bed.add_instances(1), std::runtime_error);
}

}  // namespace
