// Unit tests for the discrete-event loop, coroutine tasks, futures, RNG and
// stats accumulator.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/time.h"

using namespace sim::literals;

namespace {

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_DOUBLE_EQ(sim::to_us(2500_ns), 2.5);
  EXPECT_DOUBLE_EQ(sim::to_ms(1500_us), 1.5);
  EXPECT_EQ(sim::microseconds(2.5), 2500);
}

TEST(TimeTest, Format) {
  EXPECT_EQ(sim::format_time(500_ns), "500 ns");
  EXPECT_EQ(sim::format_time(12500_ns), "12.500 us");
  EXPECT_EQ(sim::format_time(3100_us), "3.100 ms");
  EXPECT_EQ(sim::format_time(2_s), "2.000 s");
}

TEST(EventLoopTest, EventsFireInTimeOrder) {
  sim::EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30_us, [&] { order.push_back(3); });
  loop.schedule_at(10_us, [&] { order.push_back(1); });
  loop.schedule_at(20_us, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30_us);
}

TEST(EventLoopTest, TiesBreakFifo) {
  sim::EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    loop.schedule_at(5_us, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, NestedSchedulingAdvancesTime) {
  sim::EventLoop loop;
  sim::Time inner_fired = -1;
  loop.schedule_at(10_us, [&] {
    loop.schedule_after(5_us, [&] { inner_fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(inner_fired, 15_us);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  sim::EventLoop loop;
  int fired = 0;
  loop.schedule_at(10_us, [&] { ++fired; });
  loop.schedule_at(20_us, [&] { ++fired; });
  loop.run_until(15_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 15_us);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PastEventsClampToNow) {
  sim::EventLoop loop;
  loop.run_until(100_us);
  sim::Time fired = -1;
  loop.schedule_at(10_us, [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, 100_us);
}

sim::Task<int> add_after(sim::EventLoop& loop, sim::Time d, int a, int b) {
  co_await sim::delay(loop, d);
  co_return a + b;
}

sim::Task<void> driver(sim::EventLoop& loop, int* out) {
  const int x = co_await add_after(loop, 10_us, 1, 2);
  const int y = co_await add_after(loop, 5_us, x, 10);
  *out = y;
}

TEST(TaskTest, NestedTasksComputeAndAdvanceClock) {
  sim::EventLoop loop;
  int result = 0;
  loop.spawn(driver(loop, &result));
  loop.run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(loop.now(), 15_us);
}

sim::Task<void> thrower(sim::EventLoop& loop) {
  co_await sim::delay(loop, 1_us);
  throw std::runtime_error("boom");
}

TEST(TaskTest, RootTaskExceptionPropagatesFromRun) {
  sim::EventLoop loop;
  loop.spawn(thrower(loop));
  EXPECT_THROW(loop.run(), std::runtime_error);
}

sim::Task<int> rethrow_child(sim::EventLoop& loop) {
  co_await sim::delay(loop, 1_us);
  throw std::runtime_error("child failed");
}

sim::Task<void> catching_parent(sim::EventLoop& loop, bool* caught) {
  try {
    (void)co_await rethrow_child(loop);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ChildExceptionCatchableInParent) {
  sim::EventLoop loop;
  bool caught = false;
  loop.spawn(catching_parent(loop, &caught));
  loop.run();
  EXPECT_TRUE(caught);
}

sim::Task<void> producer(sim::EventLoop& loop, sim::Promise<int> p) {
  co_await sim::delay(loop, 20_us);
  p.set_value(99);
}

sim::Task<void> consumer(sim::Future<int> f, int* out, sim::EventLoop& loop,
                         sim::Time* when) {
  *out = co_await f;
  *when = loop.now();
}

TEST(FutureTest, RendezvousAcrossTasks) {
  sim::EventLoop loop;
  sim::Promise<int> p(loop);
  int out = 0;
  sim::Time when = -1;
  loop.spawn(consumer(p.get_future(), &out, loop, &when));
  loop.spawn(producer(loop, std::move(p)));
  loop.run();
  EXPECT_EQ(out, 99);
  EXPECT_EQ(when, 20_us);
}

TEST(FutureTest, AwaitAlreadyReadyFutureDoesNotSuspend) {
  sim::EventLoop loop;
  sim::Promise<int> p(loop);
  p.set_value(7);
  int out = 0;
  sim::Time when = -1;
  loop.spawn(consumer(p.get_future(), &out, loop, &when));
  loop.run();
  EXPECT_EQ(out, 7);
  EXPECT_EQ(when, 0);
}

TEST(FutureTest, MultipleAwaitersAllWake) {
  sim::EventLoop loop;
  sim::Promise<int> p(loop);
  int a = 0, b = 0;
  sim::Time ta, tb;
  loop.spawn(consumer(p.get_future(), &a, loop, &ta));
  loop.spawn(consumer(p.get_future(), &b, loop, &tb));
  loop.spawn(producer(loop, p));
  loop.run();
  EXPECT_EQ(a, 99);
  EXPECT_EQ(b, 99);
}

TEST(RngTest, DeterministicForSameSeed) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  sim::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(RngTest, NextRangeInclusive) {
  sim::Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  sim::Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  sim::Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(StatsTest, BasicMoments) {
  sim::Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(StatsTest, PercentileInterpolation) {
  sim::Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(StatsTest, ClearResets) {
  sim::Stats s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.summary(), "n=0");
}

}  // namespace
