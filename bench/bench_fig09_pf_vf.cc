// Fig. 9: MasQ performs better when tenants are mapped to the PF instead
// of a VF — (a) 2 B latency, (b) 16 KB latency — compared against
// Host-RDMA.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double lat(fabric::Candidate c, apps::perftest::Op op, std::uint32_t size,
           bool masq_pf) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.masq_use_pf = masq_pf;
  auto bed = bench::make_bed(loop, c, opts);
  apps::perftest::LatConfig cfg;
  cfg.op = op;
  cfg.msg_size = size;
  cfg.iterations = 500;
  return apps::perftest::run_lat(*bed, cfg).mean();
}

void table(std::uint32_t size, double paper[3][2]) {
  std::printf("%-12s | %12s %8s | %12s %8s\n", "candidate", "send(us)",
              "paper", "write(us)", "paper");
  std::printf("%.62s\n",
              "-----------------------------------------------------------"
              "---");
  struct {
    const char* name;
    fabric::Candidate c;
    bool pf;
  } rows[] = {
      {"Host-RDMA", fabric::Candidate::kHostRdma, false},
      {"MasQ (VF)", fabric::Candidate::kMasq, false},
      {"MasQ (PF)", fabric::Candidate::kMasq, true},
  };
  for (int i = 0; i < 3; ++i) {
    std::printf("%-12s | %12.2f %8.1f | %12.2f %8.1f\n", rows[i].name,
                lat(rows[i].c, apps::perftest::Op::kSend, size, rows[i].pf),
                paper[i][0],
                lat(rows[i].c, apps::perftest::Op::kWrite, size, rows[i].pf),
                paper[i][1]);
  }
}

}  // namespace

int main() {
  bench::title("Fig. 9a", "MasQ PF vs VF: 2 B latency");
  double paper_2b[3][2] = {{0.8, 0.7}, {1.1, 1.0}, {0.8, 0.8}};
  table(2, paper_2b);

  bench::title("Fig. 9b", "MasQ PF vs VF: 16 KB latency");
  double paper_16k[3][2] = {{5.2, 5.1}, {5.3, 5.3}, {5.2, 5.2}};
  table(16384, paper_16k);

  bench::note("mapping VMs to the PF removes the VF's on-NIC processing "
              "penalty at the cost of per-tenant QoS (best-effort mode)");
  return 0;
}
