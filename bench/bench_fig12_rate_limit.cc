// Fig. 12: MasQ's QP-level QoS — a single ib_write_bw flow under hardware
// rate limits from 1 to 40 Gbps; the measured rate must track the cap.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"
#include "fabric/traffic.h"

namespace {

double limited_bw(double cap_gbps) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq);
  bed->masq_backend(0).set_tenant_rate_limit(bed->config().default_vni,
                                             cap_gbps);
  apps::perftest::BwConfig cfg;
  cfg.op = apps::perftest::Op::kWrite;
  cfg.msg_size = 65536;
  cfg.iterations = std::max(16, static_cast<int>(cap_gbps) * 8);
  return apps::perftest::run_bw(*bed, cfg);
}

}  // namespace

int main() {
  bench::title("Fig. 12", "hardware rate limiting accuracy (MasQ via VF)");
  std::printf("%-14s | %-14s | %-10s\n", "cap (Gbps)", "measured (Gbps)",
              "ratio");
  std::printf("%.46s\n",
              "----------------------------------------------");
  for (double cap : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0,
                     40.0}) {
    const double got = limited_bw(cap);
    std::printf("%-14.0f | %-14.2f | %-10.3f\n", cap, got, got / cap);
  }
  bench::note("paper: the controlled bandwidth is close to the configured "
              "limit at every setting, with zero CPU overhead (the limiter "
              "is the VF's hardware rate limiter). The small gap is RoCEv2 "
              "header overhead: goodput = cap x payload/wire bytes.");

  // Fabric re-run (DESIGN.md §17): the same cap sweep, but the limited
  // tenant now shares a 128-host leaf-spine fabric with a 48-way incast —
  // the cap must hold while DCQCN fights real multi-hop congestion.
  bench::title("Fig. 12 (fabric)", "per-tenant caps under 48-way incast, "
                                   "128 hosts / 8 leaves x 2 spines");
  std::printf("%-14s | %-14s | %-10s | %8s %8s\n", "cap (Gbps)",
              "peak tenant", "ratio", "marks", "recov");
  std::printf("%.62s\n",
              "--------------------------------------------------------"
              "------");
  for (double cap : {1.0, 2.5, 5.0, 10.0, 15.0, 20.0}) {
    fabric::ScaleConfig cfg;
    cfg.hosts = 128;
    cfg.vms_per_host = 4;
    cfg.tenants = 16;
    cfg.waves = 2;
    cfg.shards = 8;
    cfg.seed = 11;
    cfg.traffic.enabled = true;
    cfg.traffic.leaves = 8;
    cfg.traffic.spines = 2;
    cfg.traffic.host_gbps = 25.0;
    cfg.traffic.spine_gbps = 40.0;
    cfg.traffic.pattern = "incast";
    cfg.traffic.incast_fanin = 48;
    cfg.traffic.flows = 256;
    cfg.traffic.flow_kb = 256;
    cfg.traffic.tenant_gbps = cap;
    const auto r = fabric::run_traffic_phase(
        cfg, fabric::storm::StormSchedule::draw(cfg));
    std::printf("%-14.1f | %-14.3f | %-10.3f | %8llu %8llu\n", cap,
                r.peak_tenant_gbps, r.peak_tenant_gbps / cap,
                static_cast<unsigned long long>(r.ecn_marks),
                static_cast<unsigned long long>(r.dcqcn_recoveries));
  }
  bench::note("the peak per-tenant aggregate never exceeds its cap (ratio "
              "<= 1.000) at any setting: the limiter is a link in the "
              "max-min problem, so fabric congestion can only push a "
              "tenant further below its cap, never above it");
  return 0;
}
