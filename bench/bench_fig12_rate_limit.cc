// Fig. 12: MasQ's QP-level QoS — a single ib_write_bw flow under hardware
// rate limits from 1 to 40 Gbps; the measured rate must track the cap.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double limited_bw(double cap_gbps) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq);
  bed->masq_backend(0).set_tenant_rate_limit(bed->config().default_vni,
                                             cap_gbps);
  apps::perftest::BwConfig cfg;
  cfg.op = apps::perftest::Op::kWrite;
  cfg.msg_size = 65536;
  cfg.iterations = std::max(16, static_cast<int>(cap_gbps) * 8);
  return apps::perftest::run_bw(*bed, cfg);
}

}  // namespace

int main() {
  bench::title("Fig. 12", "hardware rate limiting accuracy (MasQ via VF)");
  std::printf("%-14s | %-14s | %-10s\n", "cap (Gbps)", "measured (Gbps)",
              "ratio");
  std::printf("%.46s\n",
              "----------------------------------------------");
  for (double cap : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0,
                     40.0}) {
    const double got = limited_bw(cap);
    std::printf("%-14.0f | %-14.2f | %-10.3f\n", cap, got, got / cap);
  }
  bench::note("paper: the controlled bandwidth is close to the configured "
              "limit at every setting, with zero CPU overhead (the limiter "
              "is the VF's hardware rate limiter). The small gap is RoCEv2 "
              "header overhead: goodput = cap x payload/wire bytes.");
  return 0;
}
