// Fig. 18 (migration): stop-and-copy blackout of a transparent live
// migration vs. the number of established RC connections moved. The
// source paper's Fig. 18 prices the *reset* path (connections die and the
// application rebuilds them); this companion table prices the transparent
// path (DESIGN.md §15) where the same connections survive the move, so
// the two can be compared per QP count.
#include <cstdio>
#include <vector>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

struct Sample {
  std::size_t qps_moved = 0;
  std::size_t mrs_moved = 0;
  std::uint64_t guest_kib = 0;
  double drain_us = 0;
  double pause_us = 0;
  double total_us = 0;
};

sim::Task<void> scenario(fabric::Testbed* bed, int num_conns, Sample* out) {
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed, std::uint16_t port) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), port);
    }
  };
  for (int i = 0; i < num_conns; ++i) {
    bed->loop().spawn(Srv::run(bed, static_cast<std::uint16_t>(7400 + i)));
  }
  std::vector<apps::Endpoint> eps(num_conns);
  for (int i = 0; i < num_conns; ++i) {
    eps[i] = co_await apps::setup_endpoint(bed->ctx(0));
    (void)co_await apps::connect_client(bed->ctx(0), eps[i],
                                        bed->instance_vip(1),
                                        static_cast<std::uint16_t>(7400 + i));
  }

  // Every connection is established and idle: the blackout below is the
  // pure per-object snapshot/restore price, not drain time.
  (void)co_await bed->migrate_vm(1, 2);
  const masq::MigrationReport& r = bed->last_migration_report();
  out->qps_moved = r.qps_moved;
  out->mrs_moved = r.mrs_moved;
  out->guest_kib = r.guest_bytes_copied >> 10;
  out->drain_us = sim::to_us(r.drain_time);
  out->pause_us = sim::to_us(r.pause_time);
  out->total_us = sim::to_us(r.total_time);
}

Sample measure(int num_conns) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.num_hosts = 3;  // host 2 stays empty: the migration target
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq, opts);
  Sample s;
  bench::run(*bed, scenario(bed.get(), num_conns, &s));
  return s;
}

}  // namespace

int main() {
  bench::title("Fig. 18 (migration)",
               "live-migration blackout vs. established RC connections");
  std::printf("%6s | %5s %5s %10s | %10s %10s %10s\n", "#conns", "QPs",
              "MRs", "guest(KiB)", "drain(us)", "pause(us)", "total(us)");
  std::printf("%.78s\n",
              "-----------------------------------------------------------"
              "-------------------");
  for (int n : {1, 2, 4, 8, 16}) {
    const Sample s = measure(n);
    std::printf("%6d | %5zu %5zu %10llu | %10.1f %10.1f %10.1f\n", n,
                s.qps_moved, s.mrs_moved,
                static_cast<unsigned long long>(s.guest_kib), s.drain_us,
                s.pause_us, s.total_us);
  }
  bench::note("the paper's Fig. 18 resets connections on a security-rule "
              "update; this table moves them intact — pause grows with the "
              "per-QP/CQ/MR snapshot work plus the stop-and-copy of the "
              "registered guest pages, while idle QPs keep drain at zero");
  return 0;
}
