// Fig. 13: MPI point-to-point latency and bandwidth (OSU micro-benchmarks,
// two processes on two VMs/hosts/containers).
#include <cstdio>
#include <memory>

#include "apps/minimpi.h"
#include "bench/bench_util.h"

namespace {

struct Rig {
  sim::EventLoop loop;
  std::unique_ptr<fabric::Testbed> bed;
  std::unique_ptr<apps::mpi::Comm> comm;

  explicit Rig(fabric::Candidate c) {
    bed = bench::make_bed(loop, c);
    struct Mk {
      static sim::Task<void> run(Rig* r) {
        std::vector<std::size_t> ranks{0, 1};
        r->comm = co_await apps::mpi::Comm::create(*r->bed, ranks);
      }
    };
    loop.spawn(Mk::run(this));
    loop.run();
  }
};

}  // namespace

int main() {
  bench::title("Fig. 13a", "MPI point-to-point latency (us)");
  const std::uint32_t lat_sizes[] = {4, 64, 1024, 16384};
  std::printf("%-10s", "size(B)");
  for (auto s : lat_sizes) std::printf(" %9u", s);
  std::printf("\n%.55s\n",
              "-------------------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    Rig rig(c);
    std::printf("%-10s", fabric::to_string(c));
    for (auto s : lat_sizes) {
      std::printf(" %9.2f",
                  apps::mpi::osu_latency(*rig.bed, *rig.comm, s, 200).mean());
    }
    std::printf("\n");
  }

  bench::title("Fig. 13b", "MPI point-to-point bandwidth (Gbps)");
  const std::uint32_t bw_sizes[] = {2, 512, 8192, 131072};
  std::printf("%-10s", "size(B)");
  for (auto s : bw_sizes) std::printf(" %9u", s);
  std::printf("\n%.55s\n",
              "-------------------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    Rig rig(c);
    std::printf("%-10s", fabric::to_string(c));
    for (auto s : bw_sizes) {
      std::printf(" %9.2f", apps::mpi::osu_bw(*rig.bed, *rig.comm, s, 256));
    }
    std::printf("\n");
  }
  bench::note("paper: MasQ == SR-IOV at every size; FreeFlow pays its FFR "
              "forwarding on small messages; host is the floor/ceiling");
  return 0;
}
