// Ablation: RConnrename's host-local mapping cache (§3.3.1 / §4.2.3).
// With the cache disabled every modify_qp(RTR) pays the ~100 us controller
// round trip; with it, repeat connections resolve in ~2 us. Also prints
// the cache-memory arithmetic the paper gives (35 B per record).
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"
#include "sdn/controller.h"

namespace {

// Establishes `count` connections from instance 0 to instance 1 and
// returns the mean RTR verb time (where RConnrename runs).
double mean_rtr_us(bool disable_cache, int count) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.masq_disable_cache = disable_cache;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq, opts);
  double total = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, int count,
                              double* total) {
      for (int i = 0; i < count; ++i) {
        const auto port = static_cast<std::uint16_t>(7500 + i);
        struct Srv {
          static sim::Task<void> run(fabric::Testbed* bed,
                                     std::uint16_t port) {
            auto ep = co_await apps::setup_endpoint(bed->ctx(1));
            (void)co_await apps::connect_server(bed->ctx(1), ep,
                                                bed->instance_vip(0), port);
          }
        };
        bed->loop().spawn(Srv::run(bed, port));
        auto ep = co_await apps::setup_endpoint(bed->ctx(0));
        // Inline connect with RTR timing.
        overlay::Blob blob = overlay::pack(verbs::ConnInfo{
            ep.qp, ep.local_gid, ep.mr.addr, ep.mr.rkey});
        (void)co_await bed->ctx(0).oob().send(bed->instance_vip(1), port,
                                              blob);
        overlay::Blob reply = co_await bed->ctx(0).oob().recv(port);
        ep.peer = overlay::unpack<verbs::ConnInfo>(reply);
        rnic::QpAttr attr;
        attr.state = rnic::QpState::kInit;
        (void)co_await bed->ctx(0).modify_qp(ep.qp, attr, rnic::kAttrState);
        attr.state = rnic::QpState::kRtr;
        attr.dest_gid = ep.peer.gid;
        attr.dest_qpn = ep.peer.qpn;
        const sim::Time t0 = bed->loop().now();
        (void)co_await bed->ctx(0).modify_qp(
            ep.qp, attr,
            rnic::kAttrState | rnic::kAttrDestGid | rnic::kAttrDestQpn);
        *total += sim::to_us(bed->loop().now() - t0);
        attr.state = rnic::QpState::kRts;
        (void)co_await bed->ctx(0).modify_qp(ep.qp, attr, rnic::kAttrState);
      }
    }
  };
  bench::run(*bed, Run::go(bed.get(), count, &total));
  return total / count;
}

}  // namespace

int main() {
  bench::title("Ablation", "RConnrename local mapping cache on/off");
  const double with_cache = mean_rtr_us(false, 8);
  const double without = mean_rtr_us(true, 8);
  std::printf("%-28s | %14s\n", "configuration", "mean RTR (us)");
  std::printf("%.46s\n", "----------------------------------------------");
  std::printf("%-28s | %14.1f\n", "cache enabled (default)", with_cache);
  std::printf("%-28s | %14.1f\n", "cache disabled", without);
  std::printf("%-28s | %14.1f\n", "delta (controller RTT)",
              without - with_cache);

  std::printf("\ncache memory footprint (paper arithmetic, 35 B/record):\n");
  for (std::size_t peers : {100ul, 1'000ul, 10'000ul, 100'000ul}) {
    std::printf("  %8zu VM peers -> %8.2f KiB\n", peers,
                static_cast<double>(peers * sdn::kRecordBytes) / 1024.0);
  }
  bench::note("paper: ~0.33 MB supports ten thousand VM peers; records "
              "never change after insertion, so hits stay hits");
  return 0;
}
