// Fig. 10: send/write throughput vs message size (2 B – 32 KB) between a
// pair of VMs on different hosts, all four candidates.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double bw(fabric::Candidate c, apps::perftest::Op op, std::uint32_t size) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::BwConfig cfg;
  cfg.op = op;
  cfg.msg_size = size;
  cfg.iterations = size >= 8192 ? 256 : 2048;
  cfg.window = 128;
  return apps::perftest::run_bw(*bed, cfg);
}

void sweep(apps::perftest::Op op) {
  const std::uint32_t sizes[] = {2, 32, 512, 2048, 8192, 32768};
  std::printf("%-10s", "size(B)");
  for (auto s : sizes) std::printf(" %9u", s);
  std::printf("\n%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s", fabric::to_string(c));
    for (auto s : sizes) std::printf(" %9.2f", bw(c, op, s));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::title("Fig. 10a", "send throughput vs message size (Gbps)");
  sweep(apps::perftest::Op::kSend);
  bench::title("Fig. 10b", "write throughput vs message size (Gbps)");
  sweep(apps::perftest::Op::kWrite);
  bench::note("paper shape: all candidates saturate ~37-38 Gbps by 8 KB; "
              "FreeFlow lags below 8 KB because the FFR burns CPU per "
              "message; MasQ == SR-IOV == Host at every size");
  return 0;
}
