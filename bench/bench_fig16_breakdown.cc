// Fig. 16: where MasQ's control-path time goes — per-verb cost split over
// the software layers of Fig. 16a (Verbs user library, virtio transit,
// MasQ frontend+backend driver, kernel RDMA driver + RNIC). The paper's
// ftrace measurement showed >80% of each verb inside the RDMA driver and
// user library, <20% in MasQ itself.
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

sim::Task<void> connect_pair(fabric::Testbed* bed) {
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), 7100);
    }
  };
  bed->loop().spawn(Srv::run(bed));
  auto ep = co_await apps::setup_endpoint(bed->ctx(0));
  (void)co_await apps::connect_client(bed->ctx(0), ep,
                                      bed->instance_vip(1), 7100);
}

}  // namespace

int main() {
  bench::title("Fig. 16b", "MasQ per-verb cost breakdown by software layer");
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq);
  bench::run(*bed, connect_pair(bed.get()));

  verbs::LayerProfile& prof = bed->ctx(0).profile();
  std::printf("%-16s | %9s | %9s %9s %9s %9s | %s\n", "verb", "total(us)",
              "lib%", "virtio%", "masq%", "rdma%", "masq+lib note");
  std::printf("%.100s\n",
              "-----------------------------------------------------------"
              "----------------------------------------");
  double masq_share_max = 0;
  for (const auto& verb : prof.verbs()) {
    const double total = sim::to_us(prof.total(verb));
    if (total <= 0) continue;
    const double lib =
        sim::to_us(prof.by_layer(verb, verbs::Layer::kVerbsLib));
    const double vio = sim::to_us(prof.by_layer(verb, verbs::Layer::kVirtio));
    const double mq =
        sim::to_us(prof.by_layer(verb, verbs::Layer::kMasqDriver));
    const double drv =
        sim::to_us(prof.by_layer(verb, verbs::Layer::kRdmaDriver));
    const double masq_share = (vio + mq) / total * 100.0;
    masq_share_max = std::max(masq_share_max, masq_share);
    std::printf("%-16s | %9.1f | %8.1f%% %8.1f%% %8.1f%% %8.1f%% | "
                "masq-attributable %.1f%%\n",
                verb.c_str(), total, lib / total * 100, vio / total * 100,
                mq / total * 100, drv / total * 100, masq_share);
  }
  std::printf("\nmax MasQ-attributable share (virtio + MasQ driver): "
              "%.1f%%\n", masq_share_max);
  bench::note("paper: 9.9-20.5%% of each verb comes from MasQ; >80%% is the "
              "unmodified RDMA kernel driver + user-space library");
  return 0;
}
