// Fig. 21: HERD-style key-value store throughput vs number of clients
// (95% GET / 5% PUT, 16 B keys, 32 B values, RC transport).
#include <cstdio>

#include "apps/kvs.h"
#include "bench/bench_util.h"

namespace {

double mops(fabric::Candidate c, int clients, bench::BedOptions opts = {}) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c, opts);
  apps::kvs::Config cfg;
  cfg.num_clients = clients;
  cfg.warmup = sim::milliseconds(1);
  cfg.measure = sim::milliseconds(5);
  cfg.num_keys = 50'000;
  return apps::kvs::run(*bed, cfg).mops;
}

}  // namespace

int main() {
  bench::title("Fig. 21", "KVS throughput vs number of clients (Mops)");
  const int clients[] = {2, 4, 6, 8, 10, 12, 14};
  std::printf("%-10s", "clients");
  for (int n : clients) std::printf(" %7d", n);
  std::printf("\n%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s", fabric::to_string(c));
    for (int n : clients) std::printf(" %7.2f", mops(c, n));
    std::printf("\n");
  }
  bench::note("paper: MasQ == Host-RDMA, peaking at 9.7 Mops with the RNIC "
              "as the bottleneck; SR-IOV ~1 Mops lower (IOMMU translation "
              "per DMA); FreeFlow flatlines ~1 Mops at the FFR");

  // Fabric re-run (DESIGN.md §17): server and clients on hosts one leaf
  // apart, so every GET/PUT crosses the spine tier.
  bench::title("Fig. 21 (fabric)", "MasQ KVS across a leaf-spine fabric");
  struct Variant {
    const char* name;
    std::optional<net::FabricConfig> topo;
  } variants[] = {
      {"direct", std::nullopt},
      {"2x2@40G", bench::cross_leaf_fabric(2, 2, 40.0, 40.0)},
      {"2x1@10G", bench::cross_leaf_fabric(2, 1, 40.0, 10.0)},
  };
  std::printf("%-10s", "fabric");
  for (int n : clients) std::printf(" %7d", n);
  std::printf("\n%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (const auto& v : variants) {
    bench::BedOptions opts;
    opts.topology = v.topo;
    std::printf("%-10s", v.name);
    for (int n : clients) {
      std::printf(" %7.2f", mops(fabric::Candidate::kMasq, n, opts));
    }
    std::printf("\n");
  }
  bench::note("small KVS messages are latency-bound, not rate-bound: the "
              "full-rate fabric matches the direct wire and even the "
              "starved 10 Gbps spine only clips the top of the curve");
  return 0;
}
