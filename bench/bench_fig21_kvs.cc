// Fig. 21: HERD-style key-value store throughput vs number of clients
// (95% GET / 5% PUT, 16 B keys, 32 B values, RC transport).
#include <cstdio>

#include "apps/kvs.h"
#include "bench/bench_util.h"

namespace {

double mops(fabric::Candidate c, int clients) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::kvs::Config cfg;
  cfg.num_clients = clients;
  cfg.warmup = sim::milliseconds(1);
  cfg.measure = sim::milliseconds(5);
  cfg.num_keys = 50'000;
  return apps::kvs::run(*bed, cfg).mops;
}

}  // namespace

int main() {
  bench::title("Fig. 21", "KVS throughput vs number of clients (Mops)");
  const int clients[] = {2, 4, 6, 8, 10, 12, 14};
  std::printf("%-10s", "clients");
  for (int n : clients) std::printf(" %7d", n);
  std::printf("\n%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s", fabric::to_string(c));
    for (int n : clients) std::printf(" %7.2f", mops(c, n));
    std::printf("\n");
  }
  bench::note("paper: MasQ == Host-RDMA, peaking at 9.7 Mops with the RNIC "
              "as the bottleneck; SR-IOV ~1 Mops lower (IOMMU translation "
              "per DMA); FreeFlow flatlines ~1 Mops at the FFR");
  return 0;
}
