// Fig. 18: cost to reset (force to ERROR) an RDMA connection — kernel
// routine vs RNIC processing, on a VF without traffic, a VF under heavy
// traffic, and the PF without traffic.
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"
#include "masq/frontend.h"

namespace {

struct Sample {
  double total_us = 0;
  double kernel_us = 0;
  double rnic_us = 0;
};

sim::Task<void> scenario(fabric::Testbed* bed, bool heavy_traffic,
                         Sample* out) {
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1),
                                              {.buf_len = 1 << 20});
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), 7300);
    }
  };
  bed->loop().spawn(Srv::run(bed));
  auto ep = co_await apps::setup_endpoint(bed->ctx(0), {.buf_len = 1 << 20});
  (void)co_await apps::connect_client(bed->ctx(0), ep,
                                      bed->instance_vip(1), 7300);

  verbs::Context& ctx = bed->ctx(0);
  if (heavy_traffic) {
    // Saturate the QP: a window of large writes stays outstanding.
    for (int i = 0; i < 64; ++i) {
      rnic::SendWr wr;
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.opcode = rnic::WrOpcode::kRdmaWrite;
      wr.sge = {ep.buf, 64 * 1024, ep.mr.lkey};
      wr.remote_addr = ep.peer.raddr;
      wr.rkey = ep.peer.rkey;
      (void)ctx.post_send(ep.qp, wr);
    }
    co_await sim::delay(bed->loop(), sim::microseconds(30));
  }

  // Time the reset at the backend-driver level (ftrace vantage point).
  auto& session = static_cast<masq::MasqContext&>(ctx).session();
  const double kernel_us =
      sim::to_us(session.backend().config().driver_costs.modify_error_kernel);
  const double rnic_us =
      sim::to_us(bed->device(0).qp_error_processing_time(ep.qp));
  const sim::Time t0 = bed->loop().now();
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kError;
  (void)co_await session.driver().modify_qp(ep.qp, attr, rnic::kAttrState);
  out->total_us = sim::to_us(bed->loop().now() - t0);
  out->kernel_us = kernel_us;
  out->rnic_us = rnic_us;
}

Sample measure(bool heavy, bool use_pf) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.masq_use_pf = use_pf;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq, opts);
  Sample s;
  bench::run(*bed, scenario(bed.get(), heavy, &s));
  return s;
}

}  // namespace

int main() {
  bench::title("Fig. 18", "cost breakdown to reset an RDMA connection");
  struct {
    const char* label;
    bool heavy;
    bool pf;
    double paper_total;
  } rows[] = {
      {"w/o traffic (VF)", false, false, 518},
      {"w/ heavy traffic (VF)", true, false, 838},
      {"w/o traffic (PF)", false, true, 253},
  };
  std::printf("%-24s | %10s %10s %10s | %10s\n", "scenario", "kernel(us)",
              "RNIC(us)", "total(us)", "paper(us)");
  std::printf("%.80s\n",
              "-----------------------------------------------------------"
              "---------------------");
  for (const auto& r : rows) {
    const Sample s = measure(r.heavy, r.pf);
    std::printf("%-24s | %10.0f %10.0f %10.0f | %10.0f\n", r.label,
                s.kernel_us, s.rnic_us, s.total_us, r.paper_total);
  }
  bench::note("reset is only triggered by security-rule updates, never on "
              "the normal data path; the RNIC share grows with the number "
              "of WQEs it must drain (heavy-traffic case)");
  return 0;
}
