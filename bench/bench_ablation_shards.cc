// Ablation: SDN control-plane sharding (DESIGN.md §12). Runs the same
// ~1000-VM connection storm against 1/2/4/8 controller shards and prints
// how per-shard queue pressure and tail setup latency respond. With one
// shard every resolve funnels through a single FIFO query service; each
// doubling of the shard count roughly halves the peak queue depth until
// the per-host agent batching (one in-flight batch per host per shard)
// becomes the binding constraint.
#include <cstdio>

#include "bench/bench_util.h"
#include "fabric/scale.h"

namespace {

fabric::ScaleConfig storm(std::size_t shards) {
  fabric::ScaleConfig cfg;
  cfg.tenants = 8;
  cfg.hosts = 8;
  cfg.vms_per_host = 125;  // 1000 VMs
  cfg.conns_per_vm = 2;
  cfg.waves = 3;
  cfg.shards = shards;
  cfg.query_service = sim::microseconds(1);
  // Batching off: the host agents' one-batch-per-shard cap would mask the
  // queue pressure this ablation measures — here every miss hits the
  // shard's FIFO directly, so depth scales with concurrent misses.
  cfg.batch_window = 0;
  cfg.ip_changes = 50;
  cfg.rule_resets = 1;
  cfg.seed = 1;
  return cfg;
}

}  // namespace

int main() {
  bench::title("Ablation: controller shards",
               "1000-VM storm vs. shard count");
  bench::note("same workload/seed; only the shard count varies");
  std::printf("  %-7s %10s %10s %10s %12s %12s\n", "shards", "p50[us]",
              "p99[us]", "maxdepth", "kconn/s", "hit-rate");
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const fabric::ScaleReport r = fabric::run_scale_storm(storm(shards));
    std::size_t max_depth = 0;
    for (const auto& s : r.per_shard) {
      if (s.max_queue_depth > max_depth) max_depth = s.max_queue_depth;
    }
    std::printf("  %-7zu %10.3f %10.3f %10zu %12.3f %12.4f\n", shards,
                r.p50_us, r.p99_us, max_depth, r.kconn_per_s, r.hit_rate);
  }
  return 0;
}
