// Table 1: per-verb call time, Host-RDMA vs "w/ virtio" (the §3.1
// rationale experiment). The host column is measured live on the simulated
// testbed; the virtio column adds the measured virtqueue round trip to
// every verb that would be forwarded — exactly the estimation methodology
// the paper describes. Data-path verbs show why forwarding them is
// unacceptable (101x / 667x).
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

struct Row {
  const char* verb;
  bool forwarded;      // would cross the virtqueue if virtualized
  double paper_host;   // Table 1 "Host-RDMA" column (us)
  double paper_virtio; // Table 1 "w/ virtio" column (us; <0 = not shown)
  double measured = 0;
};

sim::Task<void> measure(fabric::Testbed* bed, Row* rows, int n) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto timed = [&loop](sim::Time t0) {
    return sim::to_us(loop.now() - t0);
  };
  int i = 0;
  auto row = [&](const char* name) -> Row* {
    for (int k = 0; k < n; ++k) {
      if (std::string(rows[k].verb) == name) return &rows[k];
    }
    (void)i;
    return nullptr;
  };

  sim::Time t0 = loop.now();
  auto pd = co_await ctx.alloc_pd();
  row("ibv_alloc_pd")->measured = timed(t0);

  const mem::Addr buf = ctx.alloc_buffer(4096);
  t0 = loop.now();
  auto mr = co_await ctx.reg_mr(pd.value, buf, 1024, apps::kFullAccess);
  row("ibv_reg_mr(1KB)")->measured = timed(t0);

  t0 = loop.now();
  auto cq = co_await ctx.create_cq(200);
  row("ibv_create_cq(200)")->measured = timed(t0);

  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.send_cq = cq.value;
  init.recv_cq = cq.value;
  init.caps.max_send_wr = 100;
  init.caps.max_recv_wr = 100;
  t0 = loop.now();
  auto qp = co_await ctx.create_qp(init);
  row("ibv_create_qp")->measured = timed(t0);

  t0 = loop.now();
  (void)co_await ctx.query_gid();
  row("ibv_query_gid")->measured = timed(t0);

  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  row("ibv_modify_qp(INIT)")->measured = timed(t0);

  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = net::Gid::from_ipv4(bed->device(1).config().ip);
  attr.dest_qpn = 1;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr,
                               rnic::kAttrState | rnic::kAttrDestGid |
                                   rnic::kAttrDestQpn);
  row("ibv_modify_qp(RTR)")->measured = timed(t0);

  attr.state = rnic::QpState::kRts;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  row("ibv_modify_qp(RTS)")->measured = timed(t0);

  row("ibv_post_send/recv")->measured =
      sim::to_us(ctx.data_verb_call_time(verbs::DataVerb::kPostSend));
  row("ibv_poll_cq")->measured =
      sim::to_us(ctx.data_verb_call_time(verbs::DataVerb::kPollCq));

  t0 = loop.now();
  (void)co_await ctx.destroy_qp(qp.value);
  row("ibv_destroy_qp")->measured = timed(t0);
  t0 = loop.now();
  (void)co_await ctx.destroy_cq(cq.value);
  row("ibv_destroy_cq")->measured = timed(t0);
  t0 = loop.now();
  (void)co_await ctx.dereg_mr(mr.value);
  row("ibv_dereg_mr")->measured = timed(t0);
  t0 = loop.now();
  (void)co_await ctx.dealloc_pd(pd.value);
  row("ibv_dealloc_pd")->measured = timed(t0);
}

}  // namespace

int main() {
  bench::title("Table 1", "nonvirtualized vs virtualized Verbs call time");

  Row rows[] = {
      {"ibv_get_device_list", true, 396, 416},
      {"ibv_open_device", true, 1115, 1135},
      {"ibv_alloc_pd", false, 3, -1},
      {"ibv_reg_mr(1KB)", true, 78, 98},
      {"ibv_create_cq(200)", true, 266, 286},
      {"ibv_create_qp", true, 76, 96},
      {"ibv_query_gid", false, 22, -1},
      {"ibv_modify_qp(INIT)", true, 231, 251},
      {"ibv_modify_qp(RTR)", true, 62, 82},
      {"ibv_modify_qp(RTS)", true, 73, 93},
      {"ibv_post_send/recv", true, 0.2, 20},
      {"ibv_poll_cq", true, 0.03, 20},
      {"ibv_destroy_qp", true, 170, 190},
      {"ibv_destroy_cq", true, 79, 99},
      {"ibv_dereg_mr", true, 35, 55},
      {"ibv_dealloc_pd", false, 2, -1},
      {"ibv_close_device", true, 16, 36},
  };
  const int n = static_cast<int>(sizeof(rows) / sizeof(rows[0]));

  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kHostRdma);
  bench::run(*bed, measure(bed.get(), rows, n));
  // Device open/close are one-time per process and not part of the
  // connection flow; report them from the calibrated driver cost table.
  verbs::DriverCosts dc;
  for (int k = 0; k < n; ++k) {
    if (std::string(rows[k].verb) == "ibv_get_device_list") {
      rows[k].measured = sim::to_us(dc.get_device_list) / 0.9;
    } else if (std::string(rows[k].verb) == "ibv_open_device") {
      rows[k].measured = sim::to_us(dc.open_device) / 0.9;
    } else if (std::string(rows[k].verb) == "ibv_close_device") {
      rows[k].measured = sim::to_us(dc.close_device) / 0.9;
    }
  }

  const double virtio_rtt = 20.0;  // measured Virtqueue round trip (us)
  std::printf("%-22s | %10s %10s | %10s %10s | %8s\n", "Verbs API",
              "host(us)", "paper", "w/virtio", "paper", "slowdown");
  std::printf("%.96s\n",
              "-----------------------------------------------------------"
              "-------------------------------------");
  double ctrl_host = 0, ctrl_virtio = 0;
  for (int k = 0; k < n; ++k) {
    const Row& r = rows[k];
    const double with_virtio = r.forwarded ? r.measured + virtio_rtt
                                           : r.measured;
    const double slowdown = with_virtio / (r.measured > 0 ? r.measured : 1);
    if (r.paper_virtio >= 0) {
      std::printf("%-22s | %10.2f %10.2f | %10.2f %10.2f | %7.1fx\n",
                  r.verb, r.measured, r.paper_host, with_virtio,
                  r.paper_virtio, slowdown);
    } else {
      std::printf("%-22s | %10.2f %10.2f | %10s %10s | %7.1fx\n", r.verb,
                  r.measured, r.paper_host, "-", "-", 1.0);
    }
    const bool data_verb = std::string(r.verb).find("post_") == 0 ||
                           std::string(r.verb) == "ibv_poll_cq";
    if (!data_verb) {
      ctrl_host += r.measured;
      ctrl_virtio += with_virtio;
    }
  }
  std::printf("\ncontrol-path total: host %.0f us, w/ virtio %.0f us "
              "(+%.0f%%; paper: 2.62 ms vs 2.86 ms, +9%%)\n",
              ctrl_host, ctrl_virtio,
              (ctrl_virtio / ctrl_host - 1.0) * 100.0);
  bench::note("data-path verbs forwarded through virtio would be "
              "~100-667x slower — the rationale for MasQ's split (§3.1)");
  return 0;
}
