// Table 5: maximum number of RDMA-capable VMs on one host (1 vCPU, 512 MB
// each). SR-IOV exhausts its 8 non-ARI PCIe virtual functions; MasQ keeps
// going until host DRAM runs out. Plus an ablation: per-VM endpoint setup
// cost (time + virtqueue kicks) sequential vs pipelined batch — the knob
// that matters when a dense host boots many RDMA VMs at once.
#include <cstdint>
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"
#include "masq/frontend.h"

namespace {

struct Outcome {
  int max_vms = 0;
  const char* limiter = "?";
};

Outcome fill_host(fabric::Candidate c) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.num_hosts = 1;
  cfg.cal.host_dram_bytes = 96ull << 30;  // Table 3
  cfg.cal.vm_mem_bytes = 512ull << 20;    // Table 5 VM sizing
  fabric::Testbed bed(loop, cfg);
  Outcome out;
  while (bed.add_instance().has_value()) ++out.max_vms;
  if (c == fabric::Candidate::kSriov &&
      out.max_vms == bed.device(0).config().num_vfs) {
    out.limiter = "Non-ARI PCIe (out of VFs)";
  } else {
    out.limiter = "Host memory";
  }
  return out;
}

// Verb-by-verb endpoint setup: the pre-pipeline baseline, kept here so the
// ablation can compare against apps::setup_endpoint (now batched).
sim::Task<void> setup_sequential(verbs::Context& ctx) {
  auto pd = co_await ctx.alloc_pd();
  const mem::Addr buf = ctx.alloc_buffer(64 * 1024);
  (void)co_await ctx.reg_mr(pd.value, buf, 64 * 1024, apps::kFullAccess);
  auto scq = co_await ctx.create_cq(1024);
  auto rcq = co_await ctx.create_cq(1024);
  rnic::QpInitAttr attr;
  attr.pd = pd.value;
  attr.send_cq = scq.value;
  attr.recv_cq = rcq.value;
  attr.caps.max_send_wr = 512;
  attr.caps.max_recv_wr = 512;
  (void)co_await ctx.create_qp(attr);
  (void)co_await ctx.query_gid();
}

struct DensityRun {
  double total_ms = 0;
  std::uint64_t kicks = 0;
  std::uint64_t interrupts = 0;
};

// Boots `vms` MasQ VMs on one host and runs every VM's endpoint setup
// concurrently — the boot-storm a dense Table-5 host actually sees.
DensityRun boot_storm(int vms, bool batched) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.instances = vms;
  opts.num_hosts = 1;
  opts.vm_mem = 512ull << 20;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq, opts);
  struct Flow {
    static sim::Task<void> one(fabric::Testbed* bed, std::size_t i,
                               bool batched) {
      if (batched) {
        (void)co_await apps::setup_endpoint(bed->ctx(i));
      } else {
        co_await setup_sequential(bed->ctx(i));
      }
    }
  };
  const sim::Time t0 = loop.now();
  for (int i = 0; i < vms; ++i) {
    loop.spawn(Flow::one(bed.get(), static_cast<std::size_t>(i), batched));
  }
  loop.run();
  DensityRun out;
  out.total_ms = sim::to_us(loop.now() - t0) / 1000.0;
  for (int i = 0; i < vms; ++i) {
    if (auto* mc = dynamic_cast<masq::MasqContext*>(
            &bed->ctx(static_cast<std::size_t>(i)))) {
      out.kicks += mc->virtqueue().kicks();
      out.interrupts += mc->virtqueue().interrupts();
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::title("Table 5", "maximum number of VMs on a single host");
  std::printf("%-22s | %8s | %8s | %s\n", "RDMA virtualization", "max #VM",
              "paper", "limitation factor");
  std::printf("%.72s\n",
              "-----------------------------------------------------------"
              "-------------");
  const Outcome sriov = fill_host(fabric::Candidate::kSriov);
  std::printf("%-22s | %8d | %8d | %s\n", "SR-IOV", sriov.max_vms, 8,
              sriov.limiter);
  const Outcome masq = fill_host(fabric::Candidate::kMasq);
  std::printf("%-22s | %8d | %8d | %s\n", "MasQ", masq.max_vms, 160,
              masq.limiter);
  bench::note("MasQ composes virtual devices at QP granularity, so VM "
              "density is bounded only by DRAM: add memory or shrink VMs "
              "to go further");

  bench::title("Table 5 (ablation)",
               "8-VM MasQ boot storm: endpoint setup seq vs batch");
  std::printf("%-10s | %10s | %8s | %10s\n", "mode", "total(ms)", "kicks",
              "interrupts");
  std::printf("%.48s\n", "------------------------------------------------");
  for (bool batched : {false, true}) {
    const DensityRun r = boot_storm(8, batched);
    std::printf("%-10s | %10.2f | %8llu | %10llu\n",
                batched ? "batch" : "sequential", r.total_ms,
                static_cast<unsigned long long>(r.kicks),
                static_cast<unsigned long long>(r.interrupts));
  }
  bench::note("batched setup ships MR + 2 CQs + QP as one virtqueue "
              "transit per VM, cutting host wakeups ~4x during the storm");
  return 0;
}
