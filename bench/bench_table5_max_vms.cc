// Table 5: maximum number of RDMA-capable VMs on one host (1 vCPU, 512 MB
// each). SR-IOV exhausts its 8 non-ARI PCIe virtual functions; MasQ keeps
// going until host DRAM runs out.
#include <cstdio>

#include "bench/bench_util.h"

namespace {

struct Outcome {
  int max_vms = 0;
  const char* limiter = "?";
};

Outcome fill_host(fabric::Candidate c) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.num_hosts = 1;
  cfg.cal.host_dram_bytes = 96ull << 30;  // Table 3
  cfg.cal.vm_mem_bytes = 512ull << 20;    // Table 5 VM sizing
  fabric::Testbed bed(loop, cfg);
  Outcome out;
  while (bed.add_instance().has_value()) ++out.max_vms;
  if (c == fabric::Candidate::kSriov &&
      out.max_vms == bed.device(0).config().num_vfs) {
    out.limiter = "Non-ARI PCIe (out of VFs)";
  } else {
    out.limiter = "Host memory";
  }
  return out;
}

}  // namespace

int main() {
  bench::title("Table 5", "maximum number of VMs on a single host");
  std::printf("%-22s | %8s | %8s | %s\n", "RDMA virtualization", "max #VM",
              "paper", "limitation factor");
  std::printf("%.72s\n",
              "-----------------------------------------------------------"
              "-------------");
  const Outcome sriov = fill_host(fabric::Candidate::kSriov);
  std::printf("%-22s | %8d | %8d | %s\n", "SR-IOV", sriov.max_vms, 8,
              sriov.limiter);
  const Outcome masq = fill_host(fabric::Candidate::kMasq);
  std::printf("%-22s | %8d | %8d | %s\n", "MasQ", masq.max_vms, 160,
              masq.limiter);
  bench::note("MasQ composes virtual devices at QP granularity, so VM "
              "density is bounded only by DRAM: add memory or shrink VMs "
              "to go further");
  return 0;
}
