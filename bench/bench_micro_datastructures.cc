// Wall-clock micro-benchmarks (google-benchmark) for the hot software data
// structures on MasQ's control path: security-rule evaluation, the
// (VNI,vGID) mapping cache, max-min rate reallocation, and page-table
// walks. These bound how much host CPU the *real* implementation of each
// mechanism would burn.
#include <benchmark/benchmark.h>

#include "mem/address_space.h"
#include "net/fluid.h"
#include "overlay/security.h"
#include "sdn/controller.h"
#include "sim/event_loop.h"

namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr{v}; }

void BM_RuleChainEvaluate(benchmark::State& state) {
  overlay::RuleChain chain;
  const int rules = static_cast<int>(state.range(0));
  for (int i = 0; i < rules; ++i) {
    chain.add_rule(overlay::Rule::allow(
        net::Ipv4Cidr{ip(0xC0A80000u + static_cast<std::uint32_t>(i) * 256),
                      24},
        net::Ipv4Cidr::any(), overlay::Proto::kRdma, i));
  }
  overlay::FlowTuple t{ip(0xC0A80001), ip(0x0A000001),
                       overlay::Proto::kRdma};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.evaluate(t));
  }
}
BENCHMARK(BM_RuleChainEvaluate)->Arg(10)->Arg(100)->Arg(1000);

void BM_MappingCacheLookup(benchmark::State& state) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop);
  const auto peers = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < peers; ++i) {
    ctl.register_vgid(100, net::Gid::from_ipv4(ip(0xC0A80000u + i)),
                      net::Gid::from_ipv4(ip(0x0A000001u + (i % 16))));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctl.lookup(100, net::Gid::from_ipv4(ip(0xC0A80000u + (i++ % peers)))));
  }
  state.SetLabel(std::to_string(peers * sdn::kRecordBytes / 1024) +
                 " KiB table");
}
BENCHMARK(BM_MappingCacheLookup)->Arg(100)->Arg(10000);

void BM_FluidReallocate(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventLoop loop;
    net::FluidNet fnet(loop);
    auto l1 = fnet.add_link(40.0, 0);
    auto l2 = fnet.add_link(40.0, 0);
    state.ResumeTiming();
    for (int i = 0; i < flows; ++i) {
      fnet.start_flow({l1, l2}, 0, i % 4 == 0 ? 10.0 : net::kUncapped,
                      nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidReallocate)->Arg(16)->Arg(128)->Arg(1024);

void BM_PageTableResolve(benchmark::State& state) {
  mem::HostPhysMap phys(64 << 20);
  mem::AddressSpace hva("hva", &phys);
  mem::AddressSpace gpa("gpa", &hva);
  mem::AddressSpace gva("gva", &gpa);
  const mem::Addr hpa = phys.alloc_pages(64);
  hva.map(0x10000000, hpa, 64 * mem::kPageSize);
  gpa.map(0, 0x10000000, 64 * mem::kPageSize);
  gva.map(0x7f0000000000ull, 0, 64 * mem::kPageSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gva.resolve_hpa(0x7f0000000000ull + (i++ % 64) * mem::kPageSize));
  }
}
BENCHMARK(BM_PageTableResolve);

}  // namespace

BENCHMARK_MAIN();
