// Wall-clock micro-benchmarks (google-benchmark) for the hot software data
// structures on MasQ's control path: security-rule evaluation, the
// (VNI,vGID) mapping cache, max-min rate reallocation, page-table walks,
// and the simulator-core substitutions from DESIGN.md §13 — sim::FlatMap
// vs the std node-based maps it replaced, and arena event allocation vs
// plain heap. These bound how much host CPU the *real* implementation of
// each mechanism would burn, and justify the container swap with numbers
// kept in-repo.
#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "mem/address_space.h"
#include "net/fluid.h"
#include "overlay/security.h"
#include "sdn/controller.h"
#include "sim/arena.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"

namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr{v}; }

void BM_RuleChainEvaluate(benchmark::State& state) {
  overlay::RuleChain chain;
  const int rules = static_cast<int>(state.range(0));
  for (int i = 0; i < rules; ++i) {
    chain.add_rule(overlay::Rule::allow(
        net::Ipv4Cidr{ip(0xC0A80000u + static_cast<std::uint32_t>(i) * 256),
                      24},
        net::Ipv4Cidr::any(), overlay::Proto::kRdma, i));
  }
  overlay::FlowTuple t{ip(0xC0A80001), ip(0x0A000001),
                       overlay::Proto::kRdma};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.evaluate(t));
  }
}
BENCHMARK(BM_RuleChainEvaluate)->Arg(10)->Arg(100)->Arg(1000);

void BM_MappingCacheLookup(benchmark::State& state) {
  sim::EventLoop loop;
  sdn::Controller ctl(loop);
  const auto peers = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < peers; ++i) {
    ctl.register_vgid(100, net::Gid::from_ipv4(ip(0xC0A80000u + i)),
                      net::Gid::from_ipv4(ip(0x0A000001u + (i % 16))));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctl.lookup(100, net::Gid::from_ipv4(ip(0xC0A80000u + (i++ % peers)))));
  }
  state.SetLabel(std::to_string(peers * sdn::kRecordBytes / 1024) +
                 " KiB table");
}
BENCHMARK(BM_MappingCacheLookup)->Arg(100)->Arg(10000);

void BM_FluidReallocate(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventLoop loop;
    net::FluidNet fnet(loop);
    auto l1 = fnet.add_link(40.0, 0);
    auto l2 = fnet.add_link(40.0, 0);
    state.ResumeTiming();
    for (int i = 0; i < flows; ++i) {
      fnet.start_flow({l1, l2}, 0, i % 4 == 0 ? 10.0 : net::kUncapped,
                      nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidReallocate)->Arg(16)->Arg(128)->Arg(1024);

void BM_PageTableResolve(benchmark::State& state) {
  mem::HostPhysMap phys(64 << 20);
  mem::AddressSpace hva("hva", &phys);
  mem::AddressSpace gpa("gpa", &hva);
  mem::AddressSpace gva("gva", &gpa);
  const mem::Addr hpa = phys.alloc_pages(64);
  hva.map(0x10000000, hpa, 64 * mem::kPageSize);
  gpa.map(0, 0x10000000, 64 * mem::kPageSize);
  gva.map(0x7f0000000000ull, 0, 64 * mem::kPageSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gva.resolve_hpa(0x7f0000000000ull + (i++ % 64) * mem::kPageSize));
  }
}
BENCHMARK(BM_PageTableResolve);

// ---- container swap: sim::FlatMap vs std::map / std::unordered_map ----
// The access pattern the RNIC/SDN hot paths actually have: build a table
// of `n` integer-keyed entries once, then hammer exact-key lookups. Keys
// are splitmix-scrambled so neither tree order nor bucket distribution
// gets an artificially friendly sequence.

std::uint64_t scramble(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Map>
void map_lookup_bench(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Map m;
  for (std::uint64_t i = 0; i < n; ++i) {
    m.emplace(static_cast<std::uint32_t>(scramble(i)), i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.find(static_cast<std::uint32_t>(scramble(i++ % n))));
  }
}

void BM_FlatMapLookup(benchmark::State& state) {
  map_lookup_bench<sim::FlatMap<std::uint32_t, std::uint64_t>>(state);
}
void BM_StdMapLookup(benchmark::State& state) {
  map_lookup_bench<std::map<std::uint32_t, std::uint64_t>>(state);
}
void BM_StdUnorderedMapLookup(benchmark::State& state) {
  map_lookup_bench<std::unordered_map<std::uint32_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookup)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK(BM_StdMapLookup)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK(BM_StdUnorderedMapLookup)->Arg(64)->Arg(4096)->Arg(65536);

template <typename Map>
void map_churn_bench(benchmark::State& state) {
  // QP pending-table shape: insert a window of entries, erase the oldest —
  // the steady-state churn a send queue with outstanding WQEs produces.
  constexpr std::uint64_t kWindow = 256;
  Map m;
  std::uint64_t next = 0;
  for (; next < kWindow; ++next) {
    m.emplace(static_cast<std::uint32_t>(next), next);
  }
  for (auto _ : state) {
    m.erase(static_cast<std::uint32_t>(next - kWindow));
    m.emplace(static_cast<std::uint32_t>(next), next);
    ++next;
    benchmark::DoNotOptimize(m);
  }
}

void BM_FlatMapChurn(benchmark::State& state) {
  map_churn_bench<sim::FlatMap<std::uint32_t, std::uint64_t>>(state);
}
void BM_StdMapChurn(benchmark::State& state) {
  map_churn_bench<std::map<std::uint32_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapChurn);
BENCHMARK(BM_StdMapChurn);

// ---- event allocation: NodePool arena vs heap new/delete ----
// The event loop's per-event allocation, isolated: acquire + release in
// LIFO order (the pool's free list) against the same node from the heap.

struct BenchNode {
  sim::Time t = 0;
  std::uint64_t seq = 0;
  sim::Callback cb;
  BenchNode* pool_next = nullptr;
};

void BM_ArenaEventAlloc(benchmark::State& state) {
  sim::NodePool<BenchNode> pool;
  for (auto _ : state) {
    BenchNode* n = pool.acquire();
    benchmark::DoNotOptimize(n);
    pool.release(n);
  }
}
void BM_HeapEventAlloc(benchmark::State& state) {
  for (auto _ : state) {
    // masq-lint: allow(naked-new) — this IS the heap baseline under test.
    BenchNode* n = new BenchNode();
    benchmark::DoNotOptimize(n);
    delete n;
  }
}
BENCHMARK(BM_ArenaEventAlloc);
BENCHMARK(BM_HeapEventAlloc);

// End-to-end: schedule+drain a burst of timer events through the loop —
// the composite cost the ready-queue + arena + SBO-callback refactor
// targets (pre-refactor this path was priority_queue<std::function> with
// two heap allocations per event).
void BM_EventLoopScheduleDrain(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < burst; ++i) {
      loop.schedule_at(static_cast<sim::Time>(scramble(i) % 1000000),
                       [&sink] { ++sink; });
    }
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_EventLoopScheduleDrain)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
