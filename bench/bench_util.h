// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints the paper's rows/series next to the values measured
// on the simulated testbed; absolute numbers need not match the authors'
// hardware, but the *shape* (who wins, by what factor, where crossovers
// fall) should. See EXPERIMENTS.md for the recorded comparison.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "fabric/testbed.h"

namespace bench {

inline void title(const std::string& experiment, const std::string& what) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("==========================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

struct BedOptions {
  int instances = 2;
  bool masq_use_pf = false;
  bool masq_disable_cache = false;
  std::uint64_t host_dram = 48ull << 30;
  std::uint64_t vm_mem = 8ull << 30;
  int num_hosts = 2;
  // Warm-path connection pool (DESIGN.md §14); MasQ only, off by default
  // so every other figure keeps the cold-path golden numbers bit-exact.
  masq::WarmPoolConfig masq_warm;
  // Leaf–spine fabric under the hosts (DESIGN.md §17). Unset = the legacy
  // direct wire, keeping every golden number bit-exact.
  std::optional<net::FabricConfig> topology;
};

// One host per leaf, so any two testbed hosts talk across the spine tier —
// the smallest fabric that puts inter-instance traffic on shared spine
// links (spine_gbps < host_gbps models an oversubscribed core).
inline net::FabricConfig cross_leaf_fabric(std::size_t hosts,
                                           std::size_t spines,
                                           double host_gbps,
                                           double spine_gbps) {
  net::FabricConfig fc;
  fc.hosts = hosts;
  fc.leaves = hosts;
  fc.spines = spines;
  fc.host_gbps = host_gbps;
  fc.spine_gbps = spine_gbps;
  return fc;
}

inline std::unique_ptr<fabric::Testbed> make_bed(sim::EventLoop& loop,
                                                 fabric::Candidate c,
                                                 BedOptions opts = {}) {
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.num_hosts = opts.num_hosts;
  cfg.masq_use_pf = opts.masq_use_pf;
  cfg.masq_disable_cache = opts.masq_disable_cache;
  cfg.cal.host_dram_bytes = opts.host_dram;
  cfg.cal.vm_mem_bytes = opts.vm_mem;
  cfg.masq_warm = opts.masq_warm;
  cfg.topology = opts.topology;
  auto bed = std::make_unique<fabric::Testbed>(loop, cfg);
  bed->add_instances(opts.instances);
  return bed;
}

// Runs a coroutine scenario to completion on the bed's loop.
inline void run(fabric::Testbed& bed, sim::Task<void> scenario) {
  bed.loop().spawn(std::move(scenario));
  bed.loop().run();
}

}  // namespace bench
