// Fig. 8: (a) 2-byte send/write latency between a pair of VMs on different
// hosts, all four candidates; (b) per-call overhead of the data-path verbs.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double lat(fabric::Candidate c, apps::perftest::Op op) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::LatConfig cfg;
  cfg.op = op;
  cfg.msg_size = 2;
  cfg.iterations = 1000;
  return apps::perftest::run_lat(*bed, cfg).mean();
}

double verb_us(fabric::Candidate c, verbs::DataVerb v) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  return sim::to_us(bed->ctx(0).data_verb_call_time(v));
}

}  // namespace

int main() {
  bench::title("Fig. 8a", "2 B RDMA latency between VMs on different hosts");
  struct {
    fabric::Candidate c;
    double paper_send, paper_write;
  } rows[] = {
      {fabric::Candidate::kHostRdma, 0.8, 0.7},
      {fabric::Candidate::kFreeFlow, 2.1, 1.3},
      {fabric::Candidate::kSriov, 1.1, 1.0},
      {fabric::Candidate::kMasq, 1.1, 1.0},
  };
  std::printf("%-10s | %12s %12s | %12s %12s\n", "candidate", "send(us)",
              "paper", "write(us)", "paper");
  std::printf("%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (const auto& r : rows) {
    std::printf("%-10s | %12.2f %12.1f | %12.2f %12.1f\n",
                fabric::to_string(r.c), lat(r.c, apps::perftest::Op::kSend),
                r.paper_send, lat(r.c, apps::perftest::Op::kWrite),
                r.paper_write);
  }

  bench::title("Fig. 8b", "data-path Verbs call overhead");
  std::printf("%-10s | %12s %12s %12s\n", "candidate", "post_recv(us)",
              "post_send(us)", "poll_cq(us)");
  std::printf("%.60s\n",
              "-----------------------------------------------------------"
              "-");
  for (const auto& r : rows) {
    std::printf("%-10s | %12.2f %12.2f %12.2f\n", fabric::to_string(r.c),
                verb_us(r.c, verbs::DataVerb::kPostRecv),
                verb_us(r.c, verbs::DataVerb::kPostSend),
                verb_us(r.c, verbs::DataVerb::kPollCq));
  }
  bench::note("paper: FreeFlow data verbs >= 5x Host-RDMA; MasQ and SR-IOV "
              "identical to host (zero data-path software)");
  return 0;
}
