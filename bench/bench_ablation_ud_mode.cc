// Ablation: connectionless (UD) support (§3.3.4). MasQ forwards every UD
// WQE through the control path so RConnrename can rewrite the per-WQE
// destination — trading per-message latency for correctness. SR-IOV's
// offload keeps UD on the fast path. This quantifies the trade.
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

// One-way UD datagram latency: sender timestamps, receiver completion.
double ud_latency_us(fabric::Candidate c, int iters) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  double total = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, int iters,
                              double* total) {
      apps::EndpointOptions opts;
      opts.type = rnic::QpType::kUd;
      auto a = co_await apps::setup_endpoint(bed->ctx(0), opts);
      auto b = co_await apps::setup_endpoint(bed->ctx(1), opts);
      for (auto* pair : {&a, &b}) {
        auto& ctx = pair == &a ? bed->ctx(0) : bed->ctx(1);
        rnic::QpAttr attr;
        attr.state = rnic::QpState::kInit;
        attr.qkey = 0x11;
        (void)co_await ctx.modify_qp(pair->qp, attr,
                                     rnic::kAttrState | rnic::kAttrQkey);
        attr.state = rnic::QpState::kRtr;
        (void)co_await ctx.modify_qp(pair->qp, attr, rnic::kAttrState);
        attr.state = rnic::QpState::kRts;
        (void)co_await ctx.modify_qp(pair->qp, attr, rnic::kAttrState);
      }
      for (int i = 0; i < iters; ++i) {
        rnic::RecvWr rwr{static_cast<std::uint64_t>(i),
                         {b.buf, 256, b.mr.lkey}};
        (void)bed->ctx(1).post_recv(b.qp, rwr);
        rnic::SendWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i);
        wr.opcode = rnic::WrOpcode::kSend;
        wr.sge = {a.buf, 64, a.mr.lkey};
        wr.ud = {net::Gid::from_ipv4(bed->instance_vip(1)), b.qp, 0x11};
        const sim::Time t0 = bed->loop().now();
        (void)bed->ctx(0).post_send(a.qp, wr);
        (void)co_await bed->ctx(1).wait_completion(b.rcq);
        *total += sim::to_us(bed->loop().now() - t0);
      }
    }
  };
  bench::run(*bed, Run::go(bed.get(), iters, &total));
  return total / iters;
}

}  // namespace

int main() {
  bench::title("Ablation", "UD datagrams: per-WQE rename via control path");
  const double sriov = ud_latency_us(fabric::Candidate::kSriov, 100);
  const double masq = ud_latency_us(fabric::Candidate::kMasq, 100);
  std::printf("%-34s | %16s\n", "candidate", "UD 1-way lat (us)");
  std::printf("%.54s\n",
              "------------------------------------------------------");
  std::printf("%-34s | %16.2f\n", "SR-IOV (hardware offload)", sriov);
  std::printf("%-34s | %16.2f\n", "MasQ (WQE via control path)", masq);
  std::printf("%-34s | %16.2f\n", "delta (virtio + rename)", masq - sriov);
  bench::note("the paper accepts this cost for datagrams (§3.3.4): UD WQEs "
              "carry their own destination, so each must be renamed; RC "
              "renames once per connection and pays nothing per message");
  return 0;
}
