// Ablation: congestion-control dynamics (§5). The evaluation's fluid model
// allocates ideal max-min rates instantly; real RoCEv2 deployments run
// DCQCN, which converges to the same operating point with finite dynamics.
// This bench shows the convergence timeline — and that MasQ is orthogonal:
// nothing in the control path cares which CC the fabric runs.
#include <cstdio>

#include "net/dcqcn.h"
#include "sim/event_loop.h"

int main() {
  std::printf(
      "\n==========================================================\n"
      "Ablation — DCQCN-lite convergence on a 40 Gbps bottleneck\n"
      "==========================================================\n");
  sim::EventLoop loop;
  net::FluidNet fnet(loop);
  net::DcqcnController cc(loop, fnet);
  const auto link = fnet.add_link(40.0, 0);

  const auto f1 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
  cc.manage(f1, 40.0);
  net::FlowId f2 = 0, f3 = 0;
  loop.schedule_at(sim::milliseconds(10), [&] {
    f2 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
    cc.manage(f2, 40.0);
  });
  loop.schedule_at(sim::milliseconds(25), [&] {
    f3 = fnet.start_flow({link}, 0, net::kUncapped, nullptr);
    cc.manage(f3, 40.0);
  });
  loop.schedule_at(sim::milliseconds(45), [&] {
    fnet.cancel_flow(f2);
    cc.unmanage(f2);
  });

  std::printf("%-10s | %8s %8s %8s | %9s\n", "time (ms)", "flow-1", "flow-2",
              "flow-3", "util %");
  std::printf("%.56s\n",
              "--------------------------------------------------------");
  for (int ms = 1; ms <= 60; ms += 2) {
    loop.run_until(sim::milliseconds(ms));
    const double r1 = fnet.current_rate_gbps(f1);
    const double r2 = f2 != 0 ? fnet.current_rate_gbps(f2) : 0.0;
    const double r3 = f3 != 0 ? fnet.current_rate_gbps(f3) : 0.0;
    std::printf("%-10d | %8.1f %8.1f %8.1f | %8.0f%%\n", ms, r1, r2, r3,
                (r1 + r2 + r3) / 40.0 * 100.0);
  }
  fnet.cancel_flow(f1);
  if (f3 != 0) fnet.cancel_flow(f3);
  loop.run();
  std::printf("\n  CNP marks delivered: %llu\n",
              static_cast<unsigned long long>(cc.marks_delivered()));
  std::printf("  note: flows converge toward the fair share as members come "
              "and go; MasQ's mechanisms never see any of it (§5: advanced "
              "CC algorithms are orthogonal and all of MasQ's properties "
              "hold under them)\n");
  return 0;
}
