// Fig. 15: RDMA connection-establishment performance — (a) average delay
// to establish one connection, (b) per-verb breakdown over the Fig. 1
// sequence (reg_mr, create_cq, create_qp, query_gid, INIT, RTR, RTS),
// (c) ablation: the same sequence shipped through the pipelined control
// batch (one virtqueue transit for setup, one for the QP ladder), with
// the virtio kick/interrupt counters that prove the amortization.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"
#include "bench/bench_util.h"
#include "masq/frontend.h"

namespace {

const char* kVerbs[] = {"reg_mr", "create_cq", "create_qp", "query_gid",
                        "qp_INIT", "qp_RTR", "qp_RTS"};
const char* kBatchPhases[] = {"setup_batch", "query_gid", "rts_batch"};

struct Breakdown {
  std::map<std::string, double> us;
  double total_ms = 0;
};

// Virtio / SDN control-path counters, read from the client context after
// the run. All-zero for candidates without a virtqueue (Host, SR-IOV) or
// without a mapping cache (everything but MasQ).
struct Counters {
  std::uint64_t kicks = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t coalesced_kicks = 0;
  std::uint64_t coalesced_interrupts = 0;
  std::uint64_t single_flight_coalesced = 0;
};

Counters read_counters(fabric::Testbed& bed) {
  Counters c;
  if (auto* mc = dynamic_cast<masq::MasqContext*>(&bed.ctx(0))) {
    auto& vq = mc->virtqueue();
    c.kicks = vq.kicks();
    c.interrupts = vq.interrupts();
    c.coalesced_kicks = vq.coalesced_kicks();
    c.coalesced_interrupts = vq.coalesced_interrupts();
    c.single_flight_coalesced = bed.masq_backend(bed.instance_host(0))
                                    .mapping_cache()
                                    .single_flight_coalesced();
  }
  return c;
}

sim::Task<void> client_flow(fabric::Testbed* bed, Breakdown* out) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto pd = co_await ctx.alloc_pd();
  const mem::Addr buf = ctx.alloc_buffer(65536);

  sim::Time t0 = loop.now();
  auto mr = co_await ctx.reg_mr(pd.value, buf, 1024, apps::kFullAccess);
  out->us["reg_mr"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto cq = co_await ctx.create_cq(200);
  out->us["create_cq"] = sim::to_us(loop.now() - t0);

  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.send_cq = cq.value;
  init.recv_cq = cq.value;
  init.caps.max_send_wr = 100;
  init.caps.max_recv_wr = 100;
  t0 = loop.now();
  auto qp = co_await ctx.create_qp(init);
  out->us["create_qp"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto gid = co_await ctx.query_gid();
  out->us["query_gid"] = sim::to_us(loop.now() - t0);

  // Exchange with the peer over the OOB channel (untimed: not a verb).
  verbs::ConnInfo info{qp.value, gid.value, buf, mr.value.rkey};
  overlay::Blob blob = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(1), 7100, blob);
  overlay::Blob reply = co_await ctx.oob().recv(7100);
  const auto peer = overlay::unpack<verbs::ConnInfo>(reply);

  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_INIT"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = peer.gid;
  attr.dest_qpn = peer.qpn;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr,
                               rnic::kAttrState | rnic::kAttrDestGid |
                                   rnic::kAttrDestQpn);
  out->us["qp_RTR"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRts;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_RTS"] = sim::to_us(loop.now() - t0);

  for (const char* v : kVerbs) out->total_ms += out->us[v] / 1000.0;
}

// Ablation: identical verb sequence, but shipped through ControlBatch —
// reg_mr + create_cq + create_qp in one transit (the QP's CQ resolved via
// slot links), then the whole INIT -> RTR -> RTS ladder in a second one.
sim::Task<void> client_flow_batched(fabric::Testbed* bed, Breakdown* out) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto pd = co_await ctx.alloc_pd();
  const mem::Addr buf = ctx.alloc_buffer(65536);

  sim::Time t0 = loop.now();
  auto setup = ctx.make_batch();
  const int mr_slot = setup->reg_mr(pd.value, buf, 1024, apps::kFullAccess);
  const int cq_slot = setup->create_cq(200);
  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.caps.max_send_wr = 100;
  init.caps.max_recv_wr = 100;
  const int qp_slot = setup->create_qp(init, cq_slot, cq_slot);
  (void)co_await setup->commit();
  out->us["setup_batch"] = sim::to_us(loop.now() - t0);
  const auto qpn = static_cast<rnic::Qpn>(setup->value(qp_slot));
  const verbs::MrHandle mr = setup->mr(mr_slot);

  t0 = loop.now();
  auto gid = co_await ctx.query_gid();
  out->us["query_gid"] = sim::to_us(loop.now() - t0);

  verbs::ConnInfo info{qpn, gid.value, buf, mr.rkey};
  overlay::Blob blob = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(1), 7100, blob);
  overlay::Blob reply = co_await ctx.oob().recv(7100);
  const auto peer = overlay::unpack<verbs::ConnInfo>(reply);

  t0 = loop.now();
  (void)co_await apps::raise_to_rts_batched(ctx, qpn, peer);
  out->us["rts_batch"] = sim::to_us(loop.now() - t0);

  for (const char* v : kBatchPhases) out->total_ms += out->us[v] / 1000.0;
}

sim::Task<void> server_flow(fabric::Testbed* bed) {
  verbs::Context& ctx = bed->ctx(1);
  auto ep = co_await apps::setup_endpoint(ctx);
  overlay::Blob blob = co_await ctx.oob().recv(7100);
  (void)blob;
  verbs::ConnInfo info{ep.qp, ep.local_gid, ep.buf, ep.mr.rkey};
  overlay::Blob reply = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(0), 7100, reply);
}

struct RunResult {
  Breakdown breakdown;
  Counters counters;
};

// ---- Fig. 15d: warm-path ablation (MasQ only, DESIGN.md §14) ----
//
// A churn cycle: the client connects, disconnects (lazy teardown parks
// the pair), and reconnects to the same server — the sub-second VM
// lifetime pattern the warm pool exists for. Per cycle we record which
// rung the setup landed on (cold / pooled / reused) and what it cost.
struct WarmCycle {
  verbs::WarmKind kind = verbs::WarmKind::kCold;
  double ms = 0;
};

struct WarmResult {
  std::vector<WarmCycle> cycles;
  double cold_ms = 0;    // median over cold cycles (0 if none hit)
  double pooled_ms = 0;  // median over pooled cycles
  double reused_ms = 0;  // median over reused cycles
  double median_warm_ms = 0;  // median over ALL warm-run cycles
};

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

sim::Task<void> warm_server_loop(fabric::Testbed* bed, int cycles) {
  verbs::Context& ctx = bed->ctx(1);
  for (int i = 0; i < cycles; ++i) {
    apps::WarmConn conn;
    (void)co_await apps::warm_connect_server(ctx, conn,
                                             bed->instance_vip(0), 7200);
    co_await apps::warm_disconnect(ctx, conn);
  }
}

sim::Task<void> warm_client_loop(fabric::Testbed* bed, int cycles,
                                 sim::Time think, WarmResult* out) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  // Let the background refill stage the first pool entries, as a booted
  // VM would have by the time its application connects.
  co_await sim::delay(loop, sim::milliseconds(1));
  for (int i = 0; i < cycles; ++i) {
    apps::WarmConn conn;
    const sim::Time t0 = loop.now();
    (void)co_await apps::warm_connect_client(ctx, conn,
                                             bed->instance_vip(1), 7200);
    out->cycles.push_back(
        WarmCycle{conn.kind, sim::to_us(loop.now() - t0) / 1000.0});
    co_await apps::warm_disconnect(ctx, conn);
    co_await sim::delay(loop, think);
  }
}

WarmResult run_warm_ablation(int cycles, sim::Time think) {
  sim::EventLoop loop;
  bench::BedOptions opts;
  opts.masq_warm.enabled = true;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq, opts);
  WarmResult out;
  loop.spawn(warm_server_loop(bed.get(), cycles));
  loop.spawn(warm_client_loop(bed.get(), cycles, think, &out));
  loop.run();
  std::vector<double> cold, pooled, reused, all;
  for (const WarmCycle& c : out.cycles) {
    all.push_back(c.ms);
    switch (c.kind) {
      case verbs::WarmKind::kCold: cold.push_back(c.ms); break;
      case verbs::WarmKind::kPooled: pooled.push_back(c.ms); break;
      case verbs::WarmKind::kReused: reused.push_back(c.ms); break;
    }
  }
  out.cold_ms = median_of(cold);
  out.pooled_ms = median_of(pooled);
  out.reused_ms = median_of(reused);
  out.median_warm_ms = median_of(all);
  return out;
}

RunResult run_candidate(fabric::Candidate c, bool batched) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  RunResult out;
  loop.spawn(server_flow(bed.get()));
  loop.spawn(batched ? client_flow_batched(bed.get(), &out.breakdown)
                     : client_flow(bed.get(), &out.breakdown));
  loop.run();
  out.counters = read_counters(*bed);
  return out;
}

void emit_json(fabric::Candidate c, const char* mode, const RunResult& r) {
  const Counters& k = r.counters;
  std::printf(
      "{\"bench\":\"fig15_conn_setup\",\"candidate\":\"%s\","
      "\"mode\":\"%s\",\"total_ms\":%.4f,\"kicks\":%llu,"
      "\"interrupts\":%llu,\"coalesced_kicks\":%llu,"
      "\"coalesced_interrupts\":%llu,\"single_flight_coalesced\":%llu}\n",
      fabric::to_string(c), mode, r.breakdown.total_ms,
      static_cast<unsigned long long>(k.kicks),
      static_cast<unsigned long long>(k.interrupts),
      static_cast<unsigned long long>(k.coalesced_kicks),
      static_cast<unsigned long long>(k.coalesced_interrupts),
      static_cast<unsigned long long>(k.single_flight_coalesced));
}

}  // namespace

int main() {
  bench::title("Fig. 15a", "average RDMA connection-establishment delay");
  const double paper_total[] = {0.8, 3.9, 1.9, 2.1};  // ms
  std::map<fabric::Candidate, RunResult> results;
  std::map<fabric::Candidate, RunResult> batched;
  int i = 0;
  std::printf("%-10s | %12s | %10s\n", "candidate", "measured(ms)",
              "paper(ms)");
  std::printf("%.42s\n", "------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    results[c] = run_candidate(c, /*batched=*/false);
    std::printf("%-10s | %12.2f | %10.1f\n", fabric::to_string(c),
                results[c].breakdown.total_ms, paper_total[i++]);
  }

  bench::title("Fig. 15b", "per-verb breakdown of connection setup (us)");
  std::printf("%-10s", "candidate");
  for (const char* v : kVerbs) std::printf(" %10s", v);
  std::printf("\n%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s", fabric::to_string(c));
    for (const char* v : kVerbs)
      std::printf(" %10.1f", results[c].breakdown.us[v]);
    std::printf("\n");
  }
  bench::note("paper: Host 0.8 ms < SR-IOV 1.9 ms (VF-slowed control "
              "verbs) < MasQ 2.1 ms (+~25 us virtio per verb) << FreeFlow "
              "3.9 ms (shadow-resource construction in the FFR)");

  bench::title("Fig. 15c (ablation)",
               "sequential vs pipelined control batch");
  std::printf("%-10s | %8s | %8s | %11s | %11s\n", "candidate", "seq(ms)",
              "batch(ms)", "seq kick+irq", "batch kick+irq");
  std::printf("%.62s\n",
              "--------------------------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    batched[c] = run_candidate(c, /*batched=*/true);
    const Counters& sk = results[c].counters;
    const Counters& bk = batched[c].counters;
    std::printf("%-10s | %8.2f | %8.2f | %11llu | %11llu\n",
                fabric::to_string(c), results[c].breakdown.total_ms,
                batched[c].breakdown.total_ms,
                static_cast<unsigned long long>(sk.kicks + sk.interrupts),
                static_cast<unsigned long long>(bk.kicks + bk.interrupts));
  }
  bench::note("MasQ: the batch turns 7 virtqueue round trips into 2 (setup "
              "+ QP ladder); kicks/interrupts drop accordingly while the "
              "backend still runs RConntrack/RConnrename per entry");

  bench::title("Fig. 15d (warm-path ablation)",
               "cold vs pooled vs reused connection setup, MasQ churn cycle");
  const double masq_cold_ms = results[fabric::Candidate::kMasq]
                                  .breakdown.total_ms;
  const WarmResult warm = run_warm_ablation(/*cycles=*/9,
                                            sim::microseconds(200));
  std::printf("%-8s | %10s | %8s | %s\n", "rung", "median(ms)", "speedup",
              "cycles");
  std::printf("%.48s\n", "------------------------------------------------");
  // Speedups are quoted against the 15a verb-only total (1.98 ms) — the
  // conservative baseline: churn-cycle rows below are end-to-end (they
  // include the OOB hello exchange), so a cold cycle costs MORE than the
  // 15a column and the true end-to-end gain is larger still.
  auto row = [&](const char* name, double ms, verbs::WarmKind k) {
    int n = 0;
    for (const WarmCycle& c : warm.cycles) n += c.kind == k ? 1 : 0;
    std::printf("%-8s | %10.3f | %7.1fx | %d\n", name, ms,
                ms > 0 ? masq_cold_ms / ms : 0.0, n);
  };
  row("cold", warm.cold_ms > 0 ? warm.cold_ms : masq_cold_ms,
      verbs::WarmKind::kCold);
  row("pooled", warm.pooled_ms, verbs::WarmKind::kPooled);
  row("reused", warm.reused_ms, verbs::WarmKind::kReused);
  const double speedup =
      warm.median_warm_ms > 0 ? masq_cold_ms / warm.median_warm_ms : 0.0;
  std::printf("warm median %.3f ms vs cold (15a verb total) %.3f ms: "
              "%.1fx\n",
              warm.median_warm_ms, masq_cold_ms, speedup);
  bench::note("pooled skips reg_mr/create_cq/create_qp/INIT (pre-staged by "
              "the background refill); reused skips every verb — one OOB "
              "hello round revives the parked RTS pair");

  bench::title("machine-readable", "one JSON object per candidate x mode");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    emit_json(c, "sequential", results[c]);
    emit_json(c, "batched", batched[c]);
  }
  std::printf(
      "{\"bench\":\"fig15_conn_setup\",\"candidate\":\"masq\","
      "\"mode\":\"warm\",\"cold_ms\":%.4f,\"pooled_ms\":%.4f,"
      "\"reused_ms\":%.4f,\"median_warm_ms\":%.4f,\"speedup\":%.2f}\n",
      masq_cold_ms, warm.pooled_ms, warm.reused_ms, warm.median_warm_ms,
      speedup);
  return 0;
}
