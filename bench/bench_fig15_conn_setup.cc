// Fig. 15: RDMA connection-establishment performance — (a) average delay
// to establish one connection, (b) per-verb breakdown over the Fig. 1
// sequence (reg_mr, create_cq, create_qp, query_gid, INIT, RTR, RTS).
#include <cstdio>
#include <map>
#include <string>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

const char* kVerbs[] = {"reg_mr", "create_cq", "create_qp", "query_gid",
                        "qp_INIT", "qp_RTR", "qp_RTS"};

struct Breakdown {
  std::map<std::string, double> us;
  double total_ms = 0;
};

sim::Task<void> client_flow(fabric::Testbed* bed, Breakdown* out) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto pd = co_await ctx.alloc_pd();
  const mem::Addr buf = ctx.alloc_buffer(65536);

  sim::Time t0 = loop.now();
  auto mr = co_await ctx.reg_mr(pd.value, buf, 1024, apps::kFullAccess);
  out->us["reg_mr"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto cq = co_await ctx.create_cq(200);
  out->us["create_cq"] = sim::to_us(loop.now() - t0);

  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.send_cq = cq.value;
  init.recv_cq = cq.value;
  init.caps.max_send_wr = 100;
  init.caps.max_recv_wr = 100;
  t0 = loop.now();
  auto qp = co_await ctx.create_qp(init);
  out->us["create_qp"] = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  auto gid = co_await ctx.query_gid();
  out->us["query_gid"] = sim::to_us(loop.now() - t0);

  // Exchange with the peer over the OOB channel (untimed: not a verb).
  verbs::ConnInfo info{qp.value, gid.value, buf, mr.value.rkey};
  overlay::Blob blob = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(1), 7100, blob);
  overlay::Blob reply = co_await ctx.oob().recv(7100);
  const auto peer = overlay::unpack<verbs::ConnInfo>(reply);

  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_INIT"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = peer.gid;
  attr.dest_qpn = peer.qpn;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr,
                               rnic::kAttrState | rnic::kAttrDestGid |
                                   rnic::kAttrDestQpn);
  out->us["qp_RTR"] = sim::to_us(loop.now() - t0);

  attr.state = rnic::QpState::kRts;
  t0 = loop.now();
  (void)co_await ctx.modify_qp(qp.value, attr, rnic::kAttrState);
  out->us["qp_RTS"] = sim::to_us(loop.now() - t0);

  for (const char* v : kVerbs) out->total_ms += out->us[v] / 1000.0;
}

sim::Task<void> server_flow(fabric::Testbed* bed) {
  verbs::Context& ctx = bed->ctx(1);
  auto ep = co_await apps::setup_endpoint(ctx);
  overlay::Blob blob = co_await ctx.oob().recv(7100);
  (void)blob;
  verbs::ConnInfo info{ep.qp, ep.local_gid, ep.buf, ep.mr.rkey};
  overlay::Blob reply = overlay::pack(info);
  (void)co_await ctx.oob().send(bed->instance_vip(0), 7100, reply);
}

Breakdown run_candidate(fabric::Candidate c) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  Breakdown out;
  loop.spawn(server_flow(bed.get()));
  loop.spawn(client_flow(bed.get(), &out));
  loop.run();
  return out;
}

}  // namespace

int main() {
  bench::title("Fig. 15a", "average RDMA connection-establishment delay");
  const double paper_total[] = {0.8, 3.9, 1.9, 2.1};  // ms
  std::map<fabric::Candidate, Breakdown> results;
  int i = 0;
  std::printf("%-10s | %12s | %10s\n", "candidate", "measured(ms)",
              "paper(ms)");
  std::printf("%.42s\n", "------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    results[c] = run_candidate(c);
    std::printf("%-10s | %12.2f | %10.1f\n", fabric::to_string(c),
                results[c].total_ms, paper_total[i++]);
  }

  bench::title("Fig. 15b", "per-verb breakdown of connection setup (us)");
  std::printf("%-10s", "candidate");
  for (const char* v : kVerbs) std::printf(" %10s", v);
  std::printf("\n%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s", fabric::to_string(c));
    for (const char* v : kVerbs) std::printf(" %10.1f", results[c].us[v]);
    std::printf("\n");
  }
  bench::note("paper: Host 0.8 ms < SR-IOV 1.9 ms (VF-slowed control "
              "verbs) < MasQ 2.1 ms (+~25 us virtio per verb) << FreeFlow "
              "3.9 ms (shadow-resource construction in the FFR)");
  return 0;
}
