// Ablation: leaf–spine fabric congestion (DESIGN.md §17). The traffic
// phase replays a slice of the 128-host storm schedule as data flows over
// a parameterized Clos fabric — per-link max-min sharing, FNV-1a ECMP,
// multi-hop DCQCN, per-tenant rate limiters — and each table below turns
// one knob: topology, host placement, incast fan-in, elephant/mice mix,
// and the tenant cap. The phase is a pure function of (config, schedule),
// so every row is replayable and identical at any storm thread count.
#include <cstdio>

#include "bench/bench_util.h"
#include "fabric/traffic.h"
#include "sdn/placement.h"

namespace {

// The 128-host workload every table starts from: 8 leaves x 2 spines,
// 25 Gbps host links under a 40 Gbps spine tier (16 hosts/leaf => 16:4
// oversubscription toward the core), 256 x 64 KB flows drawn from the
// storm schedule's first wave.
fabric::ScaleConfig base_cfg() {
  fabric::ScaleConfig cfg;
  cfg.hosts = 128;
  cfg.vms_per_host = 4;
  cfg.tenants = 16;
  cfg.conns_per_vm = 2;
  cfg.waves = 2;
  cfg.shards = 8;
  cfg.seed = 11;
  cfg.traffic.enabled = true;
  cfg.traffic.leaves = 8;
  cfg.traffic.spines = 2;
  cfg.traffic.host_gbps = 25.0;
  cfg.traffic.spine_gbps = 40.0;
  cfg.traffic.flows = 256;
  cfg.traffic.flow_kb = 64;
  return cfg;
}

fabric::TrafficReport run(const fabric::ScaleConfig& cfg) {
  return fabric::run_traffic_phase(cfg,
                                   fabric::storm::StormSchedule::draw(cfg));
}

void header() {
  std::printf("%-22s | %8s %8s %8s %8s | %6s %6s %6s | %5s\n", "variant",
              "agg Gb/s", "p50 us", "p99 us", "max us", "cross", "marks",
              "recov", "util");
  std::printf("%.94s\n",
              "-----------------------------------------------------------"
              "-----------------------------------");
}

void row(const char* name, const fabric::TrafficReport& r) {
  std::printf("%-22s | %8.2f %8.0f %8.0f %8.0f | %6zu %6llu %6llu | %5.2f\n",
              name, r.agg_gbps, r.fct_p50_us, r.fct_p99_us, r.fct_max_us,
              r.spine_crossings, static_cast<unsigned long long>(r.ecn_marks),
              static_cast<unsigned long long>(r.dcqcn_recoveries),
              r.peak_spine_util);
}

}  // namespace

int main() {
  bench::title("Ablation", "leaf-spine fabric congestion, 128 hosts "
                           "(8 leaves x 2 spines, 25/40 Gbps)");

  // ---- topology: direct wire vs Clos vs oversubscribed core ----
  std::printf("\n  -- topology (256 x 64 KB flows) --\n");
  header();
  {
    auto cfg = base_cfg();
    cfg.traffic.leaves = 0;  // direct mode: NIC links only
    row("direct wire", run(cfg));
  }
  row("leafspine 8x2 @40G", run(base_cfg()));
  {
    auto cfg = base_cfg();
    cfg.traffic.spines = 1;
    cfg.traffic.spine_gbps = 10.0;
    row("overspine 8x1 @10G", run(cfg));
  }
  bench::note("the direct wire sees no spine crossings or marks by "
              "construction; shrinking the core to one 10 Gbps spine "
              "drives utilization to 1.0 and stretches the FCT tail");

  // ---- placement: scattered schedule layout vs leaf-affine packing ----
  std::printf("\n  -- host placement (sdn::leaf_affine_host) --\n");
  header();
  const auto scattered = run(base_cfg());
  row("scattered (vm/hosts)", scattered);
  fabric::TrafficReport affine;
  {
    auto cfg = base_cfg();
    cfg.traffic.placement = true;
    affine = run(cfg);
    row("leaf-affine packing", affine);
  }
  std::printf("  spine-crossing rate: %.2f scattered -> %.2f leaf-affine\n",
              static_cast<double>(scattered.spine_crossings) /
                  static_cast<double>(scattered.flows),
              static_cast<double>(affine.spine_crossings) /
                  static_cast<double>(affine.flows));
  bench::note("leaf-affine placement packs each tenant's VMs onto "
              "contiguous hosts; the leaf tier absorbs same-tenant flows "
              "that used to cross the spine (same per-host VM counts, so "
              "the control plane is untouched)");

  // ---- incast fan-in sweep (DCQCN recovery path) ----
  std::printf("\n  -- incast fan-in at host 0 (256 KB flows) --\n");
  header();
  for (std::size_t fanin : {8u, 16u, 32u, 48u, 64u}) {
    auto cfg = base_cfg();
    cfg.traffic.pattern = "incast";
    cfg.traffic.incast_fanin = fanin;
    cfg.traffic.flow_kb = 256;
    char name[32];
    std::snprintf(name, sizeof name, "fan-in %zu", fanin);
    row(name, run(cfg));
  }
  bench::note("every added sender splits host 0's 25 Gbps down-link "
              "further: the FCT tail (p99/max) stretches with the fan-in "
              "and rate-cut recoveries appear, while the background pairs "
              "keep their FCT (p50 barely moves)");

  // ---- elephant/mice mix ----
  std::printf("\n  -- elephant/mice mix (512 flows, 16 KB mice) --\n");
  header();
  for (std::size_t every : {0u, 8u, 4u}) {
    auto cfg = base_cfg();
    cfg.traffic.flows = 512;
    cfg.traffic.flow_kb = 16;
    cfg.traffic.elephant_every = every;
    cfg.traffic.elephant_kb = 2048;
    char name[32];
    if (every == 0) {
      std::snprintf(name, sizeof name, "mice only");
    } else {
      std::snprintf(name, sizeof name, "elephant every %zu", every);
    }
    row(name, run(cfg));
  }
  bench::note("2 MB elephants stretch the FCT tail (p99/max) and draw the "
              "ECN marks; the mice-dominated p50 moves far less — DCQCN "
              "throttles the flows actually occupying the shared links");

  // ---- per-tenant rate limits under incast congestion (Fig. 12) ----
  std::printf("\n  -- tenant rate limit under 48-way incast --\n");
  std::printf("%-22s | %10s %10s | %6s %6s\n", "cap (Gbps)", "peak tenant",
              "agg Gb/s", "marks", "thrtl");
  std::printf("%.64s\n",
              "----------------------------------------------------------"
              "------");
  for (double cap : {0.0, 10.0, 5.0, 2.5}) {
    auto cfg = base_cfg();
    cfg.traffic.pattern = "incast";
    cfg.traffic.incast_fanin = 48;
    cfg.traffic.flow_kb = 256;
    cfg.traffic.tenant_gbps = cap;
    const auto r = run(cfg);
    char name[32];
    if (cap == 0.0) {
      std::snprintf(name, sizeof name, "off");
    } else {
      std::snprintf(name, sizeof name, "%.1f", cap);
    }
    std::printf("%-22s | %10.3f %10.2f | %6llu %6llu\n", name,
                r.peak_tenant_gbps, r.agg_gbps,
                static_cast<unsigned long long>(r.ecn_marks),
                static_cast<unsigned long long>(r.throttled_flows));
  }
  bench::note("Fig. 12 semantics hold under fabric congestion: the peak "
              "per-tenant aggregate never exceeds the configured cap, at "
              "every cap, while the incast rages on the same fabric");
  return 0;
}
