// Fig. 11: aggregate throughput of multiple QP connections (1 - 1024 QPs,
// 64 KB messages) — virtualization must not degrade under QP fan-out.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double bw(fabric::Candidate c, int qps) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::BwConfig cfg;
  cfg.op = apps::perftest::Op::kWrite;
  cfg.msg_size = 65536;
  cfg.num_qps = qps;
  cfg.iterations = std::max(4, 512 / qps);
  cfg.window = 64;
  return apps::perftest::run_bw(*bed, cfg);
}

}  // namespace

int main() {
  bench::title("Fig. 11", "aggregate throughput vs number of QPs (Gbps)");
  const int counts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  std::printf("%-10s", "QPs");
  for (int n : counts) std::printf(" %6d", n);
  std::printf("\n%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (fabric::Candidate c :
       {fabric::Candidate::kHostRdma, fabric::Candidate::kSriov,
        fabric::Candidate::kMasq}) {
    std::printf("%-10s", fabric::to_string(c));
    for (int n : counts) std::printf(" %6.1f", bw(c, n));
    std::printf("\n");
  }
  bench::note("paper: throughput of MasQ and SR-IOV identical to Host-RDMA "
              "from 1 to 1024 QPs — no per-QP software in the data path");
  return 0;
}
