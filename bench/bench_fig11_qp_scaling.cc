// Fig. 11: aggregate throughput of multiple QP connections (1 - 1024 QPs,
// 64 KB messages) — virtualization must not degrade under QP fan-out.
// Plus an ablation: the control-path cost of standing those QPs up,
// sequential verbs vs one pipelined control batch.
#include <cstdio>
#include <vector>

#include "apps/common.h"
#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double bw(fabric::Candidate c, int qps) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::BwConfig cfg;
  cfg.op = apps::perftest::Op::kWrite;
  cfg.msg_size = 65536;
  cfg.num_qps = qps;
  cfg.iterations = std::max(4, 512 / qps);
  cfg.window = 64;
  return apps::perftest::run_bw(*bed, cfg);
}

// Stands up n (CQ, QP) pairs, either verb-by-verb or as one ControlBatch
// (the frontend chunks batches wider than the virtqueue ring, so n is not
// capped by ring size). Returns wall time in ms.
sim::Task<void> create_qps(fabric::Testbed* bed, int n, bool batched,
                           double* out_ms) {
  verbs::Context& ctx = bed->ctx(0);
  sim::EventLoop& loop = bed->loop();
  auto pd = co_await ctx.alloc_pd();
  rnic::QpInitAttr init;
  init.pd = pd.value;
  init.caps.max_send_wr = 64;
  init.caps.max_recv_wr = 64;
  const sim::Time t0 = loop.now();
  if (batched) {
    auto batch = ctx.make_batch();
    for (int i = 0; i < n; ++i) {
      const int cq = batch->create_cq(64);
      (void)batch->create_qp(init, cq, cq);
    }
    (void)co_await batch->commit();
  } else {
    for (int i = 0; i < n; ++i) {
      auto cq = co_await ctx.create_cq(64);
      init.send_cq = cq.value;
      init.recv_cq = cq.value;
      (void)co_await ctx.create_qp(init);
    }
  }
  *out_ms = sim::to_us(loop.now() - t0) / 1000.0;
}

double setup_ms(fabric::Candidate c, int n, bool batched) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  double out = 0;
  loop.spawn(create_qps(bed.get(), n, batched, &out));
  loop.run();
  return out;
}

}  // namespace

int main() {
  bench::title("Fig. 11", "aggregate throughput vs number of QPs (Gbps)");
  const int counts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  std::printf("%-10s", "QPs");
  for (int n : counts) std::printf(" %6d", n);
  std::printf("\n%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (fabric::Candidate c :
       {fabric::Candidate::kHostRdma, fabric::Candidate::kSriov,
        fabric::Candidate::kMasq}) {
    std::printf("%-10s", fabric::to_string(c));
    for (int n : counts) std::printf(" %6.1f", bw(c, n));
    std::printf("\n");
  }
  bench::note("paper: throughput of MasQ and SR-IOV identical to Host-RDMA "
              "from 1 to 1024 QPs — no per-QP software in the data path");

  bench::title("Fig. 11 (ablation)",
               "time to stand up N (CQ, QP) pairs: sequential vs batch (ms)");
  const int setup_counts[] = {1, 8, 64, 256};
  std::printf("%-18s", "mode");
  for (int n : setup_counts) std::printf(" %8d", n);
  std::printf("\n%.54s\n",
              "------------------------------------------------------");
  for (fabric::Candidate c :
       {fabric::Candidate::kHostRdma, fabric::Candidate::kMasq}) {
    for (bool batched : {false, true}) {
      std::printf("%-10s %-7s", fabric::to_string(c),
                  batched ? "batch" : "seq");
      for (int n : setup_counts)
        std::printf(" %8.2f", setup_ms(c, n, batched));
      std::printf("\n");
    }
  }
  bench::note("MasQ batch pays one virtqueue transit per ring-sized chunk "
              "instead of one per verb; 256 pairs = 512 commands = 2 chunks "
              "on the 256-descriptor ring");
  return 0;
}
