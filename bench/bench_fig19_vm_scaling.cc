// Fig. 19: aggregate throughput of 1-128 VM pairs (one ib_write_bw flow
// each). MasQ scales to 128 pairs (256 VMs) with no loss; SR-IOV stops at
// 8 pairs per host — out of VFs (Table 5).
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double aggregate(fabric::Candidate c, int pairs, bool* ok) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = c;
  cfg.cal.host_dram_bytes = 96ull << 30;   // Table 3
  cfg.cal.vm_mem_bytes = 512ull << 20;     // Table 5 VM sizing
  fabric::Testbed bed(loop, cfg);
  for (int i = 0; i < 2 * pairs; ++i) {
    if (!bed.add_instance().has_value()) {
      *ok = false;
      return 0.0;
    }
  }
  *ok = true;
  apps::perftest::BwConfig bw;
  bw.op = apps::perftest::Op::kWrite;
  bw.msg_size = 65536;
  bw.iterations = std::max(8, 256 / pairs);
  bw.window = 32;
  return apps::perftest::run_bw_pairs(bed, pairs, bw);
}

}  // namespace

int main() {
  bench::title("Fig. 19", "aggregate throughput of N VM pairs (Gbps)");
  const int counts[] = {1, 2, 4, 8, 16, 32, 64, 128};
  std::printf("%-10s", "pairs");
  for (int n : counts) std::printf(" %7d", n);
  std::printf("\n%.70s\n",
              "-----------------------------------------------------------"
              "-----------");
  for (fabric::Candidate c :
       {fabric::Candidate::kSriov, fabric::Candidate::kMasq}) {
    std::printf("%-10s", fabric::to_string(c));
    for (int n : counts) {
      bool ok = false;
      const double gbps = aggregate(c, n, &ok);
      if (ok) {
        std::printf(" %7.1f", gbps);
      } else {
        std::printf(" %7s", "no-VF");
      }
    }
    std::printf("\n");
  }
  bench::note("paper: MasQ sustains line rate for every pair count; SR-IOV "
              "cannot even launch beyond 8 VMs per host (non-ARI PCIe)");
  return 0;
}
