// Fig. 20: Graph500 BFS and SSSP performance (TEPS), 16 MPI processes on
// two instances. The paper ran scale=26/edgefactor=16 on real hardware; we
// run a scaled-down Kronecker graph with the same communication structure
// and validate every result. FreeFlow is reported too (the paper could not
// run it due to memory corruption in FreeFlow itself).
#include <cstdio>

#include "apps/graph500.h"
#include "bench/bench_util.h"

namespace {

apps::graph500::Result run_one(fabric::Candidate c,
                               bench::BedOptions opts = {},
                               int num_instances = 2) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c, opts);
  apps::graph500::Config cfg;
  cfg.scale = 14;
  cfg.edge_factor = 16;
  cfg.num_ranks = 16;
  cfg.num_instances = num_instances;
  cfg.num_roots = 3;
  return apps::graph500::run(*bed, cfg);
}

}  // namespace

int main() {
  bench::title("Fig. 20", "Graph500 BFS / SSSP (TEPS, scale=14 ef=16, "
                          "16 ranks on 2 instances)");
  std::printf("%-10s | %12s %12s | %10s %10s | %s\n", "candidate",
              "BFS MTEPS", "SSSP MTEPS", "BFS ok", "SSSP ok", "note");
  std::printf("%.84s\n",
              "-----------------------------------------------------------"
              "-------------------------");
  for (fabric::Candidate c :
       {fabric::Candidate::kHostRdma, fabric::Candidate::kSriov,
        fabric::Candidate::kMasq, fabric::Candidate::kFreeFlow}) {
    const auto r = run_one(c);
    std::printf("%-10s | %12.1f %12.1f | %10s %10s | %s\n",
                fabric::to_string(c), r.bfs.teps / 1e6, r.sssp.teps / 1e6,
                r.bfs.validated ? "valid" : "INVALID",
                r.sssp.validated ? "valid" : "INVALID",
                c == fabric::Candidate::kFreeFlow
                    ? "(paper: could not run)"
                    : "");
  }
  bench::note("paper shape (scale 26): MasQ has almost no degradation vs "
              "Host-RDMA and matches SR-IOV on both kernels; absolute TEPS "
              "differ since the graph is scaled down");

  // Fabric re-run (DESIGN.md §17): the same MasQ workload spread over 8
  // hosts, one per leaf, so every rank exchange crosses the leaf-spine
  // fabric — first with a full-rate core, then oversubscribed.
  bench::title("Fig. 20 (fabric)", "Graph500 on MasQ, 16 ranks over 8 "
                                   "hosts across a leaf-spine fabric");
  std::printf("%-22s | %12s %12s | %10s %10s\n", "fabric", "BFS MTEPS",
              "SSSP MTEPS", "BFS ok", "SSSP ok");
  std::printf("%.76s\n",
              "-----------------------------------------------------------"
              "-----------------");
  struct Variant {
    const char* name;
    std::optional<net::FabricConfig> topo;
  } variants[] = {
      {"direct wire", std::nullopt},
      {"8 leaves x 2 @40G", bench::cross_leaf_fabric(8, 2, 40.0, 40.0)},
      {"8 leaves x 1 @10G", bench::cross_leaf_fabric(8, 1, 40.0, 10.0)},
  };
  for (const auto& v : variants) {
    bench::BedOptions opts;
    opts.instances = 8;
    opts.num_hosts = 8;
    opts.topology = v.topo;
    const auto r = run_one(fabric::Candidate::kMasq, opts, 8);
    std::printf("%-22s | %12.1f %12.1f | %10s %10s\n", v.name,
                r.bfs.teps / 1e6, r.sssp.teps / 1e6,
                r.bfs.validated ? "valid" : "INVALID",
                r.sssp.validated ? "valid" : "INVALID");
  }
  bench::note("a full-rate spine tier costs BFS/SSSP nothing (max-min "
              "shares match the direct wire); only starving the core to "
              "10 Gbps bends the curve — and validation still passes, the "
              "fabric changes rates, never bytes");
  return 0;
}
