// Fig. 14: MPI collective latency — broadcast and allreduce. The paper
// omits FreeFlow from allreduce (it crashed with memory corruption on the
// authors' testbed); our reimplementation runs it, so both columns are
// reported and the omission noted.
#include <cstdio>
#include <memory>

#include "apps/minimpi.h"
#include "bench/bench_util.h"

namespace {

struct Rig {
  sim::EventLoop loop;
  std::unique_ptr<fabric::Testbed> bed;
  std::unique_ptr<apps::mpi::Comm> comm;

  explicit Rig(fabric::Candidate c) {
    bed = bench::make_bed(loop, c);
    struct Mk {
      static sim::Task<void> run(Rig* r) {
        std::vector<std::size_t> ranks{0, 1};
        r->comm = co_await apps::mpi::Comm::create(*r->bed, ranks);
      }
    };
    loop.spawn(Mk::run(this));
    loop.run();
  }
};

void sweep(const char* name,
           double (*fn)(fabric::Testbed&, apps::mpi::Comm&, std::uint32_t,
                        int)) {
  const std::uint32_t sizes[] = {4, 64, 1024, 16384};
  std::printf("%s\n%-10s", name, "size(B)");
  for (auto s : sizes) std::printf(" %9u", s);
  std::printf("\n%.55s\n",
              "-------------------------------------------------------");
  for (fabric::Candidate c : fabric::kAllCandidates) {
    Rig rig(c);
    std::printf("%-10s", fabric::to_string(c));
    for (auto s : sizes) std::printf(" %9.2f", fn(*rig.bed, *rig.comm, s, 50));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::title("Fig. 14a", "MPI broadcast latency (us)");
  sweep("osu_bcast", &apps::mpi::osu_bcast);
  bench::title("Fig. 14b", "MPI allreduce latency (us)");
  sweep("osu_allreduce", &apps::mpi::osu_allreduce);
  bench::note("paper omits FreeFlow from allreduce (memory corruption on "
              "their testbed); MasQ matches or beats SR-IOV, both slightly "
              "behind Host-RDMA");
  return 0;
}
