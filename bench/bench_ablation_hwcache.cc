// Ablation: the hardware-solution scalability cliff (§1).
//
// "RNIC has to cache the contexts of virtual networks ... if the VPC
// network is large, then communication performance is reduced since RNIC
// must frequently fetch contexts from DRAM. As reported in [17], the
// throughput of stat operations decreases by almost 50% when the number of
// clients increases from 40 to 120."
//
// We sweep the peer count past the NIC's tunnel-table cache and report the
// per-message miss rate and the effective message rate of an SR-IOV VF.
// MasQ has no per-message lookup at all — its row is flat by construction.
#include <cstdio>

#include "bench/bench_util.h"
#include "net/fluid.h"
#include "rnic/device.h"

namespace {

struct Sweep {
  double miss_rate = 0;
  double mops = 0;
};

// Round-robin UD datagrams across `peers` destinations on a VF whose
// tunnel cache holds `cache_entries`; returns the miss rate and message
// rate (bounded by the per-message lookup cost).
Sweep run(int peers, int cache_entries) {
  sim::EventLoop loop;
  net::FluidNet fnet(loop);
  mem::HostPhysMap phys(1024 * mem::kPageSize);
  rnic::DeviceConfig dc;
  dc.ip = *net::Ipv4Addr::parse("10.0.0.1");
  dc.tunnel_cache_capacity = cache_entries;
  rnic::RnicDevice dev(loop, fnet, phys, dc);
  dev.set_fn_address(1, *net::Ipv4Addr::parse("192.168.1.1"),
                     net::MacAddr::from_u64(1), 100, /*offload=*/true);
  for (int i = 0; i < peers; ++i) {
    dev.program_tunnel(
        net::Gid::from_ipv4(net::Ipv4Addr{0xC0A80200u +
                                          static_cast<std::uint32_t>(i)}),
        {net::Gid::from_ipv4(*net::Ipv4Addr::parse("10.0.0.2")), 100});
  }
  auto pd = dev.alloc_pd(1).value;
  auto cq = dev.create_cq(1, 8192).value;
  rnic::QpInitAttr init;
  init.type = rnic::QpType::kUd;
  init.pd = pd;
  init.send_cq = cq;
  init.recv_cq = cq;
  init.caps.max_send_wr = 8192;
  auto qp = dev.create_qp(1, init).value;
  const mem::Addr hpa = phys.alloc_pages(1);
  auto mr = dev.create_mr(1, pd, 0x7f0000000000ull, 4096, rnic::kLocalWrite,
                          {{hpa, 4096}});
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  attr.qkey = 1;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState | rnic::kAttrQkey);
  attr.state = rnic::QpState::kRtr;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState);
  attr.state = rnic::QpState::kRts;
  (void)dev.modify_qp(qp, attr, rnic::kAttrState);

  const int kMessages = 2000;
  const sim::Time t0 = loop.now();
  for (int m = 0; m < kMessages; ++m) {
    rnic::SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(m);
    wr.opcode = rnic::WrOpcode::kSend;
    wr.sge = {0x7f0000000000ull, 16, mr.value.lkey};
    wr.ud = {net::Gid::from_ipv4(net::Ipv4Addr{
                 0xC0A80200u + static_cast<std::uint32_t>(m % peers)}),
             5, 1};
    (void)dev.post_send(qp, wr);
  }
  loop.run();
  Sweep s;
  const auto lookups = dev.tunnel_cache_hits() + dev.tunnel_cache_misses();
  s.miss_rate = lookups == 0 ? 0
                             : static_cast<double>(dev.tunnel_cache_misses()) /
                                   static_cast<double>(lookups);
  s.mops = static_cast<double>(kMessages) / sim::to_us(loop.now() - t0);
  return s;
}

}  // namespace

int main() {
  bench::title("Ablation",
               "SR-IOV tunnel-cache scalability cliff (§1) — 128-entry "
               "on-chip cache");
  std::printf("%-10s | %10s | %12s | %s\n", "peers", "miss rate",
              "VF msg Mops", "MasQ (no per-msg lookup)");
  std::printf("%.66s\n",
              "-----------------------------------------------------------"
              "-------");
  double base = 0;
  for (int peers : {16, 64, 128, 160, 256, 512}) {
    const Sweep s = run(peers, 128);
    if (base == 0) base = s.mops;
    std::printf("%-10d | %9.0f%% | %12.2f | %s\n", peers, s.miss_rate * 100,
                s.mops,
                s.mops < base * 0.6 ? "flat (connection-time rename only)"
                                    : "flat");
  }
  bench::note("once the peer set exceeds the on-chip table, every message "
              "fetches tunnel state from DRAM and the message rate "
              "collapses — the paper's core argument against pure hardware "
              "virtualization (§1, [17])");
  return 0;
}
