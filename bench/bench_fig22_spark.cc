// Fig. 22 + Fig. 23: RDMA-Spark GroupBy/SortBy job completion time and the
// GroupBy per-stage breakdown (FlatMap / GroupByKey).
#include <cstdio>

#include "apps/sparklite.h"
#include "bench/bench_util.h"

namespace {

apps::spark::JobResult job(fabric::Candidate c, apps::spark::Workload w,
                           bench::BedOptions opts = {}) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c, opts);
  return apps::spark::run(*bed, w, {});
}

}  // namespace

int main() {
  bench::title("Fig. 22", "Spark job completion time (s), 131072 x 1 KB "
                          "pairs, 8 mappers / 8 reducers");
  std::printf("%-10s | %10s %10s\n", "candidate", "GroupBy", "SortBy");
  std::printf("%.36s\n", "------------------------------------");
  apps::spark::JobResult groupby[4];
  int i = 0;
  for (fabric::Candidate c : fabric::kAllCandidates) {
    groupby[i] = job(c, apps::spark::Workload::kGroupBy);
    const auto sortby = job(c, apps::spark::Workload::kSortBy);
    std::printf("%-10s | %10.2f %10.2f\n", fabric::to_string(c),
                groupby[i].total_s, sortby.total_s);
    ++i;
  }

  bench::title("Fig. 23", "GroupBy stage breakdown (s)");
  std::printf("%-10s | %10s %12s\n", "candidate", "FlatMap", "GroupByKey");
  std::printf("%.38s\n", "--------------------------------------");
  i = 0;
  for (fabric::Candidate c : fabric::kAllCandidates) {
    std::printf("%-10s | %10.2f %12.2f\n", fabric::to_string(c),
                groupby[i].flatmap_s, groupby[i].shuffle_s);
    ++i;
  }
  bench::note("paper: FlatMap (pure compute) is slower on VMs (MasQ, "
              "SR-IOV) than on host/container; in GroupByKey FreeFlow's "
              "network overhead eats its compute advantage, ending near "
              "MasQ — and MasQ spends zero CPU on networking while "
              "FreeFlow burns a core in the FFR");

  // Fabric re-run (DESIGN.md §17): the shuffle is the all-to-all phase —
  // exactly the traffic that crosses the spine when the two instances sit
  // one leaf apart.
  bench::title("Fig. 22 (fabric)", "MasQ GroupBy across a leaf-spine "
                                   "fabric");
  std::printf("%-10s | %10s | %10s %12s\n", "fabric", "total", "FlatMap",
              "GroupByKey");
  std::printf("%.50s\n",
              "--------------------------------------------------");
  struct Variant {
    const char* name;
    std::optional<net::FabricConfig> topo;
  } variants[] = {
      {"direct", std::nullopt},
      {"2x2@40G", bench::cross_leaf_fabric(2, 2, 40.0, 40.0)},
      {"2x1@10G", bench::cross_leaf_fabric(2, 1, 40.0, 10.0)},
  };
  for (const auto& v : variants) {
    bench::BedOptions opts;
    opts.topology = v.topo;
    const auto r =
        job(fabric::Candidate::kMasq, apps::spark::Workload::kGroupBy, opts);
    std::printf("%-10s | %10.2f | %10.2f %12.2f\n", v.name, r.total_s,
                r.flatmap_s, r.shuffle_s);
  }
  bench::note("FlatMap (compute) is fabric-invariant; the shuffle pays "
              "only when the spine is oversubscribed — the full-rate Clos "
              "reproduces the direct-wire job time");
  return 0;
}
