// Ablation: sensitivity of MasQ's control-path overhead to the virtio
// round-trip time (the paper measured ~20 us on its testbed; newer
// hypervisors/vhost implementations differ).
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

double conn_setup_ms(sim::Time oneway) {
  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.cal.virtio_costs.guest_to_host = oneway;
  cfg.cal.virtio_costs.host_to_guest = oneway;
  fabric::Testbed bed(loop, cfg);
  bed.add_instances(2);
  double ms = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, double* ms) {
      struct Srv {
        static sim::Task<void> run(fabric::Testbed* bed) {
          auto ep = co_await apps::setup_endpoint(bed->ctx(1));
          (void)co_await apps::connect_server(bed->ctx(1), ep,
                                              bed->instance_vip(0), 7600);
        }
      };
      bed->loop().spawn(Srv::run(bed));
      const sim::Time t0 = bed->loop().now();
      auto ep = co_await apps::setup_endpoint(bed->ctx(0));
      (void)co_await apps::connect_client(bed->ctx(0), ep,
                                          bed->instance_vip(1), 7600);
      *ms = sim::to_ms(bed->loop().now() - t0);
    }
  };
  loop.spawn(Run::go(&bed, &ms));
  loop.run();
  return ms;
}

}  // namespace

int main() {
  bench::title("Ablation", "virtio round-trip time sweep (control path)");
  std::printf("%-18s | %22s\n", "virtio RTT (us)", "conn setup incl. OOB "
                                                   "(ms)");
  std::printf("%.46s\n", "----------------------------------------------");
  for (double rtt_us : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    std::printf("%-18.0f | %22.2f\n", rtt_us,
                conn_setup_ms(sim::microseconds(rtt_us / 2)));
  }
  bench::note("the paper's 20 us RTT adds ~0.15 ms over SR-IOV across the "
              "~6 forwarded verbs of a connection setup; even a 4x worse "
              "virtqueue keeps the one-time overhead under a millisecond");
  return 0;
}
