// Table 4: cost of the security-related operations exposed by RConntrack —
// rule installation, connection validation/tracking, and connection reset.
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"
#include "masq/frontend.h"

namespace {

struct Costs {
  double insert_rule = 0;
  double valid_conn = 0;
  double insert_conn = 0;
  double delete_conn = 0;
  double reset_conn = 0;
};

sim::Task<void> measure(fabric::Testbed* bed, Costs* out) {
  // Establish a connection to have something to track/reset.
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), ep,
                                          bed->instance_vip(0), 7400);
    }
  };
  bed->loop().spawn(Srv::run(bed));
  auto ep = co_await apps::setup_endpoint(bed->ctx(0));
  (void)co_await apps::connect_client(bed->ctx(0), ep,
                                      bed->instance_vip(1), 7400);

  auto& backend = bed->masq_backend(0);
  auto& track = backend.conntrack();
  auto& session = static_cast<masq::MasqContext&>(bed->ctx(0)).session();
  sim::EventLoop& loop = bed->loop();
  overlay::SecurityPolicy& pol = bed->policy(100);

  sim::Time t0 = loop.now();
  (void)co_await track.install_rule(
      pol, pol.firewall(overlay::Chain::kInput),
      overlay::Rule::allow(net::Ipv4Cidr::any(), net::Ipv4Cidr::any(),
                           overlay::Proto::kTcp, -5));
  out->insert_rule = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  (void)co_await track.validate(100, bed->instance_vip(0),
                                bed->instance_vip(1));
  out->valid_conn = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  co_await track.track({100, bed->instance_vip(0), bed->instance_vip(1),
                        9999, &session.driver()});
  out->insert_conn = sim::to_us(loop.now() - t0);

  t0 = loop.now();
  co_await track.untrack(9999, 100);
  out->delete_conn = sim::to_us(loop.now() - t0);

  // reset_conn: modify the live QP to ERROR at the backend level.
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kError;
  t0 = loop.now();
  (void)co_await session.driver().modify_qp(ep.qp, attr, rnic::kAttrState);
  out->reset_conn = sim::to_us(loop.now() - t0);
}

}  // namespace

int main() {
  bench::title("Table 4", "cost of security-related operations");
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq);
  Costs costs;
  bench::run(*bed, measure(bed.get(), &costs));

  struct Row {
    const char* caller;
    const char* op;
    double measured;
    double paper;
  } rows[] = {
      {"update_rules", "insert_rule()", costs.insert_rule, 1.5},
      {"update_rules", "reset_conn()", costs.reset_conn, 518},
      {"modify_qp_RTR", "valid_conn()", costs.valid_conn, 2.5},
      {"modify_qp_RTR", "insert_conn()", costs.insert_conn, 1.5},
      {"destroy_qp", "delete_conn()", costs.delete_conn, 1.5},
  };
  std::printf("%-16s | %-16s | %12s | %10s\n", "caller", "basic op",
              "measured(us)", "paper(us)");
  std::printf("%.64s\n",
              "-----------------------------------------------------------"
              "-----");
  for (const auto& r : rows) {
    std::printf("%-16s | %-16s | %12.1f | %10.1f\n", r.caller, r.op,
                r.measured, r.paper);
  }
  bench::note("reset_conn dominates: kernel routine + RNIC QP-drain "
              "processing (Fig. 18); everything else is microseconds of "
              "table maintenance");
  return 0;
}
