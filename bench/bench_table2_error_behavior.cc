// Table 2: observed behaviour of the application and the RNIC when a QP is
// modified to the ERROR state. Each row is demonstrated live against the
// simulated device and reported next to the paper's expected behaviour.
#include <cstdio>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

struct Probe {
  bool post_recv_allowed = false;
  bool post_send_allowed = false;
  bool poll_returns_error_cqe = false;
  std::uint64_t incoming_dropped = 0;
  std::uint64_t outgoing_after_error = 0;
  int flushed_cqes = 0;
};

sim::Task<void> scenario(fabric::Testbed* bed, Probe* probe) {
  // Connect a pair, then force the client QP to ERROR.
  apps::Endpoint server;
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed, apps::Endpoint* ep) {
      *ep = co_await apps::setup_endpoint(bed->ctx(1));
      (void)co_await apps::connect_server(bed->ctx(1), *ep,
                                          bed->instance_vip(0), 7000);
    }
  };
  bed->loop().spawn(Srv::run(bed, &server));
  apps::Endpoint client = co_await apps::setup_endpoint(bed->ctx(0));
  (void)co_await apps::connect_client(bed->ctx(0), client,
                                      bed->instance_vip(1), 7000);

  verbs::Context& cctx = bed->ctx(0);
  rnic::QpAttr err;
  err.state = rnic::QpState::kError;
  (void)co_await cctx.modify_qp(client.qp, err, rnic::kAttrState);

  const auto tx_before = bed->device(0).counters().tx_msgs;

  // Application rows: posting is allowed, WQEs flush with error CQEs.
  rnic::RecvWr rwr{1, {client.buf, 64, client.mr.lkey}};
  probe->post_recv_allowed =
      cctx.post_recv(client.qp, rwr) == rnic::Status::kOk;
  rnic::SendWr swr;
  swr.wr_id = 2;
  swr.opcode = rnic::WrOpcode::kSend;
  swr.sge = {client.buf, 8, client.mr.lkey};
  probe->post_send_allowed =
      cctx.post_send(client.qp, swr) == rnic::Status::kOk;
  co_await sim::delay(bed->loop(), sim::microseconds(10));
  rnic::Completion c;
  while (cctx.poll_cq(client.scq, 1, &c) == 1) {
    if (c.status == rnic::WcStatus::kWrFlushErr) {
      probe->poll_returns_error_cqe = true;
      ++probe->flushed_cqes;
    }
  }
  while (cctx.poll_cq(client.rcq, 1, &c) == 1) {
    if (c.status == rnic::WcStatus::kWrFlushErr) ++probe->flushed_cqes;
  }
  probe->outgoing_after_error =
      bed->device(0).counters().tx_msgs - tx_before;

  // RNIC rows: incoming packets to an ERROR QP are dropped.
  const auto dropped_before = bed->device(0).counters().dropped_bad_state;
  rnic::SendWr from_server;
  from_server.wr_id = 3;
  from_server.opcode = rnic::WrOpcode::kSend;
  from_server.sge = {server.buf, 8, server.mr.lkey};
  (void)bed->ctx(1).post_send(server.qp, from_server);
  co_await sim::delay(bed->loop(), sim::milliseconds(10));
  probe->incoming_dropped =
      bed->device(0).counters().dropped_bad_state - dropped_before;
}

void print_row(const char* side, const char* action, const char* paper,
               bool pass, const char* observed) {
  std::printf("%-12s | %-28s | %-32s | %-9s %s\n", side, action, paper,
              pass ? "OK" : "MISMATCH", observed);
}

}  // namespace

int main() {
  bench::title("Table 2", "application / RNIC behaviour in the ERROR state");

  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, fabric::Candidate::kMasq);
  Probe probe;
  bench::run(*bed, scenario(bed.get(), &probe));

  std::printf("%-12s | %-28s | %-32s | %s\n", "actor", "operation",
              "paper behaviour", "observed");
  std::printf("%.100s\n",
              "-----------------------------------------------------------"
              "--------------------------------------------");
  print_row("Application", "post receive request", "Allowed",
            probe.post_recv_allowed, "post_recv returned OK");
  print_row("Application", "post send request", "Allowed",
            probe.post_send_allowed, "post_send returned OK");
  print_row("Application", "poll completion queue",
            "Allowed but get an error CQE", probe.poll_returns_error_cqe,
            "flush-error CQEs polled");
  print_row("RNIC", "recv request processing", "Flushed with error",
            probe.flushed_cqes >= 2, "recv WQE flushed");
  print_row("RNIC", "send request processing", "Flushed with error",
            probe.flushed_cqes >= 2, "send WQE flushed");
  print_row("RNIC", "incoming packets", "Dropped",
            probe.incoming_dropped >= 1, "drop counter incremented");
  print_row("RNIC", "outgoing packets", "None",
            probe.outgoing_after_error == 0, "no frames transmitted");
  bench::note("this is the mechanism RConntrack uses to disconnect "
              "connections that violate updated security rules (§3.3.2)");
  return 0;
}
