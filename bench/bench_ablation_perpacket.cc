// Ablation: per-connection vs per-packet virtualization (§3.3.1).
//
// MasQ renames addresses *once per connection* (RConnrename); the
// alternative designs pay per-message: FreeFlow forwards every data verb
// through the FFR, and a hypothetical virtio-forwarded data path would add
// the full virtqueue RTT to every post/poll (Table 1's 101x/667x rows).
// This bench measures the first two live and computes the third from the
// measured virtio RTT.
#include <cstdio>

#include "apps/perftest.h"
#include "bench/bench_util.h"

namespace {

double lat_us(fabric::Candidate c) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::LatConfig cfg;
  cfg.msg_size = 2;
  cfg.iterations = 400;
  return apps::perftest::run_lat(*bed, cfg).mean();
}

double bw_2k(fabric::Candidate c) {
  sim::EventLoop loop;
  auto bed = bench::make_bed(loop, c);
  apps::perftest::BwConfig cfg;
  cfg.op = apps::perftest::Op::kWrite;
  cfg.msg_size = 2048;
  cfg.iterations = 1024;
  return apps::perftest::run_bw(*bed, cfg);
}

}  // namespace

int main() {
  bench::title("Ablation",
               "per-connection vs per-operation vs per-packet designs");
  const double masq_lat = lat_us(fabric::Candidate::kMasq);
  const double ff_lat = lat_us(fabric::Candidate::kFreeFlow);
  const double masq_bw = bw_2k(fabric::Candidate::kMasq);
  const double ff_bw = bw_2k(fabric::Candidate::kFreeFlow);
  // Hypothetical: every post_send and poll_cq crosses the virtqueue.
  const double virtio_rtt_us = 20.0;
  const double hypo_lat = masq_lat + virtio_rtt_us;  // one-way adds ~1 RTT
  const double hypo_bw_mops = 1.0 / (virtio_rtt_us * 1e-6) / 1e6;
  const double hypo_bw = hypo_bw_mops * 2048 * 8 / 1000.0;  // Gbps

  std::printf("%-34s | %12s | %14s\n", "design", "2B lat (us)",
              "2KB tput (Gbps)");
  std::printf("%.68s\n",
              "-----------------------------------------------------------"
              "---------");
  std::printf("%-34s | %12.2f | %14.2f\n",
              "per-connection rename (MasQ)", masq_lat, masq_bw);
  std::printf("%-34s | %12.2f | %14.2f\n",
              "per-op software fwd (FreeFlow)", ff_lat, ff_bw);
  std::printf("%-34s | %12.2f | %14.2f\n",
              "per-packet virtio fwd (computed)", hypo_lat, hypo_bw);
  bench::note("renaming once at connection setup moves the entire "
              "virtualization cost off the data path — the core insight "
              "behind queue masquerading");
  return 0;
}
