// Fig. 17: performance isolation and security timeline. Two tenant flows
// share the 40 Gbps link; at t=10 s flow A's tenant is rate-limited to
// 10 Gbps, at t=20 s to 5 Gbps, at t=30 s the limit is lifted, and at
// t=45 s a security rule banning the connection is installed — RConntrack
// tears the connection down and flow A drops to zero while flow B absorbs
// the spare bandwidth.
#include <cstdio>
#include <vector>

#include "apps/common.h"
#include "bench/bench_util.h"

namespace {

constexpr int kSeconds = 60;
constexpr std::uint32_t kMsg = 8 * 1024 * 1024;  // 8 MiB writes

struct Buckets {
  std::vector<double> gbits = std::vector<double>(kSeconds + 1, 0.0);
};

sim::Task<void> writer(fabric::Testbed* bed, std::size_t src, std::size_t dst,
                       std::uint16_t port, Buckets* out) {
  verbs::Context& ctx = bed->ctx(src);
  struct Srv {
    static sim::Task<void> run(fabric::Testbed* bed, std::size_t dst,
                               std::size_t src, std::uint16_t port) {
      auto ep = co_await apps::setup_endpoint(bed->ctx(dst),
                                              {.buf_len = kMsg});
      (void)co_await apps::connect_server(bed->ctx(dst), ep,
                                          bed->instance_vip(src), port);
    }
  };
  bed->loop().spawn(Srv::run(bed, dst, src, port));
  auto ep = co_await apps::setup_endpoint(ctx, {.buf_len = kMsg});
  if (co_await apps::connect_client(ctx, ep, bed->instance_vip(dst), port) !=
      rnic::Status::kOk) {
    co_return;
  }
  const sim::Time deadline = sim::seconds(kSeconds);
  while (ctx.loop().now() < deadline) {
    const auto st = co_await apps::write_and_wait(ctx, ep, 0, 0, kMsg);
    if (st != rnic::WcStatus::kSuccess) break;  // torn down by RConntrack
    const auto sec = static_cast<std::size_t>(ctx.loop().now() / sim::kSecond);
    if (sec <= kSeconds) {
      out->gbits[sec] += static_cast<double>(kMsg) * 8.0 / 1e9;
    }
  }
}

sim::Task<void> operator_events(fabric::Testbed* bed) {
  auto& backend = bed->masq_backend(0);
  co_await sim::delay(bed->loop(), sim::seconds(10));
  backend.set_tenant_rate_limit(100, 10.0);
  std::printf("  [t=10s] tenant A rate limit -> 10 Gbps\n");
  co_await sim::delay(bed->loop(), sim::seconds(10));
  backend.set_tenant_rate_limit(100, 5.0);
  std::printf("  [t=20s] tenant A rate limit -> 5 Gbps\n");
  co_await sim::delay(bed->loop(), sim::seconds(10));
  backend.set_tenant_rate_limit(100, 40.0);
  std::printf("  [t=30s] tenant A rate limit lifted\n");
  co_await sim::delay(bed->loop(), sim::seconds(15));
  // Security rule update: forbid tenant A's RDMA connection entirely.
  overlay::SecurityPolicy& pol = bed->policy(100);
  (void)co_await backend.conntrack().install_rule(
      pol, pol.firewall(overlay::Chain::kForward),
      overlay::Rule::deny(net::Ipv4Cidr::any(), net::Ipv4Cidr::any(),
                          overlay::Proto::kRdma, 1000));
  std::printf("  [t=45s] security rule installed: tenant A RDMA denied "
              "-> RConntrack resets the connection\n");
}

}  // namespace

int main() {
  bench::title("Fig. 17", "rate limiting + security teardown timeline "
                          "(tenants share one spine link)");

  sim::EventLoop loop;
  fabric::TestbedConfig cfg;
  cfg.candidate = fabric::Candidate::kMasq;
  cfg.cal.host_dram_bytes = 16ull << 30;
  cfg.cal.vm_mem_bytes = 1ull << 30;
  // Both tenants' flows run host 0 -> host 1 across a one-spine Clos
  // (DESIGN.md §17): the 40 Gbps contention point is now a *shared spine
  // link*, not a private wire — the isolation claims must survive real
  // fabric sharing. A full-rate spine reproduces the paper's direct-wire
  // numbers exactly (the max-min bottleneck just moves one hop in).
  cfg.topology = bench::cross_leaf_fabric(2, 1, 40.0, 40.0);
  fabric::Testbed bed(loop, cfg);
  // Tenant A (vni 100): instances 0,1. Tenant B (vni 200): instances 2,3.
  (void)bed.add_instance(100);
  (void)bed.add_instance(100);
  (void)bed.add_instance(200);
  (void)bed.add_instance(200);

  Buckets a, b;
  loop.spawn(writer(&bed, 0, 1, 7200, &a));
  loop.spawn(writer(&bed, 2, 3, 7201, &b));
  loop.spawn(operator_events(&bed));
  loop.run();

  std::printf("\n%-10s | %10s %10s %10s\n", "time (s)", "flow A", "flow B",
              "aggregate");
  std::printf("%.48s\n", "------------------------------------------------");
  for (int s = 0; s < kSeconds; s += 3) {
    std::printf("%-10d | %10.1f %10.1f %10.1f\n", s, a.gbits[s], b.gbits[s],
                a.gbits[s] + b.gbits[s]);
  }
  bench::note("paper shape: ~18.9/18.9 unrestricted; A pinned at 10 then 5 "
              "while B absorbs the slack; A drops to 0 when the security "
              "rule lands; aggregate stays at link rate throughout");
  return 0;
}
