#include "net/topology.h"

#include <stdexcept>

namespace net {

std::uint64_t ecmp_hash(const EcmpKey& key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV-1a prime
    }
  };
  mix(key.src_ip, 4);
  mix(key.dst_ip, 4);
  mix(key.src_port, 2);
  mix(key.dst_port, 2);
  mix(key.proto, 1);
  return h;
}

FabricTopology::FabricTopology(FluidNet& net, FabricConfig cfg)
    : net_(net), cfg_(cfg) {
  if (cfg_.hosts == 0 || cfg_.leaves == 0 || cfg_.spines == 0) {
    throw std::invalid_argument("FabricTopology: empty tier");
  }
  if (cfg_.leaves > cfg_.hosts) cfg_.leaves = cfg_.hosts;
  hosts_per_leaf_ = (cfg_.hosts + cfg_.leaves - 1) / cfg_.leaves;
  up_.reserve(cfg_.hosts);
  down_.reserve(cfg_.hosts);
  for (std::size_t h = 0; h < cfg_.hosts; ++h) {
    up_.push_back(net_.add_link(cfg_.host_gbps, cfg_.link_delay));
    down_.push_back(net_.add_link(cfg_.host_gbps, cfg_.link_delay));
    all_.push_back(up_.back());
    all_.push_back(down_.back());
  }
  ls_.reserve(cfg_.leaves * cfg_.spines);
  sl_.reserve(cfg_.leaves * cfg_.spines);
  for (std::size_t l = 0; l < cfg_.leaves; ++l) {
    for (std::size_t s = 0; s < cfg_.spines; ++s) {
      ls_.push_back(net_.add_link(cfg_.spine_gbps, cfg_.link_delay));
      sl_.push_back(net_.add_link(cfg_.spine_gbps, cfg_.link_delay));
      all_.push_back(ls_.back());
      all_.push_back(sl_.back());
    }
  }
}

std::vector<LinkId> FabricTopology::path(std::size_t src_host,
                                         std::size_t dst_host,
                                         const EcmpKey& key) const {
  std::vector<LinkId> out;
  if (src_host == dst_host) return out;
  if (src_host >= cfg_.hosts || dst_host >= cfg_.hosts) {
    throw std::out_of_range("FabricTopology::path: host out of range");
  }
  const std::size_t src_leaf = leaf_of(src_host);
  const std::size_t dst_leaf = leaf_of(dst_host);
  out.push_back(up_[src_host]);
  if (src_leaf != dst_leaf) {
    const std::size_t spine = spine_for(key);
    out.push_back(leaf_to_spine(src_leaf, spine));
    out.push_back(spine_to_leaf(spine, dst_leaf));
  }
  out.push_back(down_[dst_host]);
  return out;
}

std::vector<LinkId> FabricTopology::spine_links(std::size_t spine) const {
  std::vector<LinkId> out;
  out.reserve(cfg_.leaves * 2);
  for (std::size_t l = 0; l < cfg_.leaves; ++l) {
    out.push_back(leaf_to_spine(l, spine));
    out.push_back(spine_to_leaf(spine, l));
  }
  return out;
}

}  // namespace net
