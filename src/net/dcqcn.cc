#include "net/dcqcn.h"

#include <algorithm>

namespace net {

void DcqcnController::manage(FlowId flow, double line_rate_gbps) {
  Rp rp;
  rp.rc = line_rate_gbps;
  rp.rt = line_rate_gbps;
  rp.line_rate = line_rate_gbps;
  // Born at line rate with rc == rt: fast recovery and additive increase
  // both leave that fixpoint, so starting past the recovery window changes
  // no rate — it just keeps recoveries() meaning "recovered after a cut".
  rp.recovery_round = params_.fast_recovery_rounds;
  rp_[flow] = rp;
  net_.set_flow_cap(flow, rp.rc);
  // Deterministic per-flow phase offset de-synchronizes RP timers.
  const sim::Time phase = static_cast<sim::Time>(
      (flow * 7919) % static_cast<std::uint64_t>(params_.tick));
  loop_.schedule_after(params_.tick + phase, [this, flow] { tick(flow); });
}

void DcqcnController::unmanage(FlowId flow) { rp_.erase(flow); }

double DcqcnController::current_rate_gbps(FlowId flow) const {
  auto it = rp_.find(flow);
  return it == rp_.end() ? 0.0 : it->second.rc;
}

std::uint64_t DcqcnController::marks_for(FlowId flow) const {
  auto it = mark_counts_.find(flow);
  return it == mark_counts_.end() ? 0 : it->second;
}

double DcqcnController::mark_probability(FlowId flow) const {
  const std::vector<LinkId>* path = net_.flow_path(flow);
  if (path == nullptr) return 0.0;
  const double my_rate = net_.current_rate_gbps(flow);
  double p = 0.0;
  for (LinkId l : *path) {
    const double load = net_.link_load_gbps(l);
    const double cap = net_.link_capacity_gbps(l);
    const double util = load / cap;
    if (util <= params_.ecn_util_threshold) continue;
    // RED-style ramp from Kmin to full capacity...
    const double ramp = 0.5 + 0.5 * std::min(1.0,
        (util - params_.ecn_util_threshold) /
            (1.0 - params_.ecn_util_threshold));
    // ...weighted by this flow's share of the link's packets.
    const double share = load > 0 ? my_rate / load : 0.0;
    p = std::max(p, std::min(1.0, ramp * share * 2.0));
  }
  return p;
}

void DcqcnController::tick(FlowId flow) {
  auto it = rp_.find(flow);
  if (it == rp_.end()) return;  // unmanaged since
  if (net_.flow_path(flow) == nullptr) {
    rp_.erase(it);  // flow finished
    return;
  }
  Rp& rp = it->second;
  const double old_rc = rp.rc;
  const bool was_recovering = rp.recovery_round < params_.fast_recovery_rounds;
  if (rng_.next_bool(mark_probability(flow))) {
    // CNP received: remember the target, cut multiplicatively, bump alpha.
    ++marks_;
    ++mark_counts_[flow];
    rp.rt = rp.rc;
    rp.rc = std::max(params_.min_rate_gbps, rp.rc * (1.0 - rp.alpha / 2.0));
    rp.alpha = (1.0 - params_.g) * rp.alpha + params_.g;
    rp.recovery_round = 0;
  } else {
    // Quiet period: decay alpha; fast-recover toward rt, then increase.
    rp.alpha = (1.0 - params_.g) * rp.alpha;
    if (rp.recovery_round < params_.fast_recovery_rounds) {
      rp.rc = (rp.rc + rp.rt) / 2.0;
      ++rp.recovery_round;
      if (was_recovering &&
          rp.recovery_round == params_.fast_recovery_rounds) {
        ++recoveries_;  // fast recovery done; next quiet tick is AI
      }
    } else {
      rp.rt += params_.rai_gbps;
      rp.rc = (rp.rc + rp.rt) / 2.0;
    }
    rp.rc = std::min(rp.rc, rp.line_rate);
    rp.rt = std::min(rp.rt, rp.line_rate);
  }
  // Reprogramming an unchanged cap would re-run the allocator (and re-arm
  // its completion timer) for no observable rate change — a flow cruising
  // at line rate costs nothing per tick.
  if (rp.rc != old_rc) net_.set_flow_cap(flow, rp.rc);
  loop_.schedule_after(params_.tick, [this, flow] { tick(flow); });
}

}  // namespace net
