// Network address types: MAC, IPv4 (+CIDR), and 128-bit RoCE GIDs.
//
// RoCEv2 GIDs are IPv4-mapped IPv6 addresses (::ffff:a.b.c.d). MasQ's whole
// trick is the distinction between *virtual* GIDs (derived from a tenant's
// vEth IP) and *physical* GIDs (the RNIC's underlay IP) — both are the same
// type here; which one a field holds is part of each API's contract.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddr&) const = default;

  static MacAddr from_u64(std::uint64_t v);
  std::string str() const;  // "02:00:00:00:00:2a"
};

struct Ipv4Addr {
  std::uint32_t value = 0;  // host byte order

  auto operator<=>(const Ipv4Addr&) const = default;

  static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                              std::uint8_t d);
  // Parses "a.b.c.d"; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(const std::string& s);
  std::string str() const;
};

// "192.168.1.0/24"-style prefix match.
struct Ipv4Cidr {
  Ipv4Addr base;
  std::uint8_t prefix_len = 32;

  auto operator<=>(const Ipv4Cidr&) const = default;

  static std::optional<Ipv4Cidr> parse(const std::string& s);
  bool contains(Ipv4Addr a) const;
  std::string str() const;

  static Ipv4Cidr any() { return Ipv4Cidr{Ipv4Addr{0}, 0}; }
  static Ipv4Cidr host(Ipv4Addr a) { return Ipv4Cidr{a, 32}; }
};

struct Gid {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Gid&) const = default;

  bool is_zero() const;
  // RoCEv2 IPv4-mapped GID: ::ffff:a.b.c.d
  static Gid from_ipv4(Ipv4Addr a);
  // Extracts the IPv4 if this is an IPv4-mapped GID.
  std::optional<Ipv4Addr> to_ipv4() const;
  std::string str() const;
};

}  // namespace net

template <>
struct std::hash<net::Ipv4Addr> {
  std::size_t operator()(const net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<net::MacAddr> {
  std::size_t operator()(const net::MacAddr& m) const noexcept {
    std::uint64_t v = 0;
    for (auto b : m.bytes) v = (v << 8) | b;
    return std::hash<std::uint64_t>{}(v);
  }
};

template <>
struct std::hash<net::Gid> {
  std::size_t operator()(const net::Gid& g) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto b : g.bytes) h = (h ^ b) * 1099511628211ull;
    return h;
  }
};
