// Parameterized leaf–spine Clos fabric over the fluid model (DESIGN.md §17).
//
// Hosts attach to leaves in contiguous blocks; every leaf attaches to every
// spine. Each physical hop is a unidirectional FluidNet link, so the same
// progressive-filling allocator that shares the 2-server direct link shares
// every fabric link — congestion on one spine link throttles exactly the
// flows crossing it, which is what the multi-hop DCQCN tests pin.
//
// ECMP: a flow's spine is FNV-1a over its 5-tuple, modulo the spine count.
// Spines are enumerated in construction (insertion) order and the hash is a
// pure function of the key bytes, so placement is identical across reruns,
// thread counts, and machines — traces stay replayable.
//
// Degenerate equivalence: with one leaf (any spine count) no flow crosses a
// spine, so a path is exactly {host-up, host-down} at link capacity. Those
// two links carry the same flow sets as the sender's NIC-tx and receiver's
// NIC-rx links, so progressive filling computes the same bottleneck minimum
// over a duplicated constraint set and assigns bit-identical rates — the
// sweep tests diff the resulting reports byte-for-byte against the legacy
// direct-link wire.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fluid.h"
#include "sim/time.h"

namespace net {

struct FabricConfig {
  std::size_t hosts = 2;
  std::size_t leaves = 1;
  std::size_t spines = 1;
  double host_gbps = 100.0;   // host<->leaf link capacity
  double spine_gbps = 100.0;  // leaf<->spine link capacity
  sim::Time link_delay = 0;   // per-hop propagation
};

// The 5-tuple ECMP hashes over. RoCEv2 rides UDP, so transports map the
// QPNs into the port fields.
struct EcmpKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 4791;  // RoCEv2
  std::uint8_t proto = 17;        // UDP
};

// FNV-1a over the key's fields in declaration order, least-significant byte
// first, at their declared widths. No struct padding is hashed.
std::uint64_t ecmp_hash(const EcmpKey& key);

class FabricTopology {
 public:
  // Adds every fabric link to `net` in a fixed order: per host the up then
  // the down link (host 0 first), then per leaf (leaf-major) per spine the
  // leaf->spine then the spine->leaf link. That order is the documented
  // ECMP tie-break: spine_for() indexes into it.
  FabricTopology(FluidNet& net, FabricConfig cfg);

  const FabricConfig& config() const { return cfg_; }

  // Hosts attach to leaves in contiguous blocks of ceil(hosts/leaves).
  std::size_t leaf_of(std::size_t host) const {
    return host / hosts_per_leaf_;
  }
  std::size_t spine_for(const EcmpKey& key) const {
    return ecmp_hash(key) % cfg_.spines;
  }

  // The fabric links a frame crosses from src_host to dst_host: up, then
  // (for inter-leaf pairs) the ECMP-chosen spine crossing, then down.
  // Empty when src_host == dst_host — intra-host traffic never leaves the
  // NIC, matching the direct-link wire.
  std::vector<LinkId> path(std::size_t src_host, std::size_t dst_host,
                           const EcmpKey& key) const;

  LinkId host_up(std::size_t host) const { return up_.at(host); }
  LinkId host_down(std::size_t host) const { return down_.at(host); }
  LinkId leaf_to_spine(std::size_t leaf, std::size_t spine) const {
    return ls_.at(leaf * cfg_.spines + spine);
  }
  LinkId spine_to_leaf(std::size_t spine, std::size_t leaf) const {
    return sl_.at(leaf * cfg_.spines + spine);
  }

  // Every fabric link, in construction order (property tests sweep these
  // for capacity conservation).
  const std::vector<LinkId>& all_links() const { return all_; }
  // The spine-layer links only (both directions of every leaf<->spine
  // pair) — the ECN watchpoints for multi-hop congestion assertions.
  std::vector<LinkId> spine_links(std::size_t spine) const;

 private:
  FluidNet& net_;
  FabricConfig cfg_;
  std::size_t hosts_per_leaf_ = 1;
  std::vector<LinkId> up_;    // host -> leaf, indexed by host
  std::vector<LinkId> down_;  // leaf -> host, indexed by host
  std::vector<LinkId> ls_;    // leaf -> spine, leaf-major
  std::vector<LinkId> sl_;    // spine -> leaf, leaf-major
  std::vector<LinkId> all_;
};

}  // namespace net
