// Fluid (max-min fair) flow-level bandwidth model.
//
// Long-lived transfers are modeled as fluid flows over a set of links. On
// every topology event (flow start/finish/cancel, rate-cap change) rates are
// re-assigned by progressive filling: repeatedly saturate the most
// constrained resource — either a link shared by its remaining flows or an
// individual flow's rate cap — and fix the affected flows. This yields the
// classic max-min fair allocation with per-flow caps, which is what a
// lossless RoCEv2 fabric with hardware rate limiters converges to.
//
// Finite flows complete after `bytes / rate` of serialization plus the
// path's propagation delay; unbounded flows (bytes == 0) run until
// cancelled and are sampled by the QoS/timeline benches via current_rate().
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace net {

using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr double kUncapped = std::numeric_limits<double>::infinity();

// 1 Gbps expressed in bytes per nanosecond.
inline constexpr double gbps_to_bytes_per_ns(double gbps) {
  return gbps / 8.0;  // 1 Gb/s = 1e9 b/s = 0.125e9 B/s = 0.125 B/ns
}
inline constexpr double bytes_per_ns_to_gbps(double bpn) { return bpn * 8.0; }

class FluidNet {
 public:
  explicit FluidNet(sim::EventLoop& loop) : loop_(loop) {}

  // Adds a unidirectional link of `gbps` capacity and `prop_delay` latency.
  LinkId add_link(double gbps, sim::Time prop_delay);

  double link_capacity_gbps(LinkId id) const;

  // Reprograms a link's capacity (models a hardware rate limiter exposed as
  // a virtual link; 0 blocks all flows through it).
  void set_link_capacity(LinkId id, double gbps);

  // Starts a flow over `path` (links traversed in order).
  //  bytes     > 0: finite transfer; on_complete fires once after the last
  //                 byte serializes and propagates down the path.
  //  bytes    == 0: unbounded flow; never completes; cancel explicitly.
  //  cap_gbps     : per-flow rate limiter (kUncapped for none).
  FlowId start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                    double cap_gbps, std::function<void()> on_complete);

  // Changes a flow's rate cap (hardware rate-limiter reprogramming).
  void set_flow_cap(FlowId id, double cap_gbps);

  // Removes a flow without firing its completion callback.
  void cancel_flow(FlowId id);

  bool has_flow(FlowId id) const { return flows_.count(id) != 0; }

  // Instantaneous allocated rate, in Gbps.
  double current_rate_gbps(FlowId id) const;
  // Bytes fully serialized so far (settled up to now()).
  std::uint64_t bytes_sent(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  // Total propagation delay along a path (used for one-way latency math).
  sim::Time path_propagation(const std::vector<LinkId>& path) const;

  // Instantaneous offered load on a link (sum of crossing flows' rates),
  // in Gbps — what an ECN marking engine watches.
  double link_load_gbps(LinkId id) const;
  // The links a flow traverses (nullptr if the flow is gone).
  const std::vector<LinkId>* flow_path(FlowId id) const;

 private:
  struct Link {
    double capacity;  // bytes/ns
    sim::Time prop_delay;
  };
  struct Flow {
    std::vector<LinkId> path;
    std::uint64_t bytes_total;      // 0 = unbounded
    double bytes_remaining;         // meaningful when bytes_total > 0
    double bytes_done = 0;
    double cap;                     // bytes/ns
    double rate = 0;                // bytes/ns, assigned by reallocate()
    std::function<void()> on_complete;
  };

  // Advances every finite flow's remaining-byte count to now().
  void settle();
  // Recomputes the max-min allocation and re-arms the completion timer.
  void reallocate();
  void arm_completion_timer();
  void fire_completions();

  sim::EventLoop& loop_;
  std::vector<Link> links_;
  // Ordered by FlowId: reallocate()/fire_completions() iterate this map
  // and their iteration order feeds completion-event ordering, which
  // must be deterministic (masq-lint: unordered-iter).
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  sim::Time last_settle_ = 0;
  std::uint64_t timer_generation_ = 0;
};

}  // namespace net
