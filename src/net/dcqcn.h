// DCQCN-lite congestion control (§5 discussion).
//
// RoCEv2 deployments pair PFC with an end-to-end congestion-control
// algorithm; the paper points at DCQCN (Zhu et al., SIGCOMM '15) and notes
// MasQ is orthogonal to the choice. This controller reproduces DCQCN's
// rate-evolution skeleton over the fluid model: an ECN-like marking engine
// watches link utilization, reaction points cut their sending rate
// multiplicatively on congestion (alpha-weighted, like the RP state
// machine) and recover through fast-recovery then additive increase.
//
// Managed flows converge to the fair share with realistic dynamics instead
// of the fluid model's instantaneous ideal; the ablation bench shows the
// convergence timeline, and the invariants (fairness, near-full
// utilization, stability) are property-tested.
#pragma once

#include <cstdint>

#include "net/fluid.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/flat_map.h"

namespace net {

struct DcqcnParams {
  sim::Time tick = sim::microseconds(55);  // RP timer
  double g = 0.0625;                // alpha EWMA gain (DCQCN default 1/16)
  double rai_gbps = 0.5;            // additive-increase step
  double ecn_util_threshold = 0.90; // marking ramp starts here (Kmin)
  double min_rate_gbps = 0.05;
  int fast_recovery_rounds = 3;     // rounds of (rc+rt)/2 before AI
  std::uint64_t seed = 0x0dcc;      // marking is probabilistic (RED-like)
};

class DcqcnController {
 public:
  DcqcnController(sim::EventLoop& loop, FluidNet& net, DcqcnParams params = {})
      : loop_(loop), net_(net), params_(params), rng_(params.seed) {}

  // Starts managing `flow`: its rate cap now evolves per DCQCN instead of
  // being ideal. `line_rate_gbps` is the starting (unthrottled) rate.
  void manage(FlowId flow, double line_rate_gbps);
  // Stops managing (e.g. the flow completed or was cancelled).
  void unmanage(FlowId flow);

  bool managing(FlowId flow) const { return rp_.count(flow) != 0; }
  double current_rate_gbps(FlowId flow) const;
  std::uint64_t marks_delivered() const { return marks_; }
  // Marks this flow received over its whole lifetime (persists past
  // unmanage, so post-run assertions can check which flows a congested
  // link throttled and which it left alone).
  std::uint64_t marks_for(FlowId flow) const;
  // Completed recoveries: a flow finished its fast-recovery rounds after a
  // cut and re-entered additive increase. Zero means the recovery path was
  // never exercised.
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  // Reaction-point state, one per managed flow (DCQCN's RP).
  struct Rp {
    double rc;      // current rate (Gbps)
    double rt;      // target rate (Gbps)
    double alpha = 1.0;
    int recovery_round = 0;
    double line_rate;
  };

  void tick(FlowId flow);
  // Probability this flow receives a CNP this tick: an ECN ramp on its
  // most loaded link, weighted by the flow's share of that load (flows
  // sending more packets get proportionally more marks — what breaks the
  // synchronized-cut unfairness of deterministic marking).
  double mark_probability(FlowId flow) const;

  sim::EventLoop& loop_;
  FluidNet& net_;
  DcqcnParams params_;
  sim::FlatMap<FlowId, Rp> rp_;
  sim::Rng rng_;
  std::uint64_t marks_ = 0;
  std::uint64_t recoveries_ = 0;
  sim::FlatMap<FlowId, std::uint64_t> mark_counts_;  // never erased
};

}  // namespace net
