// Wire-format headers for the simulated RoCEv2 fabric.
//
// A native RoCEv2 frame is Eth / IPv4 / UDP(dport 4791) / BTH / payload /
// ICRC. Hardware VXLAN offload (the SR-IOV baseline) wraps that in an outer
// Eth / IPv4 / UDP / VXLAN — 50 extra bytes per packet. MasQ's RConnrename
// needs no encapsulation at all: frames leave the RNIC already carrying
// physical addresses, which is why its goodput equals bare metal's.
//
// Headers serialize to and parse from real byte buffers; tests round-trip
// them, and isolation tests inspect the bytes a flow actually carried.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/addr.h"

namespace net {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint16_t kRoceV2UdpPort = 4791;
inline constexpr std::uint16_t kVxlanUdpPort = 4789;

inline constexpr std::size_t kEthHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kBthBytes = 12;
inline constexpr std::size_t kVxlanHeaderBytes = 8;
inline constexpr std::size_t kIcrcBytes = 4;

// Per-packet overhead of a native RoCEv2 frame (no payload).
inline constexpr std::size_t kRoceV2OverheadBytes =
    kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + kBthBytes +
    kIcrcBytes;
// Extra bytes added by a VXLAN tunnel (outer Eth/IP/UDP + VXLAN).
inline constexpr std::size_t kVxlanOverheadBytes =
    kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + kVxlanHeaderBytes;

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;

  void serialize(std::vector<std::uint8_t>& out) const;
  static EthHeader parse(std::span<const std::uint8_t> in, std::size_t& pos);
};

struct Ipv4Header {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint8_t dscp = 0;  // RoCEv2 traffic class (lossless priority)
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t total_length = 0;

  void serialize(std::vector<std::uint8_t>& out) const;
  static Ipv4Header parse(std::span<const std::uint8_t> in, std::size_t& pos);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = kRoceV2UdpPort;
  std::uint16_t length = 0;

  void serialize(std::vector<std::uint8_t>& out) const;
  static UdpHeader parse(std::span<const std::uint8_t> in, std::size_t& pos);
};

// IB Base Transport Header opcodes (RC subset we model).
enum class BthOpcode : std::uint8_t {
  kRcSendOnly = 0x04,
  kRcWriteOnly = 0x0a,
  kRcReadRequest = 0x0c,
  kRcReadResponse = 0x10,
  kRcAck = 0x11,
  kUdSendOnly = 0x64,
};

struct Bth {
  BthOpcode opcode = BthOpcode::kRcSendOnly;
  std::uint16_t pkey = 0xffff;
  std::uint32_t dest_qpn = 0;  // 24 bits on the wire
  std::uint32_t psn = 0;       // 24 bits on the wire
  bool ack_req = false;

  void serialize(std::vector<std::uint8_t>& out) const;
  static Bth parse(std::span<const std::uint8_t> in, std::size_t& pos);
};

struct VxlanHeader {
  std::uint32_t vni = 0;  // 24 bits

  void serialize(std::vector<std::uint8_t>& out) const;
  static VxlanHeader parse(std::span<const std::uint8_t> in, std::size_t& pos);
};

// A fully described RoCEv2 frame (optionally VXLAN-encapsulated). This is
// the unit the RNIC hands to the fabric; the fluid model charges its wire
// size, and tests assert on the addresses it actually carries.
struct RoceFrame {
  EthHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  Bth bth;
  std::uint32_t payload_bytes = 0;

  bool vxlan = false;  // SR-IOV offload path
  VxlanHeader vxlan_hdr;
  EthHeader outer_eth;
  Ipv4Header outer_ip;

  std::size_t wire_bytes() const;
  // Serializes headers (payload is represented by length only).
  std::vector<std::uint8_t> serialize_headers() const;
};

}  // namespace net
