#include "net/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

namespace net {

namespace {
// Completion times are rounded up to the next nanosecond; a flow whose
// remaining bytes fall below this is considered finished (guards float
// accumulation error).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

LinkId FluidNet::add_link(double gbps, sim::Time prop_delay) {
  if (gbps <= 0) throw std::invalid_argument("add_link: capacity must be > 0");
  links_.push_back(Link{gbps_to_bytes_per_ns(gbps), prop_delay});
  return static_cast<LinkId>(links_.size() - 1);
}

double FluidNet::link_capacity_gbps(LinkId id) const {
  return bytes_per_ns_to_gbps(links_.at(id).capacity);
}

void FluidNet::set_link_capacity(LinkId id, double gbps) {
  if (gbps < 0) {
    throw std::invalid_argument("set_link_capacity: negative capacity");
  }
  settle();
  links_.at(id).capacity = gbps_to_bytes_per_ns(gbps);
  reallocate();
}

sim::Time FluidNet::path_propagation(const std::vector<LinkId>& path) const {
  sim::Time t = 0;
  for (LinkId l : path) t += links_.at(l).prop_delay;
  return t;
}

FlowId FluidNet::start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                            double cap_gbps,
                            std::function<void()> on_complete) {
  for (LinkId l : path) {
    if (l >= links_.size()) throw std::out_of_range("start_flow: bad link id");
  }
  settle();
  Flow f;
  f.path = std::move(path);
  f.bytes_total = bytes;
  f.bytes_remaining = static_cast<double>(bytes);
  f.cap = cap_gbps == kUncapped ? kUncapped : gbps_to_bytes_per_ns(cap_gbps);
  f.on_complete = std::move(on_complete);
  const FlowId id = next_flow_id_++;
  flows_.emplace(id, std::move(f));
  reallocate();
  return id;
}

void FluidNet::set_flow_cap(FlowId id, double cap_gbps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) throw std::out_of_range("set_flow_cap: no such flow");
  settle();
  it->second.cap =
      cap_gbps == kUncapped ? kUncapped : gbps_to_bytes_per_ns(cap_gbps);
  reallocate();
}

void FluidNet::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle();
  flows_.erase(it);
  reallocate();
}

double FluidNet::link_load_gbps(LinkId id) const {
  double load = 0;
  for (const auto& [fid, f] : flows_) {
    for (LinkId l : f.path) {
      if (l == id) {
        load += f.rate;
        break;
      }
    }
  }
  return bytes_per_ns_to_gbps(load);
}

const std::vector<LinkId>* FluidNet::flow_path(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second.path;
}

double FluidNet::current_rate_gbps(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  return bytes_per_ns_to_gbps(it->second.rate);
}

std::uint64_t FluidNet::bytes_sent(FlowId id) {
  settle();
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  return static_cast<std::uint64_t>(it->second.bytes_done);
}

void FluidNet::settle() {
  const sim::Time now = loop_.now();
  const double dt = static_cast<double>(now - last_settle_);
  if (dt > 0) {
    for (auto& [id, f] : flows_) {
      const double sent = f.rate * dt;
      f.bytes_done += sent;
      if (f.bytes_total > 0) {
        f.bytes_remaining = std::max(0.0, f.bytes_remaining - sent);
      }
    }
  }
  last_settle_ = now;
}

void FluidNet::reallocate() {
  // Progressive filling with per-flow caps.
  struct LinkState {
    double remaining;
    int unfixed_flows = 0;
  };
  std::vector<LinkState> ls(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    ls[i].remaining = links_[i].capacity;
  }
  // std::map, not unordered: fixing order feeds rate assignment below.
  std::map<FlowId, Flow*> unfixed;
  for (auto& [id, f] : flows_) {
    f.rate = 0;
    unfixed.emplace(id, &f);
    for (LinkId l : f.path) ++ls[l].unfixed_flows;
  }

  while (!unfixed.empty()) {
    // Fair share currently offered by the most constrained link.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (const auto& s : ls) {
      if (s.unfixed_flows > 0) {
        bottleneck_share =
            std::min(bottleneck_share, s.remaining / s.unfixed_flows);
      }
    }
    // Flows whose own cap binds before the bottleneck share get fixed at
    // their cap; if none, every flow on the bottleneck link(s) gets the
    // fair share.
    std::vector<FlowId> capped;
    for (auto& [id, f] : unfixed) {
      if (f->cap <= bottleneck_share) capped.push_back(id);
    }
    if (!capped.empty()) {
      for (FlowId id : capped) {
        Flow* f = unfixed[id];
        f->rate = f->cap;
        for (LinkId l : f->path) {
          ls[l].remaining = std::max(0.0, ls[l].remaining - f->rate);
          --ls[l].unfixed_flows;
        }
        unfixed.erase(id);
      }
      continue;
    }
    if (!std::isfinite(bottleneck_share)) {
      // Flows with no links and no cap: unbounded model error.
      for (auto& [id, f] : unfixed) {
        if (f->path.empty()) {
          throw std::logic_error("flow with empty path and no cap");
        }
      }
      break;
    }
    // Fix all unfixed flows crossing a bottleneck link at the share.
    std::vector<FlowId> at_bottleneck;
    for (auto& [id, f] : unfixed) {
      for (LinkId l : f->path) {
        if (ls[l].unfixed_flows > 0 &&
            ls[l].remaining / ls[l].unfixed_flows <=
                bottleneck_share * (1 + 1e-12)) {
          at_bottleneck.push_back(id);
          break;
        }
      }
    }
    assert(!at_bottleneck.empty());
    for (FlowId id : at_bottleneck) {
      Flow* f = unfixed[id];
      f->rate = bottleneck_share;
      for (LinkId l : f->path) {
        ls[l].remaining = std::max(0.0, ls[l].remaining - f->rate);
        --ls[l].unfixed_flows;
      }
      unfixed.erase(id);
    }
  }
  arm_completion_timer();
}

void FluidNet::arm_completion_timer() {
  ++timer_generation_;
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.bytes_total == 0) continue;
    if (f.bytes_remaining <= kByteEpsilon) {
      earliest = 0;
      break;
    }
    if (f.rate > 0) {
      earliest = std::min(earliest, f.bytes_remaining / f.rate);
    }
  }
  if (!std::isfinite(earliest)) return;
  const auto gen = timer_generation_;
  const sim::Time dt = static_cast<sim::Time>(std::ceil(earliest));
  loop_.schedule_after(dt, [this, gen] {
    if (gen != timer_generation_) return;  // superseded by a newer epoch
    fire_completions();
  });
}

void FluidNet::fire_completions() {
  settle();
  std::vector<std::pair<std::function<void()>, sim::Time>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    if (f.bytes_total > 0 && f.bytes_remaining <= kByteEpsilon) {
      done.emplace_back(std::move(f.on_complete), path_propagation(f.path));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [cb, prop] : done) {
    if (cb) loop_.schedule_after(prop, std::move(cb));
  }
  reallocate();
}

}  // namespace net
