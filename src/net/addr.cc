#include "net/addr.h"

#include <cstdio>

namespace net {

MacAddr MacAddr::from_u64(std::uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.bytes[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

Ipv4Addr Ipv4Addr::from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
  return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                  (std::uint32_t{c} << 8) | d};
}

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::optional<Ipv4Cidr> Ipv4Cidr::parse(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) {
    auto a = Ipv4Addr::parse(s);
    if (!a) return std::nullopt;
    return Ipv4Cidr{*a, 32};
  }
  auto a = Ipv4Addr::parse(s.substr(0, slash));
  if (!a) return std::nullopt;
  int prefix = -1;
  try {
    prefix = std::stoi(s.substr(slash + 1));
  } catch (...) {
    return std::nullopt;
  }
  if (prefix < 0 || prefix > 32) return std::nullopt;
  return Ipv4Cidr{*a, static_cast<std::uint8_t>(prefix)};
}

bool Ipv4Cidr::contains(Ipv4Addr a) const {
  if (prefix_len == 0) return true;
  const std::uint32_t mask = prefix_len >= 32
                                 ? 0xffffffffu
                                 : ~((1u << (32 - prefix_len)) - 1);
  return (a.value & mask) == (base.value & mask);
}

std::string Ipv4Cidr::str() const {
  return base.str() + "/" + std::to_string(prefix_len);
}

bool Gid::is_zero() const {
  for (auto b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

Gid Gid::from_ipv4(Ipv4Addr a) {
  Gid g;
  g.bytes[10] = 0xff;
  g.bytes[11] = 0xff;
  g.bytes[12] = static_cast<std::uint8_t>((a.value >> 24) & 0xff);
  g.bytes[13] = static_cast<std::uint8_t>((a.value >> 16) & 0xff);
  g.bytes[14] = static_cast<std::uint8_t>((a.value >> 8) & 0xff);
  g.bytes[15] = static_cast<std::uint8_t>(a.value & 0xff);
  return g;
}

std::optional<Ipv4Addr> Gid::to_ipv4() const {
  for (int i = 0; i < 10; ++i) {
    if (bytes[i] != 0) return std::nullopt;
  }
  if (bytes[10] != 0xff || bytes[11] != 0xff) return std::nullopt;
  return Ipv4Addr::from_octets(bytes[12], bytes[13], bytes[14], bytes[15]);
}

std::string Gid::str() const {
  auto v4 = to_ipv4();
  if (v4) return "::ffff:" + v4->str();
  char buf[40];
  char* p = buf;
  for (int i = 0; i < 16; i += 2) {
    p += std::snprintf(p, 6, "%02x%02x%s", bytes[i], bytes[i + 1],
                       i == 14 ? "" : ":");
  }
  return buf;
}

}  // namespace net
