#include "net/headers.h"

#include <stdexcept>

namespace net {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void need(std::span<const std::uint8_t> in, std::size_t pos, std::size_t n) {
  if (pos + n > in.size()) throw std::out_of_range("header parse: truncated");
}
std::uint8_t get_u8(std::span<const std::uint8_t> in, std::size_t& pos) {
  need(in, pos, 1);
  return in[pos++];
}
std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t& pos) {
  need(in, pos, 2);
  std::uint16_t v = static_cast<std::uint16_t>(in[pos] << 8) | in[pos + 1];
  pos += 2;
  return v;
}
std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& pos) {
  need(in, pos, 4);
  std::uint32_t v = (std::uint32_t{in[pos]} << 24) |
                    (std::uint32_t{in[pos + 1]} << 16) |
                    (std::uint32_t{in[pos + 2]} << 8) | in[pos + 3];
  pos += 4;
  return v;
}

}  // namespace

void EthHeader::serialize(std::vector<std::uint8_t>& out) const {
  for (auto b : dst.bytes) put_u8(out, b);
  for (auto b : src.bytes) put_u8(out, b);
  put_u16(out, ether_type);
}

EthHeader EthHeader::parse(std::span<const std::uint8_t> in,
                           std::size_t& pos) {
  EthHeader h;
  need(in, pos, kEthHeaderBytes);
  for (auto& b : h.dst.bytes) b = in[pos++];
  for (auto& b : h.src.bytes) b = in[pos++];
  h.ether_type = get_u16(in, pos);
  return h;
}

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  put_u8(out, 0x45);  // version 4, IHL 5
  put_u8(out, static_cast<std::uint8_t>(dscp << 2));
  put_u16(out, total_length);
  put_u16(out, 0);       // identification
  put_u16(out, 0x4000);  // DF
  put_u8(out, ttl);
  put_u8(out, protocol);
  put_u16(out, 0);  // checksum (not modeled)
  put_u32(out, src.value);
  put_u32(out, dst.value);
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> in,
                             std::size_t& pos) {
  Ipv4Header h;
  const std::uint8_t ver_ihl = get_u8(in, pos);
  if (ver_ihl != 0x45) throw std::invalid_argument("ipv4: bad version/ihl");
  h.dscp = static_cast<std::uint8_t>(get_u8(in, pos) >> 2);
  h.total_length = get_u16(in, pos);
  (void)get_u16(in, pos);
  (void)get_u16(in, pos);
  h.ttl = get_u8(in, pos);
  h.protocol = get_u8(in, pos);
  (void)get_u16(in, pos);
  h.src.value = get_u32(in, pos);
  h.dst.value = get_u32(in, pos);
  return h;
}

void UdpHeader::serialize(std::vector<std::uint8_t>& out) const {
  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u16(out, length);
  put_u16(out, 0);  // checksum
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> in,
                           std::size_t& pos) {
  UdpHeader h;
  h.src_port = get_u16(in, pos);
  h.dst_port = get_u16(in, pos);
  h.length = get_u16(in, pos);
  (void)get_u16(in, pos);
  return h;
}

void Bth::serialize(std::vector<std::uint8_t>& out) const {
  put_u8(out, static_cast<std::uint8_t>(opcode));
  put_u8(out, 0);  // SE/M/Pad/TVer
  put_u16(out, pkey);
  put_u32(out, dest_qpn & 0xffffff);
  put_u32(out, (psn & 0xffffff) | (ack_req ? 0x80000000u : 0));
}

Bth Bth::parse(std::span<const std::uint8_t> in, std::size_t& pos) {
  Bth h;
  h.opcode = static_cast<BthOpcode>(get_u8(in, pos));
  (void)get_u8(in, pos);
  h.pkey = get_u16(in, pos);
  h.dest_qpn = get_u32(in, pos) & 0xffffff;
  const std::uint32_t w = get_u32(in, pos);
  h.psn = w & 0xffffff;
  h.ack_req = (w & 0x80000000u) != 0;
  return h;
}

void VxlanHeader::serialize(std::vector<std::uint8_t>& out) const {
  put_u32(out, 0x08000000);  // flags: VNI valid
  put_u32(out, (vni & 0xffffff) << 8);
}

VxlanHeader VxlanHeader::parse(std::span<const std::uint8_t> in,
                               std::size_t& pos) {
  const std::uint32_t flags = get_u32(in, pos);
  if ((flags & 0x08000000) == 0) {
    throw std::invalid_argument("vxlan: VNI-valid flag missing");
  }
  VxlanHeader h;
  h.vni = (get_u32(in, pos) >> 8) & 0xffffff;
  return h;
}

std::size_t RoceFrame::wire_bytes() const {
  std::size_t n = kRoceV2OverheadBytes + payload_bytes;
  if (vxlan) n += kVxlanOverheadBytes;
  return n;
}

std::vector<std::uint8_t> RoceFrame::serialize_headers() const {
  std::vector<std::uint8_t> out;
  out.reserve(96);
  if (vxlan) {
    outer_eth.serialize(out);
    outer_ip.serialize(out);
    UdpHeader outer_udp;
    outer_udp.dst_port = kVxlanUdpPort;
    outer_udp.serialize(out);
    vxlan_hdr.serialize(out);
  }
  eth.serialize(out);
  ip.serialize(out);
  udp.serialize(out);
  bth.serialize(out);
  return out;
}

}  // namespace net
