#include "baselines/sriov_context.h"

namespace baselines {

namespace {
sim::Time lib_share(sim::Time driver_cost) { return driver_cost / 9; }
constexpr sim::Time kPostSendCpu = sim::nanoseconds(200);
constexpr sim::Time kPollCqCpu = sim::nanoseconds(30);
}  // namespace

SriovContext::SriovContext(hyp::Vm& vm, rnic::RnicDevice& device,
                           rnic::FnId vf, overlay::OobEndpoint& oob,
                           verbs::DriverCosts costs)
    : vm_(vm), device_(device), oob_(oob),
      driver_(vm.host().loop(), device, vf, costs) {
  driver_.set_profile(&profile_, verbs::Layer::kRdmaDriver);
  doorbell_gva_ = vm_.map_mmio_into_guest(device.doorbell_bar(),
                                          64 * 1024 * 8);
}

sim::Task<void> SriovContext::lib_charge(const char* verb, sim::Time t) {
  profile_.add(verb, verbs::Layer::kVerbsLib, t);
  co_await sim::delay(loop(), t);
}

sim::Task<rnic::Expected<rnic::PdId>> SriovContext::alloc_pd() {
  co_await lib_charge("alloc_pd", lib_share(driver_.costs().alloc_pd));
  co_return co_await driver_.alloc_pd();
}

sim::Task<rnic::Expected<verbs::MrHandle>> SriovContext::reg_mr(
    rnic::PdId pd, mem::Addr addr, std::uint64_t len, std::uint32_t access) {
  co_await lib_charge("reg_mr", lib_share(driver_.costs().reg_mr_base));
  // The guest driver pins GVA pages; the IOMMU (programmed with the VM's
  // GPA->HPA map) makes device DMA land in the right host pages. The MTT
  // resolution below models the combined effect.
  co_return co_await driver_.reg_mr(pd, vm_.gva(), addr, len, access);
}

sim::Task<rnic::Expected<rnic::Cqn>> SriovContext::create_cq(int cqe) {
  co_await lib_charge("create_cq", lib_share(driver_.costs().create_cq_base));
  co_return co_await driver_.create_cq(cqe);
}

sim::Task<rnic::Expected<rnic::Qpn>> SriovContext::create_qp(
    const rnic::QpInitAttr& attr) {
  co_await lib_charge("create_qp", lib_share(driver_.costs().create_qp));
  co_return co_await driver_.create_qp(attr);
}

sim::Task<rnic::Status> SriovContext::modify_qp(rnic::Qpn qpn,
                                                const rnic::QpAttr& attr,
                                                std::uint32_t mask) {
  sim::Time lib = lib_share(driver_.costs().modify_rtr);
  if (mask & rnic::kAttrState) {
    if (attr.state == rnic::QpState::kInit) {
      lib = lib_share(driver_.costs().modify_init);
    } else if (attr.state == rnic::QpState::kRts) {
      lib = lib_share(driver_.costs().modify_rts);
    }
  }
  co_await lib_charge("modify_qp", lib);
  // No renaming: the QPC keeps the peer's *virtual* GID and the NIC's
  // VXLAN offload consults its tunnel table per packet.
  co_return co_await driver_.modify_qp(qpn, attr, mask);
}

sim::Task<rnic::Expected<net::Gid>> SriovContext::query_gid() {
  co_await lib_charge("query_gid", lib_share(driver_.costs().query_gid));
  co_return co_await driver_.query_gid();  // the VF's tenant-facing GID
}

sim::Task<rnic::Expected<rnic::QpAttr>> SriovContext::query_qp(rnic::Qpn qpn) {
  // Bare-metal / passthrough: the application's view IS the hardware QPC.
  co_await lib_charge("query_qp", lib_share(driver_.costs().query_gid));
  if (!device_.qp_exists(qpn)) {
    co_return rnic::Expected<rnic::QpAttr>::error(rnic::Status::kNotFound);
  }
  co_return rnic::Expected<rnic::QpAttr>::of(device_.qp_hw_attr(qpn));
}

sim::Task<rnic::Status> SriovContext::destroy_qp(rnic::Qpn qpn) {
  co_await lib_charge("destroy_qp", lib_share(driver_.costs().destroy_qp));
  co_return co_await driver_.destroy_qp(qpn);
}

sim::Task<rnic::Status> SriovContext::destroy_cq(rnic::Cqn cq) {
  co_await lib_charge("destroy_cq", lib_share(driver_.costs().destroy_cq));
  co_return co_await driver_.destroy_cq(cq);
}

sim::Task<rnic::Status> SriovContext::dereg_mr(const verbs::MrHandle& mr) {
  co_await lib_charge("dereg_mr", lib_share(driver_.costs().dereg_mr));
  co_return co_await driver_.dereg_mr(mr.lkey);
}

sim::Task<rnic::Status> SriovContext::dealloc_pd(rnic::PdId pd) {
  co_await lib_charge("dealloc_pd", lib_share(driver_.costs().dealloc_pd));
  co_return co_await driver_.dealloc_pd(pd);
}

rnic::Status SriovContext::post_send(rnic::Qpn qpn, const rnic::SendWr& wr) {
  const rnic::Status st = device_.post_send(qpn, wr, /*ring_doorbell=*/false);
  if (st == rnic::Status::kOk) {
    vm_.gva().write_u64(doorbell_gva_ + device_.doorbell_offset(qpn), 1);
  }
  return st;
}

sim::Time SriovContext::data_verb_call_time(verbs::DataVerb v) const {
  switch (v) {
    case verbs::DataVerb::kPostSend:
    case verbs::DataVerb::kPostRecv:
      return kPostSendCpu;
    case verbs::DataVerb::kPollCq:
      return kPollCqCpu;
  }
  return 0;
}

}  // namespace baselines
