#include "baselines/freeflow.h"

namespace baselines {

namespace {
sim::Time lib_share(sim::Time driver_cost) { return driver_cost / 9; }
}  // namespace

FfRouter::FfRouter(sim::EventLoop& loop, rnic::RnicDevice& device,
                   sdn::Controller& controller, FfCosts costs,
                   verbs::DriverCosts driver_costs)
    : loop_(loop),
      device_(device),
      driver_(loop, device, rnic::kPf, driver_costs),
      cache_(loop, controller),
      costs_(costs),
      core_(loop) {}

FreeflowContext::FreeflowContext(hyp::Container& container, FfRouter& ffr,
                                 overlay::OobEndpoint& oob)
    : container_(container), ffr_(ffr), oob_(oob) {
  ffr_.driver().set_profile(&profile_, verbs::Layer::kRdmaDriver);
}

sim::Task<void> FreeflowContext::lib_charge(const char* verb, sim::Time t) {
  profile_.add(verb, verbs::Layer::kVerbsLib, t);
  co_await sim::delay(loop(), t);
}

sim::Task<rnic::Expected<rnic::PdId>> FreeflowContext::alloc_pd() {
  co_await lib_charge("alloc_pd", lib_share(ffr_.driver().costs().alloc_pd));
  co_return co_await ffr_.driver().alloc_pd();
}

sim::Task<rnic::Expected<verbs::MrHandle>> FreeflowContext::reg_mr(
    rnic::PdId pd, mem::Addr addr, std::uint64_t len, std::uint32_t access) {
  co_await lib_charge("reg_mr",
                      lib_share(ffr_.driver().costs().reg_mr_base));
  // FFR allocates matching shared-memory regions and maps them into the
  // container — the dominant extra cost of FreeFlow's control path.
  co_await sim::delay(loop(), ffr_.costs().reg_mr_extra);
  co_return co_await ffr_.driver().reg_mr(pd, container_.va(), addr, len,
                                          access);
}

sim::Task<rnic::Expected<rnic::Cqn>> FreeflowContext::create_cq(int cqe) {
  co_await lib_charge("create_cq",
                      lib_share(ffr_.driver().costs().create_cq_base));
  co_await sim::delay(loop(), ffr_.costs().create_cq_extra);
  auto cq = co_await ffr_.driver().create_cq(cqe);
  if (cq.ok()) {
    shadows_[cq.value] = std::make_unique<ShadowCq>();
  }
  co_return cq;
}

sim::Task<rnic::Expected<rnic::Qpn>> FreeflowContext::create_qp(
    const rnic::QpInitAttr& attr) {
  co_await lib_charge("create_qp",
                      lib_share(ffr_.driver().costs().create_qp));
  co_await sim::delay(loop(), ffr_.costs().create_qp_extra);
  co_return co_await ffr_.driver().create_qp(attr);
}

sim::Task<rnic::Status> FreeflowContext::modify_qp(rnic::Qpn qpn,
                                                   const rnic::QpAttr& attr,
                                                   std::uint32_t mask) {
  co_await lib_charge("modify_qp",
                      lib_share(ffr_.driver().costs().modify_rtr));
  co_await sim::delay(loop(), ffr_.costs().modify_extra);
  rnic::QpAttr renamed = attr;
  if ((mask & rnic::kAttrDestGid) != 0 && !attr.dest_gid.is_zero()) {
    // FFR translates the container-overlay GID to the host's physical GID
    // using its own mapping service.
    auto pgid = co_await ffr_.cache().resolve(container_.config().vni,
                                              attr.dest_gid);
    if (!pgid) co_return rnic::Status::kNotFound;
    renamed.dest_gid = *pgid;
  }
  const rnic::Status st = co_await ffr_.driver().modify_qp(qpn, renamed,
                                                           mask);
  if (st == rnic::Status::kOk) {
    rnic::QpAttr& view = tenant_view_[qpn];
    if (mask & rnic::kAttrState) view.state = attr.state;
    if (mask & rnic::kAttrDestGid) view.dest_gid = attr.dest_gid;
    if (mask & rnic::kAttrDestQpn) view.dest_qpn = attr.dest_qpn;
    if (mask & rnic::kAttrPathMtu) view.path_mtu = attr.path_mtu;
    if (mask & rnic::kAttrQkey) view.qkey = attr.qkey;
  }
  co_return st;
}

sim::Task<rnic::Expected<rnic::QpAttr>> FreeflowContext::query_qp(
    rnic::Qpn qpn) {
  co_await lib_charge("query_qp",
                      lib_share(ffr_.driver().costs().query_gid));
  co_await ffr_.forward();
  if (!ffr_.device().qp_exists(qpn)) {
    co_return rnic::Expected<rnic::QpAttr>::error(rnic::Status::kNotFound);
  }
  auto it = tenant_view_.find(qpn);
  rnic::QpAttr view = it != tenant_view_.end() ? it->second : rnic::QpAttr{};
  view.state = ffr_.device().qp_state(qpn);
  co_return rnic::Expected<rnic::QpAttr>::of(view);
}

sim::Task<rnic::Expected<net::Gid>> FreeflowContext::query_gid() {
  co_await lib_charge("query_gid",
                      lib_share(ffr_.driver().costs().query_gid));
  // The container sees its overlay (Weave) address as its GID.
  co_return rnic::Expected<net::Gid>::of(
      net::Gid::from_ipv4(container_.config().vip));
}

sim::Task<rnic::Status> FreeflowContext::destroy_qp(rnic::Qpn qpn) {
  co_await lib_charge("destroy_qp",
                      lib_share(ffr_.driver().costs().destroy_qp));
  co_return co_await ffr_.driver().destroy_qp(qpn);
}

sim::Task<rnic::Status> FreeflowContext::destroy_cq(rnic::Cqn cq) {
  co_await lib_charge("destroy_cq",
                      lib_share(ffr_.driver().costs().destroy_cq));
  shadows_.erase(cq);
  co_return co_await ffr_.driver().destroy_cq(cq);
}

sim::Task<rnic::Status> FreeflowContext::dereg_mr(const verbs::MrHandle& mr) {
  co_await lib_charge("dereg_mr", lib_share(ffr_.driver().costs().dereg_mr));
  co_return co_await ffr_.driver().dereg_mr(mr.lkey);
}

sim::Task<rnic::Status> FreeflowContext::dealloc_pd(rnic::PdId pd) {
  co_await lib_charge("dealloc_pd",
                      lib_share(ffr_.driver().costs().dealloc_pd));
  co_return co_await ffr_.driver().dealloc_pd(pd);
}

sim::Task<void> FreeflowContext::forward_send(rnic::Qpn qpn, rnic::SendWr wr) {
  co_await ffr_.forward();
  co_await sim::delay(loop(), ffr_.costs().data_op_latency);
  (void)ffr_.device().post_send(qpn, wr);
}

sim::Task<void> FreeflowContext::forward_recv(rnic::Qpn qpn, rnic::RecvWr wr) {
  co_await ffr_.forward();
  co_await sim::delay(loop(), ffr_.costs().data_op_latency);
  (void)ffr_.device().post_recv(qpn, wr);
}

rnic::Status FreeflowContext::post_send(rnic::Qpn qpn,
                                        const rnic::SendWr& wr) {
  loop().spawn(forward_send(qpn, wr));
  return rnic::Status::kOk;
}

rnic::Status FreeflowContext::post_recv(rnic::Qpn qpn,
                                        const rnic::RecvWr& wr) {
  loop().spawn(forward_recv(qpn, wr));
  return rnic::Status::kOk;
}

sim::Task<void> FreeflowContext::pump(rnic::Cqn cq) {
  auto it = shadows_.find(cq);
  if (it == shadows_.end()) co_return;
  ShadowCq* shadow = it->second.get();
  while (true) {
    rnic::Completion c;
    if (ffr_.device().poll_cq(cq, 1, &c) == 1) {
      co_await ffr_.forward();  // FFR relays the completion
      shadow->ring.push_back(c);
      for (auto& w : shadow->waiters) w.set_value(true);
      shadow->waiters.clear();
      continue;
    }
    if (!shadow->ring.empty() || shadow->waiters.empty()) {
      // Nothing pending and nobody waiting: stop pumping until the next
      // consumer shows up.
      shadow->pumping = false;
      co_return;
    }
    co_await ffr_.device().cq_nonempty(cq);
  }
}

int FreeflowContext::poll_cq(rnic::Cqn cq, int max_entries,
                             rnic::Completion* out) {
  auto it = shadows_.find(cq);
  if (it == shadows_.end()) return -1;
  ShadowCq* shadow = it->second.get();
  int n = 0;
  while (n < max_entries && !shadow->ring.empty()) {
    out[n++] = shadow->ring.front();
    shadow->ring.pop_front();
  }
  if (!shadow->pumping) {
    shadow->pumping = true;
    loop().spawn(pump(cq));
  }
  return n;
}

sim::Future<bool> FreeflowContext::cq_nonempty(rnic::Cqn cq) {
  auto it = shadows_.find(cq);
  if (it == shadows_.end()) throw std::out_of_range("no such shadow CQ");
  ShadowCq* shadow = it->second.get();
  sim::Promise<bool> p(loop());
  auto f = p.get_future();
  if (!shadow->ring.empty()) {
    p.set_value(true);
  } else {
    shadow->waiters.push_back(std::move(p));
    if (!shadow->pumping) {
      shadow->pumping = true;
      loop().spawn(pump(cq));
    }
  }
  return f;
}

sim::Time FreeflowContext::data_verb_call_time(verbs::DataVerb v) const {
  // Fig. 8b: all three data verbs pay the FFR forwarding cost.
  (void)v;
  return ffr_.costs().data_op + ffr_.costs().data_op_latency;
}

}  // namespace baselines
