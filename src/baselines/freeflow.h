// FreeFlow baseline (NSDI '19): paravirtualized RDMA for containers.
//
// The FreeFlow router (FFR) is a per-host user-space process that owns the
// real verbs objects; containers talk to it through shared memory. Unlike
// MasQ, *every data-path operation* is forwarded: post_send, post_recv and
// completion harvesting all pass through an FFR forwarding core. That core
// is a serial resource — the reason FreeFlow's small-message throughput
// and KVS ops/s flatline around 1 Mops (Fig. 10, Fig. 21) and its data
// verbs cost ~5x more than everyone else's (Fig. 8b).
#pragma once

#include <deque>
#include <memory>

#include "hyp/instance.h"
#include "overlay/oob.h"
#include "sdn/controller.h"
#include "sim/service_queue.h"
#include "sim/flat_map.h"
#include "verbs/api.h"
#include "verbs/kernel_driver.h"

namespace baselines {

struct FfCosts {
  // One FFR forwarding-core visit per data-path op: `data_op` is the
  // serial-core occupancy (bounds throughput — Fig. 21's ~1 Mops KVS
  // ceiling), `data_op_latency` the additional shared-memory round-trip
  // seen by the caller (with occupancy it yields the ~0.9 us per-verb call
  // time of Fig. 8b).
  sim::Time data_op = sim::nanoseconds(350);
  sim::Time data_op_latency = sim::nanoseconds(300);
  // Control verbs rebuild shadow resources in FFR shared memory — large
  // extra allocation/mapping work. Anchor: Fig. 15 (3.9 ms connection
  // setup; reg_mr/create_cq/create_qp dominate the breakdown).
  sim::Time reg_mr_extra = sim::microseconds(540);
  sim::Time create_cq_extra = sim::microseconds(1060);
  sim::Time create_qp_extra = sim::microseconds(1160);
  sim::Time modify_extra = sim::microseconds(170);
};

// Per-host FreeFlow router.
class FfRouter {
 public:
  FfRouter(sim::EventLoop& loop, rnic::RnicDevice& device,
           sdn::Controller& controller, FfCosts costs = {},
           verbs::DriverCosts driver_costs = {});

  sim::EventLoop& loop() { return loop_; }
  rnic::RnicDevice& device() { return device_; }
  verbs::KernelDriver& driver() { return driver_; }
  sdn::MappingCache& cache() { return cache_; }
  const FfCosts& costs() const { return costs_; }

  // One visit to the forwarding core (FIFO serial resource).
  sim::Future<bool> forward() { return core_.submit(costs_.data_op); }
  std::uint64_t ops_forwarded() const { return core_.items_served(); }

 private:
  sim::EventLoop& loop_;
  rnic::RnicDevice& device_;
  verbs::KernelDriver driver_;  // FFR drives the PF on behalf of containers
  sdn::MappingCache cache_;     // FreeFlow's overlay->underlay map
  FfCosts costs_;
  sim::ServiceQueue core_;      // the forwarding core
};

class FreeflowContext : public verbs::Context {
 public:
  FreeflowContext(hyp::Container& container, FfRouter& ffr,
                  overlay::OobEndpoint& oob);

  std::string name() const override { return "FreeFlow"; }
  sim::EventLoop& loop() override { return ffr_.loop(); }

  mem::Addr alloc_buffer(std::uint64_t len) override {
    return container_.alloc_buffer(len);
  }
  void write_buffer(mem::Addr addr,
                    std::span<const std::uint8_t> in) override {
    container_.va().write(addr, in);
  }
  void read_buffer(mem::Addr addr, std::span<std::uint8_t> out) override {
    container_.va().read(addr, out);
  }

  sim::Task<rnic::Expected<rnic::PdId>> alloc_pd() override;
  sim::Task<rnic::Expected<verbs::MrHandle>> reg_mr(
      rnic::PdId pd, mem::Addr addr, std::uint64_t len,
      std::uint32_t access) override;
  sim::Task<rnic::Expected<rnic::Cqn>> create_cq(int cqe) override;
  sim::Task<rnic::Expected<rnic::Qpn>> create_qp(
      const rnic::QpInitAttr& attr) override;
  sim::Task<rnic::Status> modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                                    std::uint32_t mask) override;
  sim::Task<rnic::Expected<net::Gid>> query_gid() override;
  sim::Task<rnic::Expected<rnic::QpAttr>> query_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_cq(rnic::Cqn cq) override;
  sim::Task<rnic::Status> dereg_mr(const verbs::MrHandle& mr) override;
  sim::Task<rnic::Status> dealloc_pd(rnic::PdId pd) override;

  // Data-path verbs are forwarded to the FFR (asynchronously from the
  // application's point of view; errors surface as CQEs).
  [[nodiscard]] rnic::Status post_send(rnic::Qpn qpn,
                                       const rnic::SendWr& wr) override;
  [[nodiscard]] rnic::Status post_recv(rnic::Qpn qpn,
                                       const rnic::RecvWr& wr) override;
  // The application polls a *shadow* CQ that the FFR fills after its own
  // forwarding delay.
  int poll_cq(rnic::Cqn cq, int max_entries,
              rnic::Completion* out) override;
  sim::Future<bool> cq_nonempty(rnic::Cqn cq) override;
  sim::Future<bool> next_rx_event(rnic::Qpn qpn) override {
    return ffr_.device().next_rx_event(qpn);
  }
  sim::Time data_verb_call_time(verbs::DataVerb v) const override;

  overlay::OobEndpoint& oob() override { return oob_; }
  sim::Time scale_compute(sim::Time host_time) const override {
    return container_.compute(host_time);
  }
  // The FFR busy-polls its forwarding core whenever data-path operations
  // flow; amortized over a shuffle-heavy stage it eats most of one core.
  double virtualization_cpu_cores() const override { return 0.75; }

 private:
  struct ShadowCq {
    std::deque<rnic::Completion> ring;
    std::vector<sim::Promise<bool>> waiters;
    bool pumping = false;
  };

  sim::Task<void> lib_charge(const char* verb, sim::Time t);
  sim::Task<void> forward_send(rnic::Qpn qpn, rnic::SendWr wr);
  sim::Task<void> forward_recv(rnic::Qpn qpn, rnic::RecvWr wr);
  // Moves CQEs from the device CQ to the shadow CQ, one FFR visit each.
  sim::Task<void> pump(rnic::Cqn cq);

  hyp::Container& container_;
  FfRouter& ffr_;
  overlay::OobEndpoint& oob_;
  sim::FlatMap<rnic::Cqn, std::unique_ptr<ShadowCq>> shadows_;
  // Overlay-addressed view of each QPC (FFR renames before the device).
  sim::FlatMap<rnic::Qpn, rnic::QpAttr> tenant_view_;
};

}  // namespace baselines
