// SR-IOV baseline: the VF is passed straight into the VM, so *both* paths
// bypass the host — control verbs pay the VF's slower on-NIC processing
// (Fig. 15) and every DMA pays the IOMMU (Fig. 21); network virtualization
// is the NIC's VXLAN offload with its finite tunnel-table cache (§1).
// Limited to 8 VFs by non-ARI PCIe (Table 5).
#pragma once

#include "hyp/instance.h"
#include "overlay/oob.h"
#include "verbs/api.h"
#include "verbs/kernel_driver.h"

namespace baselines {

class SriovContext : public verbs::Context {
 public:
  SriovContext(hyp::Vm& vm, rnic::RnicDevice& device, rnic::FnId vf,
               overlay::OobEndpoint& oob, verbs::DriverCosts costs = {});

  std::string name() const override { return "SR-IOV"; }
  sim::EventLoop& loop() override { return vm_.host().loop(); }

  mem::Addr alloc_buffer(std::uint64_t len) override {
    return vm_.alloc_guest_buffer(len);
  }
  void write_buffer(mem::Addr addr,
                    std::span<const std::uint8_t> in) override {
    vm_.write_guest(addr, in);
  }
  void read_buffer(mem::Addr addr, std::span<std::uint8_t> out) override {
    vm_.read_guest(addr, out);
  }

  sim::Task<rnic::Expected<rnic::PdId>> alloc_pd() override;
  sim::Task<rnic::Expected<verbs::MrHandle>> reg_mr(
      rnic::PdId pd, mem::Addr addr, std::uint64_t len,
      std::uint32_t access) override;
  sim::Task<rnic::Expected<rnic::Cqn>> create_cq(int cqe) override;
  sim::Task<rnic::Expected<rnic::Qpn>> create_qp(
      const rnic::QpInitAttr& attr) override;
  sim::Task<rnic::Status> modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                                    std::uint32_t mask) override;
  sim::Task<rnic::Expected<net::Gid>> query_gid() override;
  sim::Task<rnic::Expected<rnic::QpAttr>> query_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_cq(rnic::Cqn cq) override;
  sim::Task<rnic::Status> dereg_mr(const verbs::MrHandle& mr) override;
  sim::Task<rnic::Status> dealloc_pd(rnic::PdId pd) override;

  [[nodiscard]] rnic::Status post_send(rnic::Qpn qpn,
                                       const rnic::SendWr& wr) override;
  [[nodiscard]] rnic::Status post_recv(rnic::Qpn qpn,
                                       const rnic::RecvWr& wr) override {
    return device_.post_recv(qpn, wr);
  }
  int poll_cq(rnic::Cqn cq, int max_entries,
              rnic::Completion* out) override {
    return device_.poll_cq(cq, max_entries, out);
  }
  sim::Future<bool> cq_nonempty(rnic::Cqn cq) override {
    return device_.cq_nonempty(cq);
  }
  sim::Future<bool> next_rx_event(rnic::Qpn qpn) override {
    return device_.next_rx_event(qpn);
  }
  sim::Time data_verb_call_time(verbs::DataVerb v) const override;

  overlay::OobEndpoint& oob() override { return oob_; }
  sim::Time scale_compute(sim::Time host_time) const override {
    return vm_.compute(host_time);
  }

  rnic::FnId vf() const { return driver_.fn(); }

 private:
  sim::Task<void> lib_charge(const char* verb, sim::Time t);

  hyp::Vm& vm_;
  rnic::RnicDevice& device_;
  overlay::OobEndpoint& oob_;
  verbs::KernelDriver driver_;  // runs *inside the guest*, against the VF
  mem::Addr doorbell_gva_ = 0;
};

}  // namespace baselines
