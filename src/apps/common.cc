#include "apps/common.h"

#include "overlay/oob.h"

namespace apps {

sim::Task<Endpoint> setup_endpoint(verbs::Context& ctx, EndpointOptions opts) {
  Endpoint ep;
  ep.buf_len = opts.buf_len;
  auto pd = co_await ctx.alloc_pd();
  if (!pd.ok()) throw std::runtime_error("alloc_pd failed");
  ep.pd = pd.value;
  ep.buf = ctx.alloc_buffer(opts.buf_len);
  // The rest of the setup ladder pipelines as one control batch: MR, both
  // CQs and the QP cross the command channel together, with the QP's CQ
  // numbers resolved in-batch via slot links.
  auto batch = ctx.make_batch();
  const int mr_slot = batch->reg_mr(ep.pd, ep.buf, opts.buf_len, kFullAccess);
  const int scq_slot = batch->create_cq(opts.cq_entries);
  const int rcq_slot = batch->create_cq(opts.cq_entries);
  rnic::QpInitAttr attr;
  attr.type = opts.type;
  attr.pd = ep.pd;
  attr.caps.max_send_wr = opts.max_wr;
  attr.caps.max_recv_wr = opts.max_wr;
  const int qp_slot = batch->create_qp(attr, scq_slot, rcq_slot);
  (void)co_await batch->commit();
  if (batch->status(mr_slot) != rnic::Status::kOk) {
    throw std::runtime_error("reg_mr failed");
  }
  ep.mr = batch->mr(mr_slot);
  if (batch->status(scq_slot) != rnic::Status::kOk ||
      batch->status(rcq_slot) != rnic::Status::kOk) {
    throw std::runtime_error("create_cq failed");
  }
  ep.scq = static_cast<rnic::Cqn>(batch->value(scq_slot));
  ep.rcq = static_cast<rnic::Cqn>(batch->value(rcq_slot));
  if (batch->status(qp_slot) != rnic::Status::kOk) {
    throw std::runtime_error("create_qp failed");
  }
  ep.qp = static_cast<rnic::Qpn>(batch->value(qp_slot));
  auto gid = co_await ctx.query_gid();
  if (!gid.ok()) throw std::runtime_error("query_gid failed");
  ep.local_gid = gid.value;
  co_return ep;
}

sim::Task<rnic::Status> raise_to_rts_batched(verbs::Context& ctx,
                                             rnic::Qpn qp,
                                             const verbs::ConnInfo& peer) {
  auto batch = ctx.make_batch();
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kInit;
  batch->modify_qp(qp, attr, rnic::kAttrState);
  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = peer.gid;
  attr.dest_qpn = peer.qpn;
  attr.path_mtu = 1024;
  batch->modify_qp(qp, attr,
                   rnic::kAttrState | rnic::kAttrDestGid |
                       rnic::kAttrDestQpn | rnic::kAttrPathMtu);
  attr.state = rnic::QpState::kRts;
  batch->modify_qp(qp, attr, rnic::kAttrState);
  // Entries are error-independent, but the QP state machine still guards
  // the ladder: a failed INIT leaves the QP in RESET, so the RTR and RTS
  // transitions fail with kInvalidState on their own. commit() returns the
  // first failing transition's status, matching the sequential ladder.
  co_return co_await batch->commit();
}

sim::Task<void> destroy_endpoint(verbs::Context& ctx, Endpoint& ep) {
  (void)co_await ctx.destroy_qp(ep.qp);
  (void)co_await ctx.destroy_cq(ep.scq);
  (void)co_await ctx.destroy_cq(ep.rcq);
  (void)co_await ctx.dereg_mr(ep.mr);
  (void)co_await ctx.dealloc_pd(ep.pd);
}

namespace {

// Shared tail of connect_client/connect_server: INIT -> RTR(peer) -> RTS,
// shipped as one pipelined batch.
sim::Task<rnic::Status> raise_to_rts(verbs::Context& ctx, Endpoint& ep) {
  co_return co_await raise_to_rts_batched(ctx, ep.qp, ep.peer);
}

verbs::ConnInfo local_info(const Endpoint& ep) {
  verbs::ConnInfo info;
  info.qpn = ep.qp;
  info.gid = ep.local_gid;
  info.raddr = ep.mr.addr;
  info.rkey = ep.mr.rkey;
  return info;
}

}  // namespace

sim::Task<rnic::Status> connect_client(verbs::Context& ctx, Endpoint& ep,
                                       net::Ipv4Addr server_vip,
                                       std::uint16_t port) {
  // Fig. 1 step 3: exchange connection information over TCP. The client
  // sends first, then waits for the server's info.
  overlay::Blob blob = overlay::pack(local_info(ep));
  const rnic::Status st = co_await ctx.oob().send(server_vip, port, blob);
  if (st != rnic::Status::kOk) co_return st;
  overlay::Blob reply = co_await ctx.oob().recv(port);
  ep.peer = overlay::unpack<verbs::ConnInfo>(reply);
  co_return co_await raise_to_rts(ctx, ep);
}

sim::Task<rnic::Status> connect_server(verbs::Context& ctx, Endpoint& ep,
                                       net::Ipv4Addr client_vip,
                                       std::uint16_t port) {
  overlay::Blob blob = co_await ctx.oob().recv(port);
  ep.peer = overlay::unpack<verbs::ConnInfo>(blob);
  overlay::Blob reply = overlay::pack(local_info(ep));
  const rnic::Status st = co_await ctx.oob().send(client_vip, port, reply);
  if (st != rnic::Status::kOk) co_return st;
  co_return co_await raise_to_rts(ctx, ep);
}

sim::Task<rnic::Status> raise_pooled_to_rts(verbs::Context& ctx,
                                            rnic::Qpn qp,
                                            const verbs::ConnInfo& peer) {
  auto batch = ctx.make_batch();
  rnic::QpAttr attr;
  attr.state = rnic::QpState::kRtr;
  attr.dest_gid = peer.gid;
  attr.dest_qpn = peer.qpn;
  attr.path_mtu = 1024;
  batch->modify_qp(qp, attr,
                   rnic::kAttrState | rnic::kAttrDestGid |
                       rnic::kAttrDestQpn | rnic::kAttrPathMtu);
  attr.state = rnic::QpState::kRts;
  batch->modify_qp(qp, attr, rnic::kAttrState);
  co_return co_await batch->commit();
}

namespace {

// Local info for a pool-staged endpoint: the QP plus the pre-registered
// slab MR. The GID still comes from query_gid (the pool keys on the
// *peer's* vGID; its own is a context fact).
sim::Task<verbs::ConnInfo> pooled_info(verbs::Context& ctx,
                                       const verbs::WarmEndpoint& ep) {
  verbs::ConnInfo info;
  info.qpn = ep.qpn;
  info.raddr = ep.mr.addr;
  info.rkey = ep.mr.rkey;
  auto gid = co_await ctx.query_gid();
  if (gid.ok()) info.gid = gid.value;
  co_return info;
}

}  // namespace

sim::Task<rnic::Status> warm_connect_client(verbs::Context& ctx,
                                            WarmConn& conn,
                                            net::Ipv4Addr server_vip,
                                            std::uint16_t port) {
  // Speculative vGID resolution: a peer's virtual GID is a pure function
  // of its tenant vIP, so the pool is consulted before any OOB traffic.
  conn.peer_gid = net::Gid::from_ipv4(server_vip);
  conn.warm = co_await ctx.acquire_warm(conn.peer_gid);
  conn.kind = conn.warm.kind;

  WarmHello hello;
  if (conn.warm.kind == verbs::WarmKind::kReused) {
    hello.want_reuse = 1;
    hello.expect_qpn = conn.warm.peer_qpn;
    hello.info.qpn = conn.warm.qpn;
    hello.info.raddr = conn.warm.mr.addr;
    hello.info.rkey = conn.warm.mr.rkey;
  } else if (conn.warm.kind == verbs::WarmKind::kPooled) {
    hello.info = co_await pooled_info(ctx, conn.warm);
  } else {
    conn.cold = co_await setup_endpoint(ctx);
    hello.info.qpn = conn.cold.qp;
    hello.info.gid = conn.cold.local_gid;
    hello.info.raddr = conn.cold.mr.addr;
    hello.info.rkey = conn.cold.mr.rkey;
  }
  overlay::Blob blob = overlay::pack(hello);
  const rnic::Status sent = co_await ctx.oob().send(server_vip, port, blob);
  if (sent != rnic::Status::kOk) co_return sent;
  overlay::Blob raw = co_await ctx.oob().recv(port);
  const auto reply = overlay::unpack<WarmReply>(raw);
  conn.peer = reply.info;

  if (hello.want_reuse != 0) {
    if (reply.reused != 0) {
      // Both parked QPs are still RTS and wired to each other: live again
      // after one OOB round, no verbs issued.
      conn.qpn = conn.warm.qpn;
      co_return rnic::Status::kOk;
    }
    // The server's half of the pair is gone (reclaimed, churned, errored).
    // Our parked QP is wired to a dead peer — discard it and downgrade to
    // whatever the pool has left, announcing the replacement via hello2.
    co_await ctx.discard_warm(conn.warm);
    conn.warm = co_await ctx.acquire_warm(conn.peer_gid);
    conn.kind = conn.warm.kind;
    WarmHello hello2;
    if (conn.warm.kind == verbs::WarmKind::kPooled) {
      hello2.info = co_await pooled_info(ctx, conn.warm);
    } else {
      conn.cold = co_await setup_endpoint(ctx);
      hello2.info.qpn = conn.cold.qp;
      hello2.info.gid = conn.cold.local_gid;
      hello2.info.raddr = conn.cold.mr.addr;
      hello2.info.rkey = conn.cold.mr.rkey;
    }
    overlay::Blob blob2 = overlay::pack(hello2);
    const rnic::Status sent2 =
        co_await ctx.oob().send(server_vip, port, blob2);
    if (sent2 != rnic::Status::kOk) co_return sent2;
  }

  if (conn.warm.kind == verbs::WarmKind::kPooled) {
    conn.qpn = conn.warm.qpn;
    co_return co_await raise_pooled_to_rts(ctx, conn.warm.qpn, conn.peer);
  }
  conn.qpn = conn.cold.qp;
  conn.cold.peer = conn.peer;
  co_return co_await raise_to_rts_batched(ctx, conn.cold.qp, conn.peer);
}

sim::Task<rnic::Status> warm_connect_server(verbs::Context& ctx,
                                            WarmConn& conn,
                                            net::Ipv4Addr client_vip,
                                            std::uint16_t port) {
  conn.peer_gid = net::Gid::from_ipv4(client_vip);
  overlay::Blob raw = co_await ctx.oob().recv(port);
  const auto hello = overlay::unpack<WarmHello>(raw);
  conn.peer = hello.info;

  conn.warm = co_await ctx.acquire_warm(conn.peer_gid);
  bool can_reuse = false;
  if (conn.warm.kind == verbs::WarmKind::kReused) {
    // Accept only if the parked pair is exactly what the client holds:
    // our QPN is the one it expects AND its QPN is the one we parked.
    can_reuse = hello.want_reuse != 0 && conn.warm.qpn == hello.expect_qpn &&
                conn.warm.peer_qpn == hello.info.qpn;
    if (!can_reuse) {
      // Stale half-pair (the client lost or replaced its side): a reused
      // QP wired to a dead twin is useless — discard, take the next rung.
      co_await ctx.discard_warm(conn.warm);
      conn.warm = co_await ctx.acquire_warm(conn.peer_gid);
    }
  }
  conn.kind = conn.warm.kind;

  WarmReply reply;
  if (can_reuse) {
    reply.reused = 1;
    reply.info.qpn = conn.warm.qpn;
    reply.info.raddr = conn.warm.mr.addr;
    reply.info.rkey = conn.warm.mr.rkey;
    conn.qpn = conn.warm.qpn;
    overlay::Blob blob = overlay::pack(reply);
    co_return co_await ctx.oob().send(client_vip, port, blob);
  }

  if (conn.warm.kind == verbs::WarmKind::kPooled) {
    reply.info = co_await pooled_info(ctx, conn.warm);
    conn.qpn = conn.warm.qpn;
  } else {
    conn.cold = co_await setup_endpoint(ctx);
    reply.info.qpn = conn.cold.qp;
    reply.info.gid = conn.cold.local_gid;
    reply.info.raddr = conn.cold.mr.addr;
    reply.info.rkey = conn.cold.mr.rkey;
    conn.qpn = conn.cold.qp;
  }
  overlay::Blob blob = overlay::pack(reply);
  const rnic::Status sent = co_await ctx.oob().send(client_vip, port, blob);
  if (sent != rnic::Status::kOk) co_return sent;

  if (hello.want_reuse != 0) {
    // We rejected the reuse offer, so the client is replacing its side;
    // hello2 carries the resources our RTR must actually target.
    overlay::Blob raw2 = co_await ctx.oob().recv(port);
    const auto hello2 = overlay::unpack<WarmHello>(raw2);
    conn.peer = hello2.info;
  }

  if (conn.warm.kind == verbs::WarmKind::kPooled) {
    co_return co_await raise_pooled_to_rts(ctx, conn.warm.qpn, conn.peer);
  }
  conn.cold.peer = conn.peer;
  co_return co_await raise_to_rts_batched(ctx, conn.cold.qp, conn.peer);
}

sim::Task<void> warm_disconnect(verbs::Context& ctx, WarmConn& conn) {
  if (conn.warm.warm()) {
    co_await ctx.release_warm(conn.warm, conn.peer_gid, conn.peer.qpn);
  } else {
    co_await destroy_endpoint(ctx, conn.cold);
  }
}

sim::Task<rnic::WcStatus> send_and_wait(verbs::Context& ctx, Endpoint& ep,
                                        std::uint64_t offset,
                                        std::uint32_t len) {
  rnic::SendWr wr;
  wr.wr_id = 100;
  wr.opcode = rnic::WrOpcode::kSend;
  wr.sge = {ep.buf + offset, len, ep.mr.lkey};
  if (ctx.post_send(ep.qp, wr) != rnic::Status::kOk) {
    co_return rnic::WcStatus::kLocQpOpErr;
  }
  rnic::Completion c = co_await ctx.wait_completion(ep.scq);
  co_return c.status;
}

sim::Task<rnic::Completion> recv_and_wait(verbs::Context& ctx, Endpoint& ep,
                                          std::uint64_t offset,
                                          std::uint32_t len) {
  rnic::RecvWr wr;
  wr.wr_id = 1;
  wr.sge = {ep.buf + offset, len, ep.mr.lkey};
  if (ctx.post_recv(ep.qp, wr) != rnic::Status::kOk) {
    throw std::runtime_error("post_recv failed");
  }
  co_return co_await ctx.wait_completion(ep.rcq);
}

sim::Task<rnic::WcStatus> write_and_wait(verbs::Context& ctx, Endpoint& ep,
                                         std::uint64_t local_offset,
                                         std::uint64_t remote_offset,
                                         std::uint32_t len) {
  rnic::SendWr wr;
  wr.wr_id = 2;
  wr.opcode = rnic::WrOpcode::kRdmaWrite;
  wr.sge = {ep.buf + local_offset, len, ep.mr.lkey};
  wr.remote_addr = ep.peer.raddr + remote_offset;
  wr.rkey = ep.peer.rkey;
  if (ctx.post_send(ep.qp, wr) != rnic::Status::kOk) {
    co_return rnic::WcStatus::kLocQpOpErr;
  }
  rnic::Completion c = co_await ctx.wait_completion(ep.scq);
  co_return c.status;
}

sim::Task<rnic::WcStatus> read_and_wait(verbs::Context& ctx, Endpoint& ep,
                                        std::uint64_t local_offset,
                                        std::uint64_t remote_offset,
                                        std::uint32_t len) {
  rnic::SendWr wr;
  wr.wr_id = 3;
  wr.opcode = rnic::WrOpcode::kRdmaRead;
  wr.sge = {ep.buf + local_offset, len, ep.mr.lkey};
  wr.remote_addr = ep.peer.raddr + remote_offset;
  wr.rkey = ep.peer.rkey;
  if (ctx.post_send(ep.qp, wr) != rnic::Status::kOk) {
    co_return rnic::WcStatus::kLocQpOpErr;
  }
  rnic::Completion c = co_await ctx.wait_completion(ep.scq);
  co_return c.status;
}

void put_string(verbs::Context& ctx, const Endpoint& ep, std::uint64_t offset,
                const std::string& s) {
  ctx.write_buffer(ep.buf + offset,
                   {reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size()});
}

std::string get_string(verbs::Context& ctx, const Endpoint& ep,
                       std::uint64_t offset, std::size_t n) {
  std::vector<std::uint8_t> buf(n);
  ctx.read_buffer(ep.buf + offset, buf);
  return std::string(buf.begin(), buf.end());
}

}  // namespace apps
