#include "apps/minimpi.h"

#include <cstring>
#include <deque>
#include <unordered_map>

#include "sim/join.h"

namespace apps::mpi {

namespace {
// Eager-protocol header carried in every wire message: total message
// length + chunk offset (16 bytes, like an MPI match header).
constexpr std::uint32_t kHeaderBytes = 16;
constexpr std::uint32_t kSlots = 32;
// Shared-memory latency for ranks co-located on one instance.
constexpr sim::Time kLocalLatency = sim::nanoseconds(800);
}  // namespace

struct Comm::Channel {
  bool local = false;
  int from = 0;
  int to = 0;
  std::uint32_t slot_size = 0;  // payload capacity + header

  // RDMA path state.
  Endpoint src_ep;  // lives on instance(from)
  Endpoint dst_ep;  // lives on instance(to)
  verbs::Context* src_ctx = nullptr;
  verbs::Context* dst_ctx = nullptr;

  // Sender: sliding window over slots. tx_busy serializes whole messages
  // so chunks of concurrent send() calls never interleave on the wire.
  bool tx_busy = false;
  std::deque<sim::Promise<bool>> tx_waiters;
  std::uint64_t seq = 0;
  std::uint64_t acked = 0;
  std::unordered_map<std::uint64_t, sim::Promise<bool>> pending_sends;
  std::deque<sim::Promise<bool>> window_waiters;
  bool send_pump_running = false;

  // Receiver: reassembly of chunked messages + delivery queue.
  std::vector<std::uint8_t> assembling;
  std::uint64_t assembled = 0;
  std::uint64_t expect_total = 0;
  std::deque<std::vector<std::uint8_t>> arrived;
  std::deque<sim::Promise<bool>> recv_waiters;
  bool recv_pump_running = false;
};

Comm::Comm(fabric::Testbed& bed, std::vector<std::size_t> mapping,
           std::uint32_t max_msg)
    : bed_(bed), ranks_(std::move(mapping)), max_msg_(max_msg) {}

Comm::~Comm() = default;

verbs::Context& Comm::ctx(int rank) {
  return bed_.ctx(ranks_.at(static_cast<std::size_t>(rank)));
}

Comm::Channel& Comm::channel(int from, int to) {
  return *channels_.at(static_cast<std::size_t>(from) * ranks_.size() + to);
}

sim::Task<std::unique_ptr<Comm>> Comm::create(
    fabric::Testbed& bed, std::vector<std::size_t> rank_to_instance,
    std::uint16_t base_port, std::uint32_t max_msg) {
  // masq-lint: allow(naked-new) make_unique cannot reach the private ctor
  std::unique_ptr<Comm> comm(new Comm(  // NOLINT(modernize-make-unique)
      bed, std::move(rank_to_instance), max_msg));
  comm->channels_.resize(comm->ranks_.size() * comm->ranks_.size());
  co_await comm->wireup(base_port);
  co_return comm;
}

sim::Task<void> Comm::wireup(std::uint16_t base_port) {
  const int n = size();
  // Per-channel endpoint buffers: kSlots slots of (max chunk + header).
  const std::uint32_t slot_size = std::min<std::uint32_t>(max_msg_, 64 * 1024)
                                  + kHeaderBytes;
  std::uint16_t port = base_port;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      auto ch = std::make_unique<Channel>();
      ch->from = i;
      ch->to = j;
      ch->slot_size = slot_size;
      if (ranks_[i] == ranks_[j]) {
        ch->local = true;  // co-located ranks use shared memory
        channels_[static_cast<std::size_t>(i) * n + j] = std::move(ch);
        continue;
      }
      ch->src_ctx = &ctx(i);
      ch->dst_ctx = &ctx(j);
      EndpointOptions opts;
      opts.buf_len = static_cast<std::uint64_t>(kSlots) * slot_size;
      opts.max_wr = kSlots;
      // Wire up both sides concurrently (client = sender side).
      struct Srv {
        static sim::Task<void> run(Comm* c, Channel* ch, std::uint16_t p,
                                   EndpointOptions o) {
          ch->dst_ep = co_await setup_endpoint(*ch->dst_ctx, o);
          (void)co_await connect_server(
              *ch->dst_ctx, ch->dst_ep,
              c->bed_.instance_vip(c->ranks_[ch->from]), p);
          // Pre-post every receive slot.
          for (std::uint32_t s = 0; s < kSlots; ++s) {
            rnic::RecvWr rwr{s, {ch->dst_ep.buf + s * ch->slot_size,
                                 ch->slot_size, ch->dst_ep.mr.lkey}};
            (void)ch->dst_ctx->post_recv(ch->dst_ep.qp, rwr);
          }
        }
      };
      bed_.loop().spawn(Srv::run(this, ch.get(), port, opts));
      ch->src_ep = co_await setup_endpoint(*ch->src_ctx, opts);
      const rnic::Status st = co_await connect_client(
          *ch->src_ctx, ch->src_ep, bed_.instance_vip(ranks_[j]), port);
      if (st != rnic::Status::kOk) {
        throw std::runtime_error("mpi wireup failed");
      }
      ++port;
      channels_[static_cast<std::size_t>(i) * n + j] = std::move(ch);
    }
  }
  // Let the server halves finish their QP ladders before first use.
  co_await sim::delay(bed_.loop(), sim::milliseconds(5));
}

// Sender-side completion pump: resolves per-seq promises in order.
sim::Task<void> Comm::pump_channel(Channel* ch) {
  while (!ch->pending_sends.empty()) {
    rnic::Completion c = co_await ch->src_ctx->wait_completion(ch->src_ep.scq);
    auto it = ch->pending_sends.find(c.wr_id);
    if (it != ch->pending_sends.end()) {
      it->second.set_value(c.status == rnic::WcStatus::kSuccess);
      ch->pending_sends.erase(it);
    }
    ++ch->acked;
    if (!ch->window_waiters.empty()) {
      auto w = std::move(ch->window_waiters.front());
      ch->window_waiters.pop_front();
      w.set_value(true);
    }
  }
  ch->send_pump_running = false;
}

// Receiver-side pump: drains recv CQEs, reassembles chunks, re-posts slots.
sim::Task<void> Comm::pump_recv(Channel* ch) {
  while (true) {
    rnic::Completion c =
        co_await ch->dst_ctx->wait_completion(ch->dst_ep.rcq);
    if (c.status != rnic::WcStatus::kSuccess) break;  // flushed: stop
    const std::uint32_t slot = static_cast<std::uint32_t>(c.wr_id);
    std::vector<std::uint8_t> wire(c.byte_len);
    ch->dst_ctx->read_buffer(ch->dst_ep.buf + slot * ch->slot_size, wire);
    // Re-post the slot immediately (keeps the queue deep).
    rnic::RecvWr rwr{slot, {ch->dst_ep.buf + slot * ch->slot_size,
                            ch->slot_size, ch->dst_ep.mr.lkey}};
    (void)ch->dst_ctx->post_recv(ch->dst_ep.qp, rwr);
    // Parse the eager header.
    std::uint64_t total, offset;
    std::memcpy(&total, wire.data(), 8);
    std::memcpy(&offset, wire.data() + 8, 8);
    if (ch->assembling.empty() && ch->assembled == 0) {
      ch->expect_total = total;
      ch->assembling.resize(total);
    }
    const std::size_t payload = wire.size() - kHeaderBytes;
    // Skip the copy for zero-length payloads: memcpy on a null destination
    // (empty assembly buffer) is UB even with size 0.
    if (payload > 0) {
      std::memcpy(ch->assembling.data() + offset, wire.data() + kHeaderBytes,
                  payload);
    }
    ch->assembled += payload;
    if (ch->assembled >= ch->expect_total) {
      ch->arrived.push_back(std::move(ch->assembling));
      ch->assembling.clear();
      ch->assembled = 0;
      ch->expect_total = 0;
      if (!ch->recv_waiters.empty()) {
        auto w = std::move(ch->recv_waiters.front());
        ch->recv_waiters.pop_front();
        w.set_value(true);
      }
    }
  }
  ch->recv_pump_running = false;
}

sim::Task<void> Comm::send(int from, int to,
                           std::span<const std::uint8_t> data) {
  Channel& ch = channel(from, to);
  if (ch.local) {
    // Shared-memory path for co-located ranks.
    co_await sim::delay(bed_.loop(), kLocalLatency);
    ch.arrived.emplace_back(data.begin(), data.end());
    if (!ch.recv_waiters.empty()) {
      auto w = std::move(ch.recv_waiters.front());
      ch.recv_waiters.pop_front();
      w.set_value(true);
    }
    co_return;
  }
  // Acquire the channel's transmit lock (messages are not interleaved).
  while (ch.tx_busy) {
    sim::Promise<bool> p(bed_.loop());
    auto f = p.get_future();
    ch.tx_waiters.push_back(std::move(p));
    co_await f;
  }
  ch.tx_busy = true;
  const std::uint32_t chunk_cap = ch.slot_size - kHeaderBytes;
  std::uint64_t off = 0;
  std::vector<sim::Future<bool>> chunk_done;
  const std::uint64_t total = data.size();
  do {
    // Window backpressure.
    while (ch.seq - ch.acked >= kSlots) {
      sim::Promise<bool> p(bed_.loop());
      auto f = p.get_future();
      ch.window_waiters.push_back(std::move(p));
      co_await f;
    }
    const std::uint64_t n = std::min<std::uint64_t>(chunk_cap, total - off);
    const std::uint64_t seq = ch.seq++;
    const std::uint32_t slot = static_cast<std::uint32_t>(seq % kSlots);
    const mem::Addr slot_addr = ch.src_ep.buf + slot * ch.slot_size;
    std::vector<std::uint8_t> wire(kHeaderBytes + n);
    std::memcpy(wire.data(), &total, 8);
    std::memcpy(wire.data() + 8, &off, 8);
    if (n > 0) std::memcpy(wire.data() + kHeaderBytes, data.data() + off, n);
    ch.src_ctx->write_buffer(slot_addr, wire);
    rnic::SendWr wr;
    wr.wr_id = seq;
    wr.opcode = rnic::WrOpcode::kSend;
    wr.sge = {slot_addr, static_cast<std::uint32_t>(wire.size()),
              ch.src_ep.mr.lkey};
    sim::Promise<bool> done(bed_.loop());
    chunk_done.push_back(done.get_future());
    ch.pending_sends.emplace(seq, std::move(done));
    if (ch.src_ctx->post_send(ch.src_ep.qp, wr) != rnic::Status::kOk) {
      throw std::runtime_error("mpi send: post_send failed");
    }
    if (!ch.send_pump_running) {
      ch.send_pump_running = true;
      bed_.loop().spawn(pump_channel(&ch));
    }
    off += n;
  } while (off < total);
  // All chunks are posted in order; release the lock, then await the
  // completions (the next message may pipeline behind this one).
  ch.tx_busy = false;
  if (!ch.tx_waiters.empty()) {
    auto w = std::move(ch.tx_waiters.front());
    ch.tx_waiters.pop_front();
    w.set_value(true);
  }
  for (auto& f : chunk_done) {
    if (!co_await f) throw std::runtime_error("mpi send: completion error");
  }
}

sim::Task<std::vector<std::uint8_t>> Comm::recv(int at, int from) {
  Channel& ch = channel(from, at);
  if (!ch.local && !ch.recv_pump_running) {
    ch.recv_pump_running = true;
    bed_.loop().spawn(pump_recv(&ch));
  }
  while (ch.arrived.empty()) {
    sim::Promise<bool> p(bed_.loop());
    auto f = p.get_future();
    ch.recv_waiters.push_back(std::move(p));
    co_await f;
  }
  std::vector<std::uint8_t> out = std::move(ch.arrived.front());
  ch.arrived.pop_front();
  co_return out;
}

sim::Task<void> Comm::transfer(int from, int to,
                               std::vector<std::uint8_t> data,
                               std::vector<std::uint8_t>* out) {
  struct Rx {
    static sim::Task<void> run(Comm* c, int at, int from,
                               std::vector<std::uint8_t>* out) {
      auto v = co_await c->recv(at, from);
      if (out != nullptr) *out = std::move(v);
    }
  };
  std::vector<sim::Task<void>> both;
  both.push_back(send(from, to, data));
  both.push_back(Rx::run(this, to, from, out));
  co_await sim::join_all(bed_.loop(), std::move(both));
}

sim::Task<void> Comm::bcast(
    int root, const std::vector<std::uint8_t>& payload,
    std::vector<std::vector<std::uint8_t>>* rank_data) {
  const int n = size();
  rank_data->assign(static_cast<std::size_t>(n), {});
  (*rank_data)[static_cast<std::size_t>(root)] = payload;
  for (int mask = 1; mask < n; mask <<= 1) {
    std::vector<sim::Task<void>> round;
    for (int rel = 0; rel < mask; ++rel) {
      if (rel + mask >= n) break;
      const int src = (root + rel) % n;
      const int dst = (root + rel + mask) % n;
      round.push_back(transfer(src, dst,
                               (*rank_data)[static_cast<std::size_t>(src)],
                               &(*rank_data)[static_cast<std::size_t>(dst)]));
    }
    co_await sim::join_all(bed_.loop(), std::move(round));
  }
}

namespace {

std::vector<std::uint8_t> to_bytes(const std::vector<std::int64_t>& v) {
  std::vector<std::uint8_t> out(v.size() * 8);
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

std::vector<std::int64_t> from_bytes(const std::vector<std::uint8_t>& b) {
  std::vector<std::int64_t> out(b.size() / 8);
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

void add_into(std::vector<std::int64_t>* acc,
              const std::vector<std::int64_t>& v) {
  for (std::size_t i = 0; i < acc->size(); ++i) (*acc)[i] += v[i];
}

}  // namespace

sim::Task<void> Comm::allreduce_sum(
    std::vector<std::vector<std::int64_t>>* data) {
  const int n = size();
  int p2 = 1;
  while (p2 * 2 <= n) p2 *= 2;
  // Fold ranks >= p2 into their partner below.
  {
    std::vector<sim::Task<void>> fold;
    std::vector<std::vector<std::uint8_t>> tmp(static_cast<std::size_t>(n));
    for (int r = p2; r < n; ++r) {
      fold.push_back(transfer(r, r - p2, to_bytes((*data)[r]),
                              &tmp[static_cast<std::size_t>(r - p2)]));
    }
    co_await sim::join_all(bed_.loop(), std::move(fold));
    for (int r = p2; r < n; ++r) {
      add_into(&(*data)[static_cast<std::size_t>(r - p2)],
               from_bytes(tmp[static_cast<std::size_t>(r - p2)]));
    }
  }
  // Recursive doubling among [0, p2).
  for (int mask = 1; mask < p2; mask <<= 1) {
    std::vector<std::vector<std::uint8_t>> incoming(
        static_cast<std::size_t>(p2));
    std::vector<sim::Task<void>> round;
    for (int r = 0; r < p2; ++r) {
      const int partner = r ^ mask;
      round.push_back(transfer(r, partner, to_bytes((*data)[r]),
                               &incoming[static_cast<std::size_t>(partner)]));
    }
    co_await sim::join_all(bed_.loop(), std::move(round));
    for (int r = 0; r < p2; ++r) {
      add_into(&(*data)[static_cast<std::size_t>(r)],
               from_bytes(incoming[static_cast<std::size_t>(r)]));
    }
  }
  // Unfold: send results back to ranks >= p2.
  {
    std::vector<sim::Task<void>> unfold;
    std::vector<std::vector<std::uint8_t>> tmp(static_cast<std::size_t>(n));
    for (int r = p2; r < n; ++r) {
      unfold.push_back(transfer(r - p2, r, to_bytes((*data)[r - p2]),
                                &tmp[static_cast<std::size_t>(r)]));
    }
    co_await sim::join_all(bed_.loop(), std::move(unfold));
    for (int r = p2; r < n; ++r) {
      (*data)[static_cast<std::size_t>(r)] =
          from_bytes(tmp[static_cast<std::size_t>(r)]);
    }
  }
}

sim::Task<void> Comm::barrier() {
  std::vector<std::vector<std::int64_t>> ones(
      static_cast<std::size_t>(size()), std::vector<std::int64_t>{1});
  co_await allreduce_sum(&ones);
}

sim::Task<void> Comm::alltoallv(
    const std::vector<std::vector<std::vector<std::uint8_t>>>& buffers,
    std::vector<std::vector<std::vector<std::uint8_t>>>* received) {
  const int n = size();
  received->assign(static_cast<std::size_t>(n),
                   std::vector<std::vector<std::uint8_t>>(
                       static_cast<std::size_t>(n)));
  std::vector<sim::Task<void>> all;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const auto& payload = buffers[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(j)];
      auto* out =
          &(*received)[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      if (i == j) {
        *out = payload;  // local copy
        continue;
      }
      if (payload.empty()) continue;
      all.push_back(transfer(i, j, payload, out));
    }
  }
  co_await sim::join_all(bed_.loop(), std::move(all));
}

// ---------------------------------------------------------------- OSU bench

sim::Stats osu_latency(fabric::Testbed& bed, Comm& comm,
                       std::uint32_t msg_size, int iterations) {
  sim::Stats out;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, Comm* comm,
                              std::uint32_t size, int iters,
                              sim::Stats* out) {
      std::vector<std::uint8_t> payload(size, 0x5a);
      for (int i = 0; i < iters; ++i) {
        const sim::Time t0 = bed->loop().now();
        co_await comm->transfer(0, 1, payload, nullptr);
        co_await comm->transfer(1, 0, payload, nullptr);
        out->add(sim::to_us(bed->loop().now() - t0) / 2.0);
      }
    }
  };
  bed.loop().spawn(Run::go(&bed, &comm, msg_size, iterations, &out));
  bed.loop().run();
  return out;
}

double osu_bw(fabric::Testbed& bed, Comm& comm, std::uint32_t msg_size,
              int iterations, int window) {
  double gbps = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, Comm* comm,
                              std::uint32_t size, int iters, int window,
                              double* out) {
      std::vector<std::uint8_t> payload(size, 0x5a);
      const sim::Time t0 = bed->loop().now();
      int sent = 0;
      while (sent < iters) {
        const int batch = std::min(window, iters - sent);
        std::vector<sim::Task<void>> ops;
        for (int k = 0; k < batch; ++k) {
          ops.push_back(comm->transfer(0, 1, payload, nullptr));
        }
        co_await sim::join_all(bed->loop(), std::move(ops));
        sent += batch;
      }
      const sim::Time dt = bed->loop().now() - t0;
      *out = static_cast<double>(size) * iters * 8.0 /
             static_cast<double>(dt);
    }
  };
  bed.loop().spawn(Run::go(&bed, &comm, msg_size, iterations, window, &gbps));
  bed.loop().run();
  return gbps;
}

double osu_bcast(fabric::Testbed& bed, Comm& comm, std::uint32_t msg_size,
                 int iterations) {
  double us = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, Comm* comm,
                              std::uint32_t size, int iters, double* out) {
      std::vector<std::uint8_t> payload(size, 0x7c);
      const sim::Time t0 = bed->loop().now();
      std::vector<std::vector<std::uint8_t>> sink;
      for (int i = 0; i < iters; ++i) {
        co_await comm->bcast(0, payload, &sink);
      }
      *out = sim::to_us(bed->loop().now() - t0) / iters;
    }
  };
  bed.loop().spawn(Run::go(&bed, &comm, msg_size, iterations, &us));
  bed.loop().run();
  return us;
}

double osu_allreduce(fabric::Testbed& bed, Comm& comm,
                     std::uint32_t msg_size, int iterations) {
  double us = 0;
  struct Run {
    static sim::Task<void> go(fabric::Testbed* bed, Comm* comm,
                              std::uint32_t size, int iters, double* out) {
      const std::size_t elems = std::max<std::size_t>(1, size / 8);
      const sim::Time t0 = bed->loop().now();
      for (int i = 0; i < iters; ++i) {
        std::vector<std::vector<std::int64_t>> data(
            static_cast<std::size_t>(comm->size()),
            std::vector<std::int64_t>(elems, 1));
        co_await comm->allreduce_sum(&data);
      }
      *out = sim::to_us(bed->loop().now() - t0) / iters;
    }
  };
  bed.loop().spawn(Run::go(&bed, &comm, msg_size, iterations, &us));
  bed.loop().run();
  return us;
}

}  // namespace apps::mpi
