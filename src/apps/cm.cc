#include "apps/cm.h"

#include <cstring>

namespace apps::cm {

namespace {

// Fixed-size heads of the two handshake messages; the variable-length
// private_data follows immediately after.
struct ReqHead {
  std::uint32_t client_vip;
  std::uint16_t reply_port;
  verbs::ConnInfo info;
};

struct RespHead {
  std::uint8_t accepted;
  verbs::ConnInfo info;
};

template <typename Head>
overlay::Blob with_payload(const Head& head, const overlay::Blob& pd) {
  overlay::Blob out(sizeof(Head) + pd.size());
  std::memcpy(out.data(), &head, sizeof(Head));
  if (!pd.empty()) {
    std::memcpy(out.data() + sizeof(Head), pd.data(), pd.size());
  }
  return out;
}

template <typename Head>
bool split_payload(const overlay::Blob& blob, Head* head,
                   overlay::Blob* pd) {
  if (blob.size() < sizeof(Head)) return false;
  std::memcpy(head, blob.data(), sizeof(Head));
  pd->assign(blob.begin() + sizeof(Head), blob.end());
  return true;
}

// The client's reply mailbox: unique per (vip, qpn) since QPNs are unique
// per device and a vip maps to one device function.
std::uint16_t reply_port_for(rnic::Qpn qpn) {
  return static_cast<std::uint16_t>(40000 + (qpn % 20000));
}

}  // namespace

sim::Task<Incoming> Listener::get_request() {
  while (true) {
    overlay::Blob blob = co_await ctx_.oob().recv(port_);
    ReqHead head;
    Incoming in;
    if (!split_payload(blob, &head, &in.private_data)) continue;  // garbage
    in.peer_vip = net::Ipv4Addr{head.client_vip};
    in.session_port = head.reply_port;
    in.peer_info = head.info;
    co_return in;
  }
}

sim::Task<rnic::Expected<Endpoint>> Listener::accept(
    const Incoming& req, EndpointOptions opts, overlay::Blob private_data) {
  Endpoint ep = co_await setup_endpoint(ctx_, opts);
  ep.peer = req.peer_info;
  // Raise our side first so the client's first message finds us in RTS.
  // The whole INIT -> RTR -> RTS ladder ships as one pipelined batch: under
  // MasQ that is a single virtqueue transit instead of three, and the
  // backend still runs RConntrack/RConnrename per entry.
  rnic::Status st = co_await raise_to_rts_batched(ctx_, ep.qp, ep.peer);
  if (st != rnic::Status::kOk) {
    co_await destroy_endpoint(ctx_, ep);
    co_await reject(req);
    co_return rnic::Expected<Endpoint>::error(st);
  }
  RespHead head;
  head.accepted = 1;
  head.info = verbs::ConnInfo{ep.qp, ep.local_gid, ep.mr.addr, ep.mr.rkey};
  overlay::Blob resp = with_payload(head, private_data);
  st = co_await ctx_.oob().send(req.peer_vip, req.session_port, resp);
  if (st != rnic::Status::kOk) {
    co_await destroy_endpoint(ctx_, ep);
    co_return rnic::Expected<Endpoint>::error(st);
  }
  co_return rnic::Expected<Endpoint>::of(std::move(ep));
}

sim::Task<void> Listener::reject(const Incoming& req, overlay::Blob reason) {
  RespHead head;
  head.accepted = 0;
  head.info = verbs::ConnInfo{};
  overlay::Blob resp = with_payload(head, reason);
  (void)co_await ctx_.oob().send(req.peer_vip, req.session_port, resp);
}

sim::Task<rnic::Expected<Connection>> connect(verbs::Context& ctx,
                                              net::Ipv4Addr server_vip,
                                              std::uint16_t port,
                                              EndpointOptions opts,
                                              overlay::Blob private_data) {
  Connection conn;
  conn.endpoint = co_await setup_endpoint(ctx, opts);
  Endpoint& ep = conn.endpoint;

  ReqHead head;
  head.client_vip = ctx.oob().vip().value;
  head.reply_port = reply_port_for(ep.qp);
  head.info = verbs::ConnInfo{ep.qp, ep.local_gid, ep.mr.addr, ep.mr.rkey};
  overlay::Blob req = with_payload(head, private_data);
  rnic::Status st = co_await ctx.oob().send(server_vip, port, req);
  if (st != rnic::Status::kOk) {
    co_await destroy_endpoint(ctx, ep);
    co_return rnic::Expected<Connection>::error(st);
  }

  overlay::Blob blob = co_await ctx.oob().recv(head.reply_port);
  RespHead resp;
  if (!split_payload(blob, &resp, &conn.private_data)) {
    co_await destroy_endpoint(ctx, ep);
    co_return rnic::Expected<Connection>::error(rnic::Status::kInvalidArgument);
  }
  if (resp.accepted == 0) {
    co_await destroy_endpoint(ctx, ep);
    co_return rnic::Expected<Connection>::error(
        rnic::Status::kPermissionDenied);
  }
  ep.peer = resp.info;

  // Same pipelined ladder as the server side: one batch, one transit.
  st = co_await raise_to_rts_batched(ctx, ep.qp, ep.peer);
  if (st != rnic::Status::kOk) {
    co_await destroy_endpoint(ctx, ep);
    co_return rnic::Expected<Connection>::error(st);
  }
  co_return rnic::Expected<Connection>::of(std::move(conn));
}

}  // namespace apps::cm
