// Mini-MPI over the Verbs API — the MVAPICH2/OSU substrate of §4.2.2.
//
// A Comm wires up every rank pair with an RC connection (eager protocol
// over pre-posted receive slots); ranks co-located on an instance use a
// shared-memory channel, mirroring how MPI launches multiple processes per
// VM in the paper's Graph500 runs. Collectives are the textbook
// algorithms: binomial-tree broadcast and recursive-doubling allreduce —
// their latency emerges from the concurrent point-to-point transfers.
//
// Real data moves: allreduce really sums vectors, and tests verify the
// arithmetic end to end through the RNIC DMA path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "apps/common.h"
#include "fabric/testbed.h"
#include "sim/stats.h"

namespace apps::mpi {

class Comm {
 public:
  // rank r runs on instance rank_to_instance[r]. Connections are
  // established during create() (MPI wire-up).
  static sim::Task<std::unique_ptr<Comm>> create(
      fabric::Testbed& bed, std::vector<std::size_t> rank_to_instance,
      std::uint16_t base_port = 20000, std::uint32_t max_msg = 256 * 1024);

  ~Comm();

  int size() const { return static_cast<int>(ranks_.size()); }
  verbs::Context& ctx(int rank);

  // Point-to-point (FIFO per ordered pair; eager protocol).
  sim::Task<void> send(int from, int to, std::span<const std::uint8_t> data);
  sim::Task<std::vector<std::uint8_t>> recv(int at, int from);

  // One transfer = matched send+recv; completes when the data has landed.
  // Takes the payload by value: transfers are frequently built into a
  // round and executed later (join_all), so the task must own its bytes.
  sim::Task<void> transfer(int from, int to, std::vector<std::uint8_t> data,
                           std::vector<std::uint8_t>* out = nullptr);

  // ---- collectives -------------------------------------------------------
  // Binomial-tree broadcast of `payload` from `root`; on return every
  // rank's slot in `rank_data` holds the payload.
  sim::Task<void> bcast(int root, const std::vector<std::uint8_t>& payload,
                        std::vector<std::vector<std::uint8_t>>* rank_data);
  // Recursive-doubling sum-allreduce over per-rank int64 vectors (all
  // vectors must have equal length; works for any rank count by folding
  // non-power-of-two ranks into the nearest power of two).
  sim::Task<void> allreduce_sum(std::vector<std::vector<std::int64_t>>* data);
  sim::Task<void> barrier();

  // All-to-all personalized exchange: buffers[i][j] goes from rank i to
  // rank j; on return received[j][i] holds it. The workhorse of the
  // Graph500 BFS frontier exchange.
  sim::Task<void> alltoallv(
      const std::vector<std::vector<std::vector<std::uint8_t>>>& buffers,
      std::vector<std::vector<std::vector<std::uint8_t>>>* received);

 private:
  Comm(fabric::Testbed& bed, std::vector<std::size_t> mapping,
       std::uint32_t max_msg);

  struct Channel;
  Channel& channel(int from, int to);
  sim::Task<void> wireup(std::uint16_t base_port);
  sim::Task<void> pump_channel(Channel* ch);
  sim::Task<void> pump_recv(Channel* ch);

  fabric::Testbed& bed_;
  std::vector<std::size_t> ranks_;  // rank -> instance index
  std::uint32_t max_msg_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [from * n + to]
};

// ---- OSU micro-benchmarks (§4.2.2) ---------------------------------------

// osu_latency between ranks 0 and 1: ping-pong, returns one-way us.
sim::Stats osu_latency(fabric::Testbed& bed, Comm& comm,
                       std::uint32_t msg_size, int iterations);
// osu_bw: windowed unidirectional bandwidth in Gbps.
double osu_bw(fabric::Testbed& bed, Comm& comm, std::uint32_t msg_size,
              int iterations, int window = 64);
// osu_bcast / osu_allreduce: mean time per operation in us.
double osu_bcast(fabric::Testbed& bed, Comm& comm, std::uint32_t msg_size,
                 int iterations);
double osu_allreduce(fabric::Testbed& bed, Comm& comm,
                     std::uint32_t msg_size, int iterations);

}  // namespace apps::mpi
