// HERD-style key-value store (§4.4.2, Fig. 21), derived from rdma_bench's
// design with the RPC revised to use RC, as in the paper.
//
// One server instance runs `num_workers` worker threads behind a shared
// store; a separate machine runs `num_clients` client threads, each with
// its own RC connection and a small pipeline of outstanding requests. The
// workload is 95% GET / 5% PUT over 16-byte keys and 32-byte values chosen
// uniformly at random. Real bytes are stored and verified: a GET returns
// the value a previous PUT wrote through the RNIC DMA path.
#pragma once

#include <cstdint>

#include "fabric/testbed.h"

namespace apps::kvs {

struct Config {
  int num_workers = 14;
  int num_clients = 14;
  std::uint64_t num_keys = 100'000;  // scaled from HERD's 8 M per worker
  double get_fraction = 0.95;
  int pipeline = 2;  // outstanding requests per client thread
  sim::Time warmup = sim::milliseconds(2);
  sim::Time measure = sim::milliseconds(10);
  // Per-request worker CPU. With 14 workers this sustains ~10.8 Mops, so
  // the RNIC message rate (~9.8 Mops) is the bottleneck at peak — the
  // paper's observation for Fig. 21.
  sim::Time worker_cpu_per_op = sim::microseconds(1.3);
  std::uint16_t base_port = 30000;
  std::uint64_t seed = 1;
};

struct Result {
  double mops = 0;  // measured throughput
  std::uint64_t ops = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t value_mismatches = 0;  // integrity check failures
};

// Server on instance 0, all client threads on instance 1 (two machines,
// like the paper's testbed).
Result run(fabric::Testbed& bed, Config cfg);

}  // namespace apps::kvs
