// librdmacm-flavoured connection management.
//
// apps::connect_client/connect_server implement the bare Fig.-1 exchange
// for exactly one pre-arranged pair. Real RDMA services need more: one
// well-known port accepting many concurrent clients, application payload
// piggybacked on the handshake (rdma_cm's private_data), and an explicit
// accept/reject decision. This module provides that on top of the OOB
// channel:
//
//   // server
//   cm::Listener listener(ctx, 4791);
//   auto req = co_await listener.get_request();        // REQ + private_data
//   auto ep  = co_await listener.accept(req, opts, reply_blob);
//
//   // client
//   auto conn = co_await cm::connect(ctx, server_vip, 4791, opts, hello);
//   // conn.value.endpoint is RTS; conn.value.private_data = server's blob
//
// The handshake itself traverses the tenant's virtual TCP network, so it
// is subject to security groups exactly like the paper requires (§3.3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "overlay/oob.h"

namespace apps::cm {

// A connection request as seen by the listener.
struct Incoming {
  net::Ipv4Addr peer_vip;
  std::uint16_t session_port = 0;  // private port for this handshake
  verbs::ConnInfo peer_info;
  overlay::Blob private_data;
};

// The client-side result of connect().
struct Connection {
  Endpoint endpoint;
  overlay::Blob private_data;  // server's accept payload
};

class Listener {
 public:
  // Listens on `port` of ctx's OOB endpoint. Session ports are carved
  // from `port + 1` upward, one per accepted handshake.
  Listener(verbs::Context& ctx, std::uint16_t port)
      : ctx_(ctx), port_(port), next_session_(port + 1) {}

  // Waits for the next REQ.
  sim::Task<Incoming> get_request();

  // Builds local resources, answers with ACCEPT (+ private_data) and
  // raises the QP to RTS against the requester.
  sim::Task<rnic::Expected<Endpoint>> accept(const Incoming& req,
                                             EndpointOptions opts = {},
                                             overlay::Blob private_data = {});

  // Answers with REJECT (+ optional reason); no resources are created.
  sim::Task<void> reject(const Incoming& req, overlay::Blob reason = {});

  std::uint16_t port() const { return port_; }

 private:
  verbs::Context& ctx_;
  std::uint16_t port_;
  std::uint16_t next_session_;
};

// Client side: sets up an endpoint, sends REQ with `private_data`, and on
// ACCEPT raises the QP to RTS. kPermissionDenied if security rules block
// the handshake or the connection; kNotFound if no listener answered the
// tenant network; a rejected handshake also returns kPermissionDenied
// with the server's reason in `Connection::private_data`.
sim::Task<rnic::Expected<Connection>> connect(verbs::Context& ctx,
                                              net::Ipv4Addr server_vip,
                                              std::uint16_t port,
                                              EndpointOptions opts = {},
                                              overlay::Blob private_data = {});

}  // namespace apps::cm
