// Shared application-level helpers: the canonical client/server RDMA flow
// of Fig. 1 — resource setup, OOB exchange of connection information over
// the virtual TCP network, QP state ladder, teardown.
//
// Everything here is written against verbs::Context only, so it runs
// unmodified on all four virtualization candidates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rnic/types.h"
#include "verbs/api.h"

namespace apps {

inline constexpr std::uint32_t kFullAccess =
    rnic::kLocalWrite | rnic::kRemoteWrite | rnic::kRemoteRead;

// One side's RDMA resources (Fig. 1, setup phase).
struct Endpoint {
  rnic::PdId pd = 0;
  rnic::Cqn scq = 0;
  rnic::Cqn rcq = 0;
  rnic::Qpn qp = 0;
  verbs::MrHandle mr;
  mem::Addr buf = 0;
  std::uint64_t buf_len = 0;
  net::Gid local_gid;
  verbs::ConnInfo peer;  // filled by connect_*()
};

struct EndpointOptions {
  std::uint64_t buf_len = 64 * 1024;
  int cq_entries = 1024;
  std::uint32_t max_wr = 512;
  rnic::QpType type = rnic::QpType::kRc;
};

// Allocates PD/MR/CQ/QP and queries the (virtual) GID. The MR, both CQs
// and the QP ship as one pipelined control batch (the QP's CQ numbers are
// resolved in-batch via slot links), so under MasQ the bulk of the setup
// ladder costs a single virtqueue transit instead of four.
sim::Task<Endpoint> setup_endpoint(verbs::Context& ctx,
                                   EndpointOptions opts = {});

// Walks a QP INIT -> RTR(peer) -> RTS as one pipelined control batch: a
// single virtqueue transit under MasQ instead of three, while the backend
// still applies RConntrack/RConnrename per transition. Returns the first
// failing transition's status (kOk if the whole ladder succeeded).
sim::Task<rnic::Status> raise_to_rts_batched(verbs::Context& ctx,
                                             rnic::Qpn qp,
                                             const verbs::ConnInfo& peer);

// Releases everything (Fig. 1, cleanup phase).
sim::Task<void> destroy_endpoint(verbs::Context& ctx, Endpoint& ep);

// Full connection establishment between a client and a server that have
// already run setup_endpoint(): exchange (QPN, GID, MR) over the OOB
// channel, then walk both QPs RESET -> INIT -> RTR -> RTS.
// `server_vip`/`client_vip` are tenant-virtual addresses; `port`
// disambiguates concurrent exchanges. Returns kPermissionDenied if either
// the TCP exchange or the RDMA connection is blocked by security rules.
sim::Task<rnic::Status> connect_client(verbs::Context& ctx, Endpoint& ep,
                                       net::Ipv4Addr server_vip,
                                       std::uint16_t port);
sim::Task<rnic::Status> connect_server(verbs::Context& ctx, Endpoint& ep,
                                       net::Ipv4Addr client_vip,
                                       std::uint16_t port);

// Warm-path connection setup (DESIGN.md §14) ----------------------------
//
// Swift-style elastic setup on top of verbs::Context's warm-pool API.
// Three rungs, negotiated per connect:
//   reused — both sides still hold the parked RTS pair: one OOB hello
//            round and the connection is live again (no verbs at all);
//   pooled — a pre-staged QP (already at INIT, MR pre-registered) pays
//            only the RTR→RTS half-ladder;
//   cold   — full setup_endpoint() + INIT→RTR→RTS, identical to
//            connect_client/connect_server.
// On candidates without a warm pool acquire_warm() always returns kCold,
// so these helpers degrade to the classic flow unmodified.

// hello1: client resources + its reuse offer. `expect_qpn` is the server
// QPN the client's parked pair is wired to — the server only accepts the
// reuse if its own parked QP matches (a reclaimed/churned pool on either
// side downgrades the rung instead of mis-wiring).
struct WarmHello {
  verbs::ConnInfo info;
  rnic::Qpn expect_qpn = 0;
  std::uint8_t want_reuse = 0;
};
// reply: server resources + whether the reuse offer was accepted.
struct WarmReply {
  verbs::ConnInfo info;
  std::uint8_t reused = 0;
};

// One warm connection, whichever rung it landed on. `warm` holds pool
// resources (kind != kCold); `cold` holds classic resources otherwise.
struct WarmConn {
  verbs::WarmEndpoint warm;
  Endpoint cold;
  verbs::ConnInfo peer;
  net::Gid peer_gid;
  verbs::WarmKind kind = verbs::WarmKind::kCold;
  rnic::Qpn qpn = 0;  // our QP, whichever path supplied it
};

// Client/server warm connection establishment. The peer's virtual GID is
// computed from its vIP (speculative vGID resolution — the pool key needs
// no OOB traffic). Protocol: hello1 → reply; a rejected reuse offer adds
// one hello2 carrying the client's replacement resources.
sim::Task<rnic::Status> warm_connect_client(verbs::Context& ctx,
                                            WarmConn& conn,
                                            net::Ipv4Addr server_vip,
                                            std::uint16_t port);
sim::Task<rnic::Status> warm_connect_server(verbs::Context& ctx,
                                            WarmConn& conn,
                                            net::Ipv4Addr client_vip,
                                            std::uint16_t port);

// Lazy teardown: parks pool-backed connections for reuse (the pool's idle
// timer reclaims them later); cold connections are destroyed eagerly.
sim::Task<void> warm_disconnect(verbs::Context& ctx, WarmConn& conn);

// RTR(peer) -> RTS as one batch — the pooled half-ladder (the pool already
// walked the QP to INIT at stage time).
sim::Task<rnic::Status> raise_pooled_to_rts(verbs::Context& ctx,
                                            rnic::Qpn qp,
                                            const verbs::ConnInfo& peer);

// Data-plane conveniences -----------------------------------------------

// Posts a send of [ep.buf+offset, +len) and waits for the send CQE.
sim::Task<rnic::WcStatus> send_and_wait(verbs::Context& ctx, Endpoint& ep,
                                        std::uint64_t offset,
                                        std::uint32_t len);
// Posts a recv and waits for the incoming message's CQE.
sim::Task<rnic::Completion> recv_and_wait(verbs::Context& ctx, Endpoint& ep,
                                          std::uint64_t offset,
                                          std::uint32_t len);
// RDMA-writes into the peer's MR (address from the OOB exchange).
sim::Task<rnic::WcStatus> write_and_wait(verbs::Context& ctx, Endpoint& ep,
                                         std::uint64_t local_offset,
                                         std::uint64_t remote_offset,
                                         std::uint32_t len);
// RDMA-reads from the peer's MR into the local buffer.
sim::Task<rnic::WcStatus> read_and_wait(verbs::Context& ctx, Endpoint& ep,
                                        std::uint64_t local_offset,
                                        std::uint64_t remote_offset,
                                        std::uint32_t len);

// Buffer I/O with std::string payloads (tests / examples).
void put_string(verbs::Context& ctx, const Endpoint& ep, std::uint64_t offset,
                const std::string& s);
std::string get_string(verbs::Context& ctx, const Endpoint& ep,
                       std::uint64_t offset, std::size_t n);

}  // namespace apps
