#include "apps/graph500.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "apps/minimpi.h"
#include "sim/join.h"
#include "sim/rng.h"

namespace apps::graph500 {

namespace {

struct Edge {
  std::uint32_t u;
  std::uint32_t v;
  std::uint8_t w;
};

// R-MAT/Kronecker edge generation with the Graph500 reference parameters.
std::vector<Edge> generate_edges(const Config& cfg) {
  const std::uint64_t n = 1ull << cfg.scale;
  const std::uint64_t m = n * static_cast<std::uint64_t>(cfg.edge_factor);
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  sim::Rng rng(cfg.seed);
  // Vertex scramble: odd multiplier makes (a*x + b) mod 2^scale a bijection.
  const std::uint64_t mul = (rng.next_u64() | 1) & (n - 1);
  const std::uint64_t add = rng.next_u64() & (n - 1);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0, v = 0;
    for (int bit = 0; bit < cfg.scale; ++bit) {
      const double r = rng.next_double();
      int quadrant;
      if (r < kA) {
        quadrant = 0;
      } else if (r < kA + kB) {
        quadrant = 1;
      } else if (r < kA + kB + kC) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      u |= static_cast<std::uint64_t>(quadrant >> 1) << bit;
      v |= static_cast<std::uint64_t>(quadrant & 1) << bit;
    }
    u = (mul * u + add) & (n - 1);
    v = (mul * v + add) & (n - 1);
    edges.push_back(Edge{static_cast<std::uint32_t>(u),
                         static_cast<std::uint32_t>(v),
                         static_cast<std::uint8_t>(1 + rng.next_below(255))});
  }
  return edges;
}

// A (vertex, payload) pair shipped between ranks during BFS/SSSP.
struct Update {
  std::uint32_t v;
  std::uint32_t aux;  // BFS: parent; SSSP: low 32 bits handled separately
  std::uint64_t dist; // SSSP candidate distance (unused by BFS)
};

std::vector<std::uint8_t> pack_updates(const std::vector<Update>& u) {
  std::vector<std::uint8_t> out(u.size() * sizeof(Update));
  if (!u.empty()) std::memcpy(out.data(), u.data(), out.size());
  return out;
}

std::vector<Update> unpack_updates(const std::vector<std::uint8_t>& b) {
  std::vector<Update> out(b.size() / sizeof(Update));
  if (!out.empty()) std::memcpy(out.data(), b.data(), b.size());
  return out;
}

struct Graph {
  int num_ranks;
  std::uint64_t n;
  std::uint64_t m;
  // adj[rank][local_index] = list of (neighbor, weight); vertex v is owned
  // by rank v % num_ranks with local index v / num_ranks.
  std::vector<std::vector<std::vector<std::pair<std::uint32_t,
                                                std::uint8_t>>>> adj;

  int owner(std::uint32_t v) const { return static_cast<int>(v) % num_ranks; }
  std::uint32_t local(std::uint32_t v) const {
    return v / static_cast<std::uint32_t>(num_ranks);
  }
  const std::vector<std::pair<std::uint32_t, std::uint8_t>>& neighbors(
      std::uint32_t v) const {
    return adj[static_cast<std::size_t>(owner(v))][local(v)];
  }
};

// Kernel 1: distribute edges to their owners (both directions) and build
// adjacency lists. Communication goes through the real alltoall.
sim::Task<double> build_graph(fabric::Testbed& bed, apps::mpi::Comm& comm,
                              const Config& cfg,
                              const std::vector<Edge>& edges, Graph* g) {
  const int n_ranks = cfg.num_ranks;
  const sim::Time t0 = bed.loop().now();
  g->num_ranks = n_ranks;
  g->n = 1ull << cfg.scale;
  g->m = edges.size();
  g->adj.assign(static_cast<std::size_t>(n_ranks), {});
  for (int r = 0; r < n_ranks; ++r) {
    g->adj[static_cast<std::size_t>(r)].resize(
        (g->n + static_cast<std::uint64_t>(n_ranks) - 1) /
        static_cast<std::uint64_t>(n_ranks));
  }
  // Edges start round-robin on their generating rank; ship both endpoints.
  std::vector<std::vector<std::vector<Update>>> outgoing(
      static_cast<std::size_t>(n_ranks),
      std::vector<std::vector<Update>>(static_cast<std::size_t>(n_ranks)));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.u == e.v) continue;  // self-loops dropped, per the spec
    const int gen_rank = static_cast<int>(i) % n_ranks;
    outgoing[gen_rank][g->owner(e.u)].push_back(Update{e.u, e.v, e.w});
    outgoing[gen_rank][g->owner(e.v)].push_back(Update{e.v, e.u, e.w});
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> buffers(
      static_cast<std::size_t>(n_ranks),
      std::vector<std::vector<std::uint8_t>>(
          static_cast<std::size_t>(n_ranks)));
  std::uint64_t insertions = 0;
  for (int i = 0; i < n_ranks; ++i) {
    for (int j = 0; j < n_ranks; ++j) {
      insertions += outgoing[i][j].size();
      buffers[i][j] = pack_updates(outgoing[i][j]);
    }
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> received;
  co_await comm.alltoallv(buffers, &received);
  // Parallel per-rank adjacency construction (charged CPU).
  std::vector<sim::Task<void>> tasks;
  for (int r = 0; r < n_ranks; ++r) {
    struct Build {
      static sim::Task<void> run(
          apps::mpi::Comm* comm, Graph* g, int r, const Config* cfg,
          const std::vector<std::vector<std::uint8_t>>* inbox) {
        std::uint64_t count = 0;
        for (const auto& blob : *inbox) {
          for (const Update& u : unpack_updates(blob)) {
            g->adj[static_cast<std::size_t>(r)][g->local(u.v)]
                .emplace_back(u.aux, static_cast<std::uint8_t>(u.dist));
            ++count;
          }
        }
        co_await comm->ctx(r).compute(cfg->per_edge_cpu *
                                      static_cast<sim::Time>(count));
      }
    };
    tasks.push_back(Build::run(&comm, g, r, &cfg,
                               &received[static_cast<std::size_t>(r)]));
  }
  // Re-encode weight into Update::dist for construction.
  co_await sim::join_all(bed.loop(), std::move(tasks));
  (void)insertions;
  co_return sim::to_s(bed.loop().now() - t0);
}

// Kernel 2: level-synchronous BFS from `root`. Returns (time, parent map).
sim::Task<double> run_bfs(fabric::Testbed& bed, apps::mpi::Comm& comm,
                          const Config& cfg, const Graph& g,
                          std::uint32_t root,
                          std::vector<std::int64_t>* parent,
                          std::vector<std::int64_t>* depth) {
  const int n_ranks = cfg.num_ranks;
  const sim::Time t0 = bed.loop().now();
  parent->assign(g.n, -1);
  depth->assign(g.n, -1);
  (*parent)[root] = root;
  (*depth)[root] = 0;
  std::vector<std::vector<std::uint32_t>> frontier(
      static_cast<std::size_t>(n_ranks));
  frontier[static_cast<std::size_t>(g.owner(root))].push_back(root);
  std::int64_t level = 0;
  while (true) {
    // Scan phase, parallel per rank.
    std::vector<std::vector<std::vector<Update>>> buckets(
        static_cast<std::size_t>(n_ranks),
        std::vector<std::vector<Update>>(static_cast<std::size_t>(n_ranks)));
    std::vector<sim::Task<void>> scans;
    for (int r = 0; r < n_ranks; ++r) {
      struct Scan {
        static sim::Task<void> run(apps::mpi::Comm* comm, const Config* cfg,
                                   const Graph* g, int r,
                                   const std::vector<std::uint32_t>* front,
                                   std::vector<std::vector<Update>>* out) {
          std::uint64_t scanned = 0;
          for (std::uint32_t u : *front) {
            for (const auto& [v, w] : g->neighbors(u)) {
              (*out)[static_cast<std::size_t>(g->owner(v))].push_back(
                  Update{v, u, 0});
              ++scanned;
            }
          }
          co_await comm->ctx(r).compute(
              cfg->per_edge_cpu * static_cast<sim::Time>(scanned) +
              cfg->per_vertex_cpu *
                  static_cast<sim::Time>(front->size()));
        }
      };
      scans.push_back(Scan::run(&comm, &cfg, &g, r,
                                &frontier[static_cast<std::size_t>(r)],
                                &buckets[static_cast<std::size_t>(r)]));
    }
    co_await sim::join_all(bed.loop(), std::move(scans));

    // Exchange discovered vertices.
    std::vector<std::vector<std::vector<std::uint8_t>>> wire(
        static_cast<std::size_t>(n_ranks),
        std::vector<std::vector<std::uint8_t>>(
            static_cast<std::size_t>(n_ranks)));
    for (int i = 0; i < n_ranks; ++i) {
      for (int j = 0; j < n_ranks; ++j) {
        wire[i][j] = pack_updates(buckets[i][j]);
      }
    }
    std::vector<std::vector<std::vector<std::uint8_t>>> received;
    co_await comm.alltoallv(wire, &received);

    // Accept phase, parallel per rank.
    std::vector<std::vector<std::uint32_t>> next(
        static_cast<std::size_t>(n_ranks));
    std::vector<sim::Task<void>> accepts;
    for (int r = 0; r < n_ranks; ++r) {
      struct Accept {
        static sim::Task<void> run(
            apps::mpi::Comm* comm, const Config* cfg, int r,
            const std::vector<std::vector<std::uint8_t>>* inbox,
            std::vector<std::int64_t>* parent,
            std::vector<std::int64_t>* depth, std::int64_t level,
            std::vector<std::uint32_t>* next) {
          std::uint64_t handled = 0;
          for (const auto& blob : *inbox) {
            for (const Update& u : unpack_updates(blob)) {
              ++handled;
              if ((*parent)[u.v] < 0) {
                (*parent)[u.v] = u.aux;
                (*depth)[u.v] = level + 1;
                next->push_back(u.v);
              }
            }
          }
          co_await comm->ctx(r).compute(cfg->per_vertex_cpu *
                                        static_cast<sim::Time>(handled));
        }
      };
      accepts.push_back(Accept::run(&comm, &cfg, r,
                                    &received[static_cast<std::size_t>(r)],
                                    parent, depth, level,
                                    &next[static_cast<std::size_t>(r)]));
    }
    co_await sim::join_all(bed.loop(), std::move(accepts));

    // Global termination check (allreduce of frontier sizes).
    std::vector<std::vector<std::int64_t>> counts;
    for (int r = 0; r < n_ranks; ++r) {
      counts.push_back({static_cast<std::int64_t>(
          next[static_cast<std::size_t>(r)].size())});
    }
    co_await comm.allreduce_sum(&counts);
    frontier = std::move(next);
    ++level;
    if (counts[0][0] == 0) break;
  }
  co_return sim::to_s(bed.loop().now() - t0);
}

// Kernel 3: SSSP by synchronous Bellman-Ford rounds.
sim::Task<double> run_sssp(fabric::Testbed& bed, apps::mpi::Comm& comm,
                           const Config& cfg, const Graph& g,
                           std::uint32_t root,
                           std::vector<std::uint64_t>* dist) {
  const int n_ranks = cfg.num_ranks;
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  const sim::Time t0 = bed.loop().now();
  dist->assign(g.n, kInf);
  (*dist)[root] = 0;
  std::vector<std::vector<std::uint32_t>> active(
      static_cast<std::size_t>(n_ranks));
  active[static_cast<std::size_t>(g.owner(root))].push_back(root);
  while (true) {
    std::vector<std::vector<std::vector<Update>>> buckets(
        static_cast<std::size_t>(n_ranks),
        std::vector<std::vector<Update>>(static_cast<std::size_t>(n_ranks)));
    std::vector<sim::Task<void>> relaxes;
    for (int r = 0; r < n_ranks; ++r) {
      struct Relax {
        static sim::Task<void> run(apps::mpi::Comm* comm, const Config* cfg,
                                   const Graph* g, int r,
                                   const std::vector<std::uint32_t>* act,
                                   const std::vector<std::uint64_t>* dist,
                                   std::vector<std::vector<Update>>* out) {
          std::uint64_t relaxed = 0;
          for (std::uint32_t u : *act) {
            const std::uint64_t du = (*dist)[u];
            for (const auto& [v, w] : g->neighbors(u)) {
              (*out)[static_cast<std::size_t>(g->owner(v))].push_back(
                  Update{v, u, du + w});
              ++relaxed;
            }
          }
          co_await comm->ctx(r).compute(cfg->per_edge_cpu *
                                        static_cast<sim::Time>(relaxed));
        }
      };
      relaxes.push_back(Relax::run(&comm, &cfg, &g, r,
                                   &active[static_cast<std::size_t>(r)],
                                   dist,
                                   &buckets[static_cast<std::size_t>(r)]));
    }
    co_await sim::join_all(bed.loop(), std::move(relaxes));

    std::vector<std::vector<std::vector<std::uint8_t>>> wire(
        static_cast<std::size_t>(n_ranks),
        std::vector<std::vector<std::uint8_t>>(
            static_cast<std::size_t>(n_ranks)));
    for (int i = 0; i < n_ranks; ++i) {
      for (int j = 0; j < n_ranks; ++j) {
        wire[i][j] = pack_updates(buckets[i][j]);
      }
    }
    std::vector<std::vector<std::vector<std::uint8_t>>> received;
    co_await comm.alltoallv(wire, &received);

    std::vector<std::vector<std::uint32_t>> next(
        static_cast<std::size_t>(n_ranks));
    std::vector<sim::Task<void>> settles;
    for (int r = 0; r < n_ranks; ++r) {
      struct Settle {
        static sim::Task<void> run(
            apps::mpi::Comm* comm, const Config* cfg, int r,
            const std::vector<std::vector<std::uint8_t>>* inbox,
            std::vector<std::uint64_t>* dist,
            std::vector<std::uint32_t>* next) {
          std::uint64_t handled = 0;
          for (const auto& blob : *inbox) {
            for (const Update& u : unpack_updates(blob)) {
              ++handled;
              if (u.dist < (*dist)[u.v]) {
                (*dist)[u.v] = u.dist;
                next->push_back(u.v);
              }
            }
          }
          // Deduplicate re-activated vertices.
          std::sort(next->begin(), next->end());
          next->erase(std::unique(next->begin(), next->end()), next->end());
          co_await comm->ctx(r).compute(cfg->per_vertex_cpu *
                                        static_cast<sim::Time>(handled));
        }
      };
      settles.push_back(Settle::run(&comm, &cfg, r,
                                    &received[static_cast<std::size_t>(r)],
                                    dist, &next[static_cast<std::size_t>(r)]));
    }
    co_await sim::join_all(bed.loop(), std::move(settles));

    std::vector<std::vector<std::int64_t>> counts;
    for (int r = 0; r < n_ranks; ++r) {
      counts.push_back({static_cast<std::int64_t>(
          next[static_cast<std::size_t>(r)].size())});
    }
    co_await comm.allreduce_sum(&counts);
    active = std::move(next);
    if (counts[0][0] == 0) break;
  }
  co_return sim::to_s(bed.loop().now() - t0);
}

bool validate_bfs(const Graph& g, std::uint32_t root,
                  const std::vector<std::int64_t>& parent,
                  const std::vector<std::int64_t>& depth) {
  if (parent[root] != static_cast<std::int64_t>(root) || depth[root] != 0) {
    return false;
  }
  for (std::uint32_t v = 0; v < g.n; ++v) {
    if (parent[v] < 0 || v == root) continue;
    const auto p = static_cast<std::uint32_t>(parent[v]);
    if (depth[v] != depth[p] + 1) return false;
    const auto& nbrs = g.neighbors(v);
    const bool edge_exists =
        std::any_of(nbrs.begin(), nbrs.end(),
                    [&](const auto& e) { return e.first == p; });
    if (!edge_exists) return false;
  }
  return true;
}

bool validate_sssp(const Graph& g, std::uint32_t root,
                   const std::vector<std::uint64_t>& dist) {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  if (dist[root] != 0) return false;
  for (std::uint32_t u = 0; u < g.n; ++u) {
    if (dist[u] == kInf) continue;
    for (const auto& [v, w] : g.neighbors(u)) {
      if (dist[v] > dist[u] + w) return false;  // unrelaxed edge
    }
  }
  return true;
}

}  // namespace

Result run(fabric::Testbed& bed, Config cfg) {
  Result result;
  struct Driver {
    static sim::Task<void> go(fabric::Testbed* bed, Config cfg,
                              Result* result) {
      // Ranks round-robin over the instances (the paper places 16 ranks
      // on 2 VMs; fabric runs spread them over more hosts).
      std::vector<std::size_t> mapping;
      for (int r = 0; r < cfg.num_ranks; ++r) {
        mapping.push_back(static_cast<std::size_t>(r % cfg.num_instances));
      }
      auto comm = co_await apps::mpi::Comm::create(*bed, mapping,
                                                   cfg.base_port);
      const auto edges = generate_edges(cfg);
      Graph g;
      result->construction_s =
          co_await build_graph(*bed, *comm, cfg, edges, &g);

      sim::Rng root_rng(cfg.seed ^ 0x5eed);
      double bfs_time = 0, sssp_time = 0;
      bool bfs_ok = true, sssp_ok = true;
      for (int i = 0; i < cfg.num_roots; ++i) {
        // Pick roots with at least one neighbor, like the reference code.
        std::uint32_t root;
        do {
          root = static_cast<std::uint32_t>(root_rng.next_below(g.n));
        } while (g.neighbors(root).empty());
        std::vector<std::int64_t> parent, depth;
        bfs_time += co_await run_bfs(*bed, *comm, cfg, g, root, &parent,
                                     &depth);
        bfs_ok = bfs_ok && validate_bfs(g, root, parent, depth);
        std::vector<std::uint64_t> dist;
        sssp_time += co_await run_sssp(*bed, *comm, cfg, g, root, &dist);
        sssp_ok = sssp_ok && validate_sssp(g, root, dist);
      }
      result->bfs.mean_time_s = bfs_time / cfg.num_roots;
      result->bfs.edges = g.m;
      result->bfs.teps = static_cast<double>(g.m) / result->bfs.mean_time_s;
      result->bfs.validated = bfs_ok;
      result->sssp.mean_time_s = sssp_time / cfg.num_roots;
      result->sssp.edges = g.m;
      result->sssp.teps =
          static_cast<double>(g.m) / result->sssp.mean_time_s;
      result->sssp.validated = sssp_ok;
    }
  };
  bed.loop().spawn(Driver::go(&bed, cfg, &result));
  bed.loop().run();
  return result;
}

}  // namespace apps::graph500
