#include "apps/perftest.h"

#include <memory>
#include <vector>

#include "apps/common.h"

namespace apps::perftest {

namespace {

struct LatShared {
  sim::Stats samples;
};

sim::Task<void> lat_server(fabric::Testbed& bed, LatConfig cfg) {
  verbs::Context& ctx = bed.ctx(1);
  Endpoint ep = co_await setup_endpoint(ctx, {.buf_len = 65536});
  (void)co_await connect_server(ctx, ep, bed.instance_vip(0), cfg.port);
  if (cfg.op == Op::kSend) {
    // The recv for ping i+1 is always posted before pong i leaves, so the
    // client's next ping can never hit an empty receive queue.
    rnic::RecvWr rwr{0, {ep.buf, cfg.msg_size, ep.mr.lkey}};
    (void)ctx.post_recv(ep.qp, rwr);
    for (int i = 0; i < cfg.iterations; ++i) {
      (void)co_await ctx.wait_completion(ep.rcq);
      if (i + 1 < cfg.iterations) {
        rwr.wr_id = static_cast<std::uint64_t>(i + 1);
        (void)ctx.post_recv(ep.qp, rwr);
      }
      rnic::SendWr swr;
      swr.wr_id = 1000 + i;
      swr.opcode = rnic::WrOpcode::kSend;
      swr.sge = {ep.buf, cfg.msg_size, ep.mr.lkey};
      (void)ctx.post_send(ep.qp, swr);
      (void)co_await ctx.wait_completion(ep.scq);
    }
  } else {
    // ib_write_lat: spin on the buffer until the peer's write lands, then
    // write back. The watch for ping i+1 is armed before pong i is sent.
    auto ping = ctx.next_rx_event(ep.qp);
    for (int i = 0; i < cfg.iterations; ++i) {
      co_await ping;
      if (i + 1 < cfg.iterations) ping = ctx.next_rx_event(ep.qp);
      rnic::SendWr swr;
      swr.wr_id = 1000 + i;
      swr.opcode = rnic::WrOpcode::kRdmaWrite;
      swr.sge = {ep.buf, cfg.msg_size, ep.mr.lkey};
      swr.remote_addr = ep.peer.raddr;
      swr.rkey = ep.peer.rkey;
      (void)ctx.post_send(ep.qp, swr);
      (void)co_await ctx.wait_completion(ep.scq);
    }
  }
}

sim::Task<void> lat_client(fabric::Testbed& bed, LatConfig cfg,
                           LatShared* shared) {
  verbs::Context& ctx = bed.ctx(0);
  Endpoint ep = co_await setup_endpoint(ctx, {.buf_len = 65536});
  (void)co_await connect_client(ctx, ep, bed.instance_vip(1), cfg.port);
  for (int i = 0; i < cfg.iterations; ++i) {
    const sim::Time t0 = ctx.loop().now();
    if (cfg.op == Op::kSend) {
      rnic::RecvWr rwr{static_cast<std::uint64_t>(i),
                       {ep.buf, cfg.msg_size, ep.mr.lkey}};
      (void)ctx.post_recv(ep.qp, rwr);
      rnic::SendWr swr;
      swr.wr_id = 2000 + i;
      swr.opcode = rnic::WrOpcode::kSend;
      swr.sge = {ep.buf, cfg.msg_size, ep.mr.lkey};
      swr.signaled = false;  // like perftest, only the pong is awaited
      (void)ctx.post_send(ep.qp, swr);
      (void)co_await ctx.wait_completion(ep.rcq);
    } else {
      auto pong = ctx.next_rx_event(ep.qp);
      rnic::SendWr swr;
      swr.wr_id = 2000 + i;
      swr.opcode = rnic::WrOpcode::kRdmaWrite;
      swr.sge = {ep.buf, cfg.msg_size, ep.mr.lkey};
      swr.remote_addr = ep.peer.raddr;
      swr.rkey = ep.peer.rkey;
      swr.signaled = false;
      (void)ctx.post_send(ep.qp, swr);
      co_await pong;
    }
    // perftest reports one-way latency as RTT/2.
    shared->samples.add(sim::to_us(ctx.loop().now() - t0) / 2.0);
  }
}

}  // namespace

sim::Stats run_lat(fabric::Testbed& bed, LatConfig cfg) {
  LatShared shared;
  bed.loop().spawn(lat_server(bed, cfg));
  bed.loop().spawn(lat_client(bed, cfg, &shared));
  bed.loop().run();
  return shared.samples;
}

namespace {

struct BwShared {
  std::uint64_t payload_bytes = 0;
  sim::Time start = -1;
  sim::Time end = 0;
  int connections_ready = 0;
};

sim::Task<void> bw_server_one(fabric::Testbed& bed, std::size_t idx,
                              BwConfig cfg, std::uint16_t port) {
  verbs::Context& ctx = bed.ctx(idx);
  Endpoint ep = co_await setup_endpoint(
      ctx, {.buf_len = cfg.msg_size, .max_wr =
                static_cast<std::uint32_t>(cfg.window)});
  (void)co_await connect_server(ctx, ep, bed.instance_vip(idx - 1), port);
  if (cfg.op != Op::kSend) co_return;  // write needs no receiver action
  int posted = 0;
  int completed = 0;
  while (posted < cfg.iterations &&
         posted - completed < cfg.window) {
    rnic::RecvWr rwr{static_cast<std::uint64_t>(posted),
                     {ep.buf, cfg.msg_size, ep.mr.lkey}};
    (void)ctx.post_recv(ep.qp, rwr);
    ++posted;
  }
  while (completed < cfg.iterations) {
    (void)co_await ctx.wait_completion(ep.rcq);
    ++completed;
    if (posted < cfg.iterations) {
      rnic::RecvWr rwr{static_cast<std::uint64_t>(posted),
                       {ep.buf, cfg.msg_size, ep.mr.lkey}};
      (void)ctx.post_recv(ep.qp, rwr);
      ++posted;
    }
  }
}

sim::Task<void> bw_client_one(fabric::Testbed& bed, std::size_t idx,
                              BwConfig cfg, std::uint16_t port,
                              BwShared* shared) {
  verbs::Context& ctx = bed.ctx(idx);
  Endpoint ep = co_await setup_endpoint(
      ctx, {.buf_len = cfg.msg_size, .max_wr =
                static_cast<std::uint32_t>(cfg.window)});
  (void)co_await connect_client(ctx, ep, bed.instance_vip(idx + 1), port);
  if (shared->start < 0) shared->start = ctx.loop().now();
  int posted = 0;
  int completed = 0;
  auto post_one = [&] {
    rnic::SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(posted);
    wr.opcode = cfg.op == Op::kSend ? rnic::WrOpcode::kSend
                                    : rnic::WrOpcode::kRdmaWrite;
    wr.sge = {ep.buf, cfg.msg_size, ep.mr.lkey};
    wr.remote_addr = ep.peer.raddr;
    wr.rkey = ep.peer.rkey;
    (void)ctx.post_send(ep.qp, wr);
    ++posted;
  };
  while (posted < cfg.iterations && posted < cfg.window) post_one();
  while (completed < cfg.iterations) {
    (void)co_await ctx.wait_completion(ep.scq);
    ++completed;
    shared->payload_bytes += cfg.msg_size;
    if (posted < cfg.iterations) post_one();
  }
  shared->end = std::max(shared->end, ctx.loop().now());
}

// Multi-QP variant: all QPs between the same instance pair (Fig. 11).
sim::Task<void> bw_multi_qp(fabric::Testbed& bed, BwConfig cfg,
                            BwShared* shared) {
  for (int q = 0; q < cfg.num_qps; ++q) {
    const auto port = static_cast<std::uint16_t>(cfg.port + q);
    bed.loop().spawn(bw_server_one(bed, 1, cfg, port));
    bed.loop().spawn(bw_client_one(bed, 0, cfg, port, shared));
  }
  co_return;
}

}  // namespace

double run_bw(fabric::Testbed& bed, BwConfig cfg) {
  BwShared shared;
  bed.loop().spawn(bw_multi_qp(bed, cfg, &shared));
  bed.loop().run();
  if (shared.end <= shared.start) return 0.0;
  return static_cast<double>(shared.payload_bytes) * 8.0 /
         static_cast<double>(shared.end - shared.start);
}

double run_bw_pairs(fabric::Testbed& bed, int num_pairs, BwConfig cfg) {
  BwShared shared;
  for (int p = 0; p < num_pairs; ++p) {
    const auto port = static_cast<std::uint16_t>(cfg.port + p);
    BwConfig c = cfg;
    c.num_qps = 1;
    bed.loop().spawn(bw_server_one(bed, 2 * p + 1, c, port));
    bed.loop().spawn(bw_client_one(bed, 2 * p, c, port, &shared));
  }
  bed.loop().run();
  if (shared.end <= shared.start) return 0.0;
  return static_cast<double>(shared.payload_bytes) * 8.0 /
         static_cast<double>(shared.end - shared.start);
}

}  // namespace apps::perftest
