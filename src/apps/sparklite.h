// Spark-lite (§4.4.3, Fig. 22/23): a miniature DAG engine reproducing the
// OSU HiBD GroupBy / SortBy benchmarks on RDMA-Spark.
//
// A job is two stages executed sequentially by the scheduler:
//   FlatMap     — CPU-bound record generation, no network;
//   GroupByKey/ — shuffle: every reducer fetches its partition from every
//   SortBy        mapper node over RDMA, then reduces (SortBy pays an
//                 extra comparison-sort factor).
// Tasks are scheduled onto executor cores (4 per node, Table 3); stage
// time is the slowest core's finish time. Per-record CPU constants absorb
// Spark's serialization/GC overhead and are calibrated so Host-RDMA lands
// in the paper's 4-6 s job range; candidate differences then emerge from
// VM compute overhead (FlatMap) and network virtualization (shuffle) —
// exactly the Fig. 23 decomposition.
#pragma once

#include <cstdint>

#include "fabric/testbed.h"

namespace apps::spark {

enum class Workload { kGroupBy, kSortBy };

struct Config {
  int mappers = 8;
  int reducers = 8;
  int cores_per_node = 4;  // workers restricted to 4 cores (Table 3)
  std::uint64_t records = 131072;
  std::uint32_t key_bytes = 16;
  std::uint32_t value_bytes = 1024;
  // Per-record effective CPU including framework overhead; anchors the
  // host GroupBy job near the paper's ~4.3 s (Fig. 22).
  sim::Time map_cpu_per_record = sim::microseconds(170);
  sim::Time reduce_cpu_per_record = sim::microseconds(85);
  double sortby_factor = 1.3;  // SortBy's comparison sort vs hash grouping
  std::uint32_t shuffle_block_bytes = 64 * 1024;
  std::uint16_t base_port = 28000;
};

struct JobResult {
  double flatmap_s = 0;   // stage 1 completion (Fig. 23)
  double shuffle_s = 0;   // stage 2 completion (Fig. 23)
  double total_s = 0;     // job completion time (Fig. 22)
  std::uint64_t shuffled_bytes = 0;
};

JobResult run(fabric::Testbed& bed, Workload workload, Config cfg);

}  // namespace apps::spark
