// perftest clone: ib_send_lat / ib_write_lat / ib_send_bw / ib_write_bw
// plus the multi-QP aggregate used by Fig. 11. Drives any Testbed pair
// through the public Verbs API exactly like the Mellanox tools (§4.2.1).
#pragma once

#include <cstdint>

#include "fabric/testbed.h"
#include "sim/stats.h"

namespace apps::perftest {

enum class Op { kSend, kWrite };

struct LatConfig {
  Op op = Op::kSend;
  std::uint32_t msg_size = 2;
  int iterations = 1000;
  std::uint16_t port = 9000;
};

// Ping-pong between instances 0 (client) and 1 (server); reports one-way
// latency samples in microseconds (RTT/2, like perftest).
sim::Stats run_lat(fabric::Testbed& bed, LatConfig cfg);

struct BwConfig {
  Op op = Op::kWrite;
  std::uint32_t msg_size = 65536;
  int iterations = 512;
  int window = 128;      // outstanding WQEs (tx depth)
  int num_qps = 1;       // Fig. 11: concurrent QP connections
  std::uint16_t port = 9100;
};

// Unidirectional bandwidth from instance 0 to instance 1. Returns
// application goodput in Gbps (payload bytes over the transfer time).
double run_bw(fabric::Testbed& bed, BwConfig cfg);

// Fig. 19: one ib_write_bw flow per instance pair (2i -> 2i+1), all
// concurrent; returns aggregate goodput in Gbps.
double run_bw_pairs(fabric::Testbed& bed, int num_pairs, BwConfig cfg);

}  // namespace apps::perftest
