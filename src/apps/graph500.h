// Graph500 (§4.4.1, Fig. 20): Kronecker graph construction (kernel 1),
// level-synchronous distributed BFS (kernel 2) and single-source shortest
// paths (kernel 3) over mini-MPI, with result validation.
//
// The graph is real: edges are generated with the reference R-MAT
// parameters (A=.57 B=.19 C=.19 D=.05), BFS/SSSP run on actual adjacency
// lists, and the validator checks the parent/distance trees against the
// edge set. The paper runs scale=26 on two servers; we default to a scaled
// scale that keeps the simulation fast while preserving the communication
// pattern (16 ranks round-robin on 2 instances).
#pragma once

#include <cstdint>

#include "fabric/testbed.h"

namespace apps::graph500 {

struct Config {
  int scale = 14;        // 2^scale vertices (paper: 26)
  int edge_factor = 16;  // paper: 16
  int num_ranks = 16;    // paper: 16 MPI processes on 2 VMs
  // Ranks round-robin over the bed's first num_instances instances. The
  // paper's placement is 2 VMs; the fabric benches spread ranks over more
  // hosts so BFS/SSSP waves cross leaf and spine links (DESIGN.md §17).
  int num_instances = 2;
  int num_roots = 3;     // paper: 5 runs averaged
  std::uint64_t seed = 42;
  // Host-level CPU per scanned edge / settled vertex. Calibrated so the
  // harness lands in the paper's ~1e8 TEPS regime (Fig. 20).
  sim::Time per_edge_cpu = sim::nanoseconds(55);
  sim::Time per_vertex_cpu = sim::nanoseconds(40);
  std::uint16_t base_port = 25000;
};

struct KernelResult {
  double teps = 0;          // edge_factor * 2^scale / mean kernel time
  double mean_time_s = 0;   // simulated seconds per root
  std::uint64_t edges = 0;  // input edge count m
  bool validated = false;
};

struct Result {
  double construction_s = 0;  // kernel 1
  KernelResult bfs;
  KernelResult sssp;
};

Result run(fabric::Testbed& bed, Config cfg);

}  // namespace apps::graph500
