#include "apps/kvs.h"

#include <array>
#include <cstring>
#include <unordered_map>

#include "apps/minimpi.h"
#include "sim/join.h"
#include "sim/rng.h"
#include "sim/service_queue.h"

namespace apps::kvs {

namespace {

constexpr std::size_t kKeyBytes = 16;
constexpr std::size_t kValueBytes = 32;

enum class OpCode : std::uint8_t { kGet = 0, kPut = 1 };
enum class RespCode : std::uint8_t { kHit = 0, kMiss = 1, kOk = 2 };

struct Request {
  OpCode op;
  std::array<std::uint8_t, kKeyBytes> key;
  std::array<std::uint8_t, kValueBytes> value;  // PUT only
};

struct Reply {
  RespCode code;
  std::array<std::uint8_t, kValueBytes> value;  // GET hit only
};

std::array<std::uint8_t, kKeyBytes> make_key(std::uint64_t idx) {
  std::array<std::uint8_t, kKeyBytes> k{};
  std::memcpy(k.data(), &idx, 8);
  k[8] = 0x4b;  // 'K'
  return k;
}

std::array<std::uint8_t, kValueBytes> make_value(std::uint64_t idx,
                                                 std::uint64_t version) {
  std::array<std::uint8_t, kValueBytes> v{};
  std::memcpy(v.data(), &idx, 8);
  std::memcpy(v.data() + 8, &version, 8);
  return v;
}

struct KeyHash {
  std::size_t operator()(const std::array<std::uint8_t, kKeyBytes>& k) const {
    std::uint64_t a, b;
    std::memcpy(&a, k.data(), 8);
    std::memcpy(&b, k.data() + 8, 8);
    return a * 0x9e3779b97f4a7c15ull ^ b;
  }
};

struct Shared {
  // The store: real bytes, pre-populated like HERD.
  std::unordered_map<std::array<std::uint8_t, kKeyBytes>,
                     std::array<std::uint8_t, kValueBytes>, KeyHash>
      store;
  std::unordered_map<std::uint64_t, std::uint64_t> versions;  // oracle
  Result result;
  sim::Time measure_start = 0;
  sim::Time measure_end = 0;
  bool done = false;
};

// Server-side handler for one client connection: recv request, visit the
// worker pool, answer. Responses are spawned so the next request can be
// picked up immediately (workers pipeline).
sim::Task<void> server_conn(apps::mpi::Comm* comm, int client_rank,
                            Shared* shared, sim::ServiceQueue* workers,
                            sim::Time op_cpu) {
  struct Respond {
    static sim::Task<void> run(apps::mpi::Comm* comm, int client_rank,
                               Reply reply) {
      co_await comm->send(0, client_rank, overlay::pack(reply));
    }
  };
  while (!shared->done) {
    auto blob = co_await comm->recv(0, client_rank);
    if (shared->done) co_return;
    const Request req = overlay::unpack<Request>(blob);
    co_await workers->submit(op_cpu);
    Reply reply{};
    if (req.op == OpCode::kGet) {
      auto it = shared->store.find(req.key);
      if (it != shared->store.end()) {
        reply.code = RespCode::kHit;
        reply.value = it->second;
      } else {
        reply.code = RespCode::kMiss;
      }
    } else {
      shared->store[req.key] = req.value;
      reply.code = RespCode::kOk;
    }
    comm->ctx(0).loop().spawn(Respond::run(comm, client_rank, reply));
  }
}

// One pipelined request slot of one client thread.
sim::Task<void> client_slot(apps::mpi::Comm* comm, int rank, Shared* shared,
                            Config cfg, std::uint64_t slot_seed) {
  sim::Rng rng(slot_seed);
  sim::EventLoop& loop = comm->ctx(rank).loop();
  while (loop.now() < shared->measure_end) {
    const std::uint64_t idx = rng.next_below(cfg.num_keys);
    Request req{};
    req.key = make_key(idx);
    const bool is_get = rng.next_bool(cfg.get_fraction);
    std::uint64_t version = 0;
    if (is_get) {
      req.op = OpCode::kGet;
    } else {
      req.op = OpCode::kPut;
      version = ++shared->versions[idx];
      req.value = make_value(idx, version);
    }
    co_await comm->send(rank, 0, overlay::pack(req));
    auto blob = co_await comm->recv(rank, 0);
    const Reply reply = overlay::unpack<Reply>(blob);
    const sim::Time now = loop.now();
    if (now >= shared->measure_start && now < shared->measure_end) {
      ++shared->result.ops;
      if (is_get) {
        ++shared->result.gets;
        if (reply.code == RespCode::kHit) {
          ++shared->result.get_hits;
          // Integrity: the stored bytes must identify the right key.
          std::uint64_t got_idx;
          std::memcpy(&got_idx, reply.value.data(), 8);
          if (got_idx != idx) ++shared->result.value_mismatches;
        }
      } else {
        ++shared->result.puts;
      }
    }
  }
}

}  // namespace

Result run(fabric::Testbed& bed, Config cfg) {
  auto shared = std::make_unique<Shared>();
  // Pre-populate the store (server-local, before the clock matters).
  for (std::uint64_t i = 0; i < cfg.num_keys; ++i) {
    shared->store[make_key(i)] = make_value(i, 0);
  }

  struct Driver {
    static sim::Task<void> run(fabric::Testbed* bed, Config cfg,
                               Shared* shared) {
      // Rank 0 = server (instance 0); ranks 1..C = client threads, all on
      // instance 1 (a separate machine).
      std::vector<std::size_t> mapping{0};
      for (int c = 0; c < cfg.num_clients; ++c) mapping.push_back(1);
      auto comm = co_await apps::mpi::Comm::create(*bed, mapping,
                                                   cfg.base_port);
      sim::ServiceQueue workers(bed->loop());
      // num_workers parallel workers approximated as one server with
      // service time cpu/num_workers (same sustained rate).
      const sim::Time effective_cpu =
          bed->ctx(0).scale_compute(cfg.worker_cpu_per_op) /
          cfg.num_workers;
      for (int c = 1; c <= cfg.num_clients; ++c) {
        bed->loop().spawn(server_conn(comm.get(), c, shared, &workers,
                                      effective_cpu));
      }
      shared->measure_start = bed->loop().now() + cfg.warmup;
      shared->measure_end = shared->measure_start + cfg.measure;
      std::vector<sim::Task<void>> slots;
      for (int c = 1; c <= cfg.num_clients; ++c) {
        for (int p = 0; p < cfg.pipeline; ++p) {
          slots.push_back(client_slot(comm.get(), c, shared, cfg,
                                      cfg.seed * 7919 + c * 131 + p));
        }
      }
      co_await sim::join_all(bed->loop(), std::move(slots));
      shared->done = true;
      // Unblock server handlers waiting in recv() with empty shutdown
      // messages.
      for (int c = 1; c <= cfg.num_clients; ++c) {
        co_await comm->send(c, 0, std::vector<std::uint8_t>{});
      }
    }
  };
  bed.loop().spawn(Driver::run(&bed, cfg, shared.get()));
  bed.loop().run();
  shared->result.mops = static_cast<double>(shared->result.ops) /
                        sim::to_us(cfg.measure);
  return shared->result;
}

}  // namespace apps::kvs
