#include "apps/sparklite.h"

#include <functional>

#include "apps/minimpi.h"
#include "sim/join.h"

namespace apps::spark {

namespace {

constexpr int kNumNodes = 2;

using WorkItem = std::function<sim::Task<void>()>;

// Executes per-core work queues: each core runs its items sequentially,
// cores run concurrently, and the stage ends when the slowest core ends.
sim::Task<void> run_stage(fabric::Testbed& bed,
                          std::vector<std::vector<WorkItem>> core_queues) {
  struct Core {
    static sim::Task<void> run(std::vector<WorkItem> items) {
      for (auto& item : items) co_await item();
    }
  };
  std::vector<sim::Task<void>> cores;
  for (auto& q : core_queues) {
    if (!q.empty()) cores.push_back(Core::run(std::move(q)));
  }
  co_await sim::join_all(bed.loop(), std::move(cores));
}

// Distributes `num_tasks` over nodes round-robin, then over that node's
// cores. Returns queues indexed by global core id.
std::vector<std::vector<WorkItem>> schedule(
    int num_tasks, int cores_per_node,
    const std::function<WorkItem(int task)>& make) {
  std::vector<std::vector<WorkItem>> queues(
      static_cast<std::size_t>(kNumNodes * cores_per_node));
  for (int t = 0; t < num_tasks; ++t) {
    const int node = t % kNumNodes;
    const int core = (t / kNumNodes) % cores_per_node;
    queues[static_cast<std::size_t>(node * cores_per_node + core)]
        .push_back(make(t));
  }
  return queues;
}

}  // namespace

JobResult run(fabric::Testbed& bed, Workload workload, Config cfg) {
  JobResult result;
  struct Driver {
    static sim::Task<void> go(fabric::Testbed* bed, Workload workload,
                              Config cfg, JobResult* result) {
      // One executor per node; the shuffle plane is an RC connection pair.
      std::vector<std::size_t> executor_nodes{0, 1};
      auto comm = co_await apps::mpi::Comm::create(*bed, executor_nodes,
                                                   cfg.base_port);

      const std::uint64_t records_per_map =
          cfg.records / static_cast<std::uint64_t>(cfg.mappers);
      const std::uint64_t records_per_reduce =
          cfg.records / static_cast<std::uint64_t>(cfg.reducers);
      const std::uint64_t record_bytes = cfg.key_bytes + cfg.value_bytes;

      // ---- Stage 1: FlatMap (CPU only; Fig. 23 left) ----
      struct MapTask {
        static sim::Task<void> run(apps::mpi::Comm* comm, int node,
                                   sim::Time cpu) {
          co_await comm->ctx(node).compute(cpu);
        }
      };
      const sim::Time stage1_start = bed->loop().now();
      auto map_queues = schedule(
          cfg.mappers, cfg.cores_per_node, [&](int task) -> WorkItem {
            const int node = task % kNumNodes;
            const sim::Time cpu = cfg.map_cpu_per_record *
                                  static_cast<sim::Time>(records_per_map);
            return [comm = comm.get(), node, cpu] {
              return MapTask::run(comm, node, cpu);
            };
          });
      co_await run_stage(*bed, std::move(map_queues));
      result->flatmap_s = sim::to_s(bed->loop().now() - stage1_start);

      // ---- Stage 2: shuffle + GroupByKey/SortBy (Fig. 23 right) ----
      const sim::Time stage2_start = bed->loop().now();
      const double sort_factor =
          workload == Workload::kSortBy ? cfg.sortby_factor : 1.0;
      // Partition each mapper's output evenly across reducers.
      const std::uint64_t partition_bytes =
          records_per_map / static_cast<std::uint64_t>(cfg.reducers) *
          record_bytes;
      struct ReduceTask {
        // Fetch this reducer's partition from every mapper (remote
        // partitions cross the wire in shuffle blocks), then reduce.
        static sim::Task<void> run(apps::mpi::Comm* comm, int node,
                                   int mappers, std::uint64_t partition_bytes,
                                   std::uint32_t block_bytes, sim::Time cpu,
                                   std::uint64_t* shuffled) {
          for (int m = 0; m < mappers; ++m) {
            const int mapper_node = m % kNumNodes;
            if (mapper_node == node) continue;  // node-local partition
            std::uint64_t remaining = partition_bytes;
            while (remaining > 0) {
              const std::uint64_t n =
                  std::min<std::uint64_t>(remaining, block_bytes);
              std::vector<std::uint8_t> block(n, 0xd1);
              co_await comm->transfer(mapper_node, node, std::move(block));
              *shuffled += n;
              remaining -= n;
            }
          }
          co_await comm->ctx(node).compute(cpu);
        }
      };
      auto* shuffled = &result->shuffled_bytes;
      // Cores the virtualization layer burns during the network-heavy
      // stage (FreeFlow's FFR) shrink the executor's effective
      // parallelism; tasks slow down proportionally (Fig. 23's stage-2
      // convergence of FreeFlow and MasQ).
      const double eff_cores =
          cfg.cores_per_node - comm->ctx(0).virtualization_cpu_cores();
      const double contention =
          static_cast<double>(cfg.cores_per_node) / eff_cores;
      auto reduce_queues = schedule(
          cfg.reducers, cfg.cores_per_node, [&](int task) -> WorkItem {
            const int node = task % kNumNodes;
            const auto cpu = static_cast<sim::Time>(
                static_cast<double>(cfg.reduce_cpu_per_record) *
                static_cast<double>(records_per_reduce) * sort_factor *
                contention);
            return [comm = comm.get(), node, mappers = cfg.mappers,
                    partition_bytes, block_bytes = cfg.shuffle_block_bytes,
                    cpu, shuffled] {
              return ReduceTask::run(comm, node, mappers, partition_bytes,
                                     block_bytes, cpu, shuffled);
            };
          });
      co_await run_stage(*bed, std::move(reduce_queues));
      result->shuffle_s = sim::to_s(bed->loop().now() - stage2_start);
      result->total_s = result->flatmap_s + result->shuffle_s;
    }
  };
  bed.loop().spawn(Driver::go(&bed, workload, cfg, &result));
  bed.loop().run();
  return result;
}

}  // namespace apps::spark
