// The (unmodified) kernel RDMA driver of the HyV/MasQ architecture
// (Fig. 16a, "RDMA Driver" layer).
//
// Every candidate eventually funnels control verbs through one of these:
// Host-RDMA calls it on the host, SR-IOV runs one inside the guest against
// the passed-through VF, and MasQ's backend calls it on the host after
// RConnrename/RConntrack have had their say.
//
// Each operation suspends the caller for its calibrated cost (DriverCosts,
// VF-scaled), performs memory pinning/translation where the real driver
// would, and then does the device bookkeeping.
#pragma once

#include <string>

#include "mem/address_space.h"
#include "rnic/device.h"
#include "verbs/api.h"
#include "verbs/driver_costs.h"
#include "sim/flat_map.h"

namespace verbs {

class KernelDriver {
 public:
  // `fn` fixes which device function this driver instance drives (a PF for
  // the host, a specific VF for SR-IOV guests / MasQ tenants).
  KernelDriver(sim::EventLoop& loop, rnic::RnicDevice& device, rnic::FnId fn,
               DriverCosts costs = {});

  rnic::RnicDevice& device() { return device_; }
  rnic::FnId fn() const { return fn_; }
  const DriverCosts& costs() const { return costs_; }

  // Attaches an accounting sink: all charged time lands in
  // (profile, layer). May be null.
  void set_profile(LayerProfile* profile, Layer layer = Layer::kRdmaDriver) {
    profile_ = profile;
    layer_ = layer;
  }

  sim::Task<rnic::Expected<rnic::PdId>> alloc_pd();
  // Pins [addr, addr+len) down the whole chain of `space`, resolves the
  // MTT and registers it with the device (Appendix B.2).
  sim::Task<rnic::Expected<MrHandle>> reg_mr(rnic::PdId pd,
                                             mem::AddressSpace& space,
                                             mem::Addr addr, std::uint64_t len,
                                             std::uint32_t access);
  sim::Task<rnic::Expected<rnic::Cqn>> create_cq(int cqe);
  sim::Task<rnic::Expected<rnic::Qpn>> create_qp(rnic::QpInitAttr attr);
  sim::Task<rnic::Status> modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                                    std::uint32_t mask);
  sim::Task<rnic::Expected<net::Gid>> query_gid();
  // Live-migration restore: pins the snapshot's VA range down `space` (the
  // *destination* VM's chain), resolves a fresh MTT and re-creates the MR
  // on this driver's function under its original keys. Synchronous — the
  // migration atomic section cannot suspend; its time is charged in bulk
  // as migration downtime.
  [[nodiscard]] rnic::Status adopt_mr(const rnic::RnicDevice::MrSnapshot& snap,
                                      mem::AddressSpace& space);
  // Live-migration extract: the device half of the MR has already been
  // pulled off (extract_mr); drop this driver's pin on the *source*
  // translation chain so the source VM can be torn down. The destination
  // driver re-pins in adopt_mr. Synchronous, no verb cost.
  void forget_mr(rnic::Key lkey);

  sim::Task<rnic::Status> destroy_qp(rnic::Qpn qpn);
  sim::Task<rnic::Status> destroy_cq(rnic::Cqn cq);
  sim::Task<rnic::Status> dereg_mr(rnic::Key lkey);
  sim::Task<rnic::Status> dealloc_pd(rnic::PdId pd);

 private:
  // Charges `t` (VF-scaled) to the caller and the profile.
  sim::Task<void> charge(const char* verb, sim::Time t);

  struct MrRecord {
    mem::AddressSpace* space;
    mem::Addr addr;
    std::uint64_t len;
  };

  sim::EventLoop& loop_;
  rnic::RnicDevice& device_;
  rnic::FnId fn_;
  DriverCosts costs_;
  LayerProfile* profile_ = nullptr;
  Layer layer_ = Layer::kRdmaDriver;
  sim::FlatMap<rnic::Key, MrRecord> mrs_;  // for unpinning on dereg
};

}  // namespace verbs
