// Control-path cost model of the kernel RDMA driver + RNIC processing.
//
// Each field is the kernel+device share of the corresponding verb's total
// call time in Table 1 ("Host-RDMA" column). The user-space library share
// (~10%, Fig. 16b shows lib+driver dominating) is charged separately by
// each candidate's Context so that the Fig. 16 layer breakdown falls out
// of the accounting.
#pragma once

#include "sim/time.h"

namespace verbs {

// Fraction of each Table-1 verb time spent in the user-space library.
inline constexpr double kLibFraction = 0.10;

struct DriverCosts {
  // Derived as Table-1 host value x (1 - kLibFraction), in microseconds.
  sim::Time get_device_list = sim::microseconds(396 * 0.9);
  sim::Time open_device = sim::microseconds(1115 * 0.9);
  sim::Time alloc_pd = sim::microseconds(3 * 0.9);
  // reg_mr: Table 1 measured 78 us for a 1 KB (single page) region; the
  // per-page term covers pinning + MTT writes for larger regions.
  sim::Time reg_mr_base = sim::microseconds(68);
  sim::Time reg_mr_per_page = sim::microseconds(2.2);
  // create_cq: measured 266 us at cqe=200.
  sim::Time create_cq_base = sim::microseconds(140);
  sim::Time create_cq_per_cqe = sim::nanoseconds(500);
  sim::Time create_qp = sim::microseconds(76 * 0.9);
  sim::Time query_gid = sim::microseconds(22 * 0.9);
  sim::Time modify_init = sim::microseconds(231 * 0.9);
  sim::Time modify_rtr = sim::microseconds(62 * 0.9);
  sim::Time modify_rts = sim::microseconds(73 * 0.9);
  // Kernel-routine share of forcing a QP to ERROR (Fig. 18: total reset
  // cost = this + RnicDevice::qp_error_processing_time()).
  sim::Time modify_error_kernel = sim::microseconds(103);
  sim::Time destroy_qp = sim::microseconds(170 * 0.9);
  sim::Time destroy_cq = sim::microseconds(79 * 0.9);
  sim::Time dereg_mr = sim::microseconds(35 * 0.9);
  sim::Time dealloc_pd = sim::microseconds(2 * 0.9);
  sim::Time close_device = sim::microseconds(16 * 0.9);

  // VF control verbs take longer on the RNIC (more complex resource
  // management). Anchor: Fig. 15a — connection setup 0.8 ms on the PF vs
  // 1.9 ms through a VF for the same verb sequence.
  double vf_factor = 2.5;
};

}  // namespace verbs
