#include "verbs/api.h"

namespace verbs {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kVerbsLib: return "Verbs Lib";
    case Layer::kVirtio: return "virtio";
    case Layer::kMasqDriver: return "MasQ Driver";
    case Layer::kRdmaDriver: return "RDMA Driver";
  }
  return "?";
}

void LayerProfile::add(const std::string& verb, Layer layer, sim::Time t) {
  data_[verb][static_cast<int>(layer)] += t;
}

sim::Time LayerProfile::total(const std::string& verb) const {
  auto it = data_.find(verb);
  if (it == data_.end()) return 0;
  sim::Time sum = 0;
  for (auto t : it->second) sum += t;
  return sum;
}

sim::Time LayerProfile::by_layer(const std::string& verb, Layer layer) const {
  auto it = data_.find(verb);
  if (it == data_.end()) return 0;
  return it->second[static_cast<int>(layer)];
}

sim::Time LayerProfile::grand_total() const {
  sim::Time sum = 0;
  for (const auto& [verb, layers] : data_) {
    for (auto t : layers) sum += t;
  }
  return sum;
}

std::vector<std::string> LayerProfile::verbs() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [verb, layers] : data_) out.push_back(verb);
  return out;
}

namespace {

// Default ControlBatch: replays the queued entries one by one through the
// plain virtual verbs at commit() time. Semantics intentionally mirror the
// backend's batch drain (masq/backend.cc): in order, error-independent,
// broken slot dependencies fail with kInvalidArgument without executing.
class SequentialBatch final : public ControlBatch {
 public:
  explicit SequentialBatch(Context& ctx) : ctx_(ctx) {}

  int reg_mr(rnic::PdId pd, mem::Addr addr, std::uint64_t len,
             std::uint32_t access) override {
    Op op;
    op.kind = Op::kRegMr;
    op.pd = pd;
    op.addr = addr;
    op.len = len;
    op.access = access;
    return push(op);
  }

  int create_cq(int cqe) override {
    Op op;
    op.kind = Op::kCreateCq;
    op.cqe = cqe;
    return push(op);
  }

  int create_qp(const rnic::QpInitAttr& attr, int send_cq_slot,
                int recv_cq_slot) override {
    Op op;
    op.kind = Op::kCreateQp;
    op.init = attr;
    op.send_cq_slot = send_cq_slot;
    op.recv_cq_slot = recv_cq_slot;
    return push(op);
  }

  int modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                std::uint32_t mask) override {
    Op op;
    op.kind = Op::kModifyQp;
    op.qpn = qpn;
    op.attr = attr;
    op.mask = mask;
    return push(op);
  }

  int modify_qp_slot(int qp_slot, const rnic::QpAttr& attr,
                     std::uint32_t mask) override {
    Op op;
    op.kind = Op::kModifyQp;
    op.qp_slot = qp_slot;
    op.attr = attr;
    op.mask = mask;
    return push(op);
  }

  sim::Task<rnic::Status> commit() override {
    rnic::Status first = rnic::Status::kOk;
    for (std::size_t i = committed_; i < ops_.size(); ++i) {
      results_[i].status = co_await run_one(i);
      if (first == rnic::Status::kOk &&
          results_[i].status != rnic::Status::kOk) {
        first = results_[i].status;
      }
    }
    committed_ = ops_.size();
    co_return first;
  }

  rnic::Status status(int slot) const override {
    return results_.at(slot).status;
  }
  std::uint64_t value(int slot) const override {
    return results_.at(slot).value;
  }
  MrHandle mr(int slot) const override { return results_.at(slot).mr; }
  int size() const override { return static_cast<int>(ops_.size()); }

 private:
  struct Op {
    enum Kind { kRegMr, kCreateCq, kCreateQp, kModifyQp } kind = kRegMr;
    rnic::PdId pd = 0;
    mem::Addr addr = 0;
    std::uint64_t len = 0;
    std::uint32_t access = 0;
    int cqe = 0;
    rnic::QpInitAttr init;
    int send_cq_slot = -1;
    int recv_cq_slot = -1;
    rnic::Qpn qpn = 0;
    int qp_slot = -1;
    rnic::QpAttr attr;
    std::uint32_t mask = 0;
  };
  struct Result {
    rnic::Status status = rnic::Status::kOk;
    std::uint64_t value = 0;
    MrHandle mr;
  };

  int push(const Op& op) {
    ops_.push_back(op);
    results_.emplace_back();
    return static_cast<int>(ops_.size()) - 1;
  }

  // Reads an earlier slot's value; fails if the slot is invalid (forward /
  // out of range) or its entry failed.
  rnic::Status fetch(int slot, std::size_t self, std::uint64_t* out) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= self) {
      return rnic::Status::kInvalidArgument;
    }
    if (results_[slot].status != rnic::Status::kOk) {
      return rnic::Status::kInvalidArgument;
    }
    *out = results_[slot].value;
    return rnic::Status::kOk;
  }

  sim::Task<rnic::Status> run_one(std::size_t self) {
    Op& op = ops_[self];
    Result& res = results_[self];
    switch (op.kind) {
      case Op::kRegMr: {
        auto r = co_await ctx_.reg_mr(op.pd, op.addr, op.len, op.access);
        if (r.ok()) res.mr = r.value;
        co_return r.status;
      }
      case Op::kCreateCq: {
        auto r = co_await ctx_.create_cq(op.cqe);
        if (r.ok()) res.value = r.value;
        co_return r.status;
      }
      case Op::kCreateQp: {
        std::uint64_t v = 0;
        if (op.send_cq_slot >= 0) {
          if (auto st = fetch(op.send_cq_slot, self, &v);
              st != rnic::Status::kOk) {
            co_return st;
          }
          op.init.send_cq = static_cast<rnic::Cqn>(v);
        }
        if (op.recv_cq_slot >= 0) {
          if (auto st = fetch(op.recv_cq_slot, self, &v);
              st != rnic::Status::kOk) {
            co_return st;
          }
          op.init.recv_cq = static_cast<rnic::Cqn>(v);
        }
        auto r = co_await ctx_.create_qp(op.init);
        if (r.ok()) res.value = r.value;
        co_return r.status;
      }
      case Op::kModifyQp: {
        rnic::Qpn qpn = op.qpn;
        if (op.qp_slot >= 0) {
          std::uint64_t v = 0;
          if (auto st = fetch(op.qp_slot, self, &v);
              st != rnic::Status::kOk) {
            co_return st;
          }
          qpn = static_cast<rnic::Qpn>(v);
        }
        const rnic::Status st = co_await ctx_.modify_qp(qpn, op.attr, op.mask);
        // Mirror MasqBatch: failed entries carry no result value.
        if (st == rnic::Status::kOk) res.value = qpn;
        co_return st;
      }
    }
    co_return rnic::Status::kInvalidArgument;
  }

  Context& ctx_;
  std::vector<Op> ops_;
  std::vector<Result> results_;
  std::size_t committed_ = 0;
};

}  // namespace

std::unique_ptr<ControlBatch> Context::make_batch() {
  return std::make_unique<SequentialBatch>(*this);
}

// Warm-path defaults: a context without a pool always answers cold, and
// release/discard/invalidate are no-ops on endpoints it never handed out —
// callers fall through to the ordinary ladder on every candidate.
sim::Task<WarmEndpoint> Context::acquire_warm(const net::Gid& peer_gid) {
  (void)peer_gid;
  co_return WarmEndpoint{};
}

sim::Task<void> Context::release_warm(const WarmEndpoint& ep,
                                      const net::Gid& peer_gid,
                                      rnic::Qpn peer_qpn) {
  (void)ep;
  (void)peer_gid;
  (void)peer_qpn;
  co_return;
}

sim::Task<void> Context::discard_warm(const WarmEndpoint& ep) {
  (void)ep;
  co_return;
}

void Context::invalidate_warm(const net::Gid& peer_gid) { (void)peer_gid; }

sim::Task<rnic::Completion> Context::wait_completion(rnic::Cqn cq) {
  while (true) {
    rnic::Completion c;
    if (poll_cq(cq, 1, &c) == 1) co_return c;
    co_await cq_nonempty(cq);
  }
}

sim::Task<std::vector<rnic::Completion>> Context::wait_completions(
    rnic::Cqn cq, int n) {
  std::vector<rnic::Completion> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    rnic::Completion c = co_await wait_completion(cq);
    out.push_back(c);
  }
  co_return out;
}

sim::Task<void> Context::compute(sim::Time host_time) {
  co_await sim::delay(loop(), scale_compute(host_time));
}

}  // namespace verbs
