#include "verbs/api.h"

namespace verbs {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kVerbsLib: return "Verbs Lib";
    case Layer::kVirtio: return "virtio";
    case Layer::kMasqDriver: return "MasQ Driver";
    case Layer::kRdmaDriver: return "RDMA Driver";
  }
  return "?";
}

void LayerProfile::add(const std::string& verb, Layer layer, sim::Time t) {
  data_[verb][static_cast<int>(layer)] += t;
}

sim::Time LayerProfile::total(const std::string& verb) const {
  auto it = data_.find(verb);
  if (it == data_.end()) return 0;
  sim::Time sum = 0;
  for (auto t : it->second) sum += t;
  return sum;
}

sim::Time LayerProfile::by_layer(const std::string& verb, Layer layer) const {
  auto it = data_.find(verb);
  if (it == data_.end()) return 0;
  return it->second[static_cast<int>(layer)];
}

sim::Time LayerProfile::grand_total() const {
  sim::Time sum = 0;
  for (const auto& [verb, layers] : data_) {
    for (auto t : layers) sum += t;
  }
  return sum;
}

std::vector<std::string> LayerProfile::verbs() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [verb, layers] : data_) out.push_back(verb);
  return out;
}

sim::Task<rnic::Completion> Context::wait_completion(rnic::Cqn cq) {
  while (true) {
    rnic::Completion c;
    if (poll_cq(cq, 1, &c) == 1) co_return c;
    co_await cq_nonempty(cq);
  }
}

sim::Task<std::vector<rnic::Completion>> Context::wait_completions(
    rnic::Cqn cq, int n) {
  std::vector<rnic::Completion> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    rnic::Completion c = co_await wait_completion(cq);
    out.push_back(c);
  }
  co_return out;
}

sim::Task<void> Context::compute(sim::Time host_time) {
  co_await sim::delay(loop(), scale_compute(host_time));
}

}  // namespace verbs
