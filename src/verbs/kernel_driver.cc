#include "verbs/kernel_driver.h"

namespace verbs {

KernelDriver::KernelDriver(sim::EventLoop& loop, rnic::RnicDevice& device,
                           rnic::FnId fn, DriverCosts costs)
    : loop_(loop), device_(device), fn_(fn), costs_(costs) {}

sim::Task<void> KernelDriver::charge(const char* verb, sim::Time t) {
  if (device_.fn(fn_).is_vf) {
    t = static_cast<sim::Time>(static_cast<double>(t) * costs_.vf_factor);
  }
  if (profile_ != nullptr) profile_->add(verb, layer_, t);
  co_await sim::delay(loop_, t);
}

sim::Task<rnic::Expected<rnic::PdId>> KernelDriver::alloc_pd() {
  co_await charge("alloc_pd", costs_.alloc_pd);
  co_return device_.alloc_pd(fn_);
}

sim::Task<rnic::Expected<MrHandle>> KernelDriver::reg_mr(
    rnic::PdId pd, mem::AddressSpace& space, mem::Addr addr, std::uint64_t len,
    std::uint32_t access) {
  const std::uint64_t pages =
      (mem::page_ceil(addr + len) - mem::page_floor(addr)) / mem::kPageSize;
  co_await charge("reg_mr",
                  costs_.reg_mr_base +
                      costs_.reg_mr_per_page * static_cast<sim::Time>(pages));
  std::vector<mem::Segment> mtt;
  try {
    // Pin at every translation level, then walk the chain for the MTT.
    space.pin_chain(addr, len);
    mtt = space.resolve_hpa_range(addr, len);
  } catch (const std::exception&) {
    co_return rnic::Expected<MrHandle>::error(rnic::Status::kInvalidArgument);
  }
  auto mr = device_.create_mr(fn_, pd, addr, len, access, std::move(mtt));
  if (!mr.ok()) {
    space.unpin_chain(addr, len);
    co_return rnic::Expected<MrHandle>::error(mr.status);
  }
  mrs_[mr.value.lkey] = MrRecord{&space, addr, len};
  co_return rnic::Expected<MrHandle>::of(
      MrHandle{mr.value.lkey, mr.value.rkey, addr, len});
}

rnic::Status KernelDriver::adopt_mr(const rnic::RnicDevice::MrSnapshot& snap,
                                    mem::AddressSpace& space) {
  std::vector<mem::Segment> mtt;
  try {
    space.pin_chain(snap.va, snap.len);
    mtt = space.resolve_hpa_range(snap.va, snap.len);
  } catch (const std::exception&) {
    return rnic::Status::kInvalidArgument;
  }
  // The MR is re-homed on this driver's function: the destination VF need
  // not have the same id the source VF had.
  rnic::RnicDevice::MrSnapshot homed = snap;
  homed.fn = fn_;
  const rnic::Status st = device_.restore_mr(homed, std::move(mtt));
  if (st != rnic::Status::kOk) {
    space.unpin_chain(snap.va, snap.len);
    return st;
  }
  mrs_[snap.lkey] = MrRecord{&space, snap.va, snap.len};
  return rnic::Status::kOk;
}

sim::Task<rnic::Expected<rnic::Cqn>> KernelDriver::create_cq(int cqe) {
  co_await charge("create_cq",
                  costs_.create_cq_base +
                      costs_.create_cq_per_cqe * static_cast<sim::Time>(cqe));
  co_return device_.create_cq(fn_, cqe);
}

sim::Task<rnic::Expected<rnic::Qpn>> KernelDriver::create_qp(
    rnic::QpInitAttr attr) {
  co_await charge("create_qp", costs_.create_qp);
  co_return device_.create_qp(fn_, attr);
}

sim::Task<rnic::Status> KernelDriver::modify_qp(rnic::Qpn qpn,
                                                const rnic::QpAttr& attr,
                                                std::uint32_t mask) {
  sim::Time cost = 0;
  const char* verb = "modify_qp";
  if (mask & rnic::kAttrState) {
    switch (attr.state) {
      case rnic::QpState::kInit:
        verb = "modify_qp(INIT)";
        cost = costs_.modify_init;
        break;
      case rnic::QpState::kRtr:
        verb = "modify_qp(RTR)";
        cost = costs_.modify_rtr;
        break;
      case rnic::QpState::kRts:
        verb = "modify_qp(RTS)";
        cost = costs_.modify_rts;
        break;
      case rnic::QpState::kError:
        // Fig. 18: kernel routine + RNIC processing (drain-dependent).
        verb = "modify_qp(ERROR)";
        cost = costs_.modify_error_kernel +
               device_.qp_error_processing_time(qpn);
        break;
      default:
        verb = "modify_qp(other)";
        cost = costs_.modify_rtr;
        break;
    }
  }
  // The ERROR path's device share is already absolute (not VF-scaled by
  // charge(), which would double-count): charge it directly.
  if ((mask & rnic::kAttrState) && attr.state == rnic::QpState::kError) {
    if (profile_ != nullptr) profile_->add(verb, layer_, cost);
    co_await sim::delay(loop_, cost);
  } else {
    co_await charge(verb, cost);
  }
  co_return device_.modify_qp(qpn, attr, mask);
}

sim::Task<rnic::Expected<net::Gid>> KernelDriver::query_gid() {
  co_await charge("query_gid", costs_.query_gid);
  co_return rnic::Expected<net::Gid>::of(device_.gid(fn_));
}

sim::Task<rnic::Status> KernelDriver::destroy_qp(rnic::Qpn qpn) {
  co_await charge("destroy_qp", costs_.destroy_qp);
  co_return device_.destroy_qp(qpn);
}

sim::Task<rnic::Status> KernelDriver::destroy_cq(rnic::Cqn cq) {
  co_await charge("destroy_cq", costs_.destroy_cq);
  co_return device_.destroy_cq(cq);
}

void KernelDriver::forget_mr(rnic::Key lkey) {
  auto it = mrs_.find(lkey);
  if (it == mrs_.end()) return;
  it->second.space->unpin_chain(it->second.addr, it->second.len);
  mrs_.erase(it);
}

sim::Task<rnic::Status> KernelDriver::dereg_mr(rnic::Key lkey) {
  co_await charge("dereg_mr", costs_.dereg_mr);
  auto it = mrs_.find(lkey);
  if (it == mrs_.end()) co_return rnic::Status::kNotFound;
  const rnic::Status st = device_.destroy_mr(lkey);
  if (st == rnic::Status::kOk) {
    it->second.space->unpin_chain(it->second.addr, it->second.len);
    mrs_.erase(it);
  }
  co_return st;
}

sim::Task<rnic::Status> KernelDriver::dealloc_pd(rnic::PdId pd) {
  co_await charge("dealloc_pd", costs_.dealloc_pd);
  co_return device_.dealloc_pd(pd);
}

}  // namespace verbs
