// Public Verbs API — the interface every application and benchmark in this
// repository programs against, modeled on libibverbs (Fig. 1).
//
// One Context == one opened device from one instance's point of view. The
// four virtualization candidates (Host-RDMA, SR-IOV, FreeFlow, MasQ)
// implement this same interface, so applications run unmodified on all of
// them — exactly how the paper evaluates (§4.1, Fig. 7).
//
// Control-path verbs are coroutines: they suspend the caller for their
// calibrated call time (Table 1). Data-path verbs are plain synchronous
// calls: post_send/post_recv enqueue WQEs and ring the doorbell; poll_cq
// never blocks. Coroutine applications use wait_completion() to sleep on a
// CQ instead of burning simulated time in a poll loop.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mem/physical_memory.h"
#include "net/addr.h"
#include "overlay/oob.h"
#include "rnic/types.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace verbs {

// Software layers a verb's cost can be attributed to (Fig. 16).
enum class Layer : std::uint8_t {
  kVerbsLib = 0,   // user-space library
  kVirtio = 1,     // virtqueue kick/interrupt transit
  kMasqDriver = 2, // MasQ frontend + backend processing
  kRdmaDriver = 3, // kernel RDMA driver + RNIC processing
};
inline constexpr int kNumLayers = 4;

const char* to_string(Layer layer);

// Per-verb, per-layer time accounting — the ftrace instrumentation of
// §4.2.3 / Fig. 16b.
class LayerProfile {
 public:
  void add(const std::string& verb, Layer layer, sim::Time t);
  sim::Time total(const std::string& verb) const;
  sim::Time by_layer(const std::string& verb, Layer layer) const;
  sim::Time grand_total() const;
  std::vector<std::string> verbs() const;
  void clear() { data_.clear(); }

 private:
  std::map<std::string, std::array<sim::Time, kNumLayers>> data_;
};

struct MrHandle {
  rnic::Key lkey = 0;
  rnic::Key rkey = 0;
  mem::Addr addr = 0;
  std::uint64_t length = 0;
};

// What peers exchange over the OOB (TCP) channel before modify_qp(RTR):
// QP number, GID and, for one-sided ops, an MR descriptor.
struct ConnInfo {
  rnic::Qpn qpn = 0;
  net::Gid gid;
  std::uint64_t raddr = 0;
  rnic::Key rkey = 0;
};

enum class DataVerb : std::uint8_t { kPostSend, kPostRecv, kPollCq };

// ---------------------------------------------------------------------------
// Warm-path connection setup (Swift-style; DESIGN.md §14).
//
// A WarmEndpoint is a pre-staged connection skeleton handed out by the
// context's warm pool:
//   * kPooled — PD + CQs + an INIT-state QP plus a pre-registered slab MR,
//     created by a background refill task, so connect only pays RTR→RTS;
//   * kReused — a parked RTS QP to a returning peer (`peer_qpn` records
//     whom it is wired to), so connect skips the ladder entirely once the
//     peer confirms its half is still parked too;
//   * kCold — the pool had nothing (disabled, drained, or degraded): the
//     caller falls back to the ordinary cold-path ladder.
// ---------------------------------------------------------------------------
enum class WarmKind : std::uint8_t { kCold, kPooled, kReused };

struct WarmEndpoint {
  WarmKind kind = WarmKind::kCold;
  rnic::PdId pd = 0;
  rnic::Cqn send_cq = 0;
  rnic::Cqn recv_cq = 0;
  rnic::Qpn qpn = 0;
  rnic::Qpn peer_qpn = 0;  // kReused: the remembered remote QPN
  MrHandle mr;             // pre-staged slab registration (pool-owned)

  bool warm() const { return kind != WarmKind::kCold; }
};

// ---------------------------------------------------------------------------
// Pipelined control-path submission.
//
// A ControlBatch queues control verbs (begin_batch), lets later entries
// reference earlier entries' results by slot (submit), and executes the
// whole sequence as one unit (sync/commit). Implementations that own a
// paravirtual command channel (MasQ) ship the entire batch in a single
// virtqueue transit — one kick, one interrupt — so a dependent chain like
// reg_mr -> create_cq -> create_qp -> modify_qp pays one ~20 us round trip
// instead of four. The default implementation executes the entries
// sequentially through the plain virtual verbs, so applications written
// against ControlBatch run unmodified on every candidate.
//
// Semantics (identical for batched and sequential execution):
//   * entries run in submission order;
//   * every entry runs even if an earlier one failed ("error
//     independence") — except entries whose declared slot dependency
//     failed, which fail with kInvalidArgument without executing;
//   * commit() returns the first per-entry error (kOk if none) and
//     per-slot results stay queryable afterwards.
// ---------------------------------------------------------------------------
class ControlBatch {
 public:
  virtual ~ControlBatch() = default;

  // Queue verbs; each returns the entry's slot index.
  virtual int reg_mr(rnic::PdId pd, mem::Addr addr, std::uint64_t len,
                     std::uint32_t access) = 0;
  virtual int create_cq(int cqe) = 0;
  // send_cq_slot / recv_cq_slot >= 0 link the QP's CQs to the result of an
  // earlier create_cq entry; pass -1 to use the values in `attr`.
  virtual int create_qp(const rnic::QpInitAttr& attr, int send_cq_slot = -1,
                        int recv_cq_slot = -1) = 0;
  virtual int modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                        std::uint32_t mask) = 0;
  // Like modify_qp, but the QPN comes from an earlier create_qp entry.
  virtual int modify_qp_slot(int qp_slot, const rnic::QpAttr& attr,
                             std::uint32_t mask) = 0;

  // Executes everything queued so far and waits for all results.
  virtual sim::Task<rnic::Status> commit() = 0;

  // Post-commit, per-slot results.
  [[nodiscard]] virtual rnic::Status status(int slot) const = 0;
  virtual std::uint64_t value(int slot) const = 0;  // cqn / qpn
  virtual MrHandle mr(int slot) const = 0;          // reg_mr slots only
  virtual int size() const = 0;
};

class Context {
 public:
  virtual ~Context() = default;

  virtual std::string name() const = 0;
  virtual sim::EventLoop& loop() = 0;

  // --- application memory ------------------------------------------------
  // Buffers live in the *instance's* address space (guest VA in a VM, host
  // VA on bare metal / containers).
  virtual mem::Addr alloc_buffer(std::uint64_t len) = 0;
  virtual void write_buffer(mem::Addr addr,
                            std::span<const std::uint8_t> in) = 0;
  virtual void read_buffer(mem::Addr addr, std::span<std::uint8_t> out) = 0;

  // --- control path (Fig. 1, red verbs) -----------------------------------
  virtual sim::Task<rnic::Expected<rnic::PdId>> alloc_pd() = 0;
  virtual sim::Task<rnic::Expected<MrHandle>> reg_mr(rnic::PdId pd,
                                                     mem::Addr addr,
                                                     std::uint64_t len,
                                                     std::uint32_t access) = 0;
  virtual sim::Task<rnic::Expected<rnic::Cqn>> create_cq(int cqe) = 0;
  // attr.pd / attr.send_cq / attr.recv_cq must be filled in by the caller.
  virtual sim::Task<rnic::Expected<rnic::Qpn>> create_qp(
      const rnic::QpInitAttr& attr) = 0;
  virtual sim::Task<rnic::Status> modify_qp(rnic::Qpn qpn,
                                            const rnic::QpAttr& attr,
                                            std::uint32_t mask) = 0;
  // GID index 0 of the instance's (virtual) RoCE device. Under MasQ this
  // is the vBond-maintained virtual GID; applications never see physical
  // addresses.
  virtual sim::Task<rnic::Expected<net::Gid>> query_gid() = 0;
  // ibv_query_qp: the QP context as visible to *this* application. Under
  // MasQ/FreeFlow this preserves the tenant's virtual addressing even
  // though the hardware QPC holds renamed physical addresses (§3.3.1).
  virtual sim::Task<rnic::Expected<rnic::QpAttr>> query_qp(rnic::Qpn qpn) = 0;
  virtual sim::Task<rnic::Status> destroy_qp(rnic::Qpn qpn) = 0;
  virtual sim::Task<rnic::Status> destroy_cq(rnic::Cqn cq) = 0;
  virtual sim::Task<rnic::Status> dereg_mr(const MrHandle& mr) = 0;
  virtual sim::Task<rnic::Status> dealloc_pd(rnic::PdId pd) = 0;

  // --- data path (Fig. 1, second phase) -----------------------------------
  [[nodiscard]] virtual rnic::Status post_send(rnic::Qpn qpn,
                                               const rnic::SendWr& wr) = 0;
  [[nodiscard]] virtual rnic::Status post_recv(rnic::Qpn qpn,
                                               const rnic::RecvWr& wr) = 0;
  virtual int poll_cq(rnic::Cqn cq, int max_entries,
                      rnic::Completion* out) = 0;
  virtual sim::Future<bool> cq_nonempty(rnic::Cqn cq) = 0;
  // Resolves when the next inbound message lands on `qpn` — the
  // application-visible effect of spin-reading a buffer that a peer
  // RDMA-writes into (ib_write_lat's detection loop).
  virtual sim::Future<bool> next_rx_event(rnic::Qpn qpn) = 0;

  // Advertised per-call CPU cost of each data-path verb (Fig. 8b).
  virtual sim::Time data_verb_call_time(DataVerb v) const = 0;

  // --- pipelined control path ---------------------------------------------
  // Begin a control-verb batch (see ControlBatch above). The default
  // executes sequentially at commit(); MasQ overrides it to coalesce the
  // batch into one virtqueue round trip.
  virtual std::unique_ptr<ControlBatch> make_batch();

  // --- warm-path connection setup (see WarmEndpoint above) -----------------
  // Acquire a pre-staged endpoint for a connection toward `peer_gid`. The
  // default (and any context without a warm pool) returns a kCold endpoint,
  // which callers treat as "run the ordinary ladder". Never fails: pool
  // exhaustion and pool faults degrade to kCold.
  virtual sim::Task<WarmEndpoint> acquire_warm(const net::Gid& peer_gid);
  // Park a still-RTS endpoint for reuse by a returning connection to
  // (peer_gid, peer_qpn) — lazy teardown: the pool reclaims it after an
  // idle timeout instead of destroying it inline.
  virtual sim::Task<void> release_warm(const WarmEndpoint& ep,
                                       const net::Gid& peer_gid,
                                       rnic::Qpn peer_qpn);
  // Tear the endpoint down now (reuse negotiation failed, QP errored, or
  // the pool is full). Safe on kCold endpoints (no-op).
  virtual sim::Task<void> discard_warm(const WarmEndpoint& ep);
  // Drop any parked connection toward `peer_gid` (peer rebooted / IP
  // changed); the parked resources are torn down in the background.
  virtual void invalidate_warm(const net::Gid& peer_gid);

  // --- environment ---------------------------------------------------------
  // The instance's out-of-band channel (virtual TCP) for exchanging
  // connection information.
  virtual overlay::OobEndpoint& oob() = 0;

  // Scales CPU-bound work by the instance's virtualization overhead
  // (VM > container == host); used by the application layer.
  virtual sim::Time scale_compute(sim::Time host_time) const = 0;

  // CPU cores the virtualization layer itself burns while the instance
  // drives network traffic (FreeFlow's FFR polls a core; MasQ/SR-IOV use
  // none — §4.4.3). Applications with tight core budgets subtract this.
  virtual double virtualization_cpu_cores() const { return 0.0; }

  // --- helpers (implemented on top of the virtuals) ------------------------
  // Suspends until a CQE is available, then returns it.
  sim::Task<rnic::Completion> wait_completion(rnic::Cqn cq);
  // Collects exactly n completions.
  sim::Task<std::vector<rnic::Completion>> wait_completions(rnic::Cqn cq,
                                                            int n);
  // Burns `host_time` of (scaled) CPU.
  sim::Task<void> compute(sim::Time host_time);

  LayerProfile& profile() { return profile_; }

 protected:
  LayerProfile profile_;
};

}  // namespace verbs
