#include "masq/backend.h"

namespace masq {

Backend::Backend(sim::EventLoop& loop, rnic::RnicDevice& device,
                 sdn::Controller& controller, overlay::VirtualNetwork& vnet,
                 BackendConfig config)
    : loop_(loop),
      device_(device),
      controller_(controller),
      vnet_(vnet),
      config_(std::move(config)),
      agent_(loop, controller,
             sdn::HostAgentConfig{
                 .cache_hit_cost = config_.mapping_cache_hit,
                 .negative_ttl = sim::milliseconds(1),
                 .cache_staleness_bound = config_.cache_staleness_bound,
                 .batch_window = config_.resolve_batch_window,
             }),
      conntrack_(loop, vnet, config_.conntrack_costs) {
  // §3.3.1: "the controller can be configured to push down the mappings in
  // advance" — keep the host-local cache coherent with every (re)binding,
  // which also makes live migration transparent to later connections.
  // (Invalidations need no wiring here: the cache subscribes to the
  // controller's invalidate channel itself.)
  push_sub_ = controller_.subscribe(
      [this](std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
        agent_.cache().insert(vni, vgid, pgid);
      });
  if (config_.faults != nullptr) {
    agent_.cache().set_fault_probe(
        [f = config_.faults](std::uint64_t key_hash) {
          return f->expire_cache_entry(key_hash);
        });
  }
  // Table 2: a QP entering ERROR carries no connection any more. Purge its
  // RConntrack entries whatever forced the transition — a rule-update
  // teardown, a data-path fault, or an injected error — deferring the
  // table work off the device's flush path. The deferred callback may
  // outlive this backend in the loop's queue, so it only holds a weak
  // liveness reference.
  qp_error_sub_ = device_.on_qp_error(
      [this, alive = std::weak_ptr<const char>(liveness_)](rnic::Qpn qpn) {
        // pending_qp_purges_ lets the invariant auditor distinguish "entry
        // for an ERROR'd QP because the deferred purge has not run yet"
        // (legal) from a genuinely leaked row.
        ++pending_qp_purges_;
        loop_.schedule_after(0, [this, alive, qpn] {
          if (alive.expired()) return;
          if (conntrack_.has_qp(qpn)) {
            loop_.spawn(purge_and_settle(qpn, alive));
          } else {
            --pending_qp_purges_;
          }
        });
      });
}

sim::Task<void> Backend::purge_and_settle(
    rnic::Qpn qpn, std::weak_ptr<const char> alive) {
  co_await conntrack_.purge_qp(qpn);
  if (!alive.expired()) --pending_qp_purges_;
}

Backend::~Backend() {
  // Run before member destruction: ~Session → ~VBond → unregister_vgid
  // broadcasts invalidations, and sibling backends already destroyed must
  // not be reachable through the controller's subscriber lists (and this
  // backend must drop out before its own agent_ dies). Likewise the device
  // must not call a hook into a dead backend, and loop callbacks already
  // queued by the hook must see the liveness flag down.
  liveness_.reset();
  device_.remove_qp_error_hook(qp_error_sub_);
  controller_.unsubscribe(push_sub_);
}

rnic::FnId Backend::tenant_fn(std::uint32_t vni) {
  if (config_.map_tenants_to_pf) return rnic::kPf;
  auto it = tenant_fn_.find(vni);
  if (it != tenant_fn_.end()) return it->second;
  // Default QoS grouping policy (§3.3.3): group QPs by tenant, then map
  // each group to one VF-backed rate limiter. When tenants outnumber VFs,
  // groups share limiters round-robin.
  const int num_vfs = device_.num_functions() - 1;
  if (num_vfs == 0) return rnic::kPf;
  const rnic::FnId fn = next_vf_;
  next_vf_ = static_cast<rnic::FnId>(next_vf_ % num_vfs + 1);
  tenant_fn_[vni] = fn;
  return fn;
}

void Backend::set_tenant_rate_limit(std::uint32_t vni, double gbps) {
  const rnic::FnId fn = tenant_fn(vni);
  if (fn == rnic::kPf) {
    throw std::logic_error(
        "QoS requires VF-backed tenants (backend is in PF mode)");
  }
  device_.set_vf_rate_limit(fn, gbps);
}

Backend::Session& Backend::register_vm(hyp::Vm& vm) {
  const rnic::FnId fn = tenant_fn(vm.config().vni);
  sessions_.push_back(std::make_unique<Session>(*this, vm, fn));
  return *sessions_.back();
}

void Backend::remove_session(Session& session) {
  std::erase_if(sessions_, [&session](const std::unique_ptr<Session>& s) {
    return s.get() == &session;
  });
}

void Backend::Session::adopt_qp(rnic::Qpn qpn,
                                const rnic::QpAttr* tenant_attr) {
  owned_qps_.insert(qpn);
  ++live_qps_;
  if (tenant_attr != nullptr) tenant_view_[qpn] = *tenant_attr;
}

void Backend::Session::adopt_cq(rnic::Cqn cq) {
  owned_cqs_.insert(cq);
  ++live_cqs_;
}

void Backend::Session::adopt_mr(rnic::Key lkey) {
  owned_mrs_.insert(lkey);
  ++live_mrs_;
}

void Backend::Session::adopt_pd(rnic::PdId pd) { owned_pds_.insert(pd); }

Backend::Session::Session(Backend& backend, hyp::Vm& vm, rnic::FnId fn)
    : backend_(backend),
      vm_(vm),
      fn_(fn),
      driver_(backend.loop(), backend.device(), fn,
              backend.config().driver_costs),
      vbond_(backend.controller(), vm.config().vni, vm.config().mac,
             backend.device().gid(rnic::kPf)) {
  // vBond initialization: the vEth already carries a valid IP, so bind
  // immediately and publish the (VNI, vGID) -> pGID mapping.
  vbond_.bind(vm.config().vip);
  backend_.conntrack().watch_tenant(vm.config().vni);
}

void Backend::Session::set_profile(verbs::LayerProfile* profile) {
  profile_ = profile;
  driver_.set_profile(profile, verbs::Layer::kRdmaDriver);
}

namespace {

// Resolves in-batch result links against the sub-responses produced so
// far. Returns kOk, or the error the dependent entry must fail with: a
// link that points outside [0, done) — i.e. forward or out of range — is
// kInvalidArgument; a link at an entry that itself failed *propagates that
// entry's status*, so the frontend can tell a dependent of a transient
// failure (kUnavailable — retry the chain) from a dependent of a
// permanent one.
rnic::Status resolve_links(const BatchLink& link,
                           const std::vector<Response>& done,
                           BatchableCommand* cmd) {
  auto fetch = [&done](int slot, std::uint64_t* out) -> rnic::Status {
    if (slot < 0 || slot >= static_cast<int>(done.size())) {
      return rnic::Status::kInvalidArgument;
    }
    if (done[slot].status != rnic::Status::kOk) {
      return done[slot].status;  // dependency failed: inherit its error
    }
    *out = done[slot].v0;
    return rnic::Status::kOk;
  };
  rnic::Status st = rnic::Status::kOk;
  std::uint64_t v = 0;
  if (auto* c = std::get_if<CmdCreateQp>(cmd)) {
    if (link.send_cq_from >= 0) {
      if ((st = fetch(link.send_cq_from, &v)) != rnic::Status::kOk) return st;
      c->attr.send_cq = static_cast<rnic::Cqn>(v);
    }
    if (link.recv_cq_from >= 0) {
      if ((st = fetch(link.recv_cq_from, &v)) != rnic::Status::kOk) return st;
      c->attr.recv_cq = static_cast<rnic::Cqn>(v);
    }
  }
  if (link.qpn_from >= 0) {
    if ((st = fetch(link.qpn_from, &v)) != rnic::Status::kOk) return st;
    const auto qpn = static_cast<rnic::Qpn>(v);
    if (auto* c = std::get_if<CmdModifyQp>(cmd)) c->qpn = qpn;
    else if (auto* c = std::get_if<CmdQueryQp>(cmd)) c->qpn = qpn;
    else if (auto* c = std::get_if<CmdDestroyQp>(cmd)) c->qpn = qpn;
    else return rnic::Status::kInvalidArgument;  // link on a non-QP command
  }
  return rnic::Status::kOk;
}

}  // namespace

sim::Task<Response> Backend::Session::handle(Envelope env) {
  sim::FaultPlane* faults = backend_.faults();
  if (env.cmd_id == 0) {
    if (faults != nullptr && faults->fail_command(0)) {
      co_return Response{rnic::Status::kUnavailable, 0, 0};
    }
    co_return co_await handle(std::move(env.cmd));
  }
  if (auto it = completed_cmds_.find(env.cmd_id);
      it != completed_cmds_.end()) {
    ++dedup_hits_;
    co_return it->second;
  }
  if (auto it = inflight_cmds_.find(env.cmd_id); it != inflight_cmds_.end()) {
    // A retry raced the original execution: ride its future rather than
    // executing the command a second time.
    ++dedup_hits_;
    auto future = it->second;  // copy: the leader erases the map entry
    co_return co_await future;
  }
  sim::Promise<Response> leader(backend_.loop());
  inflight_cmds_.emplace(env.cmd_id, leader.get_future());
  Response r;
  if (faults != nullptr && faults->fail_command(env.cmd_id)) {
    r = Response{rnic::Status::kUnavailable, 0, 0};
  } else {
    try {
      r = co_await handle(std::move(env.cmd));
    } catch (...) {
      inflight_cmds_.erase(env.cmd_id);
      leader.set_exception(std::current_exception());
      throw;
    }
  }
  inflight_cmds_.erase(env.cmd_id);
  if (!rnic::is_retryable(r.status)) {
    // Memoize only terminal outcomes. The frontend retries a retryable
    // response under the SAME cmd_id (id reuse keeps timeout retries
    // idempotent), so a memoized kUnavailable would replay as a dedup hit
    // on every backoff attempt and the command could never re-execute
    // after the controller recovers. Transient failures — injected or
    // real — therefore must not enter the window.
    completed_cmds_.emplace(env.cmd_id, r);
    completed_order_.push_back(env.cmd_id);
    if (completed_order_.size() > kDedupWindow) {
      completed_cmds_.erase(completed_order_.front());
      completed_order_.pop_front();
    }
  }
  leader.set_value(r);
  co_return r;
}

sim::Task<Response> Backend::Session::handle(Command cmd) {
  if (auto* b = std::get_if<CmdBatch>(&cmd)) {
    co_return co_await handle_batch(std::move(*b));
  }
  BatchableCommand one = std::visit(
      [](auto&& c) -> BatchableCommand {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, CmdBatch>) {
          throw std::logic_error("unreachable: batch handled above");
        } else {
          return BatchableCommand{std::forward<decltype(c)>(c)};
        }
      },
      std::move(cmd));
  co_return co_await handle_one(std::move(one));
}

sim::Task<Response> Backend::Session::handle_batch(CmdBatch batch) {
  Response out;
  out.status = rnic::Status::kOk;
  out.batch.reserve(batch.cmds.size());
  for (std::size_t i = 0; i < batch.cmds.size(); ++i) {
    BatchableCommand cmd = std::move(batch.cmds[i]);
    rnic::Status link_st = rnic::Status::kOk;
    if (i < batch.links.size() && batch.links[i].any()) {
      link_st = resolve_links(batch.links[i], out.batch, &cmd);
    }
    Response r;
    if (link_st != rnic::Status::kOk) {
      r.status = link_st;  // broken dependency: fail just this entry
    } else if (backend_.faults() != nullptr &&
               backend_.faults()->fail_command(i)) {
      // Injected per-entry transient failure: this entry reports
      // kUnavailable (retryable); its batchmates still run.
      r.status = rnic::Status::kUnavailable;
    } else {
      // Error independence: an exception from one entry becomes that
      // entry's error response; the rest of the batch still runs.
      try {
        r = co_await handle_one(std::move(cmd));
      } catch (...) {
        r = Response{rnic::Status::kInvalidArgument, 0, 0};
      }
    }
    if (out.status == rnic::Status::kOk && r.status != rnic::Status::kOk) {
      out.status = r.status;  // batch status = first per-entry error
    }
    out.batch.push_back(std::move(r));
  }
  co_return out;
}

sim::Task<Response> Backend::Session::handle_one(BatchableCommand cmd) {
  // MasQ driver processing (frontend marshalling + backend dispatch).
  if (profile_ != nullptr) {
    const char* verb = std::visit(
        [](const auto& c) -> const char* {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, CmdRegMr>) return "reg_mr";
          else if constexpr (std::is_same_v<T, CmdCreateCq>) return "create_cq";
          else if constexpr (std::is_same_v<T, CmdCreateQp>) return "create_qp";
          else if constexpr (std::is_same_v<T, CmdModifyQp>) {
            if ((c.mask & rnic::kAttrState) != 0) {
              switch (c.attr.state) {
                case rnic::QpState::kInit: return "modify_qp(INIT)";
                case rnic::QpState::kRtr: return "modify_qp(RTR)";
                case rnic::QpState::kRts: return "modify_qp(RTS)";
                case rnic::QpState::kError: return "modify_qp(ERROR)";
                default: return "modify_qp";
              }
            }
            return "modify_qp";
          }
          else if constexpr (std::is_same_v<T, CmdQueryQp>) return "query_qp";
          else if constexpr (std::is_same_v<T, CmdDestroyQp>) return "destroy_qp";
          else if constexpr (std::is_same_v<T, CmdDestroyCq>) return "destroy_cq";
          else if constexpr (std::is_same_v<T, CmdDeregMr>) return "dereg_mr";
          else return "ud_send";
        },
        cmd);
    profile_->add(verb, verbs::Layer::kMasqDriver,
                  backend_.config().command_overhead);
  }
  co_await sim::delay(backend_.loop(), backend_.config().command_overhead);

  if (auto* c = std::get_if<CmdRegMr>(&cmd)) co_return co_await on_reg_mr(*c);
  if (auto* c = std::get_if<CmdCreateCq>(&cmd)) {
    co_return co_await on_create_cq(*c);
  }
  if (auto* c = std::get_if<CmdCreateQp>(&cmd)) {
    co_return co_await on_create_qp(*c);
  }
  if (auto* c = std::get_if<CmdModifyQp>(&cmd)) {
    co_return co_await on_modify_qp(*c);
  }
  if (auto* c = std::get_if<CmdQueryQp>(&cmd)) {
    co_return co_await on_query_qp(*c);
  }
  if (auto* c = std::get_if<CmdDestroyQp>(&cmd)) {
    co_return co_await on_destroy_qp(*c);
  }
  if (auto* c = std::get_if<CmdDestroyCq>(&cmd)) {
    co_return co_await on_destroy_cq(*c);
  }
  if (auto* c = std::get_if<CmdDeregMr>(&cmd)) {
    co_return co_await on_dereg_mr(*c);
  }
  if (auto* c = std::get_if<CmdUdSend>(&cmd)) {
    co_return co_await on_ud_send(*c);
  }
  co_return Response{rnic::Status::kInvalidArgument, 0, 0};
}

sim::Task<Response> Backend::Session::alloc_pd_local() {
  auto pd = co_await driver_.alloc_pd();
  if (pd.status == rnic::Status::kOk) owned_pds_.insert(pd.value);
  co_return Response{pd.status, pd.value, 0};
}

sim::Task<Response> Backend::Session::dealloc_pd_local(rnic::PdId pd) {
  const rnic::Status st = co_await driver_.dealloc_pd(pd);
  if (st == rnic::Status::kOk) owned_pds_.erase(pd);
  co_return Response{st, 0, 0};
}

sim::Task<Response> Backend::Session::on_reg_mr(const CmdRegMr& cmd) {
  // The frontend shipped the (GVA, GPA) mapping; pinning the host levels
  // and building the MTT happens in the kernel driver (Appendix B.2).
  auto mr = co_await driver_.reg_mr(cmd.pd, vm_.gva(), cmd.gva, cmd.len,
                                    cmd.access);
  if (mr.status == rnic::Status::kOk) {
    ++live_mrs_;
    owned_mrs_.insert(mr.value.lkey);
  }
  co_return Response{mr.status, mr.value.lkey, mr.value.rkey};
}

sim::Task<Response> Backend::Session::on_create_cq(const CmdCreateCq& cmd) {
  auto cq = co_await driver_.create_cq(cmd.cqe);
  if (cq.status == rnic::Status::kOk) {
    ++live_cqs_;
    owned_cqs_.insert(cq.value);
  }
  co_return Response{cq.status, cq.value, 0};
}

sim::Task<Response> Backend::Session::on_create_qp(const CmdCreateQp& cmd) {
  auto qp = co_await driver_.create_qp(cmd.attr);
  if (qp.status == rnic::Status::kOk) {
    ++live_qps_;
    ++qps_created_;
    owned_qps_.insert(qp.value);
  }
  co_return Response{qp.status, qp.value, 0};
}

sim::Task<Response> Backend::Session::on_modify_qp(const CmdModifyQp& cmd) {
  rnic::QpAttr attr = cmd.attr;
  const bool to_rtr = (cmd.mask & rnic::kAttrState) != 0 &&
                      attr.state == rnic::QpState::kRtr;
  const bool has_dest = (cmd.mask & rnic::kAttrDestGid) != 0 &&
                        !attr.dest_gid.is_zero();
  if (to_rtr && has_dest) {
    const auto dst_vip = attr.dest_gid.to_ipv4();
    if (!dst_vip) co_return Response{rnic::Status::kInvalidArgument, 0, 0};

    // RConntrack: an RDMA connection cannot be established unless the
    // security rules explicitly allow it (Fig. 6 step (1)).
    const bool allowed = co_await backend_.conntrack().validate(
        vni(), vm_.config().vip, *dst_vip);
    if (!allowed) co_return Response{rnic::Status::kPermissionDenied, 0, 0};

    // RConnrename: replace the peer's virtual GID with the physical GID
    // (Fig. 4 step (4)). The application keeps seeing the virtual view;
    // only the hardware QPC gets the physical address. An unreachable
    // controller with no fresh-enough cached mapping is kUnavailable
    // (retryable), distinct from an authoritative kNotFound.
    std::optional<net::Gid> pgid;
    if (backend_.config().disable_mapping_cache) {
      auto reply =
          co_await backend_.controller().query_ex(vni(), attr.dest_gid);
      if (reply.unreachable) {
        co_return Response{rnic::Status::kUnavailable, 0, 0};
      }
      pgid = reply.pgid;
    } else {
      auto res = co_await backend_.mapping_cache().resolve_ex(
          vni(), attr.dest_gid);
      if (res.status == sdn::MappingCache::ResolveStatus::kUnavailable) {
        co_return Response{rnic::Status::kUnavailable, 0, 0};
      }
      pgid = res.pgid;
    }
    if (!pgid) co_return Response{rnic::Status::kNotFound, 0, 0};
    attr.dest_gid = *pgid;

    const rnic::Status st =
        co_await driver_.modify_qp(cmd.qpn, attr, cmd.mask);
    if (st == rnic::Status::kOk) {
      co_await backend_.conntrack().track(RConntrack::Entry{
          vni(), vm_.config().vip, *dst_vip, cmd.qpn, &driver_});
      // The QP may have been forced into ERROR (data-path fault, injected
      // error, rule teardown) while track() was charging its insert cost —
      // in that case the purge hook already ran against an empty table, so
      // re-check and drop the entry we just installed (Table 2: a dead QP
      // carries no connection).
      if (backend_.device().qp_state(cmd.qpn) == rnic::QpState::kError) {
        co_await backend_.conntrack().purge_qp(cmd.qpn);
      }
      // The tenant keeps seeing the QPC it configured (virtual GID); only
      // the hardware view was renamed.
      tenant_view_[cmd.qpn] = cmd.attr;
    }
    // v0 echoes the QPN so later batch entries can link off this slot.
    co_return Response{st, cmd.qpn, 0};
  }
  const rnic::Status st = co_await driver_.modify_qp(cmd.qpn, attr, cmd.mask);
  if (st == rnic::Status::kOk) {
    rnic::QpAttr& view = tenant_view_[cmd.qpn];
    if (cmd.mask & rnic::kAttrState) view.state = cmd.attr.state;
    if (cmd.mask & rnic::kAttrDestGid) view.dest_gid = cmd.attr.dest_gid;
    if (cmd.mask & rnic::kAttrDestQpn) view.dest_qpn = cmd.attr.dest_qpn;
    if (cmd.mask & rnic::kAttrPathMtu) view.path_mtu = cmd.attr.path_mtu;
    if (cmd.mask & rnic::kAttrQkey) view.qkey = cmd.attr.qkey;
  }
  co_return Response{st, cmd.qpn, 0};
}

sim::Task<Response> Backend::Session::on_query_qp(const CmdQueryQp& cmd) {
  // The device validates existence and supplies hardware-owned fields
  // (current state); the addressing fields come from the tenant view.
  if (!backend_.device().qp_exists(cmd.qpn)) {
    co_return Response{rnic::Status::kNotFound, 0, 0};
  }
  Response r;
  auto it = tenant_view_.find(cmd.qpn);
  r.attr = it != tenant_view_.end() ? it->second : rnic::QpAttr{};
  r.attr.state = backend_.device().qp_state(cmd.qpn);
  co_return r;
}

sim::Task<Response> Backend::Session::on_destroy_qp(const CmdDestroyQp& cmd) {
  tenant_view_.erase(cmd.qpn);
  co_await backend_.conntrack().untrack(cmd.qpn, vni());
  const rnic::Status st = co_await driver_.destroy_qp(cmd.qpn);
  if (st == rnic::Status::kOk && live_qps_ > 0) {
    --live_qps_;
    ++qps_destroyed_;
    owned_qps_.erase(cmd.qpn);
  }
  co_return Response{st, 0, 0};
}

sim::Task<Response> Backend::Session::on_destroy_cq(const CmdDestroyCq& cmd) {
  const rnic::Status st = co_await driver_.destroy_cq(cmd.cq);
  if (st == rnic::Status::kOk && live_cqs_ > 0) {
    --live_cqs_;
    owned_cqs_.erase(cmd.cq);
  }
  co_return Response{st, 0, 0};
}

sim::Task<Response> Backend::Session::on_dereg_mr(const CmdDeregMr& cmd) {
  const rnic::Status st = co_await driver_.dereg_mr(cmd.lkey);
  if (st == rnic::Status::kOk && live_mrs_ > 0) {
    --live_mrs_;
    owned_mrs_.erase(cmd.lkey);
  }
  co_return Response{st, 0, 0};
}

sim::Task<Response> Backend::Session::on_ud_send(const CmdUdSend& cmd) {
  // §3.3.4: the datagram WQE carries its own destination; rename it like a
  // connection destination, then hand the WQE to the device.
  rnic::SendWr wr = cmd.wr;
  auto res = co_await backend_.mapping_cache().resolve_ex(vni(), wr.ud.gid);
  if (res.status == sdn::MappingCache::ResolveStatus::kUnavailable) {
    co_return Response{rnic::Status::kUnavailable, 0, 0};
  }
  if (!res.pgid) co_return Response{rnic::Status::kNotFound, 0, 0};
  wr.ud.gid = *res.pgid;
  co_return Response{backend_.device().post_send(cmd.qpn, wr), 0, 0};
}

}  // namespace masq
