#include "masq/frontend.h"

namespace masq {

namespace {
// User-space library share of each verb (see verbs::kLibFraction): the
// kernel+device costs in DriverCosts are 90% of the Table-1 totals, so the
// lib share equals driver_cost / 9.
sim::Time lib_share(sim::Time driver_cost) { return driver_cost / 9; }

constexpr sim::Time kPostSendCpu = sim::nanoseconds(200);  // Table 1 row 11
constexpr sim::Time kPostRecvCpu = sim::nanoseconds(200);
constexpr sim::Time kPollCqCpu = sim::nanoseconds(30);     // Table 1 row 12
}  // namespace

MasqContext::MasqContext(Backend::Session& session, overlay::OobEndpoint& oob,
                         virtio::ChannelCosts virtio_costs)
    : session_(session), oob_(oob), vq_(session.backend().loop(),
                                        virtio_costs) {
  session_.set_profile(&profile_);
  vq_.set_backend(
      [this](Command cmd) -> sim::Task<Response> {
        return session_.handle(std::move(cmd));
      });
  // Appendix B.1: map the device's doorbell BAR into the application's
  // address space so data-path doorbells bypass the hypervisor.
  doorbell_gva_ = session_.vm().map_mmio_into_guest(
      session_.backend().device().doorbell_bar(), 64 * 1024 * 8);
}

sim::Task<void> MasqContext::lib_charge(const char* verb, sim::Time t) {
  profile_.add(verb, verbs::Layer::kVerbsLib, t);
  co_await sim::delay(loop(), t);
}

sim::Task<Response> MasqContext::call(const char* verb, sim::Time lib_time,
                                      Command cmd) {
  co_await lib_charge(verb, lib_time);
  profile_.add(verb, verbs::Layer::kVirtio, vq_.costs().round_trip());
  co_return co_await vq_.call(std::move(cmd));
}

sim::Task<rnic::Expected<rnic::PdId>> MasqContext::alloc_pd() {
  // Table 1: not forwarded to the RNIC — handled without a virtqueue trip.
  const auto& costs = session_.backend().config().driver_costs;
  co_await lib_charge("alloc_pd", lib_share(costs.alloc_pd));
  Response r = co_await session_.alloc_pd_local();
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::PdId>::error(r.status);
  }
  co_return rnic::Expected<rnic::PdId>::of(
      static_cast<rnic::PdId>(r.v0));
}

sim::Task<rnic::Expected<verbs::MrHandle>> MasqContext::reg_mr(
    rnic::PdId pd, mem::Addr addr, std::uint64_t len, std::uint32_t access) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("reg_mr", lib_share(costs.reg_mr_base),
                             CmdRegMr{pd, addr, len, access});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<verbs::MrHandle>::error(r.status);
  }
  co_return rnic::Expected<verbs::MrHandle>::of(
      verbs::MrHandle{static_cast<rnic::Key>(r.v0),
                      static_cast<rnic::Key>(r.v1), addr, len});
}

sim::Task<rnic::Expected<rnic::Cqn>> MasqContext::create_cq(int cqe) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("create_cq", lib_share(costs.create_cq_base),
                             CmdCreateCq{cqe});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::Cqn>::error(r.status);
  }
  co_return rnic::Expected<rnic::Cqn>::of(static_cast<rnic::Cqn>(r.v0));
}

sim::Task<rnic::Expected<rnic::Qpn>> MasqContext::create_qp(
    const rnic::QpInitAttr& attr) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("create_qp", lib_share(costs.create_qp),
                             CmdCreateQp{attr});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::Qpn>::error(r.status);
  }
  const auto qpn = static_cast<rnic::Qpn>(r.v0);
  qp_types_[qpn] = attr.type;
  co_return rnic::Expected<rnic::Qpn>::of(qpn);
}

sim::Task<rnic::Status> MasqContext::modify_qp(rnic::Qpn qpn,
                                               const rnic::QpAttr& attr,
                                               std::uint32_t mask) {
  const auto& costs = session_.backend().config().driver_costs;
  sim::Time lib = lib_share(costs.modify_rtr);
  const char* verb = "modify_qp";
  if (mask & rnic::kAttrState) {
    switch (attr.state) {
      case rnic::QpState::kInit:
        lib = lib_share(costs.modify_init);
        verb = "modify_qp(INIT)";
        break;
      case rnic::QpState::kRtr:
        verb = "modify_qp(RTR)";
        break;
      case rnic::QpState::kRts:
        lib = lib_share(costs.modify_rts);
        verb = "modify_qp(RTS)";
        break;
      case rnic::QpState::kError:
        verb = "modify_qp(ERROR)";
        break;
      default:
        break;
    }
  }
  Response r = co_await call(verb, lib, CmdModifyQp{qpn, attr, mask});
  co_return r.status;
}

sim::Task<rnic::Expected<net::Gid>> MasqContext::query_gid() {
  // vBond answers locally from the frontend (§3.3.1): the virtual GID is
  // kept in sync with the vEth IP, no device round trip needed.
  co_await lib_charge("query_gid", sim::microseconds(2));
  profile_.add("query_gid", verbs::Layer::kMasqDriver, sim::microseconds(2));
  co_await sim::delay(loop(), sim::microseconds(2));
  co_return rnic::Expected<net::Gid>::of(session_.vbond().vgid());
}

sim::Task<rnic::Expected<rnic::QpAttr>> MasqContext::query_qp(
    rnic::Qpn qpn) {
  co_await lib_charge("query_qp", sim::microseconds(2));
  profile_.add("query_qp", verbs::Layer::kVirtio, vq_.costs().round_trip());
  Response r = co_await vq_.call(CmdQueryQp{qpn});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::QpAttr>::error(r.status);
  }
  co_return rnic::Expected<rnic::QpAttr>::of(r.attr);
}

sim::Task<rnic::Status> MasqContext::destroy_qp(rnic::Qpn qpn) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("destroy_qp", lib_share(costs.destroy_qp),
                             CmdDestroyQp{qpn});
  qp_types_.erase(qpn);
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::destroy_cq(rnic::Cqn cq) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("destroy_cq", lib_share(costs.destroy_cq),
                             CmdDestroyCq{cq});
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::dereg_mr(const verbs::MrHandle& mr) {
  const auto& costs = session_.backend().config().driver_costs;
  Response r = co_await call("dereg_mr", lib_share(costs.dereg_mr),
                             CmdDeregMr{mr.lkey});
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::dealloc_pd(rnic::PdId pd) {
  const auto& costs = session_.backend().config().driver_costs;
  co_await lib_charge("dealloc_pd", lib_share(costs.dealloc_pd));
  Response r = co_await session_.dealloc_pd_local(pd);
  co_return r.status;
}

rnic::Status MasqContext::post_send(rnic::Qpn qpn, const rnic::SendWr& wr) {
  auto it = qp_types_.find(qpn);
  if (it != qp_types_.end() && it->second == rnic::QpType::kUd) {
    // §3.3.4: UD WQEs go through the control path so RConnrename can
    // rewrite the per-WQE destination. The call is asynchronous from the
    // application's perspective; errors surface as CQEs.
    struct Fwd {
      static sim::Task<void> run(MasqContext* self, rnic::Qpn q,
                                 rnic::SendWr w) {
        (void)co_await self->vq_.call(CmdUdSend{q, w});
      }
    };
    loop().spawn(Fwd::run(this, qpn, wr));
    return rnic::Status::kOk;
  }
  // Zero-copy data path: write the WQE, then ring the doorbell through the
  // guest-mapped BAR — the MMIO write traverses GVA -> GPA -> HVA -> HPA
  // and lands on the device with no hypervisor involvement.
  const rnic::Status st =
      session_.backend().device().post_send(qpn, wr, /*ring_doorbell=*/false);
  if (st == rnic::Status::kOk) {
    session_.vm().gva().write_u64(doorbell_gva_ + qpn * 8, 1);
  }
  return st;
}

rnic::Status MasqContext::post_recv(rnic::Qpn qpn, const rnic::RecvWr& wr) {
  return session_.backend().device().post_recv(qpn, wr);
}

int MasqContext::poll_cq(rnic::Cqn cq, int max_entries,
                         rnic::Completion* out) {
  return session_.backend().device().poll_cq(cq, max_entries, out);
}

sim::Future<bool> MasqContext::cq_nonempty(rnic::Cqn cq) {
  return session_.backend().device().cq_nonempty(cq);
}

sim::Time MasqContext::data_verb_call_time(verbs::DataVerb v) const {
  switch (v) {
    case verbs::DataVerb::kPostSend: return kPostSendCpu;
    case verbs::DataVerb::kPostRecv: return kPostRecvCpu;
    case verbs::DataVerb::kPollCq: return kPollCqCpu;
  }
  return 0;
}

}  // namespace masq
