#include "masq/frontend.h"

#include <algorithm>

#include "masq/warm_pool.h"
#include "sim/flat_map.h"

namespace masq {

namespace {
// User-space library share of each verb (see verbs::kLibFraction): the
// kernel+device costs in DriverCosts are 90% of the Table-1 totals, so the
// lib share equals driver_cost / 9.
sim::Time lib_share(sim::Time driver_cost) { return driver_cost / 9; }

constexpr sim::Time kPostSendCpu = sim::nanoseconds(200);  // Table 1 row 11
constexpr sim::Time kPostRecvCpu = sim::nanoseconds(200);
constexpr sim::Time kPollCqCpu = sim::nanoseconds(30);     // Table 1 row 12

// Profile label + user-space library share of a modify_qp, by target state.
struct VerbLib {
  const char* verb = "modify_qp";
  sim::Time lib = 0;
};

VerbLib modify_verb_lib(const rnic::QpAttr& attr, std::uint32_t mask,
                        const verbs::DriverCosts& costs) {
  VerbLib out{"modify_qp", lib_share(costs.modify_rtr)};
  if (mask & rnic::kAttrState) {
    switch (attr.state) {
      case rnic::QpState::kInit:
        out = {"modify_qp(INIT)", lib_share(costs.modify_init)};
        break;
      case rnic::QpState::kRtr:
        out = {"modify_qp(RTR)", lib_share(costs.modify_rtr)};
        break;
      case rnic::QpState::kRts:
        out = {"modify_qp(RTS)", lib_share(costs.modify_rts)};
        break;
      case rnic::QpState::kError:
        out = {"modify_qp(ERROR)", lib_share(costs.modify_rtr)};
        break;
      default:
        break;
    }
  }
  return out;
}
}  // namespace

MasqContext::MasqContext(Backend::Session& session, overlay::OobEndpoint& oob,
                         virtio::ChannelCosts virtio_costs)
    : session_(&session),
      oob_(oob),
      vq_(session.backend().loop(), virtio_costs),
      // Deterministic per-tenant jitter stream: same testbed, same seeds,
      // same backoff schedule.
      jitter_rng_(0x6a17c0de ^
                  (static_cast<std::uint64_t>(session.vni()) *
                   0x9e3779b97f4a7c15ULL)) {
  session_->set_profile(&profile_);
  vq_.set_backend(
      [this](Envelope env) -> sim::Task<Response> {
        return session_->handle(std::move(env));
      });
  if (sim::FaultPlane* faults = session_->backend().faults()) {
    vq_.set_transit_faults(
        [faults](std::uint64_t cmd_id) { return faults->on_vq_transit(cmd_id); });
  }
  // Appendix B.1: map the device's doorbell BAR into the application's
  // address space so data-path doorbells bypass the hypervisor.
  doorbell_gva_ = session_->vm().map_mmio_into_guest(
      session_->backend().device().doorbell_bar(), 64 * 1024 * 8);
  // A QP torn down via ERROR never reaches destroy_qp's kOk path, so its
  // control-path routing entry is purged here; the warm pool drops any
  // staged/parked endpoint riding on the dead QP. Hooks run synchronously
  // inside the transition — both callees only mutate tables and schedule.
  qp_error_hook_ = session_->backend().device().on_qp_error(
      [this](rnic::Qpn qpn) {
        qp_types_.erase(qpn);
        if (warm_pool_) warm_pool_->on_qp_error(qpn);
      });
  const WarmPoolConfig& warm = session_->backend().config().warm;
  if (warm.enabled) {
    warm_pool_ = std::make_unique<WarmPool>(*this, warm);
    warm_pool_->start();
    // A peer that migrates keeps its vGID but re-registers it against a
    // new physical GID; a parked pair toward that peer is wired to the old
    // host and must be downgraded to cold. Purge on both the re-push and
    // the explicit-invalidate channels. Subscribed only when a pool
    // exists, so warm-disabled runs keep a bit-identical event stream.
    // `vni` is captured by value: the controller broadcasts synchronously
    // inside register_vgid, which fires mid-migration while session_ is
    // detached (null).
    sdn::Controller& ctrl = session_->backend().controller();
    const std::uint32_t vni = session_->vni();
    warm_push_sub_ = ctrl.subscribe(
        [this, vni](std::uint32_t v, net::Gid vgid, net::Gid) {
          if (v == vni && warm_pool_) warm_pool_->invalidate(vgid);
        });
    warm_inval_sub_ = ctrl.subscribe_invalidate(
        [this, vni](std::uint32_t v, net::Gid vgid) {
          if (v == vni && warm_pool_) warm_pool_->invalidate(vgid);
        });
  }
}

MasqContext::~MasqContext() {
  if (session_ != nullptr) {
    if (warm_push_sub_ != 0) {
      session_->backend().controller().unsubscribe(warm_push_sub_);
      session_->backend().controller().unsubscribe_invalidate(warm_inval_sub_);
    }
    session_->backend().device().remove_qp_error_hook(qp_error_hook_);
  }
  warm_pool_.reset();
}

void MasqContext::end_migration() {
  migration_gate_ = false;
  // Move the list out first: a released caller that re-parks (gate
  // re-closed by a back-to-back migration) pushes into a fresh vector
  // instead of the one being iterated.
  std::vector<sim::Promise<bool>> waiters = std::move(gate_waiters_);
  gate_waiters_.clear();
  for (sim::Promise<bool>& w : waiters) w.set_value(true);
}

void MasqContext::unbind() {
  // Order matters: the hook lives on the *source* device, which is only
  // reachable through the old session. After this the context must not be
  // used until rebind() — the gate (closed by the Migrator) guarantees no
  // verb is in flight.
  session_->backend().device().remove_qp_error_hook(qp_error_hook_);
  qp_error_hook_ = 0;
  session_ = nullptr;
}

void MasqContext::rebind(Backend::Session& session) {
  session_ = &session;
  session_->set_profile(&profile_);
  // The doorbell BAR must be remapped into the *destination* guest's
  // address space (new Vm, new translation chain), and QP-ERROR purging
  // re-hooked on the destination device.
  doorbell_gva_ = session_->vm().map_mmio_into_guest(
      session_->backend().device().doorbell_bar(), 64 * 1024 * 8);
  qp_error_hook_ = session_->backend().device().on_qp_error(
      [this](rnic::Qpn qpn) {
        qp_types_.erase(qpn);
        if (warm_pool_) warm_pool_->on_qp_error(qpn);
      });
}

sim::Task<verbs::WarmEndpoint> MasqContext::acquire_warm(
    const net::Gid& peer_gid) {
  if (!warm_pool_) co_return verbs::WarmEndpoint{};
  co_return co_await warm_pool_->acquire(peer_gid);
}

sim::Task<void> MasqContext::release_warm(const verbs::WarmEndpoint& ep,
                                          const net::Gid& peer_gid,
                                          rnic::Qpn peer_qpn) {
  if (!warm_pool_) co_return;
  co_await warm_pool_->release(ep, peer_gid, peer_qpn);
}

sim::Task<void> MasqContext::discard_warm(const verbs::WarmEndpoint& ep) {
  if (!warm_pool_) co_return;
  co_await warm_pool_->discard(ep);
}

void MasqContext::invalidate_warm(const net::Gid& peer_gid) {
  if (warm_pool_) warm_pool_->invalidate(peer_gid);
}

sim::Task<void> MasqContext::lib_charge(const char* verb, sim::Time t) {
  profile_.add(verb, verbs::Layer::kVerbsLib, t);
  co_await sim::delay(loop(), t);
}

sim::Task<Response> MasqContext::call(const char* verb, sim::Time lib_time,
                                      Command cmd) {
  co_await lib_charge(verb, lib_time);
  profile_.add(verb, verbs::Layer::kVirtio, vq_.costs().round_trip());
  co_return co_await submit(std::move(cmd));
}

sim::Task<MasqContext::CallOutcome> MasqContext::attempt(
    Envelope env, int weight, sim::Time attempt_deadline) {
  if (session_->backend().faults() != nullptr) {
    const std::uint64_t id = env.cmd_id;
    co_return co_await vq_.call_deadline(std::move(env), weight,
                                         attempt_deadline, id);
  }
  // Fault-free: the plain path keeps the event stream identical to a
  // build without the resilience layer (no timer armed per verb).
  CallOutcome out;
  out.resp = co_await vq_.call(std::move(env), weight);
  co_return out;
}

sim::Time MasqContext::backoff_delay(int attempt) {
  const RetryPolicy& rp = session_->backend().config().retry;
  double backoff = static_cast<double>(rp.base_backoff);
  for (int i = 1; i < attempt; ++i) backoff *= rp.backoff_multiplier;
  backoff *= 1.0 + rp.jitter_frac * jitter_rng_.next_double();
  return static_cast<sim::Time>(backoff);
}

sim::Task<Response> MasqContext::submit(Command cmd, int weight) {
  // Migration gate: park before touching session_ or the virtqueue — the
  // atomic section runs with session_ detached and the queue must stay
  // drained. Loop, not if: a back-to-back migration may re-close the gate
  // between release and resumption.
  while (migration_gate_) {
    sim::Promise<bool> gate(loop());
    sim::Future<bool> released = gate.get_future();
    gate_waiters_.push_back(std::move(gate));
    (void)co_await released;
  }
  const RetryPolicy& rp = session_->backend().config().retry;
  const sim::Time deadline = loop().now() + rp.verb_deadline;
  // One cmd_id for all attempts: a retry racing its own original is
  // deduplicated by the backend instead of executing twice.
  const std::uint64_t id = next_cmd_id_++;
  bool counted_retry = false;
  for (int attempt_no = 1;; ++attempt_no) {
    const sim::Time attempt_deadline =
        std::min(deadline, loop().now() + rp.attempt_timeout);
    // Named envelope + explicit move: passing a prvalue aggregate into a
    // coroutine parameter double-frees under GCC 12 (parameter-copy bug).
    Envelope env{id, cmd};
    CallOutcome out =
        co_await attempt(std::move(env), weight, attempt_deadline);
    if (!out.timed_out && !rnic::is_retryable(out.resp.status)) {
      co_return std::move(out.resp);
    }
    if (!counted_retry) {
      counted_retry = true;
      ++control_retries_;
    }
    if (attempt_no >= rp.max_attempts) break;
    const sim::Time pause = backoff_delay(attempt_no);
    if (loop().now() + pause >= deadline) break;
    co_await sim::delay(loop(), pause);
  }
  ++deadline_failures_;
  co_return Response{rnic::Status::kDeadlineExceeded, 0, 0};
}

sim::Task<Response> MasqContext::submit_chunk(CmdBatch chunk, int weight) {
  while (migration_gate_) {
    sim::Promise<bool> gate(loop());
    sim::Future<bool> released = gate.get_future();
    gate_waiters_.push_back(std::move(gate));
    (void)co_await released;
  }
  const RetryPolicy& rp = session_->backend().config().retry;
  const sim::Time deadline = loop().now() + rp.verb_deadline;
  const std::uint64_t id = next_cmd_id_++;
  bool counted_retry = false;
  for (int attempt_no = 1;; ++attempt_no) {
    const sim::Time attempt_deadline =
        std::min(deadline, loop().now() + rp.attempt_timeout);
    Envelope env{id, Command{chunk}};
    CallOutcome out =
        co_await attempt(std::move(env), weight, attempt_deadline);
    // Per-entry errors are the batch layer's business (entry retry
    // rounds); only a lost/late chunk is retried here, and the same
    // cmd_id makes that retry safe even if the original executed.
    if (!out.timed_out) co_return std::move(out.resp);
    if (!counted_retry) {
      counted_retry = true;
      ++control_retries_;
    }
    if (attempt_no >= rp.max_attempts) break;
    const sim::Time pause = backoff_delay(attempt_no);
    if (loop().now() + pause >= deadline) break;
    co_await sim::delay(loop(), pause);
  }
  ++deadline_failures_;
  co_return Response{rnic::Status::kDeadlineExceeded, 0, 0};
}

sim::Task<rnic::Expected<rnic::PdId>> MasqContext::alloc_pd() {
  // Table 1: not forwarded to the RNIC — handled without a virtqueue trip.
  const auto& costs = session_->backend().config().driver_costs;
  co_await lib_charge("alloc_pd", lib_share(costs.alloc_pd));
  Response r = co_await session_->alloc_pd_local();
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::PdId>::error(r.status);
  }
  co_return rnic::Expected<rnic::PdId>::of(
      static_cast<rnic::PdId>(r.v0));
}

sim::Task<rnic::Expected<verbs::MrHandle>> MasqContext::reg_mr(
    rnic::PdId pd, mem::Addr addr, std::uint64_t len, std::uint32_t access) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("reg_mr", lib_share(costs.reg_mr_base),
                             CmdRegMr{pd, addr, len, access});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<verbs::MrHandle>::error(r.status);
  }
  co_return rnic::Expected<verbs::MrHandle>::of(
      verbs::MrHandle{static_cast<rnic::Key>(r.v0),
                      static_cast<rnic::Key>(r.v1), addr, len});
}

sim::Task<rnic::Expected<rnic::Cqn>> MasqContext::create_cq(int cqe) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("create_cq", lib_share(costs.create_cq_base),
                             CmdCreateCq{cqe});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::Cqn>::error(r.status);
  }
  co_return rnic::Expected<rnic::Cqn>::of(static_cast<rnic::Cqn>(r.v0));
}

sim::Task<rnic::Expected<rnic::Qpn>> MasqContext::create_qp(
    const rnic::QpInitAttr& attr) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("create_qp", lib_share(costs.create_qp),
                             CmdCreateQp{attr});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::Qpn>::error(r.status);
  }
  const auto qpn = static_cast<rnic::Qpn>(r.v0);
  qp_types_[qpn] = attr.type;
  co_return rnic::Expected<rnic::Qpn>::of(qpn);
}

sim::Task<rnic::Status> MasqContext::modify_qp(rnic::Qpn qpn,
                                               const rnic::QpAttr& attr,
                                               std::uint32_t mask) {
  const auto& costs = session_->backend().config().driver_costs;
  const VerbLib vl = modify_verb_lib(attr, mask, costs);
  Response r = co_await call(vl.verb, vl.lib, CmdModifyQp{qpn, attr, mask});
  co_return r.status;
}

sim::Task<rnic::Expected<net::Gid>> MasqContext::query_gid() {
  // vBond answers locally from the frontend (§3.3.1): the virtual GID is
  // kept in sync with the vEth IP, no device round trip needed.
  co_await lib_charge("query_gid", sim::microseconds(2));
  profile_.add("query_gid", verbs::Layer::kMasqDriver, sim::microseconds(2));
  co_await sim::delay(loop(), sim::microseconds(2));
  co_return rnic::Expected<net::Gid>::of(session_->vbond().vgid());
}

sim::Task<rnic::Expected<rnic::QpAttr>> MasqContext::query_qp(
    rnic::Qpn qpn) {
  co_await lib_charge("query_qp", sim::microseconds(2));
  profile_.add("query_qp", verbs::Layer::kVirtio, vq_.costs().round_trip());
  Response r = co_await submit(CmdQueryQp{qpn});
  if (r.status != rnic::Status::kOk) {
    co_return rnic::Expected<rnic::QpAttr>::error(r.status);
  }
  co_return rnic::Expected<rnic::QpAttr>::of(r.attr);
}

sim::Task<rnic::Status> MasqContext::destroy_qp(rnic::Qpn qpn) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("destroy_qp", lib_share(costs.destroy_qp),
                             CmdDestroyQp{qpn});
  // Only a confirmed destroy loses the routing entry: a failed destroy
  // (e.g. kDeadlineExceeded) leaves the QP alive on the device, and a UD
  // QP must keep routing post_send through the control path (§3.3.4).
  // ERROR'd QPs are purged by the device hook instead.
  if (r.status == rnic::Status::kOk) qp_types_.erase(qpn);
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::destroy_cq(rnic::Cqn cq) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("destroy_cq", lib_share(costs.destroy_cq),
                             CmdDestroyCq{cq});
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::dereg_mr(const verbs::MrHandle& mr) {
  const auto& costs = session_->backend().config().driver_costs;
  Response r = co_await call("dereg_mr", lib_share(costs.dereg_mr),
                             CmdDeregMr{mr.lkey});
  co_return r.status;
}

sim::Task<rnic::Status> MasqContext::dealloc_pd(rnic::PdId pd) {
  const auto& costs = session_->backend().config().driver_costs;
  co_await lib_charge("dealloc_pd", lib_share(costs.dealloc_pd));
  Response r = co_await session_->dealloc_pd_local(pd);
  co_return r.status;
}

rnic::Status MasqContext::post_send(rnic::Qpn qpn, const rnic::SendWr& wr) {
  auto it = qp_types_.find(qpn);
  if (it != qp_types_.end() && it->second == rnic::QpType::kUd) {
    // §3.3.4: UD WQEs go through the control path so RConnrename can
    // rewrite the per-WQE destination. The call is asynchronous from the
    // application's perspective; errors surface as CQEs.
    struct Fwd {
      static sim::Task<void> run(MasqContext* self, rnic::Qpn q,
                                 rnic::SendWr w) {
        (void)co_await self->submit(CmdUdSend{q, w});
      }
    };
    ++ud_control_sends_;
    loop().spawn(Fwd::run(this, qpn, wr));
    return rnic::Status::kOk;
  }
  // Zero-copy data path: write the WQE, then ring the doorbell through the
  // guest-mapped BAR — the MMIO write traverses GVA -> GPA -> HVA -> HPA
  // and lands on the device with no hypervisor involvement.
  const rnic::Status st =
      session_->backend().device().post_send(qpn, wr, /*ring_doorbell=*/false);
  if (st == rnic::Status::kOk) {
    session_->vm().gva().write_u64(
        doorbell_gva_ + session_->backend().device().doorbell_offset(qpn), 1);
  }
  return st;
}

rnic::Status MasqContext::post_recv(rnic::Qpn qpn, const rnic::RecvWr& wr) {
  return session_->backend().device().post_recv(qpn, wr);
}

int MasqContext::poll_cq(rnic::Cqn cq, int max_entries,
                         rnic::Completion* out) {
  return session_->backend().device().poll_cq(cq, max_entries, out);
}

sim::Future<bool> MasqContext::cq_nonempty(rnic::Cqn cq) {
  return session_->backend().device().cq_nonempty(cq);
}

// ---------------------------------------------------------------------------
// MasqBatch — the pipelined submission API. Queued verbs marshal into one
// CmdBatch and cross the virtqueue in a single transit: one kick on the way
// down, one interrupt on the way back, no matter how many verbs ride along.
// Dependent verbs (create_qp on an in-batch CQ, modify_qp on an in-batch
// QP) use slot links the backend resolves while draining. Batches wider
// than the descriptor ring are chunked: links into an already-committed
// chunk are substituted with the concrete result client-side.
// ---------------------------------------------------------------------------
class MasqBatch final : public verbs::ControlBatch {
 public:
  explicit MasqBatch(MasqContext& ctx) : ctx_(ctx) {}

  int reg_mr(rnic::PdId pd, mem::Addr addr, std::uint64_t len,
             std::uint32_t access) override {
    Meta m;
    m.kind = Meta::kRegMr;
    m.verb = "reg_mr";
    m.lib = lib_share(costs().reg_mr_base);
    m.addr = addr;
    m.len = len;
    return push(CmdRegMr{pd, addr, len, access}, BatchLink{}, m);
  }

  int create_cq(int cqe) override {
    Meta m;
    m.verb = "create_cq";
    m.lib = lib_share(costs().create_cq_base);
    return push(CmdCreateCq{cqe}, BatchLink{}, m);
  }

  int create_qp(const rnic::QpInitAttr& attr, int send_cq_slot,
                int recv_cq_slot) override {
    Meta m;
    m.kind = Meta::kCreateQp;
    m.verb = "create_qp";
    m.lib = lib_share(costs().create_qp);
    m.qp_type = attr.type;
    BatchLink link;
    link.send_cq_from = send_cq_slot;
    link.recv_cq_from = recv_cq_slot;
    return push(CmdCreateQp{attr}, link, m);
  }

  int modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                std::uint32_t mask) override {
    const VerbLib vl = modify_verb_lib(attr, mask, costs());
    Meta m;
    m.verb = vl.verb;
    m.lib = vl.lib;
    return push(CmdModifyQp{qpn, attr, mask}, BatchLink{}, m);
  }

  int modify_qp_slot(int qp_slot, const rnic::QpAttr& attr,
                     std::uint32_t mask) override {
    const VerbLib vl = modify_verb_lib(attr, mask, costs());
    Meta m;
    m.verb = vl.verb;
    m.lib = vl.lib;
    BatchLink link;
    link.qpn_from = qp_slot;
    return push(CmdModifyQp{0, attr, mask}, link, m);
  }

  sim::Task<rnic::Status> commit() override {
    const std::size_t ring = static_cast<std::size_t>(ctx_.vq_.ring_size());
    while (committed_ < cmds_.size()) {
      const std::size_t begin = committed_;
      const std::size_t n = std::min(cmds_.size() - begin, ring);
      CmdBatch b;
      b.cmds.reserve(n);
      b.links.reserve(n);
      sim::Time lib_total = 0;
      // The one virtqueue round trip is shared by the whole chunk; the
      // profile attributes a near-equal share to each verb so Fig.-16-style
      // breakdowns show the amortization directly. The division remainder
      // goes to the chunk's first entries, one extra ns each, so the
      // per-verb shares always sum to exactly the charged round trip.
      const sim::Time rt = ctx_.vq_.costs().round_trip();
      const sim::Time rt_base = rt / static_cast<sim::Time>(n);
      const sim::Time rt_rem = rt % static_cast<sim::Time>(n);
      // Entries whose cross-chunk dependency already failed: they inherit
      // that status client-side (the backend only sees a poisoned index).
      // Ordered: iterated below to patch per-slot results.
      sim::FlatMap<std::size_t, rnic::Status> dep_failed;
      for (std::size_t i = begin; i < begin + n; ++i) {
        BatchableCommand cmd = cmds_[i];
        rnic::Status dep_status = rnic::Status::kOk;
        BatchLink link = rebase_link(links_[i], begin, n, &cmd, &dep_status);
        if (dep_status != rnic::Status::kOk) dep_failed[i] = dep_status;
        ctx_.profile_.add(metas_[i].verb, verbs::Layer::kVerbsLib,
                          metas_[i].lib);
        const sim::Time rt_share =
            rt_base +
            (static_cast<sim::Time>(i - begin) < rt_rem ? 1 : 0);
        ctx_.profile_.add(metas_[i].verb, verbs::Layer::kVirtio, rt_share);
        lib_total += metas_[i].lib;
        b.cmds.push_back(std::move(cmd));
        b.links.push_back(link);
      }
      // The guest library still pays its per-verb CPU share up front; only
      // the channel transits are amortized.
      co_await sim::delay(ctx_.loop(), lib_total);
      Response r =
          co_await ctx_.submit_chunk(std::move(b), static_cast<int>(n));
      for (std::size_t i = 0; i < n; ++i) {
        if (r.batch.size() != n) {
          // The chunk itself never completed (retry budget exhausted):
          // every entry fails with the chunk-level status.
          Response e;
          e.status = r.status;
          record(begin + i, e);
        } else {
          record(begin + i, r.batch.at(i));
        }
      }
      for (const auto& [i, st] : dep_failed) results_[i].status = st;
      committed_ = begin + n;
    }
    co_await retry_failed_entries();
    rnic::Status first = rnic::Status::kOk;
    for (const Result& res : results_) {
      if (res.status != rnic::Status::kOk) {
        first = res.status;
        break;
      }
    }
    co_return first;
  }

  rnic::Status status(int slot) const override {
    return results_.at(slot).status;
  }
  std::uint64_t value(int slot) const override {
    return results_.at(slot).value;
  }
  verbs::MrHandle mr(int slot) const override { return results_.at(slot).mr; }
  int size() const override { return static_cast<int>(cmds_.size()); }

 private:
  struct Meta {
    enum Kind { kPlain, kRegMr, kCreateQp } kind = kPlain;
    const char* verb = "?";
    sim::Time lib = 0;
    mem::Addr addr = 0;       // kRegMr
    std::uint64_t len = 0;    // kRegMr
    rnic::QpType qp_type = rnic::QpType::kRc;  // kCreateQp
  };
  struct Result {
    rnic::Status status = rnic::Status::kOk;
    std::uint64_t value = 0;
    verbs::MrHandle mr;
  };

  const verbs::DriverCosts& costs() const {
    return ctx_.session_->backend().config().driver_costs;
  }

  int push(BatchableCommand cmd, BatchLink link, const Meta& m) {
    cmds_.push_back(std::move(cmd));
    links_.push_back(link);
    metas_.push_back(m);
    results_.emplace_back();
    return static_cast<int>(cmds_.size()) - 1;
  }

  // Converts one absolute slot reference for a chunk [begin, begin+n):
  // in-chunk slots become chunk-relative (forward references stay invalid
  // and are failed by the backend, matching sequential semantics);
  // already-committed slots are substituted client-side via `apply` — or
  // poisoned with an out-of-range index if the dependency failed, with the
  // dependency's status reported through `dep_status` so the entry can
  // inherit it (retryable vs permanent matters for the retry rounds).
  int rebase_slot(int slot, std::size_t begin, std::size_t n,
                  const std::function<void(std::uint64_t)>& apply,
                  rnic::Status* dep_status) {
    if (slot < 0) return -1;
    if (static_cast<std::size_t>(slot) >= begin) {
      return slot - static_cast<int>(begin);  // backend resolves (or fails)
    }
    if (results_[slot].status == rnic::Status::kOk) {
      apply(results_[slot].value);
      return -1;
    }
    *dep_status = results_[slot].status;
    return static_cast<int>(n);  // dependency failed: poison for the backend
  }

  BatchLink rebase_link(const BatchLink& in, std::size_t begin, std::size_t n,
                        BatchableCommand* cmd, rnic::Status* dep_status) {
    BatchLink out;
    if (auto* c = std::get_if<CmdCreateQp>(cmd)) {
      out.send_cq_from = rebase_slot(in.send_cq_from, begin, n,
                                     [c](std::uint64_t v) {
                                       c->attr.send_cq =
                                           static_cast<rnic::Cqn>(v);
                                     },
                                     dep_status);
      out.recv_cq_from = rebase_slot(in.recv_cq_from, begin, n,
                                     [c](std::uint64_t v) {
                                       c->attr.recv_cq =
                                           static_cast<rnic::Cqn>(v);
                                     },
                                     dep_status);
    }
    if (auto* c = std::get_if<CmdModifyQp>(cmd)) {
      out.qpn_from = rebase_slot(in.qpn_from, begin, n,
                                 [c](std::uint64_t v) {
                                   c->qpn = static_cast<rnic::Qpn>(v);
                                 },
                                 dep_status);
    }
    return out;
  }

  // After the initial chunked submission, transiently-failed entries are
  // retried in rounds. Each round collects the retryable set plus ladder
  // collateral — a modify_qp that failed kInvalidState only because an
  // earlier transition on the same QP is being retried — then resubmits it
  // as a mini-batch under a fresh cmd_id (entry-level retries are new work,
  // not a replay of the original chunk). Links into the same round stay
  // relative; satisfied dependencies are substituted client-side; entries
  // whose dependency failed permanently inherit that status. Rounds stop
  // when nothing retryable remains or the budget runs out, at which point
  // still-transient entries fail kDeadlineExceeded like a solo verb would.
  sim::Task<void> retry_failed_entries() {
    const RetryPolicy& rp = ctx_.session_->backend().config().retry;
    const sim::Time deadline = ctx_.loop().now() + rp.verb_deadline;
    const std::size_t ring = static_cast<std::size_t>(ctx_.vq_.ring_size());
    for (int round = 1; round < rp.max_attempts; ++round) {
      std::vector<std::size_t> retry;
      sim::FlatSet<std::size_t> retry_slots;
      sim::FlatSet<std::uint64_t> retry_qpns;
      for (std::size_t i = 0; i < cmds_.size(); ++i) {
        bool take = rnic::is_retryable(results_[i].status);
        const auto* mod = std::get_if<CmdModifyQp>(&cmds_[i]);
        if (!take && mod != nullptr &&
            results_[i].status == rnic::Status::kInvalidState) {
          const int dep = links_[i].qpn_from;
          if (dep >= 0) {
            take = retry_slots.count(static_cast<std::size_t>(dep)) != 0 ||
                   (results_[dep].status == rnic::Status::kOk &&
                    retry_qpns.count(results_[dep].value) != 0);
          } else {
            take = retry_qpns.count(mod->qpn) != 0;
          }
        }
        if (!take) continue;
        retry_slots.insert(i);
        retry.push_back(i);
        if (mod != nullptr) {
          const int dep = links_[i].qpn_from;
          if (dep < 0) {
            retry_qpns.insert(mod->qpn);
          } else if (results_[dep].status == rnic::Status::kOk) {
            retry_qpns.insert(results_[dep].value);
          }
        }
      }
      if (retry.empty()) co_return;
      if (ctx_.loop().now() >= deadline) break;
      ++ctx_.control_retries_;
      co_await sim::delay(ctx_.loop(), ctx_.backoff_delay(round));
      // Resubmit ring-sized slices; links point backwards only, so a
      // dependency in an earlier slice has its fresh result recorded by
      // the time the later slice is built.
      for (std::size_t off = 0; off < retry.size(); off += ring) {
        const std::size_t n = std::min(ring, retry.size() - off);
        sim::FlatMap<std::size_t, std::size_t> pos;
        for (std::size_t k = 0; k < n; ++k) pos[retry[off + k]] = k;
        CmdBatch mini;
        mini.cmds.reserve(n);
        mini.links.reserve(n);
        // Ordered: iterated below to patch per-slot results.
        sim::FlatMap<std::size_t, rnic::Status> dep_failed;
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = retry[off + k];
          BatchableCommand cmd = cmds_[i];
          rnic::Status dep_status = rnic::Status::kOk;
          auto map_slot =
              [&](int slot,
                  const std::function<void(std::uint64_t)>& apply) -> int {
            if (slot < 0) return -1;
            if (auto it = pos.find(static_cast<std::size_t>(slot));
                it != pos.end()) {
              return static_cast<int>(it->second);
            }
            if (results_[slot].status == rnic::Status::kOk) {
              apply(results_[slot].value);
              return -1;
            }
            dep_status = results_[slot].status;
            return static_cast<int>(n);  // poison for the backend
          };
          BatchLink out;
          if (auto* c = std::get_if<CmdCreateQp>(&cmd)) {
            out.send_cq_from =
                map_slot(links_[i].send_cq_from, [c](std::uint64_t v) {
                  c->attr.send_cq = static_cast<rnic::Cqn>(v);
                });
            out.recv_cq_from =
                map_slot(links_[i].recv_cq_from, [c](std::uint64_t v) {
                  c->attr.recv_cq = static_cast<rnic::Cqn>(v);
                });
          }
          if (auto* c = std::get_if<CmdModifyQp>(&cmd)) {
            out.qpn_from = map_slot(links_[i].qpn_from, [c](std::uint64_t v) {
              c->qpn = static_cast<rnic::Qpn>(v);
            });
          }
          if (dep_status != rnic::Status::kOk) dep_failed[i] = dep_status;
          mini.cmds.push_back(std::move(cmd));
          mini.links.push_back(out);
        }
        Response r =
            co_await ctx_.submit_chunk(std::move(mini), static_cast<int>(n));
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = retry[off + k];
          if (r.batch.size() != n) {
            Response e;
            e.status = r.status;
            record(i, e);
          } else {
            record(i, r.batch.at(k));
          }
        }
        for (const auto& [i, st] : dep_failed) results_[i].status = st;
      }
    }
    for (Result& res : results_) {
      if (rnic::is_retryable(res.status)) {
        res.status = rnic::Status::kDeadlineExceeded;
        ++ctx_.deadline_failures_;
      }
    }
  }

  void record(std::size_t i, const Response& r) {
    Result& res = results_[i];
    res.status = r.status;
    // A failed entry carries no result: the backend echoes inputs in v0
    // even on failure (modify_qp returns its QPN), and a retry round that
    // fails must not leave the previous round's mr/value visible — zero
    // everything on non-kOk so value()/mr() never report stale state.
    switch (metas_[i].kind) {
      case Meta::kRegMr:
        res.mr = r.status == rnic::Status::kOk
                     ? verbs::MrHandle{static_cast<rnic::Key>(r.v0),
                                       static_cast<rnic::Key>(r.v1),
                                       metas_[i].addr, metas_[i].len}
                     : verbs::MrHandle{};
        break;
      case Meta::kCreateQp:
        if (r.status == rnic::Status::kOk) {
          const auto qpn = static_cast<rnic::Qpn>(r.v0);
          res.value = r.v0;
          ctx_.qp_types_[qpn] = metas_[i].qp_type;
        } else {
          res.value = 0;
        }
        break;
      case Meta::kPlain:
        res.value = r.status == rnic::Status::kOk ? r.v0 : 0;
        break;
    }
  }

  MasqContext& ctx_;
  std::vector<BatchableCommand> cmds_;
  std::vector<BatchLink> links_;
  std::vector<Meta> metas_;
  std::vector<Result> results_;
  std::size_t committed_ = 0;
};

std::unique_ptr<verbs::ControlBatch> MasqContext::make_batch() {
  return std::make_unique<MasqBatch>(*this);
}

sim::Time MasqContext::data_verb_call_time(verbs::DataVerb v) const {
  switch (v) {
    case verbs::DataVerb::kPostSend: return kPostSendCpu;
    case verbs::DataVerb::kPostRecv: return kPostRecvCpu;
    case verbs::DataVerb::kPollCq: return kPollCqCpu;
  }
  return 0;
}

}  // namespace masq
