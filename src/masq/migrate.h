// Transparent live migration of established RDMA connections (§5 asks the
// app to tear down and rebuild; this module removes that ask).
//
// The Migrator moves a MasQ VM — guest RAM, RNIC objects (PDs, MRs, CQs,
// QPs with their FSM state and PSN cursors), RConntrack rows and the
// virtio session — from one host's backend to another's, while every
// established RC connection survives under its original QPN:
//
//   1. gate    — the frontend's control path closes: new verbs park.
//   2. quiesce — every owned QP (and every peer QP aimed at the migrant)
//                in RTS is moved to SQD, so send engines run dry. RC
//                retransmission (device.cc rebuilds frames from the live
//                QPC, so a retry after the move targets the *new*
//                physical GID) recovers any packet that still crosses
//                the blackout, but quiescing keeps the snapshot clean:
//                nothing the migrant owns is in flight when its state is
//                digested.
//   3. drain   — poll until all QPs are quiescent, the virtqueue is empty
//                and no deferred conntrack purge is pending.
//   4. move    — a synchronous atomic section: digest WQE/CQE state,
//                extract every object, copy guest buffers, destroy the
//                source VM/session, boot the destination VM/session
//                (vBond re-registers the unchanged vGID against the new
//                physical GID, which pushes fresh mappings to every host
//                cache), restore every object under its original ID,
//                re-digest and compare, re-point peer QPCs at the new
//                physical GID, rebind the frontend.
//   5. pay     — the modeled stop-and-copy downtime is charged in bulk.
//   6. resume  — SQD QPs return to RTS; parked verbs release.
//
// The peer observes added latency only: no reset, no reconnect, no QPN
// change. Zero-loss is *proven*, not assumed — step 4's digest compare
// feeds the "migration-wqe" auditor, and test-only corruption hooks
// demonstrate it trips.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hyp/instance.h"
#include "masq/backend.h"
#include "masq/frontend.h"
#include "rnic/device.h"
#include "sdn/controller.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace masq {

// Modeled costs of the move. The drain phase is genuinely simulated (the
// engines run dry in simulated time); the stop-and-copy blackout is
// charged in bulk from these knobs, so the Fig. 18-style pause-time table
// is a pure function of the migrated state's size.
struct MigrationCosts {
  // Fixed share: pause/resume the vCPUs, final dirty-bitmap sweep.
  sim::Time pause_base = sim::milliseconds(2);
  // Per migrated QP: QPC extract + restore + doorbell rewire.
  sim::Time per_qp = sim::microseconds(150);
  // Per 4 KiB guest page copied in the stop-and-copy phase.
  sim::Time per_page = sim::microseconds(2);
  // Drain-poll period while waiting for quiescence.
  sim::Time poll_interval = sim::microseconds(50);
  // Give up (and roll the pause back) if the fabric will not drain.
  sim::Time drain_timeout = sim::seconds(1);
};

struct MigrationReport {
  bool ok = false;
  rnic::Status status = rnic::Status::kOk;
  std::size_t qps_moved = 0;
  std::size_t cqs_moved = 0;
  std::size_t mrs_moved = 0;
  std::size_t pds_moved = 0;
  std::size_t conntrack_rows_moved = 0;
  std::size_t peer_qps_paused = 0;
  std::uint64_t guest_bytes_copied = 0;
  sim::Time drain_time = 0;  // gate close -> quiescence
  sim::Time pause_time = 0;  // charged stop-and-copy blackout
  sim::Time total_time = 0;  // gate close -> resume
};

class Migrator {
 public:
  // Everything the move touches. The Migrator lives in masq and must not
  // depend on src/check (which depends on masq): invariant findings go
  // out through `report_violation`, which the testbed wires to the
  // registered "migration-wqe" auditor. May be null (violations are then
  // carried only in the report status).
  struct Env {
    sim::EventLoop* loop = nullptr;
    MasqContext* ctx = nullptr;          // the migrating VM's frontend
    Backend* source = nullptr;           // backend currently serving it
    Backend* destination = nullptr;      // backend that will serve it
    hyp::Host* dest_host = nullptr;      // where the new Vm boots
    std::unique_ptr<hyp::Vm>* vm_slot = nullptr;  // owner of the Vm
    // Resolves a *physical* GID to the device behind it (peer QPC
    // rewrite). The testbed implements it from its underlay-IP router.
    std::function<rnic::RnicDevice*(net::Gid)> device_by_pgid;
    // Locates the device *currently* hosting a QP, wherever concurrent
    // migrations have moved it (QPN spaces are disjoint per device, so the
    // lookup is unambiguous). Needed when both ends of a connection
    // migrate at once: a peer QP this migration paused can change devices
    // before this migration resumes it — resuming (or rollback-resuming)
    // through the stale device pointer would leave it in SQD forever.
    // May be null: peers then resume only if still in place.
    std::function<rnic::RnicDevice*(rnic::Qpn)> device_by_qpn;
    std::function<void(std::string_view invariant, std::string_view point,
                       std::string diagnostic)>
        report_violation;
    MigrationCosts costs;
  };

  explicit Migrator(Env env) : env_(std::move(env)) {}

  // One full migration. On the drain-timeout path every paused QP is
  // resumed and the gate reopened — the VM keeps running on the source.
  // Failures inside the atomic section are reported and returned but not
  // rolled back (the simulated hardware cannot half-unmove a QP, any more
  // than real hardware can).
  sim::Task<rnic::Status> run();

  const MigrationReport& report() const { return report_; }

  // Corruption hooks for the auditor's own test tier: mutate the QP
  // snapshots between the source digest and the destination restore, so
  // the digest compare MUST fire. Never set outside tests.
  void snapshot_drop_wqe_for_test() { drop_wqe_for_test_ = true; }
  void snapshot_duplicate_wqe_for_test() { duplicate_wqe_for_test_ = true; }

 private:
  void fail_invariant(std::string_view point, std::string diagnostic);

  Env env_;
  MigrationReport report_;
  bool drop_wqe_for_test_ = false;
  bool duplicate_wqe_for_test_ = false;
};

}  // namespace masq
