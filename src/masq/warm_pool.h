// Warm-path connection pool (Swift-style; DESIGN.md §14).
//
// Swift (arXiv 2501.19051) observes that for elastic workloads the RDMA
// *control* plane — not the data plane — is the setup bottleneck: every
// connection pays create_cq/create_qp plus the INIT→RTR→RTS ladder through
// the paravirtual command channel. The WarmPool attacks all three:
//
//   * background refill — a pacing loop pre-runs create_cq ×2 + create_qp +
//     modify_qp(INIT) as one pipelined batch, keeping `target_ready`
//     INIT-state endpoints staged, so a connect only pays RTR→RTS;
//   * pre-staged registration — one slab MR registered at pool start rides
//     along with every warm endpoint, so the MR cost leaves the setup path;
//   * connection caching with lazy teardown — a released RTS endpoint is
//     parked keyed by its peer; a returning connection to the same peer
//     reuses it and skips the ladder entirely. Parked endpoints are
//     reclaimed after `reclaim_after` idle, not destroyed inline.
//
// Degradation is always to the cold path: an empty pool, a failed refill
// batch, or a pool QP forced into ERROR makes acquire() answer kCold and
// the caller runs the ordinary ladder. The pool is only constructed when
// WarmPoolConfig.enabled is set, so a disabled run's event stream is
// bit-identical to a build without the feature.
#pragma once

#include <memory>
#include <vector>

#include "masq/backend.h"
#include "net/addr.h"
#include "sim/flat_map.h"
#include "verbs/api.h"

namespace masq {

class WarmPool {
 public:
  // Written purely against verbs::Context so the staging/refill ladders go
  // through the same pipelined batches an application would use.
  WarmPool(verbs::Context& ctx, WarmPoolConfig cfg);
  ~WarmPool();
  WarmPool(const WarmPool&) = delete;
  WarmPool& operator=(const WarmPool&) = delete;

  // Spawns the staging task (PD + slab MR) and the first refill round.
  void start();

  // Never fails: returns kReused (parked connection to this peer), else
  // kPooled (staged INIT endpoint), else kCold.
  sim::Task<verbs::WarmEndpoint> acquire(const net::Gid& peer_gid);
  // Parks a still-RTS endpoint for reuse by a returning connection to
  // (peer_gid, peer_qpn); schedules the lazy-teardown reclaim.
  sim::Task<void> release(verbs::WarmEndpoint ep, const net::Gid& peer_gid,
                          rnic::Qpn peer_qpn);
  // Immediate teardown through the cold-path verbs (shared slab MR and PD
  // stay with the pool). No-op for kCold endpoints.
  sim::Task<void> discard(verbs::WarmEndpoint ep);
  // Drops any parked connection toward `peer_gid`; teardown runs in the
  // background.
  void invalidate(const net::Gid& peer_gid);
  // QP-ERROR notification (wired from the frontend's device hook): a dead
  // pool QP is purged from ready/parked and torn down in the background.
  void on_qp_error(rnic::Qpn qpn);

  bool staged() const { return staged_; }
  std::size_t ready_size() const { return ready_.size(); }
  std::size_t parked_size() const { return parked_.size(); }
  std::uint64_t pool_hits() const { return pool_hits_; }
  std::uint64_t pool_misses() const { return pool_misses_; }
  std::uint64_t reuse_hits() const { return reuse_hits_; }
  std::uint64_t refills() const { return refills_; }
  std::uint64_t refill_failures() const { return refill_failures_; }
  std::uint64_t reclaimed() const { return reclaimed_; }
  std::uint64_t purged() const { return purged_; }
  const WarmPoolConfig& config() const { return cfg_; }

 private:
  struct Slot {
    rnic::Cqn scq = 0;
    rnic::Cqn rcq = 0;
    rnic::Qpn qpn = 0;
  };
  struct Parked {
    Slot slot;
    rnic::Qpn peer_qpn = 0;
    std::uint64_t stamp = 0;  // reclaim generation: a re-park invalidates
                              // the previous entry's pending reclaim
  };

  // Detached background tasks hold a weak liveness token and stand down
  // once the pool dies (same idiom as HostAgent::flush_lane).
  static sim::Task<void> stage_task(WarmPool* self,
                                    std::weak_ptr<const char> alive);
  static sim::Task<void> refill_task(WarmPool* self,
                                     std::weak_ptr<const char> alive);
  static sim::Task<void> teardown_task(WarmPool* self, Slot s,
                                       std::weak_ptr<const char> alive);
  void kick_refill();
  void teardown_in_background(const Slot& s);
  void schedule_reclaim(net::Gid gid, std::uint64_t stamp);

  verbs::Context& ctx_;
  WarmPoolConfig cfg_;
  bool staged_ = false;
  bool staging_ = false;
  bool refilling_ = false;
  rnic::PdId pd_ = 0;
  mem::Addr slab_ = 0;
  verbs::MrHandle slab_mr_;
  std::vector<Slot> ready_;
  sim::FlatMap<net::Gid, Parked> parked_;
  std::uint64_t stamp_seq_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint64_t reuse_hits_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t refill_failures_ = 0;
  std::uint64_t reclaimed_ = 0;
  std::uint64_t purged_ = 0;
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>(0);
};

}  // namespace masq
