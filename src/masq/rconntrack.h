// RConntrack — RDMA connection tracking (§3.3.2, Fig. 6).
//
// Enforces the tenant's security rules on RDMA connections in three parts:
//  1. a connection cannot be established unless explicitly allowed:
//     validate() is consulted by the backend on modify_qp(RTR);
//  2. packets of established connections need no per-packet checks — the
//     RNIC only carries connections this module admitted;
//  3. when rules change, established connections that are no longer
//     allowed are torn down by forcing their QP into the ERROR state
//     (Table 2 semantics), which the RNIC honours by flushing WQEs and
//     dropping packets.
//
// Operation costs follow Table 4: valid_conn 2.5 us, insert_conn 1.5 us,
// delete_conn 1.5 us; reset_conn is dominated by the kernel routine + RNIC
// processing charged through KernelDriver::modify_qp(ERROR) (Fig. 18).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/addr.h"
#include "overlay/oob.h"
#include "overlay/security.h"
#include "rnic/types.h"
#include "sim/event_loop.h"
#include "sim/task.h"
#include "verbs/kernel_driver.h"

namespace masq {

struct RConntrackCosts {
  sim::Time insert_rule = sim::microseconds(1.5);  // Table 4
  sim::Time valid_conn = sim::microseconds(2.5);   // Table 4
  sim::Time insert_conn = sim::microseconds(1.5);  // Table 4
  sim::Time delete_conn = sim::microseconds(1.5);  // Table 4
};

class RConntrack {
 public:
  // The RCT_Table record of Fig. 3: (vni, src_vip, dst_vip, qpn), plus the
  // driver handle needed to reset the QP.
  struct Entry {
    std::uint32_t vni = 0;
    net::Ipv4Addr src_vip;
    net::Ipv4Addr dst_vip;
    rnic::Qpn qpn = 0;
    verbs::KernelDriver* driver = nullptr;
  };

  RConntrack(sim::EventLoop& loop, overlay::VirtualNetwork& vnet,
             RConntrackCosts costs = {})
      : loop_(loop), vnet_(vnet), costs_(costs) {}

  // Subscribes to a tenant's policy so rule updates trigger re-validation
  // of established connections (done automatically on first use of a VNI).
  void watch_tenant(std::uint32_t vni);

  // Security-rule management entry point (update_rules in Table 4):
  // charges insert_rule, installs the rule and notifies the policy so
  // established connections get re-validated.
  sim::Task<overlay::RuleId> install_rule(overlay::SecurityPolicy& policy,
                                          overlay::RuleChain& chain,
                                          overlay::Rule rule);

  // Connection-establishment check (Fig. 6 step 1). Charges valid_conn.
  sim::Task<bool> validate(std::uint32_t vni, net::Ipv4Addr src,
                           net::Ipv4Addr dst);

  // Records an established connection. Charges insert_conn.
  sim::Task<void> track(Entry entry);

  // Removes a connection (destroy_qp path). Charges delete_conn.
  sim::Task<void> untrack(rnic::Qpn qpn, std::uint32_t vni);

  // Invariant repair for a QP that entered ERROR outside RConntrack's own
  // teardown (data-path fault, injected error): by Table 2 it carries no
  // connection any more, so every entry referencing it is dropped. QPNs
  // are device-global, so no VNI is needed. Idempotent with
  // revalidate_all's own erase. Charges delete_conn when entries existed.
  sim::Task<void> purge_qp(rnic::Qpn qpn);

  // §5: modern datacenters diagnose with packet headers; MasQ frames carry
  // only underlay addresses, so the mapping (underlay, QPN) -> tenant flow
  // must come from this table. Returns nullptr if untracked.
  const Entry* lookup(rnic::Qpn qpn, std::uint32_t vni) const;

  std::size_t table_size() const { return table_.size(); }
  std::uint64_t resets_performed() const { return resets_; }
  std::uint64_t validations() const { return validations_; }
  std::uint64_t qp_error_purges() const { return purges_; }
  // True if any entry (any VNI) references this QPN — the chaos sweep
  // asserts this is false for every QP in ERROR.
  bool has_qp(rnic::Qpn qpn) const;

  // Testing/metrics hook: fired after each forced reset with the QPN.
  void on_reset(std::function<void(rnic::Qpn)> fn) {
    reset_hook_ = std::move(fn);
  }

  // Invariant auditing (src/check): walks the table in insertion order
  // (the table is a plain vector, so this is already deterministic).
  void for_each_entry(const std::function<void(const Entry&)>& fn) const {
    for (const Entry& e : table_) fn(e);
  }

  // Test-only corruption hook: plants a row directly, without the
  // validate/track path or its cost charge — used to prove the
  // RConntrack<->QP consistency auditor trips on an orphaned row.
  void corrupt_insert_for_test(Entry entry) {
    table_.push_back(std::move(entry));
  }

  // --- Live migration (DESIGN.md §15) -----------------------------------
  // Synchronous and uncharged: the Migrator's atomic section moves rows
  // wholesale and bills the time as migration downtime, not per-row
  // conntrack operations. extract_qp removes and returns every row for
  // the QP; adopt re-inserts one (typically with `driver` re-pointed at
  // the destination host's driver). The (vni, vip, qpn) tuple is
  // unchanged — that is the point of transparent migration.
  std::vector<Entry> extract_qp(rnic::Qpn qpn) {
    std::vector<Entry> out;
    std::erase_if(table_, [&](const Entry& e) {
      if (e.qpn != qpn) return false;
      out.push_back(e);
      return true;
    });
    return out;
  }
  void adopt(Entry entry) { table_.push_back(std::move(entry)); }

 private:
  // Rescans the table after a rule change; resets now-forbidden
  // connections (Fig. 6 step 2 / §4.3.2).
  sim::Task<void> revalidate_all();

  sim::EventLoop& loop_;
  overlay::VirtualNetwork& vnet_;
  RConntrackCosts costs_;
  std::vector<Entry> table_;
  std::vector<std::uint32_t> watched_;
  std::uint64_t resets_ = 0;
  std::uint64_t validations_ = 0;
  std::uint64_t purges_ = 0;
  std::function<void(rnic::Qpn)> reset_hook_;
};

}  // namespace masq
