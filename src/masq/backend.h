// MasQ backend driver (Fig. 3): the host-side half of the split driver.
//
// One Backend per host RNIC. It receives control commands from each VM's
// frontend over virtio, and before handing them to the unmodified kernel
// RDMA driver it applies the three MasQ mechanisms:
//   * vBond        — one per VM session; maintains the virtual GID,
//   * RConnrename  — rewrites the peer's virtual GID to the physical GID
//                    in modify_qp(RTR) / UD WQEs, via the controller +
//                    host-local mapping cache,
//   * RConntrack   — validates connections against security rules, tracks
//                    them, and tears down violators.
// It also implements QP-level QoS (§3.3.3): QPs are grouped by tenant and
// each group is mapped to an SR-IOV VF whose hardware rate limiter
// enforces the tenant's policy.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "hyp/instance.h"
#include "masq/commands.h"
#include "sim/faults.h"
#include "masq/rconntrack.h"
#include "masq/vbond.h"
#include "overlay/oob.h"
#include "rnic/device.h"
#include "sdn/controller.h"
#include "sdn/host_agent.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "verbs/api.h"
#include "verbs/kernel_driver.h"

namespace masq {

// Swift-style warm-path connection setup (DESIGN.md §14). Off by default:
// with `enabled == false` no pool object is even constructed, so the cold
// path's event stream — and every golden number — is bit-identical to a
// build without the feature.
struct WarmPoolConfig {
  bool enabled = false;
  // Background refill keeps this many INIT-state QPs (each with its own CQ
  // pair) staged per tenant session.
  std::size_t target_ready = 4;
  // Parked (reusable RTS) connections kept per session before the oldest
  // is torn down to make room.
  std::size_t max_parked = 16;
  // Lazy teardown: a parked connection idle this long is reclaimed.
  sim::Time reclaim_after = sim::milliseconds(50);
  // Pacing between background refill ladders, so refill traffic trickles
  // instead of bursting into the virtqueue behind foreground verbs.
  sim::Time refill_gap = sim::microseconds(50);
  // Pre-staged MR slab registered once at pool start (Swift's pre-staged
  // registration); handed out with every warm endpoint.
  std::uint64_t slab_bytes = 64 * 1024;
  int cqe = 256;  // CQ depth for pooled endpoints
};

struct BackendConfig {
  // Map tenants to the PF instead of VFs: trades QoS isolation for
  // bare-metal latency (Fig. 9's "MasQ (PF)" variant).
  bool map_tenants_to_pf = false;
  // Per-command processing in the MasQ frontend+backend pair. Anchor:
  // Fig. 16b — the "MasQ Driver" layer is < 20% of each verb's cost.
  sim::Time command_overhead = sim::microseconds(2);
  // Ablation: disable the host-local mapping cache so every RConnrename
  // pays the controller round trip (§4.2.3 discussion).
  bool disable_mapping_cache = false;
  verbs::DriverCosts driver_costs;
  RConntrackCosts conntrack_costs;
  sim::Time mapping_cache_hit = sim::microseconds(2);  // §3.3.1
  // Frontend control-path retry policy (shared config so frontends and
  // tests agree on deadlines).
  RetryPolicy retry;
  // Degraded SDN mode: how stale a cached mapping may be and still be
  // served while the controller is unreachable.
  sim::Time cache_staleness_bound = sim::seconds(5);
  // Host-agent resolve batching (DESIGN.md §12): how long a leader miss
  // waits for same-shard company before the agent flushes the lane as one
  // Controller::query_batch. 0 = pass-through (the calibrated default:
  // every miss pays its own controller RTT, exactly the pre-agent trace).
  sim::Time resolve_batch_window = 0;
  // Fault plane, or null for a fault-free run. Not owned; must outlive
  // the backend. Wired through to the mapping cache's expiry probe and
  // the per-command failure site.
  sim::FaultPlane* faults = nullptr;
  // Warm-path pool knobs; frontends consult this at construction.
  WarmPoolConfig warm;
};

class Backend {
 public:
  Backend(sim::EventLoop& loop, rnic::RnicDevice& device,
          sdn::Controller& controller, overlay::VirtualNetwork& vnet,
          BackendConfig config = {});
  // Unsubscribes from the controller before members are torn down: session
  // teardown (vBond release) triggers unregister_vgid broadcasts, and the
  // controller must never call into a backend that is mid-destruction.
  ~Backend();
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // One Session per served VM — the state the backend keeps for a tenant
  // instance (assigned function, kernel-driver handle, vBond).
  class Session {
   public:
    Session(Backend& backend, hyp::Vm& vm, rnic::FnId fn);

    // Processes one frontend command. The virtqueue transit time is
    // charged by the frontend; this charges backend processing + the
    // kernel driver + any RConnrename/RConntrack work. A CmdBatch is
    // drained in one wakeup: entries run in submission order through the
    // exact per-command path (RConntrack verdicts, RConnrename rewrites
    // and tenant-view updates are identical to solo submission) and one
    // failed entry does not poison its batchmates.
    sim::Task<Response> handle(Command cmd);

    // Envelope entry point (what the virtqueue delivers): idempotent
    // command handling. A cmd_id the session already executed returns the
    // memoized response; one still executing coalesces onto its in-flight
    // future — so a frontend retry racing the original, or a duplicated
    // descriptor, never runs a command twice. Retryable (transient)
    // responses — injected via FaultPlane::fail_command or a real
    // kUnavailable — are NOT memoized, so a backoff retry under the same
    // cmd_id re-executes instead of replaying the failure.
    sim::Task<Response> handle(Envelope env);

    std::uint64_t dedup_hits() const { return dedup_hits_; }

    // Live-object accounting: RNIC objects this session currently holds,
    // by kind. The warm pool's lazy teardown is proven against these —
    // parked connections keep live_qps high until the idle reclaim fires,
    // then the counts settle back to the application's working set.
    std::uint64_t live_qps() const { return live_qps_; }
    std::uint64_t live_cqs() const { return live_cqs_; }
    std::uint64_t live_mrs() const { return live_mrs_; }
    std::uint64_t qps_created() const { return qps_created_; }
    std::uint64_t qps_destroyed() const { return qps_destroyed_; }

    Backend& backend() { return backend_; }
    hyp::Vm& vm() { return vm_; }
    rnic::FnId fn() const { return fn_; }
    verbs::KernelDriver& driver() { return driver_; }
    VBond& vbond() { return vbond_; }
    std::uint32_t vni() const { return vm_.config().vni; }

    // Object inventory: the RNIC object IDs this tenant currently owns, in
    // creation order. Live migration enumerates these to know exactly what
    // must move with the VM (the live_* counters alone only say how many).
    const sim::FlatSet<rnic::Qpn>& owned_qps() const { return owned_qps_; }
    const sim::FlatSet<rnic::Cqn>& owned_cqs() const { return owned_cqs_; }
    const sim::FlatSet<rnic::Key>& owned_mrs() const { return owned_mrs_; }
    const sim::FlatSet<rnic::PdId>& owned_pds() const { return owned_pds_; }
    const sim::FlatMap<rnic::Qpn, rnic::QpAttr>& tenant_view() const {
      return tenant_view_;
    }

    // Live-migration adoption: accounts a restored object to this session
    // (the device-level restore already happened). adopt_qp re-installs
    // the tenant's virtual-address view of the QPC when the source session
    // had one — the hardware view moved with the device snapshot.
    void adopt_qp(rnic::Qpn qpn, const rnic::QpAttr* tenant_attr);
    void adopt_cq(rnic::Cqn cq);
    void adopt_mr(rnic::Key lkey);
    void adopt_pd(rnic::PdId pd);

    // Lets the frontend's LayerProfile observe backend-side charges.
    void set_profile(verbs::LayerProfile* profile);

    // Not forwarded over virtio (Table 1: pure software).
    sim::Task<Response> alloc_pd_local();
    sim::Task<Response> dealloc_pd_local(rnic::PdId pd);

   private:
    // One non-batch command through dispatch + MasQ-driver charge.
    sim::Task<Response> handle_one(BatchableCommand cmd);
    // Drains a whole batch in one backend wakeup.
    sim::Task<Response> handle_batch(CmdBatch batch);
    sim::Task<Response> on_reg_mr(const CmdRegMr& cmd);
    sim::Task<Response> on_query_qp(const CmdQueryQp& cmd);
    sim::Task<Response> on_create_cq(const CmdCreateCq& cmd);
    sim::Task<Response> on_create_qp(const CmdCreateQp& cmd);
    sim::Task<Response> on_modify_qp(const CmdModifyQp& cmd);
    sim::Task<Response> on_destroy_qp(const CmdDestroyQp& cmd);
    sim::Task<Response> on_destroy_cq(const CmdDestroyCq& cmd);
    sim::Task<Response> on_dereg_mr(const CmdDeregMr& cmd);
    sim::Task<Response> on_ud_send(const CmdUdSend& cmd);

    Backend& backend_;
    hyp::Vm& vm_;
    rnic::FnId fn_;
    verbs::KernelDriver driver_;
    VBond vbond_;
    verbs::LayerProfile* profile_ = nullptr;
    // The tenant's view of each QPC — virtual addresses as the application
    // configured them, maintained alongside the renamed hardware view.
    sim::FlatMap<rnic::Qpn, rnic::QpAttr> tenant_view_;
    // Idempotency window: memoized responses by cmd_id, FIFO-evicted. The
    // window only has to outlive a frontend's bounded retries, not the
    // session.
    static constexpr std::size_t kDedupWindow = 1024;
    sim::FlatMap<std::uint64_t, Response> completed_cmds_;
    std::deque<std::uint64_t> completed_order_;
    // cmd_id -> future of the execution currently in flight.
    sim::FlatMap<std::uint64_t, sim::Future<Response>> inflight_cmds_;
    std::uint64_t dedup_hits_ = 0;
    std::uint64_t live_qps_ = 0;
    std::uint64_t live_cqs_ = 0;
    std::uint64_t live_mrs_ = 0;
    std::uint64_t qps_created_ = 0;
    std::uint64_t qps_destroyed_ = 0;
    sim::FlatSet<rnic::Qpn> owned_qps_;
    sim::FlatSet<rnic::Cqn> owned_cqs_;
    sim::FlatSet<rnic::Key> owned_mrs_;
    sim::FlatSet<rnic::PdId> owned_pds_;
  };

  // Registers a VM with this backend: assigns a device function by the
  // QoS grouping policy and boots the session's vBond.
  Session& register_vm(hyp::Vm& vm);

  // Live-migration handover: detaches and destroys `session`. The caller
  // must have released the session's vBond first if the (VNI, vGID)
  // registration is to survive the teardown, and must not hold references
  // into the session afterwards.
  void remove_session(Session& session);

  // QoS (§3.3.3): programs the hardware rate limiter of a tenant's VF.
  void set_tenant_rate_limit(std::uint32_t vni, double gbps);
  rnic::FnId tenant_fn(std::uint32_t vni);

  sim::EventLoop& loop() { return loop_; }
  rnic::RnicDevice& device() { return device_; }
  sdn::Controller& controller() { return controller_; }
  // The host's SDN tier: the agent owns the mapping cache and (when a
  // batch window is configured) batches its leader misses per shard.
  sdn::HostAgent& host_agent() { return agent_; }
  sdn::MappingCache& mapping_cache() { return agent_.cache(); }
  RConntrack& conntrack() { return conntrack_; }
  const BackendConfig& config() const { return config_; }
  sim::FaultPlane* faults() { return config_.faults; }

  // QP-ERROR purges scheduled but not yet applied to the RConntrack table.
  // While nonzero, an RConntrack row referencing an ERROR'd QP is a
  // not-yet-drained repair, not an invariant violation (src/check).
  std::uint64_t pending_qp_purges() const { return pending_qp_purges_; }

 private:
  // Runs the deferred purge and then settles the pending count (guarded by
  // the liveness flag: the loop may drain this after the backend died).
  sim::Task<void> purge_and_settle(rnic::Qpn qpn,
                                   std::weak_ptr<const char> alive);
  sim::EventLoop& loop_;
  rnic::RnicDevice& device_;
  sdn::Controller& controller_;
  overlay::VirtualNetwork& vnet_;
  BackendConfig config_;
  sdn::HostAgent agent_;
  sdn::Controller::SubId push_sub_ = 0;
  rnic::RnicDevice::QpErrorHookId qp_error_sub_ = 0;
  // Keeps loop callbacks deferred by the qp-error hook from touching a
  // destroyed backend: they capture a weak_ptr and stand down once this
  // is reset.
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>(0);
  RConntrack conntrack_;
  sim::FlatMap<std::uint32_t, rnic::FnId> tenant_fn_;
  rnic::FnId next_vf_ = 1;
  std::uint64_t pending_qp_purges_ = 0;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace masq
