// The command protocol between MasQ's frontend driver (in the VM) and
// backend driver (on the host), carried over a virtio virtqueue (Fig. 2).
// Only control-path verbs appear here — data-path operations never cross
// this channel (§3.1), with the single documented exception of UD WQEs
// (§3.3.4), which are forwarded so that RConnrename can rewrite their
// per-WQE destination.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "mem/physical_memory.h"
#include "net/addr.h"
#include "rnic/types.h"
#include "sim/time.h"

namespace masq {

struct CmdRegMr {
  rnic::PdId pd = 0;
  mem::Addr gva = 0;  // guest VA; the frontend ships (GVA, GPA) mappings
  std::uint64_t len = 0;
  std::uint32_t access = 0;
};

struct CmdCreateCq {
  int cqe = 0;
};

struct CmdCreateQp {
  rnic::QpInitAttr attr;
};

struct CmdModifyQp {
  rnic::Qpn qpn = 0;
  rnic::QpAttr attr;  // dest_gid is *virtual* here; the backend renames it
  std::uint32_t mask = 0;
};

struct CmdDestroyQp {
  rnic::Qpn qpn = 0;
};

// ibv_query_qp: returns the *tenant's* view of the QPC — RConnrename keeps
// the virtual addresses the application configured, even though the
// hardware QPC holds physical ones ("two different views of the same QPC",
// §3.3.1).
struct CmdQueryQp {
  rnic::Qpn qpn = 0;
};

struct CmdDestroyCq {
  rnic::Cqn cq = 0;
};

struct CmdDeregMr {
  rnic::Key lkey = 0;
};

// §3.3.4: a UD datagram WQE forwarded through the control path so the
// backend can rename the destination before handing it to the device.
struct CmdUdSend {
  rnic::Qpn qpn = 0;
  rnic::SendWr wr;
};

// A single (non-batch) command. Batches carry these, so batches cannot
// nest by construction.
using BatchableCommand =
    std::variant<CmdRegMr, CmdCreateCq, CmdCreateQp, CmdModifyQp, CmdQueryQp,
                 CmdDestroyQp, CmdDestroyCq, CmdDeregMr, CmdUdSend>;

// In-batch result references: connection setup is a dependency chain
// (create_qp needs the CQ created two slots earlier; modify_qp needs the
// QP created one slot earlier), so a batch entry may declare that a field
// is filled from an *earlier* entry's response instead of carrying a
// concrete value. The backend resolves links while draining the batch —
// this is what lets reg_mr -> create_cq -> create_qp -> modify_qp ship as
// one descriptor batch instead of four dependent round trips.
struct BatchLink {
  int send_cq_from = -1;  // CmdCreateQp: attr.send_cq <- response[v0]
  int recv_cq_from = -1;  // CmdCreateQp: attr.recv_cq <- response[v0]
  int qpn_from = -1;      // CmdModifyQp/QueryQp/DestroyQp: qpn <- response[v0]

  bool any() const {
    return send_cq_from >= 0 || recv_cq_from >= 0 || qpn_from >= 0;
  }
};

// A batch of commands submitted as one virtqueue transit (one kick, one
// interrupt). The backend drains it per wakeup, preserving per-command
// semantics: each entry runs the exact same RConntrack/RConnrename path it
// would have run solo, and one failed entry must not poison its
// batchmates — every entry gets its own Response.
struct CmdBatch {
  std::vector<BatchableCommand> cmds;
  std::vector<BatchLink> links;  // parallel to cmds; may be shorter (no links)
};

using Command = std::variant<CmdRegMr, CmdCreateCq, CmdCreateQp, CmdModifyQp,
                             CmdQueryQp, CmdDestroyQp, CmdDestroyCq,
                             CmdDeregMr, CmdUdSend, CmdBatch>;

struct Response {
  rnic::Status status = rnic::Status::kOk;
  std::uint64_t v0 = 0;  // pd / lkey / cqn / qpn, depending on the command
  std::uint64_t v1 = 0;
  rnic::QpAttr attr;     // CmdQueryQp only
  // CmdBatch only: one Response per batch entry, in submission order.
  // status above is kOk iff every entry succeeded (first error otherwise).
  std::vector<Response> batch;
};

// What actually crosses the virtqueue: the command plus a frontend-chosen
// command id. Retried submissions reuse the id, so the backend can
// recognise a command it already executed (a retry racing the original, a
// duplicated descriptor) and replay the memoized response instead of
// executing twice. Id 0 opts out of deduplication.
struct Envelope {
  std::uint64_t cmd_id = 0;
  Command cmd;
};

// Frontend retry policy for control verbs. Transient failures
// (rnic::is_retryable) and per-attempt timeouts are retried with
// exponential backoff and jitter until max_attempts or the per-verb
// deadline — whichever comes first — after which the verb fails with
// kDeadlineExceeded rather than hanging.
struct RetryPolicy {
  int max_attempts = 4;
  // Per-attempt response timeout (covers a dropped descriptor).
  sim::Time attempt_timeout = sim::milliseconds(5);
  sim::Time base_backoff = sim::microseconds(100);
  double backoff_multiplier = 2.0;
  // Backoff is scaled by 1 + U[0, jitter_frac).
  double jitter_frac = 0.5;
  // Hard wall-clock bound for one verb, all attempts included.
  sim::Time verb_deadline = sim::milliseconds(50);
};

}  // namespace masq
