// The command protocol between MasQ's frontend driver (in the VM) and
// backend driver (on the host), carried over a virtio virtqueue (Fig. 2).
// Only control-path verbs appear here — data-path operations never cross
// this channel (§3.1), with the single documented exception of UD WQEs
// (§3.3.4), which are forwarded so that RConnrename can rewrite their
// per-WQE destination.
#pragma once

#include <cstdint>
#include <variant>

#include "mem/physical_memory.h"
#include "net/addr.h"
#include "rnic/types.h"

namespace masq {

struct CmdRegMr {
  rnic::PdId pd = 0;
  mem::Addr gva = 0;  // guest VA; the frontend ships (GVA, GPA) mappings
  std::uint64_t len = 0;
  std::uint32_t access = 0;
};

struct CmdCreateCq {
  int cqe = 0;
};

struct CmdCreateQp {
  rnic::QpInitAttr attr;
};

struct CmdModifyQp {
  rnic::Qpn qpn = 0;
  rnic::QpAttr attr;  // dest_gid is *virtual* here; the backend renames it
  std::uint32_t mask = 0;
};

struct CmdDestroyQp {
  rnic::Qpn qpn = 0;
};

// ibv_query_qp: returns the *tenant's* view of the QPC — RConnrename keeps
// the virtual addresses the application configured, even though the
// hardware QPC holds physical ones ("two different views of the same QPC",
// §3.3.1).
struct CmdQueryQp {
  rnic::Qpn qpn = 0;
};

struct CmdDestroyCq {
  rnic::Cqn cq = 0;
};

struct CmdDeregMr {
  rnic::Key lkey = 0;
};

// §3.3.4: a UD datagram WQE forwarded through the control path so the
// backend can rename the destination before handing it to the device.
struct CmdUdSend {
  rnic::Qpn qpn = 0;
  rnic::SendWr wr;
};

using Command = std::variant<CmdRegMr, CmdCreateCq, CmdCreateQp, CmdModifyQp,
                             CmdQueryQp, CmdDestroyQp, CmdDestroyCq,
                             CmdDeregMr, CmdUdSend>;

struct Response {
  rnic::Status status = rnic::Status::kOk;
  std::uint64_t v0 = 0;  // pd / lkey / cqn / qpn, depending on the command
  std::uint64_t v1 = 0;
  rnic::QpAttr attr;     // CmdQueryQp only
};

}  // namespace masq
