#include "masq/warm_pool.h"

namespace masq {

namespace {
constexpr std::uint32_t kSlabAccess =
    rnic::kLocalWrite | rnic::kRemoteWrite | rnic::kRemoteRead;
}  // namespace

WarmPool::WarmPool(verbs::Context& ctx, WarmPoolConfig cfg)
    : ctx_(ctx), cfg_(cfg) {}

WarmPool::~WarmPool() {
  // Detached stage/refill/teardown tasks and pending reclaim timers hold a
  // weak token; dropping the strong reference stands them all down.
  liveness_.reset();
}

void WarmPool::start() { kick_refill(); }

void WarmPool::kick_refill() {
  if (!staged_) {
    if (staging_) return;
    staging_ = true;
    ctx_.loop().spawn(stage_task(this, liveness_));
    return;
  }
  if (refilling_ || ready_.size() >= cfg_.target_ready) return;
  refilling_ = true;
  ctx_.loop().spawn(refill_task(this, liveness_));
}

sim::Task<void> WarmPool::stage_task(WarmPool* self,
                                     std::weak_ptr<const char> alive) {
  auto pd = co_await self->ctx_.alloc_pd();
  if (alive.expired()) co_return;
  if (!pd.ok()) {
    // Stay cold; the next acquire() kicks staging again.
    self->staging_ = false;
    co_return;
  }
  self->pd_ = pd.value;
  self->slab_ = self->ctx_.alloc_buffer(self->cfg_.slab_bytes);
  auto mr = co_await self->ctx_.reg_mr(self->pd_, self->slab_,
                                       self->cfg_.slab_bytes, kSlabAccess);
  if (alive.expired()) co_return;
  self->staging_ = false;
  if (!mr.ok()) co_return;
  self->slab_mr_ = mr.value;
  self->staged_ = true;
  self->refilling_ = true;
  co_await refill_task(self, std::move(alive));
}

sim::Task<void> WarmPool::refill_task(WarmPool* self,
                                      std::weak_ptr<const char> alive) {
  while (self->ready_.size() < self->cfg_.target_ready) {
    // One staged endpoint per ladder: CQ pair + QP + INIT, pipelined as a
    // single batch so refill costs one virtqueue transit under MasQ.
    auto batch = self->ctx_.make_batch();
    const int scq_slot = batch->create_cq(self->cfg_.cqe);
    const int rcq_slot = batch->create_cq(self->cfg_.cqe);
    rnic::QpInitAttr attr;
    attr.type = rnic::QpType::kRc;
    attr.pd = self->pd_;
    attr.caps.max_send_wr = 512;
    attr.caps.max_recv_wr = 512;
    const int qp_slot = batch->create_qp(attr, scq_slot, rcq_slot);
    rnic::QpAttr init;
    init.state = rnic::QpState::kInit;
    const int init_slot = batch->modify_qp_slot(qp_slot, init,
                                                rnic::kAttrState);
    const rnic::Status st = co_await batch->commit();
    if (alive.expired()) co_return;
    if (st != rnic::Status::kOk ||
        batch->status(init_slot) != rnic::Status::kOk) {
      // Degrade: unwind whatever half-built state the batch left behind
      // and let a later acquire() try again.
      ++self->refill_failures_;
      Slot partial;
      if (batch->status(scq_slot) == rnic::Status::kOk) {
        partial.scq = static_cast<rnic::Cqn>(batch->value(scq_slot));
      }
      if (batch->status(rcq_slot) == rnic::Status::kOk) {
        partial.rcq = static_cast<rnic::Cqn>(batch->value(rcq_slot));
      }
      if (batch->status(qp_slot) == rnic::Status::kOk) {
        partial.qpn = static_cast<rnic::Qpn>(batch->value(qp_slot));
      }
      self->teardown_in_background(partial);
      break;
    }
    Slot s;
    s.scq = static_cast<rnic::Cqn>(batch->value(scq_slot));
    s.rcq = static_cast<rnic::Cqn>(batch->value(rcq_slot));
    s.qpn = static_cast<rnic::Qpn>(batch->value(qp_slot));
    self->ready_.push_back(s);
    ++self->refills_;
    if (self->ready_.size() >= self->cfg_.target_ready) break;
    co_await sim::delay(self->ctx_.loop(), self->cfg_.refill_gap);
    if (alive.expired()) co_return;
  }
  self->refilling_ = false;
}

sim::Task<void> WarmPool::teardown_task(WarmPool* self, Slot s,
                                        std::weak_ptr<const char> alive) {
  // Cold-path teardown of a pool-owned endpoint. The slab MR and PD stay
  // with the pool. Statuses are advisory: an already-destroyed or ERROR'd
  // object just reports a failure we can't act on.
  verbs::Context& ctx = self->ctx_;
  if (s.qpn != 0) {
    (void)co_await ctx.destroy_qp(s.qpn);
    if (alive.expired()) co_return;
  }
  if (s.scq != 0) {
    (void)co_await ctx.destroy_cq(s.scq);
    if (alive.expired()) co_return;
  }
  if (s.rcq != 0) (void)co_await ctx.destroy_cq(s.rcq);
}

void WarmPool::teardown_in_background(const Slot& s) {
  if (s.qpn == 0 && s.scq == 0 && s.rcq == 0) return;
  ctx_.loop().spawn(teardown_task(this, s, liveness_));
}

sim::Task<verbs::WarmEndpoint> WarmPool::acquire(const net::Gid& peer_gid) {
  if (auto it = parked_.find(peer_gid); it != parked_.end()) {
    const Parked p = it->second;
    parked_.erase(peer_gid);
    ++reuse_hits_;
    verbs::WarmEndpoint ep;
    ep.kind = verbs::WarmKind::kReused;
    ep.pd = pd_;
    ep.send_cq = p.slot.scq;
    ep.recv_cq = p.slot.rcq;
    ep.qpn = p.slot.qpn;
    ep.peer_qpn = p.peer_qpn;
    ep.mr = slab_mr_;
    co_return ep;
  }
  if (!ready_.empty()) {
    const Slot s = ready_.front();
    ready_.erase(ready_.begin());
    kick_refill();
    ++pool_hits_;
    verbs::WarmEndpoint ep;
    ep.kind = verbs::WarmKind::kPooled;
    ep.pd = pd_;
    ep.send_cq = s.scq;
    ep.recv_cq = s.rcq;
    ep.qpn = s.qpn;
    ep.mr = slab_mr_;
    co_return ep;
  }
  ++pool_misses_;
  kick_refill();
  co_return verbs::WarmEndpoint{};
}

sim::Task<void> WarmPool::release(verbs::WarmEndpoint ep,
                                  const net::Gid& peer_gid,
                                  rnic::Qpn peer_qpn) {
  if (!ep.warm()) co_return;
  if (auto it = parked_.find(peer_gid); it != parked_.end()) {
    // A fresher connection to the same peer supersedes the parked one.
    teardown_in_background(it->second.slot);
    parked_.erase(peer_gid);
  } else if (parked_.size() >= cfg_.max_parked) {
    // Evict the longest-parked entry (smallest stamp) to make room.
    auto oldest = parked_.end();
    for (auto jt = parked_.begin(); jt != parked_.end(); ++jt) {
      if (oldest == parked_.end() ||
          jt->second.stamp < oldest->second.stamp) {
        oldest = jt;
      }
    }
    if (oldest != parked_.end()) {
      teardown_in_background(oldest->second.slot);
      const net::Gid evict = oldest->first;
      parked_.erase(evict);
    }
  }
  Parked p;
  p.slot = Slot{ep.send_cq, ep.recv_cq, ep.qpn};
  p.peer_qpn = peer_qpn;
  p.stamp = ++stamp_seq_;
  parked_[peer_gid] = p;
  schedule_reclaim(peer_gid, p.stamp);
  co_return;
}

void WarmPool::schedule_reclaim(net::Gid gid, std::uint64_t stamp) {
  std::weak_ptr<const char> alive = liveness_;
  ctx_.loop().schedule_after(cfg_.reclaim_after, [this, gid, stamp, alive] {
    if (alive.expired()) return;
    auto it = parked_.find(gid);
    if (it == parked_.end() || it->second.stamp != stamp) return;
    // Idle past the bound: lazy teardown fires now.
    teardown_in_background(it->second.slot);
    parked_.erase(gid);
    ++reclaimed_;
  });
}

sim::Task<void> WarmPool::discard(verbs::WarmEndpoint ep) {
  if (!ep.warm()) co_return;
  teardown_in_background(Slot{ep.send_cq, ep.recv_cq, ep.qpn});
  co_return;
}

void WarmPool::invalidate(const net::Gid& peer_gid) {
  auto it = parked_.find(peer_gid);
  if (it == parked_.end()) return;
  teardown_in_background(it->second.slot);
  parked_.erase(peer_gid);
  ++purged_;
}

void WarmPool::on_qp_error(rnic::Qpn qpn) {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->qpn == qpn) {
      const Slot s = *it;
      ready_.erase(it);
      ++purged_;
      teardown_in_background(s);
      kick_refill();
      return;
    }
  }
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->second.slot.qpn == qpn) {
      const Slot s = it->second.slot;
      const net::Gid gid = it->first;
      parked_.erase(gid);
      ++purged_;
      teardown_in_background(s);
      return;
    }
  }
}

}  // namespace masq
