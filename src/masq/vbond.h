// vBond (§3.3.1) — binds a VM's virtual Ethernet interface and virtual
// RDMA interface into one virtual RoCE device.
//
// On initialization it reads the vEth's (immutable) MAC and current IP,
// derives the virtual GID, and registers (VNI, vGID) -> physical GID with
// the SDN controller. It then sits on the guest's inetaddr notification
// chain: whenever the vEth IP changes, the GID and the controller mapping
// are refreshed. Applications querying their GID get this virtual GID —
// they never see underlay addresses.
#pragma once

#include "net/addr.h"
#include "sdn/controller.h"

namespace masq {

class VBond {
 public:
  VBond(sdn::Controller& controller, std::uint32_t vni, net::MacAddr veth_mac,
        net::Gid physical_gid)
      : controller_(controller),
        vni_(vni),
        veth_mac_(veth_mac),
        physical_gid_(physical_gid) {}

  ~VBond() {
    if (!vgid_.is_zero()) controller_.unregister_vgid(vni_, vgid_);
  }

  VBond(const VBond&) = delete;
  VBond& operator=(const VBond&) = delete;

  // Initial bind: the vEth already has a valid IP, so the GID can be
  // initialized immediately and pushed to the controller.
  void bind(net::Ipv4Addr veth_ip) { on_inetaddr_event(veth_ip); }

  // The inetaddr notification-chain callback: refreshes the GID when the
  // vEth address changes.
  void on_inetaddr_event(net::Ipv4Addr new_ip) {
    if (!vgid_.is_zero()) controller_.unregister_vgid(vni_, vgid_);
    veth_ip_ = new_ip;
    vgid_ = net::Gid::from_ipv4(new_ip);
    controller_.register_vgid(vni_, vgid_, physical_gid_);
  }

  // Hands ownership of the (VNI, vGID) registration to a successor vBond
  // (live migration: the VM's identity moves to another host's backend).
  // After release() this instance no longer unregisters on destruction.
  void release() { vgid_ = net::Gid{}; }

  net::Gid vgid() const { return vgid_; }
  net::Ipv4Addr veth_ip() const { return veth_ip_; }
  net::MacAddr veth_mac() const { return veth_mac_; }
  bool bound() const { return !vgid_.is_zero(); }

 private:
  sdn::Controller& controller_;
  std::uint32_t vni_;
  net::MacAddr veth_mac_;
  net::Gid physical_gid_;
  net::Ipv4Addr veth_ip_;
  net::Gid vgid_;
};

}  // namespace masq
