// MasQ frontend driver — the verbs::Context a guest application sees.
//
// Control-path verbs marshal into commands and cross the virtio virtqueue
// to the backend (~20 us round trip, Table 1). Data-path verbs touch only
// memory the hypervisor mapped straight through: WQEs are written into the
// device queues and the doorbell is rung via the guest-mapped MMIO BAR
// (Appendix B.1) — no VM exit, no host software, which is the entire point
// of the design (§3.1).
#pragma once

#include <memory>

#include "hyp/instance.h"
#include "masq/backend.h"
#include "masq/commands.h"
#include "overlay/oob.h"
#include "sim/rng.h"
#include "sim/flat_map.h"
#include "verbs/api.h"
#include "virtio/virtqueue.h"

namespace masq {

class MasqBatch;
class WarmPool;

class MasqContext : public verbs::Context {
 public:
  MasqContext(Backend::Session& session, overlay::OobEndpoint& oob,
              virtio::ChannelCosts virtio_costs = {});
  // Unhooks the QP-ERROR subscription and tears the warm pool's liveness
  // down before the device/backend go away.
  ~MasqContext() override;

  std::string name() const override { return "MasQ"; }
  sim::EventLoop& loop() override { return session_->backend().loop(); }

  mem::Addr alloc_buffer(std::uint64_t len) override {
    return session_->vm().alloc_guest_buffer(len);
  }
  void write_buffer(mem::Addr addr,
                    std::span<const std::uint8_t> in) override {
    session_->vm().write_guest(addr, in);
  }
  void read_buffer(mem::Addr addr, std::span<std::uint8_t> out) override {
    session_->vm().read_guest(addr, out);
  }

  sim::Task<rnic::Expected<rnic::PdId>> alloc_pd() override;
  sim::Task<rnic::Expected<verbs::MrHandle>> reg_mr(
      rnic::PdId pd, mem::Addr addr, std::uint64_t len,
      std::uint32_t access) override;
  sim::Task<rnic::Expected<rnic::Cqn>> create_cq(int cqe) override;
  sim::Task<rnic::Expected<rnic::Qpn>> create_qp(
      const rnic::QpInitAttr& attr) override;
  sim::Task<rnic::Status> modify_qp(rnic::Qpn qpn, const rnic::QpAttr& attr,
                                    std::uint32_t mask) override;
  sim::Task<rnic::Expected<net::Gid>> query_gid() override;
  sim::Task<rnic::Expected<rnic::QpAttr>> query_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_qp(rnic::Qpn qpn) override;
  sim::Task<rnic::Status> destroy_cq(rnic::Cqn cq) override;
  sim::Task<rnic::Status> dereg_mr(const verbs::MrHandle& mr) override;
  sim::Task<rnic::Status> dealloc_pd(rnic::PdId pd) override;

  [[nodiscard]] rnic::Status post_send(rnic::Qpn qpn,
                                       const rnic::SendWr& wr) override;
  [[nodiscard]] rnic::Status post_recv(rnic::Qpn qpn,
                                       const rnic::RecvWr& wr) override;
  int poll_cq(rnic::Cqn cq, int max_entries,
              rnic::Completion* out) override;
  sim::Future<bool> cq_nonempty(rnic::Cqn cq) override;
  sim::Future<bool> next_rx_event(rnic::Qpn qpn) override {
    return session_->backend().device().next_rx_event(qpn);
  }
  sim::Time data_verb_call_time(verbs::DataVerb v) const override;

  overlay::OobEndpoint& oob() override { return oob_; }
  sim::Time scale_compute(sim::Time host_time) const override {
    return session_->vm().compute(host_time);
  }

  // Pipelined control path: queued verbs ship as one CmdBatch in a single
  // virtqueue transit (one kick + one interrupt for the whole batch, with
  // in-batch slot links for dependent verbs). Batches wider than the ring
  // are chunked to ring size so descriptor backpressure still holds.
  std::unique_ptr<verbs::ControlBatch> make_batch() override;

  // Warm-path connection setup (DESIGN.md §14): forwarded to the pool when
  // BackendConfig.warm.enabled constructed one; cold answers otherwise.
  sim::Task<verbs::WarmEndpoint> acquire_warm(
      const net::Gid& peer_gid) override;
  sim::Task<void> release_warm(const verbs::WarmEndpoint& ep,
                               const net::Gid& peer_gid,
                               rnic::Qpn peer_qpn) override;
  sim::Task<void> discard_warm(const verbs::WarmEndpoint& ep) override;
  void invalidate_warm(const net::Gid& peer_gid) override;
  // Null unless the warm path is enabled.
  WarmPool* warm_pool() { return warm_pool_.get(); }

  Backend::Session& session() { return *session_; }
  virtio::Virtqueue<Envelope, Response>& virtqueue() { return vq_; }

  // --- Live migration (DESIGN.md §15) -----------------------------------
  // The Migrator drives these four in order. begin_migration() closes the
  // control-path gate: new verbs park on a promise instead of entering the
  // virtqueue, so the queue can drain to empty and stay empty. unbind()
  // detaches from the source session (QP-ERROR hook off the old device,
  // session pointer nulled) just before the source Vm is destroyed;
  // rebind() attaches to the freshly registered destination session and
  // remaps the doorbell BAR into the new guest address space.
  // end_migration() reopens the gate and releases every parked caller.
  void begin_migration() { migration_gate_ = true; }
  void end_migration();
  void unbind();
  void rebind(Backend::Session& session);
  bool migration_in_progress() const { return migration_gate_; }

  // Control-path verbs that needed at least one retry (transient failure
  // or attempt timeout).
  std::uint64_t control_retries() const { return control_retries_; }
  // Verbs that exhausted their retry budget and failed kDeadlineExceeded.
  std::uint64_t deadline_failures() const { return deadline_failures_; }
  // UD post_sends routed through the control path (§3.3.4) — observable
  // for the qp_types_ routing table: a UD QP whose entry was lost would
  // stop incrementing this and fall through to the data path.
  std::uint64_t ud_control_sends() const { return ud_control_sends_; }

 private:
  friend class MasqBatch;
  using CallOutcome = virtio::Virtqueue<Envelope, Response>::CallOutcome;

  // Charges the user-space library share of a verb and records it.
  sim::Task<void> lib_charge(const char* verb, sim::Time t);
  // lib charge + virtqueue round trip + backend handling (with retries).
  sim::Task<Response> call(const char* verb, sim::Time lib_time, Command cmd);

  // One virtqueue attempt. Under a fault plane the per-attempt deadline is
  // armed (a dropped descriptor resumes as timed_out); without one the
  // plain never-times-out path is used so fault-free runs keep an
  // identical event stream.
  sim::Task<CallOutcome> attempt(Envelope env, int weight,
                                 sim::Time attempt_deadline);
  // Bounded retry with exponential backoff + jitter and a per-verb
  // deadline. Retries transient failures (rnic::is_retryable) and attempt
  // timeouts under the same cmd_id — the backend's dedup makes the retry
  // idempotent. Exhaustion surfaces as kDeadlineExceeded, never a hang.
  sim::Task<Response> submit(Command cmd, int weight = 1);
  // Chunk submission for MasqBatch: retries only *timeouts* (lost
  // descriptors); per-entry errors are returned to the batch layer, which
  // runs its own entry-level retry rounds.
  sim::Task<Response> submit_chunk(CmdBatch chunk, int weight);
  // Backoff before retry `attempt` (1-based), jittered.
  sim::Time backoff_delay(int attempt);

  // Pointer, not reference: live migration detaches the context from the
  // source session (unbind) and reattaches it to the destination session
  // (rebind). Null only inside the migration atomic section.
  Backend::Session* session_;
  overlay::OobEndpoint& oob_;
  virtio::Virtqueue<Envelope, Response> vq_;
  mem::Addr doorbell_gva_ = 0;  // device BAR mapped into the guest
  // Control-path gate: while set, submit()/submit_chunk() park on a
  // promise before touching the virtqueue. Closed by begin_migration(),
  // reopened (waiters released) by end_migration().
  bool migration_gate_ = false;
  std::vector<sim::Promise<bool>> gate_waiters_;
  // Warm-pool staleness subscriptions (satellite fix): a peer that
  // migrates re-registers its unchanged vGID against a new physical GID;
  // both the re-push and any explicit invalidation must purge parked
  // pairs toward that peer, or the next acquire() would hand out a QP
  // wired to the peer's old host. Zero when no warm pool exists.
  sdn::Controller::SubId warm_push_sub_ = 0;
  sdn::Controller::SubId warm_inval_sub_ = 0;
  sim::FlatMap<rnic::Qpn, rnic::QpType> qp_types_;
  std::uint64_t next_cmd_id_ = 1;
  sim::Rng jitter_rng_;
  std::uint64_t control_retries_ = 0;
  std::uint64_t deadline_failures_ = 0;
  std::uint64_t ud_control_sends_ = 0;
  rnic::RnicDevice::QpErrorHookId qp_error_hook_ = 0;
  std::unique_ptr<WarmPool> warm_pool_;
};

}  // namespace masq
