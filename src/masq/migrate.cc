#include "masq/migrate.h"

#include <span>
#include <string>
#include <utility>

#include "mem/address_space.h"

namespace masq {

namespace {

// One peer QP on some device (the far end of an RC connection).
struct PeerRef {
  rnic::RnicDevice* dev = nullptr;
  rnic::Qpn qpn = 0;
};

bool contains(const std::vector<PeerRef>& v, const rnic::RnicDevice* dev,
              rnic::Qpn qpn) {
  for (const PeerRef& p : v) {
    if (p.dev == dev && p.qpn == qpn) return true;
  }
  return false;
}

bool connected(rnic::QpState st) {
  return st == rnic::QpState::kRtr || st == rnic::QpState::kRts ||
         st == rnic::QpState::kSqd;
}

}  // namespace

void Migrator::fail_invariant(std::string_view point, std::string diagnostic) {
  if (env_.report_violation) {
    env_.report_violation("migration-wqe", point, std::move(diagnostic));
  }
}

sim::Task<rnic::Status> Migrator::run() {
  sim::EventLoop& loop = *env_.loop;
  MasqContext& ctx = *env_.ctx;
  Backend& src = *env_.source;
  Backend& dst = *env_.destination;
  rnic::RnicDevice& src_dev = src.device();
  rnic::RnicDevice& dst_dev = dst.device();
  Backend::Session& old_session = ctx.session();
  const sim::Time t0 = loop.now();

  // --- 1. Gate: no new control verbs enter the virtqueue. ----------------
  ctx.begin_migration();

  // --- 2+3. Quiesce and drain. -------------------------------------------
  // The pause sweep is idempotent and re-runs every poll: commands already
  // inside the virtqueue when the gate closed may still create QPs or
  // drive them to RTS mid-drain, and those must be paused too before the
  // fabric can run dry.
  std::vector<rnic::Qpn> own_paused;
  std::vector<PeerRef> peer_paused;
  auto pause_sweep = [&]() {
    const rnic::QpAttr sqd{.state = rnic::QpState::kSqd};
    for (rnic::Qpn q : old_session.owned_qps()) {
      if (!src_dev.qp_exists(q)) continue;
      if (src_dev.qp_state(q) == rnic::QpState::kRts &&
          src_dev.modify_qp(q, sqd, rnic::kAttrState) == rnic::Status::kOk) {
        own_paused.push_back(q);
      }
      // A connected QP names its peer in the hardware QPC; the peer must
      // stop transmitting toward us before the QP can move hosts.
      if (!connected(src_dev.qp_state(q))) continue;
      const rnic::QpAttr& hw = src_dev.qp_hw_attr(q);
      if (hw.dest_qpn == 0) continue;  // UD / not yet connected
      if (old_session.owned_qps().contains(hw.dest_qpn)) continue;  // loopback
      rnic::RnicDevice* pdev =
          env_.device_by_pgid ? env_.device_by_pgid(hw.dest_gid) : nullptr;
      if (pdev == nullptr || !pdev->qp_exists(hw.dest_qpn)) continue;
      if (pdev->qp_state(hw.dest_qpn) == rnic::QpState::kRts &&
          !contains(peer_paused, pdev, hw.dest_qpn) &&
          pdev->modify_qp(hw.dest_qpn, sqd, rnic::kAttrState) ==
              rnic::Status::kOk) {
        peer_paused.push_back({pdev, hw.dest_qpn});
      }
    }
  };
  auto& vq = ctx.virtqueue();
  // A paused peer can change devices mid-migration: if the far end is
  // migrating concurrently, its atomic move re-homes the QP (same QPN,
  // new device) between our pause and our resume. Follow it — acting on
  // the recorded device would silently skip the QP and strand it in SQD.
  auto peer_dev = [&](const PeerRef& p) -> rnic::RnicDevice* {
    if (p.dev->qp_exists(p.qpn)) return p.dev;
    return env_.device_by_qpn ? env_.device_by_qpn(p.qpn) : nullptr;
  };
  auto drained = [&]() {
    for (rnic::Qpn q : old_session.owned_qps()) {
      if (src_dev.qp_exists(q) && !src_dev.qp_quiescent(q)) return false;
    }
    for (const PeerRef& p : peer_paused) {
      rnic::RnicDevice* dev = peer_dev(p);
      if (dev != nullptr && dev->qp_exists(p.qpn) &&
          !dev->qp_quiescent(p.qpn)) {
        return false;
      }
    }
    if (vq.in_flight() != 0 || vq.waiting_callers() != 0) return false;
    return src.pending_qp_purges() == 0;
  };

  const sim::Time drain_deadline = loop.now() + env_.costs.drain_timeout;
  for (pause_sweep(); !drained(); pause_sweep()) {
    if (loop.now() >= drain_deadline) {
      // Roll the pause back: the VM keeps running on the source host.
      const rnic::QpAttr rts{.state = rnic::QpState::kRts};
      for (rnic::Qpn q : own_paused) {
        if (src_dev.qp_exists(q) &&
            src_dev.qp_state(q) == rnic::QpState::kSqd) {
          (void)src_dev.modify_qp(q, rts, rnic::kAttrState);
        }
      }
      for (const PeerRef& p : peer_paused) {
        rnic::RnicDevice* dev = peer_dev(p);
        if (dev != nullptr && dev->qp_exists(p.qpn) &&
            dev->qp_state(p.qpn) == rnic::QpState::kSqd) {
          (void)dev->modify_qp(p.qpn, rts, rnic::kAttrState);
        }
      }
      ctx.end_migration();
      report_.status = rnic::Status::kDeadlineExceeded;
      report_.total_time = loop.now() - t0;
      co_return rnic::Status::kDeadlineExceeded;
    }
    co_await sim::delay(loop, env_.costs.poll_interval);
  }
  report_.drain_time = loop.now() - t0;
  report_.peer_qps_paused = peer_paused.size();

  // --- 4. Atomic section: no co_await from here to the downtime charge. --
  // Final inventory — stable now: the gate is closed and the queue empty.
  std::vector<rnic::Qpn> qpns;
  for (rnic::Qpn q : old_session.owned_qps()) qpns.push_back(q);
  std::vector<rnic::Cqn> cqns;
  for (rnic::Cqn c : old_session.owned_cqs()) cqns.push_back(c);
  std::vector<rnic::Key> mr_keys;
  for (rnic::Key k : old_session.owned_mrs()) mr_keys.push_back(k);
  std::vector<rnic::PdId> pd_ids;
  for (rnic::PdId p : old_session.owned_pds()) pd_ids.push_back(p);
  const sim::FlatMap<rnic::Qpn, rnic::QpAttr> tenant_view =
      old_session.tenant_view();

  // Peer QPCs that must be re-aimed at the new physical GID. Loopback
  // pairs (both ends owned) migrate together and are re-aimed on the
  // destination device instead.
  std::vector<PeerRef> peer_rewrites;
  std::vector<rnic::Qpn> loopback_rewrites;
  for (rnic::Qpn q : qpns) {
    if (!src_dev.qp_exists(q) || !connected(src_dev.qp_state(q))) continue;
    const rnic::QpAttr& hw = src_dev.qp_hw_attr(q);
    if (hw.dest_qpn == 0) continue;
    if (old_session.owned_qps().contains(hw.dest_qpn)) {
      loopback_rewrites.push_back(q);
      continue;
    }
    rnic::RnicDevice* pdev =
        env_.device_by_pgid ? env_.device_by_pgid(hw.dest_gid) : nullptr;
    if (pdev == nullptr || !pdev->qp_exists(hw.dest_qpn)) continue;
    if (!contains(peer_rewrites, pdev, hw.dest_qpn)) {
      peer_rewrites.push_back({pdev, hw.dest_qpn});
    }
  }

  // Digests before the move: the no-WQE-lost proof's left-hand side.
  sim::FlatMap<rnic::Qpn, std::uint64_t> qp_digest_before;
  sim::FlatMap<rnic::Qpn, std::size_t> qp_send_depth_before;
  sim::FlatMap<rnic::Cqn, std::uint64_t> cq_digest_before;
  sim::FlatMap<rnic::Cqn, std::size_t> cq_depth_before;
  for (rnic::Qpn q : qpns) {
    if (!src_dev.qp_exists(q)) continue;
    qp_digest_before[q] = src_dev.qp_wqe_digest(q);
    qp_send_depth_before[q] = src_dev.qp_send_queue_depth(q);
  }
  for (rnic::Cqn c : cqns) {
    cq_digest_before[c] = src_dev.cq_digest(c);
    cq_depth_before[c] = src_dev.cq_depth(c);
  }

  // Extract everything from the source device.
  rnic::Status first_error = rnic::Status::kOk;
  auto note_error = [&](rnic::Status st) {
    if (st != rnic::Status::kOk && first_error == rnic::Status::kOk) {
      first_error = st;
    }
  };
  std::vector<rnic::RnicDevice::QpSnapshot> qp_snaps;
  for (rnic::Qpn q : qpns) {
    if (!src_dev.qp_exists(q)) continue;
    auto snap = src_dev.extract_qp(q);
    if (!snap.ok()) {
      note_error(snap.status);
      continue;
    }
    qp_snaps.push_back(std::move(snap.value));
  }
  if (drop_wqe_for_test_) {
    for (auto& s : qp_snaps) {
      if (!s.send_queue.empty()) {
        s.send_queue.pop_back();
        break;
      }
    }
  }
  if (duplicate_wqe_for_test_) {
    for (auto& s : qp_snaps) {
      if (!s.send_queue.empty()) {
        s.send_queue.push_back(s.send_queue.front());
        break;
      }
    }
  }
  std::vector<rnic::RnicDevice::CqSnapshot> cq_snaps;
  for (rnic::Cqn c : cqns) {
    auto snap = src_dev.extract_cq(c);
    if (!snap.ok()) {
      note_error(snap.status);
      continue;
    }
    cq_snaps.push_back(std::move(snap.value));
  }
  std::vector<rnic::RnicDevice::MrSnapshot> mr_snaps;
  for (rnic::Key k : mr_keys) {
    auto snap = src_dev.extract_mr(k);
    if (!snap.ok()) {
      note_error(snap.status);
      continue;
    }
    // Release the source driver's pin on the old translation chain; the
    // destination driver re-pins against the new VM in adopt_mr.
    old_session.driver().forget_mr(k);
    mr_snaps.push_back(snap.value);
  }
  for (rnic::PdId pd : pd_ids) (void)src_dev.dealloc_pd(pd);
  std::vector<RConntrack::Entry> rows;
  for (rnic::Qpn q : qpns) {
    for (RConntrack::Entry& e : src.conntrack().extract_qp(q)) {
      rows.push_back(std::move(e));
    }
  }

  // Guest RAM: stop-and-copy of every live buffer.
  hyp::Vm& old_vm = **env_.vm_slot;
  const hyp::Vm::Config vm_cfg = old_vm.config();
  struct GuestBuf {
    mem::Addr addr = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<GuestBuf> bufs;
  for (const auto& [addr, len] : old_vm.guest_buffers()) {
    GuestBuf b;
    b.addr = addr;
    b.bytes.resize(len);
    old_vm.read_guest(addr, b.bytes);
    report_.guest_bytes_copied += len;
    bufs.push_back(std::move(b));
  }

  // Hand over the tenant identity and tear the source half down. unbind()
  // must run while the old session still exists (the QP-ERROR hook lives
  // on the source device); vbond().release() must run before the session
  // dies (its destructor would unregister the vGID we are keeping).
  ctx.unbind();
  old_session.vbond().release();
  src.remove_session(old_session);
  env_.vm_slot->reset();  // returns the DRAM reservation to the source

  // Boot the destination half. register_vm binds a fresh vBond: the
  // unchanged vGID is re-registered against this host's physical GID and
  // the controller pushes the new mapping to every host cache (which also
  // purges peers' parked warm-pool pairs toward the migrant).
  *env_.vm_slot = std::make_unique<hyp::Vm>(*env_.dest_host, vm_cfg);
  hyp::Vm& new_vm = **env_.vm_slot;
  Backend::Session& new_session = dst.register_vm(new_vm);

  // Guest buffers reappear at their original GVAs, so application
  // pointers and MR base addresses survive verbatim.
  for (const GuestBuf& b : bufs) {
    new_vm.alloc_guest_buffer_at(b.addr, b.bytes.size());
    new_vm.write_guest(b.addr, b.bytes);
  }

  // Restore the RNIC objects under their original IDs (disjoint per-host
  // id_spaces make collision impossible).
  for (rnic::PdId pd : pd_ids) {
    const rnic::Status st = dst_dev.restore_pd(pd, new_session.fn());
    if (st == rnic::Status::kOk) {
      new_session.adopt_pd(pd);
      ++report_.pds_moved;
    } else {
      note_error(st);
    }
  }
  for (rnic::RnicDevice::CqSnapshot& snap : cq_snaps) {
    const rnic::Cqn c = snap.cqn;
    const rnic::Status st = dst_dev.restore_cq(std::move(snap));
    if (st == rnic::Status::kOk) {
      new_session.adopt_cq(c);
      ++report_.cqs_moved;
    } else {
      note_error(st);
    }
  }
  for (const rnic::RnicDevice::MrSnapshot& snap : mr_snaps) {
    const rnic::Status st = new_session.driver().adopt_mr(snap, new_vm.gva());
    if (st == rnic::Status::kOk) {
      new_session.adopt_mr(snap.lkey);
      ++report_.mrs_moved;
    } else {
      note_error(st);
    }
  }
  for (rnic::RnicDevice::QpSnapshot& snap : qp_snaps) {
    const rnic::Qpn q = snap.qpn;
    snap.fn = new_session.fn();  // re-homed on the destination VF
    const rnic::Status st = dst_dev.restore_qp(std::move(snap));
    if (st == rnic::Status::kOk) {
      auto it = tenant_view.find(q);
      new_session.adopt_qp(q, it == tenant_view.end() ? nullptr
                                                      : &it->second);
      ++report_.qps_moved;
    } else {
      note_error(st);
    }
  }

  // Digest compare: the no-WQE-lost proof's right-hand side. Any WQE or
  // CQE lost or duplicated between extract and restore changes the FNV
  // stream and fires the migration auditor with a precise diagnostic.
  for (const auto& [q, before] : qp_digest_before) {
    if (!dst_dev.qp_exists(q)) {
      fail_invariant("restore", "qp " + std::to_string(q) +
                                    " missing on destination after restore");
      continue;
    }
    const std::uint64_t after = dst_dev.qp_wqe_digest(q);
    if (after != before) {
      fail_invariant(
          "restore",
          "qp " + std::to_string(q) + " wqe digest mismatch across migration" +
              " (before=" + std::to_string(before) +
              ", after=" + std::to_string(after) + ", send depth " +
              std::to_string(qp_send_depth_before.at(q)) + " -> " +
              std::to_string(dst_dev.qp_send_queue_depth(q)) +
              "): a WQE was lost or duplicated");
    }
  }
  for (const auto& [c, before] : cq_digest_before) {
    const std::uint64_t after = dst_dev.cq_digest(c);
    if (after != before) {
      fail_invariant(
          "restore",
          "cq " + std::to_string(c) + " digest mismatch across migration" +
              " (before=" + std::to_string(before) +
              ", after=" + std::to_string(after) + ", depth " +
              std::to_string(cq_depth_before.at(c)) + " -> " +
              std::to_string(dst_dev.cq_depth(c)) +
              "): a completion was lost or duplicated");
    }
  }

  // RConntrack rows follow the VM; only the driver handle changes.
  for (RConntrack::Entry& row : rows) {
    row.driver = &new_session.driver();
    dst.conntrack().adopt(std::move(row));
    ++report_.conntrack_rows_moved;
  }

  // Re-aim every peer QPC at the migrant's new physical GID — the
  // RConnrename-at-RTR rewrite, replayed for an endpoint that moved. The
  // virtual GID in each tenant's view is untouched, which is what makes
  // the move invisible to applications.
  const net::Gid new_pgid = dst_dev.gid(rnic::kPf);
  const rnic::QpAttr re{.dest_gid = new_pgid};
  for (const PeerRef& p : peer_rewrites) {
    note_error(p.dev->modify_qp(p.qpn, re, rnic::kAttrDestGid));
  }
  for (rnic::Qpn q : loopback_rewrites) {
    if (dst_dev.qp_exists(q)) {
      note_error(dst_dev.modify_qp(q, re, rnic::kAttrDestGid));
    }
  }

  ctx.rebind(new_session);

  // --- 5. Pay the modeled stop-and-copy blackout in one charge. ----------
  const std::uint64_t pages =
      (report_.guest_bytes_copied + mem::kPageSize - 1) / mem::kPageSize;
  const sim::Time pause =
      env_.costs.pause_base +
      env_.costs.per_qp * static_cast<sim::Time>(qp_snaps.size()) +
      env_.costs.per_page * static_cast<sim::Time>(pages);
  report_.pause_time = pause;
  co_await sim::delay(loop, pause);

  // --- 6. Resume: paused QPs back to RTS, gate reopens. ------------------
  const rnic::QpAttr rts{.state = rnic::QpState::kRts};
  for (rnic::Qpn q : own_paused) {
    if (dst_dev.qp_exists(q) && dst_dev.qp_state(q) == rnic::QpState::kSqd) {
      note_error(dst_dev.modify_qp(q, rts, rnic::kAttrState));
    }
  }
  for (const PeerRef& p : peer_paused) {
    rnic::RnicDevice* dev = peer_dev(p);
    if (dev != nullptr && dev->qp_exists(p.qpn) &&
        dev->qp_state(p.qpn) == rnic::QpState::kSqd) {
      note_error(dev->modify_qp(p.qpn, rts, rnic::kAttrState));
    }
  }
  ctx.end_migration();

  report_.status = first_error;
  report_.ok = first_error == rnic::Status::kOk;
  report_.total_time = loop.now() - t0;
  co_return first_error;
}

}  // namespace masq
