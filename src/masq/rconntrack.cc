#include "masq/rconntrack.h"

#include <algorithm>

namespace masq {

void RConntrack::watch_tenant(std::uint32_t vni) {
  if (std::find(watched_.begin(), watched_.end(), vni) != watched_.end()) {
    return;
  }
  watched_.push_back(vni);
  vnet_.policy(vni).subscribe([this] {
    // Rule update: re-validate asynchronously (the update itself returns
    // immediately; teardown happens in the background, §4.3.2).
    loop_.spawn(revalidate_all());
  });
}

sim::Task<overlay::RuleId> RConntrack::install_rule(
    overlay::SecurityPolicy& policy, overlay::RuleChain& chain,
    overlay::Rule rule) {
  co_await sim::delay(loop_, costs_.insert_rule);
  const overlay::RuleId id = chain.add_rule(rule);
  policy.notify_changed();
  co_return id;
}

sim::Task<bool> RConntrack::validate(std::uint32_t vni, net::Ipv4Addr src,
                                     net::Ipv4Addr dst) {
  ++validations_;
  co_await sim::delay(loop_, costs_.valid_conn);
  co_return vnet_.policy(vni).connection_allowed(
      overlay::FlowTuple{src, dst, overlay::Proto::kRdma});
}

sim::Task<void> RConntrack::track(Entry entry) {
  co_await sim::delay(loop_, costs_.insert_conn);
  watch_tenant(entry.vni);
  table_.push_back(entry);
}

sim::Task<void> RConntrack::untrack(rnic::Qpn qpn, std::uint32_t vni) {
  co_await sim::delay(loop_, costs_.delete_conn);
  table_.erase(std::remove_if(table_.begin(), table_.end(),
                              [&](const Entry& e) {
                                return e.qpn == qpn && e.vni == vni;
                              }),
               table_.end());
}

sim::Task<void> RConntrack::purge_qp(rnic::Qpn qpn) {
  if (!has_qp(qpn)) co_return;
  co_await sim::delay(loop_, costs_.delete_conn);
  table_.erase(std::remove_if(table_.begin(), table_.end(),
                              [&](const Entry& e) { return e.qpn == qpn; }),
               table_.end());
  ++purges_;
}

bool RConntrack::has_qp(rnic::Qpn qpn) const {
  return std::any_of(table_.begin(), table_.end(),
                     [&](const Entry& e) { return e.qpn == qpn; });
}

const RConntrack::Entry* RConntrack::lookup(rnic::Qpn qpn,
                                            std::uint32_t vni) const {
  for (const Entry& e : table_) {
    if (e.qpn == qpn && e.vni == vni) return &e;
  }
  return nullptr;
}

sim::Task<void> RConntrack::revalidate_all() {
  // Collect violators first: resetting mutates device state, not table_.
  std::vector<Entry> violating;
  for (const Entry& e : table_) {
    const bool ok = vnet_.policy(e.vni).connection_allowed(
        overlay::FlowTuple{e.src_vip, e.dst_vip, overlay::Proto::kRdma});
    if (!ok) violating.push_back(e);
  }
  for (const Entry& e : violating) {
    rnic::QpAttr attr;
    attr.state = rnic::QpState::kError;
    // reset_conn (Table 4 / Fig. 18): kernel routine + RNIC processing.
    co_await e.driver->modify_qp(e.qpn, attr, rnic::kAttrState);
    ++resets_;
    if (reset_hook_) reset_hook_(e.qpn);
    table_.erase(std::remove_if(table_.begin(), table_.end(),
                                [&](const Entry& x) {
                                  return x.qpn == e.qpn && x.vni == e.vni;
                                }),
                 table_.end());
  }
}

}  // namespace masq
