// Topology-aware host placement (DESIGN.md §17).
//
// The storm harness scatters a tenant's VMs round-robin across every host
// (vm % tenants picks the tenant), so same-tenant traffic crosses leaves —
// and therefore spines — almost every time. A placement-aware controller
// does better: it packs each tenant's VMs onto contiguous hosts, which the
// leaf tiers of a Clos fabric absorb locally. Leaf-affine placement is the
// permutation that realizes this packing without changing any per-host VM
// count, so the control-plane load (agents, caches, shard queues) is
// untouched — only the data-plane locality moves.
//
// Everything here is a pure function of the workload shape: placement is
// deterministic, replayable, and identical across thread counts.
#pragma once

#include <cstddef>

namespace sdn {

// The host a VM lands on under leaf-affine (tenant-packed) placement.
// Tenant t owns VMs {t, t+T, t+2T, ...}; its k-th VM is assigned global
// rank offset(t) + k and hosts are filled rank-contiguously, so a tenant's
// VMs occupy a contiguous host block. A bijection over VMs: per-host
// populations are identical to the scattered (vm / vms_per_host) layout.
std::size_t leaf_affine_host(std::size_t tenants, std::size_t total_vms,
                             std::size_t vms_per_host, std::size_t vm);

// Fraction of `pairs` (src_host, dst_host) endpoints that land on different
// leaves, given contiguous leaf blocks of `hosts_per_leaf` — the
// spine-crossing rate the placement ablation reports.
struct CrossingCounter {
  std::size_t hosts_per_leaf = 1;
  std::size_t total = 0;
  std::size_t crossings = 0;

  void add(std::size_t src_host, std::size_t dst_host) {
    ++total;
    if (src_host / hosts_per_leaf != dst_host / hosts_per_leaf) ++crossings;
  }
  double rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(crossings) /
                            static_cast<double>(total);
  }
};

}  // namespace sdn
