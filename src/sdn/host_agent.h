// Per-host SDN agent (DESIGN.md §12): the FreeFlow-style middle tier
// between a host's MappingCache and the sharded controller.
//
// The agent owns the host's MappingCache and takes over its miss path:
// leader misses (the cache is already single-flight, so there is at most
// one leader per key) are parked in a per-shard lane for a short batch
// window, then flushed to the key's shard as ONE Controller::query_batch —
// so a connection storm from V co-located VMs pays one shard round trip
// per (host, shard, window) instead of one per VM. With a zero window the
// agent degenerates to pass-through (identical event trace to the
// pre-agent backend), which is the default for the calibrated 2-host
// testbed.
//
// Invariant the scale tests lean on: at most one query_batch per
// (agent, shard) is in flight — the next window's flush cannot start until
// the previous one drained its lane — so a shard's service-queue depth is
// bounded by the number of hosts, not the number of VMs.
//
// Degraded-mode semantics stay per shard and live in the MappingCache
// (reachable_for / per-shard degraded counters); the agent only changes
// *how* misses travel, never what they mean.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sdn/controller.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace sdn {

struct HostAgentConfig {
  sim::Time cache_hit_cost = sim::microseconds(2);     // §3.3.1
  sim::Time negative_ttl = sim::milliseconds(1);
  sim::Time cache_staleness_bound = sim::seconds(5);   // degraded mode
  // How long a leader miss waits in its shard lane for company before the
  // lane is flushed. 0 = pass-through (no batching, no added latency).
  sim::Time batch_window = 0;
  // Largest number of keys flushed in one query_batch; a lane holding more
  // drains in successive batches (still one in flight at a time).
  std::size_t max_batch = 64;
  // Speculative resolution (DESIGN.md §14): subscribe this agent's cache to
  // the controller's push channel, so a VM-boot register_vgid lands in the
  // cache before the first connection ever asks for it. Off by default —
  // the miss path then stays bit-identical to the pre-warm-path engine.
  bool speculative_prefill = false;
};

class HostAgent {
 public:
  HostAgent(sim::EventLoop& loop, Controller& controller,
            HostAgentConfig config = {});
  ~HostAgent();
  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  // The host's cache; resolve()/resolve_ex() on it route leader misses
  // through this agent's batching lanes (when a window is configured).
  MappingCache& cache() { return cache_; }
  const MappingCache& cache() const { return cache_; }

  sim::Task<std::optional<net::Gid>> resolve(std::uint32_t vni,
                                             net::Gid vgid) {
    return cache_.resolve(vni, vgid);
  }
  sim::Task<MappingCache::Resolution> resolve_ex(std::uint32_t vni,
                                                 net::Gid vgid) {
    return cache_.resolve_ex(vni, vgid);
  }

  Controller& controller() { return controller_; }
  const HostAgentConfig& config() const { return config_; }

  // ---- partitioned execution (DESIGN.md §13) ----
  // When set, lane flushes go through this transport instead of calling
  // Controller::query_batch directly. The partition engine uses it to route
  // the host→shard round trip through the cross-partition coordinator
  // while everything else (lanes, cache, windows) runs unchanged.
  using BatchTransport = std::function<sim::Task<
      std::vector<Controller::QueryReply>>(std::size_t, std::vector<VirtKey>)>;
  void set_batch_transport(BatchTransport fn) { transport_ = std::move(fn); }

  // ---- telemetry ----
  // query_batch round trips issued / keys they carried. keys/batches is
  // the amortization factor the agent buys.
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batched_keys() const { return batched_keys_; }
  // Mappings the push channel planted in the cache ahead of any miss
  // (speculative_prefill only).
  std::uint64_t prefills() const { return prefills_; }
  std::uint64_t shard_batches(std::size_t shard) const {
    return lanes_.at(shard)->batches;
  }
  // High-water mark of keys parked in one shard lane.
  std::size_t max_lane_depth() const;

 private:
  struct Pending {
    VirtKey key;
    sim::Promise<Controller::QueryReply> reply;
  };
  struct Lane {
    std::vector<Pending> pending;
    // One flush (scheduled or draining) at a time; also what bounds the
    // shard's service-queue depth to one entry per host.
    bool flush_active = false;
    std::uint64_t batches = 0;
    std::size_t max_depth = 0;
  };

  // The MappingCache::QueryFn hook: parks the leader miss in its shard's
  // lane and wakes the lane's flusher.
  sim::Task<Controller::QueryReply> batched_query(std::uint32_t vni,
                                                  net::Gid vgid);
  // Drains one lane: repeated (chunk, query_batch, distribute) until the
  // lane is empty. Spawned detached; guarded by the liveness token.
  static sim::Task<void> flush_lane(HostAgent* self, std::size_t shard,
                                    std::weak_ptr<const char> alive);

  sim::EventLoop& loop_;
  Controller& controller_;
  HostAgentConfig config_;
  BatchTransport transport_;
  MappingCache cache_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  Controller::SubId prefill_sub_ = 0;
  bool prefill_subscribed_ = false;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_keys_ = 0;
  std::uint64_t prefills_ = 0;
  // Scheduled flush callbacks outlive the agent if the loop drains after
  // teardown; they stand down once this token dies.
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>(0);
};

}  // namespace sdn
