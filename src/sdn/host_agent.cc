#include "sdn/host_agent.h"

#include <algorithm>
#include <utility>

namespace sdn {

HostAgent::HostAgent(sim::EventLoop& loop, Controller& controller,
                     HostAgentConfig config)
    : loop_(loop),
      controller_(controller),
      config_(config),
      cache_(loop, controller, config.cache_hit_cost, config.negative_ttl,
             config.cache_staleness_bound) {
  lanes_.reserve(controller_.num_shards());
  for (std::size_t i = 0; i < controller_.num_shards(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Zero window = pass-through: leave the cache's miss path pointed
  // straight at Controller::query_ex so the event trace is identical to a
  // cache with no agent in front of it.
  if (config_.batch_window > 0) {
    cache_.set_query_fn([this](std::uint32_t vni, net::Gid vgid) {
      return batched_query(vni, vgid);
    });
  }
  if (config_.speculative_prefill) {
    // Warm path (DESIGN.md §14): every register_vgid broadcast is planted
    // straight into the cache — VM boot resolves the peer before the first
    // connect asks. The push callback is synchronous (insert only), so the
    // controller's broadcast timing is unchanged.
    prefill_sub_ = controller_.subscribe(
        [this](std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
          cache_.insert(vni, vgid, pgid);
          ++prefills_;
        });
    prefill_subscribed_ = true;
  }
}

HostAgent::~HostAgent() {
  // Unhook the cache first (it outlives this dtor body as a member) and
  // kill the liveness token so scheduled flushes stand down.
  if (prefill_subscribed_) controller_.unsubscribe(prefill_sub_);
  cache_.set_query_fn(nullptr);
  liveness_.reset();
}

std::size_t HostAgent::max_lane_depth() const {
  std::size_t m = 0;
  for (const auto& lane : lanes_) m = std::max(m, lane->max_depth);
  return m;
}

sim::Task<Controller::QueryReply> HostAgent::batched_query(std::uint32_t vni,
                                                           net::Gid vgid) {
  const std::size_t shard = controller_.shard_of(vni, vgid);
  Lane& lane = *lanes_[shard];
  sim::Promise<Controller::QueryReply> promise(loop_);
  auto fut = promise.get_future();
  lane.pending.push_back(Pending{VirtKey{vni, vgid}, std::move(promise)});
  lane.max_depth = std::max(lane.max_depth, lane.pending.size());
  if (!lane.flush_active) {
    // One flush owner per lane: arrivals during the window (or during a
    // drain already in progress) ride the existing flush. The callback
    // captures the loop by reference directly — `this` may be dead by the
    // time it fires, and only the liveness token can tell.
    lane.flush_active = true;
    loop_.schedule_after(
        config_.batch_window,
        [&loop = loop_, self = this, shard,
         alive = std::weak_ptr<const char>(liveness_)] {
          if (alive.expired()) return;
          loop.spawn(flush_lane(self, shard, std::move(alive)));
        });
  }
  co_return co_await fut;
}

sim::Task<void> HostAgent::flush_lane(HostAgent* self, std::size_t shard,
                                      std::weak_ptr<const char> alive) {
  while (true) {
    if (alive.expired()) co_return;
    Lane& lane = *self->lanes_[shard];
    if (lane.pending.empty()) {
      // Drained. Clearing the flag here (with no suspension since the
      // emptiness check) is what keeps "at most one flush per lane" true.
      lane.flush_active = false;
      co_return;
    }
    const std::size_t n =
        std::min(lane.pending.size(), self->config_.max_batch);
    std::vector<Pending> chunk;
    chunk.reserve(n);
    std::move(lane.pending.begin(), lane.pending.begin() + n,
              std::back_inserter(chunk));
    lane.pending.erase(lane.pending.begin(),
                       lane.pending.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<VirtKey> keys;
    keys.reserve(n);
    for (const Pending& p : chunk) keys.push_back(p.key);
    ++lane.batches;
    ++self->batches_;
    self->batched_keys_ += n;
    std::vector<Controller::QueryReply> replies;
    bool failed = false;
    try {
      if (self->transport_) {
        replies = co_await self->transport_(shard, std::move(keys));
      } else {
        replies = co_await self->controller_.query_batch(shard,
                                                         std::move(keys));
      }
    } catch (...) {
      // Propagate to every leader riding this batch; the cache's leader
      // path forwards the exception to its followers.
      for (Pending& p : chunk) p.reply.set_exception(std::current_exception());
      failed = true;
    }
    if (!failed) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk[i].reply.set_value(replies[i]);
      }
    }
    // Loop: keys that arrived while the batch was on the wire are flushed
    // immediately — they have already waited at least one window.
  }
}

}  // namespace sdn
