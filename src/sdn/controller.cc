#include "sdn/controller.h"

#include <algorithm>
#include <stdexcept>

namespace sdn {

Controller::Controller(sim::EventLoop& loop, ControllerConfig config)
    : loop_(loop), config_(config) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("Controller: num_shards must be >= 1");
  }
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(loop_));
  }
}

void Controller::broadcast_push(std::uint32_t vni, net::Gid vgid,
                                net::Gid pgid) {
  const std::size_t shard = shard_of(vni, vgid);
  if (!shards_[shard]->reachable) {
    pending_broadcasts_.push_back(
        {shard, [this, vni, vgid, pgid] {
           for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
         }});
    return;
  }
  for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
}

void Controller::broadcast_invalidate(std::uint32_t vni, net::Gid vgid) {
  const std::size_t shard = shard_of(vni, vgid);
  if (!shards_[shard]->reachable) {
    pending_broadcasts_.push_back(
        {shard, [this, vni, vgid] {
           for (const auto& [id, fn] : invalidate_subscribers_) fn(vni, vgid);
         }});
    return;
  }
  for (const auto& [id, fn] : invalidate_subscribers_) fn(vni, vgid);
}

void Controller::register_vgid(std::uint32_t vni, net::Gid vgid,
                               net::Gid pgid) {
  shard_for(vni, vgid).table[VirtKey{vni, vgid}] = pgid;
  broadcast_push(vni, vgid, pgid);
}

void Controller::unregister_vgid(std::uint32_t vni, net::Gid vgid) {
  // Only broadcast if this call actually removed a live entry; a released
  // vBond whose successor already re-registered must not clobber the
  // successor's mapping in downstream caches.
  if (shard_for(vni, vgid).table.erase(VirtKey{vni, vgid}) > 0) {
    broadcast_invalidate(vni, vgid);
  }
}

std::optional<net::Gid> Controller::lookup(std::uint32_t vni,
                                           net::Gid vgid) const {
  const auto& table = shards_[shard_of(vni, vgid)]->table;
  auto it = table.find(VirtKey{vni, vgid});
  if (it == table.end()) return std::nullopt;
  return it->second;
}

sim::Task<std::optional<net::Gid>> Controller::query(std::uint32_t vni,
                                                     net::Gid vgid) {
  QueryReply r = co_await query_ex(vni, vgid);
  co_return r.pgid;
}

sim::Task<void> Controller::charge_query_path(Shard& s, std::size_t keys) {
  // Zero service budget models an infinitely fast query server: skip the
  // queue entirely so the default configuration reproduces the
  // pre-sharding cost model (and its event trace) exactly.
  if (config_.query_service > 0 && keys > 0) {
    s.max_queue_depth = std::max(s.max_queue_depth, s.queue.depth() + 1);
    co_await s.queue.submit(config_.query_service *
                            static_cast<sim::Time>(keys));
  }
  co_await sim::delay(loop_, config_.query_rtt);
}

sim::Task<Controller::QueryReply> Controller::query_ex(std::uint32_t vni,
                                                       net::Gid vgid) {
  Shard& s = shard_for(vni, vgid);
  // The service + RTT cost is charged either way: when the shard is down it
  // models the querier's detection timeout, so an outage slows callers
  // instead of answering instantly-wrong. Reachability is sampled after
  // the round trip — the answer reflects the shard's state when the reply
  // would have arrived.
  co_await charge_query_path(s, 1);
  if (!s.reachable) {
    ++s.unreachable_queries;
    co_return QueryReply{true, std::nullopt};
  }
  ++s.queries;
  co_return QueryReply{false, lookup(vni, vgid)};
}

sim::Task<std::vector<Controller::QueryReply>> Controller::query_batch(
    std::size_t shard, std::vector<VirtKey> keys) {
  Shard& s = *shards_.at(shard);
  std::vector<QueryReply> replies;
  replies.reserve(keys.size());
  co_await charge_query_path(s, keys.size());
  for (const VirtKey& key : keys) {
    if (shard_of(key.vni, key.vgid) != shard) {
      throw std::logic_error("query_batch: key routed to the wrong shard");
    }
    if (!s.reachable) {
      ++s.unreachable_queries;
      replies.push_back(QueryReply{true, std::nullopt});
    } else {
      ++s.queries;
      ++s.batched_queries;
      replies.push_back(QueryReply{false, lookup(key.vni, key.vgid)});
    }
  }
  co_return replies;
}

bool Controller::reachable() const {
  for (const auto& s : shards_) {
    if (!s->reachable) return false;
  }
  return true;
}

std::uint64_t Controller::unreachable_queries() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->unreachable_queries;
  return n;
}

std::size_t Controller::table_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->table.size();
  return n;
}

std::uint64_t Controller::queries_served() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->queries;
  return n;
}

std::size_t Controller::shard_pending_broadcasts(std::size_t shard) const {
  std::size_t n = 0;
  for (const auto& p : pending_broadcasts_) {
    if (p.shard == shard) ++n;
  }
  return n;
}

void Controller::set_reachable(bool reachable) {
  bool changed = false;
  for (const auto& s : shards_) {
    if (s->reachable != reachable) {
      s->reachable = reachable;
      changed = true;
    }
  }
  if (!changed || !reachable) return;
  // Whole-controller recovery: replay every buffered broadcast in its
  // original global order so caches converge to the same state as an
  // outage-free run (and as the single-shard reference).
  std::vector<PendingBroadcast> pending;
  pending.swap(pending_broadcasts_);
  for (auto& p : pending) p.fn();
}

void Controller::set_shard_reachable(std::size_t shard, bool reachable) {
  Shard& s = *shards_.at(shard);
  if (s.reachable == reachable) return;
  s.reachable = reachable;
  if (!reachable) return;
  // Partition recovery: replay only this shard's buffered broadcasts,
  // chronologically; other downed shards keep theirs buffered.
  std::vector<PendingBroadcast> keep;
  std::vector<PendingBroadcast> replay;
  keep.reserve(pending_broadcasts_.size());
  for (auto& p : pending_broadcasts_) {
    (p.shard == shard ? replay : keep).push_back(std::move(p));
  }
  pending_broadcasts_ = std::move(keep);
  for (auto& p : replay) p.fn();
}

void Controller::push_down(std::uint32_t vni) const {
  // Shard tables iterate in insertion order (FlatMap), which is
  // deterministic — but the push order feeds subscriber-side cache-insert
  // ordering (and through it the event trace), and the wire contract has
  // always been sorted key order, so matching entries are still gathered
  // across shards and streamed sorted.
  std::vector<std::pair<net::Gid, net::Gid>> entries;  // vgid -> pgid
  for (const auto& s : shards_) {
    for (const auto& [key, pgid] : s->table) {
      if (key.vni == vni) entries.emplace_back(key.vgid, pgid);
    }
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [vgid, pgid] : entries) {
    for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
  }
}

bool Controller::is_virtual_gid(net::Gid vgid) const {
  for (const auto& s : shards_) {
    for (const auto& [key, pgid] : s->table) {
      if (key.vgid == vgid) return true;
    }
  }
  return false;
}

MappingCache::MappingCache(sim::EventLoop& loop, Controller& controller,
                           sim::Time hit_cost, sim::Time negative_ttl,
                           sim::Time staleness_bound)
    : loop_(loop),
      controller_(controller),
      hit_cost_(hit_cost),
      negative_ttl_(negative_ttl),
      staleness_bound_(staleness_bound),
      degraded_by_shard_(controller.num_shards(), 0) {
  push_sub_ = controller_.subscribe(
      [this](std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
        on_push(vni, vgid, pgid);
      });
  invalidate_sub_ = controller_.subscribe_invalidate(
      [this](std::uint32_t vni, net::Gid vgid) { invalidate(vni, vgid); });
}

MappingCache::~MappingCache() {
  controller_.unsubscribe(push_sub_);
  controller_.unsubscribe_invalidate(invalidate_sub_);
}

void MappingCache::on_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  const VirtKey key{vni, vgid};
  // A (re-)registered key must not stay negatively cached until TTL
  // expiry — the controller just vouched for it.
  negative_.erase(key);
  // Refresh only what we already hold; pre-warm *inserts* stay the
  // owner's policy (the backend wires push -> insert() explicitly).
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second = Entry{pgid, loop_.now()};
  }
}

sim::Task<std::optional<net::Gid>> MappingCache::resolve(std::uint32_t vni,
                                                         net::Gid vgid) {
  Resolution r = co_await resolve_ex(vni, vgid);
  co_return r.pgid;
}

sim::Task<MappingCache::Resolution> MappingCache::resolve_ex(
    std::uint32_t vni, net::Gid vgid) {
  const VirtKey key{vni, vgid};
  auto it = cache_.find(key);
  if (it != cache_.end() && fault_probe_ &&
      fault_probe_(VirtKeyHash{}(key))) {
    // Injected expiry/corruption: drop the entry and fall through to the
    // miss path as if it had never been cached.
    cache_.erase(it);
    it = cache_.end();
    ++fault_expirations_;
  }
  if (it != cache_.end()) {
    // Reachability is judged per shard: an outage of one partition must
    // not push hits on healthy partitions into degraded mode.
    if (controller_.reachable_for(vni, vgid)) {
      ++hits_;
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kOk, it->second.pgid};
    }
    // Degraded mode: the key's shard cannot confirm, but a recently
    // confirmed mapping is overwhelmingly likely still valid — serve it,
    // bounded, and count it (globally and against the downed shard).
    // Entries past the bound are *not* served: better a fast kUnavailable
    // than a rename to a stale peer.
    const sim::Time age = loop_.now() - it->second.confirmed_at;
    if (age <= staleness_bound_) {
      ++degraded_serves_;
      ++degraded_by_shard_[controller_.shard_of(vni, vgid)];
      max_served_staleness_ = std::max(max_served_staleness_, age);
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kOkDegraded, it->second.pgid};
    }
    ++unavailable_;
    co_await sim::delay(loop_, hit_cost_);
    co_return Resolution{ResolveStatus::kUnavailable, std::nullopt};
  }
  // Bounded negative cache: a recently-confirmed-absent key is answered
  // locally instead of hammering the controller.
  auto nit = negative_.find(key);
  if (nit != negative_.end()) {
    if (loop_.now() < nit->second) {
      ++negative_hits_;
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kNotFound, std::nullopt};
    }
    negative_.erase(nit);
  }
  // Single-flight: if a query for this key is already on the wire, ride it
  // instead of issuing another controller RTT.
  auto fit = inflight_.find(key);
  if (fit != inflight_.end()) {
    ++coalesced_;
    auto future = fit->second;  // copy: the leader erases the map entry
    co_return co_await future;
  }
  ++misses_;
  sim::Promise<Resolution> leader(loop_);
  inflight_.emplace(key, leader.get_future());
  poisoned_.erase(key);
  Controller::QueryReply reply;
  try {
    // Plain if/else, not a conditional expression: GCC mis-lowers
    // `cond ? co_await a : co_await b`.
    if (query_fn_) {
      reply = co_await query_fn_(vni, vgid);
    } else {
      reply = co_await controller_.query_ex(vni, vgid);
    }
  } catch (...) {
    inflight_.erase(key);
    poisoned_.erase(key);
    leader.set_exception(std::current_exception());
    throw;
  }
  Resolution result;
  if (reply.unreachable) {
    // No verdict either way: do NOT install a negative entry (the key may
    // exist), just report unavailable. Callers retry with backoff.
    ++unavailable_;
    result = Resolution{ResolveStatus::kUnavailable, std::nullopt};
    poisoned_.erase(key);
  } else {
    result = reply.pgid
                 ? Resolution{ResolveStatus::kOk, reply.pgid}
                 : Resolution{ResolveStatus::kNotFound, std::nullopt};
    // Install the verdict — unless the key was invalidated mid-flight, in
    // which case the result may already be stale and must not be cached
    // (followers still get the answer their query observed).
    if (!poisoned_.erase(key)) {
      if (reply.pgid) {
        cache_[key] = Entry{*reply.pgid, loop_.now()};
      } else {
        if (negative_.size() >= kMaxNegativeEntries) negative_.clear();
        negative_[key] = loop_.now() + negative_ttl_;
      }
    }
  }
  inflight_.erase(key);
  leader.set_value(result);
  co_return result;
}

void MappingCache::for_each_entry(
    const std::function<void(const VirtKey&, net::Gid, sim::Time)>& fn)
    const {
  std::vector<std::pair<VirtKey, Entry>> entries;
  entries.reserve(cache_.size());
  for (const auto& [key, e] : cache_) {
    entries.emplace_back(key, e);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.vni, a.first.vgid) <
           std::tie(b.first.vni, b.first.vgid);
  });
  for (const auto& [key, e] : entries) fn(key, e.pgid, e.confirmed_at);
}

void MappingCache::corrupt_entry_for_test(std::uint32_t vni, net::Gid vgid,
                                          net::Gid pgid) {
  cache_[VirtKey{vni, vgid}] = Entry{pgid, loop_.now()};
}

void MappingCache::insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  const VirtKey key{vni, vgid};
  cache_[key] = Entry{pgid, loop_.now()};
  negative_.erase(key);
}

void MappingCache::invalidate(std::uint32_t vni, net::Gid vgid) {
  const VirtKey key{vni, vgid};
  cache_.erase(key);
  negative_.erase(key);
  if (inflight_.count(key) > 0) poisoned_.insert(key);
}

}  // namespace sdn
