#include "sdn/controller.h"

#include <algorithm>

namespace sdn {

void Controller::broadcast_push(std::uint32_t vni, net::Gid vgid,
                                net::Gid pgid) {
  if (!reachable_) {
    pending_broadcasts_.push_back([this, vni, vgid, pgid] {
      for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
    });
    return;
  }
  for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
}

void Controller::broadcast_invalidate(std::uint32_t vni, net::Gid vgid) {
  if (!reachable_) {
    pending_broadcasts_.push_back([this, vni, vgid] {
      for (const auto& [id, fn] : invalidate_subscribers_) fn(vni, vgid);
    });
    return;
  }
  for (const auto& [id, fn] : invalidate_subscribers_) fn(vni, vgid);
}

void Controller::register_vgid(std::uint32_t vni, net::Gid vgid,
                               net::Gid pgid) {
  table_[VirtKey{vni, vgid}] = pgid;
  broadcast_push(vni, vgid, pgid);
}

void Controller::unregister_vgid(std::uint32_t vni, net::Gid vgid) {
  // Only broadcast if this call actually removed a live entry; a released
  // vBond whose successor already re-registered must not clobber the
  // successor's mapping in downstream caches.
  if (table_.erase(VirtKey{vni, vgid}) > 0) {
    broadcast_invalidate(vni, vgid);
  }
}

std::optional<net::Gid> Controller::lookup(std::uint32_t vni,
                                           net::Gid vgid) const {
  auto it = table_.find(VirtKey{vni, vgid});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

sim::Task<std::optional<net::Gid>> Controller::query(std::uint32_t vni,
                                                     net::Gid vgid) {
  QueryReply r = co_await query_ex(vni, vgid);
  co_return r.pgid;
}

sim::Task<Controller::QueryReply> Controller::query_ex(std::uint32_t vni,
                                                       net::Gid vgid) {
  // The RTT is charged either way: when the controller is down it models
  // the querier's detection timeout, so an outage slows callers instead of
  // answering instantly-wrong.
  co_await sim::delay(loop_, query_rtt_);
  if (!reachable_) {
    ++unreachable_queries_;
    co_return QueryReply{true, std::nullopt};
  }
  ++queries_;
  co_return QueryReply{false, lookup(vni, vgid)};
}

void Controller::set_reachable(bool reachable) {
  if (reachable_ == reachable) return;
  reachable_ = reachable;
  if (!reachable_) return;
  // Recovery: replay the buffered broadcasts in their original order so
  // caches converge to the same state as an outage-free run.
  std::vector<std::function<void()>> pending;
  pending.swap(pending_broadcasts_);
  for (auto& fn : pending) fn();
}

void Controller::push_down(std::uint32_t vni) const {
  // The table is an unordered_map, but the push order feeds subscriber-side
  // cache-insert ordering (and through it the event trace), so the matching
  // entries are streamed in sorted key order.
  std::vector<std::pair<net::Gid, net::Gid>> entries;  // vgid -> pgid
  for (const auto& [key, pgid] :
       table_) {  // masq-lint: allow(unordered-iter) sorted before fan-out
    if (key.vni == vni) entries.emplace_back(key.vgid, pgid);
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [vgid, pgid] : entries) {
    for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
  }
}

bool Controller::is_virtual_gid(net::Gid vgid) const {
  for (const auto& [key, pgid] :
       table_) {  // masq-lint: allow(unordered-iter) pure predicate, no fan-out
    if (key.vgid == vgid) return true;
  }
  return false;
}

MappingCache::MappingCache(sim::EventLoop& loop, Controller& controller,
                           sim::Time hit_cost, sim::Time negative_ttl,
                           sim::Time staleness_bound)
    : loop_(loop),
      controller_(controller),
      hit_cost_(hit_cost),
      negative_ttl_(negative_ttl),
      staleness_bound_(staleness_bound) {
  push_sub_ = controller_.subscribe(
      [this](std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
        on_push(vni, vgid, pgid);
      });
  invalidate_sub_ = controller_.subscribe_invalidate(
      [this](std::uint32_t vni, net::Gid vgid) { invalidate(vni, vgid); });
}

MappingCache::~MappingCache() {
  controller_.unsubscribe(push_sub_);
  controller_.unsubscribe_invalidate(invalidate_sub_);
}

void MappingCache::on_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  const VirtKey key{vni, vgid};
  // A (re-)registered key must not stay negatively cached until TTL
  // expiry — the controller just vouched for it.
  negative_.erase(key);
  // Refresh only what we already hold; pre-warm *inserts* stay the
  // owner's policy (the backend wires push -> insert() explicitly).
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second = Entry{pgid, loop_.now()};
  }
}

sim::Task<std::optional<net::Gid>> MappingCache::resolve(std::uint32_t vni,
                                                         net::Gid vgid) {
  Resolution r = co_await resolve_ex(vni, vgid);
  co_return r.pgid;
}

sim::Task<MappingCache::Resolution> MappingCache::resolve_ex(
    std::uint32_t vni, net::Gid vgid) {
  const VirtKey key{vni, vgid};
  auto it = cache_.find(key);
  if (it != cache_.end() && fault_probe_ &&
      fault_probe_(VirtKeyHash{}(key))) {
    // Injected expiry/corruption: drop the entry and fall through to the
    // miss path as if it had never been cached.
    cache_.erase(it);
    it = cache_.end();
    ++fault_expirations_;
  }
  if (it != cache_.end()) {
    if (controller_.reachable()) {
      ++hits_;
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kOk, it->second.pgid};
    }
    // Degraded mode: the controller cannot confirm, but a recently
    // confirmed mapping is overwhelmingly likely still valid — serve it,
    // bounded, and count it. Entries past the bound are *not* served:
    // better a fast kUnavailable than a rename to a stale peer.
    const sim::Time age = loop_.now() - it->second.confirmed_at;
    if (age <= staleness_bound_) {
      ++degraded_serves_;
      max_served_staleness_ = std::max(max_served_staleness_, age);
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kOkDegraded, it->second.pgid};
    }
    ++unavailable_;
    co_await sim::delay(loop_, hit_cost_);
    co_return Resolution{ResolveStatus::kUnavailable, std::nullopt};
  }
  // Bounded negative cache: a recently-confirmed-absent key is answered
  // locally instead of hammering the controller.
  auto nit = negative_.find(key);
  if (nit != negative_.end()) {
    if (loop_.now() < nit->second) {
      ++negative_hits_;
      co_await sim::delay(loop_, hit_cost_);
      co_return Resolution{ResolveStatus::kNotFound, std::nullopt};
    }
    negative_.erase(nit);
  }
  // Single-flight: if a query for this key is already on the wire, ride it
  // instead of issuing another controller RTT.
  auto fit = inflight_.find(key);
  if (fit != inflight_.end()) {
    ++coalesced_;
    auto future = fit->second;  // copy: the leader erases the map entry
    co_return co_await future;
  }
  ++misses_;
  sim::Promise<Resolution> leader(loop_);
  inflight_.emplace(key, leader.get_future());
  poisoned_.erase(key);
  Controller::QueryReply reply;
  try {
    reply = co_await controller_.query_ex(vni, vgid);
  } catch (...) {
    inflight_.erase(key);
    poisoned_.erase(key);
    leader.set_exception(std::current_exception());
    throw;
  }
  Resolution result;
  if (reply.unreachable) {
    // No verdict either way: do NOT install a negative entry (the key may
    // exist), just report unavailable. Callers retry with backoff.
    ++unavailable_;
    result = Resolution{ResolveStatus::kUnavailable, std::nullopt};
    poisoned_.erase(key);
  } else {
    result = reply.pgid
                 ? Resolution{ResolveStatus::kOk, reply.pgid}
                 : Resolution{ResolveStatus::kNotFound, std::nullopt};
    // Install the verdict — unless the key was invalidated mid-flight, in
    // which case the result may already be stale and must not be cached
    // (followers still get the answer their query observed).
    if (!poisoned_.erase(key)) {
      if (reply.pgid) {
        cache_[key] = Entry{*reply.pgid, loop_.now()};
      } else {
        if (negative_.size() >= kMaxNegativeEntries) negative_.clear();
        negative_[key] = loop_.now() + negative_ttl_;
      }
    }
  }
  inflight_.erase(key);
  leader.set_value(result);
  co_return result;
}

void MappingCache::for_each_entry(
    const std::function<void(const VirtKey&, net::Gid, sim::Time)>& fn)
    const {
  std::vector<std::pair<VirtKey, Entry>> entries;
  entries.reserve(cache_.size());
  for (const auto& [key, e] :
       cache_) {  // masq-lint: allow(unordered-iter) sorted before streaming
    entries.emplace_back(key, e);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.vni, a.first.vgid) <
           std::tie(b.first.vni, b.first.vgid);
  });
  for (const auto& [key, e] : entries) fn(key, e.pgid, e.confirmed_at);
}

void MappingCache::corrupt_entry_for_test(std::uint32_t vni, net::Gid vgid,
                                          net::Gid pgid) {
  cache_[VirtKey{vni, vgid}] = Entry{pgid, loop_.now()};
}

void MappingCache::insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  const VirtKey key{vni, vgid};
  cache_[key] = Entry{pgid, loop_.now()};
  negative_.erase(key);
}

void MappingCache::invalidate(std::uint32_t vni, net::Gid vgid) {
  const VirtKey key{vni, vgid};
  cache_.erase(key);
  negative_.erase(key);
  if (inflight_.count(key) > 0) poisoned_.insert(key);
}

}  // namespace sdn
