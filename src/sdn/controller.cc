#include "sdn/controller.h"

namespace sdn {

void Controller::register_vgid(std::uint32_t vni, net::Gid vgid,
                               net::Gid pgid) {
  table_[VirtKey{vni, vgid}] = pgid;
  for (const auto& [id, fn] : subscribers_) fn(vni, vgid, pgid);
}

void Controller::unregister_vgid(std::uint32_t vni, net::Gid vgid) {
  // Only broadcast if this call actually removed a live entry; a released
  // vBond whose successor already re-registered must not clobber the
  // successor's mapping in downstream caches.
  if (table_.erase(VirtKey{vni, vgid}) > 0) {
    for (const auto& [id, fn] : invalidate_subscribers_) fn(vni, vgid);
  }
}

std::optional<net::Gid> Controller::lookup(std::uint32_t vni,
                                           net::Gid vgid) const {
  auto it = table_.find(VirtKey{vni, vgid});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

sim::Task<std::optional<net::Gid>> Controller::query(std::uint32_t vni,
                                                     net::Gid vgid) {
  ++queries_;
  co_await sim::delay(loop_, query_rtt_);
  co_return lookup(vni, vgid);
}

void Controller::push_down(std::uint32_t vni) const {
  for (const auto& [key, pgid] : table_) {
    if (key.vni == vni) {
      for (const auto& [id, fn] : subscribers_) fn(key.vni, key.vgid, pgid);
    }
  }
}

sim::Task<std::optional<net::Gid>> MappingCache::resolve(std::uint32_t vni,
                                                         net::Gid vgid) {
  const VirtKey key{vni, vgid};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    co_await sim::delay(loop_, hit_cost_);
    co_return it->second;
  }
  // Bounded negative cache: a recently-confirmed-absent key is answered
  // locally instead of hammering the controller.
  auto nit = negative_.find(key);
  if (nit != negative_.end()) {
    if (loop_.now() < nit->second) {
      ++negative_hits_;
      co_await sim::delay(loop_, hit_cost_);
      co_return std::nullopt;
    }
    negative_.erase(nit);
  }
  // Single-flight: if a query for this key is already on the wire, ride it
  // instead of issuing another controller RTT.
  auto fit = inflight_.find(key);
  if (fit != inflight_.end()) {
    ++coalesced_;
    auto future = fit->second;  // copy: the leader erases the map entry
    co_return co_await future;
  }
  ++misses_;
  sim::Promise<std::optional<net::Gid>> leader(loop_);
  inflight_.emplace(key, leader.get_future());
  poisoned_.erase(key);
  std::optional<net::Gid> result;
  try {
    result = co_await controller_.query(vni, vgid);
  } catch (...) {
    inflight_.erase(key);
    poisoned_.erase(key);
    leader.set_exception(std::current_exception());
    throw;
  }
  // Install the verdict — unless the key was invalidated mid-flight, in
  // which case the result may already be stale and must not be cached
  // (followers still get the answer their query observed).
  if (!poisoned_.erase(key)) {
    if (result) {
      cache_[key] = *result;
    } else {
      if (negative_.size() >= kMaxNegativeEntries) negative_.clear();
      negative_[key] = loop_.now() + negative_ttl_;
    }
  }
  inflight_.erase(key);
  leader.set_value(result);
  co_return result;
}

void MappingCache::insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  const VirtKey key{vni, vgid};
  cache_[key] = pgid;
  negative_.erase(key);
}

void MappingCache::invalidate(std::uint32_t vni, net::Gid vgid) {
  const VirtKey key{vni, vgid};
  cache_.erase(key);
  negative_.erase(key);
  if (inflight_.count(key) > 0) poisoned_.insert(key);
}

}  // namespace sdn
