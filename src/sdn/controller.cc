#include "sdn/controller.h"

namespace sdn {

void Controller::register_vgid(std::uint32_t vni, net::Gid vgid,
                               net::Gid pgid) {
  table_[VirtKey{vni, vgid}] = pgid;
  for (const auto& fn : subscribers_) fn(vni, vgid, pgid);
}

void Controller::unregister_vgid(std::uint32_t vni, net::Gid vgid) {
  table_.erase(VirtKey{vni, vgid});
}

std::optional<net::Gid> Controller::lookup(std::uint32_t vni,
                                           net::Gid vgid) const {
  auto it = table_.find(VirtKey{vni, vgid});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

sim::Task<std::optional<net::Gid>> Controller::query(std::uint32_t vni,
                                                     net::Gid vgid) {
  ++queries_;
  co_await sim::delay(loop_, query_rtt_);
  co_return lookup(vni, vgid);
}

void Controller::push_down(std::uint32_t vni) const {
  for (const auto& [key, pgid] : table_) {
    if (key.vni == vni) {
      for (const auto& fn : subscribers_) fn(key.vni, key.vgid, pgid);
    }
  }
}

sim::Task<std::optional<net::Gid>> MappingCache::resolve(std::uint32_t vni,
                                                         net::Gid vgid) {
  auto it = cache_.find(VirtKey{vni, vgid});
  if (it != cache_.end()) {
    ++hits_;
    co_await sim::delay(loop_, hit_cost_);
    co_return it->second;
  }
  ++misses_;
  auto result = co_await controller_.query(vni, vgid);
  if (result) cache_[VirtKey{vni, vgid}] = *result;
  co_return result;
}

void MappingCache::insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid) {
  cache_[VirtKey{vni, vgid}] = pgid;
}

void MappingCache::invalidate(std::uint32_t vni, net::Gid vgid) {
  cache_.erase(VirtKey{vni, vgid});
}

}  // namespace sdn
