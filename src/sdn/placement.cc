#include "sdn/placement.h"

namespace sdn {

std::size_t leaf_affine_host(std::size_t tenants, std::size_t total_vms,
                             std::size_t vms_per_host, std::size_t vm) {
  if (tenants == 0 || vms_per_host == 0 || total_vms == 0) return 0;
  const std::size_t t = vm % tenants;      // tenant
  const std::size_t k = vm / tenants;      // index within the tenant
  // Tenant populations under round-robin assignment: the first
  // (total_vms % tenants) tenants hold one extra VM.
  const std::size_t full = total_vms / tenants;
  const std::size_t rem = total_vms % tenants;
  const std::size_t offset = t * full + (t < rem ? t : rem);
  return (offset + k) / vms_per_host;
}

}  // namespace sdn
