// Logically centralized SDN controller (§3.3.1).
//
// Maintains the (VNI, virtual GID) -> physical GID mapping table. vBond
// registers/updates entries whenever a vEth IP (and therefore the vGID)
// changes; RConnrename queries it when a connection is established. The
// tenant VNI disambiguates identical virtual IPs across tenants.
//
// Each record costs 35 B (vGID 16 B + VNI 3 B + pGID 16 B) — the paper's
// argument that a 10k-peer cache fits in ~0.33 MB of DRAM; record_bytes()
// exposes that arithmetic for the ablation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace sdn {

struct VirtKey {
  std::uint32_t vni = 0;
  net::Gid vgid;

  bool operator==(const VirtKey&) const = default;
};

struct VirtKeyHash {
  std::size_t operator()(const VirtKey& k) const noexcept {
    return std::hash<net::Gid>{}(k.vgid) ^
           (std::hash<std::uint32_t>{}(k.vni) * 0x9e3779b9u);
  }
};

inline constexpr std::size_t kRecordBytes = 16 + 3 + 16;  // vGID + VNI + pGID

class Controller {
 public:
  explicit Controller(sim::EventLoop& loop,
                      sim::Time query_rtt = sim::microseconds(100))
      : loop_(loop), query_rtt_(query_rtt) {}

  // vBond side: called on vGID creation/update.
  void register_vgid(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void unregister_vgid(std::uint32_t vni, net::Gid vgid);

  // Instantaneous lookup (no modeled latency; used by push-down paths).
  std::optional<net::Gid> lookup(std::uint32_t vni, net::Gid vgid) const;

  // Remote query as RConnrename performs it: charges the controller RTT.
  sim::Task<std::optional<net::Gid>> query(std::uint32_t vni, net::Gid vgid);

  // Proactive push-down (§4.2.3: "the controller can push down the
  // mappings in advance"): streams every entry of `vni` to the subscriber.
  using PushFn = std::function<void(std::uint32_t, net::Gid, net::Gid)>;
  void subscribe(PushFn fn) { subscribers_.push_back(std::move(fn)); }
  void push_down(std::uint32_t vni) const;

  std::size_t table_size() const { return table_.size(); }
  std::size_t table_bytes() const { return table_.size() * kRecordBytes; }
  std::uint64_t queries_served() const { return queries_; }
  sim::Time query_rtt() const { return query_rtt_; }

 private:
  sim::EventLoop& loop_;
  sim::Time query_rtt_;
  std::unordered_map<VirtKey, net::Gid, VirtKeyHash> table_;
  std::vector<PushFn> subscribers_;
  std::uint64_t queries_ = 0;
};

// Host-local cache in front of the controller (§3.3.1): first query for a
// peer misses and pays the controller RTT; subsequent ones hit in a few
// microseconds. In the common case a record never changes after insertion,
// so hits always stay hits.
class MappingCache {
 public:
  MappingCache(sim::EventLoop& loop, Controller& controller,
               sim::Time hit_cost = sim::microseconds(2))
      : loop_(loop), controller_(controller), hit_cost_(hit_cost) {}

  sim::Task<std::optional<net::Gid>> resolve(std::uint32_t vni,
                                             net::Gid vgid);

  // Accepts controller push-downs (pre-warming).
  void insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void invalidate(std::uint32_t vni, net::Gid vgid);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return cache_.size(); }
  std::size_t bytes() const { return cache_.size() * kRecordBytes; }

 private:
  sim::EventLoop& loop_;
  Controller& controller_;
  sim::Time hit_cost_;
  std::unordered_map<VirtKey, net::Gid, VirtKeyHash> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sdn
