// Logically centralized SDN controller (§3.3.1).
//
// Maintains the (VNI, virtual GID) -> physical GID mapping table. vBond
// registers/updates entries whenever a vEth IP (and therefore the vGID)
// changes; RConnrename queries it when a connection is established. The
// tenant VNI disambiguates identical virtual IPs across tenants.
//
// Each record costs 35 B (vGID 16 B + VNI 3 B + pGID 16 B) — the paper's
// argument that a 10k-peer cache fits in ~0.33 MB of DRAM; record_bytes()
// exposes that arithmetic for the ablation bench.
//
// Fault model: the controller can be marked unreachable for a window
// (set_reachable). While down, queries burn the RTT as a detection timeout
// and report kUnavailable, and push/invalidate broadcasts are buffered and
// flushed in order on recovery — the control-plane database itself stays
// authoritative throughout.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/addr.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace sdn {

struct VirtKey {
  std::uint32_t vni = 0;
  net::Gid vgid;

  bool operator==(const VirtKey&) const = default;
};

struct VirtKeyHash {
  std::size_t operator()(const VirtKey& k) const noexcept {
    // Boost-style hash_combine: the multiply+shift mix keeps the combine
    // asymmetric and spreads entropy across all bits. (A plain XOR is
    // symmetric — hash(a)^hash(b) == hash(b)^hash(a) — and collapses keys
    // whose per-field hashes differ only in low bytes.)
    std::size_t h = std::hash<std::uint32_t>{}(k.vni);
    const std::size_t g = std::hash<net::Gid>{}(k.vgid);
    h ^= g + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

inline constexpr std::size_t kRecordBytes = 16 + 3 + 16;  // vGID + VNI + pGID

class Controller {
 public:
  explicit Controller(sim::EventLoop& loop,
                      sim::Time query_rtt = sim::microseconds(100))
      : loop_(loop), query_rtt_(query_rtt) {}

  // vBond side: called on vGID creation/update.
  void register_vgid(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void unregister_vgid(std::uint32_t vni, net::Gid vgid);

  // Instantaneous lookup (no modeled latency; used by push-down paths).
  std::optional<net::Gid> lookup(std::uint32_t vni, net::Gid vgid) const;

  // Remote query as RConnrename performs it: charges the controller RTT.
  sim::Task<std::optional<net::Gid>> query(std::uint32_t vni, net::Gid vgid);

  // Like query(), but distinguishes "the key is absent" from "the
  // controller did not answer". When unreachable, the RTT is still charged
  // — it models the caller's detection timeout.
  struct QueryReply {
    bool unreachable = false;
    std::optional<net::Gid> pgid;
  };
  sim::Task<QueryReply> query_ex(std::uint32_t vni, net::Gid vgid);

  // Fault plane: controller reachability window. Coming back up flushes
  // the broadcasts buffered while down, in their original order.
  void set_reachable(bool reachable);
  bool reachable() const { return reachable_; }
  std::uint64_t unreachable_queries() const { return unreachable_queries_; }

  // Subscriptions return a token; subscribers whose lifetime is shorter
  // than the controller's MUST unsubscribe in their destructor (vBond
  // teardown broadcasts invalidations, so a dangling callback would fire
  // into freed memory during shutdown).
  using SubId = std::uint64_t;

  // Proactive push-down (§4.2.3: "the controller can push down the
  // mappings in advance"): streams every entry of `vni` to the subscriber.
  using PushFn = std::function<void(std::uint32_t, net::Gid, net::Gid)>;
  SubId subscribe(PushFn fn) {
    subscribers_.emplace_back(next_sub_, std::move(fn));
    return next_sub_++;
  }
  void unsubscribe(SubId id) {
    std::erase_if(subscribers_, [id](const auto& s) { return s.first == id; });
  }
  void push_down(std::uint32_t vni) const;

  // Invalidation channel: unregister_vgid() broadcasts the dead key so
  // host-local caches stop serving the stale pGID (the complement of the
  // push-down channel — without it a dead mapping lives in every cache
  // forever).
  using InvalidateFn = std::function<void(std::uint32_t, net::Gid)>;
  SubId subscribe_invalidate(InvalidateFn fn) {
    invalidate_subscribers_.emplace_back(next_sub_, std::move(fn));
    return next_sub_++;
  }
  void unsubscribe_invalidate(SubId id) {
    std::erase_if(invalidate_subscribers_,
                  [id](const auto& s) { return s.first == id; });
  }

  std::size_t table_size() const { return table_.size(); }
  std::size_t table_bytes() const { return table_.size() * kRecordBytes; }
  std::uint64_t queries_served() const { return queries_; }
  sim::Time query_rtt() const { return query_rtt_; }

  // Invariant auditing (src/check): true if any tenant currently maps this
  // GID as *virtual* — a QPC holding such a GID past RTR means RConnrename
  // failed to rewrite it.
  bool is_virtual_gid(net::Gid vgid) const;
  // Broadcasts buffered during an outage and not yet replayed; host caches
  // may legitimately diverge from the table while this is nonzero.
  std::size_t pending_broadcast_count() const {
    return pending_broadcasts_.size();
  }

 private:
  void broadcast_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void broadcast_invalidate(std::uint32_t vni, net::Gid vgid);

  sim::EventLoop& loop_;
  sim::Time query_rtt_;
  std::unordered_map<VirtKey, net::Gid, VirtKeyHash> table_;
  std::vector<std::pair<SubId, PushFn>> subscribers_;
  std::vector<std::pair<SubId, InvalidateFn>> invalidate_subscribers_;
  SubId next_sub_ = 1;
  std::uint64_t queries_ = 0;
  bool reachable_ = true;
  std::uint64_t unreachable_queries_ = 0;
  // Broadcasts that happened while unreachable, replayed on recovery.
  std::vector<std::function<void()>> pending_broadcasts_;
};

// Host-local cache in front of the controller (§3.3.1): first query for a
// peer misses and pays the controller RTT; subsequent ones hit in a few
// microseconds. In the common case a record never changes after insertion,
// so hits always stay hits.
//
// resolve() is *single-flight*: concurrent misses for the same (VNI, vGID)
// coalesce onto one in-flight controller query, so a 100-QP fan-in to a
// brand-new peer pays one controller RTT, not 100. Unresolvable keys are
// negatively cached for a bounded TTL so a misconfigured peer cannot turn
// every connection attempt into a controller round trip.
//
// The cache self-subscribes to the controller's channels: a register
// broadcast purges any negative verdict for that key (a re-registered peer
// must not stay unresolvable until TTL expiry) and refreshes an
// already-cached entry; an invalidate broadcast evicts. Pre-warm *inserts*
// remain the owner's choice — the backend wires push -> insert explicitly.
//
// Degraded mode: when the controller is unreachable, a cached entry whose
// last confirmation is younger than the staleness bound is still served
// (kOkDegraded, counted) — established peers keep connecting through an
// outage — while entries past the bound and uncached keys report
// kUnavailable so callers fail fast instead of hanging.
class MappingCache {
 public:
  enum class ResolveStatus : std::uint8_t {
    kOk,          // fresh answer (cache hit or controller round trip)
    kOkDegraded,  // controller down; served stale-but-bounded from cache
    kNotFound,    // controller authoritatively says: no such key
    kUnavailable, // controller down and no fresh-enough cached answer
  };
  struct Resolution {
    ResolveStatus status = ResolveStatus::kUnavailable;
    std::optional<net::Gid> pgid;

    bool ok() const {
      return status == ResolveStatus::kOk ||
             status == ResolveStatus::kOkDegraded;
    }
  };

  MappingCache(sim::EventLoop& loop, Controller& controller,
               sim::Time hit_cost = sim::microseconds(2),
               sim::Time negative_ttl = sim::milliseconds(1),
               sim::Time staleness_bound = sim::seconds(5));
  ~MappingCache();
  MappingCache(const MappingCache&) = delete;
  MappingCache& operator=(const MappingCache&) = delete;

  sim::Task<std::optional<net::Gid>> resolve(std::uint32_t vni,
                                             net::Gid vgid);
  sim::Task<Resolution> resolve_ex(std::uint32_t vni, net::Gid vgid);

  // Accepts controller push-downs (pre-warming).
  void insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void invalidate(std::uint32_t vni, net::Gid vgid);

  // Fault plane: consulted with the key hash before a cached entry is
  // served; returning true evicts the entry first (models expiry or
  // corruption detection). Null = off.
  void set_fault_probe(std::function<bool(std::uint64_t)> probe) {
    fault_probe_ = std::move(probe);
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Concurrent misses that rode another miss's in-flight controller query.
  std::uint64_t single_flight_coalesced() const { return coalesced_; }
  // Lookups answered from the bounded negative cache.
  std::uint64_t negative_hits() const { return negative_hits_; }
  // Degraded-mode serves while the controller was unreachable.
  std::uint64_t degraded_serves() const { return degraded_serves_; }
  // Resolutions that found the controller down and nothing fresh enough.
  std::uint64_t unavailable_results() const { return unavailable_; }
  // Entries evicted by the fault probe.
  std::uint64_t fault_expirations() const { return fault_expirations_; }
  // Largest staleness (now - last confirmation) ever served in degraded
  // mode; the sweep asserts this stays <= staleness_bound.
  sim::Time max_served_staleness() const { return max_served_staleness_; }
  sim::Time staleness_bound() const { return staleness_bound_; }
  std::size_t size() const { return cache_.size(); }
  std::size_t bytes() const { return cache_.size() * kRecordBytes; }
  std::size_t negative_size() const { return negative_.size(); }
  static constexpr std::size_t max_negative_entries() {
    return kMaxNegativeEntries;
  }

  // Invariant auditing (src/check): streams every positive entry in sorted
  // key order — (vni, vgid, pgid, last confirmation time).
  void for_each_entry(
      const std::function<void(const VirtKey&, net::Gid, sim::Time)>& fn)
      const;

  // Test-only corruption hook: plants `pgid` for the key directly, bypassing
  // the controller-truth maintenance that insert()/on_push() perform. Used
  // to prove the coherence auditor trips on a wrong mapping.
  void corrupt_entry_for_test(std::uint32_t vni, net::Gid vgid,
                              net::Gid pgid);

 private:
  // Bound on the negative cache: it is a DoS shield, not a datastore.
  static constexpr std::size_t kMaxNegativeEntries = 1024;

  struct Entry {
    net::Gid pgid;
    sim::Time confirmed_at = 0;  // when the controller last vouched for it
  };

  void on_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid);

  sim::EventLoop& loop_;
  Controller& controller_;
  sim::Time hit_cost_;
  sim::Time negative_ttl_;
  sim::Time staleness_bound_;
  Controller::SubId push_sub_ = 0;
  Controller::SubId invalidate_sub_ = 0;
  std::function<bool(std::uint64_t)> fault_probe_;
  std::unordered_map<VirtKey, Entry, VirtKeyHash> cache_;
  // Key -> expiry time of the "known absent" verdict.
  std::unordered_map<VirtKey, sim::Time, VirtKeyHash> negative_;
  // One leader query per key; followers await the leader's future.
  std::unordered_map<VirtKey, sim::Future<Resolution>, VirtKeyHash>
      inflight_;
  // Keys invalidated while their leader query was in flight: the stale
  // result must not be installed when the leader returns.
  std::unordered_set<VirtKey, VirtKeyHash> poisoned_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t negative_hits_ = 0;
  std::uint64_t degraded_serves_ = 0;
  std::uint64_t unavailable_ = 0;
  std::uint64_t fault_expirations_ = 0;
  sim::Time max_served_staleness_ = 0;
};

}  // namespace sdn
